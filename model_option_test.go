package xplace

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func savedTinyModel(t *testing.T) []byte {
	t.Helper()
	m := NewModel(ModelConfig{Width: 4, Modes: 3, Layers: 1, Seed: 1})
	m.Train(GenerateTrainingSamples(4, 16, 16, 1), TrainOptions{Epochs: 2, LR: 1e-3, Seed: 1})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionWithFieldModel: the -model CLI path end to end at the facade
// — a session built WithFieldModel drives the NN-blended flow (the result
// differs from the pure numerical run of the same design and seed), and a
// per-run Predictor wins over the session's.
func TestSessionWithFieldModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fno.xfnm")
	if err := os.WriteFile(path, savedTinyModel(t), 0o644); err != nil {
		t.Fatal(err)
	}
	opt, err := WithFieldModel(path)
	if err != nil {
		t.Fatal(err)
	}
	d := sessionTestDesign(t, 150, 1)

	s := NewSession(opt, WithEngineOptions(1, 0), WithBackend(Float64Backend()))
	defer s.Close()
	blended, err := s.Place(context.Background(), d, sessionTestOpts(40))
	if err != nil {
		t.Fatal(err)
	}

	pure := NewSession(WithEngineOptions(1, 0), WithBackend(Float64Backend()))
	defer pure.Close()
	ref, err := pure.Place(context.Background(), d, sessionTestOpts(40))
	if err != nil {
		t.Fatal(err)
	}
	if blended.HPWL == ref.HPWL {
		t.Error("session field model had no effect: blended HPWL identical to numerical")
	}
}

// TestWithFieldModelTypedErrors: every way an artifact can be bad is a
// typed error at option-construction time, never a mid-placement failure.
func TestWithFieldModelTypedErrors(t *testing.T) {
	dir := t.TempDir()
	raw := savedTinyModel(t)

	if _, err := WithFieldModel(filepath.Join(dir, "missing.xfnm")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: got %v, want os.ErrNotExist", err)
	}

	foreign := filepath.Join(dir, "foreign.xfnm")
	if err := os.WriteFile(foreign, []byte("not a model at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WithFieldModel(foreign); !errors.Is(err, ErrModelNotArtifact) {
		t.Errorf("foreign bytes: got %v, want ErrModelNotArtifact", err)
	}

	corrupt := filepath.Join(dir, "corrupt.xfnm")
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0x20
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WithFieldModel(corrupt); !errors.Is(err, ErrModelCorrupt) {
		t.Errorf("bit flip: got %v, want ErrModelCorrupt", err)
	}

	if _, err := WithFieldModelReader(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrModelCorrupt) {
		t.Errorf("truncation: got %v, want ErrModelCorrupt", err)
	}
}

// TestStatModelFacade: StatModel reads the artifact header without
// decoding weights, and its sha256 matches what a full load verifies.
func TestStatModelFacade(t *testing.T) {
	raw := savedTinyModel(t)
	hdr, err := StatModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Config.Width != 4 || hdr.TrainRes != 16 || hdr.ParamCount == 0 || len(hdr.SHA256) != 64 {
		t.Fatalf("header %+v, want width 4, train_res 16, nonzero params, 64-hex sha", hdr)
	}
	if _, err := LoadModel(bytes.NewReader(raw)); err != nil {
		t.Fatalf("artifact that Stats clean fails to load: %v", err)
	}
}
