package xplace

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestPublicAPIBuildAndPlace(t *testing.T) {
	d := NewDesign("api", 40, 40)
	for y := 0.0; y+4 <= 40; y += 4 {
		d.Rows = append(d.Rows, Row{Y: y, X0: 0, X1: 40, Height: 4, SiteWidth: 1})
	}
	var ids []int
	for i := 0; i < 60; i++ {
		ids = append(ids, d.AddCell("c", 2, 4, float64(1+i%19*2), float64(2+(i/19)*4), Movable))
	}
	for i := 0; i+1 < len(ids); i++ {
		d.AddNet("n")
		d.AddPin(ids[i], 0, 0)
		d.AddPin(ids[i+1], 0, 0)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	opts := DefaultPlacement()
	opts.GridSize = 32
	opts.Sched.MaxIter = 120
	res, err := Place(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 || math.IsNaN(res.HPWL) {
		t.Errorf("HPWL = %v", res.HPWL)
	}
}

func TestGenerateBenchmarkAPI(t *testing.T) {
	d, err := GenerateBenchmark("adaptec1", 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() == 0 {
		t.Fatal("empty design")
	}
	if _, err := GenerateBenchmark("not-a-design", 1, 1); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if len(Catalog2005()) != 8 || len(Catalog2015()) != 20 {
		t.Error("catalog sizes wrong")
	}
}

func TestRunFlowEndToEnd(t *testing.T) {
	d, err := GenerateBenchmark("fft_1", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := FlowOptions{
		Placement: DefaultPlacement(),
		Legalizer: LegalizeTetris,
		Route:     &RouteOptions{Grid: 32, Capacity: 10},
	}
	opts.Placement.Sched.MaxIter = 500
	fr, err := RunFlow(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Violations != 0 {
		t.Errorf("final placement has %d violations", fr.Violations)
	}
	if fr.HPWLFinal > fr.HPWLLegal {
		t.Errorf("detailed placement degraded HPWL: %.0f -> %.0f", fr.HPWLLegal, fr.HPWLFinal)
	}
	if fr.Route == nil || fr.Route.Top5Overflow < 0 {
		t.Error("missing route result")
	}
	if fr.GPSim <= 0 || fr.GPTime <= 0 {
		t.Error("missing stage timings")
	}
	t.Logf("GP %.0f -> legal %.0f -> final %.0f HPWL; OVFL-5 %.2f; GP %v (sim %v) LG %v DP %v",
		fr.HPWLGP, fr.HPWLLegal, fr.HPWLFinal, fr.Route.Top5Overflow,
		fr.GPTime, fr.GPSim, fr.LGTime, fr.DPTime)
}

func TestRunFlowAbacusAndSkipDetail(t *testing.T) {
	d, err := GenerateBenchmark("pci_bridge32_a", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := FlowOptions{
		Placement:  DefaultPlacement(),
		Legalizer:  LegalizeAbacus,
		SkipDetail: true,
		Workers:    2,
	}
	opts.Placement.Sched.MaxIter = 400
	fr, err := RunFlow(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.DPTime != 0 {
		t.Error("detail stage should be skipped")
	}
	if fr.Violations != 0 {
		t.Errorf("%d violations after abacus", fr.Violations)
	}
	if fr.HPWLFinal != fr.HPWLLegal {
		t.Error("skip-detail must keep the legal placement")
	}
}

func TestEngineConfiguration(t *testing.T) {
	e := NewEngine(3, 5*time.Microsecond)
	if e.Workers() != 3 || e.LaunchOverhead() != 5*time.Microsecond {
		t.Error("engine options not applied")
	}
}

func TestModelAPIRoundTrip(t *testing.T) {
	cfg := ModelConfig{Width: 4, Modes: 3, Layers: 1, Seed: 1}
	m := NewModel(cfg)
	samples := GenerateTrainingSamples(3, 8, 8, 1)
	m.Train(samples, TrainOptions{Epochs: 2, LR: 1e-3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ParamCount() != m.ParamCount() {
		t.Error("round trip changed parameter count")
	}
	if NewFieldPredictor(m) == nil {
		t.Error("nil predictor")
	}
	if DefaultModelConfig().Layers != 4 {
		t.Error("default config wrong")
	}
}

func TestBookshelfAPIRoundTrip(t *testing.T) {
	d, err := GenerateBenchmark("fft_2", 0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteBookshelf(dir, "fft_2", d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBookshelf(dir + "/fft_2.aux")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != d.NumCells() {
		t.Errorf("cells %d != %d", got.NumCells(), d.NumCells())
	}
}
