package xplace

// Allocation-regression tests for the execution substrate: after warm-up,
// the steady-state GP loop must not touch the Go heap — all scratch comes
// from the engine arena and all kernel bodies are persistent closures with
// staged parameters. A regression here means a per-iteration make() or an
// escaping closure crept back into a hot path.

import (
	"testing"

	"xplace/internal/benchgen"
	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/placer"
)

// TestSteadyStateIterationAllocFree: one full Xplace GP iteration (fused
// wirelength + gradient, density solve, deferred metrics sync) performs
// zero heap allocations once warm.
func TestSteadyStateIterationAllocFree(t *testing.T) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	p, err := placer.New(d, benchEngine(), DefaultPlacement())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state GP iteration allocs = %v, want 0", allocs)
	}
}

// TestInstrumentedIterationAllocFree: the metrics path is all-atomics, so
// even with a live registry attached (counters, stage gauges, iteration
// histogram all updating every iteration) the steady-state GP loop stays
// off the Go heap. Only an attached tracer may allocate (amortized event
// appends), which is why tracing is per-run opt-in.
func TestInstrumentedIterationAllocFree(t *testing.T) {
	spec, _ := benchgen.FindSpec("adaptec1")
	d := benchgen.Generate(spec, benchScale, 1)
	opts := DefaultPlacement()
	opts.Metrics = NewMetricsRegistry()
	p, err := placer.New(d, benchEngine(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("metrics-instrumented GP iteration allocs = %v, want 0", allocs)
	}
}

// TestPoissonSolveAllocFree: the full spectral solve — including the v2
// batched potential/field evaluation — stays off the Go heap once the
// plan's arena-backed scratch is warm.
func TestPoissonSolveAllocFree(t *testing.T) {
	e := benchEngine()
	defer e.Close()
	g := geom.NewGrid(geom.Rect{Hx: 64, Hy: 64}, 64, 64)
	s := field.NewSystem(g, e)
	for i := range s.Total {
		s.Total[i] = float64(i%11) * 0.1
	}
	s.SolvePoisson(e)
	allocs := testing.AllocsPerRun(50, func() {
		s.SolvePoisson(e)
	})
	if allocs != 0 {
		t.Errorf("steady-state Poisson solve allocs = %v, want 0", allocs)
	}
}
