// Package xplace is a pure-Go reproduction of "Xplace: An Extremely Fast
// and Extensible Global Placement Framework" (Liu, Fu, Wong, Young —
// DAC 2022): an electrostatics-based (ePlace-family) analytical global
// placer with the paper's operator-level optimizations, placement-stage-
// aware parameter scheduling, a DREAMPlace-style autograd baseline for
// comparison, and the Fourier-neural-operator extension (Xplace-NN).
//
// The GPU of the original system is modelled by a kernel-execution engine
// (worker-pool parallel kernels plus an explicit kernel-launch cost on a
// simulated clock); see DESIGN.md for the full substitution map.
//
// Quick start:
//
//	d, _ := xplace.GenerateBenchmark("adaptec1", 0.02, 1)
//	res, _ := xplace.Place(d, xplace.DefaultPlacement())
//	fmt.Println(res.HPWL)
//
// or run the full flow (global placement, legalization, detailed
// placement, optional routability scoring) with RunFlow.
package xplace

import (
	"context"
	"fmt"
	"io"
	"time"

	"xplace/internal/backend"
	"xplace/internal/benchgen"
	"xplace/internal/bookshelf"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/lefdef"
	"xplace/internal/netlist"
	"xplace/internal/nn"
	"xplace/internal/placer"
	"xplace/internal/router"
	"xplace/internal/sched"
	"xplace/internal/viz"
)

// Core data-model names, re-exported for API users (internal packages are
// not importable outside this module).
type (
	// Design is a placement instance: cells, nets, pins, rows, region.
	Design = netlist.Design
	// Row is one placement row.
	Row = netlist.Row
	// CellKind classifies cells (Movable, Fixed, Filler).
	CellKind = netlist.CellKind
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Engine executes placement kernels (the simulated GPU).
	Engine = kernel.Engine
	// EngineStats is an Engine accounting snapshot.
	EngineStats = kernel.Stats
	// ArenaStats is the engine buffer-arena accounting (checkout hits,
	// misses, bytes in use / pooled / peak).
	ArenaStats = kernel.ArenaStats
	// PlacementOptions configures global placement.
	PlacementOptions = placer.Options
	// PlacementResult is a global placement outcome.
	PlacementResult = placer.Result
	// Snapshot is a per-iteration progress record (PlacementOptions.Progress
	// / FlowOptions.Progress callback payload).
	Snapshot = placer.Snapshot
	// SchedOptions configures parameter scheduling.
	SchedOptions = sched.Options
	// BenchmarkSpec describes a contest design's published statistics.
	BenchmarkSpec = benchgen.Spec
	// RouteResult is a congestion-scoring outcome.
	RouteResult = router.Result
	// RouteOptions configures the global router.
	RouteOptions = router.Options
	// Model is the Fourier-neural-operator field predictor (Xplace-NN).
	Model = nn.Model
	// ModelConfig describes the FNO architecture.
	ModelConfig = nn.Config
	// TrainSample is one FNO training example.
	TrainSample = nn.Sample
	// TrainOptions configures FNO training.
	TrainOptions = nn.TrainOptions
	// FieldPredictor is the placer's neural-field hook: anything that maps
	// a density grid to a predicted Ex/Ey field (PlacementOptions.Predictor,
	// WithFieldPredictor). NewFieldPredictor adapts a trained Model.
	FieldPredictor = placer.FieldPredictor
	// ModelArtifactHeader is the integrity-checked header of a saved model
	// artifact (StatModel reads it without loading the weights).
	ModelArtifactHeader = nn.ArtifactHeader
	// LEFLibrary is a parsed LEF cell library.
	LEFLibrary = lefdef.Library
	// ComputeBackend is a pluggable element-type backend: which numeric
	// type kernel buffers hold and which staged kernel bodies operate on
	// them. Float64Backend() is the exact reference; Float32Backend() the
	// reduced-precision fast path. Select one per run with
	// PlacementOptions.Backend, per session with WithBackend, or process-
	// wide with the XPLACE_BACKEND environment variable.
	ComputeBackend = backend.Backend
	// Strategy selects the global-placement algorithm: StrategyNesterov is
	// the paper's electrostatic gradient flow; StrategyLBUB the
	// Coloquinte-style lower-bound/upper-bound alternation (draft-quality
	// quadratic oracle). Select per run with PlacementOptions.Strategy or
	// per session with WithStrategy.
	Strategy = placer.Strategy
)

// Cell kinds.
const (
	Movable = netlist.Movable
	Fixed   = netlist.Fixed
	Filler  = netlist.Filler
)

// Placement strategies.
const (
	// StrategyNesterov is the default electrostatics-based gradient flow.
	StrategyNesterov = placer.StrategyNesterov
	// StrategyLBUB is the LB/UB alternation oracle (B2B least squares
	// against rough legalization, gap-tolerance stop).
	StrategyLBUB = placer.StrategyLBUB
)

// ParseStrategy resolves a strategy by name ("nesterov", "lbub"); the
// empty name selects the default. It is what the CLI -strategy flags map
// to.
func ParseStrategy(name string) (Strategy, error) { return placer.ParseStrategy(name) }

// StrategyNames lists the selectable placement strategies.
func StrategyNames() []string { return placer.StrategyNames() }

// ErrDiverged marks a global placement run whose trajectory exploded
// (non-finite or absurd HPWL/overflow); errors.Is-match it to trigger a
// fallback. ErrStrategyNotResumable marks a checkpoint resume into a
// strategy that does not support it (only Nesterov checkpoints).
var (
	ErrDiverged             = placer.ErrDiverged
	ErrStrategyNotResumable = placer.ErrStrategyNotResumable
)

// Model-artifact sentinels (errors.Is-matchable through LoadModel,
// StatModel and WithFieldModel): ErrModelNotArtifact marks a stream that
// is not a model artifact at all; ErrModelVersion an artifact written by
// an incompatible schema version; ErrModelCorrupt an artifact whose frame
// parses but whose header or payload fails integrity checking (sha256
// mismatch, truncation, shape/parameter-count disagreement).
var (
	ErrModelNotArtifact = nn.ErrNotModel
	ErrModelVersion     = nn.ErrModelVersion
	ErrModelCorrupt     = nn.ErrModelCorrupt
)

// Wirelength models (the swappable gradient function of the core engine).
const (
	// WLWeightedAverage is the paper's WA model (Eq. 4/6).
	WLWeightedAverage = placer.WLWeightedAverage
	// WLLogSumExp is the classic LSE alternative.
	WLLogSumExp = placer.WLLogSumExp
)

// Float64Backend returns the exact, bit-stable reference backend — the
// float64 pool the determinism tests pin.
func Float64Backend() ComputeBackend { return backend.Float64() }

// Float32Backend returns the reduced-precision fast-path backend: float32
// element storage through the density/spectral pipeline at roughly half
// the memory traffic, with tolerance-banded (not bit-identical) results.
func Float32Backend() ComputeBackend { return backend.Float32() }

// LookupBackend resolves a backend by registry name ("float64",
// "float32"). The empty name returns the process default (the
// XPLACE_BACKEND environment variable when set, else the reference).
func LookupBackend(name string) (ComputeBackend, error) { return backend.Lookup(name) }

// BackendNames lists the registered compute backends, sorted.
func BackendNames() []string { return backend.Names() }

// NewDesign creates an empty design over the region [0,w] x [0,h].
// Populate it with AddCell/AddNet/AddPin and seal it with Finish.
func NewDesign(name string, w, h float64) *Design {
	return netlist.NewDesign(name, geom.Rect{Hx: w, Hy: h})
}

// NewEngine creates a kernel-execution engine. workers <= 0 selects
// NumCPU; launchOverhead < 0 selects the default simulated CUDA launch
// cost, 0 disables the launch-cost model.
func NewEngine(workers int, launchOverhead time.Duration) *Engine {
	return kernel.New(kernel.Options{Workers: workers, LaunchOverhead: launchOverhead})
}

// DefaultPlacement returns the paper's full Xplace configuration (all
// operator-level optimizations and stage-aware scheduling on).
func DefaultPlacement() PlacementOptions { return placer.Defaults() }

// BaselinePlacement returns the DREAMPlace-style comparator configuration
// (autograd gradients, no fusion/extraction/skipping).
func BaselinePlacement() PlacementOptions { return placer.BaselineDefaults() }

// NewPlacer prepares a reusable placer for one design on one engine.
// Engine ownership stays with the caller: the placer never Closes e, and
// p.Close only returns the placer's arena-backed scratch to the engine.
// Callers that want managed engine lifetime should use a Session instead.
func NewPlacer(d *Design, e *Engine, opts PlacementOptions) (*placer.Placer, error) {
	return placer.New(d, e, opts)
}

// Place runs global placement to convergence on a default engine. It is a
// thin wrapper over Session.Place on a temporary Session, so the engine it
// creates is released before returning.
func Place(d *Design, opts PlacementOptions) (*PlacementResult, error) {
	return PlaceContext(context.Background(), d, opts)
}

// PlaceContext runs global placement to convergence on a default engine,
// honoring ctx: cancellation and deadlines are checked between kernel
// launches, and the placer's scratch is released before returning. On
// cancellation the error is ctx.Err() and the result carries the partial
// placement. Like Place, it wraps Session.Place on a temporary Session
// that is Closed before returning (fixing the historical leak where the
// implicit default engine's worker pool was never torn down).
func PlaceContext(ctx context.Context, d *Design, opts PlacementOptions) (*PlacementResult, error) {
	s := NewSession()
	defer s.Close()
	return s.Place(ctx, d, opts)
}

// GenerateBenchmark synthesizes a contest design by name (Table 1 of the
// paper; see Catalog2005/Catalog2015) at the given scale.
func GenerateBenchmark(name string, scale float64, seed int64) (*Design, error) {
	spec, ok := benchgen.FindSpec(name)
	if !ok {
		return nil, fmt.Errorf("xplace: unknown benchmark %q", name)
	}
	return benchgen.Generate(spec, scale, seed), nil
}

// GenerateFromSpec synthesizes a design from an explicit spec.
func GenerateFromSpec(spec BenchmarkSpec, scale float64, seed int64) *Design {
	return benchgen.Generate(spec, scale, seed)
}

// Catalog2005 lists the eight ISPD 2005 contest designs.
func Catalog2005() []BenchmarkSpec { return benchgen.Catalog2005() }

// Catalog2015 lists the twenty ISPD 2015 contest designs.
func Catalog2015() []BenchmarkSpec { return benchgen.Catalog2015() }

// ReadBookshelf loads a bookshelf design from its .aux file.
//
// Deprecated: use Load, which autodetects the format from the path and
// contents. ReadBookshelf is kept working under the deprecation policy in
// README.md and is now a thin alias of Load's bookshelf path.
func ReadBookshelf(auxPath string) (*Design, error) { return bookshelf.ReadAux(auxPath) }

// WriteBookshelf writes the design as bookshelf files into dir.
func WriteBookshelf(dir, base string, d *Design) error { return bookshelf.Write(dir, base, d) }

// WritePlacementPl writes a bookshelf .pl with the given center positions.
func WritePlacementPl(path string, d *Design, x, y []float64) error {
	return bookshelf.WritePl(path, d, x, y)
}

// ReadLEF parses a LEF cell library.
//
// Deprecated: use LoadLEF for paths, or keep ReadLEF for non-file readers
// (it stays supported under the deprecation policy in README.md).
func ReadLEF(r io.Reader) (*LEFLibrary, error) { return lefdef.ParseLEF(r) }

// ReadDEF parses a DEF design against a LEF library.
//
// Deprecated: use Load with WithLEF/WithLEFLibrary, which autodetects DEF
// from the path and contents. ReadDEF stays supported for non-file
// readers under the deprecation policy in README.md.
func ReadDEF(r io.Reader, lib *LEFLibrary) (*Design, error) { return lefdef.ParseDEF(r, lib) }

// WriteDEF writes the design as DEF with the given center positions.
func WriteDEF(w io.Writer, d *Design, x, y []float64) error { return lefdef.WriteDEF(w, d, x, y) }

// RouteEstimate scores a placement's routability (the OVFL-5 metric of
// Table 4). Pass nil positions to use the design's stored ones.
func RouteEstimate(d *Design, x, y []float64, opts RouteOptions) *RouteResult {
	return router.Route(d, x, y, opts)
}

// NewModel builds an untrained FNO (§3.3). DefaultModelConfig matches the
// paper's ~471k-parameter scale.
func NewModel(cfg ModelConfig) *Model { return nn.NewModel(cfg) }

// DefaultModelConfig is the paper-scale FNO architecture.
func DefaultModelConfig() ModelConfig { return nn.DefaultConfig() }

// GenerateTrainingSamples builds random density maps with numerically
// solved field labels (the paper's training-data recipe).
func GenerateTrainingSamples(n, h, w int, seed int64) []TrainSample {
	return nn.GenerateSamples(n, h, w, seed)
}

// GenerateBenchmarkTrainingSamples builds training examples from the
// synthetic contest benchmarks: perBench random placements of each named
// design are scattered onto a res x res grid and labelled with the
// numerical Poisson solve — density statistics a placer actually
// encounters, complementing the purely random maps of
// GenerateTrainingSamples. Unknown benchmark names are an error.
func GenerateBenchmarkTrainingSamples(benches []string, perBench, res int, scale float64, seed int64) ([]TrainSample, error) {
	return nn.GenerateBenchSamples(benches, perBench, res, res, scale, seed)
}

// NewFieldPredictor adapts a trained model to PlacementOptions.Predictor,
// turning the placer into Xplace-NN.
func NewFieldPredictor(m *Model) placer.FieldPredictor { return &nn.Predictor{M: m} }

// LoadModel restores a model saved with Model.Save, verifying the
// artifact's version, declared shapes and payload checksum (see the
// ErrModel* sentinels).
func LoadModel(r io.Reader) (*Model, error) { return nn.Load(r) }

// StatModel reads and validates a model artifact's header (architecture,
// training resolution, parameter count, payload checksum) without
// decoding the weights — cheap inspection for tooling like `xtrain -stat`.
func StatModel(r io.Reader) (ModelArtifactHeader, error) { return nn.Stat(r) }

// WriteSVG renders a placement as SVG (cells colored by kind, fences
// dashed, optional net flylines). Pass nil positions for stored ones.
func WriteSVG(w io.Writer, d *Design, x, y []float64, opts SVGOptions) error {
	return viz.WriteSVG(w, d, x, y, opts)
}

// SVGOptions tunes WriteSVG.
type SVGOptions = viz.SVGOptions

// WriteHeatmapPGM renders a bin map (density, congestion) as a PGM image.
func WriteHeatmapPGM(w io.Writer, data []float64, nx, ny int) error {
	return viz.WritePGM(w, data, nx, ny)
}

// ASCIIHeatmap renders a bin map as a text heatmap for logs.
func ASCIIHeatmap(data []float64, nx, ny int) string { return viz.ASCIIHeatmap(data, nx, ny) }
