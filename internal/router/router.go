// Package router is a light global router used to score the
// detailed-routability of a placement — the reproduction's substitute for
// the NCTUgr evaluation of Table 4. Nets are decomposed into 2-pin
// segments by a Prim spanning tree, routed sequentially as L-shapes (with
// a Z-shape escape during rip-up-and-reroute) over a gcell edge-capacity
// grid, picking the less congested bend greedily.
//
// The reported OVFL-5 metric is the paper's "top5 overflow": the average
// overflow of the top 5% most congested gcells.
package router

import (
	"math"
	"sort"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// Options configures the router.
type Options struct {
	// Grid is the gcell grid dimension per axis (default 64).
	Grid int
	// Capacity is the routing capacity of one gcell edge in tracks
	// (default 12 horizontal and vertical alike).
	Capacity float64
	// RipUpPasses is the number of rip-up-and-reroute passes over
	// segments crossing overflowed edges (default 2).
	RipUpPasses int
	// MaxTreePins caps the Prim decomposition cost for huge nets; nets
	// with more pins are decomposed as a star around the first pin
	// (default 32).
	MaxTreePins int
}

func (o Options) withDefaults() Options {
	if o.Grid == 0 {
		o.Grid = 64
	}
	if o.Capacity == 0 {
		o.Capacity = 12
	}
	if o.RipUpPasses == 0 {
		o.RipUpPasses = 2
	}
	if o.MaxTreePins == 0 {
		o.MaxTreePins = 32
	}
	return o
}

// Result holds the routing congestion outcome.
type Result struct {
	Grid geom.Grid
	// HUsage[y*Nx+x] is the usage of the horizontal edge from gcell
	// (x,y) to (x+1,y); the last column is unused. VUsage likewise for
	// vertical edges.
	HUsage, VUsage []float64
	Capacity       float64
	// GCellOverflow[y*Nx+x] is the total edge overflow charged to the
	// gcell.
	GCellOverflow []float64
	// Top5Overflow is the average overflow of the 5% most congested
	// gcells (the paper's OVFL-5).
	Top5Overflow float64
	// TotalOverflow sums all edge overflow.
	TotalOverflow float64
	// WirelengthGCells is the total routed length in gcell steps.
	WirelengthGCells int
}

type segment struct {
	x1, y1, x2, y2 int // gcell coords
	hvFirst        bool
	zBend          int // -1: plain L; otherwise the bend coordinate of a Z route
}

type router struct {
	opts   Options
	grid   geom.Grid
	nx, ny int
	hUse   []float64
	vUse   []float64
	segs   []segment
}

// Route routes design d at positions (x, y) (nil means stored positions)
// and returns the congestion result.
func Route(d *netlist.Design, x, y []float64, opts Options) *Result {
	o := opts.withDefaults()
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	grid := geom.NewGrid(d.Region, o.Grid, o.Grid)
	r := &router{
		opts: o, grid: grid, nx: o.Grid, ny: o.Grid,
		hUse: make([]float64, o.Grid*o.Grid),
		vUse: make([]float64, o.Grid*o.Grid),
	}

	// Decompose nets into 2-pin gcell segments.
	for n := 0; n < d.NumNets(); n++ {
		s, e := d.NetPinStart[n], d.NetPinStart[n+1]
		if e-s < 2 {
			continue
		}
		pts := make([][2]int, 0, e-s)
		for p := s; p < e; p++ {
			c := d.PinCell[p]
			ix, iy := grid.BinCoords(geom.Point{X: x[c] + d.PinOffX[p], Y: y[c] + d.PinOffY[p]})
			pts = append(pts, [2]int{ix, iy})
		}
		r.decompose(pts)
	}

	// Initial greedy routing.
	for i := range r.segs {
		r.routeSeg(&r.segs[i], true)
	}
	// Rip-up and reroute segments over congested edges.
	for pass := 0; pass < o.RipUpPasses; pass++ {
		changed := false
		for i := range r.segs {
			sg := &r.segs[i]
			if r.segOverflow(sg) == 0 {
				continue
			}
			r.applySeg(sg, -1)
			r.routeSeg(sg, true)
			changed = true
		}
		if !changed {
			break
		}
	}
	return r.result()
}

// decompose appends the 2-pin segments of one net's pin set: Prim MST for
// small nets, a star for large ones.
func (r *router) decompose(pts [][2]int) {
	// Dedupe gcells.
	seen := map[[2]int]bool{}
	uniq := pts[:0]
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 2 {
		return
	}
	add := func(a, b [2]int) {
		if a == b {
			return
		}
		r.segs = append(r.segs, segment{x1: a[0], y1: a[1], x2: b[0], y2: b[1], zBend: -1})
	}
	if len(uniq) > r.opts.MaxTreePins {
		for i := 1; i < len(uniq); i++ {
			add(uniq[0], uniq[i])
		}
		return
	}
	// Prim MST under Manhattan distance.
	n := len(uniq)
	inTree := make([]bool, n)
	dist := make([]int, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	dist[0] = 0
	parent[0] = -1
	for it := 0; it < n; it++ {
		best, bd := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		if parent[best] >= 0 {
			add(uniq[parent[best]], uniq[best])
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			dd := abs(uniq[i][0]-uniq[best][0]) + abs(uniq[i][1]-uniq[best][1])
			if dd < dist[i] {
				dist[i] = dd
				parent[i] = best
			}
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// edgeCost is the congestion cost of adding one track to an edge with the
// given current usage (quadratic in the load factor past capacity).
func (r *router) edgeCost(use float64) float64 {
	l := use / r.opts.Capacity
	if l < 0.7 {
		return 1
	}
	return 1 + (l-0.7)*(l-0.7)*40
}

// walk visits every edge of a candidate route: an L (hvFirst selects bend
// order) or a Z with a mid bend. fn receives (horizontal?, edge index).
func (r *router) walk(sg *segment, hvFirst bool, zBend int, fn func(horiz bool, idx int)) {
	x1, y1, x2, y2 := sg.x1, sg.y1, sg.x2, sg.y2
	hspan := func(y, xa, xb int) {
		if xa > xb {
			xa, xb = xb, xa
		}
		for x := xa; x < xb; x++ {
			fn(true, y*r.nx+x)
		}
	}
	vspan := func(x, ya, yb int) {
		if ya > yb {
			ya, yb = yb, ya
		}
		for y := ya; y < yb; y++ {
			fn(false, y*r.nx+x)
		}
	}
	switch {
	case zBend >= 0 && x1 != x2 && y1 != y2:
		if hvFirst {
			// H to zBend, V, H to target.
			hspan(y1, x1, zBend)
			vspan(zBend, y1, y2)
			hspan(y2, zBend, x2)
		} else {
			vspan(x1, y1, zBend)
			hspan(zBend, x1, x2)
			vspan(x2, zBend, y2)
		}
	case hvFirst:
		hspan(y1, x1, x2)
		vspan(x2, y1, y2)
	default:
		vspan(x1, y1, y2)
		hspan(y2, x1, x2)
	}
}

// routeCost evaluates a candidate without committing.
func (r *router) routeCost(sg *segment, hvFirst bool, zBend int) float64 {
	var cost float64
	r.walk(sg, hvFirst, zBend, func(h bool, idx int) {
		if h {
			cost += r.edgeCost(r.hUse[idx])
		} else {
			cost += r.edgeCost(r.vUse[idx])
		}
	})
	return cost
}

// applySeg adds delta tracks along the segment's committed route.
func (r *router) applySeg(sg *segment, delta float64) {
	r.walk(sg, sg.hvFirst, sg.zBend, func(h bool, idx int) {
		if h {
			r.hUse[idx] += delta
		} else {
			r.vUse[idx] += delta
		}
	})
}

// segOverflow returns the total overflow along the committed route.
func (r *router) segOverflow(sg *segment) float64 {
	var over float64
	r.walk(sg, sg.hvFirst, sg.zBend, func(h bool, idx int) {
		use := r.vUse[idx]
		if h {
			use = r.hUse[idx]
		}
		if use > r.opts.Capacity {
			over += use - r.opts.Capacity
		}
	})
	return over
}

// routeSeg picks the cheapest of the two Ls and a handful of Z routes and
// commits it.
func (r *router) routeSeg(sg *segment, commit bool) {
	type cand struct {
		hv bool
		z  int
	}
	cands := []cand{{true, -1}, {false, -1}}
	if sg.x1 != sg.x2 && sg.y1 != sg.y2 {
		// Z bends at 1/4, 1/2, 3/4 of the span.
		for _, f := range []float64{0.25, 0.5, 0.75} {
			zx := sg.x1 + int(f*float64(sg.x2-sg.x1))
			zy := sg.y1 + int(f*float64(sg.y2-sg.y1))
			if zx != sg.x1 && zx != sg.x2 {
				cands = append(cands, cand{true, zx})
			}
			if zy != sg.y1 && zy != sg.y2 {
				cands = append(cands, cand{false, zy})
			}
		}
	}
	best := cands[0]
	bestCost := math.Inf(1)
	for _, c := range cands {
		if cost := r.routeCost(sg, c.hv, c.z); cost < bestCost {
			bestCost = cost
			best = c
		}
	}
	sg.hvFirst = best.hv
	sg.zBend = best.z
	if commit {
		r.applySeg(sg, 1)
	}
}

func (r *router) result() *Result {
	res := &Result{
		Grid:     r.grid,
		HUsage:   r.hUse,
		VUsage:   r.vUse,
		Capacity: r.opts.Capacity,
	}
	res.GCellOverflow = make([]float64, r.nx*r.ny)
	for idx := range r.hUse {
		if ov := r.hUse[idx] - r.opts.Capacity; ov > 0 {
			res.GCellOverflow[idx] += ov
			res.TotalOverflow += ov
		}
		if ov := r.vUse[idx] - r.opts.Capacity; ov > 0 {
			res.GCellOverflow[idx] += ov
			res.TotalOverflow += ov
		}
		res.WirelengthGCells += int(r.hUse[idx] + r.vUse[idx])
	}
	// Top 5% most congested gcells.
	sorted := append([]float64(nil), res.GCellOverflow...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := len(sorted) / 20
	if k == 0 {
		k = 1
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += sorted[i]
	}
	res.Top5Overflow = sum / float64(k)
	return res
}
