package router

import (
	"math"
	"testing"

	"xplace/internal/benchgen"
	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// twoPinDesign builds a design with one 2-pin net between fixed corners.
func twoPinDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("two", geom.Rect{Hx: 64, Hy: 64})
	a := d.AddCell("a", 1, 1, 4, 4, netlist.Fixed)
	b := d.AddCell("b", 1, 1, 60, 60, netlist.Fixed)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteTwoPinLength(t *testing.T) {
	d := twoPinDesign(t)
	res := Route(d, nil, nil, Options{Grid: 64, Capacity: 12})
	// Pins at gcells (4,4) and (60,60): Manhattan 112 gcell edges.
	if res.WirelengthGCells != 112 {
		t.Errorf("routed length = %d, want 112", res.WirelengthGCells)
	}
	if res.TotalOverflow != 0 {
		t.Errorf("single net should not overflow: %v", res.TotalOverflow)
	}
	if res.Top5Overflow != 0 {
		t.Errorf("Top5Overflow = %v, want 0", res.Top5Overflow)
	}
}

func TestRouteUsageConservation(t *testing.T) {
	d := twoPinDesign(t)
	res := Route(d, nil, nil, Options{Grid: 64})
	var used float64
	for i := range res.HUsage {
		used += res.HUsage[i] + res.VUsage[i]
	}
	if used != 112 {
		t.Errorf("total edge usage = %v, want 112", used)
	}
}

func TestCongestionSpreadsAcrossBends(t *testing.T) {
	// Many parallel nets between the same two regions: the router should
	// split them over different bends so max edge usage stays below the
	// single-path worst case.
	d := netlist.NewDesign("par", geom.Rect{Hx: 64, Hy: 64})
	var pins [][2]int
	for i := 0; i < 40; i++ {
		a := d.AddCell("a", 1, 1, 5, 5, netlist.Fixed)
		b := d.AddCell("b", 1, 1, 59, 59, netlist.Fixed)
		pins = append(pins, [2]int{a, b})
	}
	for _, p := range pins {
		d.AddNet("n")
		d.AddPin(p[0], 0, 0)
		d.AddPin(p[1], 0, 0)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	res := Route(d, nil, nil, Options{Grid: 64, Capacity: 8})
	maxUse := 0.0
	for i := range res.HUsage {
		maxUse = math.Max(maxUse, math.Max(res.HUsage[i], res.VUsage[i]))
	}
	if maxUse >= 40 {
		t.Errorf("all 40 nets on one path (max usage %v): no congestion spreading", maxUse)
	}
	t.Logf("max edge usage %v for 40 identical nets, cap 8", maxUse)
}

func TestRipUpReducesOverflow(t *testing.T) {
	spec, _ := benchgen.FindSpec("fft_1")
	d := benchgen.Generate(spec, 0.05, 1)
	r0 := Route(d, nil, nil, Options{Grid: 32, Capacity: 6, RipUpPasses: 1})
	r2 := Route(d, nil, nil, Options{Grid: 32, Capacity: 6, RipUpPasses: 4})
	if r2.TotalOverflow > r0.TotalOverflow*1.05 {
		t.Errorf("more rip-up passes should not increase overflow: %v -> %v",
			r0.TotalOverflow, r2.TotalOverflow)
	}
}

func TestTop5OverflowDefinition(t *testing.T) {
	// Craft a result by routing a design known to congest one corridor,
	// then verify Top5 = mean of the top 5% gcells.
	spec, _ := benchgen.FindSpec("pci_bridge32_a")
	d := benchgen.Generate(spec, 0.05, 2)
	res := Route(d, nil, nil, Options{Grid: 32, Capacity: 4})
	sorted := append([]float64(nil), res.GCellOverflow...)
	// Manual top-5% mean.
	k := len(sorted) / 20
	if k == 0 {
		k = 1
	}
	// Partial selection sort for the top k.
	for i := 0; i < k; i++ {
		mi := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[mi] {
				mi = j
			}
		}
		sorted[i], sorted[mi] = sorted[mi], sorted[i]
	}
	var want float64
	for i := 0; i < k; i++ {
		want += sorted[i]
	}
	want /= float64(k)
	if math.Abs(res.Top5Overflow-want) > 1e-9 {
		t.Errorf("Top5Overflow = %v, want %v", res.Top5Overflow, want)
	}
}

func TestBetterPlacementLowerCongestion(t *testing.T) {
	// A clustered placement (everything in one corner) must congest more
	// than the spread original.
	spec, _ := benchgen.FindSpec("fft_2")
	d := benchgen.Generate(spec, 0.05, 3)
	spread := Route(d, nil, nil, Options{Grid: 32, Capacity: 8})

	n := d.NumCells()
	cx := make([]float64, n)
	cy := make([]float64, n)
	copy(cx, d.CellX)
	copy(cy, d.CellY)
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Movable {
			cx[c] = d.Region.W() * 0.1 * (cx[c] / d.Region.W())
			cy[c] = d.Region.H() * 0.1 * (cy[c] / d.Region.H())
		}
	}
	clustered := Route(d, cx, cy, Options{Grid: 32, Capacity: 8})
	if clustered.Top5Overflow <= spread.Top5Overflow {
		t.Errorf("clustered OVFL-5 %v should exceed spread %v",
			clustered.Top5Overflow, spread.Top5Overflow)
	}
}

func TestStarDecompositionForHugeNets(t *testing.T) {
	d := netlist.NewDesign("huge", geom.Rect{Hx: 64, Hy: 64})
	ids := make([]int, 50)
	for i := range ids {
		ids[i] = d.AddCell("c", 1, 1, float64(1+i), float64(1+i), netlist.Fixed)
	}
	d.AddNet("big")
	for _, id := range ids {
		d.AddPin(id, 0, 0)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	res := Route(d, nil, nil, Options{Grid: 64, MaxTreePins: 32})
	if res.WirelengthGCells == 0 {
		t.Error("huge net not routed")
	}
}

func TestSinglePinAndSameGCellNetsIgnored(t *testing.T) {
	d := netlist.NewDesign("deg", geom.Rect{Hx: 64, Hy: 64})
	a := d.AddCell("a", 1, 1, 10, 10, netlist.Fixed)
	b := d.AddCell("b", 1, 1, 10.2, 10.2, netlist.Fixed) // same gcell
	d.AddNet("n1")
	d.AddPin(a, 0, 0)
	d.AddNet("n2")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	res := Route(d, nil, nil, Options{Grid: 64})
	if res.WirelengthGCells != 0 {
		t.Errorf("degenerate nets routed %d edges", res.WirelengthGCells)
	}
}

func BenchmarkRoute(b *testing.B) {
	spec, _ := benchgen.FindSpec("fft_1")
	d := benchgen.Generate(spec, 0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(d, nil, nil, Options{Grid: 64})
	}
}
