package dct

// Ablation benches (DESIGN.md §5.2): the FFT-based DCT against the naive
// O(n^2) transform it replaces, and the v2 spectral engine (Makhoul
// kernels + tiled column transpose) against the v1 mirrored-FFT path.

import (
	"fmt"
	"math"
	"testing"
)

// naiveDCT2 is the direct O(n^2)-per-row 2-D DCT-II.
func naiveDCT2(f, out []float64, nx, ny int) {
	tmp := make([]float64, nx*ny)
	// Rows.
	for y := 0; y < ny; y++ {
		for u := 0; u < nx; u++ {
			var s float64
			for x := 0; x < nx; x++ {
				s += f[y*nx+x] * math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/(2*float64(nx)))
			}
			tmp[y*nx+u] = s
		}
	}
	// Columns.
	for x := 0; x < nx; x++ {
		for v := 0; v < ny; v++ {
			var s float64
			for y := 0; y < ny; y++ {
				s += tmp[y*nx+x] * math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/(2*float64(ny)))
			}
			out[v*nx+x] = s
		}
	}
}

func TestNaiveDCTMatchesFFTDCT(t *testing.T) {
	nx, ny := 16, 16
	f := randGrid(nx, ny, 21)
	want := make([]float64, nx*ny)
	NewPlan(nx, ny).DCT2(f, want, Serial)
	got := make([]float64, nx*ny)
	naiveDCT2(f, got, nx, ny)
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("naive vs FFT DCT differ by %g", d)
	}
}

func BenchmarkAblationDCTNaive128(b *testing.B) {
	nx, ny := 128, 128
	f := randGrid(nx, ny, 5)
	out := make([]float64, nx*ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveDCT2(f, out, nx, ny)
	}
}

func BenchmarkAblationDCTFFT128(b *testing.B) {
	nx, ny := 128, 128
	f := randGrid(nx, ny, 5)
	out := make([]float64, nx*ny)
	p := NewPlan(nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(f, out, Serial)
	}
}

// BenchmarkAblationSpectral: v1 vs v2 forward+inverse round trip across the
// production grid sizes (the placer runs 256-1024 square grids).
func BenchmarkAblationSpectral(b *testing.B) {
	for _, pv := range planVersions {
		for _, n := range []int{256, 512, 1024} {
			b.Run(fmt.Sprintf("%s/%d", pv.name, n), func(b *testing.B) {
				benchRoundTrip(b, pv.mk(n, n), n)
			})
		}
	}
}

// BenchmarkAblationFieldEval: the full Poisson evaluation (psi, Ex, Ey) —
// batched two-pass sweep on v2 vs the sequential three-transform fallback
// on v1.
func BenchmarkAblationFieldEval(b *testing.B) {
	for _, pv := range planVersions {
		for _, n := range []int{256, 512} {
			b.Run(fmt.Sprintf("%s/%d", pv.name, n), func(b *testing.B) {
				p := pv.mk(n, n)
				coef := randGrid(n, n, 3)
				sx := randGrid(n, 1, 5)
				sy := randGrid(n, 1, 7)
				psi := make([]float64, n*n)
				ex := make([]float64, n*n)
				ey := make([]float64, n*n)
				p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
				}
			})
		}
	}
}
