package dct

// Ablation bench (DESIGN.md §5.2): the FFT-based DCT against the naive
// O(n^2) transform it replaces.

import (
	"math"
	"testing"
)

// naiveDCT2 is the direct O(n^2)-per-row 2-D DCT-II.
func naiveDCT2(f, out []float64, nx, ny int) {
	tmp := make([]float64, nx*ny)
	// Rows.
	for y := 0; y < ny; y++ {
		for u := 0; u < nx; u++ {
			var s float64
			for x := 0; x < nx; x++ {
				s += f[y*nx+x] * math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/(2*float64(nx)))
			}
			tmp[y*nx+u] = s
		}
	}
	// Columns.
	for x := 0; x < nx; x++ {
		for v := 0; v < ny; v++ {
			var s float64
			for y := 0; y < ny; y++ {
				s += tmp[y*nx+x] * math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/(2*float64(ny)))
			}
			out[v*nx+x] = s
		}
	}
}

func TestNaiveDCTMatchesFFTDCT(t *testing.T) {
	nx, ny := 16, 16
	f := randGrid(nx, ny, 21)
	want := make([]float64, nx*ny)
	NewPlan(nx, ny).DCT2(f, want, Serial)
	got := make([]float64, nx*ny)
	naiveDCT2(f, got, nx, ny)
	if d := maxAbsDiff(got, want); d > 1e-8 {
		t.Errorf("naive vs FFT DCT differ by %g", d)
	}
}

func BenchmarkAblationDCTNaive128(b *testing.B) {
	nx, ny := 128, 128
	f := randGrid(nx, ny, 5)
	out := make([]float64, nx*ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveDCT2(f, out, nx, ny)
	}
}

func BenchmarkAblationDCTFFT128(b *testing.B) {
	nx, ny := 128, 128
	f := randGrid(nx, ny, 5)
	out := make([]float64, nx*ny)
	p := NewPlan(nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(f, out, Serial)
	}
}
