package dct

import (
	"fmt"
	"math"
)

// Plan holds precomputed state for 2-D transforms on an Nx x Ny grid
// (row-major indexing: f[y*Nx+x]). Both dimensions must be powers of two.
// A Plan is safe for concurrent use once created.
type Plan struct {
	Nx, Ny int
	rowFFT *fftPlan // length 2*Nx
	colFFT *fftPlan // length 2*Ny
}

// NewPlan creates a transform plan for an Nx x Ny grid.
func NewPlan(nx, ny int) *Plan {
	if nx <= 0 || ny <= 0 || nx&(nx-1) != 0 || ny&(ny-1) != 0 {
		panic(fmt.Sprintf("dct: grid %dx%d must be powers of two", nx, ny))
	}
	return &Plan{Nx: nx, Ny: ny, rowFFT: newFFTPlan(2 * nx), colFFT: newFFTPlan(2 * ny)}
}

func (p *Plan) checkSize(buf []float64, what string) {
	if len(buf) != p.Nx*p.Ny {
		panic(fmt.Sprintf("dct: %s has %d elements, want %d", what, len(buf), p.Nx*p.Ny))
	}
}

// dctIIRow computes the unnormalized 1-D DCT-II of src into dst using the
// mirrored length-2N FFT identity. scratch must have length 2N.
func dctIIRow(src, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64) {
	n := len(src)
	for i := 0; i < n; i++ {
		scratch[i] = complex(src[i], 0)
		scratch[2*n-1-i] = complex(src[i], 0)
	}
	fp.transform(scratch, false)
	// X_k = 0.5 * Re(e^{-i*pi*k/(2N)} * Y_k)
	for k := 0; k < n; k++ {
		re := real(scratch[k])*cosHalf[k] + imag(scratch[k])*sinHalf[k]
		dst[k] = 0.5 * re
	}
}

// evalRow evaluates f_n = sum_u c_u * e^{i*pi*u*(2n+1)/(2N)} for n=0..N-1
// via one inverse-DFT of length 2N; the cosine series is the real part and
// the sine series the imaginary part. wantSin selects which lands in dst.
func evalRow(coef, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64, wantSin bool) {
	n := len(coef)
	for u := 0; u < n; u++ {
		// w_u = c_u * e^{i*pi*u/(2N)}
		scratch[u] = complex(coef[u]*cosHalf[u], coef[u]*sinHalf[u])
	}
	for u := n; u < 2*n; u++ {
		scratch[u] = 0
	}
	fp.transform(scratch, true) // unnormalized inverse: sum_u w_u e^{+2pi i u n / 2N}
	if wantSin {
		for i := 0; i < n; i++ {
			dst[i] = imag(scratch[i])
		}
	} else {
		for i := 0; i < n; i++ {
			dst[i] = real(scratch[i])
		}
	}
}

// halfTwiddles returns cos/sin of pi*k/(2N) for k = 0..N-1.
func halfTwiddles(n int) (cosH, sinH []float64) {
	cosH = make([]float64, n)
	sinH = make([]float64, n)
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		cosH[k] = math.Cos(ang)
		sinH[k] = math.Sin(ang)
	}
	return
}

// DCT2 computes the unnormalized 2-D DCT-II of src into dst:
// dst[v][u] = sum_{y,x} src[y][x] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
// src and dst may alias.
func (p *Plan) DCT2(src, dst []float64, L Launcher) {
	p.checkSize(src, "src")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	nx, ny := p.Nx, p.Ny
	cosHx, sinHx := halfTwiddles(nx)
	cosHy, sinHy := halfTwiddles(ny)
	// negate sin for forward (e^{-i pi k/2N}): re = Re*cos + Im*sin handled
	// in dctIIRow with positive sin, matching e^{-i t}: Re(e^{-it} Y) =
	// cos(t)*Re(Y) + sin(t)*Im(Y). So pass sinH as is.
	tmp := make([]float64, nx*ny)
	// Rows.
	L.Launch("dct2.rows", ny, func(lo, hi int) {
		scratch := make([]complex128, 2*nx)
		for y := lo; y < hi; y++ {
			dctIIRow(src[y*nx:(y+1)*nx], tmp[y*nx:(y+1)*nx], p.rowFFT, scratch, cosHx, sinHx)
		}
	})
	// Columns.
	L.Launch("dct2.cols", nx, func(lo, hi int) {
		scratch := make([]complex128, 2*ny)
		col := make([]float64, ny)
		out := make([]float64, ny)
		for x := lo; x < hi; x++ {
			for y := 0; y < ny; y++ {
				col[y] = tmp[y*nx+x]
			}
			dctIIRow(col, out, p.colFFT, scratch, cosHy, sinHy)
			for y := 0; y < ny; y++ {
				dst[y*nx+x] = out[y]
			}
		}
	})
}

// eval2D is the shared implementation of the three evaluation transforms.
func (p *Plan) eval2D(coef, dst []float64, L Launcher, sinX, sinY bool, name string) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	nx, ny := p.Nx, p.Ny
	cosHx, sinHx := halfTwiddles(nx)
	cosHy, sinHy := halfTwiddles(ny)
	tmp := make([]float64, nx*ny)
	// Evaluate along x (rows of the coefficient matrix: index u).
	L.Launch(name+".rows", ny, func(lo, hi int) {
		scratch := make([]complex128, 2*nx)
		for v := lo; v < hi; v++ {
			evalRow(coef[v*nx:(v+1)*nx], tmp[v*nx:(v+1)*nx], p.rowFFT, scratch, cosHx, sinHx, sinX)
		}
	})
	// Evaluate along y (columns: index v).
	L.Launch(name+".cols", nx, func(lo, hi int) {
		scratch := make([]complex128, 2*ny)
		col := make([]float64, ny)
		out := make([]float64, ny)
		for x := lo; x < hi; x++ {
			for v := 0; v < ny; v++ {
				col[v] = tmp[v*nx+x]
			}
			evalRow(col, out, p.colFFT, scratch, cosHy, sinHy, sinY)
			for y := 0; y < ny; y++ {
				dst[y*nx+x] = out[y]
			}
		}
	})
}

// EvalCosCos evaluates the cos-cos series (inverse DCT direction):
// dst[y][x] = sum_{v,u} coef[v][u] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalCosCos(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, false, false, "idct2")
}

// EvalSinCos evaluates the sin-in-x, cos-in-y series (the x electric field):
// dst[y][x] = sum_{v,u} coef[v][u] sin(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalSinCos(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, true, false, "idsct2")
}

// EvalCosSin evaluates the cos-in-x, sin-in-y series (the y electric field).
func (p *Plan) EvalCosSin(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, false, true, "idcst2")
}
