package dct

import (
	"fmt"
	"math"
	"sync"
)

// Plan holds precomputed state for 2-D transforms on an Nx x Ny grid
// (row-major indexing: f[y*Nx+x]). Both dimensions must be powers of two.
//
// A Plan owns all scratch for its transforms — the intermediate matrix,
// per-chunk FFT buffers, and column gather/scatter buffers — so steady-state
// transforms perform no heap allocations. Transforms are serialized by an
// internal mutex, keeping a Plan safe for concurrent use.
type Plan struct {
	Nx, Ny int
	rowFFT *fftPlan // length 2*Nx
	colFFT *fftPlan // length 2*Ny

	// Half-angle twiddles cos/sin(pi*k/(2N)), precomputed once.
	cosHx, sinHx []float64
	cosHy, sinHy []float64

	mu  sync.Mutex
	tmp []float64 // nx*ny intermediate (rows pass output)

	// Per-chunk scratch, grown on demand to the launcher's worker count.
	scratchRow [][]complex128 // 2*nx each
	scratchCol [][]complex128 // 2*ny each
	colBuf     [][]float64    // ny each
	outBuf     [][]float64    // ny each

	// Per-transform parameters consumed by the persistent bodies. Stored in
	// fields (rather than captured by per-call closures) so launching a
	// transform does not allocate.
	src, dst   []float64
	sinX, sinY bool
	forward    bool

	rowsBody, colsBody func(chunk, start, end int)
}

// Launcher abstracts kernel.Engine for data-parallel execution so this
// package stays dependency-free. LaunchChunks hands each worker a chunk
// index (used to select private scratch); Workers bounds those indices.
type Launcher interface {
	Launch(name string, n int, body func(start, end int))
	LaunchChunks(name string, n int, body func(chunk, start, end int)) int
	Workers() int
}

// NewPlan creates a transform plan for an Nx x Ny grid.
func NewPlan(nx, ny int) *Plan {
	if nx <= 0 || ny <= 0 || nx&(nx-1) != 0 || ny&(ny-1) != 0 {
		panic(fmt.Sprintf("dct: grid %dx%d must be powers of two", nx, ny))
	}
	p := &Plan{Nx: nx, Ny: ny, rowFFT: newFFTPlan(2 * nx), colFFT: newFFTPlan(2 * ny)}
	p.cosHx, p.sinHx = halfTwiddles(nx)
	p.cosHy, p.sinHy = halfTwiddles(ny)
	p.tmp = make([]float64, nx*ny)
	p.rowsBody = func(chunk, lo, hi int) {
		scratch := p.scratchRow[chunk]
		if p.forward {
			for y := lo; y < hi; y++ {
				dctIIRow(p.src[y*nx:(y+1)*nx], p.tmp[y*nx:(y+1)*nx], p.rowFFT, scratch, p.cosHx, p.sinHx)
			}
		} else {
			for v := lo; v < hi; v++ {
				evalRow(p.src[v*nx:(v+1)*nx], p.tmp[v*nx:(v+1)*nx], p.rowFFT, scratch, p.cosHx, p.sinHx, p.sinX)
			}
		}
	}
	p.colsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratchCol[chunk]
		col := p.colBuf[chunk]
		out := p.outBuf[chunk]
		for x := lo; x < hi; x++ {
			for y := 0; y < ny; y++ {
				col[y] = p.tmp[y*nx+x]
			}
			if p.forward {
				dctIIRow(col, out, p.colFFT, scratch, p.cosHy, p.sinHy)
			} else {
				evalRow(col, out, p.colFFT, scratch, p.cosHy, p.sinHy, p.sinY)
			}
			for y := 0; y < ny; y++ {
				p.dst[y*nx+x] = out[y]
			}
		}
	}
	return p
}

func (p *Plan) checkSize(buf []float64, what string) {
	if len(buf) != p.Nx*p.Ny {
		panic(fmt.Sprintf("dct: %s has %d elements, want %d", what, len(buf), p.Nx*p.Ny))
	}
}

// ensureChunks grows the per-chunk scratch pools to at least w entries.
// Called with p.mu held; allocates only when the worker count first grows.
func (p *Plan) ensureChunks(w int) {
	if w < 1 {
		w = 1
	}
	for len(p.scratchRow) < w {
		p.scratchRow = append(p.scratchRow, make([]complex128, 2*p.Nx))
		p.scratchCol = append(p.scratchCol, make([]complex128, 2*p.Ny))
		p.colBuf = append(p.colBuf, make([]float64, p.Ny))
		p.outBuf = append(p.outBuf, make([]float64, p.Ny))
	}
}

// run executes the two-pass (rows then columns) transform with the
// parameters already staged in p's fields. Caller must hold p.mu. The two
// kernel names are passed as literals by each transform so launching never
// builds a string.
func (p *Plan) run(L Launcher, rowsName, colsName string) {
	p.ensureChunks(L.Workers())
	L.LaunchChunks(rowsName, p.Ny, p.rowsBody)
	L.LaunchChunks(colsName, p.Nx, p.colsBody)
	p.src, p.dst = nil, nil
}

// dctIIRow computes the unnormalized 1-D DCT-II of src into dst using the
// mirrored length-2N FFT identity. scratch must have length 2N.
func dctIIRow(src, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64) {
	n := len(src)
	for i := 0; i < n; i++ {
		scratch[i] = complex(src[i], 0)
		scratch[2*n-1-i] = complex(src[i], 0)
	}
	fp.transform(scratch, false)
	// X_k = 0.5 * Re(e^{-i*pi*k/(2N)} * Y_k)
	for k := 0; k < n; k++ {
		re := real(scratch[k])*cosHalf[k] + imag(scratch[k])*sinHalf[k]
		dst[k] = 0.5 * re
	}
}

// evalRow evaluates f_n = sum_u c_u * e^{i*pi*u*(2n+1)/(2N)} for n=0..N-1
// via one inverse-DFT of length 2N; the cosine series is the real part and
// the sine series the imaginary part. wantSin selects which lands in dst.
func evalRow(coef, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64, wantSin bool) {
	n := len(coef)
	for u := 0; u < n; u++ {
		// w_u = c_u * e^{i*pi*u/(2N)}
		scratch[u] = complex(coef[u]*cosHalf[u], coef[u]*sinHalf[u])
	}
	for u := n; u < 2*n; u++ {
		scratch[u] = 0
	}
	fp.transform(scratch, true) // unnormalized inverse: sum_u w_u e^{+2pi i u n / 2N}
	if wantSin {
		for i := 0; i < n; i++ {
			dst[i] = imag(scratch[i])
		}
	} else {
		for i := 0; i < n; i++ {
			dst[i] = real(scratch[i])
		}
	}
}

// halfTwiddles returns cos/sin of pi*k/(2N) for k = 0..N-1.
func halfTwiddles(n int) (cosH, sinH []float64) {
	cosH = make([]float64, n)
	sinH = make([]float64, n)
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		cosH[k] = math.Cos(ang)
		sinH[k] = math.Sin(ang)
	}
	return
}

// DCT2 computes the unnormalized 2-D DCT-II of src into dst:
// dst[v][u] = sum_{y,x} src[y][x] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
// src and dst may alias.
func (p *Plan) DCT2(src, dst []float64, L Launcher) {
	p.checkSize(src, "src")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src, p.dst, p.forward = src, dst, true
	p.run(L, "dct2.rows", "dct2.cols")
}

// eval2D is the shared implementation of the three evaluation transforms.
func (p *Plan) eval2D(coef, dst []float64, L Launcher, sinX, sinY bool, rowsName, colsName string) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src, p.dst, p.forward = coef, dst, false
	p.sinX, p.sinY = sinX, sinY
	p.run(L, rowsName, colsName)
}

// EvalCosCos evaluates the cos-cos series (inverse DCT direction):
// dst[y][x] = sum_{v,u} coef[v][u] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalCosCos(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, false, false, "idct2.rows", "idct2.cols")
}

// EvalSinCos evaluates the sin-in-x, cos-in-y series (the x electric field):
// dst[y][x] = sum_{v,u} coef[v][u] sin(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalSinCos(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, true, false, "idsct2.rows", "idsct2.cols")
}

// EvalCosSin evaluates the cos-in-x, sin-in-y series (the y electric field).
func (p *Plan) EvalCosSin(coef, dst []float64, L Launcher) {
	p.eval2D(coef, dst, L, false, true, "idcst2.rows", "idcst2.cols")
}
