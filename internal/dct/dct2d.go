package dct

import (
	"fmt"
	"math"
	"sync"
)

// tileW is the column-tile width of the v2 column pass: the cache-blocked
// transpose gathers tileW adjacent columns per block so every read of the
// intermediate matrix is a contiguous tileW-wide run instead of a stride-Nx
// element gather. 16 float64 = two cache lines per row touched.
const tileW = 16

// Plan holds precomputed state for 2-D transforms on an Nx x Ny grid
// (row-major indexing: f[y*Nx+x]). Both dimensions must be powers of two.
//
// A Plan owns all scratch for its transforms — the intermediate matrices,
// per-chunk FFT buffers, and column tile buffers — so steady-state
// transforms perform no heap allocations. Scratch is drawn from the
// launcher's arena when it provides one (see ArenaLauncher), keeping the
// bytes visible in the engine's accounting. Transforms are serialized by an
// internal mutex, keeping a Plan safe for concurrent use.
//
// Two spectral engines are implemented behind the same API:
//
//	v2 (NewPlan, the default): Makhoul real-even kernels — the forward
//	DCT-II runs a packed length-N/2 complex FFT per row and the evaluation
//	transforms one length-N inverse FFT (see makhoul.go) — and a
//	cache-blocked transpose column pass (tileW columns per block).
//	v1 (NewPlanV1, kept for ablation): mirrored length-2N complex FFT per
//	row and a per-column element-wise gather.
type Plan struct {
	Nx, Ny  int
	version int

	// v1 FFT plans (mirrored/zero-padded transforms).
	rowFFT *fftPlan // length 2*Nx
	colFFT *fftPlan // length 2*Ny

	// v2 FFT plans (packed real / full-length transforms).
	rowHalf *fftPlan // length Nx/2 (nil when Nx < 4)
	rowFull *fftPlan // length Nx
	colHalf *fftPlan // length Ny/2 (nil when Ny < 4)
	colFull *fftPlan // length Ny

	// Half-angle twiddles cos/sin(pi*k/(2N)), precomputed once.
	cosHx, sinHx []float64
	cosHy, sinHy []float64

	// v2 real-FFT unpack twiddles e^{-2*pi*i*k/N}, k = 0..N/2-1.
	unpX, unpY []complex128

	mu   sync.Mutex
	tmp  []float64 // nx*ny intermediate (rows pass output), lazily allocated
	tmp2 []float64 // second intermediate for the batched field evaluation

	// Per-chunk scratch, grown on demand to the launcher's worker count.
	scratch [][]complex128 // FFT buffer: max(nx,ny) (v2) or 2*max (v1)
	rowReal [][]float64    // real staging row: max(nx,ny)
	tileIn  [][]float64    // gathered input columns: tileW*ny (ny for v1)
	tileOut [][]float64    // transformed columns:    tileW*ny (ny for v1)
	// Field-evaluation tiles, grown only once EvalPotentialField is used.
	tileIn2  [][]float64 // gathered tmp2 columns (Ex input)
	tileOutB [][]float64 // Ex output columns
	tileOutC [][]float64 // Ey output columns

	// Per-transform parameters consumed by the persistent bodies. Stored in
	// fields (rather than captured by per-call closures) so launching a
	// transform does not allocate.
	src, dst   []float64
	sinX, sinY bool
	forward    bool

	// Batched field-evaluation parameters.
	coefIn, sx, sy       []float64
	dstPsi, dstEx, dstEy []float64
	rowCut               int // field-eval rows >= rowCut are known-zero; 0 = full

	rowsBody, colsBody           func(chunk, start, end int)
	fieldRowsBody, fieldColsBody func(chunk, start, end int)
	scaleXBody, scaleYBody       func(start, end int)
}

// Launcher abstracts kernel.Engine for data-parallel execution so this
// package stays dependency-free. LaunchChunks hands each worker a chunk
// index (used to select private scratch); Workers bounds those indices.
type Launcher interface {
	Launch(name string, n int, body func(start, end int))
	LaunchChunks(name string, n int, body func(chunk, start, end int)) int
	Workers() int
}

// ArenaLauncher is a Launcher that also owns a scratch allocator
// (kernel.Engine satisfies it). Plans draw their long-lived scratch from it
// when available so the buffers show up in the engine's arena accounting;
// otherwise they fall back to plain make. Release returns the scratch when
// the plan's owner is done (a cancelled placement job must not leave its
// scratch checked out).
type ArenaLauncher interface {
	Launcher
	Alloc(n int) []float64
	AllocComplex(n int) []complex128
	Free(buf []float64)
	FreeComplex(buf []complex128)
}

// NewPlan creates a v2 (Makhoul + tiled transpose) transform plan for an
// Nx x Ny grid.
func NewPlan(nx, ny int) *Plan { return newPlan(nx, ny, 2) }

// NewPlanV1 creates a plan using the original mirrored-FFT row kernels and
// element-wise column gather. Kept for ablation benchmarks and as a
// reference implementation; produces identical results to NewPlan.
func NewPlanV1(nx, ny int) *Plan { return newPlan(nx, ny, 1) }

// Version reports the spectral engine revision (1 or 2) behind this plan.
func (p *Plan) Version() int { return p.version }

// SetFieldRowCutoff declares that the caller zeroes every field-evaluation
// coefficient with row index v >= ky before calling EvalPotentialField, so
// a v2 plan's rows pass may skip transforming those rows (a zero row
// transforms to exactly zero, so the skip is bit-identical to evaluating
// the truncated spectrum in full). ky <= 0 or ky >= Ny restores the full
// evaluation; v1 plans ignore the cutoff. Sticky until changed.
func (p *Plan) SetFieldRowCutoff(ky int) {
	p.mu.Lock()
	if ky <= 0 || ky >= p.Ny {
		ky = 0
	}
	p.rowCut = ky
	p.mu.Unlock()
}

func zeroRow(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func newPlan(nx, ny, version int) *Plan {
	if nx <= 0 || ny <= 0 || nx&(nx-1) != 0 || ny&(ny-1) != 0 {
		panic(fmt.Sprintf("dct: grid %dx%d must be powers of two", nx, ny))
	}
	p := &Plan{Nx: nx, Ny: ny, version: version}
	p.cosHx, p.sinHx = halfTwiddles(nx)
	p.cosHy, p.sinHy = halfTwiddles(ny)
	if version == 1 {
		p.rowFFT = newFFTPlan(2 * nx)
		p.colFFT = newFFTPlan(2 * ny)
		p.buildV1Bodies()
	} else {
		p.rowFull = newFFTPlan(nx)
		p.colFull = newFFTPlan(ny)
		if nx >= 4 {
			p.rowHalf = newFFTPlan(nx / 2)
		}
		if ny >= 4 {
			p.colHalf = newFFTPlan(ny / 2)
		}
		p.unpX = unpackTwiddles(nx)
		p.unpY = unpackTwiddles(ny)
		p.buildV2Bodies()
	}
	p.buildFieldBodies()
	return p
}

// unpackTwiddles returns e^{-2*pi*i*k/n} for k = 0..n/2-1 (the real-FFT
// unpack rotation used by dctIIMakhoul).
func unpackTwiddles(n int) []complex128 {
	m := n / 2
	if m < 1 {
		m = 1
	}
	w := make([]complex128, m)
	for k := range w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return w
}

func (p *Plan) buildV1Bodies() {
	nx := p.Nx
	p.rowsBody = func(chunk, lo, hi int) {
		scratch := p.scratch[chunk][:2*nx]
		if p.forward {
			for y := lo; y < hi; y++ {
				dctIIRow(p.src[y*nx:(y+1)*nx], p.tmp[y*nx:(y+1)*nx], p.rowFFT, scratch, p.cosHx, p.sinHx)
			}
		} else {
			for v := lo; v < hi; v++ {
				evalRow(p.src[v*nx:(v+1)*nx], p.tmp[v*nx:(v+1)*nx], p.rowFFT, scratch, p.cosHx, p.sinHx, p.sinX)
			}
		}
	}
	p.colsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratch[chunk]
		col := p.tileIn[chunk]
		out := p.tileOut[chunk]
		for x := lo; x < hi; x++ {
			for y := 0; y < ny; y++ {
				col[y] = p.tmp[y*nx+x]
			}
			if p.forward {
				dctIIRow(col, out, p.colFFT, scratch[:2*ny], p.cosHy, p.sinHy)
			} else {
				evalRow(col, out, p.colFFT, scratch[:2*ny], p.cosHy, p.sinHy, p.sinY)
			}
			for y := 0; y < ny; y++ {
				p.dst[y*nx+x] = out[y]
			}
		}
	}
}

func (p *Plan) buildV2Bodies() {
	nx := p.Nx
	p.rowsBody = func(chunk, lo, hi int) {
		scratch := p.scratch[chunk]
		if p.forward {
			for y := lo; y < hi; y++ {
				dctIIMakhoul(p.src[y*nx:(y+1)*nx], p.tmp[y*nx:(y+1)*nx], p.rowHalf, scratch, p.unpX, p.cosHx, p.sinHx)
			}
		} else {
			for v := lo; v < hi; v++ {
				row := p.src[v*nx : (v+1)*nx]
				out := p.tmp[v*nx : (v+1)*nx]
				if p.sinX {
					evalMakhoul(row, nil, out, p.rowFull, scratch, p.cosHx, p.sinHx)
				} else {
					evalMakhoul(row, out, nil, p.rowFull, scratch, p.cosHx, p.sinHx)
				}
			}
		}
	}
	// Tiled column pass: gather tileW columns into contiguous buffers
	// (reading the intermediate matrix row by row), run the row kernel on
	// each buffered column, scatter back. Replaces the v1 per-column
	// element-wise gather whose every read missed a fresh cache line.
	p.colsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratch[chunk]
		tin := p.tileIn[chunk]
		tout := p.tileOut[chunk]
		for x0 := lo; x0 < hi; x0 += tileW {
			w := hi - x0
			if w > tileW {
				w = tileW
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					tin[b*ny+y] = p.tmp[base+b]
				}
			}
			for b := 0; b < w; b++ {
				col := tin[b*ny : (b+1)*ny]
				out := tout[b*ny : (b+1)*ny]
				if p.forward {
					dctIIMakhoul(col, out, p.colHalf, scratch, p.unpY, p.cosHy, p.sinHy)
				} else if p.sinY {
					evalMakhoul(col, nil, out, p.colFull, scratch, p.cosHy, p.sinHy)
				} else {
					evalMakhoul(col, out, nil, p.colFull, scratch, p.cosHy, p.sinHy)
				}
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					p.dst[base+b] = tout[b*ny+y]
				}
			}
		}
	}
}

// buildFieldBodies wires the batched potential/field evaluation. The v2
// bodies compute all three Poisson outputs (Psi, Ex, Ey) in one two-pass
// sweep; the v1 scale bodies support the sequential fallback.
func (p *Plan) buildFieldBodies() {
	nx := p.Nx
	// Rows pass (per coefficient row v): the cos-x series of coef feeds both
	// Psi and Ey (Ey's extra factor sy[v] is constant within a row, so it is
	// applied in the column pass), and the sin-x series of coef*sx feeds Ex.
	// Two length-Nx inverse FFTs per row replace v1's three length-2Nx.
	p.fieldRowsBody = func(chunk, lo, hi int) {
		scratch := p.scratch[chunk]
		srow := p.rowReal[chunk][:nx]
		for v := lo; v < hi; v++ {
			if p.rowCut > 0 && v >= p.rowCut {
				// Mode truncation: the caller zeroed this whole coefficient
				// row, and the half-sample series of a zero row is zero —
				// two memsets replace two inverse FFTs (real-even symmetry
				// means no other row depends on this one).
				zeroRow(p.tmp[v*nx : (v+1)*nx])
				zeroRow(p.tmp2[v*nx : (v+1)*nx])
				continue
			}
			row := p.coefIn[v*nx : (v+1)*nx]
			evalMakhoul(row, p.tmp[v*nx:(v+1)*nx], nil, p.rowFull, scratch, p.cosHx, p.sinHx)
			for u := 0; u < nx; u++ {
				srow[u] = row[u] * p.sx[u]
			}
			evalMakhoul(srow, nil, p.tmp2[v*nx:(v+1)*nx], p.rowFull, scratch, p.cosHx, p.sinHx)
		}
	}
	// Columns pass (per column x, tiled): cos-y of tmp -> Psi, sin-y of
	// sy*tmp -> Ey, cos-y of tmp2 -> Ex. One gather and one scatter serve
	// all three outputs.
	p.fieldColsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratch[chunk]
		tA := p.tileIn[chunk]
		tB := p.tileIn2[chunk]
		tPsi := p.tileOut[chunk]
		tEx := p.tileOutB[chunk]
		tEy := p.tileOutC[chunk]
		eyIn := p.rowReal[chunk][:ny]
		for x0 := lo; x0 < hi; x0 += tileW {
			w := hi - x0
			if w > tileW {
				w = tileW
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					tA[b*ny+y] = p.tmp[base+b]
					tB[b*ny+y] = p.tmp2[base+b]
				}
			}
			for b := 0; b < w; b++ {
				colA := tA[b*ny : (b+1)*ny]
				evalMakhoul(colA, tPsi[b*ny:(b+1)*ny], nil, p.colFull, scratch, p.cosHy, p.sinHy)
				for v := 0; v < ny; v++ {
					eyIn[v] = colA[v] * p.sy[v]
				}
				evalMakhoul(eyIn, nil, tEy[b*ny:(b+1)*ny], p.colFull, scratch, p.cosHy, p.sinHy)
				evalMakhoul(tB[b*ny:(b+1)*ny], tEx[b*ny:(b+1)*ny], nil, p.colFull, scratch, p.cosHy, p.sinHy)
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					p.dstPsi[base+b] = tPsi[b*ny+y]
					p.dstEx[base+b] = tEx[b*ny+y]
					p.dstEy[base+b] = tEy[b*ny+y]
				}
			}
		}
	}
	// v1 fallback scale kernels: tmp2 = coefIn * sx[u] (per column) or
	// * sy[v] (per row), launched over the Ny coefficient rows.
	p.scaleXBody = func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := p.coefIn[v*nx : (v+1)*nx]
			out := p.tmp2[v*nx : (v+1)*nx]
			for u := 0; u < nx; u++ {
				out[u] = row[u] * p.sx[u]
			}
		}
	}
	p.scaleYBody = func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s := p.sy[v]
			row := p.coefIn[v*nx : (v+1)*nx]
			out := p.tmp2[v*nx : (v+1)*nx]
			for u := 0; u < nx; u++ {
				out[u] = row[u] * s
			}
		}
	}
}

func (p *Plan) checkSize(buf []float64, what string) {
	if len(buf) != p.Nx*p.Ny {
		panic(fmt.Sprintf("dct: %s has %d elements, want %d", what, len(buf), p.Nx*p.Ny))
	}
}

// allocF draws a float64 buffer from the launcher's arena when it has one.
func (p *Plan) allocF(L Launcher, n int) []float64 {
	if a, ok := L.(ArenaLauncher); ok {
		return a.Alloc(n)
	}
	return make([]float64, n)
}

// allocC draws a complex128 buffer from the launcher's arena when it has one.
func (p *Plan) allocC(L Launcher, n int) []complex128 {
	if a, ok := L.(ArenaLauncher); ok {
		return a.AllocComplex(n)
	}
	return make([]complex128, n)
}

// ensure grows the plan's scratch for use with L. Called with p.mu held;
// the early-out keeps steady-state transforms allocation-free.
func (p *Plan) ensure(L Launcher) {
	w := L.Workers()
	if w < 1 {
		w = 1
	}
	if p.tmp != nil && len(p.scratch) >= w {
		return
	}
	if p.tmp == nil {
		p.tmp = p.allocF(L, p.Nx*p.Ny)
	}
	maxN := p.Nx
	if p.Ny > maxN {
		maxN = p.Ny
	}
	cplx := maxN // v2 kernels need at most N complex values
	if p.version == 1 {
		cplx = 2 * maxN // mirrored transforms need 2N
	}
	colN := tileW * p.Ny
	if p.version == 1 {
		colN = p.Ny // v1 processes one column at a time
	}
	for len(p.scratch) < w {
		p.scratch = append(p.scratch, p.allocC(L, cplx))
		p.rowReal = append(p.rowReal, p.allocF(L, maxN))
		p.tileIn = append(p.tileIn, p.allocF(L, colN))
		p.tileOut = append(p.tileOut, p.allocF(L, colN))
	}
	// Keep the field tiles in step if EvalPotentialField already ran once.
	if p.tmp2 != nil {
		p.ensureField(L, w)
	}
}

// ensureField grows the batched-field scratch (second intermediate and the
// extra column tiles), which only EvalPotentialField needs.
func (p *Plan) ensureField(L Launcher, w int) {
	if p.tmp2 == nil {
		p.tmp2 = p.allocF(L, p.Nx*p.Ny)
	}
	if p.version == 1 {
		return // the fallback path reuses the single-transform scratch
	}
	colN := tileW * p.Ny
	for len(p.tileIn2) < w {
		p.tileIn2 = append(p.tileIn2, p.allocF(L, colN))
		p.tileOutB = append(p.tileOutB, p.allocF(L, colN))
		p.tileOutC = append(p.tileOutC, p.allocF(L, colN))
	}
}

// Release returns every scratch buffer the plan has checked out back to
// L's arena (when L provides one) and drops the references, so the owning
// engine's in-use byte count falls back to its pre-plan baseline. Buffers
// that were allocated by plain make (no arena available at ensure time) are
// simply dropped for the GC. The plan stays usable: the next transform
// re-ensures its scratch.
func (p *Plan) Release(L Launcher) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, pooled := L.(ArenaLauncher)
	freeF := func(buf []float64) {
		if pooled && buf != nil {
			a.Free(buf)
		}
	}
	freeFs := func(bufs [][]float64) {
		for _, b := range bufs {
			freeF(b)
		}
	}
	freeF(p.tmp)
	freeF(p.tmp2)
	p.tmp, p.tmp2 = nil, nil
	if pooled {
		for _, b := range p.scratch {
			a.FreeComplex(b)
		}
	}
	p.scratch = nil
	freeFs(p.rowReal)
	freeFs(p.tileIn)
	freeFs(p.tileOut)
	freeFs(p.tileIn2)
	freeFs(p.tileOutB)
	freeFs(p.tileOutC)
	p.rowReal, p.tileIn, p.tileOut = nil, nil, nil
	p.tileIn2, p.tileOutB, p.tileOutC = nil, nil, nil
}

// run executes the two-pass (rows then columns) transform with the
// parameters already staged in p's fields. Caller must hold p.mu. The two
// kernel names are passed as literals by each transform so launching never
// builds a string.
func (p *Plan) run(L Launcher, rowsName, colsName string) {
	p.ensure(L)
	L.LaunchChunks(rowsName, p.Ny, p.rowsBody)
	L.LaunchChunks(colsName, p.Nx, p.colsBody)
	p.src, p.dst = nil, nil
}

// dctIIRow computes the unnormalized 1-D DCT-II of src into dst using the
// mirrored length-2N FFT identity (v1 kernel). scratch must have length 2N.
func dctIIRow(src, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64) {
	n := len(src)
	for i := 0; i < n; i++ {
		scratch[i] = complex(src[i], 0)
		scratch[2*n-1-i] = complex(src[i], 0)
	}
	fp.transform(scratch, false)
	// X_k = 0.5 * Re(e^{-i*pi*k/(2N)} * Y_k)
	for k := 0; k < n; k++ {
		re := real(scratch[k])*cosHalf[k] + imag(scratch[k])*sinHalf[k]
		dst[k] = 0.5 * re
	}
}

// evalRow evaluates f_n = sum_u c_u * e^{i*pi*u*(2n+1)/(2N)} for n=0..N-1
// via one inverse-DFT of length 2N (v1 kernel); the cosine series is the
// real part and the sine series the imaginary part. wantSin selects which
// lands in dst.
func evalRow(coef, dst []float64, fp *fftPlan, scratch []complex128, cosHalf, sinHalf []float64, wantSin bool) {
	n := len(coef)
	for u := 0; u < n; u++ {
		// w_u = c_u * e^{i*pi*u/(2N)}
		scratch[u] = complex(coef[u]*cosHalf[u], coef[u]*sinHalf[u])
	}
	for u := n; u < 2*n; u++ {
		scratch[u] = 0
	}
	fp.transform(scratch, true) // unnormalized inverse: sum_u w_u e^{+2pi i u n / 2N}
	if wantSin {
		for i := 0; i < n; i++ {
			dst[i] = imag(scratch[i])
		}
	} else {
		for i := 0; i < n; i++ {
			dst[i] = real(scratch[i])
		}
	}
}

// halfTwiddles returns cos/sin of pi*k/(2N) for k = 0..N-1.
func halfTwiddles(n int) (cosH, sinH []float64) {
	cosH = make([]float64, n)
	sinH = make([]float64, n)
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		cosH[k] = math.Cos(ang)
		sinH[k] = math.Sin(ang)
	}
	return
}

// DCT2 computes the unnormalized 2-D DCT-II of src into dst:
// dst[v][u] = sum_{y,x} src[y][x] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
// src and dst may alias.
func (p *Plan) DCT2(src, dst []float64, L Launcher) {
	p.checkSize(src, "src")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src, p.dst, p.forward = src, dst, true
	if p.version == 1 {
		p.run(L, "dct2.rows", "dct2.cols")
	} else {
		p.run(L, "spectral2.fwd_rows", "spectral2.fwd_cols")
	}
}

// eval2D is the shared implementation of the three evaluation transforms.
// Caller must hold p.mu.
func (p *Plan) eval2D(coef, dst []float64, L Launcher, sinX, sinY bool, rowsName, colsName string) {
	p.src, p.dst, p.forward = coef, dst, false
	p.sinX, p.sinY = sinX, sinY
	p.run(L, rowsName, colsName)
}

// EvalCosCos evaluates the cos-cos series (inverse DCT direction):
// dst[y][x] = sum_{v,u} coef[v][u] cos(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalCosCos(coef, dst []float64, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.version == 1 {
		p.eval2D(coef, dst, L, false, false, "idct2.rows", "idct2.cols")
	} else {
		p.eval2D(coef, dst, L, false, false, "spectral2.coscos_rows", "spectral2.coscos_cols")
	}
}

// EvalSinCos evaluates the sin-in-x, cos-in-y series (the x electric field):
// dst[y][x] = sum_{v,u} coef[v][u] sin(pi u (2x+1)/(2Nx)) cos(pi v (2y+1)/(2Ny)).
func (p *Plan) EvalSinCos(coef, dst []float64, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.version == 1 {
		p.eval2D(coef, dst, L, true, false, "idsct2.rows", "idsct2.cols")
	} else {
		p.eval2D(coef, dst, L, true, false, "spectral2.sincos_rows", "spectral2.sincos_cols")
	}
}

// EvalCosSin evaluates the cos-in-x, sin-in-y series (the y electric field).
func (p *Plan) EvalCosSin(coef, dst []float64, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.version == 1 {
		p.eval2D(coef, dst, L, false, true, "idcst2.rows", "idcst2.cols")
	} else {
		p.eval2D(coef, dst, L, false, true, "spectral2.cossin_rows", "spectral2.cossin_cols")
	}
}

// EvalPotentialField evaluates the three Poisson-solver output series in one
// batched sweep:
//
//	psi[y][x] = sum coef[v][u]         * cos_u(x) * cos_v(y)
//	ex[y][x]  = sum coef[v][u] * sx[u] * sin_u(x) * cos_v(y)
//	ey[y][x]  = sum coef[v][u] * sy[v] * cos_u(x) * sin_v(y)
//
// with cos_u(x) = cos(pi*u*(2x+1)/(2*Nx)) etc. sx has length Nx and sy
// length Ny (the Poisson solver passes the spatial frequencies wu, wv). On
// a v2 plan the shared cos-x row transform is computed once and each column
// is gathered once for all three outputs — two launched passes total,
// versus three independent evaluations (six passes) plus two scale kernels
// for the unbatched path. A v1 plan falls back to exactly that sequential
// path, so both versions produce identical results.
func (p *Plan) EvalPotentialField(coef, sx, sy, psi, ex, ey []float64, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(psi, "psi")
	p.checkSize(ex, "ex")
	p.checkSize(ey, "ey")
	if len(sx) != p.Nx || len(sy) != p.Ny {
		panic(fmt.Sprintf("dct: scale vectors %dx%d, want %dx%d", len(sx), len(sy), p.Nx, p.Ny))
	}
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensure(L)
	w := L.Workers()
	if w < 1 {
		w = 1
	}
	p.ensureField(L, w)
	p.coefIn, p.sx, p.sy = coef, sx, sy
	if p.version == 1 {
		// Sequential fallback: three evaluations with explicit coefficient
		// scaling through tmp2 (matches the pre-batching solver structure).
		p.eval2D(coef, psi, L, false, false, "idct2.rows", "idct2.cols")
		L.Launch("spectral.scale_x", p.Ny, p.scaleXBody)
		p.eval2D(p.tmp2, ex, L, true, false, "idsct2.rows", "idsct2.cols")
		L.Launch("spectral.scale_y", p.Ny, p.scaleYBody)
		p.eval2D(p.tmp2, ey, L, false, true, "idcst2.rows", "idcst2.cols")
	} else {
		p.dstPsi, p.dstEx, p.dstEy = psi, ex, ey
		L.LaunchChunks("spectral2.field_rows", p.Ny, p.fieldRowsBody)
		L.LaunchChunks("spectral2.field_cols", p.Nx, p.fieldColsBody)
		p.dstPsi, p.dstEx, p.dstEy = nil, nil, nil
	}
	p.coefIn, p.sx, p.sy = nil, nil, nil
}
