package dct

import (
	"fmt"
	"sync"
)

// This file is the float32 spectral engine behind the reduced-precision
// compute backend: Plan32, the per-backend Makhoul plan whose grid-sized
// matrices (input, coefficients, intermediates, outputs) are float32.
//
// The design is mixed-precision: STORAGE is float32, COMPUTE is float64.
// The 2-D transform cost on large grids splits into (a) streaming the
// N x N matrices through the rows/columns passes — memory-bound, and
// exactly halved by float32 storage — and (b) the 1-D FFT kernels on
// cache-resident rows, which are ALU-bound: scalar float32 butterflies
// are no faster than float64 on amd64 (no auto-vectorization, and
// complex64 multiplies even promote through float64), so the row kernels
// run in float64 registers on small staging buffers. Conversions ride on
// passes that already exist — the tiled column gather/scatter converts in
// place, and rows stage through a per-chunk float64 buffer — so the only
// extra work is two cache-hot linear passes per row against a halved
// DRAM bill. Accuracy-wise the result carries float32 storage rounding
// per pass (~1e-7 relative), well inside the tolerance-banded goldens.
//
// Plan32 additionally supports high-frequency mode truncation: when the
// Poisson solver zeroes every coefficient row v >= ky (negligible high
// modes on coarse grids, the enhanced-FFT placement observation), the
// batched field evaluation skips those rows' transforms outright — a zero
// row transforms to exact zeros, so the skip changes no bits of the
// truncated-spectrum result. Plan32 implements only the v2 (Makhoul +
// tiled transpose) engine; the v1 mirrored-FFT path stays float64-only as
// the ablation reference.

// ArenaLauncher32 is an ArenaLauncher whose allocator also pools the
// float32 element type (kernel.Engine satisfies it). Plan32 draws its
// matrices from the float32 pools and its staging scratch from the
// float64/complex128 pools.
type ArenaLauncher32 interface {
	ArenaLauncher
	Alloc32(n int) []float32
	Free32(buf []float32)
}

// Plan32 is the float32-backend analogue of a v2 Plan: 2-D DCT-II and the
// batched potential/field evaluation over float32 grid buffers, with
// per-chunk scratch and staged per-call parameters so steady-state
// transforms are allocation-free. Results match the float64 plan to
// float32 rounding (pinned by the goldens in spectral32_test.go).
type Plan32 struct {
	Nx, Ny int

	rowHalf *fftPlan // length Nx/2 (nil when Nx < 4)
	rowFull *fftPlan // length Nx
	colHalf *fftPlan // length Ny/2 (nil when Ny < 4)
	colFull *fftPlan // length Ny

	cosHx, sinHx []float64
	cosHy, sinHy []float64
	unpX, unpY   []complex128

	mu   sync.Mutex
	tmp  []float32 // nx*ny intermediate (rows pass output)
	tmp2 []float32 // second intermediate for the batched field evaluation

	// Per-chunk scratch: the complex FFT buffer, float64 staging rows for
	// the mixed-precision row kernels, and the float64 column tiles.
	scratch  [][]complex128 // max(nx,ny)
	rowIn    [][]float64    // converted input row: max(nx,ny)
	rowOut   [][]float64    // transformed row before store: max(nx,ny)
	rowReal  [][]float64    // scaled-coefficient row (field eval): max(nx,ny)
	tileIn   [][]float64    // gathered+converted columns: tileW*ny
	tileOut  [][]float64    // transformed columns: tileW*ny
	tileIn2  [][]float64    // gathered tmp2 columns (Ex input)
	tileOutB [][]float64    // Ex output columns
	tileOutC [][]float64    // Ey output columns

	// Staged per-call parameters.
	src, dst             []float32
	forward              bool
	coefIn               []float32
	sx, sy               []float64
	dstPsi, dstEx, dstEy []float32
	rowCut               int // field-eval rows >= rowCut are known-zero; 0 = full

	rowsBody, colsBody           func(chunk, start, end int)
	fieldRowsBody, fieldColsBody func(chunk, start, end int)
}

// NewPlan32 creates a float32-backend v2 transform plan for an Nx x Ny
// grid (both powers of two).
func NewPlan32(nx, ny int) *Plan32 {
	if nx <= 0 || ny <= 0 || nx&(nx-1) != 0 || ny&(ny-1) != 0 {
		panic(fmt.Sprintf("dct: grid %dx%d must be powers of two", nx, ny))
	}
	p := &Plan32{Nx: nx, Ny: ny}
	p.cosHx, p.sinHx = halfTwiddles(nx)
	p.cosHy, p.sinHy = halfTwiddles(ny)
	p.rowFull = newFFTPlan(nx)
	p.colFull = newFFTPlan(ny)
	if nx >= 4 {
		p.rowHalf = newFFTPlan(nx / 2)
	}
	if ny >= 4 {
		p.colHalf = newFFTPlan(ny / 2)
	}
	p.unpX = unpackTwiddles(nx)
	p.unpY = unpackTwiddles(ny)
	p.buildBodies()
	return p
}

// SetFieldRowCutoff declares that the caller zeroes every field-evaluation
// coefficient with row index v >= ky before calling EvalPotentialField, so
// the rows pass may skip those rows (their transform is identically zero).
// ky <= 0 or ky >= Ny restores the full evaluation. Sticky until changed.
func (p *Plan32) SetFieldRowCutoff(ky int) {
	p.mu.Lock()
	if ky <= 0 || ky >= p.Ny {
		ky = 0
	}
	p.rowCut = ky
	p.mu.Unlock()
}

// load32 converts a float32 row into the float64 staging buffer.
func load32(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// store32 rounds a float64 staging buffer into a float32 row.
func store32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func zero32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

func (p *Plan32) buildBodies() {
	nx := p.Nx
	p.rowsBody = func(chunk, lo, hi int) {
		scratch := p.scratch[chunk]
		rin := p.rowIn[chunk][:nx]
		rout := p.rowOut[chunk][:nx]
		for y := lo; y < hi; y++ {
			load32(rin, p.src[y*nx:(y+1)*nx])
			if p.forward {
				dctIIMakhoul(rin, rout, p.rowHalf, scratch, p.unpX, p.cosHx, p.sinHx)
			} else {
				evalMakhoul(rin, rout, nil, p.rowFull, scratch, p.cosHx, p.sinHx)
			}
			store32(p.tmp[y*nx:(y+1)*nx], rout)
		}
	}
	// Tiled column pass: the gather converts float32 intermediates into the
	// float64 column tiles (and the scatter converts back), so the
	// precision boundary costs no extra pass over the matrix.
	p.colsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratch[chunk]
		tin := p.tileIn[chunk]
		tout := p.tileOut[chunk]
		for x0 := lo; x0 < hi; x0 += tileW {
			w := hi - x0
			if w > tileW {
				w = tileW
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					tin[b*ny+y] = float64(p.tmp[base+b])
				}
			}
			for b := 0; b < w; b++ {
				col := tin[b*ny : (b+1)*ny]
				out := tout[b*ny : (b+1)*ny]
				if p.forward {
					dctIIMakhoul(col, out, p.colHalf, scratch, p.unpY, p.cosHy, p.sinHy)
				} else {
					evalMakhoul(col, out, nil, p.colFull, scratch, p.cosHy, p.sinHy)
				}
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					p.dst[base+b] = float32(tout[b*ny+y])
				}
			}
		}
	}
	// Batched field evaluation, same two-pass structure as the float64 v2
	// plan, plus the truncation skip.
	p.fieldRowsBody = func(chunk, lo, hi int) {
		scratch := p.scratch[chunk]
		rin := p.rowIn[chunk][:nx]
		rout := p.rowOut[chunk][:nx]
		srow := p.rowReal[chunk][:nx]
		for v := lo; v < hi; v++ {
			if p.rowCut > 0 && v >= p.rowCut {
				// Mode truncation: this whole coefficient row was zeroed by
				// the caller, and the half-sample series of a zero row is
				// zero — two memsets replace two inverse FFTs.
				zero32(p.tmp[v*nx : (v+1)*nx])
				zero32(p.tmp2[v*nx : (v+1)*nx])
				continue
			}
			load32(rin, p.coefIn[v*nx:(v+1)*nx])
			evalMakhoul(rin, rout, nil, p.rowFull, scratch, p.cosHx, p.sinHx)
			store32(p.tmp[v*nx:(v+1)*nx], rout)
			for u := 0; u < nx; u++ {
				srow[u] = rin[u] * p.sx[u]
			}
			evalMakhoul(srow, nil, rout, p.rowFull, scratch, p.cosHx, p.sinHx)
			store32(p.tmp2[v*nx:(v+1)*nx], rout)
		}
	}
	p.fieldColsBody = func(chunk, lo, hi int) {
		ny := p.Ny
		scratch := p.scratch[chunk]
		tA := p.tileIn[chunk]
		tB := p.tileIn2[chunk]
		tPsi := p.tileOut[chunk]
		tEx := p.tileOutB[chunk]
		tEy := p.tileOutC[chunk]
		eyIn := p.rowReal[chunk][:ny]
		for x0 := lo; x0 < hi; x0 += tileW {
			w := hi - x0
			if w > tileW {
				w = tileW
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					tA[b*ny+y] = float64(p.tmp[base+b])
					tB[b*ny+y] = float64(p.tmp2[base+b])
				}
			}
			for b := 0; b < w; b++ {
				colA := tA[b*ny : (b+1)*ny]
				evalMakhoul(colA, tPsi[b*ny:(b+1)*ny], nil, p.colFull, scratch, p.cosHy, p.sinHy)
				for v := 0; v < ny; v++ {
					eyIn[v] = colA[v] * p.sy[v]
				}
				evalMakhoul(eyIn, nil, tEy[b*ny:(b+1)*ny], p.colFull, scratch, p.cosHy, p.sinHy)
				evalMakhoul(tB[b*ny:(b+1)*ny], tEx[b*ny:(b+1)*ny], nil, p.colFull, scratch, p.cosHy, p.sinHy)
			}
			for y := 0; y < ny; y++ {
				base := y*nx + x0
				for b := 0; b < w; b++ {
					p.dstPsi[base+b] = float32(tPsi[b*ny+y])
					p.dstEx[base+b] = float32(tEx[b*ny+y])
					p.dstEy[base+b] = float32(tEy[b*ny+y])
				}
			}
		}
	}
}

func (p *Plan32) checkSize(buf []float32, what string) {
	if len(buf) != p.Nx*p.Ny {
		panic(fmt.Sprintf("dct: %s has %d elements, want %d", what, len(buf), p.Nx*p.Ny))
	}
}

func (p *Plan32) allocF32(L Launcher, n int) []float32 {
	if a, ok := L.(ArenaLauncher32); ok {
		return a.Alloc32(n)
	}
	return make([]float32, n)
}

func (p *Plan32) allocF(L Launcher, n int) []float64 {
	if a, ok := L.(ArenaLauncher); ok {
		return a.Alloc(n)
	}
	return make([]float64, n)
}

func (p *Plan32) allocC(L Launcher, n int) []complex128 {
	if a, ok := L.(ArenaLauncher); ok {
		return a.AllocComplex(n)
	}
	return make([]complex128, n)
}

// ensure grows the plan's scratch for use with L. Called with p.mu held.
func (p *Plan32) ensure(L Launcher) {
	w := L.Workers()
	if w < 1 {
		w = 1
	}
	if p.tmp != nil && len(p.scratch) >= w {
		return
	}
	if p.tmp == nil {
		p.tmp = p.allocF32(L, p.Nx*p.Ny)
	}
	maxN := p.Nx
	if p.Ny > maxN {
		maxN = p.Ny
	}
	colN := tileW * p.Ny
	for len(p.scratch) < w {
		p.scratch = append(p.scratch, p.allocC(L, maxN))
		p.rowIn = append(p.rowIn, p.allocF(L, maxN))
		p.rowOut = append(p.rowOut, p.allocF(L, maxN))
		p.rowReal = append(p.rowReal, p.allocF(L, maxN))
		p.tileIn = append(p.tileIn, p.allocF(L, colN))
		p.tileOut = append(p.tileOut, p.allocF(L, colN))
	}
	if p.tmp2 != nil {
		p.ensureField(L, w)
	}
}

func (p *Plan32) ensureField(L Launcher, w int) {
	if p.tmp2 == nil {
		p.tmp2 = p.allocF32(L, p.Nx*p.Ny)
	}
	colN := tileW * p.Ny
	for len(p.tileIn2) < w {
		p.tileIn2 = append(p.tileIn2, p.allocF(L, colN))
		p.tileOutB = append(p.tileOutB, p.allocF(L, colN))
		p.tileOutC = append(p.tileOutC, p.allocF(L, colN))
	}
}

// Release returns every scratch buffer to L's arena (when it has one) and
// drops the references. Idempotent; the plan stays usable (the next
// transform re-ensures its scratch).
func (p *Plan32) Release(L Launcher) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a32, pooled32 := L.(ArenaLauncher32)
	if pooled32 {
		if p.tmp != nil {
			a32.Free32(p.tmp)
		}
		if p.tmp2 != nil {
			a32.Free32(p.tmp2)
		}
	}
	p.tmp, p.tmp2 = nil, nil
	a, pooled := L.(ArenaLauncher)
	if pooled {
		for _, b := range p.scratch {
			a.FreeComplex(b)
		}
	}
	p.scratch = nil
	freeFs := func(bufs [][]float64) {
		if pooled {
			for _, b := range bufs {
				a.Free(b)
			}
		}
	}
	freeFs(p.rowIn)
	freeFs(p.rowOut)
	freeFs(p.rowReal)
	freeFs(p.tileIn)
	freeFs(p.tileOut)
	freeFs(p.tileIn2)
	freeFs(p.tileOutB)
	freeFs(p.tileOutC)
	p.rowIn, p.rowOut, p.rowReal = nil, nil, nil
	p.tileIn, p.tileOut = nil, nil
	p.tileIn2, p.tileOutB, p.tileOutC = nil, nil, nil
}

// run executes the two-pass transform with staged parameters; p.mu held.
func (p *Plan32) run(L Launcher, rowsName, colsName string) {
	p.ensure(L)
	L.LaunchChunks(rowsName, p.Ny, p.rowsBody)
	L.LaunchChunks(colsName, p.Nx, p.colsBody)
	p.src, p.dst = nil, nil
}

// DCT2 computes the unnormalized 2-D DCT-II of src into dst (which may
// alias), the float32-backend counterpart of Plan.DCT2.
func (p *Plan32) DCT2(src, dst []float32, L Launcher) {
	p.checkSize(src, "src")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src, p.dst, p.forward = src, dst, true
	p.run(L, "spectral32.fwd_rows", "spectral32.fwd_cols")
}

// EvalCosCos evaluates the cos-cos series (inverse DCT direction).
func (p *Plan32) EvalCosCos(coef, dst []float32, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(dst, "dst")
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src, p.dst, p.forward = coef, dst, false
	p.run(L, "spectral32.coscos_rows", "spectral32.coscos_cols")
}

// EvalPotentialField evaluates psi/ex/ey in one batched two-pass sweep,
// the float32-backend counterpart of Plan.EvalPotentialField. The scale
// vectors sx (length Nx) and sy (length Ny) stay float64 — they are the
// solver's precomputed spatial frequencies, not grid-sized data. When a
// field-row cutoff is set (SetFieldRowCutoff), coefficient rows above it
// are assumed zero and their row transforms are skipped.
func (p *Plan32) EvalPotentialField(coef []float32, sx, sy []float64, psi, ex, ey []float32, L Launcher) {
	p.checkSize(coef, "coef")
	p.checkSize(psi, "psi")
	p.checkSize(ex, "ex")
	p.checkSize(ey, "ey")
	if len(sx) != p.Nx || len(sy) != p.Ny {
		panic(fmt.Sprintf("dct: scale vectors %dx%d, want %dx%d", len(sx), len(sy), p.Nx, p.Ny))
	}
	if L == nil {
		L = Serial
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensure(L)
	w := L.Workers()
	if w < 1 {
		w = 1
	}
	p.ensureField(L, w)
	p.coefIn, p.sx, p.sy = coef, sx, sy
	p.dstPsi, p.dstEx, p.dstEy = psi, ex, ey
	L.LaunchChunks("spectral32.field_rows", p.Ny, p.fieldRowsBody)
	L.LaunchChunks("spectral32.field_cols", p.Nx, p.fieldColsBody)
	p.dstPsi, p.dstEx, p.dstEy = nil, nil, nil
	p.coefIn, p.sx, p.sy = nil, nil, nil
}
