package dct

import (
	"fmt"
	"testing"
)

// planVersions enumerates both spectral engines so every golden test runs
// against the v1 (mirrored-FFT) and v2 (Makhoul + tiled transpose) paths.
var planVersions = []struct {
	name string
	mk   func(nx, ny int) *Plan
}{
	{"v1", NewPlanV1},
	{"v2", NewPlan},
}

// TestSpectralVersionsMatchDirect: both engines against the O(N^2)-per-
// output references, on non-square grids in both aspect orientations.
func TestSpectralVersionsMatchDirect(t *testing.T) {
	for _, pv := range planVersions {
		t.Run(pv.name, func(t *testing.T) {
			for _, dims := range [][2]int{{4, 4}, {8, 32}, {32, 8}, {2, 16}, {16, 16}} {
				nx, ny := dims[0], dims[1]
				p := pv.mk(nx, ny)
				f := randGrid(nx, ny, 23)
				got := make([]float64, nx*ny)
				p.DCT2(f, got, Serial)
				if d := maxAbsDiff(got, directDCT2(f, nx, ny)); d > 1e-9 {
					t.Errorf("%dx%d DCT2 max diff %g", nx, ny, d)
				}
				p.EvalCosCos(f, got, Serial)
				if d := maxAbsDiff(got, directEval(f, nx, ny, false, false)); d > 1e-9 {
					t.Errorf("%dx%d EvalCosCos max diff %g", nx, ny, d)
				}
				p.EvalSinCos(f, got, Serial)
				if d := maxAbsDiff(got, directEval(f, nx, ny, true, false)); d > 1e-9 {
					t.Errorf("%dx%d EvalSinCos max diff %g", nx, ny, d)
				}
				p.EvalCosSin(f, got, Serial)
				if d := maxAbsDiff(got, directEval(f, nx, ny, false, true)); d > 1e-9 {
					t.Errorf("%dx%d EvalCosSin max diff %g", nx, ny, d)
				}
			}
		})
	}
}

// TestSpectralRoundTripBothVersions: DCT2 followed by the normalized
// EvalCosCos reconstructs the input on both engines.
func TestSpectralRoundTripBothVersions(t *testing.T) {
	for _, pv := range planVersions {
		t.Run(pv.name, func(t *testing.T) {
			for _, dims := range [][2]int{{8, 8}, {32, 16}, {16, 64}} {
				nx, ny := dims[0], dims[1]
				f := randGrid(nx, ny, 29)
				p := pv.mk(nx, ny)
				coef := make([]float64, nx*ny)
				p.DCT2(f, coef, Serial)
				for v := 0; v < ny; v++ {
					wv := 2 / float64(ny)
					if v == 0 {
						wv = 1 / float64(ny)
					}
					for u := 0; u < nx; u++ {
						wu := 2 / float64(nx)
						if u == 0 {
							wu = 1 / float64(nx)
						}
						coef[v*nx+u] *= wu * wv
					}
				}
				got := make([]float64, nx*ny)
				p.EvalCosCos(coef, got, Serial)
				if d := maxAbsDiff(got, f); d > 1e-9 {
					t.Errorf("%dx%d roundtrip max diff %g", nx, ny, d)
				}
			}
		})
	}
}

// fieldReference computes the three EvalPotentialField outputs through the
// direct O(N^2) evaluators.
func fieldReference(coef, sx, sy []float64, nx, ny int) (psi, ex, ey []float64) {
	psi = directEval(coef, nx, ny, false, false)
	cx := make([]float64, nx*ny)
	cy := make([]float64, nx*ny)
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			cx[v*nx+u] = coef[v*nx+u] * sx[u]
			cy[v*nx+u] = coef[v*nx+u] * sy[v]
		}
	}
	ex = directEval(cx, nx, ny, true, false)
	ey = directEval(cy, nx, ny, false, true)
	return
}

// TestEvalPotentialFieldMatchesDirect: the batched (v2) and sequential-
// fallback (v1) field evaluations against the direct references.
func TestEvalPotentialFieldMatchesDirect(t *testing.T) {
	nx, ny := 8, 32
	coef := randGrid(nx, ny, 31)
	sx := randGrid(nx, 1, 37)
	sy := randGrid(ny, 1, 41)
	wantPsi, wantEx, wantEy := fieldReference(coef, sx, sy, nx, ny)
	for _, pv := range planVersions {
		t.Run(pv.name, func(t *testing.T) {
			p := pv.mk(nx, ny)
			psi := make([]float64, nx*ny)
			ex := make([]float64, nx*ny)
			ey := make([]float64, nx*ny)
			p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
			if d := maxAbsDiff(psi, wantPsi); d > 1e-9 {
				t.Errorf("psi max diff %g", d)
			}
			if d := maxAbsDiff(ex, wantEx); d > 1e-9 {
				t.Errorf("ex max diff %g", d)
			}
			if d := maxAbsDiff(ey, wantEy); d > 1e-9 {
				t.Errorf("ey max diff %g", d)
			}
		})
	}
}

// TestEvalPotentialFieldAllocFree: after the first call warms the plan
// scratch (including the second intermediate and field tiles), the batched
// evaluation performs zero heap allocations on both engines.
func TestEvalPotentialFieldAllocFree(t *testing.T) {
	nx, ny := 32, 64
	coef := randGrid(nx, ny, 43)
	sx := randGrid(nx, 1, 47)
	sy := randGrid(ny, 1, 53)
	for _, pv := range planVersions {
		t.Run(pv.name, func(t *testing.T) {
			p := pv.mk(nx, ny)
			psi := make([]float64, nx*ny)
			ex := make([]float64, nx*ny)
			ey := make([]float64, nx*ny)
			p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
			allocs := testing.AllocsPerRun(20, func() {
				p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
			})
			if allocs != 0 {
				t.Errorf("steady-state EvalPotentialField allocs = %v, want 0", allocs)
			}
		})
	}
}

// BenchmarkDCT2DRoundTrip: the acceptance benchmark — forward DCT2 plus
// EvalCosCos on the default (v2) plan. Sub-benchmarks cover the grid sweep;
// 512 is the headline size.
func BenchmarkDCT2DRoundTrip(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			benchRoundTrip(b, NewPlan(n, n), n)
		})
	}
}

func benchRoundTrip(b *testing.B, p *Plan, n int) {
	f := randGrid(n, n, 3)
	coef := make([]float64, n*n)
	out := make([]float64, n*n)
	p.DCT2(f, coef, Serial) // warm the scratch
	p.EvalCosCos(coef, out, Serial)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(f, coef, Serial)
		p.EvalCosCos(coef, out, Serial)
	}
}
