package dct

import (
	"fmt"
	"math"
	"testing"
)

// to32 converts a float64 grid to float32.
func to32(f []float64) []float32 {
	out := make([]float32, len(f))
	for i, v := range f {
		out[i] = float32(v)
	}
	return out
}

// maxRelDiff32 returns the largest |got-want| over the float32 result,
// normalized by the max magnitude of want (transform outputs scale with N,
// so an absolute band would be meaningless across grid sizes).
func maxRelDiff32(got []float32, want []float64) float64 {
	var maxW, maxD float64
	for _, w := range want {
		if a := math.Abs(w); a > maxW {
			maxW = a
		}
	}
	for i := range got {
		if d := math.Abs(float64(got[i]) - want[i]); d > maxD {
			maxD = d
		}
	}
	if maxW == 0 {
		return maxD
	}
	return maxD / maxW
}

// f32Tol is the tolerance band of the float32 goldens: float32 has ~1e-7
// relative rounding, and FFT error grows ~sqrt(log N), so 1e-5 of the
// output magnitude leaves comfortable margin while still catching any
// structural mistake (a wrong twiddle or permutation is orders louder).
const f32Tol = 1e-5

// TestPlan32MatchesFloat64 is the tolerance-banded golden for the float32
// spectral engine: DCT2, EvalCosCos and the batched field evaluation all
// track the float64 v2 plan within f32Tol of the output magnitude.
func TestPlan32MatchesFloat64(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 32}, {32, 8}, {64, 64}} {
		nx, ny := dims[0], dims[1]
		f := randGrid(nx, ny, 23)
		p64 := NewPlan(nx, ny)
		p32 := NewPlan32(nx, ny)

		want := make([]float64, nx*ny)
		got := make([]float32, nx*ny)
		p64.DCT2(f, want, Serial)
		p32.DCT2(to32(f), got, Serial)
		if d := maxRelDiff32(got, want); d > f32Tol {
			t.Errorf("%dx%d DCT2 rel diff %g", nx, ny, d)
		}

		p64.EvalCosCos(f, want, Serial)
		p32.EvalCosCos(to32(f), got, Serial)
		if d := maxRelDiff32(got, want); d > f32Tol {
			t.Errorf("%dx%d EvalCosCos rel diff %g", nx, ny, d)
		}

		sx := randGrid(nx, 1, 37)
		sy := randGrid(ny, 1, 41)
		psi64 := make([]float64, nx*ny)
		ex64 := make([]float64, nx*ny)
		ey64 := make([]float64, nx*ny)
		p64.EvalPotentialField(f, sx, sy, psi64, ex64, ey64, Serial)
		psi32 := make([]float32, nx*ny)
		ex32 := make([]float32, nx*ny)
		ey32 := make([]float32, nx*ny)
		p32.EvalPotentialField(to32(f), sx, sy, psi32, ex32, ey32, Serial)
		if d := maxRelDiff32(psi32, psi64); d > f32Tol {
			t.Errorf("%dx%d field psi rel diff %g", nx, ny, d)
		}
		if d := maxRelDiff32(ex32, ex64); d > f32Tol {
			t.Errorf("%dx%d field ex rel diff %g", nx, ny, d)
		}
		if d := maxRelDiff32(ey32, ey64); d > f32Tol {
			t.Errorf("%dx%d field ey rel diff %g", nx, ny, d)
		}
	}
}

// TestFieldRowCutoffMatchesFullEval: with the high coefficient rows zeroed
// by the caller, evaluating with the row cutoff set produces exactly the
// same output as the full evaluation of the truncated spectrum — on both
// the float64 and float32 plans (a zero row transforms to exact zeros in
// either precision, so the skip changes no bits).
func TestFieldRowCutoffMatchesFullEval(t *testing.T) {
	nx, ny := 16, 32
	ky := ny / 2
	coef := randGrid(nx, ny, 59)
	for v := ky; v < ny; v++ {
		for u := 0; u < nx; u++ {
			coef[v*nx+u] = 0
		}
	}
	sx := randGrid(nx, 1, 61)
	sy := randGrid(ny, 1, 67)

	t.Run("float64", func(t *testing.T) {
		full := NewPlan(nx, ny)
		cut := NewPlan(nx, ny)
		cut.SetFieldRowCutoff(ky)
		out := func(p *Plan) (psi, ex, ey []float64) {
			psi = make([]float64, nx*ny)
			ex = make([]float64, nx*ny)
			ey = make([]float64, nx*ny)
			p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
			return
		}
		wp, wx, wy := out(full)
		gp, gx, gy := out(cut)
		for i := range wp {
			if gp[i] != wp[i] || gx[i] != wx[i] || gy[i] != wy[i] {
				t.Fatalf("cutoff eval diverged at %d: psi %g vs %g, ex %g vs %g, ey %g vs %g",
					i, gp[i], wp[i], gx[i], wx[i], gy[i], wy[i])
			}
		}
	})
	t.Run("float32", func(t *testing.T) {
		full := NewPlan32(nx, ny)
		cut := NewPlan32(nx, ny)
		cut.SetFieldRowCutoff(ky)
		c32 := to32(coef)
		out := func(p *Plan32) (psi, ex, ey []float32) {
			psi = make([]float32, nx*ny)
			ex = make([]float32, nx*ny)
			ey = make([]float32, nx*ny)
			p.EvalPotentialField(c32, sx, sy, psi, ex, ey, Serial)
			return
		}
		wp, wx, wy := out(full)
		gp, gx, gy := out(cut)
		for i := range wp {
			if gp[i] != wp[i] || gx[i] != wx[i] || gy[i] != wy[i] {
				t.Fatalf("cutoff eval diverged at %d", i)
			}
		}
	})
}

// TestPlan32RoundTrip: forward DCT2 then normalized EvalCosCos
// reconstructs the input within the float32 band.
func TestPlan32RoundTrip(t *testing.T) {
	nx, ny := 32, 16
	f := randGrid(nx, ny, 29)
	p := NewPlan32(nx, ny)
	coef := make([]float32, nx*ny)
	p.DCT2(to32(f), coef, Serial)
	for v := 0; v < ny; v++ {
		wv := 2 / float32(ny)
		if v == 0 {
			wv = 1 / float32(ny)
		}
		for u := 0; u < nx; u++ {
			wu := 2 / float32(nx)
			if u == 0 {
				wu = 1 / float32(nx)
			}
			coef[v*nx+u] *= wu * wv
		}
	}
	got := make([]float32, nx*ny)
	p.EvalCosCos(coef, got, Serial)
	if d := maxRelDiff32(got, f); d > f32Tol {
		t.Errorf("roundtrip rel diff %g", d)
	}
}

// TestPlan32AllocFree: steady-state float32 transforms perform zero heap
// allocations, same discipline as the float64 plan.
func TestPlan32AllocFree(t *testing.T) {
	nx, ny := 32, 64
	p := NewPlan32(nx, ny)
	f := to32(randGrid(nx, ny, 43))
	coef := make([]float32, nx*ny)
	sx := randGrid(nx, 1, 47)
	sy := randGrid(ny, 1, 53)
	psi := make([]float32, nx*ny)
	ex := make([]float32, nx*ny)
	ey := make([]float32, nx*ny)
	p.DCT2(f, coef, Serial)
	p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
	allocs := testing.AllocsPerRun(20, func() {
		p.DCT2(f, coef, Serial)
		p.EvalPotentialField(coef, sx, sy, psi, ex, ey, Serial)
	})
	if allocs != 0 {
		t.Errorf("steady-state float32 transform allocs = %v, want 0", allocs)
	}
}

// BenchmarkSpectralBackends: the per-backend transform cost on the
// headline grids — the raw material of the BENCH_6 Poisson micro section.
func BenchmarkSpectralBackends(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("float64/%d", n), func(b *testing.B) {
			benchRoundTrip(b, NewPlan(n, n), n)
		})
		b.Run(fmt.Sprintf("float32/%d", n), func(b *testing.B) {
			p := NewPlan32(n, n)
			f := to32(randGrid(n, n, 3))
			coef := make([]float32, n*n)
			out := make([]float32, n*n)
			p.DCT2(f, coef, Serial)
			p.EvalCosCos(coef, out, Serial)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.DCT2(f, coef, Serial)
				p.EvalCosCos(coef, out, Serial)
			}
		})
	}
}
