package dct

// Makhoul length-N real-even transform kernels — the v2 spectral engine's
// 1-D building blocks (J. Makhoul, "A fast cosine transform in one and two
// dimensions", IEEE TASSP 1980; the same formulation the enhanced-FFT
// placement papers use for the Poisson step).
//
// The v1 path computes every DCT-II through a mirrored length-2N complex
// FFT: 4N complex butterfly points per row for N real outputs. The kernels
// here exploit the real/even structure instead:
//
//   - Forward (dctIIMakhoul): the even-odd permutation v[j] = x[2j],
//     v[N-1-j] = x[2j+1] turns the DCT-II into the first N terms of a
//     length-N DFT of a REAL sequence, which is computed as a packed
//     length-N/2 complex FFT — about 4x less butterfly work than v1.
//   - Evaluation (evalMakhoul): the cosine/sine series at the half-sample
//     points is the real/imaginary part of one length-N complex inverse
//     FFT (vs v1's zero-padded length-2N inverse), and both series come
//     out of the SAME transform, which the batched field evaluation uses.

// dctIIMakhoul computes the unnormalized 1-D DCT-II
//
//	dst[k] = sum_j src[j] * cos(pi*k*(2j+1)/(2N))
//
// via Makhoul's even-odd permutation and a packed real FFT of length N/2.
// half is the N/2-point FFT plan, scratch holds at least N/2 complex
// values, unp the unpack twiddles e^{-2*pi*i*k/N} (k = 0..N/2-1), and
// cosH/sinH the half-sample twiddles cos/sin(pi*k/(2N)) of length N.
// src and dst must not alias. N = len(src) must be a power of two.
func dctIIMakhoul(src, dst []float64, half *fftPlan, scratch []complex128, unp []complex128, cosH, sinH []float64) {
	n := len(src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	if n == 2 {
		dst[0] = src[0] + src[1]
		dst[1] = cosH[1] * (src[0] - src[1])
		return
	}
	m := n / 2 // even for n >= 4
	// Permute v[j] = src[2j] (j < m), v[n-1-j] = src[2j+1], packing the
	// real v pairwise into the complex scratch: z[i] = v[2i] + i*v[2i+1].
	h := m / 2
	for i := 0; i < h; i++ {
		scratch[i] = complex(src[4*i], src[4*i+2])
	}
	for i := h; i < m; i++ {
		scratch[i] = complex(src[2*n-4*i-1], src[2*n-4*i-3])
	}
	half.transform(scratch[:m], false)
	// Unpack Z -> V[k] = DFT_N(v)[k] for k = 0..m via the standard real-FFT
	// split (V[n-k] = conj(V[k]) covers the upper half), then rotate by the
	// half-sample twiddle: dst[k] = Re(e^{-i*pi*k/(2N)} * V[k]).
	z0 := scratch[0]
	e0, o0 := real(z0), imag(z0)
	dst[0] = e0 + o0 // V[0] is real; cosH[0] = 1
	vm := e0 - o0    // V[m] is real
	dst[m] = cosH[m] * vm
	for k := 1; k < m; k++ {
		zk := scratch[k]
		zc := scratch[m-k]
		// Even/odd real-sequence spectra: E = (Z[k]+conj(Z[m-k]))/2,
		// O = (Z[k]-conj(Z[m-k]))/(2i).
		er := (real(zk) + real(zc)) * 0.5
		ei := (imag(zk) - imag(zc)) * 0.5
		or := (imag(zk) + imag(zc)) * 0.5
		oi := (real(zc) - real(zk)) * 0.5
		// V[k] = E + e^{-2*pi*i*k/N} * O.
		ur, ui := real(unp[k]), imag(unp[k])
		a := er + ur*or - ui*oi
		b := ei + ur*oi + ui*or
		dst[k] = cosH[k]*a + sinH[k]*b
		dst[n-k] = cosH[n-k]*a - sinH[n-k]*b
	}
}

// evalMakhoul evaluates the complex half-sample series
//
//	g[j] = sum_u coef[u] * e^{i*pi*u*(2j+1)/(2N)},  j = 0..N-1
//
// with ONE length-N complex inverse FFT: with B the unnormalized inverse
// DFT of b[u] = coef[u]*e^{i*pi*u/(2N)}, the even outputs are g[2j] = B[j]
// and the odd outputs g[2j+1] = conj(B[N-1-j]) (coef real). The real part
// of g is the cosine series and the imaginary part the sine series, so a
// single call can produce either or both: dstCos and/or dstSin may be nil
// to skip that series. full is the N-point FFT plan, scratch holds at
// least N complex values. coef must not alias the destinations.
func evalMakhoul(coef, dstCos, dstSin []float64, full *fftPlan, scratch []complex128, cosH, sinH []float64) {
	n := len(coef)
	if n == 1 {
		if dstCos != nil {
			dstCos[0] = coef[0]
		}
		if dstSin != nil {
			dstSin[0] = 0
		}
		return
	}
	for u := 0; u < n; u++ {
		scratch[u] = complex(coef[u]*cosH[u], coef[u]*sinH[u])
	}
	full.transform(scratch[:n], true)
	m := n / 2
	if dstCos != nil {
		for j := 0; j < m; j++ {
			dstCos[2*j] = real(scratch[j])
			dstCos[2*j+1] = real(scratch[n-1-j])
		}
	}
	if dstSin != nil {
		for j := 0; j < m; j++ {
			dstSin[2*j] = imag(scratch[j])
			dstSin[2*j+1] = -imag(scratch[n-1-j])
		}
	}
}
