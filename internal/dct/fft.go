// Package dct provides the spectral transforms used by the electrostatic
// density model: a radix-2 complex FFT and the 2-D cosine/sine transforms
// that solve Poisson's equation with Neumann boundary conditions (Eq. 5 of
// the paper; the method of ePlace, executed by DREAMPlace and Xplace with
// rfft2/irfft2-style operators).
//
// Conventions. The forward 2-D transform computes unnormalized DCT-II
// coefficients
//
//	a[v][u] = sum_{y,x} f[y][x] * cos(pi*u*(2x+1)/(2*Nx)) * cos(pi*v*(2y+1)/(2*Ny))
//
// and the evaluation transforms compute series of the form
//
//	f[y][x] = sum_{v,u} c[v][u] * basisX(u,x) * basisY(v,y)
//
// where basisX/basisY is cos(pi*u*(2x+1)/(2*Nx)) or the corresponding sine.
// Any normalization is the caller's business (the Poisson solver folds it
// into the coefficients).
//
// All sizes must be powers of two. Transforms run through a Launcher so row
// and column batches execute as kernels on the engine.
package dct

import (
	"fmt"
	"math"
	"math/bits"
)

// serialLauncher runs bodies inline; used when no engine is supplied.
type serialLauncher struct{}

func (serialLauncher) Launch(_ string, n int, body func(int, int)) {
	if n > 0 {
		body(0, n)
	}
}

func (serialLauncher) LaunchChunks(_ string, n int, body func(int, int, int)) int {
	if n > 0 {
		body(0, 0, n)
		return 1
	}
	return 0
}

func (serialLauncher) Workers() int { return 1 }

// Serial is a Launcher that executes everything on the calling goroutine.
var Serial Launcher = serialLauncher{}

// fftPlan caches twiddle factors and the bit-reversal permutation for a
// complex FFT of length n (power of two).
type fftPlan struct {
	n     int
	rev   []int
	wFwd  []complex128 // twiddles for forward transform, per stage flattened
	wInv  []complex128
	stage []int // offset of each stage's twiddles
}

func newFFTPlan(n int) *fftPlan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dct: FFT length %d is not a power of two", n))
	}
	p := &fftPlan{n: n}
	logN := bits.TrailingZeros(uint(n))
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
	}
	// Twiddles per stage: stage s has half = 2^s butterflies width.
	total := 0
	for half := 1; half < n; half <<= 1 {
		total += half
	}
	p.wFwd = make([]complex128, total)
	p.wInv = make([]complex128, total)
	p.stage = make([]int, 0, logN)
	off := 0
	for half := 1; half < n; half <<= 1 {
		p.stage = append(p.stage, off)
		for j := 0; j < half; j++ {
			ang := -math.Pi * float64(j) / float64(half)
			p.wFwd[off+j] = complex(math.Cos(ang), math.Sin(ang))
			p.wInv[off+j] = complex(math.Cos(ang), -math.Sin(ang))
		}
		off += half
	}
	return p
}

// transform runs an in-place FFT on buf (len n). inverse selects the
// conjugate twiddles; no 1/n scaling is applied.
func (p *fftPlan) transform(buf []complex128, inverse bool) {
	n := p.n
	if len(buf) != n {
		panic("dct: FFT buffer length mismatch")
	}
	for i, r := range p.rev {
		if i < r {
			buf[i], buf[r] = buf[r], buf[i]
		}
	}
	w := p.wFwd
	if inverse {
		w = p.wInv
	}
	si := 0
	for half := 1; half < n; half <<= 1 {
		off := p.stage[si]
		si++
		for start := 0; start < n; start += half * 2 {
			for j := 0; j < half; j++ {
				a := buf[start+j]
				b := buf[start+j+half] * w[off+j]
				buf[start+j] = a + b
				buf[start+j+half] = a - b
			}
		}
	}
}

// FFT computes the in-place forward DFT of buf (length must be a power of
// two): X_k = sum_n x_n e^{-2*pi*i*k*n/N}.
func FFT(buf []complex128) {
	newFFTPlan(len(buf)).transform(buf, false)
}

// IFFT computes the in-place unnormalized inverse DFT of buf; divide by
// len(buf) to invert FFT exactly.
func IFFT(buf []complex128) {
	newFFTPlan(len(buf)).transform(buf, true)
}
