package dct

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// directDFT is the O(N^2) reference DFT.
func directDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := append([]complex128(nil), x...)
		FFT(got)
		want := directDFT(x, false)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		buf := append([]complex128(nil), x...)
		FFT(buf)
		IFFT(buf)
		for i := range buf {
			got := buf[i] / complex(float64(n), 0)
			if cmplx.Abs(got-x[i]) > 1e-9 {
				t.Fatalf("n=%d roundtrip[%d] = %v, want %v", n, i, got, x[i])
			}
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	FFT(make([]complex128, 3))
}

// directDCT2 is the O(N^4) reference for the 2-D DCT-II.
func directDCT2(f []float64, nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			var s float64
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					s += f[y*nx+x] *
						math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/(2*float64(nx))) *
						math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/(2*float64(ny)))
				}
			}
			out[v*nx+u] = s
		}
	}
	return out
}

// directEval is the O(N^4) reference for the evaluation transforms.
func directEval(c []float64, nx, ny int, sinX, sinY bool) []float64 {
	out := make([]float64, nx*ny)
	bx := func(u, x int) float64 {
		ang := math.Pi * float64(u) * (2*float64(x) + 1) / (2 * float64(nx))
		if sinX {
			return math.Sin(ang)
		}
		return math.Cos(ang)
	}
	by := func(v, y int) float64 {
		ang := math.Pi * float64(v) * (2*float64(y) + 1) / (2 * float64(ny))
		if sinY {
			return math.Sin(ang)
		}
		return math.Cos(ang)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			var s float64
			for v := 0; v < ny; v++ {
				for u := 0; u < nx; u++ {
					s += c[v*nx+u] * bx(u, x) * by(v, y)
				}
			}
			out[y*nx+x] = s
		}
	}
	return out
}

func randGrid(nx, ny int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, nx*ny)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	return f
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDCT2MatchesDirect(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {4, 8}, {16, 16}} {
		nx, ny := dims[0], dims[1]
		f := randGrid(nx, ny, 7)
		p := NewPlan(nx, ny)
		got := make([]float64, nx*ny)
		p.DCT2(f, got, Serial)
		want := directDCT2(f, nx, ny)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("%dx%d DCT2 max diff %g", nx, ny, d)
		}
	}
}

func TestEvalTransformsMatchDirect(t *testing.T) {
	nx, ny := 8, 16
	c := randGrid(nx, ny, 9)
	p := NewPlan(nx, ny)
	got := make([]float64, nx*ny)

	p.EvalCosCos(c, got, Serial)
	if d := maxAbsDiff(got, directEval(c, nx, ny, false, false)); d > 1e-9 {
		t.Errorf("EvalCosCos max diff %g", d)
	}
	p.EvalSinCos(c, got, Serial)
	if d := maxAbsDiff(got, directEval(c, nx, ny, true, false)); d > 1e-9 {
		t.Errorf("EvalSinCos max diff %g", d)
	}
	p.EvalCosSin(c, got, Serial)
	if d := maxAbsDiff(got, directEval(c, nx, ny, false, true)); d > 1e-9 {
		t.Errorf("EvalCosSin max diff %g", d)
	}
}

// Property: DCT2 then properly normalized EvalCosCos reconstructs the input
// (DCT-II / DCT-III orthogonality).
func TestDCTRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {32, 16}, {64, 64}} {
		nx, ny := dims[0], dims[1]
		f := randGrid(nx, ny, 11)
		p := NewPlan(nx, ny)
		coef := make([]float64, nx*ny)
		p.DCT2(f, coef, Serial)
		// Normalize: weight 1/N for index 0, 2/N otherwise, per dimension.
		for v := 0; v < ny; v++ {
			wv := 2 / float64(ny)
			if v == 0 {
				wv = 1 / float64(ny)
			}
			for u := 0; u < nx; u++ {
				wu := 2 / float64(nx)
				if u == 0 {
					wu = 1 / float64(nx)
				}
				coef[v*nx+u] *= wu * wv
			}
		}
		got := make([]float64, nx*ny)
		p.EvalCosCos(coef, got, Serial)
		if d := maxAbsDiff(got, f); d > 1e-9 {
			t.Errorf("%dx%d roundtrip max diff %g", nx, ny, d)
		}
	}
}

func TestDCT2InPlaceAliasing(t *testing.T) {
	nx, ny := 16, 16
	f := randGrid(nx, ny, 13)
	want := make([]float64, nx*ny)
	p := NewPlan(nx, ny)
	p.DCT2(f, want, Serial)
	// Alias src and dst.
	buf := append([]float64(nil), f...)
	p.DCT2(buf, buf, Serial)
	if d := maxAbsDiff(buf, want); d > 1e-12 {
		t.Errorf("aliased DCT2 differs by %g", d)
	}
}

func TestPlanPanicsOnBadSizes(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {3, 4}, {4, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d,%d) should panic", dims[0], dims[1])
				}
			}()
			NewPlan(dims[0], dims[1])
		}()
	}
	p := NewPlan(4, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch should panic")
			}
		}()
		p.DCT2(make([]float64, 5), make([]float64, 16), Serial)
	}()
}

func TestNilLauncherDefaultsToSerial(t *testing.T) {
	nx, ny := 8, 8
	f := randGrid(nx, ny, 17)
	p := NewPlan(nx, ny)
	a := make([]float64, nx*ny)
	b := make([]float64, nx*ny)
	p.DCT2(f, a, nil)
	p.DCT2(f, b, Serial)
	if d := maxAbsDiff(a, b); d != 0 {
		t.Errorf("nil launcher differs by %g", d)
	}
}

func BenchmarkDCT2_256(b *testing.B) {
	nx, ny := 256, 256
	f := randGrid(nx, ny, 3)
	out := make([]float64, nx*ny)
	p := NewPlan(nx, ny)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DCT2(f, out, Serial)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]complex128(nil), x...)
		FFT(buf)
	}
}

// TestDCT2DRoundTripAllocFree: once the plan's per-chunk scratch is warm,
// a full DCT2 + EvalCosCos round trip performs zero heap allocations.
func TestDCT2DRoundTripAllocFree(t *testing.T) {
	nx, ny := 64, 64
	f := randGrid(nx, ny, 17)
	p := NewPlan(nx, ny)
	coef := make([]float64, nx*ny)
	out := make([]float64, nx*ny)
	// Warm up the per-chunk scratch.
	p.DCT2(f, coef, Serial)
	p.EvalCosCos(coef, out, Serial)
	allocs := testing.AllocsPerRun(50, func() {
		p.DCT2(f, coef, Serial)
		p.EvalCosCos(coef, out, Serial)
	})
	if allocs != 0 {
		t.Errorf("steady-state DCT2D round-trip allocs = %v, want 0", allocs)
	}
}
