package optim

import (
	"math"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

func eng() *kernel.Engine { return kernel.New(kernel.Options{Workers: 2}) }

// quadratic is a toy separable objective sum_i (x_i - tx_i)^2 + (y_i - ty_i)^2.
type quadratic struct {
	tx, ty []float64
}

func (q quadratic) grad(x, y []float64) (gx, gy []float64) {
	gx = make([]float64, len(x))
	gy = make([]float64, len(y))
	for i := range x {
		gx[i] = 2 * (x[i] - q.tx[i])
		gy[i] = 2 * (y[i] - q.ty[i])
	}
	return
}

func (q quadratic) value(x, y []float64) float64 {
	var v float64
	for i := range x {
		v += (x[i]-q.tx[i])*(x[i]-q.tx[i]) + (y[i]-q.ty[i])*(y[i]-q.ty[i])
	}
	return v
}

func openBounds(n int) Bounds {
	b := Bounds{
		LoX: make([]float64, n), HiX: make([]float64, n),
		LoY: make([]float64, n), HiY: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.LoX[i], b.HiX[i] = -1e9, 1e9
		b.LoY[i], b.HiY[i] = -1e9, 1e9
	}
	return b
}

func TestNesterovConvergesOnQuadratic(t *testing.T) {
	e := eng()
	n := 50
	q := quadratic{tx: make([]float64, n), ty: make([]float64, n)}
	x0 := make([]float64, n)
	y0 := make([]float64, n)
	for i := 0; i < n; i++ {
		q.tx[i] = float64(i)
		q.ty[i] = -float64(i) / 2
		x0[i] = 100
		y0[i] = -100
	}
	o := NewNesterov(x0, y0, openBounds(n), 1.0)
	for it := 0; it < 300; it++ {
		vx, vy := o.Positions()
		gx, gy := q.grad(vx, vy)
		o.Step(e, gx, gy)
	}
	ux, uy := o.Current()
	if v := q.value(ux, uy); v > 1e-3 {
		t.Errorf("Nesterov did not converge: f = %v", v)
	}
}

func TestNesterovBeatsPlainGradientDescent(t *testing.T) {
	// On an ill-conditioned quadratic, Nesterov with BB steps should reach
	// a much lower objective than fixed-step GD in the same iterations.
	e := eng()
	n := 2
	// f = 100*(x0)^2 + (x1)^2 via scaling trick: fold into targets/grads.
	scale := []float64{100, 1}
	grad := func(x []float64) []float64 {
		g := make([]float64, n)
		for i := range x {
			g[i] = 2 * scale[i] * x[i]
		}
		return g
	}
	val := func(x []float64) float64 {
		var v float64
		for i := range x {
			v += scale[i] * x[i] * x[i]
		}
		return v
	}
	x0 := []float64{10, 10}
	zero := make([]float64, n)

	o := NewNesterov(x0, zero, openBounds(n), 0.5)
	for it := 0; it < 100; it++ {
		vx, _ := o.Positions()
		o.Step(e, grad(vx), make([]float64, n))
	}
	ux, _ := o.Current()
	nesterovVal := val(ux)

	// Plain GD with the largest stable fixed step (1/L, L=200).
	x := append([]float64(nil), x0...)
	for it := 0; it < 100; it++ {
		g := grad(x)
		for i := range x {
			x[i] -= g[i] / 200
		}
	}
	gdVal := val(x)
	if nesterovVal > gdVal {
		t.Errorf("Nesterov %v worse than GD %v", nesterovVal, gdVal)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	e := eng()
	n := 20
	q := quadratic{tx: make([]float64, n), ty: make([]float64, n)}
	x0 := make([]float64, n)
	y0 := make([]float64, n)
	for i := 0; i < n; i++ {
		q.tx[i] = 3
		q.ty[i] = -2
	}
	o := NewAdam(x0, y0, openBounds(n), 0.1)
	for it := 0; it < 2000; it++ {
		x, y := o.Positions()
		gx, gy := q.grad(x, y)
		o.Step(e, gx, gy)
	}
	x, y := o.Current()
	if v := q.value(x, y); v > 1e-4 {
		t.Errorf("Adam did not converge: f = %v", v)
	}
}

func TestBoundsClampAndFreeze(t *testing.T) {
	e := eng()
	n := 2
	b := openBounds(n)
	b.LoX[0], b.HiX[0] = 0, 5  // clamped cell
	b.LoX[1], b.HiX[1] = 1, -1 // frozen cell
	b.LoY[1], b.HiY[1] = 1, -1
	x0 := []float64{4, 7}
	y0 := []float64{0, 7}
	o := NewNesterov(x0, y0, b, 10)
	// Strong gradient pushing +x: positions must not exceed HiX / move frozen.
	for it := 0; it < 5; it++ {
		gx := []float64{-100, -100}
		gy := []float64{0, -100}
		o.Step(e, gx, gy)
	}
	ux, uy := o.Current()
	if ux[0] > 5+1e-12 {
		t.Errorf("cell 0 exceeded bound: %v", ux[0])
	}
	if ux[1] != 7 || uy[1] != 7 {
		t.Errorf("frozen cell moved to %v,%v", ux[1], uy[1])
	}
}

func TestNewBoundsFromDesign(t *testing.T) {
	d := netlist.NewDesign("b", geom.Rect{Hx: 100, Hy: 50})
	m := d.AddCell("m", 10, 4, 50, 25, netlist.Movable)
	f := d.AddCell("f", 10, 10, 20, 20, netlist.Fixed)
	wide := d.AddCell("w", 300, 4, 50, 25, netlist.Movable) // wider than region
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	b := NewBounds(d)
	if b.LoX[m] != 5 || b.HiX[m] != 95 || b.LoY[m] != 2 || b.HiY[m] != 48 {
		t.Errorf("movable bounds = %v %v %v %v", b.LoX[m], b.HiX[m], b.LoY[m], b.HiY[m])
	}
	if !b.frozen(f) {
		t.Error("fixed cell should be frozen")
	}
	if b.LoX[wide] != 50 || b.HiX[wide] != 50 {
		t.Errorf("over-wide cell should pin to center, got %v..%v", b.LoX[wide], b.HiX[wide])
	}
}

func TestPreconditioner(t *testing.T) {
	d := netlist.NewDesign("p", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell("a", 2, 2, 10, 10, netlist.Movable) // area 4
	b := d.AddCell("b", 4, 4, 20, 20, netlist.Movable) // area 16
	d.AddNet("n1")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	d.AddNet("n2")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	p := NewPreconditioner(d)
	// avg movable area = 10; normalized areas 0.4 and 1.6; degrees 2, 2.
	if math.Abs(p.Area[a]-0.4) > 1e-12 || math.Abs(p.Area[b]-1.6) > 1e-12 {
		t.Errorf("areas = %v %v", p.Area[a], p.Area[b])
	}
	if p.Deg[a] != 2 || p.Deg[b] != 2 {
		t.Errorf("degrees = %v %v", p.Deg[a], p.Deg[b])
	}

	e := eng()
	gx := []float64{8, 8}
	gy := []float64{8, 8}
	lambda := 10.0
	p.Apply(e, lambda, gx, gy)
	// h_a = 2 + 10*0.4 = 6; h_b = 2 + 10*1.6 = 18.
	if math.Abs(gx[a]-8.0/6) > 1e-12 || math.Abs(gx[b]-8.0/18) > 1e-12 {
		t.Errorf("preconditioned = %v", gx)
	}
	_ = gy
}

func TestPreconditionerFloorAtOne(t *testing.T) {
	d := netlist.NewDesign("f", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell("a", 0.1, 0.1, 5, 5, netlist.Movable) // tiny area, no nets
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	p := NewPreconditioner(d)
	e := eng()
	gx := []float64{4}
	gy := []float64{4}
	p.Apply(e, 0.0001, gx, gy)
	if gx[a] != 4 {
		t.Errorf("floor should keep gradient unchanged, got %v", gx[a])
	}
}

func TestOmegaMonotoneInLambda(t *testing.T) {
	d := netlist.NewDesign("o", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell("a", 1, 1, 5, 5, netlist.Movable)
	b := d.AddCell("b", 1, 1, 6, 6, netlist.Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	p := NewPreconditioner(d)
	prev := -1.0
	for _, l := range []float64{0, 0.001, 0.1, 1, 10, 1e4} {
		w := p.Omega(l)
		if w < prev {
			t.Errorf("omega not monotone at lambda=%v: %v < %v", l, w, prev)
		}
		if w < 0 || w > 1 {
			t.Errorf("omega out of range: %v", w)
		}
		prev = w
	}
	if p.Omega(0) != 0 {
		t.Error("omega(0) should be 0")
	}
	if p.Omega(1e12) < 0.999 {
		t.Error("omega should approach 1 for huge lambda")
	}
}

func TestOptimizerInterfaces(t *testing.T) {
	var _ Optimizer = (*Nesterov)(nil)
	var _ Optimizer = (*Adam)(nil)
}
