// Package optim provides the gradient-based optimizers of the placement
// core engine (Figure 1): a Nesterov accelerated method with Lipschitz
// steplength prediction (the ePlace/DREAMPlace optimizer) and Adam. It
// also implements the Jacobi preconditioner of §3.2 whose diagonal
// H = H_W + lambda*H_D defines the precondition weighted ratio omega.
//
// Optimizers treat x and y as one concatenated parameter vector but keep
// the two slices separate to avoid copies in the gradient operators.
package optim

import (
	"fmt"
	"math"

	"xplace/internal/backend"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// Optimizer is the pluggable optimization module of the core engine.
type Optimizer interface {
	// Positions returns the coordinates at which the next gradient must be
	// evaluated (the lookahead point for Nesterov; the current iterate for
	// Adam). The caller must not mutate the returned slices.
	Positions() (x, y []float64)
	// Step consumes the gradient evaluated at Positions and advances the
	// iterate. gx/gy are indexed by cell.
	Step(e *kernel.Engine, gx, gy []float64)
	// Current returns the best current solution (major point).
	Current() (x, y []float64)
	// State returns a serializable snapshot of the optimizer's mutable
	// state (the checkpoint payload of a durable placement job). The
	// snapshot owns its slices; later Steps do not alias into it.
	State() State
	// Restore replaces the optimizer's mutable state with a snapshot
	// previously produced by State on an optimizer of the same kind and
	// dimension. A restored optimizer continues the trajectory
	// bit-identically.
	Restore(st State) error
}

// State is the serializable mutable state of an optimizer, the
// checkpoint/resume payload. Kind discriminates the concrete type;
// Vectors and Vectors32 hold named per-cell series (only the fields the
// kind uses are present). Float64 values round-trip encoding/json
// exactly, so a JSON-serialized State resumes bit-identically.
type State struct {
	Kind string `json:"kind"` // "nesterov" | "adam"
	Iter int    `json:"iter"`
	// Nesterov: the Nesterov a_k sequence value.
	A float64 `json:"a,omitempty"`
	// Adam: the running beta powers for bias correction.
	B1Pow float64 `json:"b1_pow,omitempty"`
	B2Pow float64 `json:"b2_pow,omitempty"`
	// Vectors: nesterov uses ux,uy,vx,vy,pvx,pvy,pgx,pgy; adam uses x,y
	// plus (reference backend) mx,my,vx2,vy2.
	Vectors map[string][]float64 `json:"vectors,omitempty"`
	// Vectors32: adam moment state on a reduced-precision backend.
	Vectors32 map[string][]float32 `json:"vectors32,omitempty"`
}

// vec fetches a named vector of the required length from a State.
func (st State) vec(name string, n int) ([]float64, error) {
	v, ok := st.Vectors[name]
	if !ok {
		return nil, fmt.Errorf("optim: state missing vector %q", name)
	}
	if len(v) != n {
		return nil, fmt.Errorf("optim: state vector %q has %d entries, want %d", name, len(v), n)
	}
	return v, nil
}

func (st State) vec32(name string, n int) ([]float32, error) {
	v, ok := st.Vectors32[name]
	if !ok {
		return nil, fmt.Errorf("optim: state missing float32 vector %q", name)
	}
	if len(v) != n {
		return nil, fmt.Errorf("optim: state vector %q has %d entries, want %d", name, len(v), n)
	}
	return v, nil
}

func cloneF64(v []float64) []float64 { return append([]float64(nil), v...) }
func cloneF32(v []float32) []float32 { return append([]float32(nil), v...) }

// Bounds clamp cell centers into the legal placement area; entries are
// per-cell [lo, hi] for each axis. Cells whose entry is lo > hi (fixed
// cells) are never moved.
type Bounds struct {
	LoX, HiX, LoY, HiY []float64
}

// NewBounds derives clamping bounds from a design: movable and filler cell
// centers stay inside the region inset by half the cell size; fixed cells
// get frozen bounds (lo > hi).
func NewBounds(d *netlist.Design) Bounds {
	n := d.NumCells()
	b := Bounds{
		LoX: make([]float64, n), HiX: make([]float64, n),
		LoY: make([]float64, n), HiY: make([]float64, n),
	}
	r := d.Region
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Fixed {
			b.LoX[c], b.HiX[c] = 1, -1 // frozen
			b.LoY[c], b.HiY[c] = 1, -1
			continue
		}
		hw, hh := d.CellW[c]/2, d.CellH[c]/2
		box := r
		if f, ok := d.FenceOf(c); ok {
			box = f // fence containment (region constraint extension)
		}
		lox, hix := box.Lx+hw, box.Hx-hw
		loy, hiy := box.Ly+hh, box.Hy-hh
		if lox > hix { // cell wider than its box: pin to the box center
			mid := (box.Lx + box.Hx) / 2
			lox, hix = mid, mid
		}
		if loy > hiy {
			mid := (box.Ly + box.Hy) / 2
			loy, hiy = mid, mid
		}
		b.LoX[c], b.HiX[c] = lox, hix
		b.LoY[c], b.HiY[c] = loy, hiy
	}
	return b
}

func (b Bounds) frozen(c int) bool { return b.LoX[c] > b.HiX[c] }

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Nesterov implements the accelerated gradient method with the
// Barzilai-Borwein-style Lipschitz steplength prediction used by ePlace:
// alpha_k = |v_k - v_{k-1}| / |g_k - g_{k-1}|, one gradient evaluation per
// iteration. The first step moves the design by roughly InitMove.
type Nesterov struct {
	bounds Bounds
	// u: major solution; v: lookahead (gradient point).
	ux, uy, vx, vy []float64
	pvx, pvy       []float64 // previous lookahead
	pgx, pgy       []float64 // previous gradient
	a              float64
	iter           int
	// InitMove is the target RMS displacement of the first step in design
	// units.
	InitMove float64

	// Persistent kernel bodies with staged per-call parameters, so Step is
	// allocation-free (per-call closures would heap-allocate every launch).
	stepGX, stepGY     []float64
	alpha, coef        float64
	dAX, dAY, dBX, dBY []float64
	stepBody           func(lo, hi int)
	distBody           func(lo, hi int) float64
}

// NewNesterov creates a Nesterov optimizer starting from (x0, y0), which
// are copied. initMove sets the first step's RMS displacement.
func NewNesterov(x0, y0 []float64, bounds Bounds, initMove float64) *Nesterov {
	n := len(x0)
	o := &Nesterov{bounds: bounds, a: 1, InitMove: initMove}
	o.ux = append(make([]float64, 0, n), x0...)
	o.uy = append(make([]float64, 0, n), y0...)
	o.vx = append(make([]float64, 0, n), x0...)
	o.vy = append(make([]float64, 0, n), y0...)
	o.pvx = make([]float64, n)
	o.pvy = make([]float64, n)
	o.pgx = make([]float64, n)
	o.pgy = make([]float64, n)
	b := o.bounds
	o.stepBody = func(lo, hi int) {
		gx, gy := o.stepGX, o.stepGY
		alpha, coef := o.alpha, o.coef
		for c := lo; c < hi; c++ {
			if b.frozen(c) {
				continue
			}
			newUx := clampTo(o.vx[c]-alpha*gx[c], b.LoX[c], b.HiX[c])
			newUy := clampTo(o.vy[c]-alpha*gy[c], b.LoY[c], b.HiY[c])
			o.vx[c] = clampTo(newUx+coef*(newUx-o.ux[c]), b.LoX[c], b.HiX[c])
			o.vy[c] = clampTo(newUy+coef*(newUy-o.uy[c]), b.LoY[c], b.HiY[c])
			o.ux[c] = newUx
			o.uy[c] = newUy
		}
	}
	o.distBody = func(lo, hi int) float64 {
		ax, ay, bx, by := o.dAX, o.dAY, o.dBX, o.dBY
		var v float64
		for i := lo; i < hi; i++ {
			dx := ax[i] - bx[i]
			dy := ay[i] - by[i]
			v += dx*dx + dy*dy
		}
		return v
	}
	return o
}

// dist returns the l2 distance between (ax,ay) and (bx,by) as one kernel.
func (o *Nesterov) dist(e *kernel.Engine, ax, ay, bx, by []float64) float64 {
	o.dAX, o.dAY, o.dBX, o.dBY = ax, ay, bx, by
	return math.Sqrt(e.ParallelReduce("optim.dist", len(ax), 0, o.distBody, addFloat))
}

// Positions returns the lookahead point v.
func (o *Nesterov) Positions() (x, y []float64) { return o.vx, o.vy }

// Current returns the major solution u.
func (o *Nesterov) Current() (x, y []float64) { return o.ux, o.uy }

// Step advances u and v given the gradient at v.
func (o *Nesterov) Step(e *kernel.Engine, gx, gy []float64) {
	n := len(o.ux)
	var alpha float64
	if o.iter == 0 {
		gn := rmsNorm(e, gx, gy)
		if gn <= 0 {
			gn = 1
		}
		alpha = o.InitMove / gn
	} else {
		num := o.dist(e, o.vx, o.vy, o.pvx, o.pvy)
		den := o.dist(e, gx, gy, o.pgx, o.pgy)
		if den <= 1e-30 {
			den = 1e-30
		}
		alpha = num / den
	}
	aNew := (1 + math.Sqrt(4*o.a*o.a+1)) / 2

	// Save the lookahead and gradient for the next steplength prediction,
	// then update u and v in one fused kernel (in-place, no autograd).
	copy(o.pvx, o.vx)
	copy(o.pvy, o.vy)
	copy(o.pgx, gx)
	copy(o.pgy, gy)
	o.stepGX, o.stepGY = gx, gy
	o.alpha, o.coef = alpha, (o.a-1)/aNew
	e.Launch("optim.nesterov_step", n, o.stepBody)
	o.a = aNew
	o.iter++
}

// State snapshots the Nesterov trajectory: major/lookahead points, the
// previous lookahead and gradient (the Barzilai-Borwein steplength
// inputs), the a_k sequence value and the iteration count.
func (o *Nesterov) State() State {
	return State{
		Kind: "nesterov",
		Iter: o.iter,
		A:    o.a,
		Vectors: map[string][]float64{
			"ux": cloneF64(o.ux), "uy": cloneF64(o.uy),
			"vx": cloneF64(o.vx), "vy": cloneF64(o.vy),
			"pvx": cloneF64(o.pvx), "pvy": cloneF64(o.pvy),
			"pgx": cloneF64(o.pgx), "pgy": cloneF64(o.pgy),
		},
	}
}

// Restore replaces the trajectory with a snapshot taken by State.
func (o *Nesterov) Restore(st State) error {
	if st.Kind != "nesterov" {
		return fmt.Errorf("optim: restoring %q state into Nesterov", st.Kind)
	}
	n := len(o.ux)
	dst := map[string][]float64{
		"ux": o.ux, "uy": o.uy, "vx": o.vx, "vy": o.vy,
		"pvx": o.pvx, "pvy": o.pvy, "pgx": o.pgx, "pgy": o.pgy,
	}
	for name, d := range dst {
		src, err := st.vec(name, n)
		if err != nil {
			return err
		}
		copy(d, src)
	}
	o.a = st.A
	o.iter = st.Iter
	return nil
}

// Adam implements the Adam optimizer over cell coordinates. On a
// reduced-precision backend the first/second moment state is stored in
// float32 (halving the optimizer-state traffic, the classic mixed-
// precision training layout); positions and gradients stay float64 at the
// API boundary and the per-element update math runs in float64 registers.
type Adam struct {
	bounds                Bounds
	x, y                  []float64
	mx, my, vxm, vym      []float64
	mx32, my32            []float32
	vxm32, vym32          []float32
	LR, Beta1, Beta2, Eps float64
	iter                  int
	b1Pow, b2Pow          float64

	stepGX, stepGY []float64 // staged gradient for the persistent body
	mc, vc         float64   // staged bias corrections
	stepBody       func(lo, hi int)
}

// NewAdam creates an Adam optimizer starting from (x0, y0) (copied), with
// reference-precision (float64) moment state.
func NewAdam(x0, y0 []float64, bounds Bounds, lr float64) *Adam {
	return NewAdamOn(x0, y0, bounds, lr, nil)
}

// NewAdamOn creates an Adam optimizer whose moment state uses compute
// backend b (nil means the reference backend, identical to NewAdam).
func NewAdamOn(x0, y0 []float64, bounds Bounds, lr float64, be backend.Backend) *Adam {
	n := len(x0)
	o := &Adam{
		bounds: bounds,
		x:      append(make([]float64, 0, n), x0...),
		y:      append(make([]float64, 0, n), y0...),
		LR:     lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		b1Pow: 1, b2Pow: 1,
	}
	b := o.bounds
	if backend.IsReference(be) {
		o.mx, o.my = make([]float64, n), make([]float64, n)
		o.vxm, o.vym = make([]float64, n), make([]float64, n)
		o.stepBody = func(lo, hi int) {
			gx, gy := o.stepGX, o.stepGY
			mc, vc := o.mc, o.vc
			for c := lo; c < hi; c++ {
				if b.frozen(c) {
					continue
				}
				o.mx[c] = o.Beta1*o.mx[c] + (1-o.Beta1)*gx[c]
				o.my[c] = o.Beta1*o.my[c] + (1-o.Beta1)*gy[c]
				o.vxm[c] = o.Beta2*o.vxm[c] + (1-o.Beta2)*gx[c]*gx[c]
				o.vym[c] = o.Beta2*o.vym[c] + (1-o.Beta2)*gy[c]*gy[c]
				o.x[c] = clampTo(o.x[c]-o.LR*(o.mx[c]*mc)/(math.Sqrt(o.vxm[c]*vc)+o.Eps), b.LoX[c], b.HiX[c])
				o.y[c] = clampTo(o.y[c]-o.LR*(o.my[c]*mc)/(math.Sqrt(o.vym[c]*vc)+o.Eps), b.LoY[c], b.HiY[c])
			}
		}
		return o
	}
	o.mx32, o.my32 = make([]float32, n), make([]float32, n)
	o.vxm32, o.vym32 = make([]float32, n), make([]float32, n)
	o.stepBody = func(lo, hi int) {
		gx, gy := o.stepGX, o.stepGY
		mc, vc := o.mc, o.vc
		for c := lo; c < hi; c++ {
			if b.frozen(c) {
				continue
			}
			mx := o.Beta1*float64(o.mx32[c]) + (1-o.Beta1)*gx[c]
			my := o.Beta1*float64(o.my32[c]) + (1-o.Beta1)*gy[c]
			vx := o.Beta2*float64(o.vxm32[c]) + (1-o.Beta2)*gx[c]*gx[c]
			vy := o.Beta2*float64(o.vym32[c]) + (1-o.Beta2)*gy[c]*gy[c]
			o.mx32[c], o.my32[c] = float32(mx), float32(my)
			o.vxm32[c], o.vym32[c] = float32(vx), float32(vy)
			o.x[c] = clampTo(o.x[c]-o.LR*(mx*mc)/(math.Sqrt(vx*vc)+o.Eps), b.LoX[c], b.HiX[c])
			o.y[c] = clampTo(o.y[c]-o.LR*(my*mc)/(math.Sqrt(vy*vc)+o.Eps), b.LoY[c], b.HiY[c])
		}
	}
	return o
}

// Positions returns the current iterate (Adam has no lookahead).
func (o *Adam) Positions() (x, y []float64) { return o.x, o.y }

// Current returns the current iterate.
func (o *Adam) Current() (x, y []float64) { return o.x, o.y }

// Step applies one Adam update.
func (o *Adam) Step(e *kernel.Engine, gx, gy []float64) {
	o.iter++
	o.b1Pow *= o.Beta1
	o.b2Pow *= o.Beta2
	o.mc = 1 / (1 - o.b1Pow)
	o.vc = 1 / (1 - o.b2Pow)
	o.stepGX, o.stepGY = gx, gy
	e.Launch("optim.adam_step", len(o.x), o.stepBody)
}

// State snapshots the Adam iterate and moment estimates (float32 moments
// when the optimizer was built on a reduced-precision backend).
func (o *Adam) State() State {
	st := State{
		Kind:  "adam",
		Iter:  o.iter,
		B1Pow: o.b1Pow,
		B2Pow: o.b2Pow,
		Vectors: map[string][]float64{
			"x": cloneF64(o.x), "y": cloneF64(o.y),
		},
	}
	if o.mx32 != nil {
		st.Vectors32 = map[string][]float32{
			"mx": cloneF32(o.mx32), "my": cloneF32(o.my32),
			"vx2": cloneF32(o.vxm32), "vy2": cloneF32(o.vym32),
		}
		return st
	}
	st.Vectors["mx"] = cloneF64(o.mx)
	st.Vectors["my"] = cloneF64(o.my)
	st.Vectors["vx2"] = cloneF64(o.vxm)
	st.Vectors["vy2"] = cloneF64(o.vym)
	return st
}

// Restore replaces the iterate and moments with a snapshot taken by
// State. The snapshot's moment precision must match the optimizer's
// backend (a float64-moment checkpoint does not restore into a float32
// optimizer — rebuild the job on the backend it was checkpointed on).
func (o *Adam) Restore(st State) error {
	if st.Kind != "adam" {
		return fmt.Errorf("optim: restoring %q state into Adam", st.Kind)
	}
	n := len(o.x)
	for name, d := range map[string][]float64{"x": o.x, "y": o.y} {
		src, err := st.vec(name, n)
		if err != nil {
			return err
		}
		copy(d, src)
	}
	if o.mx32 != nil {
		if st.Vectors32 == nil {
			return fmt.Errorf("optim: float64-moment checkpoint cannot restore into a float32 Adam")
		}
		for name, d := range map[string][]float32{
			"mx": o.mx32, "my": o.my32, "vx2": o.vxm32, "vy2": o.vym32,
		} {
			src, err := st.vec32(name, n)
			if err != nil {
				return err
			}
			copy(d, src)
		}
	} else {
		if st.Vectors32 != nil {
			return fmt.Errorf("optim: float32-moment checkpoint cannot restore into a float64 Adam")
		}
		for name, d := range map[string][]float64{
			"mx": o.mx, "my": o.my, "vx2": o.vxm, "vy2": o.vym,
		} {
			src, err := st.vec(name, n)
			if err != nil {
				return err
			}
			copy(d, src)
		}
	}
	o.iter = st.Iter
	o.b1Pow = st.B1Pow
	o.b2Pow = st.B2Pow
	return nil
}

// rmsNorm returns sqrt(mean(gx^2 + gy^2)) as one kernel. Only used for the
// first-step steplength, so the per-call closure is not on the hot path.
func rmsNorm(e *kernel.Engine, gx, gy []float64) float64 {
	n := len(gx)
	s := e.ParallelReduce("optim.rms", n, 0, func(lo, hi int) float64 {
		var v float64
		for i := lo; i < hi; i++ {
			v += gx[i]*gx[i] + gy[i]*gy[i]
		}
		return v
	}, addFloat)
	return math.Sqrt(s / float64(2*n))
}

func addFloat(a, b float64) float64 { return a + b }

// Preconditioner holds the diagonal entries of H_W (net degree) and H_D
// (cell area) of §3.2 plus their l1 norms, fixed per design.
type Preconditioner struct {
	Deg    []float64 // |S_i|
	Area   []float64 // A_i
	SumDeg float64   // |H_W|
	SumA   float64   // |H_D|

	// Staged parameters for the persistent Apply body.
	lambda    float64
	gx, gy    []float64
	applyBody func(lo, hi int)
}

// NewPreconditioner builds the preconditioner diagonals for d. Areas are
// normalized by the average movable cell area so lambda stays in a
// comparable range across designs.
func NewPreconditioner(d *netlist.Design) *Preconditioner {
	n := d.NumCells()
	p := &Preconditioner{Deg: make([]float64, n), Area: make([]float64, n)}
	var movArea float64
	var movCnt int
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Movable {
			movArea += d.CellW[c] * d.CellH[c]
			movCnt++
		}
	}
	avg := 1.0
	if movCnt > 0 && movArea > 0 {
		avg = movArea / float64(movCnt)
	}
	for c := 0; c < n; c++ {
		p.Deg[c] = float64(d.CellNetDeg[c])
		p.Area[c] = d.CellW[c] * d.CellH[c] / avg
		if d.CellKind[c] != netlist.Fixed {
			p.SumDeg += p.Deg[c]
			p.SumA += p.Area[c]
		}
	}
	p.applyBody = func(lo, hi int) {
		p.ApplyRange(p.lambda, p.gx, p.gy, lo, hi)
	}
	return p
}

// Omega returns the precondition weighted ratio
// omega = lambda*|H_D| / (|H_W| + lambda*|H_D|) in [0, 1] (§3.2) — the
// placement-stage metric.
func (p *Preconditioner) Omega(lambda float64) float64 {
	den := p.SumDeg + lambda*p.SumA
	if den <= 0 {
		return 0
	}
	return lambda * p.SumA / den
}

// Apply divides the gradient by max(1, |S_i| + lambda*A_i) in place as one
// kernel.
func (p *Preconditioner) Apply(e *kernel.Engine, lambda float64, gx, gy []float64) {
	p.lambda, p.gx, p.gy = lambda, gx, gy
	e.Launch("optim.precondition", len(gx), p.applyBody)
}

// ApplyRange is the body of Apply over [lo, hi) without a launch of its
// own, so callers can fuse preconditioning into a combined kernel.
func (p *Preconditioner) ApplyRange(lambda float64, gx, gy []float64, lo, hi int) {
	for c := lo; c < hi; c++ {
		h := p.Deg[c] + lambda*p.Area[c]
		if h < 1 {
			h = 1
		}
		gx[c] /= h
		gy[c] /= h
	}
}
