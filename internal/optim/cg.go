package optim

import (
	"math"

	"xplace/internal/kernel"
)

// QuadSystem is a sparse symmetric positive-semidefinite quadratic model
// of one placement axis, min 1/2 x'Ax - b'x: a per-cell diagonal plus
// symmetric off-diagonal couplings in CSR form. It is the net-model
// least-squares system of the LB/UB alternation strategy — B2B edges and
// anchor pseudo-nets both lower to AddEdge/AddAnchor calls on the
// builder — but carries no placement semantics itself.
type QuadSystem struct {
	N    int
	Diag []float64
	B    []float64
	// Off-diagonal CSR. An edge (i,j) of weight w contributes A_ij = -w
	// and is stored twice (once per row) so matvec is row-parallel.
	RowStart []int32
	Col      []int32
	OffW     []float64
}

// QuadBuilder accumulates edges and anchors and assembles a QuadSystem.
// All scratch is reused across Build calls, so a per-step rebuild (the
// B2B model re-selects its edges every solve) settles to zero steady
// allocations once the edge count peaks.
type QuadBuilder struct {
	n           int
	diag, b     []float64
	edgeI       []int32
	edgeJ       []int32
	edgeW       []float64
	edgeD       []float64
	sys         QuadSystem
	rowFill     []int32
}

// Reset prepares the builder for a system over n variables.
func (qb *QuadBuilder) Reset(n int) {
	qb.n = n
	if cap(qb.diag) < n {
		qb.diag = make([]float64, n)
		qb.b = make([]float64, n)
	}
	qb.diag = qb.diag[:n]
	qb.b = qb.b[:n]
	for i := range qb.diag {
		qb.diag[i] = 0
		qb.b[i] = 0
	}
	qb.edgeI = qb.edgeI[:0]
	qb.edgeJ = qb.edgeJ[:0]
	qb.edgeW = qb.edgeW[:0]
	qb.edgeD = qb.edgeD[:0]
}

// AddEdge adds the quadratic term w*(x_i - x_j + delta)^2 / 2 between two
// free variables (delta is the constant pin-offset difference o_i - o_j).
func (qb *QuadBuilder) AddEdge(i, j int, w, delta float64) {
	qb.edgeI = append(qb.edgeI, int32(i))
	qb.edgeJ = append(qb.edgeJ, int32(j))
	qb.edgeW = append(qb.edgeW, w)
	qb.edgeD = append(qb.edgeD, delta)
}

// AddAnchor adds the term w*(x_i - target)^2 / 2: a spring from variable i
// to a constant (a fixed pin, or an LB/UB anchor pseudo-net).
func (qb *QuadBuilder) AddAnchor(i int, w, target float64) {
	qb.diag[i] += w
	qb.b[i] += w * target
}

// Build assembles the CSR system. Variables that accumulated no weight at
// all (isolated cells before any anchor activates) are pinned at ref so
// the system stays positive definite and they simply do not move.
func (qb *QuadBuilder) Build(ref []float64) *QuadSystem {
	n := qb.n
	s := &qb.sys
	s.N = n
	if cap(s.Diag) < n {
		s.Diag = make([]float64, n)
		s.B = make([]float64, n)
		s.RowStart = make([]int32, n+1)
	}
	s.Diag = s.Diag[:n]
	s.B = s.B[:n]
	s.RowStart = s.RowStart[:n+1]
	copy(s.Diag, qb.diag)
	copy(s.B, qb.b)

	// Edge contributions to diagonal and RHS; per-row counts for CSR.
	for i := range s.RowStart {
		s.RowStart[i] = 0
	}
	for k := range qb.edgeI {
		i, j, w, d := qb.edgeI[k], qb.edgeJ[k], qb.edgeW[k], qb.edgeD[k]
		s.Diag[i] += w
		s.Diag[j] += w
		s.B[i] -= w * d
		s.B[j] += w * d
		s.RowStart[i+1]++
		s.RowStart[j+1]++
	}
	for i := 0; i < n; i++ {
		s.RowStart[i+1] += s.RowStart[i]
	}
	nnz := int(s.RowStart[n])
	if cap(s.Col) < nnz {
		s.Col = make([]int32, nnz)
		s.OffW = make([]float64, nnz)
	}
	s.Col = s.Col[:nnz]
	s.OffW = s.OffW[:nnz]
	if cap(qb.rowFill) < n {
		qb.rowFill = make([]int32, n)
	}
	qb.rowFill = qb.rowFill[:n]
	copy(qb.rowFill, s.RowStart[:n])
	for k := range qb.edgeI {
		i, j, w := qb.edgeI[k], qb.edgeJ[k], qb.edgeW[k]
		s.Col[qb.rowFill[i]] = j
		s.OffW[qb.rowFill[i]] = w
		qb.rowFill[i]++
		s.Col[qb.rowFill[j]] = i
		s.OffW[qb.rowFill[j]] = w
		qb.rowFill[j]++
	}

	for i := 0; i < n; i++ {
		if s.Diag[i] <= 0 {
			s.Diag[i] = 1
			s.B[i] = ref[i]
		}
	}
	return s
}

// CG is a Jacobi-preconditioned conjugate-gradient solver over a
// QuadSystem. The matvec and the axpy updates run as engine launches and
// the dot products as engine reductions, so solves show up in the launch
// stats and inherit the fixed-worker chunk boundaries that make
// floating-point summation order — and therefore the whole LB trajectory —
// bit-identical run to run.
type CG struct {
	r, z, p, q []float64
}

// Solve minimizes the system starting from (and writing back into) x,
// stopping when the preconditioned residual norm falls below tol relative
// to its initial value or after maxIter iterations. Returns the number of
// iterations taken.
func (cg *CG) Solve(e *kernel.Engine, s *QuadSystem, x []float64, maxIter int, tol float64) int {
	n := s.N
	if n == 0 {
		return 0
	}
	if cap(cg.r) < n {
		cg.r = make([]float64, n)
		cg.z = make([]float64, n)
		cg.p = make([]float64, n)
		cg.q = make([]float64, n)
	}
	r, z, p, q := cg.r[:n], cg.z[:n], cg.p[:n], cg.q[:n]

	matvec := func(src, dst []float64) {
		e.Launch("optim.cg_matvec", n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := s.Diag[i] * src[i]
				for k := s.RowStart[i]; k < s.RowStart[i+1]; k++ {
					v -= s.OffW[k] * src[s.Col[k]]
				}
				dst[i] = v
			}
		})
	}

	matvec(x, q)
	// r = b - Ax, z = r/diag, p = z; rz = r'z in one fused pass.
	rz := e.ParallelReduce("optim.cg_init", n, 0, func(lo, hi int) float64 {
		var sum float64
		for i := lo; i < hi; i++ {
			r[i] = s.B[i] - q[i]
			z[i] = r[i] / s.Diag[i]
			p[i] = z[i]
			sum += r[i] * z[i]
		}
		return sum
	}, addFloat)
	rz0 := rz
	if rz0 <= 0 || math.IsNaN(rz0) || math.IsInf(rz0, 0) {
		return 0
	}
	stop := tol * tol * rz0

	var it int
	for it = 0; it < maxIter; it++ {
		if rz <= stop {
			break
		}
		matvec(p, q)
		pq := e.ParallelReduce("optim.cg_dot", n, 0, func(lo, hi int) float64 {
			var sum float64
			for i := lo; i < hi; i++ {
				sum += p[i] * q[i]
			}
			return sum
		}, addFloat)
		if pq <= 0 || math.IsNaN(pq) || math.IsInf(pq, 0) {
			break // lost positive-definiteness numerically; keep current x
		}
		alpha := rz / pq
		// x += alpha p, r -= alpha q, z = r/diag; rzNew fused in.
		rzNew := e.ParallelReduce("optim.cg_update", n, 0, func(lo, hi int) float64 {
			var sum float64
			for i := lo; i < hi; i++ {
				x[i] += alpha * p[i]
				r[i] -= alpha * q[i]
				z[i] = r[i] / s.Diag[i]
				sum += r[i] * z[i]
			}
			return sum
		}, addFloat)
		if math.IsNaN(rzNew) || math.IsInf(rzNew, 0) {
			break
		}
		beta := rzNew / rz
		rz = rzNew
		e.Launch("optim.cg_direction", n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
		})
	}
	return it
}
