package bookshelf

import (
	"strings"
	"testing"
)

// Seed corpus: a tiny valid design plus inputs that historically mapped
// onto builder panics (negative sizes, NaN literals, pins outside nets).
var fuzzSeeds = [][4]string{
	{
		// Valid two-cell design.
		"UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\na 2 2\nb 4 4 terminal\n",
		"UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a I : 0 0\n b I : 1 1\n",
		"UCLA pl 1.0\na 0 0 : N\nb 10 10 : N /FIXED\n",
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 2\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 16\nEnd\n",
	},
	{
		// Negative size: must be a parse error, not an AddCell panic.
		"a -1 2\n", "NetDegree : 1\n a\n", "a 0 0 : N\n", "",
	},
	{
		// NaN/Inf literals: must be rejected.
		"a NaN 2\nb 2 Inf\n", "", "a Inf 0 : N\n", "",
	},
	{
		// Pin before any NetDegree header.
		"a 1 1\n", "a I : 0 0\n", "a 0 0 : N\n", "",
	},
	{
		// Unknown node in pl / nets.
		"a 1 1\n", "NetDegree : 1\n zz\n", "zz 3 4 : N\n", "",
	},
	{
		// Degenerate: no nodes at all.
		"", "", "", "",
	},
	{
		// Fuzz-derived divergence trigger: ±1e40 pin offsets parse fine
		// and every kernel stays finite, but the gradient flow's HPWL
		// explodes (placer.ErrDiverged → the serve-level lbub fallback).
		// Kept as a seed so the parser keeps accepting it and the placer
		// regression tests keep a durable origin story.
		"UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 2 2\nb 2 2\n",
		"UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a I : 1e40 1e40\n b I : -1e40 -1e40\n",
		"UCLA pl 1.0\na 10 10 : N\nb 90 90 : N\n",
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 100\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 100\nEnd\n",
	},
	{
		// Header games: huge declared counts with no body (no pre-alloc
		// from headers, so this must not OOM).
		"NumNodes : 999999999999\n", "NumNets : 999999999999\nNetDegree : 999999999\n", "", "",
	},
}

// FuzzRead feeds hostile bookshelf file sets to the parser: any input may
// be rejected with an error, but none may panic, hang, or blow memory.
func FuzzRead(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s[0], s[1], s[2], s[3])
	}
	f.Fuzz(func(t *testing.T, nodes, nets, pl, scl string) {
		files := Files{
			Nodes: strings.NewReader(nodes),
			Nets:  strings.NewReader(nets),
			Pl:    strings.NewReader(pl),
		}
		if scl != "" {
			files.Scl = strings.NewReader(scl)
		}
		d, err := Read("fuzz", files)
		if err != nil {
			return
		}
		// Accepted inputs must yield a sealed, self-consistent design.
		if !d.Finished() {
			t.Fatal("accepted design is not finished")
		}
		if got := d.NetPinStart[d.NumNets()]; got != d.NumPins() {
			t.Fatalf("CSR pin count %d != NumPins %d", got, d.NumPins())
		}
		for c := 0; c < d.NumCells(); c++ {
			if d.CellW[c] < 0 || d.CellH[c] < 0 {
				t.Fatalf("accepted cell %d with negative size %gx%g", c, d.CellW[c], d.CellH[c])
			}
		}
	})
}
