package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xplace/internal/benchgen"
	"xplace/internal/netlist"
)

const tinyNodes = `UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
o1 2 4
o2 4 4
p0 1 1 terminal
`

const tinyNets = `UCLA nets 1.0
NumNets : 2
NumPins : 4
NetDegree : 2 n0
	o1 I : 0.5 -1
	o2 O : 0 0
NetDegree : 2 n1
	o2 I : 0 0
	p0 I : 0 0
`

const tinyPl = `UCLA pl 1.0
o1 10 8 : N
o2 20 8 : N
p0 0 0 : N /FIXED
`

const tinyScl = `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 4
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 40
End
CoreRow Horizontal
  Coordinate : 4
  Height : 4
  Sitewidth : 1
  Sitespacing : 1
  SubrowOrigin : 0 NumSites : 40
End
`

func readTiny(t *testing.T, withScl bool) *netlist.Design {
	t.Helper()
	f := Files{
		Nodes: strings.NewReader(tinyNodes),
		Nets:  strings.NewReader(tinyNets),
		Pl:    strings.NewReader(tinyPl),
	}
	if withScl {
		f.Scl = strings.NewReader(tinyScl)
	}
	d, err := Read("tiny", f)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReadTiny(t *testing.T) {
	d := readTiny(t, true)
	if d.NumCells() != 3 || d.NumNets() != 2 || d.NumPins() != 4 {
		t.Fatalf("counts %d/%d/%d", d.NumCells(), d.NumNets(), d.NumPins())
	}
	// o1: lower-left (10,8), size 2x4 -> center (11,10).
	if d.CellX[0] != 11 || d.CellY[0] != 10 {
		t.Errorf("o1 center = (%v,%v)", d.CellX[0], d.CellY[0])
	}
	if d.CellKind[2] != netlist.Fixed {
		t.Error("terminal should be fixed")
	}
	if d.CellKind[0] != netlist.Movable {
		t.Error("o1 should be movable")
	}
	// Pin offset of first pin.
	if d.PinOffX[0] != 0.5 || d.PinOffY[0] != -1 {
		t.Errorf("pin offset = (%v,%v)", d.PinOffX[0], d.PinOffY[0])
	}
	// Rows.
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if d.Rows[1].Y != 4 || d.Rows[1].X1 != 40 || d.Rows[1].Height != 4 {
		t.Errorf("row 1 = %+v", d.Rows[1])
	}
	// Region from rows: 0..40 x 0..8.
	if d.Region.Hx != 40 || d.Region.Hy != 8 {
		t.Errorf("region = %v", d.Region)
	}
}

func TestReadWithoutSclUsesBBox(t *testing.T) {
	d := readTiny(t, false)
	if len(d.Rows) != 0 {
		t.Fatal("unexpected rows")
	}
	// BBox over cells: x 0..24, y 0..12.
	if d.Region.Hx != 24 || d.Region.Hy != 12 {
		t.Errorf("region = %v", d.Region)
	}
}

func TestReadErrors(t *testing.T) {
	// Missing reader.
	if _, err := Read("x", Files{Nodes: strings.NewReader(tinyNodes)}); err == nil {
		t.Error("want error for missing readers")
	}
	// Unknown node in pl.
	f := Files{
		Nodes: strings.NewReader(tinyNodes),
		Nets:  strings.NewReader(tinyNets),
		Pl:    strings.NewReader("UCLA pl 1.0\nmystery 0 0 : N\n"),
	}
	if _, err := Read("x", f); err == nil {
		t.Error("want error for unknown node in .pl")
	}
	// Unknown node in nets.
	f = Files{
		Nodes: strings.NewReader(tinyNodes),
		Nets:  strings.NewReader("UCLA nets 1.0\nNetDegree : 1 n\n\tghost I : 0 0\n"),
		Pl:    strings.NewReader(tinyPl),
	}
	if _, err := Read("x", f); err == nil {
		t.Error("want error for unknown node in .nets")
	}
	// Pin outside a net.
	f = Files{
		Nodes: strings.NewReader(tinyNodes),
		Nets:  strings.NewReader("UCLA nets 1.0\n\to1 I : 0 0\n"),
		Pl:    strings.NewReader(tinyPl),
	}
	if _, err := Read("x", f); err == nil {
		t.Error("want error for stray pin")
	}
}

// Round-trip property: Write then ReadAux reproduces the design.
func TestWriteReadRoundTrip(t *testing.T) {
	spec, _ := benchgen.FindSpec("fft_1")
	d := benchgen.Generate(spec, 0.01, 3)
	dir := t.TempDir()
	if err := Write(dir, "fft_1", d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAux(filepath.Join(dir, "fft_1.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != d.NumCells() || got.NumNets() != d.NumNets() || got.NumPins() != d.NumPins() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			got.NumCells(), got.NumNets(), got.NumPins(),
			d.NumCells(), d.NumNets(), d.NumPins())
	}
	for c := 0; c < d.NumCells(); c++ {
		if got.CellName[c] != d.CellName[c] || got.CellKind[c] != d.CellKind[c] {
			t.Fatalf("cell %d identity differs", c)
		}
		if math.Abs(got.CellX[c]-d.CellX[c]) > 1e-9 || math.Abs(got.CellY[c]-d.CellY[c]) > 1e-9 {
			t.Fatalf("cell %d position differs: (%v,%v) vs (%v,%v)",
				c, got.CellX[c], got.CellY[c], d.CellX[c], d.CellY[c])
		}
	}
	for p := 0; p < d.NumPins(); p++ {
		if got.PinCell[p] != d.PinCell[p] ||
			math.Abs(got.PinOffX[p]-d.PinOffX[p]) > 1e-9 ||
			math.Abs(got.PinOffY[p]-d.PinOffY[p]) > 1e-9 {
			t.Fatalf("pin %d differs", p)
		}
	}
	if len(got.Rows) != len(d.Rows) {
		t.Fatalf("rows differ: %d vs %d", len(got.Rows), len(d.Rows))
	}
	// HPWL identical.
	if a, b := got.HPWL(nil, nil), d.HPWL(nil, nil); math.Abs(a-b) > 1e-6 {
		t.Errorf("HPWL differs: %v vs %v", a, b)
	}
}

func TestWritePlWithOverridePositions(t *testing.T) {
	d := readTiny(t, true)
	x := append([]float64(nil), d.CellX...)
	y := append([]float64(nil), d.CellY...)
	x[0] = 15 // center
	path := filepath.Join(t.TempDir(), "out.pl")
	if err := WritePl(path, d, x, y); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "o1 14 8 : N") { // center 15 - w/2=1 -> lower-left 14
		t.Errorf("pl content:\n%s", s)
	}
	if !strings.Contains(s, "/FIXED") {
		t.Error("fixed suffix missing")
	}
}

func TestReadAuxMissingFile(t *testing.T) {
	if _, err := ReadAux(filepath.Join(t.TempDir(), "nope.aux")); err == nil {
		t.Error("want error for missing aux")
	}
	// Aux referencing missing files.
	dir := t.TempDir()
	aux := filepath.Join(dir, "x.aux")
	if err := os.WriteFile(aux, []byte("RowBasedPlacement : x.nodes x.nets x.pl\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAux(aux); err == nil {
		t.Error("want error for missing referenced files")
	}
}
