// Package bookshelf reads and writes the GSRC Bookshelf placement format
// [22] used by the ISPD 2005 contest benchmarks [19]: .aux (file index),
// .nodes (cells), .nets (connectivity), .pl (positions), .scl (rows).
//
// Conventions honoured: .pl coordinates are LOWER-LEFT corners (converted
// to the netlist package's center convention on the fly); .nets pin
// offsets are measured from the cell center; "terminal" nodes are fixed.
package bookshelf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// Files bundles the readers of one bookshelf design.
type Files struct {
	Nodes io.Reader
	Nets  io.Reader
	Pl    io.Reader
	Scl   io.Reader // optional
}

// ReadAux parses a .aux file and opens the referenced files from the same
// directory. The caller owns the returned design.
func ReadAux(auxPath string) (*netlist.Design, error) {
	data, err := os.ReadFile(auxPath)
	if err != nil {
		return nil, err
	}
	line := strings.TrimSpace(string(data))
	if i := strings.Index(line, ":"); i >= 0 {
		line = line[i+1:]
	}
	dir := filepath.Dir(auxPath)
	var f Files
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	open := func(name string) (io.Reader, error) {
		fh, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		closers = append(closers, fh)
		return bufio.NewReader(fh), nil
	}
	for _, tok := range strings.Fields(line) {
		var err error
		switch filepath.Ext(tok) {
		case ".nodes":
			f.Nodes, err = open(tok)
		case ".nets":
			f.Nets, err = open(tok)
		case ".pl":
			f.Pl, err = open(tok)
		case ".scl":
			f.Scl, err = open(tok)
		}
		if err != nil {
			return nil, err
		}
	}
	name := strings.TrimSuffix(filepath.Base(auxPath), ".aux")
	return Read(name, f)
}

// lineScanner yields non-empty, non-comment, non-header lines.
type lineScanner struct {
	sc   *bufio.Scanner
	line string
	n    int
}

func newScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return &lineScanner{sc: sc}
}

func (s *lineScanner) next() bool {
	for s.sc.Scan() {
		s.n++
		l := strings.TrimSpace(s.sc.Text())
		if l == "" || strings.HasPrefix(l, "#") || strings.HasPrefix(l, "UCLA") {
			continue
		}
		s.line = l
		return true
	}
	return false
}

// finite reports whether every value is a real number — hostile inputs
// (fuzzed or truncated files) can carry NaN/Inf literals that would
// poison the design or trip netlist's builder panics downstream.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// keyVal parses "Key : value" headers; ok is false if the line is not of
// that form.
func keyVal(line string) (key, val string, ok bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

// Read parses a full design from the given readers. The Scl reader may be
// nil; the region is then the bounding box of all cells.
func Read(name string, f Files) (*netlist.Design, error) {
	if f.Nodes == nil || f.Nets == nil || f.Pl == nil {
		return nil, errors.New("bookshelf: nodes, nets and pl readers are required")
	}
	type node struct {
		w, h     float64
		terminal bool
	}
	names := []string{}
	nodes := []node{}
	index := map[string]int{}

	sc := newScanner(f.Nodes)
	for sc.next() {
		if k, _, ok := keyVal(sc.line); ok && (k == "NumNodes" || k == "NumTerminals") {
			continue
		}
		fields := strings.Fields(sc.line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("bookshelf: nodes line %d: %q", sc.n, sc.line)
		}
		w, err1 := strconv.ParseFloat(fields[1], 64)
		h, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || w < 0 || h < 0 || !finite(w, h) {
			return nil, fmt.Errorf("bookshelf: nodes line %d: bad size", sc.n)
		}
		nd := node{w: w, h: h}
		if len(fields) > 3 && strings.EqualFold(fields[3], "terminal") {
			nd.terminal = true
		}
		index[fields[0]] = len(nodes)
		names = append(names, fields[0])
		nodes = append(nodes, nd)
	}

	// Positions (.pl): lower-left corners; /FIXED marks fixed nodes.
	xs := make([]float64, len(nodes))
	ys := make([]float64, len(nodes))
	fixed := make([]bool, len(nodes))
	sc = newScanner(f.Pl)
	for sc.next() {
		fields := strings.Fields(sc.line)
		if len(fields) < 3 {
			continue
		}
		id, ok := index[fields[0]]
		if !ok {
			return nil, fmt.Errorf("bookshelf: pl line %d: unknown node %q", sc.n, fields[0])
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || !finite(x, y) {
			return nil, fmt.Errorf("bookshelf: pl line %d: bad position", sc.n)
		}
		xs[id], ys[id] = x, y
		if strings.Contains(sc.line, "/FIXED") {
			fixed[id] = true
		}
	}

	// Rows (.scl).
	var rows []netlist.Row
	region := geom.Rect{Lx: math.Inf(1), Ly: math.Inf(1), Hx: math.Inf(-1), Hy: math.Inf(-1)}
	if f.Scl != nil {
		sc = newScanner(f.Scl)
		var cur netlist.Row
		var numSites float64
		inRow := false
		for sc.next() {
			switch {
			case strings.HasPrefix(sc.line, "CoreRow"):
				cur = netlist.Row{SiteWidth: 1}
				numSites = 0
				inRow = true
			case strings.HasPrefix(sc.line, "End"):
				if inRow {
					cur.X1 = cur.X0 + numSites*cur.SiteWidth
					rows = append(rows, cur)
					inRow = false
				}
			default:
				if !inRow {
					continue
				}
				// A row body line may hold several "Key : value" pairs
				// (e.g. "SubrowOrigin : 0 NumSites : 100").
				fields := strings.Fields(sc.line)
				for i := 0; i+2 < len(fields); i++ {
					if fields[i+1] != ":" {
						continue
					}
					v, err := strconv.ParseFloat(fields[i+2], 64)
					if err != nil {
						continue
					}
					switch fields[i] {
					case "Coordinate":
						cur.Y = v
					case "Height":
						cur.Height = v
					case "Sitewidth":
						cur.SiteWidth = v
					case "SubrowOrigin":
						cur.X0 = v
					case "NumSites":
						numSites = v
					}
				}
			}
		}
		for _, r := range rows {
			region = region.Union(geom.Rect{Lx: r.X0, Ly: r.Y, Hx: r.X1, Hy: r.Y + r.Height})
		}
	}
	if region.Empty() || math.IsInf(region.Lx, 1) {
		// No rows: bounding box of all placed cells.
		for i := range nodes {
			region = region.Union(geom.Rect{
				Lx: xs[i], Ly: ys[i], Hx: xs[i] + nodes[i].w, Hy: ys[i] + nodes[i].h,
			})
		}
	}
	if region.Empty() || !finite(region.Lx, region.Ly, region.Hx, region.Hy) {
		return nil, errors.New("bookshelf: cannot determine placement region")
	}

	d := netlist.NewDesign(name, region)
	d.Rows = rows
	for i, nd := range nodes {
		kind := netlist.Movable
		if nd.terminal || fixed[i] {
			kind = netlist.Fixed
		}
		// Lower-left -> center.
		d.AddCell(names[i], nd.w, nd.h, xs[i]+nd.w/2, ys[i]+nd.h/2, kind)
	}

	// Nets.
	sc = newScanner(f.Nets)
	var pending int // pins left in the current net
	for sc.next() {
		if k, v, ok := keyVal(sc.line); ok && (k == "NumNets" || k == "NumPins") {
			_ = v
			continue
		}
		if strings.HasPrefix(sc.line, "NetDegree") {
			_, v, _ := keyVal(sc.line)
			fields := strings.Fields(v)
			if len(fields) < 1 {
				return nil, fmt.Errorf("bookshelf: nets line %d: bad NetDegree", sc.n)
			}
			deg, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("bookshelf: nets line %d: %v", sc.n, err)
			}
			netName := fmt.Sprintf("net%d", d.NumNets())
			if len(fields) > 1 {
				netName = fields[1]
			}
			d.AddNet(netName)
			pending = deg
			continue
		}
		if pending <= 0 {
			return nil, fmt.Errorf("bookshelf: nets line %d: pin outside a net", sc.n)
		}
		// "nodename I : xoff yoff" (offsets optional).
		fields := strings.Fields(sc.line)
		id, ok := index[fields[0]]
		if !ok {
			return nil, fmt.Errorf("bookshelf: nets line %d: unknown node %q", sc.n, fields[0])
		}
		var ox, oy float64
		if len(fields) >= 5 && fields[2] == ":" {
			ox, _ = strconv.ParseFloat(fields[3], 64)
			oy, _ = strconv.ParseFloat(fields[4], 64)
		}
		d.AddPin(id, ox, oy)
		pending--
	}

	if err := d.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// Write emits the full design as bookshelf files (nodes, nets, pl, scl,
// aux) into dir with the given base name. Positions written are the
// design's stored centers, converted to lower-left.
func Write(dir, base string, d *netlist.Design) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(ext string, fn func(w *bufio.Writer) error) error {
		fh, err := os.Create(filepath.Join(dir, base+ext))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(fh)
		if err := fn(w); err != nil {
			fh.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}
	if err := write(".nodes", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nodes 1.0")
		terms := 0
		for _, k := range d.CellKind {
			if k == netlist.Fixed {
				terms++
			}
		}
		fmt.Fprintf(w, "NumNodes : %d\n", d.NumCells())
		fmt.Fprintf(w, "NumTerminals : %d\n", terms)
		for c := 0; c < d.NumCells(); c++ {
			if d.CellKind[c] == netlist.Fixed {
				fmt.Fprintf(w, "%s %g %g terminal\n", d.CellName[c], d.CellW[c], d.CellH[c])
			} else {
				fmt.Fprintf(w, "%s %g %g\n", d.CellName[c], d.CellW[c], d.CellH[c])
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(".nets", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nets 1.0")
		fmt.Fprintf(w, "NumNets : %d\n", d.NumNets())
		fmt.Fprintf(w, "NumPins : %d\n", d.NumPins())
		for n := 0; n < d.NumNets(); n++ {
			s, e := d.NetPinStart[n], d.NetPinStart[n+1]
			fmt.Fprintf(w, "NetDegree : %d %s\n", e-s, d.NetName[n])
			for p := s; p < e; p++ {
				fmt.Fprintf(w, "\t%s I : %g %g\n", d.CellName[d.PinCell[p]], d.PinOffX[p], d.PinOffY[p])
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := WritePl(filepath.Join(dir, base+".pl"), d, nil, nil); err != nil {
		return err
	}
	if err := write(".scl", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA scl 1.0")
		fmt.Fprintf(w, "NumRows : %d\n", len(d.Rows))
		for _, r := range d.Rows {
			fmt.Fprintln(w, "CoreRow Horizontal")
			fmt.Fprintf(w, "  Coordinate : %g\n", r.Y)
			fmt.Fprintf(w, "  Height : %g\n", r.Height)
			fmt.Fprintf(w, "  Sitewidth : %g\n", r.SiteWidth)
			fmt.Fprintf(w, "  Sitespacing : %g\n", r.SiteWidth)
			fmt.Fprintf(w, "  SubrowOrigin : %g NumSites : %d\n", r.X0, int((r.X1-r.X0)/r.SiteWidth))
			fmt.Fprintln(w, "End")
		}
		return nil
	}); err != nil {
		return err
	}
	return write(".aux", func(w *bufio.Writer) error {
		fmt.Fprintf(w, "RowBasedPlacement : %s.nodes %s.nets %s.pl %s.scl\n", base, base, base, base)
		return nil
	})
}

// WritePl writes a .pl file with the given center positions (nil means
// the design's stored positions), converted to lower-left corners.
func WritePl(path string, d *netlist.Design, x, y []float64) error {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(fh)
	fmt.Fprintln(w, "UCLA pl 1.0")
	for c := 0; c < d.NumCells(); c++ {
		suffix := ""
		if d.CellKind[c] == netlist.Fixed {
			suffix = " /FIXED"
		}
		fmt.Fprintf(w, "%s %g %g : N%s\n", d.CellName[c], x[c]-d.CellW[c]/2, y[c]-d.CellH[c]/2, suffix)
	}
	if err := w.Flush(); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
