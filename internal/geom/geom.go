// Package geom provides the small geometric vocabulary shared by every
// placement module: points, rectangles, and the uniform bin grid that the
// electrostatic density model is discretized on.
//
// All coordinates are float64 in the database unit of the design (bookshelf
// rows are integer-valued, but global placement moves cells continuously).
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D position.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s in both dimensions.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle described by its lower-left (Lx, Ly)
// and upper-right (Hx, Hy) corners. A Rect with Hx <= Lx or Hy <= Ly is
// considered empty.
type Rect struct {
	Lx, Ly, Hx, Hy float64
}

// NewRect returns the rectangle with lower-left corner (x, y), width w and
// height h.
func NewRect(x, y, w, h float64) Rect { return Rect{x, y, x + w, y + h} }

// W returns the width of r (may be negative for malformed rects).
func (r Rect) W() float64 { return r.Hx - r.Lx }

// H returns the height of r.
func (r Rect) H() float64 { return r.Hy - r.Ly }

// Area returns the area of r, or 0 if r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Hx <= r.Lx || r.Hy <= r.Ly }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.Lx + r.Hx) / 2, (r.Ly + r.Hy) / 2} }

// Contains reports whether p lies inside r (inclusive of the low edges,
// exclusive of the high edges, matching bin-assignment semantics).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lx && p.X < r.Hx && p.Y >= r.Ly && p.Y < r.Hy
}

// ContainsRect reports whether q lies fully inside r (inclusive).
func (r Rect) ContainsRect(q Rect) bool {
	return q.Lx >= r.Lx && q.Hx <= r.Hx && q.Ly >= r.Ly && q.Hy <= r.Hy
}

// Intersect returns the intersection of r and q (possibly empty).
func (r Rect) Intersect(q Rect) Rect {
	return Rect{
		Lx: math.Max(r.Lx, q.Lx),
		Ly: math.Max(r.Ly, q.Ly),
		Hx: math.Min(r.Hx, q.Hx),
		Hy: math.Min(r.Hy, q.Hy),
	}
}

// Overlap returns the overlap area of r and q.
func (r Rect) Overlap(q Rect) float64 { return r.Intersect(q).Area() }

// Union returns the bounding box of r and q. If either is empty the other
// is returned.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	return Rect{
		Lx: math.Min(r.Lx, q.Lx),
		Ly: math.Min(r.Ly, q.Ly),
		Hx: math.Max(r.Hx, q.Hx),
		Hy: math.Max(r.Hy, q.Hy),
	}
}

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.Lx + dx, r.Ly + dy, r.Hx + dx, r.Hy + dy}
}

// ClampPoint returns p clamped into r.
func (r Rect) ClampPoint(p Point) Point {
	return Point{Clamp(p.X, r.Lx, r.Hx), Clamp(p.Y, r.Ly, r.Hy)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g %g,%g]", r.Lx, r.Ly, r.Hx, r.Hy)
}

// Clamp returns v limited to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Grid is a uniform MxN bin grid over a region. The electrostatic system of
// the placer is discretized on a Grid; the router's gcell grid reuses it.
type Grid struct {
	Region Rect
	Nx, Ny int     // bin counts in x and y
	Dx, Dy float64 // bin dimensions
}

// NewGrid uniformly splits region into nx x ny bins.
func NewGrid(region Rect, nx, ny int) Grid {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("geom: invalid grid %dx%d", nx, ny))
	}
	return Grid{
		Region: region,
		Nx:     nx,
		Ny:     ny,
		Dx:     region.W() / float64(nx),
		Dy:     region.H() / float64(ny),
	}
}

// NumBins returns the total bin count Nx*Ny.
func (g Grid) NumBins() int { return g.Nx * g.Ny }

// BinArea returns the area of a single bin.
func (g Grid) BinArea() float64 { return g.Dx * g.Dy }

// BinIndex returns the flat index of the bin containing p, clamping p into
// the region first so out-of-region points map to boundary bins.
func (g Grid) BinIndex(p Point) int {
	ix, iy := g.BinCoords(p)
	return iy*g.Nx + ix
}

// BinCoords returns the (ix, iy) bin coordinates of the bin containing p,
// clamped into the grid.
func (g Grid) BinCoords(p Point) (int, int) {
	ix := int((p.X - g.Region.Lx) / g.Dx)
	iy := int((p.Y - g.Region.Ly) / g.Dy)
	ix = clampInt(ix, 0, g.Nx-1)
	iy = clampInt(iy, 0, g.Ny-1)
	return ix, iy
}

// BinRect returns the rectangle of bin (ix, iy).
func (g Grid) BinRect(ix, iy int) Rect {
	x := g.Region.Lx + float64(ix)*g.Dx
	y := g.Region.Ly + float64(iy)*g.Dy
	return Rect{x, y, x + g.Dx, y + g.Dy}
}

// BinRange returns the half-open ranges [x0,x1) x [y0,y1) of bins that the
// rectangle r touches, clamped into the grid. Callers iterate bins as
// for iy := y0; iy < y1; iy++ { for ix := x0; ix < x1; ix++ { ... } }.
func (g Grid) BinRange(r Rect) (x0, x1, y0, y1 int) {
	if r.Empty() {
		return 0, 0, 0, 0
	}
	x0 = clampInt(int(math.Floor((r.Lx-g.Region.Lx)/g.Dx)), 0, g.Nx-1)
	y0 = clampInt(int(math.Floor((r.Ly-g.Region.Ly)/g.Dy)), 0, g.Ny-1)
	x1 = clampInt(int(math.Ceil((r.Hx-g.Region.Lx)/g.Dx)), 1, g.Nx)
	y1 = clampInt(int(math.Ceil((r.Hy-g.Region.Ly)/g.Dy)), 1, g.Ny)
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	return x0, x1, y0, y1
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
