package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArith(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Manhattan(q); !almostEq(got, 8) {
		t.Errorf("Manhattan = %v", got)
	}
	if got := (Point{0, 0}).Dist(Point{3, 4}); !almostEq(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 3, 4) // [1,2]-[4,6]
	if r.W() != 3 || r.H() != 4 {
		t.Fatalf("W/H = %v/%v", r.W(), r.H())
	}
	if !almostEq(r.Area(), 12) {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Empty() {
		t.Error("should not be empty")
	}
	if c := r.Center(); c != (Point{2.5, 4}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{1, 2}) {
		t.Error("low edge should be inside")
	}
	if r.Contains(Point{4, 6}) {
		t.Error("high corner should be outside")
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []Rect{
		{0, 0, 0, 5},
		{0, 0, 5, 0},
		{2, 2, 1, 3},
	}
	for _, r := range cases {
		if !r.Empty() {
			t.Errorf("%v should be empty", r)
		}
		if r.Area() != 0 {
			t.Errorf("%v area should be 0", r)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !almostEq(a.Overlap(b), 25) {
		t.Errorf("Overlap = %v", a.Overlap(b))
	}
	// Disjoint.
	c := Rect{20, 20, 30, 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if a.Overlap(c) != 0 {
		t.Error("disjoint overlap should be 0")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{5, 5, 6, 7}
	got := a.Union(b)
	want := Rect{0, 0, 6, 7}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	var empty Rect
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Error("union with empty should return the other rect")
	}
}

func TestRectTranslateContains(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	moved := r.Translate(3, 4)
	if moved != (Rect{3, 4, 5, 6}) {
		t.Errorf("Translate = %v", moved)
	}
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(moved) {
		t.Error("outer should contain moved")
	}
	if outer.ContainsRect(Rect{8, 8, 12, 12}) {
		t.Error("should not contain overflowing rect")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
	r := Rect{0, 0, 10, 10}
	if got := r.ClampPoint(Point{-5, 20}); got != (Point{0, 10}) {
		t.Errorf("ClampPoint = %v", got)
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(Rect{0, 0, 100, 50}, 10, 5)
	if g.Dx != 10 || g.Dy != 10 {
		t.Fatalf("Dx/Dy = %v/%v", g.Dx, g.Dy)
	}
	if g.NumBins() != 50 {
		t.Errorf("NumBins = %d", g.NumBins())
	}
	if !almostEq(g.BinArea(), 100) {
		t.Errorf("BinArea = %v", g.BinArea())
	}
	if ix, iy := g.BinCoords(Point{15, 25}); ix != 1 || iy != 2 {
		t.Errorf("BinCoords = %d,%d", ix, iy)
	}
	if idx := g.BinIndex(Point{15, 25}); idx != 2*10+1 {
		t.Errorf("BinIndex = %d", idx)
	}
	// Clamping out-of-region points.
	if ix, iy := g.BinCoords(Point{-1, 999}); ix != 0 || iy != 4 {
		t.Errorf("clamped BinCoords = %d,%d", ix, iy)
	}
	br := g.BinRect(1, 2)
	if br != (Rect{10, 20, 20, 30}) {
		t.Errorf("BinRect = %v", br)
	}
}

func TestGridBinRange(t *testing.T) {
	g := NewGrid(Rect{0, 0, 100, 100}, 10, 10)
	x0, x1, y0, y1 := g.BinRange(Rect{15, 15, 35, 25})
	if x0 != 1 || x1 != 4 || y0 != 1 || y1 != 3 {
		t.Errorf("BinRange = %d..%d, %d..%d", x0, x1, y0, y1)
	}
	// A rect aligned exactly to bin boundaries should not spill over.
	x0, x1, y0, y1 = g.BinRange(Rect{10, 10, 20, 20})
	if x0 != 1 || x1 != 2 || y0 != 1 || y1 != 2 {
		t.Errorf("aligned BinRange = %d..%d, %d..%d", x0, x1, y0, y1)
	}
	// Degenerate rect still yields one bin.
	x0, x1, y0, y1 = g.BinRange(Rect{55, 55, 55, 55})
	if x1-x0 != 0 || y1-y0 != 0 {
		// Empty rect reports empty range.
		t.Errorf("empty rect range = %d..%d, %d..%d", x0, x1, y0, y1)
	}
	// Out-of-region rect clamps into the grid.
	x0, x1, y0, y1 = g.BinRange(Rect{-50, -50, -10, -10})
	if x0 != 0 || x1 != 1 || y0 != 0 || y1 != 1 {
		t.Errorf("clamped BinRange = %d..%d, %d..%d", x0, x1, y0, y1)
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x0 grid")
		}
	}()
	NewGrid(Rect{0, 0, 1, 1}, 0, 0)
}

// Property: overlap is symmetric and bounded by either area.
func TestOverlapProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(math.Mod(ax, 100), math.Mod(ay, 100), math.Abs(math.Mod(aw, 50)), math.Abs(math.Mod(ah, 50)))
		b := NewRect(math.Mod(bx, 100), math.Mod(by, 100), math.Abs(math.Mod(bw, 50)), math.Abs(math.Mod(bh, 50)))
		ov1, ov2 := a.Overlap(b), b.Overlap(a)
		if !almostEq(ov1, ov2) {
			return false
		}
		return ov1 <= a.Area()+1e-9 && ov1 <= b.Area()+1e-9 && ov1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the overlaps of a rect with all bins in its BinRange sum to the
// area of the rect clipped to the region.
func TestBinRangeCoversClippedArea(t *testing.T) {
	g := NewGrid(Rect{0, 0, 64, 64}, 8, 8)
	f := func(x, y, w, h float64) bool {
		r := NewRect(math.Mod(x, 80)-8, math.Mod(y, 80)-8,
			math.Abs(math.Mod(w, 30)), math.Abs(math.Mod(h, 30)))
		clipped := r.Intersect(g.Region)
		x0, x1, y0, y1 := g.BinRange(r)
		var sum float64
		for iy := y0; iy < y1; iy++ {
			for ix := x0; ix < x1; ix++ {
				sum += g.BinRect(ix, iy).Overlap(r)
			}
		}
		return math.Abs(sum-clipped.Area()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGridBinRangeEmptyRect(t *testing.T) {
	g := NewGrid(Rect{0, 0, 10, 10}, 5, 5)
	x0, x1, y0, y1 := g.BinRange(Rect{3, 3, 2, 2}) // malformed => empty
	if x0 != 0 || x1 != 0 || y0 != 0 || y1 != 0 {
		t.Errorf("empty rect should give empty range, got %d..%d %d..%d", x0, x1, y0, y1)
	}
}
