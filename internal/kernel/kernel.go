// Package kernel provides the execution substrate that stands in for the
// GPU in this reproduction. Every heavy placement operator runs through an
// Engine as a named "kernel": the body is executed data-parallel over a
// goroutine worker pool (the CUDA grid), and the Engine charges each launch
// a configurable overhead on a simulated-time clock (the CUDA kernel-launch
// latency the paper's §3.1.3 analysis is about).
//
// Two clocks are kept:
//
//   - Compute time: real wall time spent inside kernel bodies, i.e. the
//     parallel execution time.
//   - Simulated time: compute time plus Launches x LaunchOverhead. This is
//     the quantity that reproduces the paper's per-iteration timing shape:
//     fusing K operators into one kernel removes (K-1) launch overheads by
//     construction, and skipping the autograd engine halves the launch
//     count of small operators.
//
// The Engine can also record a launch trace (used by the Figure 2 operator
// extraction experiment) and supports deferred synchronization points,
// modelling the paper's reordering of sync-needing operators to the end of
// each GP iteration.
package kernel

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultLaunchOverhead is the simulated cost of one kernel launch. 6 us is
// a typical CUDA launch latency on the hardware generation the paper used.
const DefaultLaunchOverhead = 6 * time.Microsecond

// Options configures an Engine.
type Options struct {
	// Workers is the degree of parallelism. 0 means runtime.NumCPU().
	Workers int
	// LaunchOverhead is the simulated per-launch cost added to the
	// simulated clock. Negative means DefaultLaunchOverhead; zero disables
	// the launch-cost model.
	LaunchOverhead time.Duration
	// Trace records the name of every launched kernel, retrievable with
	// Engine.Trace. Intended for tests and the Figure 2 experiment, not
	// for production runs.
	Trace bool
}

// OpStats aggregates per-kernel-name accounting.
type OpStats struct {
	Launches int64
	Compute  time.Duration
}

// Stats is a snapshot of an Engine's accounting.
type Stats struct {
	Launches  int64
	Compute   time.Duration
	Syncs     int64
	PerOp     map[string]OpStats
	Overhead  time.Duration // LaunchOverhead used
	Simulated time.Duration // Compute + Launches*Overhead
}

// String renders a human-readable summary, most expensive ops first.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "launches=%d syncs=%d compute=%v simulated=%v\n",
		s.Launches, s.Syncs, s.Compute, s.Simulated)
	type row struct {
		name string
		st   OpStats
	}
	rows := make([]row, 0, len(s.PerOp))
	for name, st := range s.PerOp {
		rows = append(rows, row{name, st})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].st.Compute > rows[j].st.Compute })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s launches=%-8d compute=%v\n", r.name, r.st.Launches, r.st.Compute)
	}
	return b.String()
}

// Engine executes kernels. It is safe for concurrent use by the recorder
// and evaluator goroutines, but kernels themselves are expected to be
// launched from a single placement loop (as on a single CUDA stream).
type Engine struct {
	workers  int
	overhead time.Duration
	tracing  bool

	mu       sync.Mutex
	launches int64
	compute  time.Duration
	syncs    int64
	perOp    map[string]*OpStats
	trace    []string
	deferred []deferredSync
}

type deferredSync struct {
	name string
	fn   func()
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	ov := opts.LaunchOverhead
	if ov < 0 {
		ov = DefaultLaunchOverhead
	}
	return &Engine{
		workers:  w,
		overhead: ov,
		tracing:  opts.Trace,
		perOp:    make(map[string]*OpStats),
	}
}

// NewDefault returns an Engine with NumCPU workers and the default launch
// overhead.
func NewDefault() *Engine {
	return New(Options{LaunchOverhead: DefaultLaunchOverhead})
}

// Workers returns the engine's degree of parallelism.
func (e *Engine) Workers() int { return e.workers }

// LaunchOverhead returns the simulated per-launch cost.
func (e *Engine) LaunchOverhead() time.Duration { return e.overhead }

// minParallel is the smallest iteration count worth fanning out over the
// worker pool; below it the launch runs on the calling goroutine (still
// counted as one launch — a tiny CUDA kernel still pays its launch cost).
const minParallel = 2048

// Launch runs body over the index range [0, n) as one kernel named name.
// The range is split into contiguous chunks, one per worker. Launch blocks
// until the kernel completes (stream-ordered execution).
func (e *Engine) Launch(name string, n int, body func(start, end int)) {
	start := time.Now()
	if n > 0 {
		if n < minParallel || e.workers == 1 {
			body(0, n)
		} else {
			var wg sync.WaitGroup
			chunk := (n + e.workers - 1) / e.workers
			for w := 0; w < e.workers; w++ {
				lo := w * chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					body(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
	}
	e.account(name, time.Since(start))
}

// LaunchChunks runs body over [0, n) as one kernel, passing each worker its
// chunk index so callers can keep private partial accumulators (the
// paper's atomics-free reduction pattern). Chunk indices are in
// [0, Workers()); with small n only chunk 0 runs. Returns the number of
// chunks used.
func (e *Engine) LaunchChunks(name string, n int, body func(chunk, start, end int)) int {
	start := time.Now()
	used := 0
	if n > 0 {
		if n < minParallel || e.workers == 1 {
			body(0, 0, n)
			used = 1
		} else {
			var wg sync.WaitGroup
			chunk := (n + e.workers - 1) / e.workers
			for w := 0; w < e.workers; w++ {
				lo := w * chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				used++
				go func(w, lo, hi int) {
					defer wg.Done()
					body(w, lo, hi)
				}(w, lo, hi)
			}
			wg.Wait()
		}
	}
	e.account(name, time.Since(start))
	return used
}

// LaunchSerial runs body as one kernel on the calling goroutine. Use it for
// operators whose body is inherently sequential (e.g. a scalar update); it
// still costs one launch.
func (e *Engine) LaunchSerial(name string, body func()) {
	start := time.Now()
	body()
	e.account(name, time.Since(start))
}

// ParallelReduce runs body over [0, n) with one private accumulator per
// worker and folds the partials with combine, all as a single kernel. The
// body receives its worker-local partial index so callers can maintain
// private state (the paper's atomics-free density accumulation).
func (e *Engine) ParallelReduce(name string, n int, init float64,
	body func(start, end int) float64, combine func(a, b float64) float64) float64 {
	start := time.Now()
	result := init
	if n > 0 {
		if n < minParallel || e.workers == 1 {
			result = combine(result, body(0, n))
		} else {
			partials := make([]float64, e.workers)
			used := 0
			var wg sync.WaitGroup
			chunk := (n + e.workers - 1) / e.workers
			for w := 0; w < e.workers; w++ {
				lo := w * chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				used++
				go func(w, lo, hi int) {
					defer wg.Done()
					partials[w] = body(lo, hi)
				}(w, lo, hi)
			}
			wg.Wait()
			for w := 0; w < used; w++ {
				result = combine(result, partials[w])
			}
		}
	}
	e.account(name, time.Since(start))
	return result
}

// DeferSync enqueues an operation that requires host-device
// synchronization (e.g. copying a scalar metric back to the host). The
// paper reorders such operators to the end of each GP iteration; Flush
// executes them in FIFO order.
func (e *Engine) DeferSync(name string, fn func()) {
	e.mu.Lock()
	e.deferred = append(e.deferred, deferredSync{name, fn})
	e.mu.Unlock()
}

// Flush runs all deferred synchronization operations (one sync point for
// the whole batch) and clears the queue.
func (e *Engine) Flush() {
	e.mu.Lock()
	pending := e.deferred
	e.deferred = nil
	e.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	for _, d := range pending {
		start := time.Now()
		d.fn()
		e.account(d.name, time.Since(start))
	}
	e.mu.Lock()
	e.syncs++
	e.mu.Unlock()
}

// Sync records an immediate host-device synchronization point (the
// un-reordered path used by the baseline).
func (e *Engine) Sync() {
	e.mu.Lock()
	e.syncs++
	e.mu.Unlock()
}

func (e *Engine) account(name string, d time.Duration) {
	e.mu.Lock()
	e.launches++
	e.compute += d
	st := e.perOp[name]
	if st == nil {
		st = &OpStats{}
		e.perOp[name] = st
	}
	st.Launches++
	st.Compute += d
	if e.tracing {
		e.trace = append(e.trace, name)
	}
	e.mu.Unlock()
}

// Stats returns a snapshot of the accounting since the last Reset.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	per := make(map[string]OpStats, len(e.perOp))
	for k, v := range e.perOp {
		per[k] = *v
	}
	return Stats{
		Launches:  e.launches,
		Compute:   e.compute,
		Syncs:     e.syncs,
		PerOp:     per,
		Overhead:  e.overhead,
		Simulated: e.compute + time.Duration(e.launches)*e.overhead,
	}
}

// Trace returns a copy of the launch trace (empty unless Options.Trace).
func (e *Engine) Trace() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.trace))
	copy(out, e.trace)
	return out
}

// Reset clears all accounting and the trace; deferred syncs are discarded.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.launches, e.compute, e.syncs = 0, 0, 0
	e.perOp = make(map[string]*OpStats)
	e.trace = nil
	e.deferred = nil
	e.mu.Unlock()
}
