// Package kernel provides the execution substrate that stands in for the
// GPU in this reproduction. Every heavy placement operator runs through an
// Engine as a named "kernel": the body is executed data-parallel over a
// persistent worker pool (the CUDA grid on a persistent stream), and the
// Engine charges each launch a configurable overhead on a simulated-time
// clock (the CUDA kernel-launch latency the paper's §3.1.3 analysis is
// about).
//
// Two clocks are kept:
//
//   - Compute time: real wall time spent inside kernel bodies, i.e. the
//     parallel execution time.
//   - Simulated time: compute time plus Launches x LaunchOverhead. This is
//     the quantity that reproduces the paper's per-iteration timing shape:
//     fusing K operators into one kernel removes (K-1) launch overheads by
//     construction, and skipping the autograd engine halves the launch
//     count of small operators.
//
// The execution substrate is device-like in two further ways:
//
//   - Workers are long-lived goroutines created on first parallel dispatch
//     and torn down by Close — launches enqueue chunks on a channel instead
//     of spawning goroutines, so dispatch cost does not scale with launch
//     count (the paper's "persistent stream" regime).
//   - The Engine owns a buffer Arena (the "device memory allocator"):
//     operators check scratch out with Alloc/Free instead of calling make()
//     per iteration, and the Stats report arena hits/misses/peak plus
//     per-op checkout counts.
//
// The Engine can also record a launch trace (used by the Figure 2 operator
// extraction experiment) and supports deferred synchronization points,
// modelling the paper's reordering of sync-needing operators to the end of
// each GP iteration.
package kernel

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"xplace/internal/obs"
)

// DefaultLaunchOverhead is the simulated cost of one kernel launch. 6 us is
// a typical CUDA launch latency on the hardware generation the paper used.
const DefaultLaunchOverhead = 6 * time.Microsecond

// Options configures an Engine.
type Options struct {
	// Workers is the degree of parallelism. 0 means runtime.NumCPU().
	Workers int
	// LaunchOverhead is the simulated per-launch cost added to the
	// simulated clock. Negative means DefaultLaunchOverhead; zero disables
	// the launch-cost model.
	LaunchOverhead time.Duration
	// Trace records the name of every launched kernel, retrievable with
	// Engine.Trace. Intended for tests and the Figure 2 experiment, not
	// for production runs.
	Trace bool
}

// OpStats aggregates per-kernel-name accounting.
type OpStats struct {
	Launches int64
	Compute  time.Duration
	// Allocs counts arena checkouts attributed to this op (checkouts made
	// while the op was the engine's current launch).
	Allocs int64
}

// HostOp is the pseudo-op name arena checkouts are attributed to when they
// happen outside any kernel launch.
const HostOp = "(host)"

// Stats is a snapshot of an Engine's accounting.
type Stats struct {
	Launches  int64
	Compute   time.Duration
	Syncs     int64
	PerOp     map[string]OpStats
	Overhead  time.Duration // LaunchOverhead used
	Simulated time.Duration // Compute + Launches*Overhead
	Arena     ArenaStats    // buffer-arena accounting
}

// String renders a human-readable summary, most expensive ops first.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "launches=%d syncs=%d compute=%v simulated=%v\n",
		s.Launches, s.Syncs, s.Compute, s.Simulated)
	fmt.Fprintf(&b, "%s\n", s.Arena)
	type row struct {
		name string
		st   OpStats
	}
	rows := make([]row, 0, len(s.PerOp))
	for name, st := range s.PerOp {
		rows = append(rows, row{name, st})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].st.Compute > rows[j].st.Compute })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s launches=%-8d allocs=%-6d compute=%v\n",
			r.name, r.st.Launches, r.st.Allocs, r.st.Compute)
	}
	return b.String()
}

// task is one chunk of a kernel launch enqueued on the worker pool.
// Exactly one of body/bodyChunk/bodyReduce/bodies is set.
type task struct {
	body       func(start, end int)
	bodyChunk  func(chunk, start, end int)
	bodyReduce func(start, end int) float64
	bodies     []func(start, end int) // fused stages, run in order per chunk
	out        *float64               // bodyReduce destination
	chunk      int
	lo, hi     int
	wg         *sync.WaitGroup
}

// pool is the persistent worker set: long-lived goroutines draining a task
// channel. Created lazily on the first parallel dispatch, torn down by
// Engine.Close (or the engine finalizer).
type pool struct {
	tasks chan task
	done  sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{tasks: make(chan task, workers)}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *pool) run() {
	defer p.done.Done()
	for t := range p.tasks {
		switch {
		case t.body != nil:
			t.body(t.lo, t.hi)
		case t.bodyChunk != nil:
			t.bodyChunk(t.chunk, t.lo, t.hi)
		case t.bodyReduce != nil:
			*t.out = t.bodyReduce(t.lo, t.hi)
		default:
			for _, b := range t.bodies {
				b(t.lo, t.hi)
			}
		}
		t.wg.Done()
	}
}

func (p *pool) close() {
	close(p.tasks)
	p.done.Wait()
}

// wgPool recycles the per-launch WaitGroups: &wg stored in a task would
// otherwise escape and heap-allocate on every pooled launch.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// ComputeBackend identifies the element-type / kernel-body provider an
// Engine is driven with. The concrete implementations (the float64
// reference backend and the float32 fast path) live in internal/backend;
// the kernel layer only carries the handle so consumers sharing an engine
// agree on a default element type.
type ComputeBackend interface {
	// Name is the registry name ("float64", "float32").
	Name() string
	// ElemBytes is the width of one element of the backend's type.
	ElemBytes() int
}

// Engine executes kernels. It is safe for concurrent use by the recorder
// and evaluator goroutines, but kernels themselves are expected to be
// launched from a single placement loop (as on a single CUDA stream);
// kernel bodies must not launch kernels of their own.
type Engine struct {
	workers  int
	overhead time.Duration
	tracing  bool
	arena    Arena
	backend  ComputeBackend // default element-type provider; nil = reference

	poolMu   sync.Mutex
	pool     *pool
	closed   bool
	inflight sync.WaitGroup // launches holding a pool reference (getPool/putPool)

	mu       sync.Mutex
	launches int64
	compute  time.Duration
	syncs    int64
	perOp    map[string]*OpStats
	curOp    string // op name arena checkouts are attributed to
	trace    []string
	tracer   *obs.Tracer // span tracer; nil when tracing is off

	// defq is the engine's built-in deferred-sync queue, backing the
	// DeferSync/Flush convenience methods. Concurrent placement loops
	// sharing one engine must each own a private queue (NewSyncQueue)
	// instead, so one loop's flush never executes another loop's deferred
	// operations.
	defq SyncQueue
}

type deferredSync struct {
	name string
	fn   func()
}

// SyncQueue is one caller's stream of deferred host-device synchronization
// operations (the §3.1.3 sync reordering). The engine-level DeferSync/Flush
// pair operates on a single shared queue, which is fine for one placement
// loop per engine; when several loops share an engine, each must flush only
// its own deferrals — a shared queue would hand loop A's record closure to
// loop B's flush, racing on A's staged state. Obtain a private queue with
// Engine.NewSyncQueue.
type SyncQueue struct {
	e        *Engine
	mu       sync.Mutex
	deferred []deferredSync
	spare    []deferredSync // recycled backing array for deferred
}

// NewSyncQueue returns a private deferred-sync queue on this engine.
func (e *Engine) NewSyncQueue() *SyncQueue { return &SyncQueue{e: e} }

// Defer enqueues a sync-needing operation on this queue.
func (q *SyncQueue) Defer(name string, fn func()) {
	q.mu.Lock()
	q.deferred = append(q.deferred, deferredSync{name, fn})
	q.mu.Unlock()
}

// Flush runs this queue's deferred operations in FIFO order as one sync
// point and clears the queue. The backing array is recycled, so the
// defer/flush cycle is allocation-free in steady state. Flushing an empty
// queue is a no-op (no sync is charged).
func (q *SyncQueue) Flush() {
	q.mu.Lock()
	if len(q.deferred) == 0 {
		q.mu.Unlock()
		return
	}
	pending := q.deferred
	q.deferred = q.spare[:0] // double-buffer: reuse the previous flush's array
	q.mu.Unlock()
	for _, d := range pending {
		start := time.Now()
		q.e.begin(d.name)
		d.fn()
		q.e.account(d.name, start, time.Since(start))
	}
	q.mu.Lock()
	q.spare = pending[:0]
	q.mu.Unlock()
	q.e.Sync()
}

// reset discards pending deferrals and the recycled backing arrays.
func (q *SyncQueue) reset() {
	q.mu.Lock()
	q.deferred, q.spare = nil, nil
	q.mu.Unlock()
}

// New returns an Engine with the given options. Workers are not spawned
// until the first launch large enough to go parallel; call Close to tear
// them down (a finalizer closes leaked engines' pools on GC).
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	ov := opts.LaunchOverhead
	if ov < 0 {
		ov = DefaultLaunchOverhead
	}
	e := &Engine{
		workers:  w,
		overhead: ov,
		tracing:  opts.Trace,
		perOp:    make(map[string]*OpStats),
	}
	e.defq.e = e
	runtime.SetFinalizer(e, (*Engine).Close)
	return e
}

// NewDefault returns an Engine with NumCPU workers and the default launch
// overhead.
func NewDefault() *Engine {
	return New(Options{LaunchOverhead: DefaultLaunchOverhead})
}

// Workers returns the engine's degree of parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetBackend records the engine's default compute backend (nil restores
// the reference/float64 default). Consumers that are not given an explicit
// backend inherit this one, so a Session configured with WithBackend
// propagates its choice to every run sharing the engine.
func (e *Engine) SetBackend(b ComputeBackend) {
	e.mu.Lock()
	e.backend = b
	e.mu.Unlock()
}

// Backend returns the engine's default compute backend (nil when none was
// set; callers treat nil as the reference backend).
func (e *Engine) Backend() ComputeBackend {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backend
}

// LaunchOverhead returns the simulated per-launch cost.
func (e *Engine) LaunchOverhead() time.Duration { return e.overhead }

// Closed reports whether Close has run: the worker pool is gone and any
// further launches execute serially on the calling goroutine. Used by
// engine-ownership tests (a Session closes only engines it created).
func (e *Engine) Closed() bool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	return e.closed
}

// getPool returns the worker pool, spawning it on first use, and registers
// the calling launch as in-flight; the caller must pair a non-nil return
// with putPool once it has finished enqueuing and waiting. It returns nil
// when the engine is closed: launches then fall back to serial execution on
// the calling goroutine.
func (e *Engine) getPool() *pool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.closed {
		return nil
	}
	if e.pool == nil {
		e.pool = newPool(e.workers)
	}
	// Registered under poolMu while closed is still false, so Close (which
	// flips closed under the same lock before waiting) either sees this
	// launch in the count or the launch sees closed and goes serial — the
	// task channel can never be closed mid-send.
	e.inflight.Add(1)
	return e.pool
}

// putPool releases the in-flight registration taken by a non-nil getPool.
func (e *Engine) putPool() { e.inflight.Done() }

// Close tears down the worker pool and drops the arena's pooled buffers.
// It first waits for in-flight launches to finish enqueuing, so a Launch
// racing with Close can never send on the closed task channel. After Close
// the engine remains usable: launches execute serially on the calling
// goroutine (and are still accounted). Close is idempotent.
func (e *Engine) Close() {
	e.poolMu.Lock()
	p := e.pool
	e.pool = nil
	e.closed = true
	e.poolMu.Unlock()
	e.inflight.Wait()
	if p != nil {
		p.close()
	}
	e.arena.release()
}

// minParallel is the smallest iteration count worth fanning out over the
// worker pool; below it the launch runs on the calling goroutine (still
// counted as one launch — a tiny CUDA kernel still pays its launch cost).
const minParallel = 2048

// reduceStride is the spacing, in float64 elements, between per-worker
// partial slots in ParallelReduce: 8 float64 = 64 bytes = one cache line,
// so concurrent workers never write the same line.
const reduceStride = 8

// chunkBounds returns the [lo, hi) range of chunk w when n items are split
// over e.workers contiguous chunks; ok is false past the last chunk.
func (e *Engine) chunkBounds(w, n int) (lo, hi int, ok bool) {
	chunk := (n + e.workers - 1) / e.workers
	lo = w * chunk
	if lo >= n {
		return 0, 0, false
	}
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi, true
}

// Launch runs body over the index range [0, n) as one kernel named name.
// The range is split into contiguous chunks, one per worker, executed by
// the persistent pool. Launch blocks until the kernel completes
// (stream-ordered execution).
func (e *Engine) Launch(name string, n int, body func(start, end int)) {
	start := time.Now()
	e.begin(name)
	if n > 0 {
		p := (*pool)(nil)
		if n >= minParallel && e.workers > 1 {
			p = e.getPool()
		}
		if p == nil {
			body(0, n)
		} else {
			wg := wgPool.Get().(*sync.WaitGroup)
			for w := 0; w < e.workers; w++ {
				lo, hi, ok := e.chunkBounds(w, n)
				if !ok {
					break
				}
				wg.Add(1)
				p.tasks <- task{body: body, lo: lo, hi: hi, wg: wg}
			}
			wg.Wait()
			wgPool.Put(wg)
			e.putPool()
		}
	}
	e.account(name, start, time.Since(start))
}

// Fused runs several bodies over [0, n) as ONE accounted kernel launch:
// each chunk executes every body in order before the next chunk's work is
// considered complete, so fusing K elementwise stages saves (K-1) launch
// overheads by construction (§3.1.1/§3.1.3). Bodies must be elementwise
// independent across stages: body k may read outputs of body j < k only at
// indices inside its own [start, end) chunk.
func (e *Engine) Fused(name string, n int, bodies ...func(start, end int)) {
	start := time.Now()
	e.begin(name)
	if n > 0 && len(bodies) > 0 {
		p := (*pool)(nil)
		if n >= minParallel && e.workers > 1 {
			p = e.getPool()
		}
		if p == nil {
			for _, b := range bodies {
				b(0, n)
			}
		} else {
			wg := wgPool.Get().(*sync.WaitGroup)
			for w := 0; w < e.workers; w++ {
				lo, hi, ok := e.chunkBounds(w, n)
				if !ok {
					break
				}
				wg.Add(1)
				p.tasks <- task{bodies: bodies, lo: lo, hi: hi, wg: wg}
			}
			wg.Wait()
			wgPool.Put(wg)
			e.putPool()
		}
	}
	e.account(name, start, time.Since(start))
}

// LaunchChunks runs body over [0, n) as one kernel, passing each worker its
// chunk index so callers can keep private partial accumulators (the
// paper's atomics-free reduction pattern). Chunk indices are in
// [0, Workers()); with small n only chunk 0 runs. Returns the number of
// chunks used.
func (e *Engine) LaunchChunks(name string, n int, body func(chunk, start, end int)) int {
	start := time.Now()
	e.begin(name)
	used := 0
	if n > 0 {
		p := (*pool)(nil)
		if n >= minParallel && e.workers > 1 {
			p = e.getPool()
		}
		if p == nil {
			body(0, 0, n)
			used = 1
		} else {
			wg := wgPool.Get().(*sync.WaitGroup)
			for w := 0; w < e.workers; w++ {
				lo, hi, ok := e.chunkBounds(w, n)
				if !ok {
					break
				}
				wg.Add(1)
				used++
				p.tasks <- task{bodyChunk: body, chunk: w, lo: lo, hi: hi, wg: wg}
			}
			wg.Wait()
			wgPool.Put(wg)
			e.putPool()
		}
	}
	e.account(name, start, time.Since(start))
	return used
}

// LaunchSerial runs body as one kernel on the calling goroutine. Use it for
// operators whose body is inherently sequential (e.g. a scalar update); it
// still costs one launch.
func (e *Engine) LaunchSerial(name string, body func()) {
	start := time.Now()
	e.begin(name)
	body()
	e.account(name, start, time.Since(start))
}

// ParallelReduce runs body over [0, n) with one private accumulator per
// worker and folds the partials with combine, all as a single kernel. The
// partial buffer is checked out of the engine arena, so steady-state
// reductions are allocation-free.
func (e *Engine) ParallelReduce(name string, n int, init float64,
	body func(start, end int) float64, combine func(a, b float64) float64) float64 {
	start := time.Now()
	e.begin(name)
	result := init
	if n > 0 {
		p := (*pool)(nil)
		if n >= minParallel && e.workers > 1 {
			p = e.getPool()
		}
		if p == nil {
			result = combine(result, body(0, n))
		} else {
			// Partial slots are padded to cache-line stride: adjacent
			// float64 slots written by different workers would share a
			// cache line and ping-pong it between cores (false sharing;
			// see BenchmarkReducePartials* in pool_test.go for the delta).
			partials := e.Alloc(e.workers * reduceStride)
			used := 0
			wg := wgPool.Get().(*sync.WaitGroup)
			for w := 0; w < e.workers; w++ {
				lo, hi, ok := e.chunkBounds(w, n)
				if !ok {
					break
				}
				wg.Add(1)
				used++
				p.tasks <- task{bodyReduce: body, out: &partials[w*reduceStride], lo: lo, hi: hi, wg: wg}
			}
			wg.Wait()
			wgPool.Put(wg)
			e.putPool()
			for w := 0; w < used; w++ {
				result = combine(result, partials[w*reduceStride])
			}
			e.Free(partials)
		}
	}
	e.account(name, start, time.Since(start))
	return result
}

// Alloc checks a zeroed []float64 of length n out of the engine arena (the
// "device memory" of the substitution map). Return it with Free when done;
// after warm-up, checkouts are served from free lists without touching the
// Go heap. The checkout is attributed to the currently launching op (or
// HostOp between launches) in the per-op stats.
func (e *Engine) Alloc(n int) []float64 {
	e.noteAlloc()
	return e.arena.Alloc(n)
}

// Free returns a buffer obtained from Alloc to the arena.
func (e *Engine) Free(buf []float64) { e.arena.Free(buf) }

// AllocComplex checks a zeroed []complex128 of length n out of the arena.
func (e *Engine) AllocComplex(n int) []complex128 {
	e.noteAlloc()
	return e.arena.AllocComplex(n)
}

// FreeComplex returns a buffer obtained from AllocComplex to the arena.
func (e *Engine) FreeComplex(buf []complex128) { e.arena.FreeComplex(buf) }

// Alloc32 checks a zeroed []float32 of length n out of the arena (the
// float32 backend's element type).
func (e *Engine) Alloc32(n int) []float32 {
	e.noteAlloc()
	return e.arena.Alloc32(n)
}

// Free32 returns a buffer obtained from Alloc32 to the arena.
func (e *Engine) Free32(buf []float32) { e.arena.Free32(buf) }

// AllocComplex64 checks a zeroed []complex64 of length n out of the arena.
func (e *Engine) AllocComplex64(n int) []complex64 {
	e.noteAlloc()
	return e.arena.AllocComplex64(n)
}

// FreeComplex64 returns a buffer obtained from AllocComplex64 to the arena.
func (e *Engine) FreeComplex64(buf []complex64) { e.arena.FreeComplex64(buf) }

// ArenaStats returns a snapshot of the buffer-arena accounting.
func (e *Engine) ArenaStats() ArenaStats { return e.arena.Stats() }

func (e *Engine) noteAlloc() {
	e.mu.Lock()
	name := e.curOp
	if name == "" {
		name = HostOp
	}
	st := e.perOp[name]
	if st == nil {
		st = &OpStats{}
		e.perOp[name] = st
	}
	st.Allocs++
	e.mu.Unlock()
}

// begin marks name as the current op for arena-checkout attribution.
func (e *Engine) begin(name string) {
	e.mu.Lock()
	e.curOp = name
	e.mu.Unlock()
}

// DeferSync enqueues an operation that requires host-device
// synchronization (e.g. copying a scalar metric back to the host) on the
// engine's default queue. The paper reorders such operators to the end of
// each GP iteration; Flush executes them in FIFO order. Callers sharing
// the engine with other loops should use a private queue (NewSyncQueue).
func (e *Engine) DeferSync(name string, fn func()) { e.defq.Defer(name, fn) }

// Flush runs the default queue's deferred synchronization operations (one
// sync point for the whole batch) and clears the queue. The queue's backing
// array is recycled, so the defer/flush cycle is allocation-free in steady
// state.
func (e *Engine) Flush() { e.defq.Flush() }

// Sync records an immediate host-device synchronization point (the
// un-reordered path used by the baseline).
func (e *Engine) Sync() {
	e.mu.Lock()
	e.syncs++
	e.mu.Unlock()
}

// SetTracer attaches (or, with nil, detaches) a span tracer: every
// subsequent launch is recorded with its wall start/duration and its
// position on the simulated clock. The engine does not own the tracer —
// callers attach one per traced window (e.g. one per serve job) and
// export it themselves.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

func (e *Engine) account(name string, start time.Time, d time.Duration) {
	e.mu.Lock()
	// The launch's position on the simulated clock is the clock value
	// before this launch's own cost is added.
	simTS := e.compute + time.Duration(e.launches)*e.overhead
	e.launches++
	e.compute += d
	e.curOp = ""
	st := e.perOp[name]
	if st == nil {
		st = &OpStats{}
		e.perOp[name] = st
	}
	st.Launches++
	st.Compute += d
	if e.tracing {
		e.trace = append(e.trace, name)
	}
	tr := e.tracer
	e.mu.Unlock()
	tr.Kernel(name, start, d, simTS, d+e.overhead)
}

// SimulatedTime returns the simulated clock (compute plus launch cost)
// without snapshotting the per-op map — an allocation-free alternative to
// Stats().Simulated for per-iteration bookkeeping.
func (e *Engine) SimulatedTime() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compute + time.Duration(e.launches)*e.overhead
}

// Stats returns a snapshot of the accounting since the last Reset.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	per := make(map[string]OpStats, len(e.perOp))
	for k, v := range e.perOp {
		per[k] = *v
	}
	s := Stats{
		Launches:  e.launches,
		Compute:   e.compute,
		Syncs:     e.syncs,
		PerOp:     per,
		Overhead:  e.overhead,
		Simulated: e.compute + time.Duration(e.launches)*e.overhead,
	}
	e.mu.Unlock()
	s.Arena = e.arena.Stats()
	return s
}

// Trace returns a copy of the launch trace (empty unless Options.Trace).
func (e *Engine) Trace() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.trace))
	copy(out, e.trace)
	return out
}

// Reset clears all accounting and the trace; deferred syncs are discarded
// and the arena's flow counters are zeroed (pooled buffers are kept warm).
// The worker pool is untouched.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.launches, e.compute, e.syncs = 0, 0, 0
	e.perOp = make(map[string]*OpStats)
	e.curOp = ""
	e.trace = nil
	e.mu.Unlock()
	e.defq.reset()
	e.arena.resetCounters()
}
