package kernel

import (
	"fmt"
	"math/bits"
	"sync"
)

// Arena is a size-class pooling allocator for kernel scratch buffers — the
// "device memory allocator" of the substitution map (DESIGN.md §2). Hot
// operators check buffers out with Alloc/AllocComplex and return them with
// Free/FreeComplex instead of calling make() inside the per-iteration loop,
// so steady-state GP iterations perform no Go heap allocations: after
// warm-up every checkout is served from a free list (a "hit").
//
// Buffers are bucketed by power-of-two capacity. Alloc returns a zeroed
// slice of exactly the requested length; Free buckets by capacity, so
// foreign slices (not obtained from the arena) may be donated as long as
// their capacity is meaningful. An Arena is safe for concurrent use.
type Arena struct {
	mu sync.Mutex
	f  [arenaClasses][][]float64
	c  [arenaClasses][][]complex128
	st ArenaStats
	// limit overrides the pooled-class bound when non-zero (tests lower it
	// to exercise the unpooled path without gigabyte allocations).
	limit int
}

// arenaClasses bounds the largest pooled class at 2^(arenaClasses-1)
// elements (512M float64 = 4 GiB); larger requests are never pooled.
const arenaClasses = 30

// poolLimit returns the effective pooled-class bound.
func (a *Arena) poolLimit() int {
	if a.limit != 0 {
		return a.limit
	}
	return arenaClasses
}

// ArenaStats is a snapshot of an Arena's accounting. Byte counts are in
// class-capacity units (the pooled power-of-two size, 8 bytes per float64
// and 16 per complex128).
type ArenaStats struct {
	Hits   int64 // checkouts served from a free list
	Misses int64 // checkouts that had to allocate fresh memory
	Frees  int64 // buffers returned
	InUse  int64 // bytes currently checked out
	Pooled int64 // bytes parked in free lists
	Peak   int64 // high-water mark of InUse
}

// Allocs returns the total number of checkouts (hits + misses).
func (s ArenaStats) Allocs() int64 { return s.Hits + s.Misses }

// String renders a one-line summary.
func (s ArenaStats) String() string {
	return fmt.Sprintf("arena: allocs=%d hits=%d misses=%d frees=%d in-use=%dB pooled=%dB peak=%dB",
		s.Allocs(), s.Hits, s.Misses, s.Frees, s.InUse, s.Pooled, s.Peak)
}

// sizeClass returns the free-list index for a request of n elements:
// the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// capClass returns the free-list index a buffer of capacity c belongs to:
// the largest k with 1<<k <= c, so a parked buffer always satisfies any
// request routed to its class.
func capClass(c int) int {
	if c <= 1 {
		return 0
	}
	return bits.Len(uint(c)) - 1
}

// Alloc checks out a zeroed []float64 of length n. Requests above the
// largest pooled class are allocated at exact capacity (no power-of-two
// rounding, which would waste up to 2x memory on huge buffers and overflow
// 1<<cls near the int limit) and accounted at their actual byte size.
func (a *Arena) Alloc(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("kernel: Arena.Alloc(%d)", n))
	}
	cls := sizeClass(n)
	a.mu.Lock()
	if cls >= a.poolLimit() {
		a.st.Misses++
		a.st.InUse += 8 * int64(n)
		if a.st.InUse > a.st.Peak {
			a.st.Peak = a.st.InUse
		}
		a.mu.Unlock()
		return make([]float64, n)
	}
	var buf []float64
	if len(a.f[cls]) > 0 {
		last := len(a.f[cls]) - 1
		buf = a.f[cls][last]
		a.f[cls][last] = nil
		a.f[cls] = a.f[cls][:last]
		a.st.Hits++
		a.st.Pooled -= 8 << cls
	} else {
		a.st.Misses++
	}
	a.st.InUse += 8 << cls
	if a.st.InUse > a.st.Peak {
		a.st.Peak = a.st.InUse
	}
	a.mu.Unlock()
	if buf == nil {
		return make([]float64, n, 1<<cls)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Free returns a float64 buffer to the arena. Freeing nil is a no-op.
// Unpooled-size buffers are accounted at actual capacity; InUse never goes
// negative even when a foreign (never-checked-out) slice is donated.
func (a *Arena) Free(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	cls := capClass(cap(buf))
	a.mu.Lock()
	a.st.Frees++
	if cls >= a.poolLimit() {
		a.st.InUse -= 8 * int64(cap(buf))
	} else {
		a.st.InUse -= 8 << cls
		a.f[cls] = append(a.f[cls], buf[:0])
		a.st.Pooled += 8 << cls
	}
	if a.st.InUse < 0 {
		a.st.InUse = 0
	}
	a.mu.Unlock()
}

// AllocComplex checks out a zeroed []complex128 of length n. Like Alloc,
// unpooled-size requests get exact capacity and actual-byte accounting.
func (a *Arena) AllocComplex(n int) []complex128 {
	if n < 0 {
		panic(fmt.Sprintf("kernel: Arena.AllocComplex(%d)", n))
	}
	cls := sizeClass(n)
	a.mu.Lock()
	if cls >= a.poolLimit() {
		a.st.Misses++
		a.st.InUse += 16 * int64(n)
		if a.st.InUse > a.st.Peak {
			a.st.Peak = a.st.InUse
		}
		a.mu.Unlock()
		return make([]complex128, n)
	}
	var buf []complex128
	if len(a.c[cls]) > 0 {
		last := len(a.c[cls]) - 1
		buf = a.c[cls][last]
		a.c[cls][last] = nil
		a.c[cls] = a.c[cls][:last]
		a.st.Hits++
		a.st.Pooled -= 16 << cls
	} else {
		a.st.Misses++
	}
	a.st.InUse += 16 << cls
	if a.st.InUse > a.st.Peak {
		a.st.Peak = a.st.InUse
	}
	a.mu.Unlock()
	if buf == nil {
		return make([]complex128, n, 1<<cls)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// FreeComplex returns a complex128 buffer to the arena.
func (a *Arena) FreeComplex(buf []complex128) {
	if cap(buf) == 0 {
		return
	}
	cls := capClass(cap(buf))
	a.mu.Lock()
	a.st.Frees++
	if cls >= a.poolLimit() {
		a.st.InUse -= 16 * int64(cap(buf))
	} else {
		a.st.InUse -= 16 << cls
		a.c[cls] = append(a.c[cls], buf[:0])
		a.st.Pooled += 16 << cls
	}
	if a.st.InUse < 0 {
		a.st.InUse = 0
	}
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena accounting.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// resetCounters clears the flow counters, keeping pooled buffers and the
// in-use/pooled byte tracking (checked-out buffers remain checked out).
func (a *Arena) resetCounters() {
	a.mu.Lock()
	a.st.Hits, a.st.Misses, a.st.Frees = 0, 0, 0
	a.st.Peak = a.st.InUse
	a.mu.Unlock()
}

// release drops every pooled buffer (used by Engine.Close).
func (a *Arena) release() {
	a.mu.Lock()
	for i := range a.f {
		a.f[i] = nil
	}
	for i := range a.c {
		a.c[i] = nil
	}
	a.st.Pooled = 0
	a.mu.Unlock()
}
