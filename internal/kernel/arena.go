package kernel

import (
	"fmt"
	"math/bits"
	"sync"
)

// Arena is a size-class pooling allocator for kernel scratch buffers — the
// "device memory allocator" of the substitution map (DESIGN.md §2). Hot
// operators check buffers out with Alloc/AllocComplex (and the float32 /
// complex64 variants the reduced-precision backend uses) and return them
// with the matching Free instead of calling make() inside the per-iteration
// loop, so steady-state GP iterations perform no Go heap allocations: after
// warm-up every checkout is served from a free list (a "hit").
//
// Buffers are bucketed by power-of-two capacity, with one free-list family
// per element type; byte accounting is element-size-aware (4 bytes per
// float32, 8 per float64 or complex64, 16 per complex128), so InUse/Pooled/
// Peak stay exact under mixed-precision workloads. Alloc returns a zeroed
// slice of exactly the requested length; Free buckets by capacity, so
// foreign slices (not obtained from the arena) may be donated as long as
// their capacity is meaningful. An Arena is safe for concurrent use.
type Arena struct {
	mu  sync.Mutex
	f   [arenaClasses][][]float64
	c   [arenaClasses][][]complex128
	f32 [arenaClasses][][]float32
	c64 [arenaClasses][][]complex64
	st  ArenaStats
	// limit overrides the pooled-class bound when non-zero (tests lower it
	// to exercise the unpooled path without gigabyte allocations).
	limit int
}

// arenaClasses bounds the largest pooled class at 2^(arenaClasses-1)
// elements (512M float64 = 4 GiB); larger requests are never pooled.
const arenaClasses = 30

// poolLimit returns the effective pooled-class bound.
func (a *Arena) poolLimit() int {
	if a.limit != 0 {
		return a.limit
	}
	return arenaClasses
}

// ArenaStats is a snapshot of an Arena's accounting. Byte counts are in
// class-capacity units (the pooled power-of-two size times the element
// width: 4 bytes per float32, 8 per float64/complex64, 16 per complex128).
type ArenaStats struct {
	Hits   int64 // checkouts served from a free list
	Misses int64 // checkouts that had to allocate fresh memory
	Frees  int64 // buffers returned
	InUse  int64 // bytes currently checked out
	Pooled int64 // bytes parked in free lists
	Peak   int64 // high-water mark of InUse
}

// Allocs returns the total number of checkouts (hits + misses).
func (s ArenaStats) Allocs() int64 { return s.Hits + s.Misses }

// String renders a one-line summary.
func (s ArenaStats) String() string {
	return fmt.Sprintf("arena: allocs=%d hits=%d misses=%d frees=%d in-use=%dB pooled=%dB peak=%dB",
		s.Allocs(), s.Hits, s.Misses, s.Frees, s.InUse, s.Pooled, s.Peak)
}

// sizeClass returns the free-list index for a request of n elements:
// the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// capClass returns the free-list index a buffer of capacity c belongs to:
// the largest k with 1<<k <= c, so a parked buffer always satisfies any
// request routed to its class.
func capClass(c int) int {
	if c <= 1 {
		return 0
	}
	return bits.Len(uint(c)) - 1
}

// arenaAlloc checks a zeroed []T of length n out of the free-list family
// lists, accounting elemBytes per element. Requests above the largest
// pooled class are allocated at exact capacity (no power-of-two rounding,
// which would waste up to 2x memory on huge buffers and overflow 1<<cls
// near the int limit) and accounted at their actual byte size.
func arenaAlloc[T any](a *Arena, lists *[arenaClasses][][]T, elemBytes int64, n int) []T {
	if n < 0 {
		panic(fmt.Sprintf("kernel: arena alloc of %d elements", n))
	}
	cls := sizeClass(n)
	a.mu.Lock()
	if cls >= a.poolLimit() {
		a.st.Misses++
		a.st.InUse += elemBytes * int64(n)
		if a.st.InUse > a.st.Peak {
			a.st.Peak = a.st.InUse
		}
		a.mu.Unlock()
		return make([]T, n)
	}
	var buf []T
	if len(lists[cls]) > 0 {
		last := len(lists[cls]) - 1
		buf = lists[cls][last]
		lists[cls][last] = nil
		lists[cls] = lists[cls][:last]
		a.st.Hits++
		a.st.Pooled -= elemBytes << cls
	} else {
		a.st.Misses++
	}
	a.st.InUse += elemBytes << cls
	if a.st.InUse > a.st.Peak {
		a.st.Peak = a.st.InUse
	}
	a.mu.Unlock()
	if buf == nil {
		return make([]T, n, 1<<cls)
	}
	buf = buf[:n]
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// arenaFree returns a buffer to its free-list family. Freeing nil is a
// no-op. Unpooled-size buffers are accounted at actual capacity; InUse
// never goes negative even when a foreign (never-checked-out) slice is
// donated.
func arenaFree[T any](a *Arena, lists *[arenaClasses][][]T, elemBytes int64, buf []T) {
	if cap(buf) == 0 {
		return
	}
	cls := capClass(cap(buf))
	a.mu.Lock()
	a.st.Frees++
	if cls >= a.poolLimit() {
		a.st.InUse -= elemBytes * int64(cap(buf))
	} else {
		a.st.InUse -= elemBytes << cls
		lists[cls] = append(lists[cls], buf[:0])
		a.st.Pooled += elemBytes << cls
	}
	if a.st.InUse < 0 {
		a.st.InUse = 0
	}
	a.mu.Unlock()
}

// Alloc checks out a zeroed []float64 of length n.
func (a *Arena) Alloc(n int) []float64 { return arenaAlloc(a, &a.f, 8, n) }

// Free returns a float64 buffer to the arena.
func (a *Arena) Free(buf []float64) { arenaFree(a, &a.f, 8, buf) }

// AllocComplex checks out a zeroed []complex128 of length n.
func (a *Arena) AllocComplex(n int) []complex128 { return arenaAlloc(a, &a.c, 16, n) }

// FreeComplex returns a complex128 buffer to the arena.
func (a *Arena) FreeComplex(buf []complex128) { arenaFree(a, &a.c, 16, buf) }

// Alloc32 checks out a zeroed []float32 of length n (the reduced-precision
// backend's element type; accounted at 4 bytes per element).
func (a *Arena) Alloc32(n int) []float32 { return arenaAlloc(a, &a.f32, 4, n) }

// Free32 returns a float32 buffer to the arena.
func (a *Arena) Free32(buf []float32) { arenaFree(a, &a.f32, 4, buf) }

// AllocComplex64 checks out a zeroed []complex64 of length n (8 bytes per
// element).
func (a *Arena) AllocComplex64(n int) []complex64 { return arenaAlloc(a, &a.c64, 8, n) }

// FreeComplex64 returns a complex64 buffer to the arena.
func (a *Arena) FreeComplex64(buf []complex64) { arenaFree(a, &a.c64, 8, buf) }

// Stats returns a snapshot of the arena accounting.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// resetCounters clears the flow counters, keeping pooled buffers and the
// in-use/pooled byte tracking (checked-out buffers remain checked out).
func (a *Arena) resetCounters() {
	a.mu.Lock()
	a.st.Hits, a.st.Misses, a.st.Frees = 0, 0, 0
	a.st.Peak = a.st.InUse
	a.mu.Unlock()
}

// release drops every pooled buffer (used by Engine.Close).
func (a *Arena) release() {
	a.mu.Lock()
	for i := range a.f {
		a.f[i] = nil
	}
	for i := range a.c {
		a.c[i] = nil
	}
	for i := range a.f32 {
		a.f32[i] = nil
	}
	for i := range a.c64 {
		a.c64[i] = nil
	}
	a.st.Pooled = 0
	a.mu.Unlock()
}
