package kernel

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestLaunchCoversRange(t *testing.T) {
	e := New(Options{Workers: 4})
	n := 10000
	seen := make([]int32, n)
	e.Launch("touch", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d touched %d times", i, v)
		}
	}
}

func TestLaunchSmallRunsSerial(t *testing.T) {
	e := New(Options{Workers: 8})
	var calls int
	e.Launch("small", 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("expected single chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small launch should run once, got %d", calls)
	}
}

func TestLaunchZeroN(t *testing.T) {
	e := New(Options{Workers: 2})
	e.Launch("empty", 0, func(lo, hi int) {
		t.Error("body should not run for n=0")
	})
	if got := e.Stats().Launches; got != 1 {
		t.Errorf("empty launch still counts: got %d", got)
	}
}

func TestAccounting(t *testing.T) {
	e := New(Options{Workers: 2, LaunchOverhead: time.Millisecond})
	for i := 0; i < 5; i++ {
		e.Launch("a", 100, func(lo, hi int) {})
	}
	e.LaunchSerial("b", func() {})
	st := e.Stats()
	if st.Launches != 6 {
		t.Errorf("Launches = %d, want 6", st.Launches)
	}
	if st.PerOp["a"].Launches != 5 || st.PerOp["b"].Launches != 1 {
		t.Errorf("per-op accounting wrong: %+v", st.PerOp)
	}
	if st.Simulated < 6*time.Millisecond {
		t.Errorf("Simulated = %v, want >= 6ms of launch overhead", st.Simulated)
	}
	if st.Overhead != time.Millisecond {
		t.Errorf("Overhead = %v", st.Overhead)
	}
}

func TestSimulatedTimeFusionAdvantage(t *testing.T) {
	// Three separate tiny kernels must cost more simulated time than one
	// fused kernel doing the same work — the paper's operator-combination
	// argument, by construction.
	work := func(lo, hi int) {}
	sep := New(Options{Workers: 1, LaunchOverhead: 10 * time.Microsecond})
	sep.Launch("k1", 64, work)
	sep.Launch("k2", 64, work)
	sep.Launch("k3", 64, work)
	fused := New(Options{Workers: 1, LaunchOverhead: 10 * time.Microsecond})
	fused.Launch("k123", 64, work)
	if sep.Stats().Simulated <= fused.Stats().Simulated {
		t.Errorf("separate %v should exceed fused %v",
			sep.Stats().Simulated, fused.Stats().Simulated)
	}
}

func TestParallelReduce(t *testing.T) {
	e := New(Options{Workers: 4})
	n := 100000
	sum := e.ParallelReduce("sum", n, 0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		},
		func(a, b float64) float64 { return a + b })
	want := float64(n-1) * float64(n) / 2
	if sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestParallelReduceSmallAndEmpty(t *testing.T) {
	e := New(Options{Workers: 4})
	got := e.ParallelReduce("s", 5, 100,
		func(lo, hi int) float64 { return float64(hi - lo) },
		func(a, b float64) float64 { return a + b })
	if got != 105 {
		t.Errorf("small reduce = %v, want 105", got)
	}
	got = e.ParallelReduce("s", 0, 7,
		func(lo, hi int) float64 { t.Error("no body for n=0"); return 0 },
		func(a, b float64) float64 { return a + b })
	if got != 7 {
		t.Errorf("empty reduce = %v, want init 7", got)
	}
}

func TestDeferSyncOrderingAndFlush(t *testing.T) {
	e := New(Options{Workers: 1})
	var order []string
	e.DeferSync("first", func() { order = append(order, "first") })
	e.DeferSync("second", func() { order = append(order, "second") })
	if len(order) != 0 {
		t.Fatal("deferred ops must not run before Flush")
	}
	e.Flush()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
	if st := e.Stats(); st.Syncs != 1 {
		t.Errorf("one Flush = one sync point, got %d", st.Syncs)
	}
	// Flushing an empty queue is a no-op (no extra sync).
	e.Flush()
	if st := e.Stats(); st.Syncs != 1 {
		t.Errorf("empty flush added a sync: %d", st.Syncs)
	}
}

func TestSyncCountsImmediately(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Sync()
	e.Sync()
	if st := e.Stats(); st.Syncs != 2 {
		t.Errorf("Syncs = %d, want 2", st.Syncs)
	}
}

func TestTrace(t *testing.T) {
	e := New(Options{Workers: 1, Trace: true})
	e.Launch("wa", 1, func(lo, hi int) {})
	e.Launch("density", 1, func(lo, hi int) {})
	e.LaunchSerial("ovfl", func() {})
	tr := e.Trace()
	want := []string{"wa", "density", "ovfl"}
	if len(tr) != len(want) {
		t.Fatalf("trace = %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, tr[i], want[i])
		}
	}
}

func TestReset(t *testing.T) {
	e := New(Options{Workers: 1, Trace: true})
	e.Launch("x", 1, func(lo, hi int) {})
	e.Reset()
	st := e.Stats()
	if st.Launches != 0 || len(st.PerOp) != 0 || len(e.Trace()) != 0 {
		t.Errorf("Reset did not clear: %+v", st)
	}
}

func TestDefaults(t *testing.T) {
	e := NewDefault()
	if e.Workers() <= 0 {
		t.Error("default workers must be positive")
	}
	if e.LaunchOverhead() != DefaultLaunchOverhead {
		t.Errorf("overhead = %v", e.LaunchOverhead())
	}
	z := New(Options{LaunchOverhead: -1})
	if z.LaunchOverhead() != DefaultLaunchOverhead {
		t.Errorf("negative overhead should map to default, got %v", z.LaunchOverhead())
	}
	zero := New(Options{})
	if zero.LaunchOverhead() != 0 {
		t.Errorf("zero overhead should disable the model, got %v", zero.LaunchOverhead())
	}
}

func TestStatsString(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Launch("alpha", 1, func(lo, hi int) {})
	s := e.Stats().String()
	if s == "" {
		t.Error("empty stats string")
	}
}
