package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCloseLaunchRace hammers every pooled launch path against Close. The
// pre-fix engine captured the pool pointer under poolMu but enqueued tasks
// after releasing it, so Close could close the task channel mid-send
// (panic: send on closed channel). Run with -race; the in-flight launch
// count must make Close drain enqueuing launches first.
func TestCloseLaunchRace(t *testing.T) {
	const hammers = 4
	n := 4 * minParallel
	for iter := 0; iter < 30; iter++ {
		e := New(Options{Workers: 4})
		var stop atomic.Bool
		var wg sync.WaitGroup
		started := make(chan struct{}, hammers)
		body := func(lo, hi int) {}
		chunkBody := func(chunk, lo, hi int) {}
		reduceBody := func(lo, hi int) float64 { return 1 }
		for g := 0; g < hammers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				first := true
				for !stop.Load() {
					switch g % 4 {
					case 0:
						e.Launch("race.launch", n, body)
					case 1:
						e.Fused("race.fused", n, body, body)
					case 2:
						e.LaunchChunks("race.chunks", n, chunkBody)
					case 3:
						e.ParallelReduce("race.reduce", n, 0, reduceBody, sumF)
					}
					if first {
						first = false
						started <- struct{}{}
					}
				}
			}(g)
		}
		for g := 0; g < hammers; g++ {
			<-started
		}
		e.Close() // must not panic and must not deadlock
		stop.Store(true)
		wg.Wait()
		// Post-Close launches fall back to serial and stay accounted.
		e.Launch("race.after", n, body)
		if e.Stats().PerOp["race.after"].Launches != 1 {
			t.Fatal("post-Close launch not accounted")
		}
	}
}

func sumF(a, b float64) float64 { return a + b }

// TestCloseIdempotentConcurrent: concurrent Closes must not double-close
// the task channel.
func TestCloseIdempotentConcurrent(t *testing.T) {
	e := New(Options{Workers: 4})
	e.Launch("warm", 4*minParallel, func(lo, hi int) {})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
}

// TestArenaUnpooledExactCapacity: requests above the pooled-class bound get
// exact capacity (no power-of-two rounding) and are accounted at actual
// byte size on both checkout and return.
func TestArenaUnpooledExactCapacity(t *testing.T) {
	var a Arena
	a.limit = 4 // pool only up to 1<<3 = 8 elements
	buf := a.Alloc(100)
	if len(buf) != 100 || cap(buf) != 100 {
		t.Fatalf("unpooled alloc len/cap = %d/%d, want 100/100 (exact)", len(buf), cap(buf))
	}
	if st := a.Stats(); st.InUse != 800 || st.Peak != 800 || st.Misses != 1 {
		t.Errorf("unpooled accounting = %+v, want InUse=800 Peak=800 Misses=1", st)
	}
	a.Free(buf)
	if st := a.Stats(); st.InUse != 0 || st.Pooled != 0 {
		t.Errorf("after free: InUse=%d Pooled=%d, want 0/0 (never pooled)", st.InUse, st.Pooled)
	}
	// Unpooled frees don't park buffers: the next checkout misses again.
	buf2 := a.Alloc(100)
	if st := a.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("unpooled realloc: misses=%d hits=%d, want 2/0", st.Misses, st.Hits)
	}
	a.Free(buf2)

	c := a.AllocComplex(50)
	if len(c) != 50 || cap(c) != 50 {
		t.Fatalf("unpooled complex len/cap = %d/%d, want 50/50", len(c), cap(c))
	}
	if st := a.Stats(); st.InUse != 800 {
		t.Errorf("complex unpooled InUse = %d, want 800", st.InUse)
	}
	a.FreeComplex(c)
	if st := a.Stats(); st.InUse != 0 {
		t.Errorf("complex unpooled free left InUse = %d", st.InUse)
	}
}

// TestArenaForeignFreeCannotGoNegative: donating a slice that was never
// checked out must not drive InUse negative.
func TestArenaForeignFreeCannotGoNegative(t *testing.T) {
	var a Arena
	a.Free(make([]float64, 1024))
	if st := a.Stats(); st.InUse != 0 {
		t.Errorf("foreign free drove InUse to %d, want clamp at 0", st.InUse)
	}
	a.FreeComplex(make([]complex128, 64))
	if st := a.Stats(); st.InUse != 0 {
		t.Errorf("foreign complex free drove InUse to %d", st.InUse)
	}
	// The donation is still pooled and serves the next checkout.
	if a.Alloc(1000) == nil {
		t.Fatal("alloc failed")
	}
	if st := a.Stats(); st.Hits != 1 {
		t.Errorf("donated buffer not reused: %+v", st)
	}

	// Unpooled foreign free likewise clamps.
	var b Arena
	b.limit = 4
	b.Free(make([]float64, 100))
	if st := b.Stats(); st.InUse != 0 {
		t.Errorf("unpooled foreign free drove InUse to %d", st.InUse)
	}
}

// TestParallelReducePaddedPartials: the reduce still folds every chunk
// correctly with cache-line-strided partial slots.
func TestParallelReducePaddedPartials(t *testing.T) {
	e := New(Options{Workers: 7})
	defer e.Close()
	n := 7*minParallel + 13
	got := e.ParallelReduce("reduce.pad", n, 0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		}, sumF)
	want := float64(n-1) * float64(n) / 2
	if got != want {
		t.Errorf("padded reduce = %v, want %v", got, want)
	}
}
