package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFusedRunsAllBodiesOnce verifies Fused executes every body over the
// full range while accounting as a single launch.
func TestFusedRunsAllBodiesOnce(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	n := 3 * minParallel
	a := make([]int32, n)
	b := make([]int32, n)
	e.Fused("fused", n,
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&a[i], 1)
			}
		},
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&b[i], 1)
			}
		})
	for i := 0; i < n; i++ {
		if a[i] != 1 || b[i] != 1 {
			t.Fatalf("index %d: a=%d b=%d, want 1/1", i, a[i], b[i])
		}
	}
	st := e.Stats()
	if st.Launches != 1 {
		t.Errorf("Fused must count as ONE launch, got %d", st.Launches)
	}
	if st.PerOp["fused"].Launches != 1 {
		t.Errorf("per-op launches = %d, want 1", st.PerOp["fused"].Launches)
	}
}

// TestFusedStageOrderPerChunk verifies each chunk runs the fused stages in
// order, so stage k can read stage j<k outputs inside its own chunk.
func TestFusedStageOrderPerChunk(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	n := 4 * minParallel
	x := make([]float64, n)
	y := make([]float64, n)
	e.Fused("staged", n,
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] = float64(i)
			}
		},
		func(lo, hi int) {
			for i := lo; i < hi; i++ {
				y[i] = 2 * x[i]
			}
		})
	for i := 0; i < n; i++ {
		if y[i] != 2*float64(i) {
			t.Fatalf("y[%d] = %v, want %v (stage order broken)", i, y[i], 2*float64(i))
		}
	}
}

// TestFusedEmptyBodies: n>0 with no bodies is still one accounted launch.
func TestFusedEmptyBodies(t *testing.T) {
	e := New(Options{Workers: 2})
	e.Fused("noop", 100)
	if got := e.Stats().Launches; got != 1 {
		t.Errorf("Launches = %d, want 1", got)
	}
}

// TestCloseSerialFallback: after Close, launches still execute (serially,
// on the calling goroutine) and are still accounted.
func TestCloseSerialFallback(t *testing.T) {
	e := New(Options{Workers: 4})
	n := 2 * minParallel
	e.Launch("warm", n, func(lo, hi int) {}) // spawn the pool
	e.Close()
	var calls int32
	touched := make([]bool, n)
	e.Launch("after_close", n, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		for i := lo; i < hi; i++ {
			touched[i] = true
		}
	})
	if calls != 1 {
		t.Errorf("closed engine must run serially in one chunk, got %d calls", calls)
	}
	for i, ok := range touched {
		if !ok {
			t.Fatalf("index %d not covered after Close", i)
		}
	}
	if got := e.Stats().PerOp["after_close"].Launches; got != 1 {
		t.Errorf("post-Close launch not accounted: %d", got)
	}
	// Close is idempotent.
	e.Close()
}

// TestLaunchChunksSmallSingleChunk: below minParallel only chunk 0 runs.
func TestLaunchChunksSmallSingleChunk(t *testing.T) {
	e := New(Options{Workers: 8})
	defer e.Close()
	var chunks []int
	used := e.LaunchChunks("small", 100, func(chunk, lo, hi int) {
		chunks = append(chunks, chunk)
		if lo != 0 || hi != 100 {
			t.Errorf("chunk range [%d,%d), want [0,100)", lo, hi)
		}
	})
	if used != 1 || len(chunks) != 1 || chunks[0] != 0 {
		t.Errorf("used=%d chunks=%v, want single chunk 0", used, chunks)
	}
}

// TestLaunchChunksParallelCoverage: above minParallel every chunk index is
// distinct, in [0, used), and the union of ranges covers [0, n).
func TestLaunchChunksParallelCoverage(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	n := 4*minParallel + 37
	seen := make([]int32, n)
	var mu sync.Mutex
	got := map[int]bool{}
	used := e.LaunchChunks("cover", n, func(chunk, lo, hi int) {
		mu.Lock()
		got[chunk] = true
		mu.Unlock()
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if used < 1 || used > e.Workers() {
		t.Fatalf("used = %d, want in [1, %d]", used, e.Workers())
	}
	if len(got) != used {
		t.Errorf("distinct chunks %d != used %d", len(got), used)
	}
	for c := range got {
		if c < 0 || c >= used {
			t.Errorf("chunk index %d out of [0, %d)", c, used)
		}
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d touched %d times", i, v)
		}
	}
}

// TestArenaReuse checks the checkout/return cycle: a freed buffer is served
// back zeroed as a hit, and the flow counters track it.
func TestArenaReuse(t *testing.T) {
	e := New(Options{Workers: 1})
	buf := e.Alloc(1000)
	if len(buf) != 1000 {
		t.Fatalf("len = %d", len(buf))
	}
	for i := range buf {
		buf[i] = 1
	}
	e.Free(buf)
	buf2 := e.Alloc(900) // same size class (1024)
	for i, v := range buf2 {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	st := e.ArenaStats()
	if st.Hits != 1 || st.Misses != 1 || st.Frees != 1 {
		t.Errorf("hits=%d misses=%d frees=%d, want 1/1/1", st.Hits, st.Misses, st.Frees)
	}
	if st.InUse != 1024*8 {
		t.Errorf("InUse = %d bytes, want %d", st.InUse, 1024*8)
	}
	if st.Peak != 1024*8 {
		t.Errorf("Peak = %d bytes, want %d", st.Peak, 1024*8)
	}
	e.Free(buf2)
	if st = e.ArenaStats(); st.InUse != 0 || st.Pooled != 1024*8 {
		t.Errorf("after free: InUse=%d Pooled=%d", st.InUse, st.Pooled)
	}

	// Complex checkouts use separate free lists and 16-byte accounting.
	c := e.AllocComplex(100)
	e.FreeComplex(c)
	c2 := e.AllocComplex(128)
	if st = e.ArenaStats(); st.Hits != 2 {
		t.Errorf("complex realloc should hit: %+v", st)
	}
	e.FreeComplex(c2)
}

// TestArenaAllocAttribution: checkouts inside a launch are attributed to
// that op; host-side checkouts go to HostOp.
func TestArenaAllocAttribution(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Launch("op_with_scratch", 10, func(lo, hi int) {
		b := e.Alloc(16)
		e.Free(b)
	})
	host := e.Alloc(16)
	e.Free(host)
	st := e.Stats()
	if st.PerOp["op_with_scratch"].Allocs != 1 {
		t.Errorf("op allocs = %d, want 1", st.PerOp["op_with_scratch"].Allocs)
	}
	if st.PerOp[HostOp].Allocs != 1 {
		t.Errorf("host allocs = %d, want 1", st.PerOp[HostOp].Allocs)
	}
	if st.Arena.Allocs() != 2 {
		t.Errorf("arena total allocs = %d, want 2", st.Arena.Allocs())
	}
}

// TestResetClearsArenaCounters: Reset zeroes the flow counters but keeps
// pooled buffers warm (the next checkout is still a hit).
func TestResetClearsArenaCounters(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Free(e.Alloc(64))
	e.Reset()
	st := e.ArenaStats()
	if st.Hits != 0 || st.Misses != 0 || st.Frees != 0 {
		t.Errorf("Reset left flow counters: %+v", st)
	}
	if st.Pooled == 0 {
		t.Error("Reset must keep pooled buffers warm")
	}
	e.Free(e.Alloc(64))
	if st = e.ArenaStats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm pool should hit after Reset: %+v", st)
	}
}

// TestParallelReduceZeroAllocSteadyState: the partials buffer comes from
// the arena, so steady-state reductions do not touch the Go heap.
func TestParallelReduceZeroAllocSteadyState(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	n := 4 * minParallel
	body := func(lo, hi int) float64 { return float64(hi - lo) }
	combine := func(a, b float64) float64 { return a + b }
	// Warm up pool and arena.
	for i := 0; i < 3; i++ {
		e.ParallelReduce("warm", n, 0, body, combine)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := e.ParallelReduce("reduce", n, 0, body, combine); got != float64(n) {
			t.Fatalf("reduce = %v, want %v", got, float64(n))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ParallelReduce allocs = %v, want 0", allocs)
	}
}

// spawnLaunch is the pre-pool dispatch strategy: one fresh goroutine per
// chunk per launch. Kept as the benchmark comparator for the persistent
// pool (BenchmarkLaunchPool vs BenchmarkLaunchSpawn).
func spawnLaunch(workers, n int, body func(start, end int)) {
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func benchBody(lo, hi int) {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += float64(i)
	}
	_ = s
}

func BenchmarkLaunchPool(b *testing.B) {
	e := New(Options{Workers: 4})
	defer e.Close()
	n := 4 * minParallel
	e.Launch("warm", n, benchBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Launch("bench", n, benchBody)
	}
}

func BenchmarkLaunchSpawn(b *testing.B) {
	n := 4 * minParallel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spawnLaunch(4, n, benchBody)
	}
}

// reducePartialsBench models the ParallelReduce partial-slot write pattern
// at a given slot stride: each worker accumulates into its own slot of a
// shared buffer. With stride 1 the four slots share one cache line and the
// line ping-pongs between cores; with stride 8 (one line per slot — what
// ParallelReduce now uses) each worker owns its line.
func reducePartialsBench(b *testing.B, stride int) {
	const workers = 4
	slots := make([]float64, workers*stride)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				p := &slots[w*stride]
				for j := 0; j < 1<<13; j++ {
					*p += float64(j)
				}
			}(w)
		}
		wg.Wait()
	}
}

func BenchmarkReducePartialsAdjacent(b *testing.B) { reducePartialsBench(b, 1) }
func BenchmarkReducePartialsPadded(b *testing.B)   { reducePartialsBench(b, 8) }

func BenchmarkLaunchPoolSerialThreshold(b *testing.B) {
	// Below minParallel the launch never leaves the calling goroutine.
	e := New(Options{Workers: 4})
	defer e.Close()
	n := minParallel - 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Launch("bench", n, benchBody)
	}
}
