package kernel

import "testing"

// TestArenaMixedElementSizes interleaves float64, float32, complex128 and
// complex64 checkouts and checks the byte accounting stays exact per
// element width, returns to baseline after release, and keeps the free-list
// families separate (a float32 request must never be served from a parked
// float64 buffer of the same class).
func TestArenaMixedElementSizes(t *testing.T) {
	var a Arena

	f := a.Alloc(1000)         // class 10: 8<<10 = 8192 B
	g := a.Alloc32(1000)       // class 10: 4<<10 = 4096 B
	c := a.AllocComplex(300)   // class 9: 16<<9 = 8192 B
	z := a.AllocComplex64(300) // class 9:  8<<9 = 4096 B

	const want = 8192 + 4096 + 8192 + 4096
	st := a.Stats()
	if st.InUse != want {
		t.Fatalf("InUse = %d, want %d", st.InUse, want)
	}
	if st.Peak != want {
		t.Fatalf("Peak = %d, want %d", st.Peak, want)
	}
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("misses=%d hits=%d, want 4 misses on a cold arena", st.Misses, st.Hits)
	}

	// Release in a different order than checkout; accounting must return to
	// baseline with every byte parked in the right family.
	a.Free32(g)
	a.FreeComplex(c)
	a.Free(f)
	a.FreeComplex64(z)
	st = a.Stats()
	if st.InUse != 0 {
		t.Fatalf("InUse after release = %d, want 0", st.InUse)
	}
	if st.Pooled != want {
		t.Fatalf("Pooled after release = %d, want %d", st.Pooled, want)
	}
	if st.Frees != 4 {
		t.Fatalf("Frees = %d, want 4", st.Frees)
	}

	// Same size class, different element type: class 9 holds only parked
	// complex128/complex64 buffers, so a float32 request routed there must
	// be a fresh miss — families never serve each other.
	g2 := a.Alloc32(512)
	st = a.Stats()
	if st.Hits != 0 {
		t.Fatalf("float32 checkout hit a foreign free list (hits=%d)", st.Hits)
	}
	// Matching type and class is a hit.
	f2 := a.Alloc(1024)
	if st = a.Stats(); st.Hits != 1 {
		t.Fatalf("float64 re-checkout hits = %d, want 1", st.Hits)
	}
	a.Free32(g2)
	a.Free(f2)
	if st = a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse after second cycle = %d, want 0", st.InUse)
	}
}

// TestArenaMixedUnpooledAccounting: above the pooled bound, reduced-width
// buffers are accounted at their actual byte size (4 B per float32, 8 per
// complex64), not the float64 width.
func TestArenaMixedUnpooledAccounting(t *testing.T) {
	var a Arena
	a.limit = 4 // pool only up to 1<<3 = 8 elements

	g := a.Alloc32(100)
	z := a.AllocComplex64(50)
	st := a.Stats()
	if want := int64(100*4 + 50*8); st.InUse != want {
		t.Fatalf("unpooled InUse = %d, want %d", st.InUse, want)
	}
	a.Free32(g)
	a.FreeComplex64(z)
	if st = a.Stats(); st.InUse != 0 || st.Pooled != 0 {
		t.Fatalf("after release InUse=%d Pooled=%d, want 0/0", st.InUse, st.Pooled)
	}
}

// TestEngineMixedAllocWrappers: the Engine-level float32/complex64 wrappers
// reach the same arena and attribute checkouts like the float64 ones.
func TestEngineMixedAllocWrappers(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	g := e.Alloc32(512)
	z := e.AllocComplex64(512)
	st := e.ArenaStats()
	if want := int64(4*512 + 8*512); st.InUse != want {
		t.Fatalf("InUse = %d, want %d", st.InUse, want)
	}
	e.Free32(g)
	e.FreeComplex64(z)
	if st = e.ArenaStats(); st.InUse != 0 {
		t.Fatalf("InUse after free = %d, want 0", st.InUse)
	}
	if got := e.Stats().PerOp[HostOp].Allocs; got != 2 {
		t.Fatalf("host-attributed allocs = %d, want 2", got)
	}
}
