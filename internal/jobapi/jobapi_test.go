package jobapi

import (
	"strings"
	"testing"
)

// TestModelInCacheKey: the model changes the converged placement, so two
// requests differing only in model must never collide in the result
// cache, while the empty model stays canonical with the omitted one.
func TestModelInCacheKey(t *testing.T) {
	plain := Request{Bench: "fft_1"}
	plain.Normalize()
	modeled := Request{Bench: "fft_1", Model: "fno32"}
	modeled.Normalize()
	if plain.CacheKey() == modeled.CacheKey() {
		t.Fatal("model-less and modeled requests share a cache key")
	}
	other := Request{Bench: "fft_1", Model: "fno64"}
	other.Normalize()
	if modeled.CacheKey() == other.CacheKey() {
		t.Fatal("distinct models share a cache key")
	}
	if !strings.Contains(modeled.CacheKey(), "model=fno32") {
		t.Fatalf("cache key %q does not carry the model", modeled.CacheKey())
	}
}

// TestValidateModelName: names are kept safe for the cache key they
// become part of; registry membership is the scheduler's concern.
func TestValidateModelName(t *testing.T) {
	cases := []struct {
		name, model string
		ok          bool
	}{
		{"empty", "", true},
		{"plain", "fno32", true},
		{"dots and dashes", "fno-32.v2", true},
		{"pipe", "a|b", false},
		{"equals", "a=b", false},
		{"newline", "a\nb", false},
		{"max length", strings.Repeat("x", 128), true},
		{"over length", strings.Repeat("x", 129), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Request{Bench: "fft_1", Model: tc.model}
			if err := r.Validate(); (err == nil) != tc.ok {
				t.Fatalf("model %q: err = %v, want ok=%v", tc.model, err, tc.ok)
			}
		})
	}
}

// TestToSpecCarriesModel: the model survives the wire→Spec expansion and
// the durable payload round trip (WAL recovery must not drop it).
func TestToSpecCarriesModel(t *testing.T) {
	r := Request{Bench: "fft_1", Scale: 0.002, Model: "fno32"}
	spec, err := r.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "fno32" {
		t.Fatalf("Spec.Model = %q, want fno32", spec.Model)
	}
	if !strings.Contains(string(spec.Payload), `"model":"fno32"`) {
		t.Fatalf("durable payload %s does not carry the model", spec.Payload)
	}
	re, err := Rehydrate(spec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Model != "fno32" || re.Key != spec.Key {
		t.Fatalf("rehydrated model %q key %q, want fno32 / %q", re.Model, re.Key, spec.Key)
	}
}
