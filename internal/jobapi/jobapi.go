// Package jobapi is the wire form of a placement job request — the JSON
// body accepted by cmd/xserve's POST /jobs and routed by the xgate
// gateway. It lives in one place so every tier of the service agrees on
// three derived identities:
//
//   - the canonical (normalized) request: two spellings of the same
//     placement marshal to the same payload,
//   - the cache key: the content address identical submissions share,
//     which doubles as the gateway's consistent-hash routing key, and
//   - the serve.Spec a worker actually runs.
//
// A gateway that re-derives any of these differently from the worker it
// routes to would silently break cache-aware routing and exact failover
// reruns, so the derivation is shared code, not protocol convention.
package jobapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"xplace/internal/benchgen"
	"xplace/internal/placer"
	"xplace/internal/serve"
)

// Request is the POST /jobs body. The design is a synthetic contest
// benchmark (as in `xplace -bench`); mode selects the GP engine.
//
// Zero-value coercion (part of the API): scale 0 selects the default
// 0.02 and seed 0 selects the default 1 — a request with "seed": 0 names
// the SAME design as "seed": 1, and both land on the same result-cache
// entry. Use an explicit non-zero seed for a distinct design.
type Request struct {
	Bench    string  `json:"bench"`
	Scale    float64 `json:"scale,omitempty"`    // cell-count fraction; 0 = default 0.02
	Seed     int64   `json:"seed,omitempty"`     // design seed; 0 = default 1
	Mode     string  `json:"mode,omitempty"`     // xplace | baseline
	Strategy string  `json:"strategy,omitempty"` // nesterov | lbub (draft tier)
	MaxIter  int     `json:"max_iter,omitempty"` // GP iteration cap
	Grid     int     `json:"grid,omitempty"`     // density grid size
	Timeout  string  `json:"timeout,omitempty"`  // e.g. "30s"
	Label    string  `json:"label,omitempty"`
	Trace    bool    `json:"trace,omitempty"` // record a per-job operator trace
	// Model names a field model from the worker's registry (-models dir)
	// to blend into the early placement stage (§3.3). Empty runs the pure
	// numerical flow. An unknown name is rejected with 400 at submission
	// (serve.UnknownModelError). The model changes the converged result,
	// so it is part of the cache key.
	Model string `json:"model,omitempty"`
	// AllowDraft opts the job into the gateway's graceful-degradation
	// path: when every worker queue is at backpressure, the gateway may
	// answer with a locally computed lbub draft placement instead of
	// shedding the job with 429. Routing metadata only — it never changes
	// the requested placement, so it is excluded from the cache key.
	AllowDraft bool `json:"allow_draft,omitempty"`
}

// Validate rejects requests the scheduler would otherwise run with
// nonsense parameters (or coerce surprisingly).
func (r *Request) Validate() error {
	if r.Bench == "" {
		return errors.New("bench is required")
	}
	if r.Scale < 0 || math.IsNaN(r.Scale) || math.IsInf(r.Scale, 0) {
		return fmt.Errorf("scale %v must be a finite value >= 0 (0 selects the default 0.02)", r.Scale)
	}
	if r.MaxIter < 0 {
		return fmt.Errorf("max_iter %d must be >= 0", r.MaxIter)
	}
	if r.Grid < 0 {
		return fmt.Errorf("grid %d must be >= 0 (0 selects the mode default)", r.Grid)
	}
	// Enum-ish fields are validated HERE, at the HTTP boundary, so an
	// unknown value is a 400 instead of a failure deep in the engine.
	if _, err := placer.ParseStrategy(r.Strategy); err != nil {
		return err
	}
	// Model NAMES are validated against the registry by the worker's
	// scheduler (only it knows what is loaded); here we only keep the
	// name safe for the cache key it becomes part of.
	if strings.ContainsAny(r.Model, "|=\n") {
		return fmt.Errorf("model %q must not contain '|', '=' or newlines", r.Model)
	}
	if len(r.Model) > 128 {
		return fmt.Errorf("model name longer than 128 bytes")
	}
	return nil
}

// Normalize applies the documented zero-value coercions, making the
// request canonical: two requests naming the same placement marshal to
// the same payload and cache key.
func (r *Request) Normalize() {
	if r.Scale == 0 {
		r.Scale = 0.02
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Mode == "" {
		r.Mode = "xplace"
	}
	if r.Strategy == "" {
		r.Strategy = "nesterov"
	}
	if r.Label == "" {
		r.Label = r.Bench
	}
}

// CacheKey is the request's result-cache content address: exactly the
// fields that determine the placement's outcome. Label, trace, timeout
// and allow_draft are excluded — they change reporting, execution limits
// or routing policy, not the converged result. The same key is the
// gateway's consistent-hash routing key, so identical resubmissions land
// on the node that already holds the cached result.
func (r *Request) CacheKey() string {
	// Strategy is part of the content address: the same request under
	// nesterov and lbub converges to different placements, so the two
	// must never collide in the result cache.
	return fmt.Sprintf("bench=%s|scale=%g|seed=%d|mode=%s|strategy=%s|max_iter=%d|grid=%d|model=%s",
		r.Bench, r.Scale, r.Seed, r.Mode, r.Strategy, r.MaxIter, r.Grid, r.Model)
}

// ToSpec validates and normalizes the request in place, then expands it
// into the runnable serve.Spec (generated design, placer options, durable
// payload and cache key).
func (r *Request) ToSpec() (serve.Spec, error) {
	if err := r.Validate(); err != nil {
		return serve.Spec{}, err
	}
	bspec, ok := benchgen.FindSpec(r.Bench)
	if !ok {
		return serve.Spec{}, fmt.Errorf("unknown benchmark %q", r.Bench)
	}
	r.Normalize()
	var opts placer.Options
	switch r.Mode {
	case "xplace":
		opts = placer.Defaults()
	case "baseline":
		opts = placer.BaselineDefaults()
	default:
		return serve.Spec{}, fmt.Errorf("unknown mode %q", r.Mode)
	}
	opts.Seed = r.Seed
	opts.GridSize = r.Grid
	opts.Strategy, _ = placer.ParseStrategy(r.Strategy) // validated above
	if r.MaxIter > 0 {
		opts.Sched.MaxIter = r.MaxIter
	}
	var timeout time.Duration
	if r.Timeout != "" {
		var err error
		if timeout, err = time.ParseDuration(r.Timeout); err != nil {
			return serve.Spec{}, fmt.Errorf("bad timeout: %v", err)
		}
		if timeout < 0 {
			return serve.Spec{}, fmt.Errorf("timeout %q must be >= 0", r.Timeout)
		}
	}
	// The normalized request is the job's durable identity: the payload
	// replayed by a restarted daemon (or re-routed by a failing-over
	// gateway), and the content key for the result cache. The expanded
	// netlist is re-derived, never stored.
	payload, err := json.Marshal(r)
	if err != nil {
		return serve.Spec{}, err
	}
	return serve.Spec{
		Design:  benchgen.Generate(bspec, r.Scale, r.Seed),
		Options: opts,
		Timeout: timeout,
		Label:   r.Label,
		Trace:   r.Trace,
		Payload: payload,
		Key:     r.CacheKey(),
		Model:   r.Model,
	}, nil
}

// Rehydrate rebuilds a Spec from a durable payload — the recovery half
// of ToSpec. The payload is already normalized, so the rebuilt design
// and options are identical to the original submission's.
func Rehydrate(b []byte) (serve.Spec, error) {
	var req Request
	if err := json.Unmarshal(b, &req); err != nil {
		return serve.Spec{}, err
	}
	return req.ToSpec()
}
