package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
	"xplace/internal/placer"
)

// testDesign builds a seeded clustered design (the miniature
// standard-cell circuit of the placer tests).
func testDesign(tb testing.TB, n int, seed int64) *netlist.Design {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n) * 0.9 * 0.9 / 0.55)
	d := netlist.NewDesign("serve-test", geom.Rect{Hx: side, Hy: side})
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		d.AddCell("c", 0.9, 0.9, rng.Float64()*side, rng.Float64()*side, netlist.Movable)
	}
	for i := 0; i < n; i++ {
		if i+1 < n && (i+1)%cols != 0 {
			d.AddNet("h")
			d.AddPin(i, 0, 0)
			d.AddPin(i+1, 0, 0)
		}
		if i+cols < n {
			d.AddNet("v")
			d.AddPin(i, 0, 0)
			d.AddPin(i+cols, 0, 0)
		}
	}
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	return d
}

// mustNew builds a scheduler, failing the test on a recovery error.
func mustNew(tb testing.TB, opts Options) *Scheduler {
	tb.Helper()
	s, err := New(opts)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func testOpts(maxIter int) placer.Options {
	o := placer.Defaults()
	o.GridSize = 32
	o.TargetDensity = 0.9
	o.Sched.MaxIter = maxIter
	return o
}

// waitState polls until the job reaches (at least) the wanted state.
func waitState(tb testing.TB, j *Job, want State) {
	tb.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Status().State; st >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("job %d stuck in %v waiting for %v", j.ID(), j.Status().State, want)
}

// waitGoroutines polls until the goroutine count falls back to the base
// (background GC helpers can keep it a touch above transiently).
func waitGoroutines(tb testing.TB, base int) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb.Errorf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
}

// TestJobRuntimeAcceptance is the PR's acceptance scenario: 8 jobs
// submitted concurrently against queue capacity 4 and an engine pool of
// 4; two are cancelled mid-run and one times out (all three must return
// the engine arenas to baseline), the rest finish with HPWL bit-identical
// to a solo placement with the same seed and worker count.
func TestJobRuntimeAcceptance(t *testing.T) {
	baseG := runtime.NumGoroutine()

	const engineWorkers = 2
	s := mustNew(t, Options{
		Engines:        4,
		QueueCap:       4,
		EngineWorkers:  engineWorkers,
		LaunchOverhead: 0,
	})

	finishD := testDesign(t, 300, 7)
	longD := testDesign(t, 1200, 8)
	finishOpts := testOpts(400)
	longOpts := testOpts(100000)

	specs := make([]Spec, 8)
	for i := 0; i < 5; i++ {
		specs[i] = Spec{Design: finishD, Options: finishOpts, Label: "finish"}
	}
	specs[5] = Spec{Design: longD, Options: longOpts, Label: "cancel"}
	specs[6] = Spec{Design: longD, Options: longOpts, Label: "cancel"}
	specs[7] = Spec{Design: longD, Options: longOpts, Label: "timeout", Timeout: 60 * time.Millisecond}

	// Submit all 8 concurrently. With 4 workers + 4 queue slots every job
	// is eventually accepted, but a burst can transiently see a full
	// queue — the backpressure contract — so submitters retry.
	jobs := make([]*Job, 8)
	errc := make(chan error, 8)
	for i := range specs {
		go func(i int) {
			for {
				j, err := s.Submit(specs[i])
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				jobs[i] = j
				errc <- err
				return
			}
		}(i)
	}
	for range specs {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// Cancel the two long jobs mid-run: wait until each is actually
	// running and has produced progress, then cancel.
	for _, i := range []int{5, 6} {
		waitState(t, jobs[i], Running)
		deadline := time.Now().Add(30 * time.Second)
		for len(jobs[i].Snapshots()) == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !s.Cancel(jobs[i].ID()) {
			t.Fatalf("cancel job %d failed", jobs[i].ID())
		}
	}

	// Everything reaches a terminal state.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil && ctx.Err() != nil {
			t.Fatalf("job %d did not finish: %v", j.ID(), err)
		}
	}

	// Terminal-state census.
	for i, j := range jobs {
		st := j.Status()
		switch {
		case i < 5 && st.State != Succeeded:
			t.Errorf("finish job %d: state %v (err %q), want succeeded", st.ID, st.State, st.Err)
		case (i == 5 || i == 6) && st.State != Canceled:
			t.Errorf("cancel job %d: state %v, want canceled", st.ID, st.State)
		case i == 7 && st.State != TimedOut:
			t.Errorf("timeout job %d: state %v, want timed-out", st.ID, st.State)
		}
	}

	// Cancelled / timed-out / finished jobs all released their
	// arena-backed scratch: every pooled engine is back to baseline.
	for i, es := range s.EngineStatuses() {
		if es.Stats.Arena.InUse != 0 {
			t.Errorf("engine %d arena in-use = %d bytes after drain, want 0", i, es.Stats.Arena.InUse)
		}
	}

	// The survivors' HPWL matches a solo run bit-for-bit: same seed, same
	// worker count => same chunk boundaries => same FP summation order.
	solo := kernel.New(kernel.Options{Workers: engineWorkers, LaunchOverhead: 0})
	defer solo.Close()
	p, err := placer.New(finishD, solo, finishOpts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	for i := 0; i < 5; i++ {
		res, _ := jobs[i].Result()
		if res == nil {
			continue
		}
		if res.HPWL != ref.HPWL || res.Iterations != ref.Iterations {
			t.Errorf("job %d: HPWL %v in %d iters, solo run %v in %d — pooled engines must not perturb results",
				jobs[i].ID(), res.HPWL, res.Iterations, ref.HPWL, ref.Iterations)
		}
	}

	// Progress streaming: a finished job retains its trajectory and the
	// snapshots carry the stage classification.
	snaps := jobs[0].Snapshots()
	if len(snaps) == 0 {
		t.Fatal("finished job has no progress snapshots")
	}
	for k := 1; k < len(snaps); k++ {
		if snaps[k].Iter != snaps[k-1].Iter+1 {
			t.Fatalf("snapshot iters not consecutive: %d then %d", snaps[k-1].Iter, snaps[k].Iter)
		}
	}
	if st := snaps[len(snaps)-1].Stage; st != "early" && st != "intermediate" && st != "final" {
		t.Errorf("snapshot stage = %q", st)
	}

	c := s.Counters()
	if c.Submitted != 8 || c.Succeeded != 5 || c.Canceled != 2 || c.TimedOut != 1 {
		t.Errorf("counters = %+v, want 8 submitted / 5 succeeded / 2 canceled / 1 timed-out", c)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitGoroutines(t, baseG)
}

func TestSubmitBackpressure(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 1, EngineWorkers: 1, LaunchOverhead: 0})
	d := testDesign(t, 800, 3)
	long := Spec{Design: d, Options: testOpts(100000)}

	running, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running)

	queued, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(long); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if c := s.Counters(); c.Rejected != 1 || c.Queued != 1 {
		t.Errorf("counters = %+v, want 1 rejected / 1 queued", c)
	}

	// Cancelling the queued job is immediate — no worker involvement.
	if !s.Cancel(queued.ID()) {
		t.Fatal("cancel queued job failed")
	}
	if st := queued.Status(); st.State != Canceled || !st.Started.IsZero() {
		t.Errorf("queued job after cancel: state %v started %v, want canceled & never started",
			st.State, st.Started)
	}

	s.Cancel(running.ID())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestShutdownCancelsWhenContextExpires(t *testing.T) {
	baseG := runtime.NumGoroutine()
	s := mustNew(t, Options{Engines: 1, QueueCap: 4, EngineWorkers: 1, LaunchOverhead: 0})
	d := testDesign(t, 800, 4)
	j, err := s.Submit(Spec{Design: d, Options: testOpts(100000)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded (drain cut short)", err)
	}
	if st := j.Status().State; st != Canceled {
		t.Errorf("job state after forced drain = %v, want canceled", st)
	}
	// Forced drain still releases the job's arena-backed scratch.
	for i, es := range s.EngineStatuses() {
		if es.Stats.Arena.InUse != 0 {
			t.Errorf("engine %d arena in-use = %d after forced drain, want 0", i, es.Stats.Arena.InUse)
		}
	}
	waitGoroutines(t, baseG)
}

func TestSubmitAfterShutdownRejected(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 1, LaunchOverhead: 0})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	d := testDesign(t, 50, 5)
	if _, err := s.Submit(Spec{Design: d, Options: testOpts(10)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: err = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeStreamsProgressAndCloses(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 2, EngineWorkers: 1, LaunchOverhead: 0, History: 8})
	defer s.Shutdown(context.Background())

	d := testDesign(t, 100, 6)
	j, err := s.Submit(Spec{Design: d, Options: testOpts(40)})
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub := j.Subscribe(1024)
	defer unsub()
	var got []placer.Snapshot
	for sn := range ch { // closed when the job finishes
		got = append(got, sn)
	}
	if len(got) == 0 {
		t.Fatal("no snapshots streamed")
	}
	if st := j.Status().State; st != Succeeded {
		t.Fatalf("job state = %v", st)
	}
	// The ring retains only the last History entries, in order.
	snaps := j.Snapshots()
	if len(snaps) != 8 {
		t.Fatalf("retained %d snapshots, want History=8", len(snaps))
	}
	last := got[len(got)-1]
	if snaps[len(snaps)-1] != last {
		t.Errorf("ring tail %+v != last streamed %+v", snaps[len(snaps)-1], last)
	}
	// Subscribing to a finished job yields a closed channel immediately.
	ch2, unsub2 := j.Subscribe(1)
	defer unsub2()
	if _, ok := <-ch2; ok {
		t.Error("subscription to finished job delivered a snapshot")
	}
}
