package serve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"xplace/internal/backend"
	"xplace/internal/jobstore"
	"xplace/internal/kernel"
	"xplace/internal/placer"
)

// storePayload is the durable, replayable job form of these tests — the
// same role cmd/xserve's request JSON plays for the daemon.
type storePayload struct {
	N       int   `json:"n"`
	Seed    int64 `json:"seed"`
	MaxIter int   `json:"max_iter"`
}

func (p storePayload) bytes(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func storeOpts(maxIter int) placer.Options {
	o := testOpts(maxIter)
	o.Backend = backend.Float64() // pin exact math under backend env overrides
	return o
}

func storeRehydrate(t *testing.T) func([]byte) (Spec, error) {
	return func(b []byte) (Spec, error) {
		var p storePayload
		if err := json.Unmarshal(b, &p); err != nil {
			return Spec{}, err
		}
		if p.N <= 0 {
			return Spec{}, errors.New("payload has no cell count")
		}
		return Spec{Design: testDesign(t, p.N, p.Seed), Options: storeOpts(p.MaxIter)}, nil
	}
}

// TestSchedulerRecovery is the tentpole acceptance at the scheduler
// level: a WAL holding a mid-trajectory running job (with a checkpoint),
// a queued job, and a finished job is replayed by New — the running job
// resumes from its checkpoint to a result bit-identical to an
// uninterrupted run, the queued job runs from scratch, the finished job
// reappears as history, and id assignment continues past the recovered
// ids.
func TestSchedulerRecovery(t *testing.T) {
	const workers = 2 // engine parallelism must match across runs for bit-identity
	pay1 := storePayload{N: 300, Seed: 7, MaxIter: 60}
	pay2 := storePayload{N: 200, Seed: 9, MaxIter: 40}

	// Uninterrupted reference for job 1's spec.
	ref := mustNew(t, Options{Engines: 1, EngineWorkers: workers})
	jr, err := ref.Submit(Spec{Design: testDesign(t, pay1.N, pay1.Seed), Options: storeOpts(pay1.MaxIter)})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := jr.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crashed scheduler's store: job 1 was running with a
	// checkpoint at iteration 20, job 2 never left the queue, job 3 had
	// already finished.
	dir := t.TempDir()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSubmit(1, "resume-me", pay1.bytes(t), "key-1"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	eng := kernel.New(kernel.Options{Workers: workers})
	p, err := placer.New(testDesign(t, pay1.N, pay1.Seed), eng, storeOpts(pay1.MaxIter))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIterations(20); err != nil {
		t.Fatal(err)
	}
	cpb, err := json.Marshal(p.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	eng.Close()
	if err := st.WriteCheckpoint(1, cpb); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSubmit(2, "queued", pay2.bytes(t), ""); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSubmit(3, "done", pay2.bytes(t), ""); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBegin(3); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendFinish(3, "succeeded", "", 42, 123.5, 0.05, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the scheduler replays the WAL on construction.
	st2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s := mustNew(t, Options{
		Engines: 1, EngineWorkers: workers, QueueCap: 1, // cap below backlog: recovery must still fit
		Store: st2, Rehydrate: storeRehydrate(t), CheckpointEvery: 10,
	})
	defer s.Shutdown(context.Background())

	jobs := s.Jobs()
	if len(jobs) != 3 || jobs[0].ID() != 3 || jobs[1].ID() != 2 || jobs[2].ID() != 1 {
		ids := make([]int64, len(jobs))
		for i, j := range jobs {
			ids[i] = j.ID()
		}
		t.Fatalf("recovered Jobs() ids = %v, want [3 2 1]", ids)
	}

	// Job 3: terminal history, visible without re-running.
	j3, _ := s.Job(3)
	st3 := j3.Status()
	if st3.State != Succeeded || !st3.Recovered || st3.Iterations != 42 || st3.HPWL != 123.5 {
		t.Fatalf("recovered terminal job: %+v", st3)
	}
	select {
	case <-j3.Done():
	default:
		t.Fatal("recovered terminal job not done")
	}

	// Job 1: resumes mid-trajectory and must finish bit-identical to the
	// uninterrupted reference.
	j1, _ := s.Job(1)
	if st1 := j1.Status(); !st1.Recovered || !st1.Resumed {
		t.Fatalf("job 1 flags: %+v, want recovered+resumed", st1)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Iterations != refRes.Iterations || res1.HPWL != refRes.HPWL || res1.Overflow != refRes.Overflow {
		t.Fatalf("resumed job: %d iters HPWL %v overflow %v; uninterrupted: %d / %v / %v",
			res1.Iterations, res1.HPWL, res1.Overflow,
			refRes.Iterations, refRes.HPWL, refRes.Overflow)
	}
	for c := range refRes.X {
		if res1.X[c] != refRes.X[c] || res1.Y[c] != refRes.Y[c] {
			t.Fatalf("cell %d: resumed (%v,%v) != uninterrupted (%v,%v)",
				c, res1.X[c], res1.Y[c], refRes.X[c], refRes.Y[c])
		}
	}
	if _, ok := st2.LoadCheckpoint(1); ok {
		t.Error("finished job's checkpoint not removed")
	}

	// Job 2: recovered from the queue, runs from scratch.
	j2, _ := s.Job(2)
	if res2, err := j2.Wait(context.Background()); err != nil || res2.Iterations == 0 {
		t.Fatalf("recovered queued job: res=%+v err=%v", res2, err)
	}
	if st2s := j2.Status(); !st2s.Recovered || st2s.Resumed {
		t.Fatalf("job 2 flags: %+v, want recovered, not resumed", st2s)
	}

	// Ids continue past the recovered range.
	j4, err := s.Submit(Spec{Design: testDesign(t, pay2.N, pay2.Seed), Options: storeOpts(pay2.MaxIter)})
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID() != 4 {
		t.Fatalf("post-recovery id = %d, want 4", j4.ID())
	}
	if _, err := j4.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	reg := s.Registry()
	if got := reg.Counter("xserve_store_recovered_jobs", "non-terminal jobs re-enqueued on startup").Value(); got != 2 {
		t.Errorf("recovered counter = %d, want 2", got)
	}
	if got := reg.Counter("xserve_store_resumed_jobs", "recovered jobs resumed from a checkpoint").Value(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
}

// TestResultCacheServesIdenticalSubmission: a second submission with the
// same content key finishes instantly from the durable cache — same
// numbers, zero new engine work.
func TestResultCacheServesIdenticalSubmission(t *testing.T) {
	st, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := mustNew(t, Options{
		Engines: 1, EngineWorkers: 1, QueueCap: 4,
		Store: st, Rehydrate: storeRehydrate(t),
	})
	defer s.Shutdown(context.Background())

	pay := storePayload{N: 200, Seed: 3, MaxIter: 30}
	spec := Spec{
		Design:  testDesign(t, pay.N, pay.Seed),
		Options: storeOpts(pay.MaxIter),
		Payload: pay.bytes(t),
		Key:     "bench-key",
	}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if j1.Status().Cached {
		t.Fatal("first keyed submission reported cached")
	}

	before := s.Counters()
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Status().Cached {
		t.Fatal("identical submission not served from the cache")
	}
	if res2.HPWL != res1.HPWL || res2.Overflow != res1.Overflow || res2.Iterations != res1.Iterations {
		t.Fatalf("cached result differs: %+v vs %+v", res2, res1)
	}
	for c := range res1.X {
		if res2.X[c] != res1.X[c] || res2.Y[c] != res1.Y[c] {
			t.Fatalf("cached positions differ at cell %d", c)
		}
	}
	after := s.Counters()
	if after.Launches != before.Launches || after.Iterations != before.Iterations {
		t.Errorf("cache hit burned engine work: launches %d->%d iterations %d->%d",
			before.Launches, after.Launches, before.Iterations, after.Iterations)
	}
	if after.Succeeded != before.Succeeded+1 {
		t.Errorf("cached job not counted as succeeded")
	}
	reg := s.Registry()
	if got := reg.Counter("xserve_cache_hits_total", "submissions served from the result cache").Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// The cache is durable: a fresh scheduler over the same store serves
	// the hit with no Rehydrate round trip.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := jobstore.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := mustNew(t, Options{
		Engines: 1, EngineWorkers: 1, QueueCap: 4,
		Store: st2, Rehydrate: storeRehydrate(t),
	})
	defer s2.Shutdown(context.Background())
	j3, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := j3.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j3.Status().Cached || res3.HPWL != res1.HPWL {
		t.Fatalf("cache not durable across restart: cached=%v HPWL %v vs %v",
			j3.Status().Cached, res3.HPWL, res1.HPWL)
	}
}

// TestRehydrateFailureMarksJobFailed: a recovered job whose payload can
// no longer be rebuilt fails visibly instead of blocking startup or
// silently vanishing — and the failure is durable, so the next restart
// does not retry it forever.
func TestRehydrateFailureMarksJobFailed(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSubmit(1, "broken", []byte(`{}`), "k"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s := mustNew(t, Options{Engines: 1, EngineWorkers: 1, Store: st2, Rehydrate: storeRehydrate(t)})
	j, ok := s.Job(1)
	if !ok {
		t.Fatal("broken job missing from Jobs")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("broken job never finished")
	}
	if st := j.Status(); st.State != Failed || st.Err == "" {
		t.Fatalf("broken job: %+v, want Failed with an error", st)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The failed outcome hit the WAL: a second recovery sees it terminal.
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].Terminal() {
		t.Fatalf("recovery after rehydrate failure: %+v, want one terminal record", recs)
	}
}
