package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSnapshotIterMatchesResultIterations pins the Snapshot/Result
// ordering contract: for completed, cancelled and timed-out jobs alike,
// the last delivered snapshot's Iter equals Result.Iterations — progress
// consumers and the final result can never disagree about how far a job
// got.
func TestSnapshotIterMatchesResultIterations(t *testing.T) {
	s := mustNew(t, Options{Engines: 3, QueueCap: 8, EngineWorkers: 1, LaunchOverhead: 0, History: 100000})
	defer s.Shutdown(context.Background())

	check := func(name string, j *Job, wantErr error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := j.Wait(ctx)
		if wantErr == nil && err != nil {
			t.Fatalf("%s: err = %v", name, err)
		}
		if wantErr != nil && !errors.Is(err, wantErr) {
			t.Fatalf("%s: err = %v, want %v", name, err, wantErr)
		}
		if res == nil {
			t.Fatalf("%s: no result (partial results must survive %v)", name, wantErr)
		}
		snaps := j.Snapshots()
		if len(snaps) == 0 {
			t.Fatalf("%s: no snapshots", name)
		}
		last := snaps[len(snaps)-1].Iter
		if last != res.Iterations {
			t.Errorf("%s: last snapshot iter %d != Result.Iterations %d", name, last, res.Iterations)
		}
		if first := snaps[0].Iter; first != 1 {
			t.Errorf("%s: first snapshot iter = %d, want 1 (1-based)", name, first)
		}
	}

	// Completed job.
	done, err := s.Submit(Spec{Design: testDesign(t, 150, 11), Options: testOpts(30), Label: "done"})
	if err != nil {
		t.Fatal(err)
	}
	check("completed", done, nil)

	// Cancelled mid-run. MinIter pins the loop so the job cannot converge
	// before we interrupt it.
	longOpts := testOpts(100000)
	longOpts.Sched.MinIter = 100000
	canceled, err := s.Submit(Spec{Design: testDesign(t, 900, 12), Options: longOpts, Label: "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, canceled, Running)
	deadline := time.Now().Add(30 * time.Second)
	for len(canceled.Snapshots()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Cancel(canceled.ID())
	check("cancelled", canceled, context.Canceled)

	// Timed out mid-run.
	timed, err := s.Submit(Spec{Design: testDesign(t, 900, 13), Options: longOpts,
		Label: "timeout", Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	check("timed-out", timed, context.DeadlineExceeded)
}

// TestPerJobTrace checks the Spec.Trace path: a traced job accumulates an
// operator trace (kernels, groups and counter tracks) exportable as valid
// Chrome trace_event JSON, while untraced jobs carry no tracer.
func TestPerJobTrace(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 4, EngineWorkers: 1, LaunchOverhead: 0})
	defer s.Shutdown(context.Background())

	d := testDesign(t, 150, 21)
	traced, err := s.Submit(Spec{Design: d, Options: testOpts(20), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Submit(Spec{Design: d, Options: testOpts(20)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := traced.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if plain.Tracer() != nil {
		t.Error("untraced job has a tracer")
	}
	tr := traced.Tracer()
	if tr == nil {
		t.Fatal("traced job has no tracer")
	}
	counts := tr.KernelLaunchCounts()
	if len(counts) == 0 {
		t.Fatal("trace recorded no kernel launches")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// The traced job's kernels did not leak into the pooled engine after
	// the job: the tracer is detached, so a later untraced job must not
	// have grown the trace. (plain ran on the same single engine.)
	n := tr.Len()
	if n == 0 {
		t.Fatal("trace empty after job")
	}
}

// TestSchedulerRegistryExposition checks that one scrape of the scheduler
// registry carries the runtime series, the per-engine gauges and the
// placer's paper-optimization series, without touching job locks.
func TestSchedulerRegistryExposition(t *testing.T) {
	s := mustNew(t, Options{Engines: 2, QueueCap: 4, EngineWorkers: 1, LaunchOverhead: 0})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(Spec{Design: testDesign(t, 150, 31), Options: testOpts(25)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"xserve_jobs_submitted 1",
		"xserve_jobs_succeeded 1",
		"xserve_gp_iterations_total 25",
		`xserve_engine_workers{engine="0"} 1`,
		`xserve_engine_workers{engine="1"} 1`,
		`xserve_arena_in_use_bytes{engine=`,
		"xserve_job_seconds_count 1",
		"xplace_gp_iterations_total 25",
		"xplace_oc_fused_launches_saved_total",
		"xplace_os_density_skips_total",
		"xplace_oe_map_reuses_total",
		"xplace_stage_omega",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}
}
