package serve

import (
	"context"
	"testing"
	"time"
)

// TestJobsNewestFirst: Jobs() documents "newest first" — the order must
// be descending id, not Go map iteration order (which the original
// implementation leaked, making /jobs listings shuffle between calls).
func TestJobsNewestFirst(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 32, EngineWorkers: 1})
	defer s.Shutdown(context.Background())

	d := testDesign(t, 60, 5)
	const n = 24
	for i := 0; i < n; i++ {
		j, err := s.Submit(Spec{Design: d, Options: testOpts(1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	jobs := s.Jobs()
	if len(jobs) != n {
		t.Fatalf("Jobs() returned %d jobs, want %d", len(jobs), n)
	}
	for i, j := range jobs {
		if want := int64(n - i); j.ID() != want {
			t.Fatalf("Jobs()[%d].ID() = %d, want %d (newest first)", i, j.ID(), want)
		}
	}
}

// TestCancelBeginAtomic: Cancel's queued-check and terminal transition
// are one atomic step. The historical race — Cancel observes Queued, a
// worker begins the job, Cancel's unlocked finish then marks the now
// *running* job Canceled — left jobs in Canceled with a start time but
// no result, the run's outcome silently discarded. Post-fix invariant: a
// Canceled job that started always carries its partial result.
func TestCancelBeginAtomic(t *testing.T) {
	s := mustNew(t, Options{Engines: 2, QueueCap: 4, EngineWorkers: 1})
	defer s.Shutdown(context.Background())

	d := testDesign(t, 80, 2)
	for i := 0; i < 150; i++ {
		j, err := s.Submit(Spec{Design: d, Options: testOpts(40)})
		if err != nil {
			t.Fatal(err)
		}
		// Jitter the cancel across the submit->begin window so some cancels
		// land while queued and some race the worker's begin.
		time.Sleep(time.Duration(i%40) * time.Microsecond)
		s.Cancel(j.ID())
		<-j.Done()
		st := j.Status()
		res, jerr := j.Result()
		switch {
		case st.State == Canceled && st.Started.IsZero():
			if res != nil {
				t.Fatalf("iter %d: cancelled-while-queued job has a result", i)
			}
		case st.State == Canceled:
			if res == nil {
				t.Fatalf("iter %d: job began (started %v) but Canceled with nil result — cancel raced begin and discarded the run (err=%v)",
					i, st.Started, jerr)
			}
		case st.State == Succeeded:
			// Cancel lost the whole race; fine.
		default:
			t.Fatalf("iter %d: unexpected terminal state %v (err=%v)", i, st.State, jerr)
		}
	}
}

// TestShutdownRepeatHonorsCtx: a repeat Shutdown call must honor its own
// context and report the drain outcome. The original implementation made
// any second call block unconditionally on wg.Wait() with no cancel path
// and return nil regardless of how the drain ended.
func TestShutdownRepeatHonorsCtx(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 2, EngineWorkers: 1})
	// The running job must outlive the test unless cancelled: pin MinIter to
	// MaxIter so the convergence stop cannot end it early.
	longOpts := testOpts(500000)
	longOpts.Sched.MinIter = 500000
	j, err := s.Submit(Spec{Design: testDesign(t, 200, 4), Options: longOpts})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running)

	firstDone := make(chan error, 1)
	go func() { firstDone <- s.Shutdown(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let the first call start the drain

	// Second call with an already-expired ctx: must cancel the remaining
	// jobs and return promptly with the cut-short error — not block behind
	// the (effectively unbounded) running job.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := s.Shutdown(expired); err == nil {
		t.Fatal("repeat Shutdown with expired ctx returned nil")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("repeat Shutdown blocked %v despite expired ctx", elapsed)
	}

	// The first caller's drain was cut short; it must say so.
	select {
	case err := <-firstDone:
		if err == nil {
			t.Error("first Shutdown returned nil after its drain was cut short")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("first Shutdown never returned")
	}

	// Later calls keep reporting the recorded outcome, promptly.
	if err := s.Shutdown(expired); err == nil {
		t.Error("post-drain Shutdown swallowed the cut-short outcome")
	}
	if st := j.Status().State; st != Canceled {
		t.Errorf("drained job state = %v, want Canceled", st)
	}
}

// TestShutdownCleanRepeatNil: after a clean drain, repeat calls return
// nil — idempotence must not invent an error.
func TestShutdownCleanRepeatNil(t *testing.T) {
	s := mustNew(t, Options{Engines: 1, QueueCap: 2, EngineWorkers: 1})
	j, err := s.Submit(Spec{Design: testDesign(t, 60, 6), Options: testOpts(5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean Shutdown: %v", err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(expired); err != nil {
		t.Fatalf("repeat Shutdown after clean drain: %v", err)
	}
}
