package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xplace/internal/nn"
)

// quickModel trains a deliberately tiny (and weak) model — these tests
// exercise the registry and the batched inference plumbing, not
// placement quality.
func quickModel(tb testing.TB, seed int64) *nn.Model {
	tb.Helper()
	m := nn.NewModel(nn.Config{Width: 4, Modes: 3, Layers: 1, Seed: seed})
	m.Train(nn.GenerateSamples(4, 16, 16, seed), nn.TrainOptions{Epochs: 2, LR: 1e-3, Seed: seed})
	return m
}

func writeModelFile(tb testing.TB, dir, name string, m *nn.Model) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		tb.Fatal(err)
	}
	return path
}

func TestModelRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeModelFile(t, dir, "fno-a.xfnm", quickModel(t, 1))
	writeModelFile(t, dir, "fno-b.xfnm", quickModel(t, 2))
	if err := os.WriteFile(filepath.Join(dir, ".hidden"), []byte("skip me"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewModelRegistry()
	n, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || reg.Len() != 2 {
		t.Fatalf("loaded %d models (registry %d), want 2", n, reg.Len())
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "fno-a" || names[1] != "fno-b" {
		t.Fatalf("names = %v, want [fno-a fno-b] (extension stripped)", names)
	}

	// A corrupt artifact fails the whole directory load, typed.
	bad := t.TempDir()
	writeModelFile(t, bad, "ok.xfnm", quickModel(t, 3))
	if err := os.WriteFile(filepath.Join(bad, "broken.xfnm"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelRegistry().LoadDir(bad); !errors.Is(err, nn.ErrNotModel) {
		t.Fatalf("corrupt dir load: got %v, want ErrNotModel", err)
	}
}

func TestModelRegistryAcquireRefcounts(t *testing.T) {
	reg := NewModelRegistry()
	var buf bytes.Buffer
	if err := quickModel(t, 1).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("m", &buf); err != nil {
		t.Fatal(err)
	}

	m1, rel1, err := reg.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	m2, rel2, err := reg.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("two acquires returned different model instances; must share one")
	}
	if got := reg.Refs("m"); got != 2 {
		t.Errorf("refs = %d, want 2", got)
	}
	rel1()
	rel1() // double release must not double-decrement
	if got := reg.Refs("m"); got != 1 {
		t.Errorf("refs after release = %d, want 1", got)
	}
	rel2()
	if got := reg.Refs("m"); got != 0 {
		t.Errorf("refs after all releases = %d, want 0", got)
	}

	var unk *UnknownModelError
	if _, _, err := reg.Acquire("ghost"); !errors.As(err, &unk) {
		t.Fatalf("acquire unknown: got %v, want UnknownModelError", err)
	} else if unk.Name != "ghost" || len(unk.Known) != 1 || unk.Known[0] != "m" {
		t.Errorf("error detail %+v, want name ghost and known [m]", unk)
	}
}

func TestSubmitRejectsUnknownModel(t *testing.T) {
	reg := NewModelRegistry()
	var buf bytes.Buffer
	if err := quickModel(t, 1).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("good", &buf); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Options{Engines: 1, Models: reg})
	defer s.Shutdown(context.Background())

	d := testDesign(t, 60, 3)
	var unk *UnknownModelError
	if _, err := s.Submit(Spec{Design: d, Options: testOpts(50), Model: "nope"}); !errors.As(err, &unk) {
		t.Fatalf("submit unknown model: got %v, want UnknownModelError", err)
	}

	// No registry at all: every model request is unknown.
	s2 := mustNew(t, Options{Engines: 1})
	defer s2.Shutdown(context.Background())
	if _, err := s2.Submit(Spec{Design: d, Options: testOpts(50), Model: "good"}); !errors.As(err, &unk) {
		t.Fatalf("submit without registry: got %v, want UnknownModelError", err)
	}
}

// TestBatchedInferenceSharedAcrossJobs is the serving acceptance gate:
// four concurrent jobs naming the same model share one registry entry
// and drain their PredictField calls through the scheduler's single
// batched-inference goroutine (xserve_nn_batch_total > 0; run under
// -race in the CI nn lane).
func TestBatchedInferenceSharedAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	writeModelFile(t, dir, "shared.xfnm", quickModel(t, 1))
	reg := NewModelRegistry()
	if _, err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Options{
		Engines:       4,
		EngineWorkers: 1,
		Models:        reg,
		// A wide window so the four jobs' early-iteration predictions
		// actually coalesce.
		ModelBatchWindow: 2 * time.Millisecond,
	})

	d := testDesign(t, 300, 7)
	jobs := make([]*Job, 4)
	for i := range jobs {
		j, err := s.Submit(Spec{Design: d, Options: testOpts(400), Model: "shared", Label: "nn"})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	batches := s.batcher.batches.Value()
	requests := s.batcher.requests.Value()
	coalesced := s.batcher.coalesced.Value()
	if batches <= 0 {
		t.Error("xserve_nn_batch_total = 0, want > 0")
	}
	if requests < batches {
		t.Errorf("requests %d < batches %d", requests, batches)
	}
	if got := s.nnJobs.Value(); got != 4 {
		t.Errorf("xserve_nn_jobs_total = %d, want 4", got)
	}
	if got := reg.Refs("shared"); got != 0 {
		t.Errorf("model refs after drain = %d, want 0", got)
	}
	// All four jobs converged identically: same design, same model, same
	// seed, and the batcher must not have mixed up outputs.
	ref, _ := jobs[0].Result()
	for _, j := range jobs[1:] {
		res, _ := j.Result()
		if res.HPWL != ref.HPWL || res.Iterations != ref.Iterations {
			t.Errorf("job %d diverged: %d iters HPWL %v vs %d iters HPWL %v",
				j.ID(), res.Iterations, res.HPWL, ref.Iterations, ref.HPWL)
		}
	}
	t.Logf("batched inference: %d requests in %d batches (%d coalesced)",
		requests, batches, coalesced)
}
