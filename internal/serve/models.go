package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"xplace/internal/nn"
	"xplace/internal/obs"
)

// UnknownModelError is returned by Submit (and by a recovered job's run)
// when a request names a field model the registry does not hold. The
// daemon maps it to HTTP 400 — the request can never succeed on this
// node as-is.
type UnknownModelError struct {
	Name  string
	Known []string
}

func (e *UnknownModelError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("serve: unknown model %q (no models loaded)", e.Name)
	}
	return fmt.Sprintf("serve: unknown model %q (loaded: %s)", e.Name, strings.Join(e.Known, ", "))
}

// ModelRegistry holds the named, immutable field models a scheduler can
// attach to jobs. Models are loaded once (at daemon startup, from the
// -models dir) and shared by every job that names them — the FNO forward
// pass is read-only, so one copy serves any number of concurrent jobs.
// Acquire/release refcounts track how many running jobs hold each model.
type ModelRegistry struct {
	mu     sync.Mutex
	models map[string]*modelEntry
}

type modelEntry struct {
	model *nn.Model
	refs  int64
}

// NewModelRegistry returns an empty registry.
func NewModelRegistry() *ModelRegistry {
	return &ModelRegistry{models: map[string]*modelEntry{}}
}

// Load reads one model artifact from r and registers it under name.
// Loading a name twice is an error — models are immutable for the
// registry's lifetime so jobs never observe a swap mid-run.
func (g *ModelRegistry) Load(name string, r io.Reader) error {
	m, err := nn.Load(r)
	if err != nil {
		return fmt.Errorf("model %q: %w", name, err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.models[name]; dup {
		return fmt.Errorf("model %q: already loaded", name)
	}
	g.models[name] = &modelEntry{model: m}
	return nil
}

// LoadDir loads every regular file in dir as a model artifact; the model
// name is the file name without its extension ("fno32.xfnm" -> "fno32").
// Any unreadable or invalid artifact fails the whole load — a daemon
// must not come up silently missing a model it was pointed at.
func (g *ModelRegistry) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ent := range entries {
		if ent.IsDir() || strings.HasPrefix(ent.Name(), ".") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return n, err
		}
		name := strings.TrimSuffix(ent.Name(), filepath.Ext(ent.Name()))
		err = g.Load(name, f)
		f.Close()
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Names returns the loaded model names, sorted.
func (g *ModelRegistry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.models))
	for name := range g.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of loaded models.
func (g *ModelRegistry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.models)
}

// Has reports whether name is loaded.
func (g *ModelRegistry) Has(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.models[name]
	return ok
}

// Model returns the shared immutable model for name (read-only use).
func (g *ModelRegistry) Model(name string) (*nn.Model, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.models[name]
	if !ok {
		return nil, false
	}
	return e.model, true
}

// Acquire takes a refcounted handle on name for the duration of a job.
// The release func must be called exactly once when the job is done with
// the model.
func (g *ModelRegistry) Acquire(name string) (*nn.Model, func(), error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.models[name]
	if !ok {
		known := make([]string, 0, len(g.models))
		for n := range g.models {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, nil, &UnknownModelError{Name: name, Known: known}
	}
	e.refs++
	var once sync.Once
	release := func() {
		once.Do(func() {
			g.mu.Lock()
			e.refs--
			g.mu.Unlock()
		})
	}
	return e.model, release, nil
}

// Refs returns the live reference count for name (0 for unknown names).
func (g *ModelRegistry) Refs(name string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.models[name]; ok {
		return e.refs
	}
	return 0
}

func (g *ModelRegistry) totalRefs() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, e := range g.models {
		n += e.refs
	}
	return n
}

// defaultBatchWindow is the micro-batch coalescing window: after the
// first PredictField request arrives, the batcher waits this long for
// requests from other concurrent jobs before running the batch.
const defaultBatchWindow = 500 * time.Microsecond

// maxNNBatch bounds one micro-batch (more engines than this on one
// scheduler would be unusual).
const maxNNBatch = 64

// predictReq is one job's blocking PredictField call, in flight to the
// batcher.
type predictReq struct {
	model  *nn.Model
	dens   []float64
	nx, ny int
	ex, ey []float64
	done   chan struct{}
}

// nnBatcher serializes all PredictField calls of a scheduler through one
// goroutine, coalescing requests that arrive within the batch window
// into a micro-batch. Concurrent jobs therefore share a single inference
// path (and the models' read-only weights) instead of racing N forward
// passes across the engine workers' caches.
type nnBatcher struct {
	reqs   chan *predictReq
	stop   chan struct{}
	done   chan struct{}
	window time.Duration

	batches   *obs.Counter
	requests  *obs.Counter
	coalesced *obs.Counter
}

func newNNBatcher(window time.Duration, reg *obs.Registry) *nnBatcher {
	if window <= 0 {
		window = defaultBatchWindow
	}
	b := &nnBatcher{
		reqs:   make(chan *predictReq, maxNNBatch),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		window: window,
		batches: reg.Counter("xserve_nn_batch_total",
			"micro-batches executed by the shared inference path"),
		requests: reg.Counter("xserve_nn_batch_requests_total",
			"PredictField calls served by the shared inference path"),
		coalesced: reg.Counter("xserve_nn_batch_coalesced_total",
			"PredictField calls that shared a micro-batch with another job"),
	}
	go b.run()
	return b
}

func (b *nnBatcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case r := <-b.reqs:
			batch := b.collect(r)
			for _, q := range batch {
				p := nn.Predictor{M: q.model}
				p.PredictField(q.dens, q.nx, q.ny, q.ex, q.ey)
				close(q.done)
			}
			b.batches.Inc()
			b.requests.Add(int64(len(batch)))
			if len(batch) > 1 {
				b.coalesced.Add(int64(len(batch)))
			}
		}
	}
}

// collect gathers the micro-batch: the first request plus whatever other
// jobs submit within the window.
func (b *nnBatcher) collect(first *predictReq) []*predictReq {
	batch := []*predictReq{first}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(batch) < maxNNBatch {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// shutdown stops the batcher after the last worker has exited (no
// requests can be in flight).
func (b *nnBatcher) shutdown() {
	close(b.stop)
	<-b.done
}

// batchedPredictor adapts one job's placer FieldPredictor hook onto the
// scheduler's shared batcher. PredictField blocks the job's worker until
// the batch containing its request has run, so the density/field buffers
// (owned by the job's placer) are never touched concurrently.
type batchedPredictor struct {
	b     *nnBatcher
	model *nn.Model
}

func (p *batchedPredictor) PredictField(density []float64, nx, ny int, exOut, eyOut []float64) {
	req := &predictReq{model: p.model, dens: density, nx: nx, ny: ny, ex: exOut, ey: eyOut,
		done: make(chan struct{})}
	p.b.reqs <- req
	<-req.done
}
