// Package serve is the placement job runtime: a bounded scheduler that
// runs many global-placement jobs against a pool of kernel engines — the
// production shape both DG-RePlAce (batched analytical placement) and
// RL-guided placement (fleets of rollouts per policy step) assume, where
// the unit of work is a *fleet* of placements rather than one.
//
// Architecture:
//
//   - Submit puts a Job on a bounded queue (backpressure: a full queue
//     rejects with ErrQueueFull instead of blocking the caller).
//   - A fixed set of workers drains the queue. Each worker owns one
//     kernel.Engine for its whole life, so N jobs share M engines with no
//     two jobs ever driving the same engine concurrently — engine state
//     (worker pool, arena) is reused across jobs, not contended.
//   - Every job runs under its own context.Context (per-job timeout plus
//     explicit Cancel); the placer checks it between kernel launches, and
//     the job's arena-backed scratch is released on every exit path, so a
//     killed job returns the engine arena to its pre-job in-use baseline.
//   - Per-iteration progress (iter, HPWL, overflow, lambda, gamma, stage)
//     is kept in a bounded ring and fanned out to subscribers (the SSE
//     stream of cmd/xserve).
//   - Shutdown stops intake, drains queued and running jobs (cancelling
//     the remainder when its context expires), then tears down the
//     engines — no goroutines survive it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"xplace/internal/kernel"
	"xplace/internal/netlist"
	"xplace/internal/obs"
	"xplace/internal/placer"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity (backpressure: the caller should retry later or shed load).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned by Submit after Shutdown has begun.
	ErrDraining = errors.New("serve: scheduler is draining")
)

// State is a job's lifecycle state.
type State int32

// Job lifecycle states.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Canceled
	TimedOut
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	case TimedOut:
		return "timed-out"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Succeeded }

// Spec describes one placement job.
type Spec struct {
	// Design is the finished design to place. The placer clones it before
	// augmenting, so one design may back many concurrent jobs.
	Design *netlist.Design
	// Options configures global placement (Progress is overwritten by the
	// runtime's own hook).
	Options placer.Options
	// Timeout bounds the job's run time (measured from run start, not
	// submission). 0 falls back to the scheduler's DefaultTimeout.
	Timeout time.Duration
	// Label is a free-form tag echoed in Status.
	Label string
	// Trace, when true, records a per-job operator trace: the runtime
	// attaches a fresh obs.Tracer to the worker's engine and the placer for
	// the job's duration, retrievable with Job.Tracer (the /jobs/{id}/trace
	// endpoint). Tracing buffers every kernel launch in memory; reserve it
	// for diagnosis, not fleet-wide defaults.
	Trace bool
}

// Options configures a Scheduler.
type Options struct {
	// Engines is the engine-pool size = max concurrently running jobs
	// (default 2).
	Engines int
	// QueueCap bounds the submit queue (default 16). A full queue rejects.
	QueueCap int
	// EngineWorkers is the kernel parallelism per engine (0 = NumCPU).
	// Fleets should divide the machine: Engines*EngineWorkers ~ NumCPU.
	EngineWorkers int
	// LaunchOverhead is the simulated kernel-launch cost per engine
	// (negative = default, 0 = off), as in kernel.Options.
	LaunchOverhead time.Duration
	// DefaultTimeout bounds jobs that do not set Spec.Timeout (0 = none).
	DefaultTimeout time.Duration
	// History is the per-job progress ring capacity (default 512).
	History int
	// Metrics is the registry the scheduler publishes its xserve_* series
	// to (and hands to every job's placer for the xplace_* series). Nil
	// creates a private registry, retrievable with Scheduler.Registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Engines <= 0 {
		o.Engines = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.History <= 0 {
		o.History = 512
	}
	return o
}

// Job is one placement unit of work. All accessors are safe for concurrent
// use.
type Job struct {
	id    int64
	label string
	spec  Spec

	cancel context.CancelFunc // fires the job's base context
	base   context.Context

	mu        sync.Mutex
	state     State
	err       error
	result    *placer.Result
	tracer    *obs.Tracer // per-job trace (Spec.Trace); set when running
	snaps     []placer.Snapshot // progress ring
	snapStart int               // ring read index
	snapCount int               // valid entries in ring
	total     int               // snapshots ever observed
	subs      map[int]chan placer.Snapshot
	nextSub   int
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{} // closed on terminal state
}

// Status is a point-in-time copy of a job's externally visible state.
type Status struct {
	ID        int64
	Label     string
	State     State
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Progress is the most recent iteration snapshot (zero until the
	// first iteration completes).
	Progress placer.Snapshot
	// Iterations / HPWL / Overflow are filled from the result once the job
	// finishes (for cancelled/timed-out jobs: the partial result).
	Iterations int
	HPWL       float64
	Overflow   float64
}

// ID returns the job id assigned at submission.
func (j *Job) ID() int64 { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the placement result and the job's error, if any. A
// succeeded job has a result and a nil error; a cancelled or timed-out job
// has BOTH — the partial result of the iterations that completed (its
// Iterations equals the last delivered Snapshot.Iter) alongside the
// context error. Only a job that failed outright (or was cancelled while
// still queued) has a nil result.
func (j *Job) Result() (*placer.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Tracer returns the job's operator trace, or nil when the job was not
// submitted with Spec.Trace (or has not started running yet). The tracer
// keeps accumulating until the job finishes; reading it concurrently is
// safe (recording and export take the tracer's own lock).
func (j *Job) Tracer() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

func (j *Job) setTracer(t *obs.Tracer) {
	j.mu.Lock()
	j.tracer = t
	j.mu.Unlock()
}

// Status returns a snapshot of the job's state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Label:     j.label,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	if j.snapCount > 0 {
		st.Progress = j.snaps[(j.snapStart+j.snapCount-1)%len(j.snaps)]
	}
	if j.result != nil {
		st.Iterations = j.result.Iterations
		st.HPWL = j.result.HPWL
		st.Overflow = j.result.Overflow
	}
	return st
}

// Snapshots returns the retained progress history in iteration order (the
// ring keeps the most recent Options.History entries).
func (j *Job) Snapshots() []placer.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]placer.Snapshot, j.snapCount)
	for i := 0; i < j.snapCount; i++ {
		out[i] = j.snaps[(j.snapStart+i)%len(j.snaps)]
	}
	return out
}

// Subscribe registers a live progress listener with the given channel
// buffer. Snapshots that arrive while the buffer is full are dropped for
// that subscriber (a slow SSE client must not stall the placement loop).
// The channel is closed when the job finishes or unsubscribe is called.
func (j *Job) Subscribe(buf int) (<-chan placer.Snapshot, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan placer.Snapshot, buf)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
}

// Wait blocks until the job finishes or ctx is done, returning the result
// and job error (or ctx.Err() if ctx wins).
func (j *Job) Wait(ctx context.Context) (*placer.Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// observe appends one progress snapshot to the ring and fans it out.
func (j *Job) observe(s placer.Snapshot) {
	j.mu.Lock()
	if len(j.snaps) > 0 {
		if j.snapCount < len(j.snaps) {
			j.snaps[(j.snapStart+j.snapCount)%len(j.snaps)] = s
			j.snapCount++
		} else {
			j.snaps[j.snapStart] = s
			j.snapStart = (j.snapStart + 1) % len(j.snaps)
		}
	}
	j.total++
	for _, ch := range j.subs {
		select {
		case ch <- s:
		default: // slow subscriber: drop rather than stall the GP loop
		}
	}
	j.mu.Unlock()
}

// begin transitions Queued -> Running; ok is false when the job was
// cancelled while queued.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = time.Now()
	return true
}

// finish moves the job to its terminal state, classifying the error. It
// reports whether this call performed the transition (false when another
// goroutine — e.g. Cancel racing the worker — got there first).
func (j *Job) finish(res *placer.Result, err error) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.result, j.err = res, err
	switch {
	case err == nil:
		j.state = Succeeded
	case errors.Is(err, context.DeadlineExceeded):
		j.state = TimedOut
	case errors.Is(err, context.Canceled):
		j.state = Canceled
	default:
		j.state = Failed
	}
	j.finished = time.Now()
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// Counters is a snapshot of the scheduler's cumulative accounting.
type Counters struct {
	Submitted  int64
	Rejected   int64
	Succeeded  int64
	Failed     int64
	Canceled   int64
	TimedOut   int64
	Active     int64 // currently running jobs
	Queued     int64 // currently queued jobs
	Iterations int64 // GP iterations completed across all finished jobs
	Launches   int64 // kernel launches across all finished jobs
}

// EngineStatus is one pooled engine's live accounting.
type EngineStatus struct {
	Workers int
	Stats   kernel.Stats
}

// Scheduler runs placement jobs from a bounded queue over an engine pool.
// Its cumulative accounting lives in an obs.Registry (the xserve_* series),
// so the daemon's /metrics scrape renders the same instruments the
// scheduler updates — no parallel hand-rolled counter set.
type Scheduler struct {
	opts    Options
	queue   chan *Job
	engines []*kernel.Engine
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[int64]*Job
	nextID   int64
	draining bool

	reg        *obs.Registry
	submitted  *obs.Counter
	rejected   *obs.Counter
	succeeded  *obs.Counter
	failed     *obs.Counter
	canceled   *obs.Counter
	timedOut   *obs.Counter
	active     *obs.Gauge
	iterations *obs.Counter
	launches   *obs.Counter
	jobSeconds *obs.Histogram
}

// New starts a scheduler with its engine pool and worker set.
func New(opts Options) *Scheduler {
	o := opts.withDefaults()
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Scheduler{
		opts:  o,
		queue: make(chan *Job, o.QueueCap),
		jobs:  make(map[int64]*Job),
		reg:   reg,
	}
	s.submitted = reg.Counter("xserve_jobs_submitted", "jobs accepted by Submit")
	s.rejected = reg.Counter("xserve_jobs_rejected", "jobs rejected by a full queue")
	s.succeeded = reg.Counter("xserve_jobs_succeeded", "jobs finished successfully")
	s.failed = reg.Counter("xserve_jobs_failed", "jobs finished with an error")
	s.canceled = reg.Counter("xserve_jobs_canceled", "jobs cancelled")
	s.timedOut = reg.Counter("xserve_jobs_timed_out", "jobs that hit their timeout")
	s.active = reg.Gauge("xserve_jobs_active", "currently running jobs")
	reg.GaugeFunc("xserve_jobs_queued", "currently queued jobs",
		func() float64 { return float64(len(s.queue)) })
	s.iterations = reg.Counter("xserve_gp_iterations_total", "GP iterations across finished jobs")
	s.launches = reg.Counter("xserve_kernel_launches_total", "kernel launches across finished jobs")
	s.jobSeconds = reg.Histogram("xserve_job_seconds", "job run time (start to finish)", nil)
	for i := 0; i < o.Engines; i++ {
		eng := kernel.New(kernel.Options{
			Workers:        o.EngineWorkers,
			LaunchOverhead: o.LaunchOverhead,
		})
		s.engines = append(s.engines, eng)
		s.registerEngineGauges(i, eng)
		s.wg.Add(1)
		go s.worker(eng)
	}
	return s
}

// registerEngineGauges publishes one pooled engine's live accounting as
// scrape-time gauges. The functions read engine state under the engine's
// own locks only — a scrape never touches job locks, so it cannot stall
// (or be stalled by) a running placement.
func (s *Scheduler) registerEngineGauges(i int, eng *kernel.Engine) {
	label := fmt.Sprintf("{engine=%q}", fmt.Sprint(i))
	gauge := func(name, help string, fn func() float64) {
		s.reg.GaugeFunc(name+label, help, fn)
	}
	gauge("xserve_engine_workers", "kernel parallelism per engine",
		func() float64 { return float64(eng.Workers()) })
	gauge("xserve_engine_launches", "engine launches in the current stats window",
		func() float64 { return float64(eng.Stats().Launches) })
	gauge("xserve_engine_syncs", "engine syncs in the current stats window",
		func() float64 { return float64(eng.Stats().Syncs) })
	gauge("xserve_arena_in_use_bytes", "arena bytes checked out",
		func() float64 { return float64(eng.ArenaStats().InUse) })
	gauge("xserve_arena_pooled_bytes", "arena bytes pooled",
		func() float64 { return float64(eng.ArenaStats().Pooled) })
	gauge("xserve_arena_peak_bytes", "arena peak bytes",
		func() float64 { return float64(eng.ArenaStats().Peak) })
	gauge("xserve_arena_hits", "arena free-list hits",
		func() float64 { return float64(eng.ArenaStats().Hits) })
	gauge("xserve_arena_misses", "arena free-list misses",
		func() float64 { return float64(eng.ArenaStats().Misses) })
}

// Registry returns the scheduler's metrics registry (for the daemon's
// /metrics endpoint, or for callers that passed Options.Metrics and want
// the same handle back).
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// Submit enqueues a job. It never blocks: a full queue returns
// ErrQueueFull and a draining scheduler ErrDraining.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Design == nil || !spec.Design.Finished() {
		return nil, errors.New("serve: spec needs a finished design")
	}
	base, cancel := context.WithCancel(context.Background())
	j := &Job{
		label:     spec.Label,
		spec:      spec,
		base:      base,
		cancel:    cancel,
		snaps:     make([]placer.Snapshot, s.opts.History),
		subs:      make(map[int]chan placer.Snapshot),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	s.nextID++
	j.id = s.nextID
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.submitted.Inc()
	return j, nil
}

// Job looks a job up by id.
func (s *Scheduler) Job(id int64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job, newest first.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	for i, k := 0, len(out)-1; i < k; i, k = i+1, k-1 {
		out[i], out[k] = out[k], out[i]
	}
	return out
}

// Cancel cancels a job: a queued job finishes immediately as Canceled, a
// running one aborts at its next between-launch cancellation point.
// Returns false for unknown ids.
func (s *Scheduler) Cancel(id int64) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel()
	// A queued job has no worker to notice the context; finish it here so
	// Cancel is immediate regardless of queue position. (finish is a no-op
	// if a worker got there first or the job already ended.)
	j.mu.Lock()
	queued := j.state == Queued
	j.mu.Unlock()
	if queued {
		s.jobFinished(j, nil, context.Canceled)
	}
	return true
}

// jobFinished records the terminal transition exactly once and updates the
// scheduler counters from the job's final state.
func (s *Scheduler) jobFinished(j *Job, res *placer.Result, err error) {
	if !j.finish(res, err) {
		return // another goroutine (Cancel vs worker) won the transition
	}
	switch st := j.Status().State; st {
	case Succeeded:
		s.succeeded.Inc()
	case Failed:
		s.failed.Inc()
	case Canceled:
		s.canceled.Inc()
	case TimedOut:
		s.timedOut.Inc()
	}
	if res != nil {
		s.iterations.Add(int64(res.Iterations))
		s.launches.Add(res.Stats.Launches)
	}
	if st := j.Status(); !st.Started.IsZero() && !st.Finished.IsZero() {
		s.jobSeconds.Observe(st.Finished.Sub(st.Started).Seconds())
	}
}

// worker owns one engine and drains the queue until Shutdown closes it.
func (s *Scheduler) worker(eng *kernel.Engine) {
	defer s.wg.Done()
	defer eng.Close()
	for j := range s.queue {
		s.runJob(eng, j)
	}
}

// runJob executes one job on eng under the job's context.
func (s *Scheduler) runJob(eng *kernel.Engine, j *Job) {
	if !j.begin() {
		return // cancelled while queued
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	timeout := j.spec.Timeout
	if timeout == 0 {
		timeout = s.opts.DefaultTimeout
	}
	ctx := j.base
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opts := j.spec.Options
	opts.Progress = j.observe
	opts.Metrics = s.reg
	if j.spec.Trace {
		// Per-job trace: the tracer sees this engine's launches only while
		// this job runs (workers run one job at a time), so the trace window
		// is exactly the job. Detach before the engine returns to the pool.
		t := obs.NewTracer()
		j.setTracer(t)
		eng.SetTracer(t)
		defer eng.SetTracer(nil)
		opts.Tracer = t
	}
	p, err := placer.New(j.spec.Design, eng, opts)
	if err != nil {
		s.jobFinished(j, nil, err)
		return
	}
	// Close on every exit path: a cancelled or timed-out run must return
	// its arena-backed scratch so the pooled engine's in-use bytes fall
	// back to the pre-job baseline.
	defer p.Close()
	res, err := p.RunContext(ctx)
	s.jobFinished(j, res, err)
}

// Shutdown stops intake and drains the scheduler: queued and running jobs
// are allowed to finish until ctx is done, at which point every remaining
// job is cancelled. It returns once all workers have exited and the pooled
// engines are closed; the error is ctx.Err() when the drain was cut short.
// Shutdown is idempotent (later calls return immediately).
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	close(s.queue) // workers exit after draining remaining jobs
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		for _, j := range s.Jobs() {
			s.Cancel(j.ID())
		}
		<-done // cancellation aborts jobs between launches; workers exit
	}
	return err
}

// Counters returns the cumulative scheduler accounting (a typed view over
// the same registry-backed instruments /metrics scrapes).
func (s *Scheduler) Counters() Counters {
	return Counters{
		Submitted:  s.submitted.Value(),
		Rejected:   s.rejected.Value(),
		Succeeded:  s.succeeded.Value(),
		Failed:     s.failed.Value(),
		Canceled:   s.canceled.Value(),
		TimedOut:   s.timedOut.Value(),
		Active:     int64(s.active.Value()),
		Queued:     int64(len(s.queue)),
		Iterations: s.iterations.Value(),
		Launches:   s.launches.Value(),
	}
}

// EngineStatuses returns each pooled engine's live accounting (the stats
// window is the engine's current/most recent job, the arena gauges are
// cumulative).
func (s *Scheduler) EngineStatuses() []EngineStatus {
	out := make([]EngineStatus, len(s.engines))
	for i, e := range s.engines {
		out[i] = EngineStatus{Workers: e.Workers(), Stats: e.Stats()}
	}
	return out
}
