// Package serve is the placement job runtime: a bounded scheduler that
// runs many global-placement jobs against a pool of kernel engines — the
// production shape both DG-RePlAce (batched analytical placement) and
// RL-guided placement (fleets of rollouts per policy step) assume, where
// the unit of work is a *fleet* of placements rather than one.
//
// Architecture:
//
//   - Submit puts a Job on a bounded queue (backpressure: a full queue
//     rejects with ErrQueueFull instead of blocking the caller).
//   - A fixed set of workers drains the queue. Each worker owns one
//     kernel.Engine for its whole life, so N jobs share M engines with no
//     two jobs ever driving the same engine concurrently — engine state
//     (worker pool, arena) is reused across jobs, not contended.
//   - Every job runs under its own context.Context (per-job timeout plus
//     explicit Cancel); the placer checks it between kernel launches, and
//     the job's arena-backed scratch is released on every exit path, so a
//     killed job returns the engine arena to its pre-job in-use baseline.
//   - Per-iteration progress (iter, HPWL, overflow, lambda, gamma, stage)
//     is kept in a bounded ring and fanned out to subscribers (the SSE
//     stream of cmd/xserve).
//   - Shutdown stops intake, drains queued and running jobs (cancelling
//     the remainder when its context expires), then tears down the
//     engines — no goroutines survive it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xplace/internal/jobstore"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
	"xplace/internal/obs"
	"xplace/internal/placer"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity (backpressure: the caller should retry later or shed load).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned by Submit after Shutdown has begun.
	ErrDraining = errors.New("serve: scheduler is draining")
)

// State is a job's lifecycle state.
type State int32

// Job lifecycle states.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Canceled
	TimedOut
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	case TimedOut:
		return "timed-out"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Succeeded }

// Spec describes one placement job.
type Spec struct {
	// Design is the finished design to place. The placer clones it before
	// augmenting, so one design may back many concurrent jobs.
	Design *netlist.Design
	// Options configures global placement (Progress is overwritten by the
	// runtime's own hook).
	Options placer.Options
	// Timeout bounds the job's run time (measured from run start, not
	// submission). 0 falls back to the scheduler's DefaultTimeout.
	Timeout time.Duration
	// Label is a free-form tag echoed in Status.
	Label string
	// Trace, when true, records a per-job operator trace: the runtime
	// attaches a fresh obs.Tracer to the worker's engine and the placer for
	// the job's duration, retrievable with Job.Tracer (the /jobs/{id}/trace
	// endpoint). Tracing buffers every kernel launch in memory; reserve it
	// for diagnosis, not fleet-wide defaults.
	Trace bool
	// Payload is the job's durable, replayable form — the tiny spec the
	// design and options were derived from (e.g. the daemon's canonical
	// request JSON), NOT the expanded netlist. When the scheduler has a
	// store, Payload is written to the WAL at submission and handed to
	// Options.Rehydrate after a restart to rebuild this Spec. Empty payload
	// = job is not recoverable (it is still durable as a terminal record).
	Payload []byte
	// Key is the job's content address for the result cache: identical
	// (design, options) submissions must produce identical keys. When the
	// scheduler has a store and Key is non-empty, a succeeded job's result
	// is cached under Key and later submissions with the same Key are
	// served from the cache without running an engine. Empty disables
	// caching for this job.
	Key string
	// Model names a field model from the scheduler's ModelRegistry to
	// blend into the job's early placement stage (§3.3). Empty runs the
	// pure numerical flow. Submit rejects names the registry does not
	// hold with UnknownModelError.
	Model string
}

// Options configures a Scheduler.
type Options struct {
	// Engines is the engine-pool size = max concurrently running jobs
	// (default 2).
	Engines int
	// QueueCap bounds the submit queue (default 16). A full queue rejects.
	QueueCap int
	// EngineWorkers is the kernel parallelism per engine (0 = NumCPU).
	// Fleets should divide the machine: Engines*EngineWorkers ~ NumCPU.
	EngineWorkers int
	// LaunchOverhead is the simulated kernel-launch cost per engine
	// (negative = default, 0 = off), as in kernel.Options.
	LaunchOverhead time.Duration
	// DefaultTimeout bounds jobs that do not set Spec.Timeout (0 = none).
	DefaultTimeout time.Duration
	// History is the per-job progress ring capacity (default 512).
	History int
	// Metrics is the registry the scheduler publishes its xserve_* series
	// to (and hands to every job's placer for the xplace_* series). Nil
	// creates a private registry, retrievable with Scheduler.Registry.
	Metrics *obs.Registry
	// Store makes the scheduler durable: job transitions are written to the
	// store's WAL, running jobs checkpoint every CheckpointEvery iterations,
	// succeeded keyed jobs populate the result cache, and New replays the
	// WAL — re-enqueuing every job that never reached a terminal state,
	// resuming checkpointed ones mid-trajectory. Nil = fully in-memory.
	Store *jobstore.Store
	// Rehydrate rebuilds a Spec from the durable payload recorded at
	// submission. Required for recovery: a non-terminal recovered job with
	// no working Rehydrate is marked failed rather than silently dropped.
	Rehydrate func(payload []byte) (Spec, error)
	// CheckpointEvery is the running-job checkpoint period in GP iterations
	// (default 25 when a Store is set; <0 disables checkpointing).
	CheckpointEvery int
	// Models is the registry of named field models jobs may select via
	// Spec.Model (the daemon's -models dir). Nil rejects every model
	// request. When set, all jobs on this scheduler share one batched
	// inference path (see nnBatcher).
	Models *ModelRegistry
	// ModelBatchWindow is the micro-batch coalescing window of the shared
	// inference path (0 = 500µs default).
	ModelBatchWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.Engines <= 0 {
		o.Engines = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.History <= 0 {
		o.History = 512
	}
	if o.Store != nil && o.CheckpointEvery == 0 {
		o.CheckpointEvery = 25
	}
	return o
}

// Job is one placement unit of work. All accessors are safe for concurrent
// use.
type Job struct {
	id    int64
	label string
	spec  Spec

	cancel context.CancelFunc // fires the job's base context
	base   context.Context

	cached    bool // result served from the store's result cache
	recovered bool // job re-materialized from the WAL after a restart
	resumed   bool // recovered mid-trajectory from a checkpoint

	mu        sync.Mutex
	fallback  string // strategy that rescued a diverged run ("lbub"), else ""
	state     State
	err       error
	result    *placer.Result
	tracer    *obs.Tracer // per-job trace (Spec.Trace); set when running
	snaps     []placer.Snapshot // progress ring
	snapStart int               // ring read index
	snapCount int               // valid entries in ring
	total     int               // snapshots ever observed
	subs      map[int]chan placer.Snapshot
	nextSub   int
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{} // closed on terminal state
}

// Status is a point-in-time copy of a job's externally visible state.
type Status struct {
	ID        int64
	Label     string
	State     State
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Progress is the most recent iteration snapshot (zero until the
	// first iteration completes).
	Progress placer.Snapshot
	// Iterations / HPWL / Overflow are filled from the result once the job
	// finishes (for cancelled/timed-out jobs: the partial result).
	Iterations int
	HPWL       float64
	Overflow   float64
	// Cached: the result came from the durable result cache — no engine ran.
	Cached bool
	// Recovered: the job was re-materialized from the WAL after a restart;
	// Resumed additionally means it continued mid-trajectory from a
	// checkpoint rather than restarting at iteration 0.
	Recovered bool
	Resumed   bool
	// Fallback names the strategy that rescued the job after the primary
	// one diverged ("lbub"); empty for a first-try result. A fallback
	// result is a lower-quality draft and is never entered into the
	// result cache.
	Fallback string
}

// ID returns the job id assigned at submission.
func (j *Job) ID() int64 { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the placement result and the job's error, if any. A
// succeeded job has a result and a nil error; a cancelled or timed-out job
// has BOTH — the partial result of the iterations that completed (its
// Iterations equals the last delivered Snapshot.Iter) alongside the
// context error. Only a job that failed outright (or was cancelled while
// still queued) has a nil result.
func (j *Job) Result() (*placer.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Tracer returns the job's operator trace, or nil when the job was not
// submitted with Spec.Trace (or has not started running yet). The tracer
// keeps accumulating until the job finishes; reading it concurrently is
// safe (recording and export take the tracer's own lock).
func (j *Job) Tracer() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

func (j *Job) setTracer(t *obs.Tracer) {
	j.mu.Lock()
	j.tracer = t
	j.mu.Unlock()
}

// Status returns a snapshot of the job's state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Label:     j.label,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Cached:    j.cached,
		Recovered: j.recovered,
		Resumed:   j.resumed,
		Fallback:  j.fallback,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	if j.snapCount > 0 {
		st.Progress = j.snaps[(j.snapStart+j.snapCount-1)%len(j.snaps)]
	}
	if j.result != nil {
		st.Iterations = j.result.Iterations
		st.HPWL = j.result.HPWL
		st.Overflow = j.result.Overflow
	}
	return st
}

// Snapshots returns the retained progress history in iteration order (the
// ring keeps the most recent Options.History entries).
func (j *Job) Snapshots() []placer.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]placer.Snapshot, j.snapCount)
	for i := 0; i < j.snapCount; i++ {
		out[i] = j.snaps[(j.snapStart+i)%len(j.snaps)]
	}
	return out
}

// Subscribe registers a live progress listener with the given channel
// buffer. Snapshots that arrive while the buffer is full are dropped for
// that subscriber (a slow SSE client must not stall the placement loop).
// The channel is closed when the job finishes or unsubscribe is called.
func (j *Job) Subscribe(buf int) (<-chan placer.Snapshot, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan placer.Snapshot, buf)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
}

// Wait blocks until the job finishes or ctx is done, returning the result
// and job error (or ctx.Err() if ctx wins).
func (j *Job) Wait(ctx context.Context) (*placer.Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// observe appends one progress snapshot to the ring and fans it out.
func (j *Job) observe(s placer.Snapshot) {
	j.mu.Lock()
	if len(j.snaps) > 0 {
		if j.snapCount < len(j.snaps) {
			j.snaps[(j.snapStart+j.snapCount)%len(j.snaps)] = s
			j.snapCount++
		} else {
			j.snaps[j.snapStart] = s
			j.snapStart = (j.snapStart + 1) % len(j.snaps)
		}
	}
	j.total++
	for _, ch := range j.subs {
		select {
		case ch <- s:
		default: // slow subscriber: drop rather than stall the GP loop
		}
	}
	j.mu.Unlock()
}

// begin transitions Queued -> Running; ok is false when the job was
// cancelled while queued.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.started = time.Now()
	return true
}

// finishLocked moves the job to its terminal state, classifying the
// error. It requires j.mu held and reports whether this call performed
// the transition; when it returns true the caller must close(j.done)
// after releasing the lock — and, on a durable scheduler, only after the
// terminal WAL record is written, so no waiter observes a completion the
// store could still forget.
func (j *Job) finishLocked(res *placer.Result, err error) bool {
	if j.state.Terminal() {
		return false
	}
	j.result, j.err = res, err
	switch {
	case err == nil:
		j.state = Succeeded
	case errors.Is(err, context.DeadlineExceeded):
		j.state = TimedOut
	case errors.Is(err, context.Canceled):
		j.state = Canceled
	default:
		j.state = Failed
	}
	j.finished = time.Now()
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	return true
}

// finish moves the job to its terminal state. It reports whether this
// call performed the transition (false when another goroutine — e.g.
// Cancel racing the worker — got there first). The winner owes the
// close(j.done); see jobFinished.
func (j *Job) finish(res *placer.Result, err error) bool {
	j.mu.Lock()
	ok := j.finishLocked(res, err)
	j.mu.Unlock()
	return ok
}

// cancelIfQueued atomically moves a still-queued job to Canceled. The
// check and the transition happen under one j.mu hold, so it cannot race
// begin: either this call wins and the worker's begin sees a terminal
// state (and skips the run), or begin wins and the running job is left
// to its context cancellation. This closes the historical check-then-act
// window where Cancel observed Queued, a worker began the job, and the
// unlocked finish then marked a *running* job Canceled while the placer
// kept going — discarding its eventual partial result.
func (j *Job) cancelIfQueued() bool {
	j.mu.Lock()
	if j.state != Queued {
		j.mu.Unlock()
		return false
	}
	ok := j.finishLocked(nil, context.Canceled)
	j.mu.Unlock()
	return ok
}

// Counters is a snapshot of the scheduler's cumulative accounting.
type Counters struct {
	Submitted  int64
	Rejected   int64
	Succeeded  int64
	Failed     int64
	Canceled   int64
	TimedOut   int64
	Active     int64 // currently running jobs
	Queued     int64 // currently queued jobs
	Iterations int64 // GP iterations completed across all finished jobs
	Launches   int64 // kernel launches across all finished jobs
}

// EngineStatus is one pooled engine's live accounting.
type EngineStatus struct {
	Workers int
	Stats   kernel.Stats
}

// Scheduler runs placement jobs from a bounded queue over an engine pool.
// Its cumulative accounting lives in an obs.Registry (the xserve_* series),
// so the daemon's /metrics scrape renders the same instruments the
// scheduler updates — no parallel hand-rolled counter set.
type Scheduler struct {
	opts    Options
	store   *jobstore.Store
	queue   chan *Job
	engines []*kernel.Engine
	wg      sync.WaitGroup
	drained chan struct{} // closed once all workers have exited

	mu       sync.Mutex
	jobs     map[int64]*Job
	nextID   int64
	draining bool
	drainErr error // first Shutdown outcome, repeated to later callers

	reg         *obs.Registry
	submitted   *obs.Counter
	rejected    *obs.Counter
	succeeded   *obs.Counter
	failed      *obs.Counter
	canceled    *obs.Counter
	timedOut    *obs.Counter
	active      *obs.Gauge
	iterations  *obs.Counter
	launches    *obs.Counter
	jobSeconds  *obs.Histogram
	walAppends  *obs.Counter
	checkpoints *obs.Counter
	storeErrors *obs.Counter
	recovered   *obs.Counter
	resumed     *obs.Counter
	compacted   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	fallbacks   *obs.Counter

	models  *ModelRegistry
	batcher *nnBatcher
	nnJobs  *obs.Counter
}

// New starts a scheduler with its engine pool and worker set. With
// Options.Store set it first replays the store's WAL: every job that
// never reached a terminal state is rebuilt via Options.Rehydrate and
// re-enqueued (ahead of any new submission), jobs with a checkpoint
// resume mid-trajectory, and terminal jobs re-appear in Jobs() as
// recovered history. The error is non-nil only for a store-level replay
// failure; a job that cannot be rehydrated is marked failed instead of
// blocking startup.
func New(opts Options) (*Scheduler, error) {
	o := opts.withDefaults()
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var recov []jobstore.JobRecord
	queueCap := o.QueueCap
	if o.Store != nil {
		var err error
		recov, err = o.Store.Recover()
		if err != nil {
			return nil, err
		}
		// The recovered backlog must fit the queue regardless of QueueCap:
		// recovery re-enqueues jobs that were already accepted once.
		pending := 0
		for _, r := range recov {
			if !r.Terminal() {
				pending++
			}
		}
		if pending > queueCap {
			queueCap = pending
		}
	}
	s := &Scheduler{
		opts:    o,
		store:   o.Store,
		queue:   make(chan *Job, queueCap),
		jobs:    make(map[int64]*Job),
		drained: make(chan struct{}),
		reg:     reg,
	}
	s.submitted = reg.Counter("xserve_jobs_submitted", "jobs accepted by Submit")
	s.rejected = reg.Counter("xserve_jobs_rejected", "jobs rejected by a full queue")
	s.succeeded = reg.Counter("xserve_jobs_succeeded", "jobs finished successfully")
	s.failed = reg.Counter("xserve_jobs_failed", "jobs finished with an error")
	s.canceled = reg.Counter("xserve_jobs_canceled", "jobs cancelled")
	s.timedOut = reg.Counter("xserve_jobs_timed_out", "jobs that hit their timeout")
	s.active = reg.Gauge("xserve_jobs_active", "currently running jobs")
	reg.GaugeFunc("xserve_jobs_queued", "currently queued jobs",
		func() float64 { return float64(len(s.queue)) })
	s.iterations = reg.Counter("xserve_gp_iterations_total", "GP iterations across finished jobs")
	s.launches = reg.Counter("xserve_kernel_launches_total", "kernel launches across finished jobs")
	s.jobSeconds = reg.Histogram("xserve_job_seconds", "job run time (start to finish)", nil)
	s.walAppends = reg.Counter("xserve_store_wal_appends_total", "records appended to the job WAL")
	s.checkpoints = reg.Counter("xserve_store_checkpoints_total", "placer checkpoints written to the store")
	s.storeErrors = reg.Counter("xserve_store_errors_total", "job store operations that failed")
	s.recovered = reg.Counter("xserve_store_recovered_jobs", "non-terminal jobs re-enqueued on startup")
	s.resumed = reg.Counter("xserve_store_resumed_jobs", "recovered jobs resumed from a checkpoint")
	s.compacted = reg.Counter("xserve_store_compacted_records", "raw WAL records folded away by startup compaction")
	s.cacheHits = reg.Counter("xserve_cache_hits_total", "submissions served from the result cache")
	s.cacheMisses = reg.Counter("xserve_cache_misses_total", "keyed submissions that missed the result cache")
	s.fallbacks = reg.Counter("xserve_fallback_total", "diverged jobs rescued by the lbub fallback strategy")
	if o.Models != nil {
		s.models = o.Models
		s.batcher = newNNBatcher(o.ModelBatchWindow, reg)
		s.nnJobs = reg.Counter("xserve_nn_jobs_total", "jobs run with a field model attached")
		reg.GaugeFunc("xserve_nn_models_loaded", "field models in the registry",
			func() float64 { return float64(o.Models.Len()) })
		reg.GaugeFunc("xserve_nn_model_refs", "live job references across all field models",
			func() float64 { return float64(o.Models.totalRefs()) })
	}
	if s.store != nil {
		reg.GaugeFunc("xserve_cache_entries", "results in the durable cache",
			func() float64 { return float64(s.store.CacheLen()) })
		reg.GaugeFunc("xserve_store_skipped_wal_records", "undecodable WAL lines skipped by the latest replay",
			func() float64 { return float64(s.store.SkippedRecords()) })
	}
	s.recoverJobs(recov)
	if s.store != nil {
		// WAL rotation: recovery replayed every historical transition, so
		// snapshot the folded state and truncate the log here — before the
		// workers start appending — keeping a long-lived node's next replay
		// proportional to its job count, not its transition history. A failed
		// compaction leaves the old WAL in place: slower recovery, no data
		// loss.
		if dropped, err := s.store.Compact(); err != nil {
			s.storeErrors.Inc()
		} else {
			s.compacted.Add(int64(dropped))
		}
	}
	for i := 0; i < o.Engines; i++ {
		eng := kernel.New(kernel.Options{
			Workers:        o.EngineWorkers,
			LaunchOverhead: o.LaunchOverhead,
		})
		s.engines = append(s.engines, eng)
		s.registerEngineGauges(i, eng)
		s.wg.Add(1)
		go s.worker(eng)
	}
	return s, nil
}

// recoverJobs re-materializes WAL jobs before the workers start: terminal
// records become visible history, non-terminal ones go back on the queue
// (in their original submission order, ahead of any new submission).
func (s *Scheduler) recoverJobs(recov []jobstore.JobRecord) {
	for _, r := range recov {
		if r.ID > s.nextID {
			s.nextID = r.ID
		}
		j := &Job{
			id:        r.ID,
			label:     r.Label,
			recovered: true,
			snaps:     make([]placer.Snapshot, s.opts.History),
			subs:      make(map[int]chan placer.Snapshot),
			submitted: r.Submitted,
			done:      make(chan struct{}),
		}
		s.jobs[r.ID] = j
		if r.Terminal() {
			// History only: restore the terminal state without recounting it
			// in this process's lifecycle counters.
			j.state = stateFromString(r.State)
			j.cached = r.Cached
			j.started, j.finished = r.Started, r.Finished
			if r.Err != "" {
				j.err = errors.New(r.Err)
			}
			if j.state == Succeeded {
				j.result = &placer.Result{
					Iterations: r.Iterations, HPWL: r.HPWL, Overflow: r.Overflow,
				}
			}
			close(j.done)
			continue
		}
		base, cancel := context.WithCancel(context.Background())
		j.base, j.cancel = base, cancel
		spec, err := s.rehydrate(r)
		if err != nil {
			s.jobFinished(j, nil, fmt.Errorf("serve: recovering job %d: %w", r.ID, err))
			continue
		}
		if spec.Options.Resume != nil {
			j.resumed = true
			s.resumed.Inc()
		}
		j.spec = spec
		s.recovered.Inc()
		s.queue <- j // cap sized to the backlog in New; never blocks
	}
}

// rehydrate rebuilds a recovered job's Spec from its durable payload and
// attaches the newest checkpoint, if one exists.
func (s *Scheduler) rehydrate(r jobstore.JobRecord) (Spec, error) {
	if s.opts.Rehydrate == nil {
		return Spec{}, errors.New("no Rehydrate hook configured")
	}
	if len(r.Payload) == 0 {
		return Spec{}, errors.New("no durable payload recorded")
	}
	spec, err := s.opts.Rehydrate(r.Payload)
	if err != nil {
		return Spec{}, err
	}
	spec.Payload = append([]byte(nil), r.Payload...)
	spec.Key = r.Key
	spec.Label = r.Label
	// Strategies without resume support restart from iteration 0; handing
	// them a checkpoint would fail the rebuilt job outright
	// (placer.ErrStrategyNotResumable).
	if r.HasCheckpoint && spec.Options.Strategy == placer.StrategyNesterov {
		if b, ok := s.store.LoadCheckpoint(r.ID); ok {
			var cp placer.Checkpoint
			if json.Unmarshal(b, &cp) == nil {
				spec.Options.Resume = &cp
			}
			// An unreadable checkpoint restarts the job from iteration 0 —
			// correctness over speed.
		}
	}
	return spec, nil
}

func stateFromString(st string) State {
	for _, s := range []State{Queued, Running, Succeeded, Failed, Canceled, TimedOut} {
		if s.String() == st {
			return s
		}
	}
	return Failed
}

// registerEngineGauges publishes one pooled engine's live accounting as
// scrape-time gauges. The functions read engine state under the engine's
// own locks only — a scrape never touches job locks, so it cannot stall
// (or be stalled by) a running placement.
func (s *Scheduler) registerEngineGauges(i int, eng *kernel.Engine) {
	label := fmt.Sprintf("{engine=%q}", fmt.Sprint(i))
	gauge := func(name, help string, fn func() float64) {
		s.reg.GaugeFunc(name+label, help, fn)
	}
	gauge("xserve_engine_workers", "kernel parallelism per engine",
		func() float64 { return float64(eng.Workers()) })
	gauge("xserve_engine_launches", "engine launches in the current stats window",
		func() float64 { return float64(eng.Stats().Launches) })
	gauge("xserve_engine_syncs", "engine syncs in the current stats window",
		func() float64 { return float64(eng.Stats().Syncs) })
	gauge("xserve_arena_in_use_bytes", "arena bytes checked out",
		func() float64 { return float64(eng.ArenaStats().InUse) })
	gauge("xserve_arena_pooled_bytes", "arena bytes pooled",
		func() float64 { return float64(eng.ArenaStats().Pooled) })
	gauge("xserve_arena_peak_bytes", "arena peak bytes",
		func() float64 { return float64(eng.ArenaStats().Peak) })
	gauge("xserve_arena_hits", "arena free-list hits",
		func() float64 { return float64(eng.ArenaStats().Hits) })
	gauge("xserve_arena_misses", "arena free-list misses",
		func() float64 { return float64(eng.ArenaStats().Misses) })
}

// Registry returns the scheduler's metrics registry (for the daemon's
// /metrics endpoint, or for callers that passed Options.Metrics and want
// the same handle back).
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// Submit enqueues a job. It never blocks: a full queue returns
// ErrQueueFull and a draining scheduler ErrDraining.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Design == nil || !spec.Design.Finished() {
		return nil, errors.New("serve: spec needs a finished design")
	}
	if spec.Model != "" {
		// Reject unknown models at submission (a typed 400 at the HTTP
		// boundary) rather than failing the job after it queued.
		if s.models == nil {
			return nil, &UnknownModelError{Name: spec.Model}
		}
		if !s.models.Has(spec.Model) {
			return nil, &UnknownModelError{Name: spec.Model, Known: s.models.Names()}
		}
	}
	base, cancel := context.WithCancel(context.Background())
	j := &Job{
		label:     spec.Label,
		spec:      spec,
		base:      base,
		cancel:    cancel,
		snaps:     make([]placer.Snapshot, s.opts.History),
		subs:      make(map[int]chan placer.Snapshot),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// Result-cache lookup: an identical prior submission (same content key)
	// finishes the job immediately from the durable cache — no queue slot,
	// no engine, no GP iterations.
	var hit *jobstore.CachedResult
	if s.store != nil && spec.Key != "" {
		if cr, ok := s.store.GetResult(spec.Key); ok {
			hit = cr
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	s.nextID++
	j.id = s.nextID
	if hit == nil {
		select {
		case s.queue <- j:
		default:
			s.mu.Unlock()
			cancel()
			s.rejected.Inc()
			return nil, ErrQueueFull
		}
	} else {
		j.cached = true
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.submitted.Inc()
	if s.store != nil && spec.Key != "" {
		if hit != nil {
			s.cacheHits.Inc()
		} else {
			s.cacheMisses.Inc()
		}
	}
	s.walAppend(func() error {
		return s.store.AppendSubmit(j.id, spec.Label, spec.Payload, spec.Key)
	})
	if hit != nil {
		s.jobFinished(j, &placer.Result{
			X: hit.X, Y: hit.Y,
			HPWL: hit.HPWL, Overflow: hit.Overflow, Iterations: hit.Iterations,
		}, nil)
	}
	return j, nil
}

// walAppend runs one WAL append when the scheduler is durable, folding
// failures into the store-error counter (the job proceeds regardless —
// losing a WAL record degrades recovery, not the placement).
func (s *Scheduler) walAppend(fn func() error) {
	if s.store == nil {
		return
	}
	if err := fn(); err != nil {
		s.storeErrors.Inc()
		return
	}
	s.walAppends.Inc()
}

// Job looks a job up by id.
func (s *Scheduler) Job(id int64) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job, newest first (descending id — ids are
// assigned in submission order and recovery preserves them).
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id > out[b].id })
	return out
}

// Cancel cancels a job: a queued job finishes immediately as Canceled, a
// running one aborts at its next between-launch cancellation point.
// Returns false for unknown ids.
func (s *Scheduler) Cancel(id int64) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel()
	// A queued job has no worker to notice the context; finish it here so
	// Cancel is immediate regardless of queue position. The queued check
	// and the terminal transition are one atomic step (see cancelIfQueued),
	// so a worker's racing begin either sees the cancelled state or wins
	// outright and leaves the run to its context.
	if j.cancelIfQueued() {
		s.recordFinish(j, nil)
		close(j.done)
	}
	return true
}

// jobFinished records the terminal transition exactly once and updates the
// scheduler counters from the job's final state. The done channel closes
// only AFTER the store work (terminal WAL record, result-cache entry,
// checkpoint removal): a waiter that observes completion observes a
// completion the store already remembers.
func (s *Scheduler) jobFinished(j *Job, res *placer.Result, err error) {
	if !j.finish(res, err) {
		return // another goroutine (Cancel vs worker) won the transition
	}
	s.recordFinish(j, res)
	close(j.done)
}

// recordFinish updates counters and the durable store after a terminal
// transition this goroutine performed.
func (s *Scheduler) recordFinish(j *Job, res *placer.Result) {
	st := j.Status()
	switch st.State {
	case Succeeded:
		s.succeeded.Inc()
	case Failed:
		s.failed.Inc()
	case Canceled:
		s.canceled.Inc()
	case TimedOut:
		s.timedOut.Inc()
	}
	if res != nil && !j.cached {
		// Cache hits burn no engine: the pre-computed result must not count
		// as new GP work.
		s.iterations.Add(int64(res.Iterations))
		s.launches.Add(res.Stats.Launches)
	}
	if !st.Started.IsZero() && !st.Finished.IsZero() {
		s.jobSeconds.Observe(st.Finished.Sub(st.Started).Seconds())
	}
	if s.store == nil {
		return
	}
	if st.State == Succeeded && !j.cached && j.spec.Key != "" && res != nil &&
		j.fallbackStrategy() == "" {
		// Fallback results are deliberately not cached: the key describes
		// the requested strategy, and a draft-quality rescue must not
		// shadow a future successful run (or a fixed input) forever.
		if err := s.store.PutResult(&jobstore.CachedResult{
			Key: j.spec.Key, Iterations: res.Iterations,
			HPWL: res.HPWL, Overflow: res.Overflow, X: res.X, Y: res.Y,
		}); err != nil {
			s.storeErrors.Inc()
		}
	}
	s.walAppend(func() error {
		return s.store.AppendFinish(j.id, st.State.String(), st.Err,
			st.Iterations, st.HPWL, st.Overflow, j.cached)
	})
	s.store.RemoveCheckpoint(j.id)
}

// worker owns one engine and drains the queue until Shutdown closes it.
func (s *Scheduler) worker(eng *kernel.Engine) {
	defer s.wg.Done()
	defer eng.Close()
	for j := range s.queue {
		s.runJob(eng, j)
	}
}

// runJob executes one job on eng under the job's context.
func (s *Scheduler) runJob(eng *kernel.Engine, j *Job) {
	if !j.begin() {
		return // cancelled while queued
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	s.walAppend(func() error { return s.store.AppendBegin(j.id) })

	timeout := j.spec.Timeout
	if timeout == 0 {
		timeout = s.opts.DefaultTimeout
	}
	ctx := j.base
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opts := j.spec.Options
	opts.Progress = j.observe
	opts.Metrics = s.reg
	if j.spec.Model != "" {
		// Attach the shared model through the scheduler's batched
		// inference path. A recovered job can reach this point on a node
		// whose registry no longer holds the model (Submit validation
		// only covers live submissions) — that job fails typed, same as
		// a 400 would have.
		if s.models == nil {
			s.jobFinished(j, nil, &UnknownModelError{Name: j.spec.Model})
			return
		}
		model, release, err := s.models.Acquire(j.spec.Model)
		if err != nil {
			s.jobFinished(j, nil, err)
			return
		}
		defer release()
		opts.Predictor = &batchedPredictor{b: s.batcher, model: model}
		s.nnJobs.Inc()
	}
	if s.store != nil && s.opts.CheckpointEvery > 0 {
		// Durable resume point every CheckpointEvery iterations. The write
		// happens on the worker goroutine between iterations; a failed write
		// only widens the redo window after a crash.
		opts.CheckpointEvery = s.opts.CheckpointEvery
		opts.Checkpoint = func(cp *placer.Checkpoint) {
			b, err := json.Marshal(cp)
			if err == nil {
				err = s.store.WriteCheckpoint(j.id, b)
			}
			if err != nil {
				s.storeErrors.Inc()
				return
			}
			s.checkpoints.Inc()
		}
	}
	if j.spec.Trace {
		// Per-job trace: the tracer sees this engine's launches only while
		// this job runs (workers run one job at a time), so the trace window
		// is exactly the job. Detach before the engine returns to the pool.
		t := obs.NewTracer()
		j.setTracer(t)
		eng.SetTracer(t)
		defer eng.SetTracer(nil)
		opts.Tracer = t
	}
	p, err := placer.New(j.spec.Design, eng, opts)
	if err != nil {
		s.jobFinished(j, nil, err)
		return
	}
	// Close on every exit path: a cancelled or timed-out run must return
	// its arena-backed scratch so the pooled engine's in-use bytes fall
	// back to the pre-job baseline.
	defer p.Close()
	res, err := p.RunContext(ctx)
	if errors.Is(err, placer.ErrDiverged) && opts.Strategy != placer.StrategyLBUB {
		// The gradient flow blew up on this input. Its failure profile is
		// disjoint from the LB/UB alternation's (quadratic solves clamped
		// into the region cannot explode), so re-run the job under lbub and
		// answer with a labeled draft-quality result instead of a failure.
		p.Close() // idempotent; return the diverged run's scratch now
		fopts := opts
		fopts.Strategy = placer.StrategyLBUB
		fopts.Resume = nil // lbub is not resumable; start the rescue fresh
		fp, ferr := placer.New(j.spec.Design, eng, fopts)
		if ferr == nil {
			defer fp.Close()
			var fres *placer.Result
			fres, ferr = fp.RunContext(ctx)
			if ferr == nil {
				j.setFallback(placer.StrategyLBUB.String())
				s.fallbacks.Inc()
				s.jobFinished(j, fres, nil)
				return
			}
		}
		// The fallback failed too: surface the original divergence (the
		// root cause), not the rescue attempt's error.
	}
	s.jobFinished(j, res, err)
}

func (j *Job) setFallback(strategy string) {
	j.mu.Lock()
	j.fallback = strategy
	j.mu.Unlock()
}

func (j *Job) fallbackStrategy() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fallback
}

// Draining reports whether Shutdown has begun (new submissions are being
// rejected with ErrDraining). Long-lived streams — the daemon's SSE
// handlers — poll this to close out before the drain finishes.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops intake and drains the scheduler: queued and running jobs
// are allowed to finish until ctx is done, at which point every remaining
// job is cancelled. It returns once all workers have exited and the pooled
// engines are closed; the error is ctx.Err() when the drain was cut short.
//
// Shutdown is idempotent AND every call honors its own ctx: a repeat call
// whose ctx expires mid-drain cancels the remaining jobs and returns
// ctx.Err() instead of blocking unboundedly, and a repeat call after the
// drain completed returns the recorded first outcome rather than
// swallowing it.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers exit after draining remaining jobs
		go func() {
			s.wg.Wait()
			if s.batcher != nil {
				// All workers have exited, so no PredictField can be in
				// flight or arrive later — the batcher can stop cleanly.
				s.batcher.shutdown()
			}
			close(s.drained)
		}()
	}
	s.mu.Unlock()

	recorded := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.drainErr
	}
	select {
	case <-s.drained:
		return recorded()
	case <-ctx.Done():
		select {
		case <-s.drained: // drain finished as ctx expired; its outcome stands
			return recorded()
		default:
		}
		// Record the cut-short outcome BEFORE cancelling, so every caller —
		// including one blocked on a still-valid ctx — reports the drain as
		// cut short once it unblocks.
		s.mu.Lock()
		if s.drainErr == nil {
			s.drainErr = ctx.Err()
		}
		s.mu.Unlock()
		for _, j := range s.Jobs() {
			s.Cancel(j.ID())
		}
		<-s.drained // cancellation aborts jobs between launches; workers exit
		return ctx.Err()
	}
}

// Counters returns the cumulative scheduler accounting (a typed view over
// the same registry-backed instruments /metrics scrapes).
func (s *Scheduler) Counters() Counters {
	return Counters{
		Submitted:  s.submitted.Value(),
		Rejected:   s.rejected.Value(),
		Succeeded:  s.succeeded.Value(),
		Failed:     s.failed.Value(),
		Canceled:   s.canceled.Value(),
		TimedOut:   s.timedOut.Value(),
		Active:     int64(s.active.Value()),
		Queued:     int64(len(s.queue)),
		Iterations: s.iterations.Value(),
		Launches:   s.launches.Value(),
	}
}

// EngineStatuses returns each pooled engine's live accounting (the stats
// window is the engine's current/most recent job, the arena gauges are
// cumulative).
func (s *Scheduler) EngineStatuses() []EngineStatus {
	out := make([]EngineStatus, len(s.engines))
	for i, e := range s.engines {
		out[i] = EngineStatus{Workers: e.Workers(), Stats: e.Stats()}
	}
	return out
}
