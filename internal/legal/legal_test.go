package legal

import (
	"math"
	"math/rand"
	"testing"

	"xplace/internal/benchgen"
	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// rowDesign builds a design with rows and n movable 2-wide cells at
// random positions, plus an optional central fixed macro.
func rowDesign(tb testing.TB, n int, withMacro bool, seed int64) *netlist.Design {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := 64.0
	d := netlist.NewDesign("rows", geom.Rect{Hx: side, Hy: side})
	for y := 0.0; y+4 <= side; y += 4 {
		d.Rows = append(d.Rows, netlist.Row{Y: y, X0: 0, X1: side, Height: 4, SiteWidth: 1})
	}
	if withMacro {
		d.AddCell("macro", 16, 16, 32, 32, netlist.Fixed)
	}
	for i := 0; i < n; i++ {
		d.AddCell("c", 2, 4, 1+rng.Float64()*(side-2), 2+rng.Float64()*(side-4), netlist.Movable)
	}
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	return d
}

func TestBuildSegmentsNoMacro(t *testing.T) {
	d := rowDesign(t, 1, false, 1)
	segs := BuildSegments(d)
	if len(segs) != 16 {
		t.Fatalf("segments = %d, want 16 full rows", len(segs))
	}
	for _, s := range segs {
		if s.X0 != 0 || s.X1 != 64 {
			t.Errorf("segment %+v should span the row", s)
		}
	}
}

func TestBuildSegmentsSplitsAroundMacro(t *testing.T) {
	d := rowDesign(t, 1, true, 1)
	segs := BuildSegments(d)
	// Macro spans y 24..40 (4 rows blocked: y=24,28,32,36), x 24..40.
	split := 0
	for _, s := range segs {
		if s.Y >= 24 && s.Y < 40 {
			split++
			if s.X1 > 24+1e-9 && s.X0 < 40-1e-9 {
				t.Errorf("segment %+v overlaps macro", s)
			}
		}
	}
	if split != 8 { // 4 blocked rows x 2 side segments
		t.Errorf("split segments = %d, want 8", split)
	}
}

func checkLegalAndDisp(t *testing.T, d *netlist.Design, x0, y0, lx, ly []float64, maxDispBound float64) {
	t.Helper()
	if v := Check(d, lx, ly); len(v) != 0 {
		t.Fatalf("%d violations, first: %+v", len(v), v[0])
	}
	total, max := Displacement(d, x0, y0, lx, ly)
	if max > maxDispBound {
		t.Errorf("max displacement %.2f exceeds %.2f", max, maxDispBound)
	}
	_ = total
}

func TestTetrisLegalizes(t *testing.T) {
	d := rowDesign(t, 300, true, 2)
	lx, ly, err := Tetris(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	checkLegalAndDisp(t, d, d.CellX, d.CellY, lx, ly, 64)
}

func TestAbacusLegalizes(t *testing.T) {
	d := rowDesign(t, 300, true, 3)
	lx, ly, err := Abacus(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	checkLegalAndDisp(t, d, d.CellX, d.CellY, lx, ly, 64)
}

func TestAbacusBeatsTetrisOnDisplacement(t *testing.T) {
	d := rowDesign(t, 400, false, 4)
	tx, ty, err := Tetris(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	ax, ay, err := Abacus(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	tTot, _ := Displacement(d, d.CellX, d.CellY, tx, ty)
	aTot, _ := Displacement(d, d.CellX, d.CellY, ax, ay)
	if aTot > tTot*1.2 {
		t.Errorf("Abacus displacement %.1f should not be much worse than Tetris %.1f", aTot, tTot)
	}
	t.Logf("displacement: tetris=%.1f abacus=%.1f", tTot, aTot)
}

func TestLegalizeOverfullFails(t *testing.T) {
	d := netlist.NewDesign("full", geom.Rect{Hx: 8, Hy: 4})
	d.Rows = append(d.Rows, netlist.Row{Y: 0, X0: 0, X1: 8, Height: 4, SiteWidth: 1})
	for i := 0; i < 10; i++ { // 10 cells of width 2 into 8 sites
		d.AddCell("c", 2, 4, 4, 2, netlist.Movable)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Tetris(d, d.CellX, d.CellY); err == nil {
		t.Error("Tetris should fail on overfull design")
	}
	if _, _, err := Abacus(d, d.CellX, d.CellY); err == nil {
		t.Error("Abacus should fail on overfull design")
	}
}

func TestLegalizeNoRowsFails(t *testing.T) {
	d := netlist.NewDesign("norows", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell("c", 1, 1, 5, 5, netlist.Movable)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Tetris(d, d.CellX, d.CellY); err == nil {
		t.Error("want error for design without rows")
	}
}

func TestLegalizeTallMovableFails(t *testing.T) {
	d := netlist.NewDesign("tall", geom.Rect{Hx: 20, Hy: 20})
	d.Rows = append(d.Rows, netlist.Row{Y: 0, X0: 0, X1: 20, Height: 4, SiteWidth: 1})
	d.AddCell("tall", 2, 12, 10, 10, netlist.Movable)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Tetris(d, d.CellX, d.CellY); err == nil {
		t.Error("want error for multi-row movable cell")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	d := rowDesign(t, 2, false, 5)
	x := append([]float64(nil), d.CellX...)
	y := append([]float64(nil), d.CellY...)
	// Two overlapping cells off-row.
	x[0], y[0] = 10.5, 3.3
	x[1], y[1] = 10.9, 3.3
	v := Check(d, x, y)
	var overlaps, offrow int
	for _, vi := range v {
		switch vi.Kind {
		case "overlap":
			overlaps++
		case "off-row":
			offrow++
		}
	}
	if overlaps == 0 {
		t.Error("overlap not detected")
	}
	if offrow == 0 {
		t.Error("off-row not detected")
	}
	// Outside region.
	x[0] = -5
	v = Check(d, x, y)
	found := false
	for _, vi := range v {
		if vi.Kind == "outside" && vi.CellA == 0 {
			found = true
		}
	}
	if !found {
		t.Error("outside not detected")
	}
}

func TestCheckAcceptsLegal(t *testing.T) {
	d := rowDesign(t, 3, false, 6)
	x := []float64{1, 4, 10}
	y := []float64{2, 2, 6}
	// width-2 cells at lower-left 0,3,9 on rows y=0 and y=4: legal.
	if v := Check(d, x, y); len(v) != 0 {
		t.Errorf("legal placement flagged: %+v", v)
	}
}

func TestLegalizeGeneratedDesign(t *testing.T) {
	spec, _ := benchgen.FindSpec("fft_1")
	d := benchgen.Generate(spec, 0.03, 1)
	lx, ly, err := Tetris(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(d, lx, ly); len(v) != 0 {
		t.Fatalf("tetris on generated design: %d violations, first %+v", len(v), v[0])
	}
	hp0 := d.HPWL(nil, nil)
	hp1 := d.HPWL(lx, ly)
	if hp1 > hp0*1.5 {
		t.Errorf("legalization blew up HPWL: %.0f -> %.0f", hp0, hp1)
	}
}

func TestHPWLPreservedUnderSmallDisplacement(t *testing.T) {
	// Property: legalizing an already-legal placement should barely move
	// cells.
	d := rowDesign(t, 100, false, 7)
	lx, ly, err := Abacus(d, d.CellX, d.CellY)
	if err != nil {
		t.Fatal(err)
	}
	lx2, ly2, err := Abacus(d, lx, ly)
	if err != nil {
		t.Fatal(err)
	}
	_, max := Displacement(d, lx, ly, lx2, ly2)
	if max > 2.001 {
		t.Errorf("re-legalization moved a cell by %.2f", max)
	}
}

func TestDisplacementMath(t *testing.T) {
	d := rowDesign(t, 2, false, 8)
	x1 := append([]float64(nil), d.CellX...)
	y1 := append([]float64(nil), d.CellY...)
	x1[0] += 3
	y1[1] -= 4
	total, max := Displacement(d, d.CellX, d.CellY, x1, y1)
	if math.Abs(total-7) > 1e-12 || math.Abs(max-4) > 1e-12 {
		t.Errorf("total/max = %v/%v", total, max)
	}
}

func BenchmarkTetris(b *testing.B) {
	d := rowDesign(b, 400, true, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Tetris(d, d.CellX, d.CellY); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbacus(b *testing.B) {
	d := rowDesign(b, 300, true, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Abacus(d, d.CellX, d.CellY); err != nil {
			b.Fatal(err)
		}
	}
}
