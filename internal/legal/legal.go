// Package legal turns a global placement into a legal one: every movable
// standard cell on a row, on a site, inside a free segment (row intervals
// not blocked by fixed macros), with no overlaps. Two standard algorithms
// are provided, matching the external legalizers the paper invokes
// (NTUPlace3's greedy flow and the DREAMPlace legalizer):
//
//   - Tetris: cells sorted by x greedily take the nearest feasible
//     position left-to-right (fast, moderate displacement).
//   - Abacus: row-based dynamic clustering that minimizes total squared
//     displacement (slower, better quality).
package legal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// Segment is a free interval of a placement row.
type Segment struct {
	Y         float64 // row lower edge
	X0, X1    float64
	SiteWidth float64
	Height    float64
}

// BuildSegments splits each row of d into free segments around the
// footprints of fixed cells. Segments narrower than one site are dropped.
func BuildSegments(d *netlist.Design) []Segment {
	var segs []Segment
	for _, row := range d.Rows {
		// Collect blocked x-intervals of fixed cells overlapping this row.
		type iv struct{ a, b float64 }
		var blocks []iv
		for c, k := range d.CellKind {
			if k != netlist.Fixed {
				continue
			}
			r := d.CellRect(c)
			if r.Ly < row.Y+row.Height && r.Hy > row.Y {
				blocks = append(blocks, iv{math.Max(r.Lx, row.X0), math.Min(r.Hx, row.X1)})
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].a < blocks[j].a })
		x := row.X0
		emit := func(a, b float64) {
			if b-a >= row.SiteWidth && row.SiteWidth > 0 {
				segs = append(segs, Segment{Y: row.Y, X0: a, X1: b, SiteWidth: row.SiteWidth, Height: row.Height})
			}
		}
		for _, b := range blocks {
			if b.a > x {
				emit(x, b.a)
			}
			if b.b > x {
				x = b.b
			}
		}
		if x < row.X1 {
			emit(x, row.X1)
		}
	}
	return segs
}

// snap aligns a lower-left x onto the segment's site grid (floor).
func (s Segment) snap(x float64) float64 {
	k := math.Floor((x - s.X0) / s.SiteWidth)
	if k < 0 {
		k = 0
	}
	return s.X0 + k*s.SiteWidth
}

// movableStdCells returns ids of movable cells, erroring on cells taller
// than a row (multi-row movable cells are out of scope for these
// legalizers).
func movableStdCells(d *netlist.Design) ([]int, error) {
	if len(d.Rows) == 0 {
		return nil, errors.New("legal: design has no rows")
	}
	rowH := d.Rows[0].Height
	var cells []int
	for c, k := range d.CellKind {
		if k != netlist.Movable {
			continue
		}
		if d.CellH[c] > rowH*1.001 {
			return nil, fmt.Errorf("legal: movable cell %q is taller than a row (%g > %g)", d.CellName[c], d.CellH[c], rowH)
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// Tetris legalizes the movable cells of d from the global positions
// (x, y) (cell centers) and returns new center positions. Cells are
// processed in x order and greedily take the free interval position of
// minimum displacement; free intervals are tracked exactly (no frontier
// waste), so the legalizer fills gaps behind earlier placements. Fixed
// cells pass through unchanged.
func Tetris(d *netlist.Design, x, y []float64) ([]float64, []float64, error) {
	cells, err := movableStdCells(d)
	if err != nil {
		return nil, nil, err
	}
	segs := BuildSegments(d)
	if len(segs) == 0 {
		return nil, nil, errors.New("legal: no free segments")
	}
	type iv struct{ a, b float64 }
	free := make([][]iv, len(segs))
	for i, s := range segs {
		free[i] = []iv{{s.X0, s.X1}}
	}
	rowH := d.Rows[0].Height
	outX := append([]float64(nil), x...)
	outY := append([]float64(nil), y...)

	order := append([]int(nil), cells...)
	sort.Slice(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })

	// fit returns the best snapped lower-left position in interval v of
	// segment s for width w and desired lower-left des, or ok=false.
	fit := func(s Segment, v iv, w, des float64) (float64, bool) {
		if v.b-v.a < w-1e-9 {
			return 0, false
		}
		cand := des
		if cand < v.a {
			cand = v.a
		}
		if cand > v.b-w {
			cand = v.b - w
		}
		cand = s.snap(cand)
		if cand < v.a-1e-9 {
			cand += s.SiteWidth
		}
		if cand+w > v.b+1e-9 {
			return 0, false
		}
		return cand, true
	}
	place := func(c int, window float64) bool {
		w := d.CellW[c]
		desLx := x[c] - w/2
		fence, fenced := d.FenceOf(c)
		bestCost := math.Inf(1)
		bestSeg, bestIv := -1, -1
		bestX := 0.0
		for i := range segs {
			s := segs[i]
			if fenced && (s.Y < fence.Ly-1e-9 || s.Y+s.Height > fence.Hy+1e-9) {
				continue // row outside the cell's fence
			}
			dy := math.Abs((s.Y + d.CellH[c]/2) - y[c])
			if window > 0 && dy > window {
				continue
			}
			if 2*dy >= bestCost {
				continue
			}
			for j, v := range free[i] {
				if fenced {
					// Clip the interval to the fence's x-range.
					if v.a < fence.Lx {
						v.a = fence.Lx
					}
					if v.b > fence.Hx {
						v.b = fence.Hx
					}
				}
				cand, ok := fit(s, v, w, desLx)
				if !ok {
					continue
				}
				cost := math.Abs(cand+w/2-x[c]) + 2*dy
				if cost < bestCost {
					bestCost, bestSeg, bestIv, bestX = cost, i, j, cand
				}
			}
		}
		if bestSeg < 0 {
			return false
		}
		// Split the interval.
		v := free[bestSeg][bestIv]
		repl := make([]iv, 0, 2)
		if bestX-v.a >= segs[bestSeg].SiteWidth {
			repl = append(repl, iv{v.a, bestX})
		}
		if v.b-(bestX+w) >= segs[bestSeg].SiteWidth {
			repl = append(repl, iv{bestX + w, v.b})
		}
		free[bestSeg] = append(free[bestSeg][:bestIv], append(repl, free[bestSeg][bestIv+1:]...)...)
		outX[c] = bestX + w/2
		outY[c] = segs[bestSeg].Y + d.CellH[c]/2
		return true
	}
	for _, c := range order {
		if !place(c, 10*rowH) && !place(c, 0) {
			return nil, nil, fmt.Errorf("legal: no space for cell %q (w=%g)", d.CellName[c], d.CellW[c])
		}
	}
	return outX, outY, nil
}

// abCluster is an Abacus cluster: a maximal run of abutting cells in a
// segment, placed at the weighted optimal position (Abacus, Spindler et
// al.: x_c = (sum e_i*(x_i' - offset_i)) / sum e_i).
type abCluster struct {
	x     float64 // lower-left of the cluster
	e     float64 // total weight
	q     float64 // weighted desired-position sum
	w     float64 // total width
	cells []int
}

// segState is the per-segment Abacus state.
type segState struct {
	seg      Segment
	clusters []abCluster
	used     float64
}

// placeRow runs the Abacus PlaceRow recurrence: append cell c with
// desired lower-left desLx, collapse clusters, and return the total
// squared displacement of the segment. des maps cells to their desired
// lower-left positions. With commit false the state is left untouched.
func (st *segState) placeRow(d *netlist.Design, c int, desLx float64, des map[int]float64, commit bool) (float64, bool) {
	w := d.CellW[c]
	if st.used+w > st.seg.X1-st.seg.X0+1e-9 {
		return 0, false
	}
	clusters := append([]abCluster(nil), st.clusters...)
	clusters = append(clusters, abCluster{x: desLx, e: 1, q: desLx, w: w, cells: []int{c}})
	for {
		k := len(clusters) - 1
		cl := &clusters[k]
		if cl.x < st.seg.X0 {
			cl.x = st.seg.X0
		}
		if cl.x+cl.w > st.seg.X1 {
			cl.x = st.seg.X1 - cl.w
		}
		if k == 0 {
			break
		}
		prev := &clusters[k-1]
		if prev.x+prev.w <= cl.x+1e-12 {
			break
		}
		merged := abCluster{
			e:     prev.e + cl.e,
			q:     prev.q + cl.q - cl.e*prev.w, // members of cl shift right by prev.w
			w:     prev.w + cl.w,
			cells: append(append([]int(nil), prev.cells...), cl.cells...),
		}
		merged.x = merged.q / merged.e
		clusters = append(clusters[:k-1], merged)
	}
	// Cost: squared displacement of every cell in the segment from its
	// desired position, with cluster origins snapped to sites.
	cost := 0.0
	for _, cl := range clusters {
		xx := st.seg.snap(cl.x)
		if xx+cl.w > st.seg.X1+1e-9 {
			xx -= st.seg.SiteWidth
		}
		if xx < st.seg.X0-1e-9 {
			return 0, false
		}
		for _, cc := range cl.cells {
			dd := xx - des[cc]
			cost += dd * dd
			xx += d.CellW[cc]
		}
	}
	if commit {
		st.clusters = clusters
		st.used += w
	}
	return cost, true
}

// Abacus legalizes via row-based squared-displacement clustering. Each
// cell tries the segments nearest its global y first; the window widens
// only if none fits. Fence-constrained designs are not supported by the
// clustering formulation — use Tetris.
func Abacus(d *netlist.Design, x, y []float64) ([]float64, []float64, error) {
	for c := range d.CellFence {
		if d.CellFence[c] >= 0 && d.CellKind[c] == netlist.Movable {
			return nil, nil, errors.New("legal: Abacus does not support fence regions; use Tetris")
		}
	}
	cells, err := movableStdCells(d)
	if err != nil {
		return nil, nil, err
	}
	segs := BuildSegments(d)
	if len(segs) == 0 {
		return nil, nil, errors.New("legal: no free segments")
	}
	states := make([]segState, len(segs))
	for i, s := range segs {
		states[i] = segState{seg: s}
	}
	rowH := d.Rows[0].Height
	outX := append([]float64(nil), x...)
	outY := append([]float64(nil), y...)

	order := append([]int(nil), cells...)
	sort.Slice(order, func(i, j int) bool { return x[order[i]] < x[order[j]] })

	des := make(map[int]float64, len(cells))
	try := func(c int, desLx float64, window float64) (int, float64) {
		bestCost := math.Inf(1)
		best := -1
		for i := range states {
			st := &states[i]
			dy := (st.seg.Y + d.CellH[c]/2) - y[c]
			if window > 0 && math.Abs(dy) > window {
				continue
			}
			trial, ok := st.placeRow(d, c, desLx, des, false)
			if !ok {
				continue
			}
			cost := trial + 4*dy*dy
			if cost < bestCost {
				bestCost = cost
				best = i
			}
		}
		return best, bestCost
	}
	for _, c := range order {
		desLx := x[c] - d.CellW[c]/2
		des[c] = desLx
		best, _ := try(c, desLx, 10*rowH)
		if best < 0 {
			best, _ = try(c, desLx, 0) // widen to all segments
		}
		if best < 0 {
			return nil, nil, fmt.Errorf("legal: no space for cell %q", d.CellName[c])
		}
		states[best].placeRow(d, c, desLx, des, true)
	}
	for i := range states {
		st := &states[i]
		for _, cl := range st.clusters {
			xx := st.seg.snap(cl.x)
			if xx+cl.w > st.seg.X1+1e-9 {
				xx -= st.seg.SiteWidth
			}
			for _, cc := range cl.cells {
				outX[cc] = xx + d.CellW[cc]/2
				outY[cc] = st.seg.Y + d.CellH[cc]/2
				xx += d.CellW[cc]
			}
		}
	}
	return outX, outY, nil
}

// Violation describes one legality failure found by Check.
type Violation struct {
	Kind  string // "overlap", "off-row", "off-site", "outside"
	CellA int
	CellB int // -1 unless overlap
}

// Check validates a placement: movable cells must sit inside the region,
// on a row, on a site, without overlapping each other or fixed cells.
// Returns all violations found (empty means legal).
func Check(d *netlist.Design, x, y []float64) []Violation {
	var out []Violation
	segs := BuildSegments(d)
	var movable []int
	for c, k := range d.CellKind {
		if k == netlist.Movable {
			movable = append(movable, c)
		}
	}
	for _, c := range movable {
		lx := x[c] - d.CellW[c]/2
		ly := y[c] - d.CellH[c]/2
		hx := x[c] + d.CellW[c]/2
		hy := y[c] + d.CellH[c]/2
		if lx < d.Region.Lx-1e-6 || hx > d.Region.Hx+1e-6 || ly < d.Region.Ly-1e-6 || hy > d.Region.Hy+1e-6 {
			out = append(out, Violation{Kind: "outside", CellA: c, CellB: -1})
			continue
		}
		// Must lie fully inside one free segment, lower edge on the row,
		// x on a site.
		found := false
		for _, s := range segs {
			if math.Abs(ly-s.Y) < 1e-6 && lx >= s.X0-1e-6 && hx <= s.X1+1e-6 {
				found = true
				k := (lx - s.X0) / s.SiteWidth
				if math.Abs(k-math.Round(k)) > 1e-6 {
					out = append(out, Violation{Kind: "off-site", CellA: c, CellB: -1})
				}
				break
			}
		}
		if !found {
			out = append(out, Violation{Kind: "off-row", CellA: c, CellB: -1})
		}
		if fence, ok := d.FenceOf(c); ok {
			if !fence.ContainsRect(geom.Rect{Lx: lx, Ly: ly, Hx: hx, Hy: hy}) {
				out = append(out, Violation{Kind: "fence", CellA: c, CellB: -1})
			}
		}
	}
	// Pairwise overlaps via sweep by x.
	order := append([]int(nil), movable...)
	sort.Slice(order, func(i, j int) bool {
		return x[order[i]]-d.CellW[order[i]]/2 < x[order[j]]-d.CellW[order[j]]/2
	})
	for i := 0; i < len(order); i++ {
		a := order[i]
		aHx := x[a] + d.CellW[a]/2
		for j := i + 1; j < len(order); j++ {
			b := order[j]
			bLx := x[b] - d.CellW[b]/2
			if bLx >= aHx-1e-9 {
				break
			}
			// x-overlap; check y.
			if math.Abs(y[a]-y[b]) < (d.CellH[a]+d.CellH[b])/2-1e-9 {
				out = append(out, Violation{Kind: "overlap", CellA: a, CellB: b})
			}
		}
	}
	return out
}

// Displacement returns the total and maximum movable-cell displacement
// between two placements.
func Displacement(d *netlist.Design, x0, y0, x1, y1 []float64) (total, max float64) {
	for c, k := range d.CellKind {
		if k != netlist.Movable {
			continue
		}
		dd := math.Abs(x1[c]-x0[c]) + math.Abs(y1[c]-y0[c])
		total += dd
		if dd > max {
			max = dd
		}
	}
	return total, max
}
