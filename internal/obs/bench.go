package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// BenchSchema is the version tag of the bench-trajectory record format.
// Bump it when a required field is added or a field's meaning changes;
// readers reject records with an unknown schema instead of guessing.
const BenchSchema = "xplace-bench/1"

// BenchRecord is the machine-readable outcome of one `xbench -json`
// bench-trajectory run: a set of BenchRun entries (one per placer
// configuration) over the same design/seed, comparable across commits,
// plus an optional Micro section of kernel-level timings (the Poisson
// solve ablation). Checked-in BENCH_*.json files are instances of this
// schema and back the CI bench-smoke regression gate.
type BenchRecord struct {
	Schema    string       `json:"schema"`
	CreatedAt string       `json:"created_at,omitempty"` // RFC 3339
	Note      string       `json:"note,omitempty"`
	Runs      []BenchRun   `json:"runs"`
	Micro     []BenchMicro `json:"micro,omitempty"`
}

// BenchRun is one placement run's record.
type BenchRun struct {
	Config     string  `json:"config"` // e.g. "baseline", "xplace-unfused", "xplace"
	Bench      string  `json:"bench"`
	Backend    string  `json:"backend,omitempty"` // compute backend ("" = reference float64)
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Workers    int     `json:"workers"`
	LaunchUS   int     `json:"launch_overhead_us"`
	Iterations int     `json:"iterations"`
	HPWL       float64 `json:"hpwl"`
	Overflow   float64 `json:"overflow"`
	WallMS     float64 `json:"wall_ms"`
	SimMS      float64 `json:"sim_ms"`
	Launches   int64   `json:"launches"`
	Syncs      int64   `json:"syncs"`
	ArenaPeak  int64   `json:"arena_peak_bytes"`
}

// BenchMicro is one kernel-level micro timing: a named operation (e.g.
// "poisson512") under one backend/variant, in wall milliseconds per call.
// Micro timings are machine-dependent, so the smoke gate never compares
// them — they document the measured precision/truncation ablation next to
// the trajectory it explains.
type BenchMicro struct {
	Name    string  `json:"name"`
	Backend string  `json:"backend"`
	Variant string  `json:"variant,omitempty"` // e.g. "full", "truncated"
	Grid    int     `json:"grid,omitempty"`
	MS      float64 `json:"ms"` // wall milliseconds per call
}

// Validate checks the record's required fields: schema tag, at least one
// run, and per run a config name, bench name, positive iteration count,
// finite positive HPWL and a positive launch count.
func (r BenchRecord) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("obs: bench record schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Runs) == 0 {
		return errors.New("obs: bench record has no runs")
	}
	for i, run := range r.Runs {
		switch {
		case run.Config == "":
			return fmt.Errorf("obs: run %d missing config", i)
		case run.Bench == "":
			return fmt.Errorf("obs: run %d (%s) missing bench", i, run.Config)
		case run.Iterations <= 0:
			return fmt.Errorf("obs: run %d (%s) iterations = %d", i, run.Config, run.Iterations)
		case run.HPWL <= 0 || math.IsNaN(run.HPWL) || math.IsInf(run.HPWL, 0):
			return fmt.Errorf("obs: run %d (%s) hpwl = %v", i, run.Config, run.HPWL)
		case run.Launches <= 0:
			return fmt.Errorf("obs: run %d (%s) launches = %d", i, run.Config, run.Launches)
		}
	}
	for i, m := range r.Micro {
		switch {
		case m.Name == "":
			return fmt.Errorf("obs: micro %d missing name", i)
		case m.Backend == "":
			return fmt.Errorf("obs: micro %d (%s) missing backend", i, m.Name)
		case m.MS <= 0 || math.IsNaN(m.MS) || math.IsInf(m.MS, 0):
			return fmt.Errorf("obs: micro %d (%s) ms = %v", i, m.Name, m.MS)
		}
	}
	return nil
}

// Run returns the run with the given config name.
func (r BenchRecord) Run(config string) (BenchRun, bool) {
	for _, run := range r.Runs {
		if run.Config == config {
			return run, true
		}
	}
	return BenchRun{}, false
}

// WriteBenchRecord validates and serializes the record as indented JSON.
func WriteBenchRecord(w io.Writer, r BenchRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchRecord deserializes and validates a record.
func ReadBenchRecord(rd io.Reader) (BenchRecord, error) {
	var r BenchRecord
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return BenchRecord{}, fmt.Errorf("obs: decoding bench record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return BenchRecord{}, err
	}
	return r, nil
}

// CompareBenchRecords is the bench-smoke regression gate: every run in
// baseline must exist in current (matched by config+bench), and the
// current HPWL must stay within the relative tolerance of the baseline's
// in BOTH directions — |got-want|/want <= tol (e.g. 0.05 for 5%). An
// unexpectedly better HPWL is also a changed trajectory: on the pinned
// bit-identical configs it means the numerics drifted, and the baseline
// must be re-recorded deliberately, not absorbed. Launch counts must match
// exactly for configs with the same launch-overhead setting — a changed
// launch count is a changed operator schedule.
func CompareBenchRecords(baseline, current BenchRecord, tol float64) error {
	var errs []error
	for _, want := range baseline.Runs {
		got, ok := current.Run(want.Config)
		if !ok || got.Bench != want.Bench {
			errs = append(errs, fmt.Errorf("config %q (bench %s) missing from current record", want.Config, want.Bench))
			continue
		}
		if rel := math.Abs(got.HPWL-want.HPWL) / want.HPWL; rel > tol {
			errs = append(errs, fmt.Errorf("config %q: HPWL %.6g drifted %.1f%% from baseline %.6g (tol %.0f%%)",
				want.Config, got.HPWL, rel*100, want.HPWL, tol*100))
		}
		if got.Iterations == want.Iterations && got.Launches != want.Launches {
			errs = append(errs, fmt.Errorf("config %q: %d launches in %d iters, baseline %d — operator schedule changed",
				want.Config, got.Launches, got.Iterations, want.Launches))
		}
	}
	return errors.Join(errs...)
}
