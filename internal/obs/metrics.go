package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 series. All methods are
// nil-safe and lock-free (one atomic add per increment), so counters may
// sit on the GP hot path without allocating.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 series (atomic float bits; nil-safe).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: Buckets are upper bounds, counts are cumulative at
// exposition, +Inf is implicit). Observe is lock-free and nil-safe.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // one per bound, +1 for +Inf
	sum    Gauge
	count  atomic.Int64
}

// DefaultDurationBuckets covers per-iteration placement times (seconds).
var DefaultDurationBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (tens); linear scan beats binary search at this size.
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// metric kinds for exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// series is one registered instrument (a full name, possibly labeled).
type series struct {
	family string // name before any '{' — the # HELP / # TYPE unit
	name   string // full series name including labels
	help   string
	kind   string
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// Registry is a typed metrics registry with Prometheus text exposition.
// Registration is idempotent per full series name: asking for an existing
// name returns the existing instrument (so several subsystems can share
// one registry without coordination). A nil *Registry is the disabled
// registry: every constructor returns nil, and nil instruments no-op.
//
// Series names may carry a Prometheus label suffix, e.g.
// `engine_launches{engine="0"}`; exposition groups series of one family
// under a single # HELP / # TYPE header.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	order  []string // registration order for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{series: make(map[string]*series)} }

// registerLocked finds or creates a series; r.mu must be held, and any
// lazy instrument assignment on the returned series must happen before
// the lock is released (scrapes copy series values under the same lock).
func (r *Registry) registerLocked(name, help, kind string) *series {
	if s, ok := r.series[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	s := &series{family: familyOf(name), name: name, help: help, kind: kind}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.registerLocked(name, help, kindCounter)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.registerLocked(name, help, kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (for mirroring external accounting — engine stats, queue depths —
// without double bookkeeping). Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.registerLocked(name, help, kindGauge)
	s.fn = fn
}

// Histogram returns (registering if needed) the named histogram with the
// given bucket upper bounds (sorted copies; nil selects
// DefaultDurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.registerLocked(name, help, kindHist)
	if s.h == nil {
		if buckets == nil {
			buckets = DefaultDurationBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	}
	return s.h
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Series appear in registration
// order; families emit one # HELP / # TYPE header at first occurrence.
// Scraping touches only the registry mutex and instrument atomics —
// never caller locks — so a scrape can never stall a placement job.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Copy series values (instrument pointers) under the lock: a
	// concurrent GaugeFunc re-registration may replace s.fn, and lazily
	// created instruments are only published inside this critical section.
	r.mu.Lock()
	ordered := make([]series, len(r.order))
	for i, name := range r.order {
		ordered[i] = *r.series[name]
	}
	r.mu.Unlock()

	seen := make(map[string]bool, len(ordered))
	for i := range ordered {
		s := &ordered[i]
		if !seen[s.family] {
			seen[s.family] = true
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.family, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.family, s.kind); err != nil {
				return err
			}
		}
		var err error
		switch {
		case s.kind == kindHist:
			err = writeHistogram(w, s)
		case s.fn != nil:
			err = writeSample(w, s.name, s.fn())
		case s.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", s.name, s.c.Value())
		case s.g != nil:
			err = writeSample(w, s.name, s.g.Value())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, v float64) error {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		_, err := fmt.Fprintf(w, "%s %d\n", name, int64(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s %g\n", name, v)
	return err
}

// writeHistogram renders the cumulative bucket series plus _sum/_count,
// preserving any labels the series was registered with.
func writeHistogram(w io.Writer, s *series) error {
	base, labels, suffix := s.name, "", ""
	if i := strings.IndexByte(s.name, '{'); i >= 0 {
		base = s.name[:i]
		labels = strings.TrimSuffix(s.name[i+1:], "}") + ","
		suffix = "{" + strings.TrimSuffix(s.name[i+1:], "}") + "}"
	}
	var cum int64
	for i, ub := range s.h.bounds {
		cum += s.h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", base, labels, ub, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, s.h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, s.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, s.h.Count())
	return err
}
