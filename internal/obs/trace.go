// Package obs is the operator-level observability layer: a span-based
// tracer that records every kernel launch and operator group on both the
// wall clock and the engine's simulated clock (exportable as Chrome
// `trace_event` JSON), a typed metrics registry (counters, gauges,
// histograms with Prometheus text exposition), and the machine-readable
// bench-trajectory record behind `xbench -json` / BENCH_*.json.
//
// Everything in this package is nil-safe by contract: every method on a
// nil *Tracer, *Registry, *Counter, *Gauge or *Histogram is a no-op (or
// returns a zero value), so instrumented hot paths pay only a nil check
// when observability is disabled. The placer's AllocsPerRun regression
// tests enforce that the disabled path — and the metrics-enabled path,
// which is all atomics — stays at zero heap allocations per GP iteration.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span categories used by the engine and placer instrumentation. Kernel
// events come from the execution engine (one per launch); group events
// are the placer's operator groups (§3.1: wirelength, density, poisson,
// gradient assembly, optimizer step, scheduler/record).
const (
	CatKernel = "kernel"
	CatGroup  = "group"
	CatFlow   = "flow"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	// KindSpan is a complete duration event (Chrome "ph":"X").
	KindSpan EventKind = iota
	// KindInstant is a zero-duration marker (Chrome "ph":"i").
	KindInstant
	// KindCounter is a named scalar sample (Chrome "ph":"C").
	KindCounter
)

// Event is one recorded trace entry. Wall-clock offsets (TS, Dur) are
// relative to the tracer's epoch; Sim/SimDur are positions on the
// engine's simulated clock (compute + launches x launch-overhead), the
// quantity the paper's kernel-launch analysis is about.
type Event struct {
	Name   string
	Cat    string
	Kind   EventKind
	TS     time.Duration
	Dur    time.Duration
	Sim    time.Duration
	SimDur time.Duration
	Iter   int     // GP iteration (groups and counters; -1 when n/a)
	Value  float64 // counter sample value
}

// Tracer records spans. The zero value is NOT ready: use NewTracer, which
// pins the epoch. A nil *Tracer is the disabled tracer: every method is a
// no-op, so instrumentation sites need no guards beyond passing it along.
//
// Recording appends to an in-memory event list under a mutex; it is safe
// for concurrent use (the engine's worker accounting and the placement
// loop both record). Memory grows with the trace — tracing is a
// diagnostic mode, not a production default.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
}

// NewTracer returns an enabled tracer with its epoch pinned to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), events: make([]Event, 0, 4096)}
}

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch returns the tracer's wall-clock origin (zero time for nil).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Kernel records one kernel launch: wall start/duration plus the launch's
// position and extent on the simulated clock.
func (t *Tracer) Kernel(name string, start time.Time, dur, sim, simDur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: CatKernel, Kind: KindSpan,
		TS: start.Sub(t.epoch), Dur: dur, Sim: sim, SimDur: simDur, Iter: -1,
	})
	t.mu.Unlock()
}

// Span records a completed operator-group (or flow-stage) span.
func (t *Tracer) Span(name, cat string, start time.Time, dur, sim, simDur time.Duration, iter int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Kind: KindSpan,
		TS: start.Sub(t.epoch), Dur: dur, Sim: sim, SimDur: simDur, Iter: iter,
	})
	t.mu.Unlock()
}

// Instant records a zero-duration marker (e.g. a host-device sync point).
func (t *Tracer) Instant(name, cat string, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Kind: KindInstant, TS: at.Sub(t.epoch), Iter: -1,
	})
	t.mu.Unlock()
}

// Counter records a scalar sample (per-iteration lambda, gamma, omega,
// overflow), rendered by Chrome tracing as a counter track.
func (t *Tracer) Counter(name string, at time.Time, iter int, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: CatCounterTrack, Kind: KindCounter,
		TS: at.Sub(t.epoch), Iter: iter, Value: v,
	})
	t.mu.Unlock()
}

// CatCounterTrack is the category of counter samples.
const CatCounterTrack = "metric"

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// KernelLaunchCounts aggregates the recorded kernel events per operator
// name. Summed over all names this equals the engine's Stats().Launches
// for the traced window (the tentpole's acceptance invariant).
func (t *Tracer) KernelLaunchCounts() map[string]int64 {
	counts := make(map[string]int64)
	if t == nil {
		return counts
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.events {
		if t.events[i].Cat == CatKernel && t.events[i].Kind == KindSpan {
			counts[t.events[i].Name]++
		}
	}
	return counts
}

// Chrome trace_event pids/tids. Two "processes" render the two clocks:
// pid 1 is the wall-clock timeline (tid 1 kernels, tid 2 operator groups,
// tid 3 flow stages), pid 2 replays the kernels on the simulated clock.
const (
	pidWall = 1
	pidSim  = 2

	tidKernels = 1
	tidGroups  = 2
	tidFlow    = 3
)

// chromeEvent is the trace_event wire form.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace serializes the trace in the Chrome trace_event JSON
// object format ({"traceEvents": [...]}); load the file at
// chrome://tracing or https://ui.perfetto.dev. The wall-clock timeline is
// pid 1 (kernels, operator groups, flow stages on separate threads) and
// the simulated clock replays the kernels on pid 2, so launch-overhead
// effects (§3.1.3) are visible as the gap between the two timelines.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, 2*len(events)+8)
	meta := func(pid int, name string) {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	tmeta := func(pid, tid int, name string) {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidWall, "wall clock")
	meta(pidSim, "simulated clock (compute + launch overhead)")
	tmeta(pidWall, tidKernels, "kernel launches")
	tmeta(pidWall, tidGroups, "operator groups")
	tmeta(pidWall, tidFlow, "flow stages")
	tmeta(pidSim, tidKernels, "kernel launches (sim)")

	for _, ev := range events {
		switch ev.Kind {
		case KindSpan:
			tid := tidKernels
			switch ev.Cat {
			case CatGroup:
				tid = tidGroups
			case CatFlow:
				tid = tidFlow
			}
			args := map[string]any{"sim_us": us(ev.Sim), "sim_dur_us": us(ev.SimDur)}
			if ev.Iter >= 0 {
				args["iter"] = ev.Iter
			}
			out = append(out, chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "X",
				TS: us(ev.TS), Dur: us(ev.Dur), Pid: pidWall, Tid: tid, Args: args,
			})
			if ev.Cat == CatKernel {
				out = append(out, chromeEvent{
					Name: ev.Name, Cat: ev.Cat, Ph: "X",
					TS: us(ev.Sim), Dur: us(ev.SimDur), Pid: pidSim, Tid: tidKernels,
				})
			}
		case KindInstant:
			out = append(out, chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "i", S: "t",
				TS: us(ev.TS), Pid: pidWall, Tid: tidKernels,
			})
		case KindCounter:
			out = append(out, chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "C",
				TS: us(ev.TS), Pid: pidWall, Tid: 0,
				Args: map[string]any{"value": ev.Value},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

// WriteSummary prints a per-operator launch/time table from the trace
// (the text fallback when a Chrome trace viewer is not at hand).
func (t *Tracer) WriteSummary(w io.Writer) error {
	type agg struct {
		launches int64
		dur      time.Duration
	}
	per := make(map[string]*agg)
	var total int64
	for _, ev := range t.Events() {
		if ev.Cat != CatKernel || ev.Kind != KindSpan {
			continue
		}
		a := per[ev.Name]
		if a == nil {
			a = &agg{}
			per[ev.Name] = a
		}
		a.launches++
		a.dur += ev.Dur
		total++
	}
	if _, err := fmt.Fprintf(w, "trace: %d kernel launches across %d operators\n", total, len(per)); err != nil {
		return err
	}
	for name, a := range per {
		if _, err := fmt.Fprintf(w, "  %-32s launches=%-8d compute=%v\n", name, a.launches, a.dur); err != nil {
			return err
		}
	}
	return nil
}
