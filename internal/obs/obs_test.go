package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// --------------------------------------------------------------- tracer

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every recording method must be a no-op, not a panic.
	tr.Kernel("k", time.Now(), time.Millisecond, 0, 0)
	tr.Span("s", CatGroup, time.Now(), time.Millisecond, 0, 0, 3)
	tr.Instant("i", CatKernel, time.Now())
	tr.Counter("c", time.Now(), 1, 4.2)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
	if n := len(tr.KernelLaunchCounts()); n != 0 {
		t.Fatalf("nil tracer launch counts = %d entries", n)
	}
}

func TestTracerRecordsAndCounts(t *testing.T) {
	tr := NewTracer()
	base := tr.Epoch()
	for i := 0; i < 3; i++ {
		tr.Kernel("wl.fused", base.Add(time.Duration(i)*time.Millisecond), 100*time.Microsecond,
			time.Duration(i)*time.Millisecond, 106*time.Microsecond)
	}
	tr.Kernel("density.cells", base, 50*time.Microsecond, 0, 56*time.Microsecond)
	tr.Span("op.wirelength", CatGroup, base, time.Millisecond, 0, time.Millisecond, 0)
	tr.Counter("overflow", base, 0, 0.9)

	counts := tr.KernelLaunchCounts()
	if counts["wl.fused"] != 3 || counts["density.cells"] != 1 {
		t.Fatalf("launch counts = %v", counts)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("total launches = %d, want 4", total)
	}
	if tr.Len() != 6 {
		t.Fatalf("events = %d, want 6", tr.Len())
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Kernel("k", time.Now(), time.Microsecond, 0, 0)
			}
		}()
	}
	wg.Wait()
	if got := tr.KernelLaunchCounts()["k"]; got != 800 {
		t.Fatalf("concurrent launches recorded = %d, want 800", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	base := tr.Epoch()
	tr.Kernel("wl.fused", base.Add(time.Millisecond), 200*time.Microsecond, time.Millisecond, 206*time.Microsecond)
	tr.Span("op.density", CatGroup, base, 2*time.Millisecond, 0, 2*time.Millisecond, 7)
	tr.Span("legalize", CatFlow, base, time.Millisecond, 0, 0, -1)
	tr.Instant("sync", CatKernel, base)
	tr.Counter("lambda", base, 7, 1e-4)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var kernelsWall, kernelsSim, groups, flows, counters, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			pid := int(ev["pid"].(float64))
			switch {
			case ev["cat"] == CatKernel && pid == 1:
				kernelsWall++
			case ev["cat"] == CatKernel && pid == 2:
				kernelsSim++
			case ev["cat"] == CatGroup:
				groups++
				if args := ev["args"].(map[string]any); args["iter"].(float64) != 7 {
					t.Errorf("group span iter = %v", args["iter"])
				}
			case ev["cat"] == CatFlow:
				flows++
			}
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	// Every kernel appears on BOTH clocks (wall pid 1, simulated pid 2).
	if kernelsWall != 1 || kernelsSim != 1 || groups != 1 || flows != 1 || counters != 1 || instants != 1 {
		t.Fatalf("event census: wall=%d sim=%d groups=%d flows=%d counters=%d instants=%d",
			kernelsWall, kernelsSim, groups, flows, counters, instants)
	}

	var sb strings.Builder
	if err := tr.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wl.fused") {
		t.Errorf("summary missing operator name:\n%s", sb.String())
	}
}

// -------------------------------------------------------------- registry

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	g.Set(3)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil-registry instruments retained state")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("launches_total", "kernel launches")
	b := r.Counter("launches_total", "kernel launches")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared counter not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("launches_total", "")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs processed").Add(5)
	r.Gauge("overflow", "current overflow").Set(0.25)
	r.GaugeFunc(`engine_launches{engine="0"}`, "per-engine launches", func() float64 { return 42 })
	r.GaugeFunc(`engine_launches{engine="1"}`, "per-engine launches", func() float64 { return 7 })
	h := r.Histogram("iter_seconds", "iteration wall time", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"overflow 0.25",
		"# TYPE engine_launches gauge",
		`engine_launches{engine="0"} 42`,
		`engine_launches{engine="1"} 7`,
		`iter_seconds_bucket{le="0.01"} 1`,
		`iter_seconds_bucket{le="0.1"} 2`,
		`iter_seconds_bucket{le="1"} 2`,
		`iter_seconds_bucket{le="+Inf"} 3`,
		"iter_seconds_sum 5.055",
		"iter_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The family header must appear once even with two labeled series.
	if strings.Count(out, "# TYPE engine_launches gauge") != 1 {
		t.Errorf("duplicated family header:\n%s", out)
	}
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`job_seconds{queue="gp"}`, "", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`job_seconds_bucket{queue="gp",le="1"} 1`,
		`job_seconds_sum{queue="gp"} 0.5`,
		`job_seconds_count{queue="gp"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q:\n%s", want, out)
		}
	}
}

// ----------------------------------------------------------- bench record

func benchRecordFixture() BenchRecord {
	return BenchRecord{
		Schema:    BenchSchema,
		CreatedAt: "2026-08-06T00:00:00Z",
		Note:      "fixture",
		Runs: []BenchRun{
			{Config: "baseline", Bench: "adaptec1", Scale: 0.004, Seed: 1, Workers: 4,
				LaunchUS: 150, Iterations: 60, HPWL: 123456, Overflow: 0.8,
				WallMS: 100, SimMS: 400, Launches: 2000, Syncs: 120, ArenaPeak: 1 << 20},
			{Config: "xplace", Bench: "adaptec1", Scale: 0.004, Seed: 1, Workers: 4,
				LaunchUS: 150, Iterations: 60, HPWL: 120000, Overflow: 0.8,
				WallMS: 60, SimMS: 200, Launches: 900, Syncs: 60, ArenaPeak: 1 << 20},
		},
	}
}

func TestBenchRecordRoundTrip(t *testing.T) {
	rec := benchRecordFixture()
	var buf bytes.Buffer
	if err := WriteBenchRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != rec.Schema || len(got.Runs) != len(rec.Runs) {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	for i := range rec.Runs {
		if got.Runs[i] != rec.Runs[i] {
			t.Errorf("run %d round trip: got %+v want %+v", i, got.Runs[i], rec.Runs[i])
		}
	}
}

func TestBenchRecordValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchRecord)
	}{
		{"bad schema", func(r *BenchRecord) { r.Schema = "xplace-bench/999" }},
		{"no runs", func(r *BenchRecord) { r.Runs = nil }},
		{"missing config", func(r *BenchRecord) { r.Runs[0].Config = "" }},
		{"missing bench", func(r *BenchRecord) { r.Runs[0].Bench = "" }},
		{"zero iterations", func(r *BenchRecord) { r.Runs[0].Iterations = 0 }},
		{"bad hpwl", func(r *BenchRecord) { r.Runs[0].HPWL = 0 }},
		{"zero launches", func(r *BenchRecord) { r.Runs[0].Launches = 0 }},
		{"micro missing name", func(r *BenchRecord) {
			r.Micro = []BenchMicro{{Backend: "float32", MS: 1.5}}
		}},
		{"micro missing backend", func(r *BenchRecord) {
			r.Micro = []BenchMicro{{Name: "poisson512", MS: 1.5}}
		}},
		{"micro bad ms", func(r *BenchRecord) {
			r.Micro = []BenchMicro{{Name: "poisson512", Backend: "float32", MS: 0}}
		}},
	}
	for _, tc := range cases {
		rec := benchRecordFixture()
		tc.mutate(&rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid record", tc.name)
		}
	}
}

func TestCompareBenchRecords(t *testing.T) {
	base := benchRecordFixture()
	// Identical records pass.
	if err := CompareBenchRecords(base, base, 0.05); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	// Small HPWL drift within tolerance passes.
	cur := benchRecordFixture()
	cur.Runs[1].HPWL *= 1.04
	if err := CompareBenchRecords(base, cur, 0.05); err != nil {
		t.Fatalf("4%% drift rejected at 5%% tolerance: %v", err)
	}
	// HPWL regression beyond tolerance fails.
	cur = benchRecordFixture()
	cur.Runs[1].HPWL *= 1.10
	if err := CompareBenchRecords(base, cur, 0.05); err == nil {
		t.Fatal("10% HPWL regression passed a 5% gate")
	}
	// The gate is bidirectional: an unexpectedly BETTER HPWL beyond
	// tolerance is numeric drift on a pinned config and fails too.
	cur = benchRecordFixture()
	cur.Runs[1].HPWL *= 0.90
	if err := CompareBenchRecords(base, cur, 0.05); err == nil {
		t.Fatal("10% HPWL improvement passed a 5% drift gate")
	}
	// A changed launch count at equal iterations fails (operator schedule
	// drifted).
	cur = benchRecordFixture()
	cur.Runs[0].Launches += 60
	if err := CompareBenchRecords(base, cur, 0.05); err == nil {
		t.Fatal("launch-count drift passed")
	}
	// A missing config fails.
	cur = benchRecordFixture()
	cur.Runs = cur.Runs[:1]
	if err := CompareBenchRecords(base, cur, 0.05); err == nil {
		t.Fatal("missing config passed")
	}
}
