// Package nn implements the paper's neural extension (§3.3): a two-path
// Fourier Neural Operator that maps a placement density map to its
// electric field. Each block combines a frequency-domain path (2-D FFT,
// low-pass filter keeping a fixed number of modes, a complex linear
// transform per retained mode, inverse FFT — Eq. 11) and a spatial path
// (pixel-wise 1x1 convolution), summed and passed through GELU (Eq. 12).
// The input is lifted from {density; mesh-x; mesh-y} by a fully-connected
// layer and projected back to one channel at the output; the relative L2
// loss (Eq. 13) drives Adam training.
//
// Keeping only low-frequency modes makes the model resolution-independent
// (train low-res, run high-res), and the x/y symmetry of Poisson's
// equation lets one trained direction serve both via the transpose trick —
// both properties the paper claims and this package tests.
//
// All forward AND backward passes are hand-derived (no autograd), pure Go.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"xplace/internal/dct"
)

// Config describes the model architecture. The default (Width 17,
// Modes 10, Layers 4) lands at ~464k parameters — the same class as the
// paper's 471k, 60% of a small U-Net.
type Config struct {
	Width  int // channel count C
	Modes  int // retained low-pass modes per axis (m)
	Layers int // FNO blocks
	Seed   int64
}

// DefaultConfig returns the paper-scale architecture.
func DefaultConfig() Config { return Config{Width: 17, Modes: 10, Layers: 4, Seed: 1} }

// InChannels is the input channel count: density + mesh-x + mesh-y.
const InChannels = 3

// tensorCH is a channels-first feature map: data[c] has length H*W.
type tensorCH struct {
	data [][]float64
	h, w int
}

func newCH(c, h, w int) tensorCH {
	t := tensorCH{data: make([][]float64, c), h: h, w: w}
	for i := range t.data {
		t.data[i] = make([]float64, h*w)
	}
	return t
}

// conv1x1 is a pixel-wise fully connected layer across channels.
type conv1x1 struct {
	in, out int
	w       []float64 // [out*in]
	b       []float64 // [out]
	gw      []float64
	gb      []float64
	inCache tensorCH
}

func newConv1x1(in, out int, rng *rand.Rand) *conv1x1 {
	c := &conv1x1{
		in: in, out: out,
		w:  make([]float64, out*in),
		b:  make([]float64, out),
		gw: make([]float64, out*in),
		gb: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range c.w {
		c.w[i] = rng.NormFloat64() * scale
	}
	return c
}

func (c *conv1x1) forward(x tensorCH) tensorCH {
	c.inCache = x
	y := newCH(c.out, x.h, x.w)
	n := x.h * x.w
	for o := 0; o < c.out; o++ {
		yo := y.data[o]
		for p := 0; p < n; p++ {
			yo[p] = c.b[o]
		}
		for i := 0; i < c.in; i++ {
			wi := c.w[o*c.in+i]
			xi := x.data[i]
			for p := 0; p < n; p++ {
				yo[p] += wi * xi[p]
			}
		}
	}
	return y
}

func (c *conv1x1) backward(g tensorCH) tensorCH {
	x := c.inCache
	n := x.h * x.w
	gx := newCH(c.in, x.h, x.w)
	for o := 0; o < c.out; o++ {
		go_ := g.data[o]
		for p := 0; p < n; p++ {
			c.gb[o] += go_[p]
		}
		for i := 0; i < c.in; i++ {
			xi := x.data[i]
			gxi := gx.data[i]
			wi := c.w[o*c.in+i]
			var gw float64
			for p := 0; p < n; p++ {
				gw += go_[p] * xi[p]
				gxi[p] += wi * go_[p]
			}
			c.gw[o*c.in+i] += gw
		}
	}
	return gx
}

// geluLayer applies the GELU activation (tanh approximation).
type geluLayer struct {
	inCache tensorCH
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

func geluGrad(x float64) float64 {
	t := math.Tanh(geluC * (x + 0.044715*x*x*x))
	dt := (1 - t*t) * geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*dt
}

func (l *geluLayer) forward(x tensorCH) tensorCH {
	l.inCache = x
	y := newCH(len(x.data), x.h, x.w)
	for c := range x.data {
		for p, v := range x.data[c] {
			y.data[c][p] = gelu(v)
		}
	}
	return y
}

func (l *geluLayer) backward(g tensorCH) tensorCH {
	x := l.inCache
	gx := newCH(len(x.data), x.h, x.w)
	for c := range x.data {
		for p := range x.data[c] {
			gx.data[c][p] = g.data[c][p] * geluGrad(x.data[c][p])
		}
	}
	return gx
}

// spectralConv is the frequency path: FFT2 -> low-pass keep of
// 2*Modes*Modes complex modes -> complex channel mixing -> real(IFFT2).
// Weights are indexed by mode slot, so the layer runs at any resolution
// with H, W >= 2*Modes.
type spectralConv struct {
	in, out, modes int
	// wRe/wIm[(o*in+i)*nModes + mode]
	wRe, wIm []float64
	gRe, gIm []float64

	// caches for backward
	inSpec [][]complex128 // per input channel, kept modes only
	h, w   int
}

func (s *spectralConv) nModes() int { return 2 * s.modes * s.modes }

func newSpectralConv(in, out, modes int, rng *rand.Rand) *spectralConv {
	s := &spectralConv{in: in, out: out, modes: modes}
	n := in * out * s.nModes()
	s.wRe = make([]float64, n)
	s.wIm = make([]float64, n)
	s.gRe = make([]float64, n)
	s.gIm = make([]float64, n)
	scale := 1.0 / float64(in)
	for i := range s.wRe {
		s.wRe[i] = rng.NormFloat64() * scale
		s.wIm[i] = rng.NormFloat64() * scale
	}
	return s
}

// modeCoords maps a mode slot to spectrum coordinates for an HxW grid:
// block 0 holds ky in [0, m), block 1 holds ky in [H-m, H); kx in [0, m).
func (s *spectralConv) modeCoords(slot, h int) (ky, kx int) {
	m := s.modes
	block := slot / (m * m)
	rem := slot % (m * m)
	ky = rem / m
	kx = rem % m
	if block == 1 {
		ky = h - m + ky
	}
	return ky, kx
}

// fft2 computes the 2-D FFT of a real map (row-major h x w) into a
// complex spectrum.
func fft2(x []float64, h, w int) []complex128 {
	spec := make([]complex128, h*w)
	for i, v := range x {
		spec[i] = complex(v, 0)
	}
	// Rows.
	for y := 0; y < h; y++ {
		dct.FFT(spec[y*w : (y+1)*w])
	}
	// Columns.
	col := make([]complex128, h)
	for x0 := 0; x0 < w; x0++ {
		for y := 0; y < h; y++ {
			col[y] = spec[y*w+x0]
		}
		dct.FFT(col)
		for y := 0; y < h; y++ {
			spec[y*w+x0] = col[y]
		}
	}
	return spec
}

// ifft2Real computes Re(IFFT2(spec))/(h*w).
func ifft2Real(spec []complex128, h, w int) []float64 {
	buf := make([]complex128, h*w)
	copy(buf, spec)
	for y := 0; y < h; y++ {
		dct.IFFT(buf[y*w : (y+1)*w])
	}
	col := make([]complex128, h)
	for x0 := 0; x0 < w; x0++ {
		for y := 0; y < h; y++ {
			col[y] = buf[y*w+x0]
		}
		dct.IFFT(col)
		for y := 0; y < h; y++ {
			buf[y*w+x0] = col[y]
		}
	}
	out := make([]float64, h*w)
	norm := 1 / float64(h*w)
	for i, v := range buf {
		out[i] = real(v) * norm
	}
	return out
}

func (s *spectralConv) forward(x tensorCH) tensorCH {
	h, w := x.h, x.w
	s.h, s.w = h, w
	nm := s.nModes()
	if h < 2*s.modes || w < 2*s.modes {
		panic(fmt.Sprintf("nn: resolution %dx%d too small for %d modes", h, w, s.modes))
	}
	// Keep only the filtered modes of each input channel.
	s.inSpec = make([][]complex128, s.in)
	for i := 0; i < s.in; i++ {
		full := fft2(x.data[i], h, w)
		kept := make([]complex128, nm)
		for slot := 0; slot < nm; slot++ {
			ky, kx := s.modeCoords(slot, h)
			kept[slot] = full[ky*w+kx]
		}
		s.inSpec[i] = kept
	}
	y := newCH(s.out, h, w)
	outSpec := make([]complex128, h*w)
	for o := 0; o < s.out; o++ {
		for i := range outSpec {
			outSpec[i] = 0
		}
		for slot := 0; slot < nm; slot++ {
			ky, kx := s.modeCoords(slot, h)
			var acc complex128
			for i := 0; i < s.in; i++ {
				wc := complex(s.wRe[(o*s.in+i)*nm+slot], s.wIm[(o*s.in+i)*nm+slot])
				acc += wc * s.inSpec[i][slot]
			}
			outSpec[ky*w+kx] = acc
		}
		// Real part of the inverse transform symmetrizes the spectrum.
		y.data[o] = ifft2Real(outSpec, h, w)
	}
	return y
}

func (s *spectralConv) backward(g tensorCH) tensorCH {
	h, w := s.h, s.w
	nm := s.nModes()
	norm := 1 / float64(h*w)
	// G_Y[k] = FFT2(g)/N on kept modes.
	gySpec := make([][]complex128, s.out)
	for o := 0; o < s.out; o++ {
		full := fft2(g.data[o], h, w)
		kept := make([]complex128, nm)
		for slot := 0; slot < nm; slot++ {
			ky, kx := s.modeCoords(slot, h)
			kept[slot] = full[ky*w+kx] * complex(norm, 0)
		}
		gySpec[o] = kept
	}
	// Weight grads: G_w = conj(x) * G_Y; input spectrum grads:
	// G_X = conj(w) * G_Y.
	gxSpec := make([][]complex128, s.in)
	for i := range gxSpec {
		gxSpec[i] = make([]complex128, nm)
	}
	for o := 0; o < s.out; o++ {
		for i := 0; i < s.in; i++ {
			base := (o*s.in + i) * nm
			for slot := 0; slot < nm; slot++ {
				gy := gySpec[o][slot]
				gw := gy * complex(real(s.inSpec[i][slot]), -imag(s.inSpec[i][slot]))
				s.gRe[base+slot] += real(gw)
				s.gIm[base+slot] += imag(gw)
				wc := complex(s.wRe[base+slot], -s.wIm[base+slot])
				gxSpec[i][slot] += wc * gy
			}
		}
	}
	// Back through the FFT: dL/dx = Re(unnormalized IFFT2(G_X)).
	gx := newCH(s.in, h, w)
	spec := make([]complex128, h*w)
	for i := 0; i < s.in; i++ {
		for k := range spec {
			spec[k] = 0
		}
		for slot := 0; slot < nm; slot++ {
			ky, kx := s.modeCoords(slot, h)
			spec[ky*w+kx] = gxSpec[i][slot]
		}
		// Unnormalized inverse = ifft2Real * (h*w).
		rr := ifft2Real(spec, h, w)
		for p := range rr {
			gx.data[i][p] = rr[p] * float64(h*w)
		}
	}
	return gx
}

// block is one FNO layer: spectral + spatial paths, summed, GELU.
type block struct {
	spec *spectralConv
	conv *conv1x1
	act  geluLayer
}

func (b *block) forward(x tensorCH) tensorCH {
	sp := b.spec.forward(x)
	cv := b.conv.forward(x)
	sum := newCH(len(sp.data), x.h, x.w)
	for c := range sum.data {
		for p := range sum.data[c] {
			sum.data[c][p] = sp.data[c][p] + cv.data[c][p]
		}
	}
	return b.act.forward(sum)
}

func (b *block) backward(g tensorCH) tensorCH {
	gs := b.act.backward(g)
	g1 := b.spec.backward(gs)
	g2 := b.conv.backward(gs)
	for c := range g1.data {
		for p := range g1.data[c] {
			g1.data[c][p] += g2.data[c][p]
		}
	}
	return g1
}

// Model is the full two-path FNO of Figure 3.
type Model struct {
	Cfg Config
	// TrainRes is the grid resolution the model was trained on (0 if
	// never trained). Informational: the FNO is resolution-independent,
	// but the value is recorded in saved artifacts.
	TrainRes int
	// ArtifactSHA is the payload sha256 of the artifact this model was
	// loaded from ("" for freshly constructed models).
	ArtifactSHA string

	lift   *conv1x1
	blocks []*block
	proj   *conv1x1
}

// Validate reports whether the config describes a buildable model. The
// upper bounds keep a corrupt artifact header from driving absurd
// allocations.
func (cfg Config) Validate() error {
	if cfg.Width <= 0 || cfg.Modes <= 0 || cfg.Layers <= 0 {
		return fmt.Errorf("nn: invalid config %+v: width, modes and layers must be positive", cfg)
	}
	if cfg.Width > 1024 || cfg.Modes > 1024 || cfg.Layers > 128 {
		return fmt.Errorf("nn: invalid config %+v: width/modes <= 1024, layers <= 128", cfg)
	}
	return nil
}

// NewModel builds a randomly initialized model.
func NewModel(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg}
	m.lift = newConv1x1(InChannels, cfg.Width, rng)
	for i := 0; i < cfg.Layers; i++ {
		m.blocks = append(m.blocks, &block{
			spec: newSpectralConv(cfg.Width, cfg.Width, cfg.Modes, rng),
			conv: newConv1x1(cfg.Width, cfg.Width, rng),
		})
	}
	m.proj = newConv1x1(cfg.Width, 1, rng)
	return m
}

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int {
	n := len(m.lift.w) + len(m.lift.b) + len(m.proj.w) + len(m.proj.b)
	for _, b := range m.blocks {
		n += len(b.spec.wRe) + len(b.spec.wIm) + len(b.conv.w) + len(b.conv.b)
	}
	return n
}

// params returns flat views of every parameter and gradient buffer.
func (m *Model) params() (ps, gs [][]float64) {
	add := func(p, g []float64) {
		ps = append(ps, p)
		gs = append(gs, g)
	}
	add(m.lift.w, m.lift.gw)
	add(m.lift.b, m.lift.gb)
	for _, b := range m.blocks {
		add(b.spec.wRe, b.spec.gRe)
		add(b.spec.wIm, b.spec.gIm)
		add(b.conv.w, b.conv.gw)
		add(b.conv.b, b.conv.gb)
	}
	add(m.proj.w, m.proj.gw)
	add(m.proj.b, m.proj.gb)
	return ps, gs
}

// zeroGrad clears all gradient buffers.
func (m *Model) zeroGrad() {
	_, gs := m.params()
	for _, g := range gs {
		for i := range g {
			g[i] = 0
		}
	}
}

// buildInput assembles I = {D; Mx; My} (Mx = x/W, My = y/H mesh indices).
func buildInput(density []float64, h, w int) tensorCH {
	x := newCH(InChannels, h, w)
	copy(x.data[0], density)
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			x.data[1][yy*w+xx] = float64(xx) / float64(w)
			x.data[2][yy*w+xx] = float64(yy) / float64(h)
		}
	}
	return x
}

// Forward predicts the x-direction field for a density map (row-major
// h x w).
func (m *Model) Forward(density []float64, h, w int) []float64 {
	x := buildInput(density, h, w)
	hdn := m.lift.forward(x)
	for _, b := range m.blocks {
		hdn = b.forward(hdn)
	}
	out := m.proj.forward(hdn)
	return out.data[0]
}

// forwardBackward runs one sample through the model, computes the
// relative L2 loss against label and accumulates parameter gradients.
func (m *Model) forwardBackward(density, label []float64, h, w int) float64 {
	pred := m.Forward(density, h, w)
	// Relative L2 (Eq. 13).
	var diffSq, labSq float64
	for i := range pred {
		d := pred[i] - label[i]
		diffSq += d * d
		labSq += label[i] * label[i]
	}
	diffNorm := math.Sqrt(diffSq)
	labNorm := math.Sqrt(labSq)
	if labNorm < 1e-12 {
		labNorm = 1e-12
	}
	loss := diffNorm / labNorm
	// dL/dpred = (pred - label) / (|diff| * |label|).
	g := newCH(1, h, w)
	denom := diffNorm * labNorm
	if denom < 1e-12 {
		denom = 1e-12
	}
	for i := range pred {
		g.data[0][i] = (pred[i] - label[i]) / denom
	}
	gh := m.proj.backward(g)
	for i := len(m.blocks) - 1; i >= 0; i-- {
		gh = m.blocks[i].backward(gh)
	}
	m.lift.backward(gh)
	return loss
}
