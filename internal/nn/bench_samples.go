package nn

import (
	"fmt"
	"math/rand"

	"xplace/internal/benchgen"
	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/kernel"
)

// GenerateBenchSamples derives training samples from the synthetic
// contest benchmarks instead of purely random blobs: each requested
// design is generated at the given scale, its movable cells are thrown
// to random positions (the distributions the early placer stage
// actually sees), the density is scattered onto an h x w grid over the
// design region, and the map is labeled with the numerical Poisson
// solve — §3.3's "randomly distributed density maps" drawn from real
// design statistics. perBench placements are sampled per design.
func GenerateBenchSamples(benches []string, perBench, h, w int, scale float64, seed int64) ([]Sample, error) {
	if perBench <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("nn: bench samples need perBench, h, w > 0")
	}
	e := kernel.New(kernel.Options{Workers: 1})
	out := make([]Sample, 0, len(benches)*perBench)
	for bi, name := range benches {
		spec, ok := benchgen.FindSpec(name)
		if !ok {
			return nil, fmt.Errorf("nn: unknown benchmark %q", name)
		}
		d := benchgen.Generate(spec, scale, seed)
		grid := geom.NewGrid(d.Region, w, h)
		sys := field.NewSystem(grid, e)
		rng := rand.New(rand.NewSource(seed + int64(bi)*7919))
		x := append([]float64(nil), d.CellX...)
		y := append([]float64(nil), d.CellY...)
		movable := d.MovableCells()
		dens := make([]float64, h*w)
		for s := 0; s < perBench; s++ {
			for _, c := range movable {
				x[c] = d.Region.Lx + rng.Float64()*(d.Region.Hx-d.Region.Lx)
				y[c] = d.Region.Ly + rng.Float64()*(d.Region.Hy-d.Region.Ly)
			}
			sys.ScatterDensity(e, d, x, y, field.MaskAll, dens, "nn.bench_scatter")
			copy(sys.Total, dens)
			sys.SolvePoisson(e)
			out = append(out, Sample{
				Density: append([]float64(nil), dens...),
				Ex:      append([]float64(nil), sys.Ex...),
				Ey:      append([]float64(nil), sys.Ey...),
				H:       h, W: w,
			})
		}
		sys.Release(e)
	}
	return out, nil
}
