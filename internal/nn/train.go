package nn

import (
	"math"
	"math/rand"

	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/kernel"
)

// Sample is one training example: a density map with its numerically
// solved electric field (both directions; training uses Ex, the flip
// trick covers Ey).
type Sample struct {
	Density []float64
	Ex, Ey  []float64
	H, W    int
}

// GenerateSamples builds n random training samples on an h x w grid
// (§3.3: "generate randomly distributed density maps and compute the
// numerical solution of the corresponding electric fields"). Maps are
// mixtures of Gaussian blobs (cell clusters) and rectangles (macros).
func GenerateSamples(n, h, w int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	e := kernel.New(kernel.Options{Workers: 1})
	grid := geom.NewGrid(geom.Rect{Hx: float64(w), Hy: float64(h)}, w, h)
	sys := field.NewSystem(grid, e)
	out := make([]Sample, 0, n)
	for s := 0; s < n; s++ {
		dens := randomDensity(rng, h, w)
		copy(sys.Total, dens)
		sys.SolvePoisson(e)
		smp := Sample{
			Density: dens,
			Ex:      append([]float64(nil), sys.Ex...),
			Ey:      append([]float64(nil), sys.Ey...),
			H:       h, W: w,
		}
		out = append(out, smp)
	}
	return out
}

// randomDensity synthesizes a density map: 3-10 Gaussian clusters plus
// 0-3 macro-like rectangles, clipped to [0, 4].
func randomDensity(rng *rand.Rand, h, w int) []float64 {
	d := make([]float64, h*w)
	blobs := 3 + rng.Intn(8)
	for b := 0; b < blobs; b++ {
		cx := rng.Float64() * float64(w)
		cy := rng.Float64() * float64(h)
		sx := (0.03 + 0.12*rng.Float64()) * float64(w)
		sy := (0.03 + 0.12*rng.Float64()) * float64(h)
		amp := 0.3 + 1.5*rng.Float64()
		for y := 0; y < h; y++ {
			dy := (float64(y) + 0.5 - cy) / sy
			for x := 0; x < w; x++ {
				dx := (float64(x) + 0.5 - cx) / sx
				d[y*w+x] += amp * math.Exp(-0.5*(dx*dx+dy*dy))
			}
		}
	}
	rects := rng.Intn(4)
	for r := 0; r < rects; r++ {
		x0 := rng.Intn(w)
		y0 := rng.Intn(h)
		rw := 2 + rng.Intn(w/4)
		rh := 2 + rng.Intn(h/4)
		amp := 0.5 + rng.Float64()
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				d[y*w+x] += amp
			}
		}
	}
	for i, v := range d {
		if v > 4 {
			d[i] = 4
		}
	}
	return d
}

// TrainOptions tunes Train.
type TrainOptions struct {
	Epochs int
	LR     float64
	// Log receives per-epoch mean relative-L2 loss (optional).
	Log  func(epoch int, loss float64)
	Seed int64
}

// Train fits the model on the samples' x-direction fields with Adam and
// returns the per-epoch mean relative-L2 losses.
func (m *Model) Train(samples []Sample, opts TrainOptions) []float64 {
	if opts.Epochs <= 0 {
		opts.Epochs = 10
	}
	if opts.LR <= 0 {
		opts.LR = 1e-3
	}
	if len(samples) > 0 && m.TrainRes == 0 {
		m.TrainRes = samples[0].H
	}
	ps, gs := m.params()
	mom := make([][]float64, len(ps))
	vel := make([][]float64, len(ps))
	for i := range ps {
		mom[i] = make([]float64, len(ps[i]))
		vel[i] = make([]float64, len(ps[i]))
	}
	const b1, b2, eps = 0.9, 0.999, 1e-8
	rng := rand.New(rand.NewSource(opts.Seed))
	losses := make([]float64, 0, opts.Epochs)
	step := 0
	for ep := 0; ep < opts.Epochs; ep++ {
		order := rng.Perm(len(samples))
		var sum float64
		for _, si := range order {
			s := samples[si]
			m.zeroGrad()
			sum += m.forwardBackward(s.Density, s.Ex, s.H, s.W)
			step++
			b1p := 1 - math.Pow(b1, float64(step))
			b2p := 1 - math.Pow(b2, float64(step))
			for i := range ps {
				p, g, mo, ve := ps[i], gs[i], mom[i], vel[i]
				for j := range p {
					mo[j] = b1*mo[j] + (1-b1)*g[j]
					ve[j] = b2*ve[j] + (1-b2)*g[j]*g[j]
					p[j] -= opts.LR * (mo[j] / b1p) / (math.Sqrt(ve[j]/b2p) + eps)
				}
			}
		}
		loss := sum / float64(len(samples))
		losses = append(losses, loss)
		if opts.Log != nil {
			opts.Log(ep, loss)
		}
	}
	return losses
}

// Evaluate returns the mean relative-L2 error of the model's x-field
// prediction over the samples (no training).
func (m *Model) Evaluate(samples []Sample) float64 {
	var sum float64
	for _, s := range samples {
		pred := m.Forward(s.Density, s.H, s.W)
		var diff, lab float64
		for i := range pred {
			d := pred[i] - s.Ex[i]
			diff += d * d
			lab += s.Ex[i] * s.Ex[i]
		}
		if lab < 1e-12 {
			lab = 1e-12
		}
		sum += math.Sqrt(diff) / math.Sqrt(lab)
	}
	return sum / float64(len(samples))
}

// EvaluateFlipY measures the flip trick (§3.3): the y field predicted by
// transposing the input, running the x-direction model, and transposing
// back.
func (m *Model) EvaluateFlipY(samples []Sample) float64 {
	var sum float64
	for _, s := range samples {
		pred := m.predictY(s.Density, s.H, s.W)
		var diff, lab float64
		for i := range pred {
			d := pred[i] - s.Ey[i]
			diff += d * d
			lab += s.Ey[i] * s.Ey[i]
		}
		if lab < 1e-12 {
			lab = 1e-12
		}
		sum += math.Sqrt(diff) / math.Sqrt(lab)
	}
	return sum / float64(len(samples))
}

// transpose returns the H x W map as W x H.
func transpose(a []float64, h, w int) []float64 {
	out := make([]float64, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[x*h+y] = a[y*w+x]
		}
	}
	return out
}

// predictY predicts the y field via the transpose trick.
func (m *Model) predictY(density []float64, h, w int) []float64 {
	t := transpose(density, h, w)
	py := m.Forward(t, w, h)
	return transpose(py, w, h)
}

// Predictor adapts a trained Model to the placer's FieldPredictor hook
// (Eq. 14 blending happens in the placer).
type Predictor struct {
	M *Model
}

// PredictField fills exOut/eyOut with the model's field prediction for
// the given density map.
func (p *Predictor) PredictField(density []float64, nx, ny int, exOut, eyOut []float64) {
	copy(exOut, p.M.Forward(density, ny, nx))
	copy(eyOut, p.M.predictY(density, ny, nx))
}

