package nn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func savedSmallModel(t *testing.T) (*Model, []byte) {
	t.Helper()
	m := NewModel(smallCfg())
	samples := GenerateSamples(3, 16, 16, 41)
	m.Train(samples, TrainOptions{Epochs: 2, LR: 1e-3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

func TestArtifactHeaderRoundTrip(t *testing.T) {
	m, raw := savedSmallModel(t)
	hdr, err := Stat(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Config != m.Cfg {
		t.Errorf("header config %+v != model %+v", hdr.Config, m.Cfg)
	}
	if hdr.TrainRes != 16 {
		t.Errorf("train res %d, want 16", hdr.TrainRes)
	}
	if hdr.ParamCount != m.ParamCount() {
		t.Errorf("param count %d, want %d", hdr.ParamCount, m.ParamCount())
	}
	if len(hdr.SHA256) != 64 {
		t.Errorf("sha256 %q not 64 hex chars", hdr.SHA256)
	}
	m2, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m2.TrainRes != 16 || m2.ArtifactSHA != hdr.SHA256 {
		t.Errorf("loaded model metadata = (%d, %q), want (16, %q)", m2.TrainRes, m2.ArtifactSHA, hdr.SHA256)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	_, raw := savedSmallModel(t)
	// Chop at several depths: inside the magic, the header, the payload.
	for _, n := range []int{0, 2, 6, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation at %d bytes: want error, got nil", n)
		} else if !errors.Is(err, ErrNotModel) && !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("truncation at %d bytes: error %v is not typed", n, err)
		}
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	_, raw := savedSmallModel(t)
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-20] ^= 0x40 // flip a payload bit
	_, err := Load(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("want ErrModelCorrupt for bit-flipped payload, got %v", err)
	}
	if !strings.Contains(err.Error(), "sha256") {
		t.Errorf("error %q does not mention the checksum", err)
	}
}

func TestLoadRejectsWrongShape(t *testing.T) {
	_, raw := savedSmallModel(t)
	// Rewrite the header to claim a different architecture; the payload
	// sha still matches, so the shape check must catch it.
	hlen := binary.LittleEndian.Uint32(raw[8:12])
	hdr := raw[12 : 12+int(hlen)]
	bigger := bytes.Replace(hdr, []byte(`"Width":6`), []byte(`"Width":8`), 1)
	if bytes.Equal(bigger, hdr) {
		t.Fatal("header rewrite did not take; test setup broken")
	}
	var buf bytes.Buffer
	buf.Write(raw[:8])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(bigger)))
	buf.Write(u32[:])
	buf.Write(bigger)
	buf.Write(raw[12+int(hlen):])
	_, err := Load(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrModelCorrupt) {
		t.Fatalf("want ErrModelCorrupt for wrong-shape artifact, got %v", err)
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	_, raw := savedSmallModel(t)
	wrongMagic := append([]byte("GOBX"), raw[4:]...)
	if _, err := Load(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrNotModel) {
		t.Errorf("want ErrNotModel for bad magic, got %v", err)
	}
	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(future[4:8], 99)
	if _, err := Load(bytes.NewReader(future)); !errors.Is(err, ErrModelVersion) {
		t.Errorf("want ErrModelVersion for future version, got %v", err)
	}
}

func TestGenerateBenchSamples(t *testing.T) {
	samples, err := GenerateBenchSamples([]string{"adaptec1"}, 2, 16, 16, 0.003, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	var mass float64
	for _, v := range samples[0].Density {
		mass += v
	}
	if mass <= 0 {
		t.Error("bench-derived density map is empty")
	}
	if _, err := GenerateBenchSamples([]string{"nope"}, 1, 8, 8, 0.01, 1); err == nil {
		t.Error("want error for unknown benchmark")
	}
}
