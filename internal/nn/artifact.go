package nn

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Model artifacts are a small framed format so a load failure says *why*:
//
//	magic "XFNM" | version u32 LE | header length u32 LE | header JSON | payload
//
// The header carries the architecture, the training resolution, the
// parameter count, and the sha256 of the payload; the payload is a gob
// stream of the flat parameter groups. Load verifies the frame before
// touching the payload, so truncated, bit-flipped, or wrong-shape
// artifacts fail with a typed, descriptive error instead of silently
// producing a mis-sized model.

// Typed artifact errors. Wrap details with fmt.Errorf("...: %w", Err...)
// so callers can errors.Is on the class while still seeing the cause.
var (
	// ErrNotModel means the input is not a model artifact at all (bad
	// magic, or shorter than the fixed frame).
	ErrNotModel = errors.New("nn: not a model artifact")
	// ErrModelVersion means the artifact frame is valid but its schema
	// version is newer than this binary understands.
	ErrModelVersion = errors.New("nn: unsupported model artifact version")
	// ErrModelCorrupt means the frame parsed but the content is damaged
	// or inconsistent: truncated payload, sha256 mismatch, invalid
	// config, or parameter shapes that disagree with the header.
	ErrModelCorrupt = errors.New("nn: corrupt model artifact")
)

// artifactMagic identifies an Xplace FNO model file.
var artifactMagic = [4]byte{'X', 'F', 'N', 'M'}

// ArtifactVersion is the current schema version written by Save.
const ArtifactVersion = 1

// maxHeaderLen bounds the header frame so a corrupt length field cannot
// drive a giant allocation.
const maxHeaderLen = 1 << 16

// ArtifactHeader is the JSON metadata framed ahead of the parameter
// payload.
type ArtifactHeader struct {
	Config     Config `json:"config"`
	TrainRes   int    `json:"train_res"`   // grid size the model was trained on (0 = unknown)
	ParamCount int    `json:"param_count"` // trainable scalars
	SHA256     string `json:"sha256"`      // hex sha256 of the payload
}

// Save serializes the model as a versioned artifact.
func (m *Model) Save(w io.Writer) error {
	ps, _ := m.params()
	groups := make([][]float64, len(ps))
	for i, p := range ps {
		groups[i] = append([]float64(nil), p...)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(groups); err != nil {
		return fmt.Errorf("nn: encoding params: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	hdr := ArtifactHeader{
		Config:     m.Cfg,
		TrainRes:   m.TrainRes,
		ParamCount: m.ParamCount(),
		SHA256:     hex.EncodeToString(sum[:]),
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("nn: encoding header: %w", err)
	}
	if _, err := w.Write(artifactMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], ArtifactVersion)
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdrJSON)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdrJSON); err != nil {
		return err
	}
	_, err = w.Write(payload.Bytes())
	return err
}

// Stat reads and validates only the artifact frame (magic, version,
// header), without decoding the parameter payload. The reader is left
// positioned at the start of the payload.
func Stat(r io.Reader) (ArtifactHeader, error) {
	var hdr ArtifactHeader
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return hdr, fmt.Errorf("%w: %v", ErrNotModel, err)
	}
	if magic != artifactMagic {
		return hdr, fmt.Errorf("%w: bad magic %q", ErrNotModel, magic[:])
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return hdr, fmt.Errorf("%w: truncated version field: %v", ErrModelCorrupt, err)
	}
	version := binary.LittleEndian.Uint32(u32[:])
	if version != ArtifactVersion {
		return hdr, fmt.Errorf("%w: version %d, this build reads %d", ErrModelVersion, version, ArtifactVersion)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return hdr, fmt.Errorf("%w: truncated header length: %v", ErrModelCorrupt, err)
	}
	hlen := binary.LittleEndian.Uint32(u32[:])
	if hlen == 0 || hlen > maxHeaderLen {
		return hdr, fmt.Errorf("%w: header length %d out of range", ErrModelCorrupt, hlen)
	}
	hdrJSON := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdrJSON); err != nil {
		return hdr, fmt.Errorf("%w: truncated header: %v", ErrModelCorrupt, err)
	}
	if err := json.Unmarshal(hdrJSON, &hdr); err != nil {
		return hdr, fmt.Errorf("%w: decoding header: %v", ErrModelCorrupt, err)
	}
	if err := hdr.Config.Validate(); err != nil {
		return hdr, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	return hdr, nil
}

// Load restores a model saved with Save, verifying the frame, the
// payload checksum, and every parameter-group shape before returning.
func Load(r io.Reader) (*Model, error) {
	hdr, err := Stat(r)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrModelCorrupt, err)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != hdr.SHA256 {
		return nil, fmt.Errorf("%w: payload sha256 %.12s... does not match header %.12s... (truncated or bit-flipped file)",
			ErrModelCorrupt, got, hdr.SHA256)
	}
	var groups [][]float64
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&groups); err != nil {
		return nil, fmt.Errorf("%w: decoding params: %v", ErrModelCorrupt, err)
	}
	m := NewModel(hdr.Config)
	if n := m.ParamCount(); hdr.ParamCount != n {
		return nil, fmt.Errorf("%w: header says %d params, config %+v builds %d (wrong-shape artifact)",
			ErrModelCorrupt, hdr.ParamCount, hdr.Config, n)
	}
	ps, _ := m.params()
	if len(ps) != len(groups) {
		return nil, fmt.Errorf("%w: %d param groups, want %d", ErrModelCorrupt, len(groups), len(ps))
	}
	for i := range ps {
		if len(ps[i]) != len(groups[i]) {
			return nil, fmt.Errorf("%w: param group %d has %d values, want %d", ErrModelCorrupt, i, len(groups[i]), len(ps[i]))
		}
		copy(ps[i], groups[i])
	}
	m.TrainRes = hdr.TrainRes
	m.ArtifactSHA = hdr.SHA256
	return m, nil
}
