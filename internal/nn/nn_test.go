package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func smallCfg() Config { return Config{Width: 6, Modes: 4, Layers: 2, Seed: 1} }

func TestParamCountPaperScale(t *testing.T) {
	m := NewModel(DefaultConfig())
	got := m.ParamCount()
	// The paper reports 471k parameters; the default config must land in
	// the same class (within ~10%).
	if got < 420_000 || got > 520_000 {
		t.Errorf("ParamCount = %d, want ~471k", got)
	}
	t.Logf("default model parameters: %d (paper: 471k)", got)
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	m := NewModel(smallCfg())
	h, w := 16, 16
	d := make([]float64, h*w)
	for i := range d {
		d[i] = float64(i%7) * 0.1
	}
	a := m.Forward(d, h, w)
	b := m.Forward(d, h, w)
	if len(a) != h*w {
		t.Fatalf("output len %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward not deterministic")
		}
		if math.IsNaN(a[i]) {
			t.Fatal("NaN in output")
		}
	}
}

// Gradient check: numerical vs analytic for a few random parameters.
func TestBackwardFiniteDifference(t *testing.T) {
	m := NewModel(smallCfg())
	h, w := 8, 8
	rng := rand.New(rand.NewSource(3))
	dens := make([]float64, h*w)
	label := make([]float64, h*w)
	for i := range dens {
		dens[i] = rng.Float64()
		label[i] = rng.NormFloat64()
	}
	m.zeroGrad()
	m.forwardBackward(dens, label, h, w)
	ps, gs := m.params()

	loss := func() float64 {
		pred := m.Forward(dens, h, w)
		var diff, lab float64
		for i := range pred {
			d := pred[i] - label[i]
			diff += d * d
			lab += label[i] * label[i]
		}
		return math.Sqrt(diff) / math.Sqrt(lab)
	}
	const eps = 1e-6
	checked := 0
	for gi := 0; gi < len(ps); gi++ {
		for _, j := range []int{0, len(ps[gi]) / 2} {
			if j >= len(ps[gi]) {
				continue
			}
			orig := ps[gi][j]
			ps[gi][j] = orig + eps
			up := loss()
			ps[gi][j] = orig - eps
			dn := loss()
			ps[gi][j] = orig
			fd := (up - dn) / (2 * eps)
			an := gs[gi][j]
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("param group %d[%d]: analytic %v vs FD %v", gi, j, an, fd)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d params checked", checked)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	samples := GenerateSamples(12, 16, 16, 5)
	m := NewModel(smallCfg())
	before := m.Evaluate(samples)
	losses := m.Train(samples, TrainOptions{Epochs: 30, LR: 2e-3, Seed: 1})
	after := m.Evaluate(samples)
	if after >= before {
		t.Errorf("training did not improve: %.4f -> %.4f", before, after)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss curve not decreasing: %v ... %v", losses[0], losses[len(losses)-1])
	}
	if after > 0.5 {
		t.Errorf("final training error %.3f too high", after)
	}
	t.Logf("rel-L2: untrained %.3f -> trained %.3f", before, after)
}

func TestGeneralizesToUnseenMaps(t *testing.T) {
	train := GenerateSamples(24, 16, 16, 7)
	test := GenerateSamples(8, 16, 16, 99)
	m := NewModel(smallCfg())
	untrained := m.Evaluate(test)
	m.Train(train, TrainOptions{Epochs: 40, LR: 2e-3, Seed: 2})
	trained := m.Evaluate(test)
	if trained >= untrained {
		t.Errorf("no generalization: %.3f -> %.3f on unseen maps", untrained, trained)
	}
	t.Logf("unseen maps rel-L2: %.3f -> %.3f", untrained, trained)
}

// The §3.3 resolution-independence claim: a model trained at 16x16 must
// still beat an untrained model at 32x32.
func TestResolutionTransfer(t *testing.T) {
	train := GenerateSamples(24, 16, 16, 11)
	hi := GenerateSamples(6, 32, 32, 13)
	m := NewModel(smallCfg())
	untrainedHi := m.Evaluate(hi)
	m.Train(train, TrainOptions{Epochs: 40, LR: 2e-3, Seed: 3})
	trainedHi := m.Evaluate(hi)
	if trainedHi >= untrainedHi {
		t.Errorf("no resolution transfer: %.3f -> %.3f at 32x32", untrainedHi, trainedHi)
	}
	t.Logf("32x32 rel-L2 after 16x16 training: %.3f (untrained %.3f)", trainedHi, untrainedHi)
}

// The flip trick: the x-direction model predicts the y field through
// transposition.
func TestFlipTrickPredictsYField(t *testing.T) {
	train := GenerateSamples(24, 16, 16, 17)
	test := GenerateSamples(8, 16, 16, 23)
	m := NewModel(smallCfg())
	untrainedY := m.EvaluateFlipY(test)
	m.Train(train, TrainOptions{Epochs: 40, LR: 2e-3, Seed: 4})
	trainedY := m.EvaluateFlipY(test)
	if trainedY >= untrainedY {
		t.Errorf("flip trick failed: %.3f -> %.3f", untrainedY, trainedY)
	}
	t.Logf("y-field via flip: %.3f -> %.3f", untrainedY, trainedY)
}

func TestTransposeInvolution(t *testing.T) {
	h, w := 3, 5
	a := make([]float64, h*w)
	for i := range a {
		a[i] = float64(i)
	}
	b := transpose(transpose(a, h, w), w, h)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("transpose not an involution")
		}
	}
}

func TestPredictorFillsBothFields(t *testing.T) {
	m := NewModel(smallCfg())
	p := &Predictor{M: m}
	nx, ny := 16, 16
	d := make([]float64, nx*ny)
	d[5*nx+5] = 2
	ex := make([]float64, nx*ny)
	ey := make([]float64, nx*ny)
	p.PredictField(d, nx, ny, ex, ey)
	var sx, sy float64
	for i := range ex {
		sx += math.Abs(ex[i])
		sy += math.Abs(ey[i])
	}
	if sx == 0 || sy == 0 {
		t.Error("predictor produced an all-zero field")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(smallCfg())
	samples := GenerateSamples(4, 16, 16, 29)
	m.Train(samples, TrainOptions{Epochs: 3, LR: 1e-3})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := samples[0].Density
	a := m.Forward(d, 16, 16)
	b := m2.Forward(d, 16, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model diverges from saved model")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a model")); err == nil {
		t.Error("want error for garbage input")
	}
}

func TestNewModelPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewModel(Config{})
}

func TestForwardPanicsOnTinyResolution(t *testing.T) {
	m := NewModel(smallCfg()) // modes 4 needs >= 8x8
	defer func() {
		if recover() == nil {
			t.Error("want panic for 4x4 input")
		}
	}()
	m.Forward(make([]float64, 16), 4, 4)
}

func TestGeluSanity(t *testing.T) {
	if gelu(0) != 0 {
		t.Error("gelu(0) != 0")
	}
	if gelu(10) < 9.9 {
		t.Error("positive tail should approach identity")
	}
	if g := gelu(-10); g > 1e-6 || g < -0.01 {
		t.Errorf("negative tail should vanish, got %v", g)
	}
	// Derivative via finite difference.
	for _, x := range []float64{-2, -0.5, 0, 0.7, 3} {
		fd := (gelu(x+1e-6) - gelu(x-1e-6)) / 2e-6
		if math.Abs(fd-geluGrad(x)) > 1e-5 {
			t.Errorf("geluGrad(%v) = %v, FD %v", x, geluGrad(x), fd)
		}
	}
}

func BenchmarkForward32(b *testing.B) {
	m := NewModel(smallCfg())
	d := make([]float64, 32*32)
	for i := range d {
		d[i] = float64(i%5) * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(d, 32, 32)
	}
}
