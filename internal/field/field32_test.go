package field

import (
	"math"
	"testing"

	"xplace/internal/backend"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

func newSys32(nx, ny int, e *kernel.Engine) *System {
	return NewSystemOn(geom.NewGrid(geom.Rect{Hx: float64(nx), Hy: float64(ny)}, nx, ny), e, backend.Float32())
}

// clusterDesign builds a dense cluster plus spread probes — enough density
// structure that the solve produces non-trivial fields everywhere.
func clusterDesign(t *testing.T, s *System) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("f32", s.Grid.Region)
	for i := 0; i < 24; i++ {
		d.AddCell("c", 2, 2, 8+float64(i%3), 16+float64(i%5), netlist.Movable)
	}
	d.AddCell("p1", 1, 1, 24, 16, netlist.Movable)
	d.AddCell("p2", 1.5, 1, 16, 24, netlist.Movable)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFloat32SystemMatchesReference is the tolerance-banded field golden:
// scatter, solve and gather on the float32 backend track the reference
// system within float32 rounding of the field magnitude.
func TestFloat32SystemMatchesReference(t *testing.T) {
	e := eng()
	defer e.Close()
	nx, ny := 32, 32
	ref := newSys(nx, ny, e)
	fast := newSys32(nx, ny, e)
	if fast.Backend() == nil || fast.Backend().Name() != "float32" {
		t.Fatal("system did not adopt the float32 backend")
	}
	d := clusterDesign(t, fast)

	ref.ScatterDensity(e, d, nil, nil, MaskMovable, ref.Total, "s64")
	fast.ScatterDensity(e, d, nil, nil, MaskMovable, fast.Total, "s32")
	e64 := ref.SolvePoisson(e)
	e32 := fast.SolvePoisson(e)

	var maxMag float64
	for i := range ref.Psi {
		for _, v := range [3]float64{ref.Psi[i], ref.Ex[i], ref.Ey[i]} {
			if a := math.Abs(v); a > maxMag {
				maxMag = a
			}
		}
	}
	const tol = 1e-5
	for i := range ref.Psi {
		if d := math.Abs(fast.Total[i] - ref.Total[i]); d > tol*(1+ref.Total[i]) {
			t.Fatalf("Total[%d] = %v, ref %v", i, fast.Total[i], ref.Total[i])
		}
		if d := math.Abs(fast.Psi[i] - ref.Psi[i]); d > tol*maxMag {
			t.Fatalf("Psi[%d] = %v, ref %v", i, fast.Psi[i], ref.Psi[i])
		}
		if d := math.Abs(fast.Ex[i] - ref.Ex[i]); d > tol*maxMag {
			t.Fatalf("Ex[%d] = %v, ref %v", i, fast.Ex[i], ref.Ex[i])
		}
		if d := math.Abs(fast.Ey[i] - ref.Ey[i]); d > tol*maxMag {
			t.Fatalf("Ey[%d] = %v, ref %v", i, fast.Ey[i], ref.Ey[i])
		}
	}
	if rel := math.Abs(e32-e64) / math.Max(math.Abs(e64), 1e-12); rel > tol {
		t.Errorf("energy %v vs reference %v (rel %g)", e32, e64, rel)
	}

	// Gather reads the converted float64 maps, so gradients band too.
	gx64 := make([]float64, d.NumCells())
	gy64 := make([]float64, d.NumCells())
	gx32 := make([]float64, d.NumCells())
	gy32 := make([]float64, d.NumCells())
	ref.GatherField(e, d, nil, nil, MaskMovable, gx64, gy64)
	fast.GatherField(e, d, nil, nil, MaskMovable, gx32, gy32)
	var maxG float64
	for i := range gx64 {
		maxG = math.Max(maxG, math.Max(math.Abs(gx64[i]), math.Abs(gy64[i])))
	}
	for i := range gx64 {
		if math.Abs(gx32[i]-gx64[i]) > tol*maxG || math.Abs(gy32[i]-gy64[i]) > tol*maxG {
			t.Fatalf("grad[%d] = (%v,%v), ref (%v,%v)", i, gx32[i], gy32[i], gx64[i], gy64[i])
		}
	}
}

// TestFloat32SystemRelease: the reduced-precision solve checks its element
// buffers out of the engine arena and Release returns every byte, twice.
func TestFloat32SystemRelease(t *testing.T) {
	e := eng()
	defer e.Close()
	s := newSys32(16, 16, e)
	base := e.ArenaStats().InUse
	for i := range s.Total {
		s.Total[i] = float64(i%7) * 0.3
	}
	s.SolvePoisson(e)
	if got := e.ArenaStats().InUse; got <= base {
		t.Fatalf("solve should hold arena bytes, InUse = %d (base %d)", got, base)
	}
	s.Release(e)
	if got := e.ArenaStats().InUse; got != base {
		t.Fatalf("InUse after Release = %d, want %d", got, base)
	}
	s.Release(e) // idempotent
	if got := e.ArenaStats().InUse; got != base {
		t.Fatalf("InUse after second Release = %d, want %d", got, base)
	}
	// The system stays usable after Release.
	s.SolvePoisson(e)
	s.Release(e)
}

// TestTruncationKeepsLowModes: with kx/ky at half band, a pure low-mode
// density is solved exactly (its spectrum is untouched) on both backends,
// while truncation plus the row cutoff produce identical results to
// manually zeroing the high modes.
func TestTruncationKeepsLowModes(t *testing.T) {
	nx, ny := 32, 32
	u, v := 3, 5 // below the half-band cutoff
	wu := math.Pi * float64(u) / float64(nx)
	wv := math.Pi * float64(v) / float64(ny)
	fill := func(s *System) {
		for yy := 0; yy < ny; yy++ {
			for xx := 0; xx < nx; xx++ {
				s.Total[yy*nx+xx] = math.Cos(wu*(float64(xx)+0.5)) * math.Cos(wv*(float64(yy)+0.5))
			}
		}
	}
	for _, mode := range []string{"float64", "float32"} {
		t.Run(mode, func(t *testing.T) {
			e := eng()
			defer e.Close()
			mk := func() *System {
				if mode == "float32" {
					return newSys32(nx, ny, e)
				}
				return newSys(nx, ny, e)
			}
			full, cut := mk(), mk()
			fill(full)
			fill(cut)
			cut.SetTruncation(nx/2, ny/2)
			full.SolvePoisson(e)
			cut.SolvePoisson(e)
			tol := 1e-9
			if mode == "float32" {
				tol = 1e-4
			}
			den := wu*wu + wv*wv
			for i := range cut.Psi {
				if math.Abs(cut.Psi[i]-full.Total[i]/den) > tol {
					t.Fatalf("truncated psi[%d] = %v, want %v", i, cut.Psi[i], full.Total[i]/den)
				}
				if math.Abs(cut.Psi[i]-full.Psi[i]) > tol {
					t.Fatalf("truncated psi[%d] = %v, full %v", i, cut.Psi[i], full.Psi[i])
				}
			}
		})
	}
}

// TestSetTruncationClamps: out-of-range cutoffs disable truncation.
func TestSetTruncationClamps(t *testing.T) {
	e := eng()
	defer e.Close()
	s := newSys(8, 8, e)
	s.SetTruncation(-1, 99)
	if s.truncKx != 0 || s.truncKy != 0 {
		t.Fatalf("clamped truncation = %d,%d, want 0,0", s.truncKx, s.truncKy)
	}
}
