// Package field implements the electrostatic density system of the placer
// (Eq. 5, §3.1.2): cells are charges, the bin-wise density map is the
// charge distribution rho, and Poisson's equation with Neumann boundary
// conditions is solved spectrally (DCT) for the potential psi and the
// electric field E = -grad(psi). The field, gathered back onto cells,
// is the density gradient of the objective.
//
// The package exposes the individual operators (density scatter, map add,
// Poisson solve, field gather, overflow ratio) so the placer can compose
// them either with the paper's operator extraction (compute the cell
// density map D once, reuse it for the total map D~ = D + D_fl and for
// OVFL) or naively (recompute D for OVFL), which is the OE ablation.
//
// Internally the electrostatic system lives in bin units (the region maps
// to [0,Nx) x [0,Ny)); GatherField converts gradients back to design units.
//
// All kernel bodies are built once at NewSystem and reused every launch,
// with per-call parameters staged in System fields: per-iteration operator
// calls are allocation-free (closure capture would otherwise heap-allocate
// on every call). A System is therefore single-flight: drive it from one
// placement loop at a time.
package field

import (
	"fmt"
	"math"

	"xplace/internal/backend"
	"xplace/internal/dct"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// KindMask selects which cell kinds participate in a scatter.
type KindMask uint8

// Kind masks for ScatterDensity.
const (
	MaskMovable KindMask = 1 << netlist.Movable
	MaskFixed   KindMask = 1 << netlist.Fixed
	MaskFiller  KindMask = 1 << netlist.Filler
	// MaskPlaceable covers everything the electrostatic system moves.
	MaskPlaceable = MaskMovable | MaskFiller
	// MaskAll covers every cell.
	MaskAll = MaskMovable | MaskFixed | MaskFiller
)

// Has reports whether kind k is selected.
func (m KindMask) Has(k netlist.CellKind) bool { return m&(1<<k) != 0 }

// System holds the grid, spectral plan and all bin-sized buffers of the
// electrostatic model. Create one per (design, grid) pair and reuse it
// every iteration; all buffers are preallocated.
type System struct {
	Grid geom.Grid
	Nx   int
	Ny   int

	// Density maps (bin-major, f[y*Nx+x]), in occupancy units (area
	// covered / bin area).
	D     []float64 // movable + fixed cell density (Eq. 8)
	Dfl   []float64 // filler density D_fl
	Total []float64 // D~ = D + D_fl (Eq. 10)

	// Electrostatic solution for Total.
	Psi []float64 // potential
	Ex  []float64 // field x = -dPsi/dx (bin units)
	Ey  []float64 // field y

	plan    *dct.Plan
	coef    []float64 // DCT coefficients scratch
	wu, wv  []float64 // frequencies pi*u/Nx, pi*v/Ny
	scratch [][]float64
	workers int

	// Reduced-precision path (nil/unused on the reference backend). The
	// public maps stay []float64 — the backend element type is confined to
	// the solver internals, with registry cvt.* bodies converting at the
	// boundary — so callers are backend-agnostic.
	be        backend.Backend
	plan32    *dct.Plan32
	total32   []float32   // Total converted across the boundary
	coef32    []float32   // spectral coefficients
	psi32     []float32   // solver outputs before the store conversion
	ex32      []float32
	ey32      []float32
	scratch32 [][]float32 // per-worker scatter maps (f32 halves the traffic)

	// Spectral truncation: modes u >= truncKx or v >= truncKy are zeroed in
	// the spectral scale pass (0 = keep all). The row cutoff additionally
	// lets the plan skip the zeroed rows' inverse transforms outright.
	truncKx, truncKy int

	cvtLd, cvtSt         backend.VecBody
	cvtLdBody, cvtStBody func(lo, hi int)

	// Staged parameters for the persistent kernel bodies below. Set by the
	// exported methods immediately before launching; never read outside a
	// launch.
	scD          *netlist.Design
	scX, scY     []float64
	scMask       KindMask
	scOut        []float64
	scUsed       int
	addA, addB   []float64
	addDst       []float64
	gaD          *netlist.Design
	gaX, gaY     []float64
	gaMask       KindMask
	gaGX, gaGY   []float64
	ovDens       []float64
	ovTarget     float64
	maxDens      []float64
	mergeNames   map[string]string // scatter name -> name+".merge" (interned)
	scatterBody  func(w, lo, hi int)
	mergeBody    func(lo, hi int)
	addBody        func(lo, hi int)
	spectralBody   func(lo, hi int)
	spectralBody32 func(lo, hi int)
	energyBody   func(lo, hi int) float64
	gatherBody   func(lo, hi int)
	ovBody       func(lo, hi int) float64
	maxBody      func(lo, hi int) float64
}

func sumCombine(a, b float64) float64 { return a + b }

// NewSystem creates an electrostatic system on grid with per-worker
// scatter buffers for engine e, using the reference (float64) backend.
// Grid dimensions must be powers of two.
func NewSystem(grid geom.Grid, e *kernel.Engine) *System {
	return NewSystemOn(grid, e, nil)
}

// NewSystemOn creates an electrostatic system whose solver internals use
// compute backend b (nil means the reference backend, identical to
// NewSystem). The public density and field maps are []float64 regardless:
// the element type crosses no API boundary.
func NewSystemOn(grid geom.Grid, e *kernel.Engine, b backend.Backend) *System {
	nx, ny := grid.Nx, grid.Ny
	s := &System{
		Grid:    grid,
		Nx:      nx,
		Ny:      ny,
		D:       make([]float64, nx*ny),
		Dfl:     make([]float64, nx*ny),
		Total:   make([]float64, nx*ny),
		Psi:     make([]float64, nx*ny),
		Ex:      make([]float64, nx*ny),
		Ey:      make([]float64, nx*ny),
		wu:      make([]float64, nx),
		wv:      make([]float64, ny),
		workers: e.Workers(),

		mergeNames: make(map[string]string),
	}
	for u := 0; u < nx; u++ {
		s.wu[u] = math.Pi * float64(u) / float64(nx)
	}
	for v := 0; v < ny; v++ {
		s.wv[v] = math.Pi * float64(v) / float64(ny)
	}
	if backend.IsReference(b) {
		s.plan = dct.NewPlan(nx, ny)
		s.coef = make([]float64, nx*ny)
		s.scratch = make([][]float64, s.workers)
		for w := range s.scratch {
			s.scratch[w] = make([]float64, nx*ny)
		}
	} else {
		s.be = b
		s.plan32 = dct.NewPlan32(nx, ny)
		s.scratch32 = make([][]float32, s.workers)
		for w := range s.scratch32 {
			s.scratch32[w] = make([]float32, nx*ny)
		}
		s.cvtLd = b.Kernels().Make("cvt.load")
		s.cvtSt = b.Kernels().Make("cvt.store")
		s.cvtLdBody = func(lo, hi int) { s.cvtLd.Run(lo, hi) }
		s.cvtStBody = func(lo, hi int) { s.cvtSt.Run(lo, hi) }
	}
	s.buildBodies()
	return s
}

// Backend returns the system's compute backend (nil for the reference).
func (s *System) Backend() backend.Backend { return s.be }

// SetTruncation zeroes the high-frequency modes u >= kx or v >= ky during
// the spectral scale pass and lets the plan skip the zeroed rows' inverse
// transforms — the adaptive-resolution observation that coarse grids carry
// negligible energy above mid-band. kx/ky <= 0 (or >= the grid dimension)
// keep all modes in that direction. With truncation off (the default) the
// solve is bit-identical to the untruncated plan.
func (s *System) SetTruncation(kx, ky int) {
	if kx <= 0 || kx >= s.Nx {
		kx = 0
	}
	if ky <= 0 || ky >= s.Ny {
		ky = 0
	}
	s.truncKx, s.truncKy = kx, ky
	if s.plan != nil {
		s.plan.SetFieldRowCutoff(ky)
	}
	if s.plan32 != nil {
		s.plan32.SetFieldRowCutoff(ky)
	}
}

// Release returns the spectral plan's arena-backed scratch — and, on a
// reduced-precision backend, the solver's element buffers — to engine e.
// Call it when the system's owner (a placement job) is done — including on
// cancellation — so the engine arena's in-use bytes return to their
// pre-job baseline. Idempotent; the system stays usable (the next solve
// re-checks the scratch out).
func (s *System) Release(e *kernel.Engine) {
	if s.plan != nil {
		s.plan.Release(e)
	}
	if s.plan32 != nil {
		s.plan32.Release(e)
	}
	if s.total32 != nil {
		e.Free32(s.total32)
		e.Free32(s.coef32)
		e.Free32(s.psi32)
		e.Free32(s.ex32)
		e.Free32(s.ey32)
		s.total32, s.coef32, s.psi32, s.ex32, s.ey32 = nil, nil, nil, nil, nil
	}
}

// ensure32 checks the reduced-precision solve buffers out of e's arena.
func (s *System) ensure32(e *kernel.Engine) {
	if s.total32 != nil {
		return
	}
	n := s.Nx * s.Ny
	s.total32 = e.Alloc32(n)
	s.coef32 = e.Alloc32(n)
	s.psi32 = e.Alloc32(n)
	s.ex32 = e.Alloc32(n)
	s.ey32 = e.Alloc32(n)
}

// buildBodies constructs the persistent kernel bodies once. Each reads its
// parameters from the staged s.* fields at execution time.
func (s *System) buildBodies() {
	nx, ny := s.Nx, s.Ny
	invBinArea := 1 / s.Grid.BinArea()
	binArea := s.Grid.BinArea()
	s.scatterBody = func(w, lo, hi int) {
		d, x, y, mask := s.scD, s.scX, s.scY, s.scMask
		buf := s.scratch[w]
		for i := range buf {
			buf[i] = 0
		}
		for c := lo; c < hi; c++ {
			if !mask.Has(d.CellKind[c]) {
				continue
			}
			r, scale := s.expandedRect(d, c, x[c], y[c])
			r = r.Intersect(s.Grid.Region)
			if r.Empty() {
				continue
			}
			x0, x1, y0, y1 := s.Grid.BinRange(r)
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					ov := s.Grid.BinRect(ix, iy).Overlap(r)
					if ov > 0 {
						buf[iy*s.Nx+ix] += ov * scale
					}
				}
			}
		}
	}
	s.mergeBody = func(lo, hi int) {
		out, used := s.scOut, s.scUsed
		for b := lo; b < hi; b++ {
			var sum float64
			for w := 0; w < used; w++ {
				sum += s.scratch[w][b]
			}
			out[b] = sum * invBinArea
		}
	}
	if s.be != nil {
		// Reduced-precision scatter: the per-worker private maps are
		// float32 (half the streamed bytes of the hot loop); the merge
		// accumulates in float64 and converts at the boundary store.
		s.scatterBody = func(w, lo, hi int) {
			d, x, y, mask := s.scD, s.scX, s.scY, s.scMask
			buf := s.scratch32[w]
			for i := range buf {
				buf[i] = 0
			}
			for c := lo; c < hi; c++ {
				if !mask.Has(d.CellKind[c]) {
					continue
				}
				r, scale := s.expandedRect(d, c, x[c], y[c])
				r = r.Intersect(s.Grid.Region)
				if r.Empty() {
					continue
				}
				x0, x1, y0, y1 := s.Grid.BinRange(r)
				for iy := y0; iy < y1; iy++ {
					for ix := x0; ix < x1; ix++ {
						ov := s.Grid.BinRect(ix, iy).Overlap(r)
						if ov > 0 {
							buf[iy*s.Nx+ix] += float32(ov * scale)
						}
					}
				}
			}
		}
		s.mergeBody = func(lo, hi int) {
			out, used := s.scOut, s.scUsed
			for b := lo; b < hi; b++ {
				var sum float64
				for w := 0; w < used; w++ {
					sum += float64(s.scratch32[w][b])
				}
				out[b] = sum * invBinArea
			}
		}
	}
	s.addBody = func(lo, hi int) {
		a, b, dst := s.addA, s.addB, s.addDst
		for i := lo; i < hi; i++ {
			dst[i] = a[i] + b[i]
		}
	}
	s.spectralBody = func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if s.truncKy > 0 && v >= s.truncKy {
				row := s.coef[v*nx : (v+1)*nx]
				for u := range row {
					row[u] = 0
				}
				continue
			}
			fv := 2 / float64(ny)
			if v == 0 {
				fv = 1 / float64(ny)
			}
			wv2 := s.wv[v] * s.wv[v]
			for u := 0; u < nx; u++ {
				fu := 2 / float64(nx)
				if u == 0 {
					fu = 1 / float64(nx)
				}
				idx := v*nx + u
				if u == 0 && v == 0 || (s.truncKx > 0 && u >= s.truncKx) {
					s.coef[idx] = 0
					continue
				}
				s.coef[idx] *= fu * fv / (s.wu[u]*s.wu[u] + wv2)
			}
		}
	}
	s.spectralBody32 = func(lo, hi int) {
		// Same normalization/division as the reference body; the scale is
		// computed in float64 and only the stored coefficient is float32.
		for v := lo; v < hi; v++ {
			if s.truncKy > 0 && v >= s.truncKy {
				row := s.coef32[v*nx : (v+1)*nx]
				for u := range row {
					row[u] = 0
				}
				continue
			}
			fv := 2 / float64(ny)
			if v == 0 {
				fv = 1 / float64(ny)
			}
			wv2 := s.wv[v] * s.wv[v]
			for u := 0; u < nx; u++ {
				fu := 2 / float64(nx)
				if u == 0 {
					fu = 1 / float64(nx)
				}
				idx := v*nx + u
				if u == 0 && v == 0 || (s.truncKx > 0 && u >= s.truncKx) {
					s.coef32[idx] = 0
					continue
				}
				s.coef32[idx] = float32(float64(s.coef32[idx]) * fu * fv / (s.wu[u]*s.wu[u] + wv2))
			}
		}
	}
	s.energyBody = func(lo, hi int) float64 {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += s.Total[i] * s.Psi[i]
		}
		return sum
	}
	s.gatherBody = func(lo, hi int) {
		d, x, y, mask := s.gaD, s.gaX, s.gaY, s.gaMask
		gradX, gradY := s.gaGX, s.gaGY
		for c := lo; c < hi; c++ {
			if !mask.Has(d.CellKind[c]) {
				gradX[c], gradY[c] = 0, 0
				continue
			}
			r, scale := s.expandedRect(d, c, x[c], y[c])
			r = r.Intersect(s.Grid.Region)
			if r.Empty() {
				gradX[c], gradY[c] = 0, 0
				continue
			}
			x0, x1, y0, y1 := s.Grid.BinRange(r)
			var fx, fy float64
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					ov := s.Grid.BinRect(ix, iy).Overlap(r)
					if ov <= 0 {
						continue
					}
					q := ov * scale * invBinArea // charge share in bin units
					fx += q * s.Ex[iy*s.Nx+ix]
					fy += q * s.Ey[iy*s.Nx+ix]
				}
			}
			// Energy gradient = -force; convert bin units -> design units.
			gradX[c] = -fx / s.Grid.Dx
			gradY[c] = -fy / s.Grid.Dy
		}
	}
	s.ovBody = func(lo, hi int) float64 {
		dens, target := s.ovDens, s.ovTarget
		var sum float64
		for b := lo; b < hi; b++ {
			if ex := dens[b] - target; ex > 0 {
				sum += ex * binArea
			}
		}
		return sum
	}
	s.maxBody = func(lo, hi int) float64 {
		dens := s.maxDens
		m := math.Inf(-1)
		for b := lo; b < hi; b++ {
			if dens[b] > m {
				m = dens[b]
			}
		}
		return m
	}
}

// expandedRect returns cell c's footprint (centered at x,y) expanded to at
// least one bin in each dimension — the ePlace local smoothing — together
// with the density scale that preserves its area.
func (s *System) expandedRect(d *netlist.Design, c int, x, y float64) (geom.Rect, float64) {
	w, h := d.CellW[c], d.CellH[c]
	ew, eh := w, h
	if ew < s.Grid.Dx {
		ew = s.Grid.Dx
	}
	if eh < s.Grid.Dy {
		eh = s.Grid.Dy
	}
	scale := 1.0
	if ew != w || eh != h {
		scale = (w * h) / (ew * eh)
	}
	return geom.Rect{Lx: x - ew/2, Ly: y - eh/2, Hx: x + ew/2, Hy: y + eh/2}, scale
}

// ScatterDensity accumulates the density of all cells selected by mask
// into out (occupancy units). One kernel for the parallel scatter into
// per-worker private maps plus one merge kernel — the atomics-free
// accumulation the design doc calls out.
func (s *System) ScatterDensity(e *kernel.Engine, d *netlist.Design, x, y []float64, mask KindMask, out []float64, name string) {
	if len(out) != s.Nx*s.Ny {
		panic(fmt.Sprintf("field: out has %d bins, want %d", len(out), s.Nx*s.Ny))
	}
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	mergeName, ok := s.mergeNames[name]
	if !ok {
		mergeName = name + ".merge"
		s.mergeNames[name] = mergeName
	}
	s.scD, s.scX, s.scY, s.scMask, s.scOut = d, x, y, mask, out
	s.scUsed = e.LaunchChunks(name, d.NumCells(), s.scatterBody)
	e.Launch(mergeName, s.Nx*s.Ny, s.mergeBody)
}

// AddMaps computes dst = a + b elementwise as one (cheap) kernel — the
// extracted total-map addition of Eq. 10 / Figure 2(a).
func (s *System) AddMaps(e *kernel.Engine, a, b, dst []float64) {
	s.addA, s.addB, s.addDst = a, b, dst
	e.Launch("density.add_maps", len(dst), s.addBody)
}

// SolvePoisson solves Eq. 5 for s.Total: forward DCT, spectral division by
// (wu^2 + wv^2), and one batched evaluation producing the potential and
// both field components (Ex = sum c*wu*sin*cos, Ey = sum c*wv*cos*sin) —
// the shared cos-x row transform and column gathers are computed once
// instead of per output. Returns the system energy 0.5 * sum(rho * psi) —
// the density penalty D(p) of Eq. 3.
func (s *System) SolvePoisson(e *kernel.Engine) float64 {
	nx, ny := s.Nx, s.Ny
	if s.plan32 != nil {
		return s.solvePoisson32(e)
	}
	s.plan.DCT2(s.Total, s.coef, e)
	// Normalize to true series coefficients and divide by (wu^2+wv^2).
	e.Launch("poisson.spectral_scale", ny, s.spectralBody)
	s.plan.EvalPotentialField(s.coef, s.wu, s.wv, s.Psi, s.Ex, s.Ey, e)
	// Energy.
	return e.ParallelReduce("poisson.energy", nx*ny, 0, s.energyBody, sumCombine) * 0.5
}

// solvePoisson32 is the reduced-precision solve: the backend's cvt.*
// registry bodies convert Total in and psi/ex/ey out at the boundary, and
// the transforms run on the float32 plan. The energy reduction reads the
// converted float64 Psi so its accumulation order matches the reference.
func (s *System) solvePoisson32(e *kernel.Engine) float64 {
	nx, ny := s.Nx, s.Ny
	s.ensure32(e)
	s.cvtLd.Bind(backend.WrapF32(s.total32), backend.WrapF64(s.Total), backend.Buf{}, 0)
	e.Launch("poisson.cvt_load", nx*ny, s.cvtLdBody)
	s.plan32.DCT2(s.total32, s.coef32, e)
	e.Launch("poisson.spectral_scale", ny, s.spectralBody32)
	s.plan32.EvalPotentialField(s.coef32, s.wu, s.wv, s.psi32, s.ex32, s.ey32, e)
	for _, st := range [3]struct {
		dst []float64
		src []float32
	}{{s.Psi, s.psi32}, {s.Ex, s.ex32}, {s.Ey, s.ey32}} {
		s.cvtSt.Bind(backend.WrapF64(st.dst), backend.WrapF32(st.src), backend.Buf{}, 0)
		e.Launch("poisson.cvt_store", nx*ny, s.cvtStBody)
	}
	return e.ParallelReduce("poisson.energy", nx*ny, 0, s.energyBody, sumCombine) * 0.5
}

// GatherField writes the density gradient for every cell selected by mask
// into gradX/gradY (design units, indexed by cell; unselected cells get
// zero). The gradient of the energy with respect to a cell position is
// -q*E averaged over the cell footprint; q is the cell area in bin units.
func (s *System) GatherField(e *kernel.Engine, d *netlist.Design, x, y []float64, mask KindMask, gradX, gradY []float64) {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	s.gaD, s.gaX, s.gaY, s.gaMask, s.gaGX, s.gaGY = d, x, y, mask, gradX, gradY
	e.Launch("density.gather_field", d.NumCells(), s.gatherBody)
}

// Overflow computes the overflow ratio OVFL of Eq. 7 from the cell density
// map dens (occupancy units) as one kernel.
func (s *System) Overflow(e *kernel.Engine, d *netlist.Design, dens []float64, targetDensity float64) float64 {
	s.ovDens, s.ovTarget = dens, targetDensity
	over := e.ParallelReduce("density.ovfl", len(dens), 0, s.ovBody, sumCombine)
	mov := d.MovableArea()
	if mov <= 0 {
		return 0
	}
	return over / mov
}

// MaxDensity returns the maximum bin occupancy of dens (one kernel) —
// a diagnostic recorded by the evaluator.
func (s *System) MaxDensity(e *kernel.Engine, dens []float64) float64 {
	s.maxDens = dens
	return e.ParallelReduce("density.max", len(dens), math.Inf(-1), s.maxBody, math.Max)
}
