package field

// Ablation bench (DESIGN.md §5.3): the atomics-free per-worker-accumulator
// density scatter against a CAS-loop atomic variant.

import (
	"math"
	"sync/atomic"
	"testing"
	"unsafe"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// atomicAdd performs a CAS-loop float64 add — what a naive parallel
// scatter would do per touched bin.
func atomicAdd(addr *float64, delta float64) {
	for {
		old := math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(addr))))
		if atomic.CompareAndSwapUint64((*uint64)(unsafe.Pointer(addr)),
			math.Float64bits(old), math.Float64bits(old+delta)) {
			return
		}
	}
}

// scatterAtomic is the atomic-scatter variant used only by this bench.
func scatterAtomic(e *kernel.Engine, s *System, d *netlist.Design, out []float64) {
	for i := range out {
		out[i] = 0
	}
	invBinArea := 1 / s.Grid.BinArea()
	e.Launch("density.atomic", d.NumCells(), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if d.CellKind[c] != netlist.Movable {
				continue
			}
			r, scale := s.expandedRect(d, c, d.CellX[c], d.CellY[c])
			r = r.Intersect(s.Grid.Region)
			if r.Empty() {
				continue
			}
			x0, x1, y0, y1 := s.Grid.BinRange(r)
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					ov := s.Grid.BinRect(ix, iy).Overlap(r)
					if ov > 0 {
						atomicAdd(&out[iy*s.Nx+ix], ov*scale*invBinArea)
					}
				}
			}
		}
	})
}

func benchDesign(b *testing.B, n int) (*kernel.Engine, *System, *netlist.Design) {
	b.Helper()
	e := kernel.New(kernel.Options{})
	grid := geom.NewGrid(geom.Rect{Hx: 128, Hy: 128}, 128, 128)
	s := NewSystem(grid, e)
	d := netlist.NewDesign("bench", grid.Region)
	for i := 0; i < n; i++ {
		d.AddCell("m", 0.9, 0.9, float64(i%127)+0.5, float64((i/127)%127)+0.5, netlist.Movable)
	}
	if err := d.Finish(); err != nil {
		b.Fatal(err)
	}
	return e, s, d
}

func TestAtomicScatterMatchesPrivate(t *testing.T) {
	e := kernel.New(kernel.Options{Workers: 4})
	grid := geom.NewGrid(geom.Rect{Hx: 16, Hy: 16}, 16, 16)
	s := NewSystem(grid, e)
	d := netlist.NewDesign("cmp", grid.Region)
	for i := 0; i < 300; i++ {
		d.AddCell("m", 0.8, 0.8, float64(i%15)+0.7, float64((i/15)%15)+0.9, netlist.Movable)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 256)
	p := make([]float64, 256)
	scatterAtomic(e, s, d, a)
	s.ScatterDensity(e, d, nil, nil, MaskMovable, p, "private")
	for i := range a {
		if math.Abs(a[i]-p[i]) > 1e-9 {
			t.Fatalf("bin %d: atomic %v vs private %v", i, a[i], p[i])
		}
	}
}

func BenchmarkAblationScatterPrivate(b *testing.B) {
	e, s, d := benchDesign(b, 30000)
	out := make([]float64, 128*128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScatterDensity(e, d, nil, nil, MaskMovable, out, "bench")
	}
}

func BenchmarkAblationScatterAtomic(b *testing.B) {
	e, s, d := benchDesign(b, 30000)
	out := make([]float64, 128*128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scatterAtomic(e, s, d, out)
	}
}
