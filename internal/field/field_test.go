package field

import (
	"math"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

func eng() *kernel.Engine { return kernel.New(kernel.Options{Workers: 4}) }

func newSys(nx, ny int, e *kernel.Engine) *System {
	return NewSystem(geom.NewGrid(geom.Rect{Hx: float64(nx), Hy: float64(ny)}, nx, ny), e)
}

func TestKindMask(t *testing.T) {
	if !MaskMovable.Has(netlist.Movable) || MaskMovable.Has(netlist.Fixed) {
		t.Error("MaskMovable wrong")
	}
	if !MaskAll.Has(netlist.Filler) || !MaskAll.Has(netlist.Fixed) {
		t.Error("MaskAll wrong")
	}
	if MaskPlaceable.Has(netlist.Fixed) || !MaskPlaceable.Has(netlist.Filler) {
		t.Error("MaskPlaceable wrong")
	}
}

// Density scatter must conserve total area for interior cells.
func TestScatterConservesArea(t *testing.T) {
	e := eng()
	s := newSys(16, 16, e)
	d := netlist.NewDesign("cons", s.Grid.Region)
	// Mix of bin-aligned, sub-bin (expanded) and multi-bin cells, interior.
	d.AddCell("a", 1, 1, 5.5, 5.5, netlist.Movable)
	d.AddCell("b", 0.25, 0.25, 8.2, 8.7, netlist.Movable) // smaller than a bin
	d.AddCell("c", 3.5, 2.5, 10.1, 4.3, netlist.Movable)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 16*16)
	s.ScatterDensity(e, d, nil, nil, MaskMovable, out, "scatter")
	var got float64
	for _, v := range out {
		got += v * s.Grid.BinArea()
	}
	want := 1.0 + 0.25*0.25 + 3.5*2.5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("scattered area = %v, want %v", got, want)
	}
}

func TestScatterRespectsMask(t *testing.T) {
	e := eng()
	s := newSys(8, 8, e)
	d := netlist.NewDesign("mask", s.Grid.Region)
	d.AddCell("m", 1, 1, 2, 2, netlist.Movable)
	d.AddCell("f", 1, 1, 6, 6, netlist.Fixed)
	d.AddCell("fl", 1, 1, 4, 4, netlist.Filler)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	sum := func(mask KindMask) float64 {
		out := make([]float64, 64)
		s.ScatterDensity(e, d, nil, nil, mask, out, "s")
		var a float64
		for _, v := range out {
			a += v * s.Grid.BinArea()
		}
		return a
	}
	if got := sum(MaskMovable); math.Abs(got-1) > 1e-9 {
		t.Errorf("movable area = %v", got)
	}
	if got := sum(MaskMovable | MaskFixed); math.Abs(got-2) > 1e-9 {
		t.Errorf("movable+fixed area = %v", got)
	}
	if got := sum(MaskFiller); math.Abs(got-1) > 1e-9 {
		t.Errorf("filler area = %v", got)
	}
}

func TestScatterClipsToRegion(t *testing.T) {
	e := eng()
	s := newSys(8, 8, e)
	d := netlist.NewDesign("clip", s.Grid.Region)
	d.AddCell("edge", 2, 2, 0, 4, netlist.Movable) // half outside at x<0
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 64)
	s.ScatterDensity(e, d, nil, nil, MaskMovable, out, "s")
	var a float64
	for _, v := range out {
		a += v * s.Grid.BinArea()
	}
	if math.Abs(a-2) > 1e-9 { // only half the 2x2 cell is inside
		t.Errorf("clipped area = %v, want 2", a)
	}
}

func TestAddMaps(t *testing.T) {
	e := eng()
	s := newSys(4, 4, e)
	a := make([]float64, 16)
	b := make([]float64, 16)
	dst := make([]float64, 16)
	for i := range a {
		a[i] = float64(i)
		b[i] = 100
	}
	s.AddMaps(e, a, b, dst)
	if dst[3] != 103 || dst[15] != 115 {
		t.Errorf("AddMaps = %v", dst)
	}
}

// Analytic Poisson check: for rho = cos(wu(x+1/2))cos(wv(y+1/2)) the
// potential is rho/(wu^2+wv^2) and the x field wu/(wu^2+wv^2)*sin*cos.
func TestPoissonAnalyticBasis(t *testing.T) {
	e := eng()
	nx, ny := 32, 32
	s := newSys(nx, ny, e)
	u, v := 3, 5
	wu := math.Pi * float64(u) / float64(nx)
	wv := math.Pi * float64(v) / float64(ny)
	for yy := 0; yy < ny; yy++ {
		for xx := 0; xx < nx; xx++ {
			s.Total[yy*nx+xx] = math.Cos(wu*(float64(xx)+0.5)) * math.Cos(wv*(float64(yy)+0.5))
		}
	}
	s.SolvePoisson(e)
	den := wu*wu + wv*wv
	for yy := 0; yy < ny; yy++ {
		for xx := 0; xx < nx; xx++ {
			i := yy*nx + xx
			wantPsi := s.Total[i] / den
			if math.Abs(s.Psi[i]-wantPsi) > 1e-9 {
				t.Fatalf("psi[%d] = %v, want %v", i, s.Psi[i], wantPsi)
			}
			wantEx := wu / den * math.Sin(wu*(float64(xx)+0.5)) * math.Cos(wv*(float64(yy)+0.5))
			if math.Abs(s.Ex[i]-wantEx) > 1e-9 {
				t.Fatalf("Ex[%d] = %v, want %v", i, s.Ex[i], wantEx)
			}
			wantEy := wv / den * math.Cos(wu*(float64(xx)+0.5)) * math.Sin(wv*(float64(yy)+0.5))
			if math.Abs(s.Ey[i]-wantEy) > 1e-9 {
				t.Fatalf("Ey[%d] = %v, want %v", i, s.Ey[i], wantEy)
			}
		}
	}
}

func TestPoissonUniformDensityZeroField(t *testing.T) {
	e := eng()
	s := newSys(16, 16, e)
	for i := range s.Total {
		s.Total[i] = 0.7
	}
	energy := s.SolvePoisson(e)
	for i := range s.Ex {
		if math.Abs(s.Ex[i]) > 1e-9 || math.Abs(s.Ey[i]) > 1e-9 {
			t.Fatalf("uniform density must give zero field, got %v %v", s.Ex[i], s.Ey[i])
		}
	}
	if math.Abs(energy) > 1e-9 {
		t.Errorf("uniform density energy = %v, want 0 (DC removed)", energy)
	}
}

// The field must push a probe cell away from a dense cluster.
func TestFieldPushesAwayFromCluster(t *testing.T) {
	e := eng()
	s := newSys(32, 32, e)
	d := netlist.NewDesign("cluster", s.Grid.Region)
	// Dense cluster near (8, 16).
	for i := 0; i < 20; i++ {
		d.AddCell("c", 2, 2, 8, 16, netlist.Movable)
	}
	// Probe to the right of the cluster.
	probe := d.AddCell("p", 1, 1, 12, 16, netlist.Movable)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	s.ScatterDensity(e, d, nil, nil, MaskMovable, s.Total, "s")
	s.SolvePoisson(e)
	gx := make([]float64, d.NumCells())
	gy := make([]float64, d.NumCells())
	s.GatherField(e, d, nil, nil, MaskMovable, gx, gy)
	// Minimizing energy moves along -grad; the probe should be pushed in
	// +x (away from the cluster), so gradX must be negative.
	if gx[probe] >= 0 {
		t.Errorf("probe gradX = %v, want negative (push right)", gx[probe])
	}
	if math.Abs(gy[probe]) > math.Abs(gx[probe])*0.5 {
		t.Errorf("probe gradY = %v unexpectedly large vs gradX %v", gy[probe], gx[probe])
	}
}

func TestGatherFieldMaskZeroesOthers(t *testing.T) {
	e := eng()
	s := newSys(8, 8, e)
	d := netlist.NewDesign("gm", s.Grid.Region)
	d.AddCell("m", 1, 1, 2, 2, netlist.Movable)
	fixed := d.AddCell("f", 1, 1, 6, 6, netlist.Fixed)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	s.ScatterDensity(e, d, nil, nil, MaskAll, s.Total, "s")
	s.SolvePoisson(e)
	gx := []float64{99, 99}
	gy := []float64{99, 99}
	s.GatherField(e, d, nil, nil, MaskMovable, gx, gy)
	if gx[fixed] != 0 || gy[fixed] != 0 {
		t.Errorf("fixed cell grad = %v,%v, want zero", gx[fixed], gy[fixed])
	}
}

func TestOverflow(t *testing.T) {
	e := eng()
	s := newSys(4, 4, e) // bin area 1
	d := netlist.NewDesign("ovfl", s.Grid.Region)
	d.AddCell("m", 2, 2, 2, 2, netlist.Movable) // movable area 4
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	dens := make([]float64, 16)
	dens[0] = 1.5
	dens[1] = 0.9
	dens[2] = 2.0
	// target 1.0: overflow area = 0.5 + 0 + 1.0 = 1.5; movable area 4.
	got := s.Overflow(e, d, dens, 1.0)
	if math.Abs(got-1.5/4) > 1e-12 {
		t.Errorf("OVFL = %v, want %v", got, 1.5/4)
	}
}

func TestOverflowNoMovable(t *testing.T) {
	e := eng()
	s := newSys(4, 4, e)
	d := netlist.NewDesign("empty", s.Grid.Region)
	d.AddCell("f", 1, 1, 2, 2, netlist.Fixed)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := s.Overflow(e, d, make([]float64, 16), 1.0); got != 0 {
		t.Errorf("OVFL with no movable = %v", got)
	}
}

func TestMaxDensity(t *testing.T) {
	e := eng()
	s := newSys(4, 4, e)
	dens := make([]float64, 16)
	dens[7] = 3.25
	if got := s.MaxDensity(e, dens); got != 3.25 {
		t.Errorf("MaxDensity = %v", got)
	}
}

// Operator extraction accounting: the OE composition (D, Dfl, add) must
// not scatter the same cells twice, while the naive path does.
func TestOperatorExtractionSavesScatterWork(t *testing.T) {
	mk := func() (*kernel.Engine, *System, *netlist.Design) {
		e := kernel.New(kernel.Options{Workers: 2, Trace: true})
		s := newSys(16, 16, e)
		d := netlist.NewDesign("oe", s.Grid.Region)
		for i := 0; i < 50; i++ {
			d.AddCell("m", 1, 1, float64(1+i%14), float64(1+i/14), netlist.Movable)
		}
		d.AddFillers(0.9)
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		return e, s, d
	}

	// OE path: D once, Dfl once, add, OVFL from D.
	e1, s1, d1 := mk()
	s1.ScatterDensity(e1, d1, nil, nil, MaskMovable|MaskFixed, s1.D, "density.cells")
	s1.ScatterDensity(e1, d1, nil, nil, MaskFiller, s1.Dfl, "density.fillers")
	s1.AddMaps(e1, s1.D, s1.Dfl, s1.Total)
	s1.Overflow(e1, d1, s1.D, 0.9)

	// Naive path: total map in one scatter over all cells, then a second
	// full scatter of the non-filler cells just for OVFL.
	e2, s2, d2 := mk()
	s2.ScatterDensity(e2, d2, nil, nil, MaskAll, s2.Total, "density.all")
	s2.ScatterDensity(e2, d2, nil, nil, MaskMovable|MaskFixed, s2.D, "density.cells_again")
	s2.Overflow(e2, d2, s2.D, 0.9)

	// Both must produce the same Total map.
	for i := range s1.Total {
		if math.Abs(s1.Total[i]-s2.Total[i]) > 1e-12 {
			t.Fatalf("total maps disagree at %d: %v vs %v", i, s1.Total[i], s2.Total[i])
		}
	}
	// The naive path touches every non-filler cell twice; with tracing we
	// can only compare compute time coarsely, so compare scatter work by
	// kernel count of cells processed — proxy: naive compute >= OE compute
	// is flaky on tiny inputs, so assert on launch structure instead: both
	// paths have the same launch count here, but naive scans d.NumCells()
	// twice. Verify via per-op presence.
	tr := e2.Trace()
	found := 0
	for _, op := range tr {
		if op == "density.all" || op == "density.cells_again" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("naive path trace missing double scatter: %v", tr)
	}
}

func BenchmarkScatterAndSolve(b *testing.B) {
	e := eng()
	s := newSys(128, 128, e)
	d := netlist.NewDesign("bench", s.Grid.Region)
	for i := 0; i < 20000; i++ {
		d.AddCell("m", 0.9, 0.9, float64(i%128), float64((i/128)%128), netlist.Movable)
	}
	if err := d.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScatterDensity(e, d, nil, nil, MaskMovable, s.Total, "s")
		s.SolvePoisson(e)
	}
}
