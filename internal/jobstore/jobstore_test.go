package jobstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestWALReplay: submit/begin/finish records fold into per-job state, in
// submission order, across a store reopen.
func TestWALReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)

	payload := json.RawMessage(`{"bench":"adaptec1","scale":0.01}`)
	if err := s.AppendSubmit(1, "a", payload, "key-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFinish(1, "succeeded", "", 120, 123.5, 0.06, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(2, "b", payload, "key-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBegin(2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(3, "c", payload, "key-c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	jobs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(jobs))
	}
	j1, j2, j3 := jobs[0], jobs[1], jobs[2]
	if j1.ID != 1 || j1.State != "succeeded" || !j1.Terminal() {
		t.Errorf("job 1: %+v, want terminal succeeded", j1)
	}
	if j1.Iterations != 120 || j1.HPWL != 123.5 || j1.Overflow != 0.06 {
		t.Errorf("job 1 result fields lost: %+v", j1)
	}
	if j2.ID != 2 || j2.State != "running" || j2.Terminal() {
		t.Errorf("job 2: %+v, want non-terminal running", j2)
	}
	if j3.ID != 3 || j3.State != "queued" || j3.Terminal() {
		t.Errorf("job 3: %+v, want non-terminal queued", j3)
	}
	if string(j3.Payload) != string(payload) || j3.Key != "key-c" || j3.Label != "c" {
		t.Errorf("job 3 submit fields lost: %+v", j3)
	}

	// New appends continue the sequence — no seq reuse after reopen.
	if err := s2.AppendFinish(2, "failed", "boom", 0, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	jobs, err = s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[1].State != "failed" || jobs[1].Err != "boom" {
		t.Errorf("job 2 after finish: %+v", jobs[1])
	}
}

// TestWALTornTail: a crash mid-append leaves a partial final line; replay
// keeps every complete record and drops only the torn one.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendSubmit(1, "a", json.RawMessage(`{}`), "k1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(2, "b", json.RawMessage(`{}`), "k2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"type":"finish","job":1,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir)
	jobs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	if jobs[0].State != "queued" || jobs[1].State != "queued" {
		t.Errorf("torn finish leaked into state: %+v %+v", jobs[0], jobs[1])
	}
	// The next append must overtake the torn record's seq claim safely.
	if err := s2.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	jobs, err = s2.Recover()
	if err != nil || len(jobs) != 2 || jobs[0].State != "running" {
		t.Fatalf("append after torn tail: jobs=%+v err=%v", jobs, err)
	}
}

// TestCheckpointLifecycle: checkpoints replace atomically, surface in
// Recover as HasCheckpoint for non-terminal jobs only, and disappear on
// RemoveCheckpoint.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendSubmit(7, "", json.RawMessage(`{}`), "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBegin(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadCheckpoint(7); ok {
		t.Fatal("checkpoint present before any write")
	}
	if err := s.WriteCheckpoint(7, []byte(`{"iter":10}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(7, []byte(`{"iter":20}`)); err != nil {
		t.Fatal(err)
	}
	b, ok := s.LoadCheckpoint(7)
	if !ok || string(b) != `{"iter":20}` {
		t.Fatalf("LoadCheckpoint = %q, %v; want newest write", b, ok)
	}
	jobs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].HasCheckpoint {
		t.Error("running job with checkpoint file: HasCheckpoint false")
	}
	// No stray temp files from the atomic writes.
	entries, _ := os.ReadDir(filepath.Join(dir, "ckpt"))
	if len(entries) != 1 {
		t.Errorf("ckpt dir has %d entries, want 1", len(entries))
	}

	if err := s.AppendFinish(7, "succeeded", "", 30, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	s.RemoveCheckpoint(7)
	if _, ok := s.LoadCheckpoint(7); ok {
		t.Error("checkpoint survived RemoveCheckpoint")
	}
	jobs, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].HasCheckpoint {
		t.Error("terminal job reported HasCheckpoint")
	}
}

// TestResultCache: put/get round trip, persistence across reopen, and
// misses for unknown or empty keys.
func TestResultCache(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)

	if _, ok := s.GetResult("nope"); ok {
		t.Fatal("hit for unknown key")
	}
	if _, ok := s.GetResult(""); ok {
		t.Fatal("hit for empty key")
	}
	r := &CachedResult{
		Key: "bench=adaptec1|scale=0.01", Iterations: 200,
		HPWL: 4242.25, Overflow: 0.0625,
		X: []float64{1.5, 2.25}, Y: []float64{3.125, 4.0625},
	}
	if err := s.PutResult(r); err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", s.CacheLen())
	}
	got, ok := s.GetResult(r.Key)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.HPWL != r.HPWL || got.Overflow != r.Overflow || got.Iterations != r.Iterations {
		t.Errorf("round trip changed scalars: %+v", got)
	}
	for i := range r.X {
		if got.X[i] != r.X[i] || got.Y[i] != r.Y[i] {
			t.Errorf("round trip changed positions at %d", i)
		}
	}

	if err := s.PutResult(&CachedResult{}); err == nil {
		t.Error("PutResult accepted an empty key")
	}

	s.Close()
	s2 := open(t, dir)
	if s2.CacheLen() != 1 {
		t.Fatalf("reopened CacheLen = %d, want 1", s2.CacheLen())
	}
	if got, ok := s2.GetResult(r.Key); !ok || got.HPWL != r.HPWL {
		t.Fatalf("reopened GetResult = %+v, %v", got, ok)
	}

	// A corrupt cache file reads as a miss, never an error.
	sum := s2.cachePath(r.Key)
	if err := os.WriteFile(sum, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetResult(r.Key); ok {
		t.Error("corrupt cache entry served as a hit")
	}
}

// TestClosedStoreAppend: appends after Close fail loudly instead of
// silently losing durability.
func TestClosedStoreAppend(t *testing.T) {
	s := open(t, t.TempDir())
	s.Close()
	if err := s.AppendBegin(1); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
