package jobstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// walBytes reads the raw WAL file for structural assertions.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func countLines(b []byte) int {
	return len(bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n")))
}

// TestCompactMultiGeneration: a store that lives through several
// append/compact generations replays to exactly the same folded job
// state each time, while the WAL shrinks to the snapshot form (one
// submit + begin + finish per job) instead of growing without bound.
func TestCompactMultiGeneration(t *testing.T) {
	dir := t.TempDir()
	payload := json.RawMessage(`{"bench":"fft_1","scale":0.002}`)

	appendJob := func(s *Store, id int64, terminal bool) {
		t.Helper()
		if err := s.AppendSubmit(id, "job", payload, ""); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendBegin(id); err != nil {
			t.Fatal(err)
		}
		if terminal {
			if err := s.AppendFinish(id, "succeeded", "", 10, 100, 0.1, false); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Generation 1: three finished jobs, then compact.
	s := open(t, dir)
	for id := int64(1); id <= 3; id++ {
		appendJob(s, id, true)
	}
	rawLines := countLines(walBytes(t, dir))
	if dropped, err := s.Compact(); err != nil || dropped != 0 {
		// 3 jobs x (submit+begin+finish) fold to the same 9 records.
		t.Fatalf("gen1 compact: dropped=%d err=%v, want 0, nil", dropped, err)
	}
	if got := countLines(walBytes(t, dir)); got != rawLines {
		t.Fatalf("gen1 compact changed line count %d -> %d", rawLines, got)
	}

	// Generation 2: one job cancelled after several spurious begin
	// records (an aggressive requeue history), one left running.
	appendJob(s, 4, false)
	for i := 0; i < 5; i++ {
		if err := s.AppendBegin(4); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendFinish(4, "canceled", "ctx", 3, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	appendJob(s, 5, false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, recover, compact — the snapshot must fold job 4's extra
	// begins away and keep job 5 running.
	s2 := open(t, dir)
	before, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if dropped, err := s2.Compact(); err != nil || dropped != 5 {
		t.Fatalf("gen2 compact: dropped=%d err=%v, want 5 (the duplicate begins), nil", dropped, err)
	}
	after, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compaction changed job count %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, a := before[i], after[i]
		if a.ID != b.ID || a.State != b.State || a.Err != b.Err ||
			a.Iterations != b.Iterations || a.HPWL != b.HPWL ||
			string(a.Payload) != string(b.Payload) || a.Key != b.Key ||
			!a.Submitted.Equal(b.Submitted) || !a.Started.Equal(b.Started) ||
			!a.Finished.Equal(b.Finished) {
			t.Errorf("job %d changed across compaction:\nbefore %+v\nafter  %+v", b.ID, b, a)
		}
	}
	if after[4].State != "running" {
		t.Errorf("job 5 state after compaction = %q, want running", after[4].State)
	}

	// Generation 3: appends continue on the reopened handle and survive
	// another reopen — compaction must not strand the append path.
	if err := s2.AppendFinish(5, "succeeded", "", 20, 50, 0.2, false); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir)
	final, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 5 || final[4].State != "succeeded" || final[4].Iterations != 20 {
		t.Fatalf("post-compaction append lost: %+v", final)
	}
}

// TestCorruptMidFileRecords: corruption in the MIDDLE of the WAL — not
// just a torn tail — must be skipped deterministically, reported via
// SkippedRecords, and must never take the good records after it down
// with it. Three corruption shapes: binary garbage, truncated JSON, and
// a line far beyond any legitimate record size (which previously
// aborted the scan and silently dropped every subsequent record).
func TestCorruptMidFileRecords(t *testing.T) {
	payload := json.RawMessage(`{"bench":"fft_1"}`)
	goodLine := func(id int64) string {
		b, err := json.Marshal(Record{Seq: id, Type: "submit", Job: id, Label: "ok", Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name    string
		corrupt string
		skipped int
	}{
		{"binary garbage", "\x00\xff\x13garbage\x7f", 1},
		{"truncated json", `{"seq":99,"type":"submit","jo`, 1},
		{"oversized line", strings.Repeat("x", maxWALLine+16), 1},
		{"two bad lines", "not-json\n" + `{"broken":`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			wal := goodLine(1) + "\n" + tc.corrupt + "\n" + goodLine(2) + "\n" + goodLine(3) + "\n"
			if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"), []byte(wal), 0o644); err != nil {
				t.Fatal(err)
			}
			s := open(t, dir)
			jobs, err := s.Recover()
			if err != nil {
				t.Fatalf("replay errored on mid-file corruption: %v", err)
			}
			if len(jobs) != 3 {
				ids := make([]int64, len(jobs))
				for i, j := range jobs {
					ids[i] = j.ID
				}
				t.Fatalf("recovered jobs %v, want [1 2 3] — records after the bad line were lost", ids)
			}
			if got := s.SkippedRecords(); got != tc.skipped {
				t.Errorf("SkippedRecords = %d, want %d", got, tc.skipped)
			}
			// Determinism: a second replay of the same bytes skips the same
			// records and yields the same jobs.
			again, err := s.Recover()
			if err != nil || len(again) != len(jobs) {
				t.Fatalf("second replay differed: %d jobs, err %v", len(again), err)
			}
			// Compaction drops the corruption for good.
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if s.SkippedRecords() != 0 {
				t.Errorf("skipped count not reset after compaction")
			}
			clean, err := s.Recover()
			if err != nil || len(clean) != 3 || s.SkippedRecords() != 0 {
				t.Fatalf("post-compaction replay: %d jobs, skipped %d, err %v", len(clean), s.SkippedRecords(), err)
			}
		})
	}
}

// TestOpenFailsFastOnUnusableStore: a store rooted somewhere unwritable
// must fail at Open with a clear error naming the directory — not on
// the first WAL append or checkpoint minutes later.
func TestOpenFailsFastOnUnusableStore(t *testing.T) {
	t.Run("path is a file", func(t *testing.T) {
		dir := t.TempDir()
		file := filepath.Join(dir, "not-a-dir")
		if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(file); err == nil || !strings.Contains(err.Error(), file) {
			t.Fatalf("Open(%q) = %v, want error naming the path", file, err)
		}
	})
	t.Run("unwritable directory", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("root bypasses permission checks")
		}
		dir := t.TempDir()
		// Pre-create the layout so MkdirAll succeeds, then revoke writes:
		// the probe is what must catch this.
		for _, d := range []string{dir, filepath.Join(dir, "ckpt"), filepath.Join(dir, "cache")} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.Chmod(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = os.Chmod(dir, 0o755) })
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "not writable") {
			t.Fatalf("Open on read-only dir = %v, want 'not writable' error", err)
		}
	})
}
