// Package jobstore is the durable side of the placement job runtime: a
// write-ahead log of job lifecycle transitions, atomically written
// mid-trajectory placer checkpoints, and a content-addressed result
// cache. Together they turn the in-memory scheduler of internal/serve
// into a crash-safe service — a restarted scheduler replays the WAL,
// re-enqueues every job that never reached a terminal state, resumes the
// ones with a checkpoint mid-trajectory, and serves repeated identical
// submissions straight from the result cache without touching an engine.
//
// Layout under the store directory:
//
//	wal.jsonl         append-only JSON-line WAL (submit/begin/finish)
//	ckpt/job-<id>.json  newest checkpoint per live job (atomic rename)
//	cache/<sha256>.json one cached result per content key (atomic rename)
//
// WAL records carry the job's durable payload — the tiny, replayable
// spec a synthetic-benchmark job is generated from — not the expanded
// netlist, so the log stays small and the design is re-derived
// deterministically on recovery. A torn final line (the crash landed
// mid-write) is tolerated: replay skips undecodable lines, which can
// only be fragments of the record being appended when the process died —
// every complete record was fsynced before being acknowledged. All WAL
// appends are fsynced; checkpoints and cache entries are fsynced before
// an atomic rename, so those files are always complete, valid JSON.
package jobstore

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one WAL entry. Type selects which fields are meaningful.
type Record struct {
	Seq  int64     `json:"seq"`
	Type string    `json:"type"` // "submit" | "begin" | "finish"
	Job  int64     `json:"job"`
	Time time.Time `json:"time"`

	// submit fields.
	Label   string          `json:"label,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"` // replayable spec
	Key     string          `json:"key,omitempty"`     // result-cache content key

	// finish fields.
	State      string  `json:"state,omitempty"`
	Err        string  `json:"error,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	HPWL       float64 `json:"hpwl,omitempty"`
	Overflow   float64 `json:"overflow,omitempty"`
	Cached     bool    `json:"cached,omitempty"` // served from the result cache
}

// JobRecord is one job's state folded out of the WAL by Recover.
type JobRecord struct {
	ID      int64
	Label   string
	Payload []byte
	Key     string

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// State is the last recorded lifecycle state: "queued" (submit only),
	// "running" (begin without finish), or the terminal state string of
	// the finish record.
	State string
	Err   string

	Iterations int
	HPWL       float64
	Overflow   float64
	Cached     bool

	// HasCheckpoint reports a checkpoint file usable to resume the job
	// mid-trajectory.
	HasCheckpoint bool
}

// Terminal reports whether the recovered state needs no further work.
func (r JobRecord) Terminal() bool {
	switch r.State {
	case "queued", "running":
		return false
	}
	return true
}

// CachedResult is one result-cache entry: the full outcome of a
// succeeded job, keyed by the content address of (design spec, placement
// options). X/Y are the final cell positions of the original design.
type CachedResult struct {
	Key        string    `json:"key"`
	Iterations int       `json:"iterations"`
	HPWL       float64   `json:"hpwl"`
	Overflow   float64   `json:"overflow"`
	X          []float64 `json:"x"`
	Y          []float64 `json:"y"`
}

// Store is a durable job store rooted at one directory. All methods are
// safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	wal     *os.File
	bw      *bufio.Writer
	seq     int64
	keys    map[string]bool // result-cache keys present on disk
	skipped int             // undecodable WAL lines seen by the latest replay
}

// Open creates (or reopens) the store at dir, scanning the existing WAL
// for the next sequence number and the cache directory for known keys.
// An unwritable store directory (wrong permissions, read-only
// filesystem) fails HERE with one clear error instead of surfacing on
// the first WAL append or checkpoint write minutes into a run.
func Open(dir string) (*Store, error) {
	dirs := []string{dir, filepath.Join(dir, "ckpt"), filepath.Join(dir, "cache")}
	for _, d := range dirs {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("jobstore: store directory %s is not usable: %w", dir, err)
		}
	}
	// Writability probe: MkdirAll succeeds on directories that already
	// exist even when they cannot be written (and an O_APPEND handle on an
	// existing WAL keeps working in a directory that rejects new files),
	// so every directory the store creates files in is probed explicitly.
	for _, d := range dirs {
		probe, err := os.CreateTemp(d, ".probe-*")
		if err != nil {
			return nil, fmt.Errorf("jobstore: store directory %s is not writable: %w", d, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	s := &Store{dir: dir, keys: make(map[string]bool)}
	recs, skipped, err := s.readWAL()
	if err != nil {
		return nil, err
	}
	s.skipped = skipped
	for _, r := range recs {
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "cache"))
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		var cr CachedResult
		b, err := os.ReadFile(filepath.Join(dir, "cache", e.Name()))
		if err != nil || json.Unmarshal(b, &cr) != nil || cr.Key == "" {
			continue // unreadable entry: treat as a cache miss, never an error
		}
		s.keys[cr.Key] = true
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	// A crash mid-append can leave the file without a trailing newline;
	// terminate that torn line so the next record starts fresh instead of
	// gluing onto the fragment.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("jobstore: %w", err)
			}
		}
	}
	s.wal = f
	s.bw = bufio.NewWriter(f)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the WAL. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.bw.Flush()
	if e := s.wal.Sync(); err == nil {
		err = e
	}
	if e := s.wal.Close(); err == nil {
		err = e
	}
	s.wal = nil
	return err
}

func (s *Store) walPath() string { return filepath.Join(s.dir, "wal.jsonl") }

func (s *Store) ckptPath(job int64) string {
	return filepath.Join(s.dir, "ckpt", fmt.Sprintf("job-%d.json", job))
}

func (s *Store) cachePath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, "cache", hex.EncodeToString(sum[:])+".json")
}

// maxWALLine bounds a single WAL record on disk. A line beyond it cannot
// be a record this package wrote and is treated as corruption.
const maxWALLine = 1 << 26

// readWAL decodes every complete record, skipping — and counting —
// undecodable lines. A bad line is either the torn tail of a crashed
// append (Open terminates such a tail with a newline, so after a reopen
// it shows up as an undecodable line) or genuine mid-file corruption
// (bit rot, a hostile edit). Either way the skip is per-line and
// deterministic: the same bytes always yield the same surviving record
// sequence, and the records AFTER a bad line are still replayed — an
// over-long garbage line is drained to its newline rather than aborting
// the scan and silently truncating every good record behind it.
func (s *Store) readWAL() ([]Record, int, error) {
	f, err := os.Open(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	var (
		recs    []Record
		skipped int
		line    []byte
		discard bool // inside an over-long line: drop bytes until its newline
	)
	decode := func(b []byte) {
		b = bytes.TrimSpace(b)
		if len(b) == 0 {
			return
		}
		var r Record
		if err := json.Unmarshal(b, &r); err != nil {
			// Every complete record was fsynced before being acknowledged,
			// so skipping an undecodable line loses nothing that was
			// promised. The count is surfaced via SkippedRecords so a
			// corrupted log is visible, not silent.
			skipped++
			return
		}
		recs = append(recs, r)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		chunk, err := br.ReadSlice('\n')
		if !discard {
			line = append(line, chunk...)
			if len(line) > maxWALLine {
				line = nil
				discard = true
				skipped++
			}
		}
		switch {
		case errors.Is(err, bufio.ErrBufferFull):
			continue // keep accumulating (or draining) this line
		case err == nil:
			if !discard {
				decode(line)
				line = line[:0]
			}
			discard = false
			continue
		case errors.Is(err, io.EOF):
			if !discard {
				decode(line) // final line without a trailing newline
			}
			return recs, skipped, nil
		default:
			return nil, skipped, fmt.Errorf("jobstore: reading WAL: %w", err)
		}
	}
}

// SkippedRecords reports how many undecodable WAL lines the most recent
// replay (Open, Recover or Compact) skipped. Zero on a healthy log; at
// most one after a clean crash (the torn tail); more indicates mid-file
// corruption worth alerting on.
func (s *Store) SkippedRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// append writes one record and fsyncs the WAL — the record is durable
// when append returns.
func (s *Store) append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("jobstore: store is closed")
	}
	s.seq++
	r.Seq = s.seq
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := s.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// AppendSubmit records a job's acceptance along with its replayable
// payload and result-cache key. The payload must be valid JSON (it is
// embedded raw in the WAL line); an invalid payload fails the append.
func (s *Store) AppendSubmit(job int64, label string, payload []byte, key string) error {
	return s.append(Record{
		Type: "submit", Job: job, Time: time.Now(),
		Label: label, Payload: payload, Key: key,
	})
}

// AppendBegin records that a worker started running the job.
func (s *Store) AppendBegin(job int64) error {
	return s.append(Record{Type: "begin", Job: job, Time: time.Now()})
}

// AppendFinish records the job's terminal transition.
func (s *Store) AppendFinish(job int64, state, errMsg string, iters int, hpwl, overflow float64, cached bool) error {
	return s.append(Record{
		Type: "finish", Job: job, Time: time.Now(),
		State: state, Err: errMsg,
		Iterations: iters, HPWL: hpwl, Overflow: overflow, Cached: cached,
	})
}

// foldRecords collapses raw WAL records into per-job state, returning
// the jobs in ascending-id order (ids are assigned in submission order).
func foldRecords(recs []Record) []JobRecord {
	jobs := make(map[int64]*JobRecord)
	var order []int64
	for _, r := range recs {
		j := jobs[r.Job]
		if j == nil {
			if r.Type != "submit" {
				continue // begin/finish for a job whose submit was torn off
			}
			j = &JobRecord{ID: r.Job}
			jobs[r.Job] = j
			order = append(order, r.Job)
		}
		switch r.Type {
		case "submit":
			j.Label = r.Label
			j.Payload = append([]byte(nil), r.Payload...)
			j.Key = r.Key
			j.Submitted = r.Time
			j.State = "queued"
		case "begin":
			j.Started = r.Time
			j.State = "running"
		case "finish":
			j.Finished = r.Time
			j.State = r.State
			j.Err = r.Err
			j.Iterations = r.Iterations
			j.HPWL = r.HPWL
			j.Overflow = r.Overflow
			j.Cached = r.Cached
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	out := make([]JobRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	return out
}

// Recover folds the WAL into per-job records, newest-submission-last.
// Jobs whose last record is not a finish are the crashed scheduler's
// queued and running jobs — the caller re-enqueues them (resuming from
// the checkpoint when HasCheckpoint is set).
func (s *Store) Recover() ([]JobRecord, error) {
	recs, skipped, err := s.readWAL()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.skipped = skipped
	s.mu.Unlock()
	out := foldRecords(recs)
	for i := range out {
		if !out[i].Terminal() {
			if _, err := os.Stat(s.ckptPath(out[i].ID)); err == nil {
				out[i].HasCheckpoint = true
			}
		}
	}
	return out, nil
}

// Compact rewrites the WAL as a snapshot of its folded per-job state —
// one submit (plus begin/finish where recorded) per job — and truncates
// the historical record stream ("snapshot and truncate"). A long-lived
// node calls this after a successful startup recovery so the log it
// replays stays proportional to the number of jobs it has ever seen,
// not the number of lifecycle transitions; corrupt lines are dropped
// for good. The swap is atomic (temp + fsync + rename) and the append
// handle is reopened on the new file, so a crash at any point leaves
// either the old or the new WAL intact — never a partial one. Returns
// how many raw records the snapshot folded away.
func (s *Store) Compact() (dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, errors.New("jobstore: store is closed")
	}
	if err := s.bw.Flush(); err != nil {
		return 0, fmt.Errorf("jobstore: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return 0, fmt.Errorf("jobstore: %w", err)
	}
	recs, skipped, err := s.readWAL()
	if err != nil {
		return 0, err
	}
	var (
		buf bytes.Buffer
		seq int64
	)
	write := func(r Record) error {
		seq++
		r.Seq = seq
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("jobstore: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
		return nil
	}
	for _, j := range foldRecords(recs) {
		if err := write(Record{
			Type: "submit", Job: j.ID, Time: j.Submitted,
			Label: j.Label, Payload: j.Payload, Key: j.Key,
		}); err != nil {
			return 0, err
		}
		if !j.Started.IsZero() {
			if err := write(Record{Type: "begin", Job: j.ID, Time: j.Started}); err != nil {
				return 0, err
			}
		}
		if j.Terminal() {
			if err := write(Record{
				Type: "finish", Job: j.ID, Time: j.Finished,
				State: j.State, Err: j.Err,
				Iterations: j.Iterations, HPWL: j.HPWL, Overflow: j.Overflow,
				Cached: j.Cached,
			}); err != nil {
				return 0, err
			}
		}
	}
	// Close the live handle BEFORE the rename: an append racing the swap
	// would otherwise land on the unlinked old inode and silently vanish.
	// (Appends are excluded by s.mu; this guards the handle itself.)
	if err := s.wal.Close(); err != nil {
		return 0, fmt.Errorf("jobstore: %w", err)
	}
	s.wal, s.bw = nil, nil
	reopen := func() error {
		f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("jobstore: reopening WAL after compaction: %w", err)
		}
		s.wal = f
		s.bw = bufio.NewWriter(f)
		return nil
	}
	if err := writeAtomic(s.walPath(), buf.Bytes()); err != nil {
		// The old WAL is still in place; reopen it and keep appending.
		if rerr := reopen(); rerr != nil {
			return 0, rerr
		}
		return 0, err
	}
	if err := reopen(); err != nil {
		return 0, err
	}
	dropped = len(recs) + skipped - int(seq)
	s.seq = seq
	s.skipped = 0
	return dropped, nil
}

// writeAtomic writes data to path via a temp file + fsync + rename, so a
// crash never leaves a partial file under the final name.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// WriteCheckpoint durably replaces the job's resume point.
func (s *Store) WriteCheckpoint(job int64, data []byte) error {
	return writeAtomic(s.ckptPath(job), data)
}

// LoadCheckpoint returns the job's newest checkpoint, or ok=false when
// none exists (or it is unreadable — the job then restarts from scratch).
func (s *Store) LoadCheckpoint(job int64) (data []byte, ok bool) {
	b, err := os.ReadFile(s.ckptPath(job))
	if err != nil {
		return nil, false
	}
	return b, true
}

// RemoveCheckpoint deletes the job's resume point (call on terminal
// transition — a finished job must not resume).
func (s *Store) RemoveCheckpoint(job int64) {
	_ = os.Remove(s.ckptPath(job))
}

// PutResult durably caches a succeeded job's result under its content
// key.
func (s *Store) PutResult(r *CachedResult) error {
	if r.Key == "" {
		return errors.New("jobstore: cached result needs a key")
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := writeAtomic(s.cachePath(r.Key), b); err != nil {
		return err
	}
	s.mu.Lock()
	s.keys[r.Key] = true
	s.mu.Unlock()
	return nil
}

// GetResult looks a result up by content key. A disk-level decode
// problem reads as a miss, never an error: the cache is an optimization.
func (s *Store) GetResult(key string) (*CachedResult, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	known := s.keys[key]
	s.mu.Unlock()
	if !known {
		return nil, false
	}
	b, err := os.ReadFile(s.cachePath(key))
	if err != nil {
		return nil, false
	}
	var cr CachedResult
	if err := json.Unmarshal(b, &cr); err != nil || cr.Key != key {
		return nil, false
	}
	return &cr, true
}

// CacheLen returns the number of cached results.
func (s *Store) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}
