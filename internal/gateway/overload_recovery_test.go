package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/jobstore"
)

// TestOverloadDraftTierAndShed: with every worker at backpressure, an
// allow_draft job degrades to a real local lbub draft placement while a
// job without the opt-in sheds with 429 + Retry-After — and the xgate_*
// counters account for every routed, shed and drafted submission.
func TestOverloadDraftTierAndShed(t *testing.T) {
	w := newFakeWorker(t, time.Millisecond, 3)
	w.setFull(true) // fleet-wide backpressure (fleet of one)
	opts := fastOpts(w.name())
	opts.Draft = DraftOptions{Enabled: true, EngineWorkers: 2, MaxIter: 40}
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	// No opt-in: shed.
	if _, err := g.Submit(testRequest(10)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit under total overload = %v, want ErrOverloaded", err)
	}
	if got := g.shedTotal.Value(); got != 1 {
		t.Errorf("shed_total = %d, want 1", got)
	}

	// Opt-in: a REAL lbub draft placement on the embedded scheduler.
	req := testRequest(10)
	req.AllowDraft = true
	j, err := g.Submit(req)
	if err != nil {
		t.Fatalf("allow_draft submit under overload: %v", err)
	}
	st := waitDone(t, j, 120*time.Second)
	if st.State != "succeeded" {
		t.Fatalf("draft job: %+v", st)
	}
	if !st.Draft {
		t.Error("draft job not labeled as a draft")
	}
	if st.HPWL <= 0 || st.Iterations <= 0 {
		t.Errorf("draft produced no placement: %+v", st)
	}
	if got := g.draftTotal.Value(); got != 1 {
		t.Errorf("draft_total = %d, want 1", got)
	}

	// HTTP shape of the shed: 429 with a Retry-After hint.
	srv := httptest.NewServer(NewMux(g))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"bench":"fft_1","scale":0.002,"seed":11}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit over HTTP = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After header")
	}

	// Accounting closes: every submission this test made is exactly one
	// of routed / shed / drafted.
	if route, shed, draft := g.routeTotal.Value(), g.shedTotal.Value(), g.draftTotal.Value(); route != 0 || shed != 2 || draft != 1 {
		t.Errorf("accounting: route=%d shed=%d draft=%d, want 0/2/1", route, shed, draft)
	}
}

// TestGatewayWALRecovery: a durable gateway that goes down with a job
// in flight re-adopts it on restart — same gateway job ID — by
// re-routing the recorded canonical payload; terminal jobs reappear as
// history without being re-run.
func TestGatewayWALRecovery(t *testing.T) {
	w := newFakeWorker(t, 5*time.Millisecond, 50)
	dir := t.TempDir()

	store, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(w.name())
	opts.Store = store
	g1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Job 1 completes before the crash.
	j1, err := g1.Submit(testRequest(20))
	if err != nil {
		t.Fatal(err)
	}
	done1 := waitDone(t, j1, 30*time.Second)

	// Job 2 is mid-flight when the gateway dies.
	j2, err := g1.Submit(testRequest(21))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j2.Status().Progress == nil {
		if time.Now().After(deadline) {
			t.Fatal("job 2 never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	closeGateway(t, g1) // closes the store too

	// Restart over the same WAL.
	store2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := fastOpts(w.name())
	opts2.Store = store2
	g2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g2)

	// Terminal history intact, not re-run.
	r1, ok := g2.Job(j1.ID())
	if !ok {
		t.Fatal("finished job lost across restart")
	}
	h1 := r1.Status()
	if h1.State != "succeeded" || h1.HPWL != done1.HPWL || h1.Iterations != done1.Iterations {
		t.Errorf("history job changed across restart: %+v vs %+v", h1, done1)
	}
	if !h1.Recovered {
		t.Error("history job not marked recovered")
	}

	// The in-flight job was re-adopted under its original ID and runs to
	// completion.
	r2, ok := g2.Job(j2.ID())
	if !ok {
		t.Fatal("in-flight job dropped across restart")
	}
	f2 := waitDone(t, r2, 60*time.Second)
	if f2.State != "succeeded" {
		t.Fatalf("recovered job: %+v", f2)
	}
	if !f2.Recovered {
		t.Error("re-adopted job not marked recovered")
	}
}

// TestGatewaySSERelay: the gateway's own /jobs/{id}/events stream
// behaves like a worker's — history then live, Last-Event-ID resume —
// while the job actually runs a network hop away.
func TestGatewaySSERelay(t *testing.T) {
	w := newFakeWorker(t, 10*time.Millisecond, 60)
	g, err := New(fastOpts(w.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)
	srv := httptest.NewServer(NewMux(g))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"bench":"fft_1","scale":0.002,"seed":30,"max_iter":60}`))
	if err != nil {
		t.Fatal(err)
	}
	var acc Status
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%+v)", resp.StatusCode, acc)
	}

	// First connection: a few events, then drop.
	es1, err := http.Get(srv.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	first := readEvents(t, es1, 5)
	es1.Body.Close()
	if len(first) < 5 || first[4].id < 1 {
		t.Fatalf("first stream: %+v", first)
	}

	// Resume with Last-Event-ID: strictly continues, no replay, no gap.
	req2, _ := http.NewRequest("GET", srv.URL+"/jobs/1/events", nil)
	req2.Header.Set("Last-Event-ID", strconv.Itoa(first[4].id))
	es2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Body.Close()
	resumed := readEvents(t, es2, 3)
	if len(resumed) < 3 {
		t.Fatalf("resumed stream: %+v", resumed)
	}
	if resumed[0].id != first[4].id+1 {
		t.Errorf("resume started at %d, want %d", resumed[0].id, first[4].id+1)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].id != resumed[i-1].id+1 {
			t.Fatalf("resumed stream not contiguous: %+v", resumed)
		}
	}
}

type event struct {
	id    int
	event string
	data  string
}

func readEvents(t *testing.T, resp *http.Response, n int) []event {
	t.Helper()
	var out []event
	cur := event{id: -1}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if len(out) == n {
					return out
				}
			}
			cur = event{id: -1}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

// TestBadRequestIsDeterministic400: client errors never consume retry
// budget, trip breakers or shed — they are rejected up front.
func TestBadRequestIsDeterministic400(t *testing.T) {
	w := newFakeWorker(t, time.Millisecond, 3)
	g, err := New(fastOpts(w.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	var re *RequestError
	if _, err := g.Submit(jobapi.Request{}); !errors.As(err, &re) {
		t.Fatalf("empty request = %v, want RequestError", err)
	}
	if _, err := g.Submit(jobapi.Request{Bench: "no-such-bench"}); !errors.As(err, &re) {
		t.Fatalf("unknown bench = %v, want RequestError", err)
	}
	if g.retryTotal.Value() != 0 || g.shedTotal.Value() != 0 || g.breakerTrips.Value() != 0 {
		t.Errorf("client errors consumed fault budget: retries=%d shed=%d trips=%d",
			g.retryTotal.Value(), g.shedTotal.Value(), g.breakerTrips.Value())
	}
}
