package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"xplace/internal/jobapi"
)

// fakeWorker is an in-process stand-in for one xserve daemon: the same
// HTTP surface (submit/status/events/cancel/probes), a per-key result
// cache, and scripted failure modes (transient 500s, backpressure,
// sudden death via the test server). Jobs "place" by counting
// iterations on a timer; the final HPWL is a pure function of the
// request body, so a failover rerun on a different fake reproduces it
// exactly — the same determinism contract the real engine provides.
type fakeWorker struct {
	srv        *httptest.Server
	iterPeriod time.Duration
	runIters   int

	mu       sync.Mutex
	jobs     map[int64]*fakeJob
	nextID   int64
	full     bool // 429 every submit
	failNext int  // 500 the next N submits
	launches int  // jobs actually run (cache hits excluded)
	cache    map[string]fakeResult
}

type fakeResult struct {
	iters int
	hpwl  float64
}

type fakeJob struct {
	id     int64
	key    string
	mu     sync.Mutex
	iter   int
	state  string
	hpwl   float64
	cached bool
}

// fakeHPWL is the deterministic "placement result" for a request body.
func fakeHPWL(key string) float64 { return float64(1000 + len(key)) }

func newFakeWorker(t *testing.T, iterPeriod time.Duration, runIters int) *fakeWorker {
	t.Helper()
	w := &fakeWorker{
		iterPeriod: iterPeriod,
		runIters:   runIters,
		jobs:       make(map[int64]*fakeJob),
		cache:      make(map[string]fakeResult),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", w.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", w.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", w.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", func(http.ResponseWriter, *http.Request) {})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *fakeWorker) name() string { return w.srv.URL }

func (w *fakeWorker) setFull(v bool) {
	w.mu.Lock()
	w.full = v
	w.mu.Unlock()
}

func (w *fakeWorker) setFailNext(n int) {
	w.mu.Lock()
	w.failNext = n
	w.mu.Unlock()
}

func (w *fakeWorker) launchCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.launches
}

// die simulates SIGKILL: every live connection (including SSE relays)
// drops and the listener stops answering.
func (w *fakeWorker) die() {
	w.srv.CloseClientConnections()
	w.srv.Close()
}

func (w *fakeWorker) handleSubmit(rw http.ResponseWriter, r *http.Request) {
	var req jobapi.Request
	body := json.NewDecoder(r.Body)
	if err := body.Decode(&req); err != nil {
		http.Error(rw, `{"error":"bad body"}`, http.StatusBadRequest)
		return
	}
	key := req.CacheKey()
	w.mu.Lock()
	if w.failNext > 0 {
		w.failNext--
		w.mu.Unlock()
		http.Error(rw, `{"error":"transient"}`, http.StatusInternalServerError)
		return
	}
	if w.full {
		w.mu.Unlock()
		http.Error(rw, `{"error":"queue full"}`, http.StatusTooManyRequests)
		return
	}
	w.nextID++
	j := &fakeJob{id: w.nextID, key: key, state: "queued"}
	w.jobs[j.id] = j
	if res, ok := w.cache[key]; ok {
		j.state = "succeeded"
		j.iter = res.iters
		j.hpwl = res.hpwl
		j.cached = true
	} else {
		w.launches++
		go w.run(j)
	}
	w.mu.Unlock()
	rw.WriteHeader(http.StatusAccepted)
	j.mu.Lock()
	fmt.Fprintf(rw, `{"id":%d,"state":%q,"cached":%v}`, j.id, j.state, j.cached)
	j.mu.Unlock()
}

func (w *fakeWorker) run(j *fakeJob) {
	for i := 1; i <= w.runIters; i++ {
		time.Sleep(w.iterPeriod)
		j.mu.Lock()
		j.iter = i
		j.state = "running"
		j.mu.Unlock()
	}
	j.mu.Lock()
	j.state = "succeeded"
	j.hpwl = fakeHPWL(j.key)
	j.mu.Unlock()
	w.mu.Lock()
	w.cache[j.key] = fakeResult{iters: w.runIters, hpwl: fakeHPWL(j.key)}
	w.mu.Unlock()
}

func (w *fakeWorker) job(r *http.Request) *fakeJob {
	var id int64
	fmt.Sscanf(r.PathValue("id"), "%d", &id)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs[id]
}

func (j *fakeJob) statusJSON() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return fmt.Sprintf(`{"id":%d,"state":%q,"iterations":%d,"hpwl":%g,"cached":%v,"progress":{"Iter":%d,"HPWL":%g}}`,
		j.id, j.state, j.iter, j.hpwl, j.cached, j.iter, j.hpwl)
}

func (w *fakeWorker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	j := w.job(r)
	if j == nil {
		http.Error(rw, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	fmt.Fprint(rw, j.statusJSON())
}

func (w *fakeWorker) handleEvents(rw http.ResponseWriter, r *http.Request) {
	j := w.job(r)
	if j == nil {
		http.Error(rw, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	fl := rw.(http.Flusher)
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.WriteHeader(http.StatusOK)
	last := 0
	fmt.Sscanf(r.Header.Get("Last-Event-ID"), "%d", &last)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(2 * time.Millisecond):
		}
		j.mu.Lock()
		iter, state := j.iter, j.state
		j.mu.Unlock()
		for last < iter {
			last++
			fmt.Fprintf(rw, "id: %d\nevent: progress\ndata: {\"Iter\":%d,\"HPWL\":%g}\n\n",
				last, last, float64(2000-last))
			fl.Flush()
		}
		if terminalState(state) {
			fmt.Fprintf(rw, "event: done\ndata: %s\n\n", j.statusJSON())
			fl.Flush()
			return
		}
	}
}

// fastOpts are gateway options tuned for test latencies.
func fastOpts(nodes ...string) Options {
	return Options{
		Nodes:          nodes,
		ProbePeriod:    25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		SubmitAttempts: 3,
		RetryBase:      time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
		RetryAfter:     20 * time.Millisecond,
		RouteWait:      10 * time.Second,
	}
}

func testRequest(seed int64) jobapi.Request {
	return jobapi.Request{Bench: "fft_1", Scale: 0.002, Seed: seed, MaxIter: 5}
}

func waitDone(t *testing.T, j *Job, within time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %d not done within %v: %+v", j.ID(), within, j.Status())
	}
	return j.Status()
}

func closeGateway(t *testing.T, g *Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Close(ctx); err != nil {
		t.Errorf("gateway close: %v", err)
	}
}

// TestCacheAwareRouting: identical resubmissions land on the node that
// already holds the cached result — zero new engine launches — and the
// property survives a node joining the ring.
func TestCacheAwareRouting(t *testing.T) {
	wA := newFakeWorker(t, time.Millisecond, 5)
	wB := newFakeWorker(t, time.Millisecond, 5)
	byName := map[string]*fakeWorker{wA.name(): wA, wB.name(): wB}
	g, err := New(fastOpts(wA.name(), wB.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	launches := func() int { return wA.launchCount() + wB.launchCount() }

	j1, err := g.Submit(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, j1, 15*time.Second)
	if st1.State != "succeeded" || st1.Cached {
		t.Fatalf("first run: %+v", st1)
	}
	owner := st1.Node
	if byName[owner] == nil {
		t.Fatalf("job ran on unknown node %q", owner)
	}
	if launches() != 1 {
		t.Fatalf("first run launched %d times, want 1", launches())
	}

	// Identical resubmission: routed to the same owner, served from its
	// cache, no engine anywhere.
	j2, err := g.Submit(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, j2, 15*time.Second)
	if st2.Node != owner {
		t.Errorf("resubmission routed to %s, want cache owner %s", st2.Node, owner)
	}
	if !st2.Cached {
		t.Errorf("resubmission not served from cache: %+v", st2)
	}
	if launches() != 1 {
		t.Errorf("resubmission launched an engine: %d launches", launches())
	}
	if g.routeTotal.Value() != 2 {
		t.Errorf("route_total = %d, want 2", g.routeTotal.Value())
	}

	// A node joins. The key either stays put (still cached) or moves to
	// the joiner (one deterministic recompute); after that one submission
	// the fleet is warm again and ownership is stable.
	wC := newFakeWorker(t, time.Millisecond, 5)
	g.AddNode(wC.name())
	j3, err := g.Submit(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st3 := waitDone(t, j3, 15*time.Second)
	if st3.State != "succeeded" {
		t.Fatalf("post-join run: %+v", st3)
	}
	mid := launches()
	j4, err := g.Submit(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st4 := waitDone(t, j4, 15*time.Second)
	if !st4.Cached || st4.Node != st3.Node {
		t.Errorf("post-join resubmission not cache-stable: %+v vs node %s", st4, st3.Node)
	}
	if launches() != mid {
		t.Errorf("post-join resubmission launched an engine: %d -> %d", mid, launches())
	}
}

// TestTransientRetryWithBackoff: submit attempts that fail with 5xx are
// retried on the same node with backoff before anything spills; the
// job lands despite the flaps and the retries are accounted.
func TestTransientRetryWithBackoff(t *testing.T) {
	w := newFakeWorker(t, time.Millisecond, 3)
	w.setFailNext(2)
	g, err := New(fastOpts(w.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	j, err := g.Submit(testRequest(2))
	if err != nil {
		t.Fatalf("submit through transient faults: %v", err)
	}
	st := waitDone(t, j, 15*time.Second)
	if st.State != "succeeded" {
		t.Fatalf("job: %+v", st)
	}
	if got := g.retryTotal.Value(); got != 2 {
		t.Errorf("retry_total = %d, want 2", got)
	}
	if got := g.breakerTrips.Value(); got != 0 {
		t.Errorf("breaker tripped on sub-threshold flaps: %d", got)
	}
}

// TestBreakerEjectsFlappingNode: a node whose submit path fails
// persistently trips its breaker and stops being offered jobs; after
// the cooldown (half-open) a healthy submit closes it again.
func TestBreakerEjectsFlappingNode(t *testing.T) {
	w := newFakeWorker(t, time.Millisecond, 3)
	opts := fastOpts(w.name())
	opts.SubmitAttempts = 4
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 100 * time.Millisecond
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	w.setFailNext(100)
	if _, err := g.Submit(testRequest(3)); err == nil {
		t.Fatal("submit succeeded against a dead submit path")
	}
	if got := g.breakerTrips.Value(); got < 1 {
		t.Fatalf("breaker never tripped: %d", got)
	}
	n := g.node(w.name())
	if n.available() {
		t.Fatal("node still routable with an open breaker")
	}

	// Heal the worker; after the cooldown the half-open breaker lets one
	// submit through and closes on its success.
	w.setFailNext(0)
	time.Sleep(150 * time.Millisecond)
	j, err := g.Submit(testRequest(3))
	if err != nil {
		t.Fatalf("submit after cooldown: %v", err)
	}
	st := waitDone(t, j, 15*time.Second)
	if st.State != "succeeded" {
		t.Fatalf("post-recovery job: %+v", st)
	}
	if n.breakerOpen() {
		t.Error("breaker still open after a successful submit")
	}
}

// TestBackpressureSpillsToNextNode: a 429 from the key's owner is not a
// fault — no retry, no breaker — the job just spills to the next ring
// node and runs there.
func TestBackpressureSpillsToNextNode(t *testing.T) {
	wA := newFakeWorker(t, time.Millisecond, 3)
	wB := newFakeWorker(t, time.Millisecond, 3)
	byName := map[string]*fakeWorker{wA.name(): wA, wB.name(): wB}
	g, err := New(fastOpts(wA.name(), wB.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	// Discover the key's owner with an unconstrained run.
	j1, err := g.Submit(testRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	owner := waitDone(t, j1, 15*time.Second).Node

	// Saturate the owner: a DIFFERENT seed (cache cannot answer) must
	// spill to the other node.
	byName[owner].setFull(true)
	j2, err := g.Submit(testRequest(5))
	if err != nil {
		t.Fatalf("submit with one node full: %v", err)
	}
	st := waitDone(t, j2, 15*time.Second)
	if st.State != "succeeded" {
		t.Fatalf("spilled job: %+v", st)
	}
	if st.Node == owner && byName[owner].launchCount() > 1 {
		t.Errorf("job ran on the saturated owner")
	}
	if got := g.breakerTrips.Value(); got != 0 {
		t.Errorf("backpressure tripped a breaker: %d", got)
	}
}

// TestFailoverOnDeadWorker: a worker dies mid-job (connections cut,
// listener gone). The gateway confirms the death, reruns the recorded
// canonical request on the surviving node under the SAME job ID, and
// the client-visible progress stream stays monotone and duplicate-free
// with the final result identical to an undisturbed run.
func TestFailoverOnDeadWorker(t *testing.T) {
	wA := newFakeWorker(t, 10*time.Millisecond, 200)
	wB := newFakeWorker(t, 10*time.Millisecond, 200)
	byName := map[string]*fakeWorker{wA.name(): wA, wB.name(): wB}
	g, err := New(fastOpts(wA.name(), wB.name()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeGateway(t, g)

	req := testRequest(6)
	j, err := g.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Watch the client-visible stream for monotonicity across the kill.
	iters := make(chan int, 1024)
	sub, unsub := j.Subscribe(1024)
	defer unsub()
	go func() {
		for sn := range sub {
			iters <- sn.Iter
		}
		close(iters)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Progress == nil || j.Status().Progress.Iter < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", j.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	dead := j.Status().Node
	byName[dead].die()

	st := waitDone(t, j, 60*time.Second)
	if st.State != "succeeded" {
		t.Fatalf("job after node death: %+v", st)
	}
	if st.Node == dead || st.Node == "" {
		t.Errorf("job finished on the dead node %q", st.Node)
	}
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
	if got := g.failoverTotal.Value(); got != 1 {
		t.Errorf("failover_total = %d, want 1", got)
	}
	// Bit-identical to an undisturbed run: the fake's result is a pure
	// function of the canonical request, exactly like the real engine.
	req.Normalize()
	if want := fakeHPWL(req.CacheKey()); st.HPWL != want {
		t.Errorf("failed-over HPWL %v, want %v", st.HPWL, want)
	}
	prev := 0
	for it := range iters {
		if it != prev+1 {
			t.Fatalf("client stream not contiguous across failover: %d after %d", it, prev)
		}
		prev = it
	}
	if prev != 200 {
		t.Errorf("client stream delivered %d iterations, want 200", prev)
	}
	// Exactly one route + one failover route.
	if got := g.routeTotal.Value(); got != 2 {
		t.Errorf("route_total = %d, want 2 (initial + failover)", got)
	}
}
