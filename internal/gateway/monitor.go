package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xplace/internal/placer"
)

// workerStatus is the slice of xserve's job JSON the gateway consumes.
type workerStatus struct {
	ID       int64            `json:"id"`
	State    string           `json:"state"`
	Err      string           `json:"error,omitempty"`
	Iters    int              `json:"iterations,omitempty"`
	HPWL     float64          `json:"hpwl,omitempty"`
	Overflow float64          `json:"overflow,omitempty"`
	Cached   bool             `json:"cached,omitempty"`
	Fallback string           `json:"fallback,omitempty"`
	Progress *placer.Snapshot `json:"progress,omitempty"`
}

// errJobLost: the worker is reachable but no longer knows the job (it
// restarted without a store, or with an empty one). For the gateway
// that is indistinguishable from a dead node — rerun elsewhere.
var errJobLost = errors.New("gateway: worker no longer knows the job")

// monitorLoop owns one routed job until it is terminal: it relays the
// worker's event stream, distinguishes stream hiccups from node deaths,
// and drives failover. One goroutine per in-flight job.
func (g *Gateway) monitorLoop(j *Job) {
	for {
		err := g.streamJob(j)
		if err == nil {
			return // terminal state relayed and recorded
		}
		if g.ctx.Err() != nil {
			return // gateway shutting down; a durable gateway re-adopts the job on restart
		}
		if errors.Is(err, errJobLost) {
			if !g.failover(j) {
				return
			}
			continue
		}
		// The stream dropped. A live worker answers a status poll — then it
		// was a hiccup (or a drain) and we reconnect with Last-Event-ID; a
		// dead one fails the poll AND the liveness confirm, and the job
		// reruns on the next ring node.
		node, _ := j.current()
		st, serr := g.fetchStatus(j)
		switch {
		case serr == nil && st != nil && terminalState(st.State):
			g.finishRemote(j, st)
			return
		case serr == nil:
			if !g.sleep(100 * time.Millisecond) {
				return
			}
		case errors.Is(serr, errJobLost):
			if !g.failover(j) {
				return
			}
		default:
			if g.confirmDead(node) {
				if !g.failover(j) {
					return
				}
			} else if !g.sleep(100 * time.Millisecond) {
				return
			}
		}
	}
}

// failover reruns j on the next ring node after its worker died. The
// job's canonical payload makes the rerun bit-identical to what the
// dead node would have produced, so the client's single job ID simply
// keeps reporting progress. Returns false when the job is over (no
// willing node within RouteWait, or gateway shutdown).
func (g *Gateway) failover(j *Job) bool {
	if j.terminal() {
		return false
	}
	dead := j.markFailedOver()
	g.failoverTotal.Inc()
	if err := g.routeWithRetry(j, dead); err != nil {
		if g.ctx.Err() == nil {
			g.finishLocal(j, "failed",
				fmt.Errorf("gateway: failover after node %s died: %w", dead, err))
		}
		return false
	}
	return true
}

// fetchStatus polls the worker for the job's current state.
func (g *Gateway) fetchStatus(j *Job) (*workerStatus, error) {
	node, rid := j.current()
	if node == "" {
		return nil, errJobLost
	}
	req, err := http.NewRequestWithContext(g.ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%d", node, rid), nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusNotFound {
		return nil, errJobLost
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("node %s: HTTP %d", node, resp.StatusCode)
	}
	var ws workerStatus
	if err := json.Unmarshal(b, &ws); err != nil {
		return nil, err
	}
	return &ws, nil
}

// streamJob relays one connection's worth of the worker's SSE stream
// into the gateway job. It presents the job's high-water iteration as
// Last-Event-ID, so a reconnect (same node) resumes where the last
// connection dropped, and a failover rerun (new node) streams silently
// until the fresh trajectory passes the iterations the client already
// has — determinism makes the suppressed prefix bit-identical, so
// clients see one gapless, duplicate-free progress stream per job.
// Returns nil only after relaying a terminal "done" event.
func (g *Gateway) streamJob(j *Job) error {
	node, rid := j.current()
	if node == "" {
		return errJobLost
	}
	req, err := http.NewRequestWithContext(g.ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%d/events", node, rid), nil)
	if err != nil {
		return err
	}
	if hw := j.highWater(); hw > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(hw))
	}
	resp, err := g.stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errJobLost
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("node %s: events HTTP %d", node, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "progress":
				var sn placer.Snapshot
				if json.Unmarshal([]byte(data), &sn) == nil {
					j.observe(sn)
				}
			case "done":
				var ws workerStatus
				if json.Unmarshal([]byte(data), &ws) == nil && terminalState(ws.State) {
					g.finishRemote(j, &ws)
					return nil
				}
				return fmt.Errorf("node %s: malformed done event", node)
			case "draining":
				// The worker is shutting down gracefully; its store will carry
				// the job across the restart. Treat as a dropped stream: the
				// monitor polls status and reconnects (or fails over if the
				// node never comes back).
				return fmt.Errorf("node %s: draining", node)
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("node %s: event stream ended without done", node)
}
