package gateway

import (
	"sync"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/placer"
)

// Job is one placement request as the gateway tracks it. The client
// sees exactly one job ID for the request's whole life — across worker
// retries, failovers to other nodes, and gateway restarts — while the
// node/remoteID pair underneath may change.
type Job struct {
	id        int64
	gw        *Gateway
	req       jobapi.Request
	body      []byte // canonical (normalized) request JSON — the failover resubmission payload
	key       string // cache/routing key
	recovered bool

	mu         sync.Mutex
	state      string
	errMsg     string
	node       string // worker currently running the job ("" for draft/unrouted)
	remoteID   int64  // job id on that worker (or the draft scheduler)
	draft      bool
	excluded   string // node this job most recently died on; skipped at the next route
	failovers  int
	iterations int
	hpwl       float64
	overflow   float64
	cached     bool
	fallback   string
	submitted  time.Time
	started    time.Time
	finished   time.Time

	// Progress ring + fanout, mirroring serve.Job so the gateway's SSE
	// surface behaves exactly like a worker's.
	maxIter   int // highest iteration delivered; non-increasing snapshots drop
	snaps     []placer.Snapshot
	snapStart int
	snapCount int
	subs      map[int]chan placer.Snapshot
	nextSub   int

	done chan struct{}
}

// Status is a point-in-time copy of a gateway job's visible state; it
// doubles as the wire form of GET /jobs/{id}.
type Status struct {
	ID         int64            `json:"id"`
	Label      string           `json:"label"`
	State      string           `json:"state"`
	Err        string           `json:"error,omitempty"`
	Node       string           `json:"node,omitempty"`
	RemoteID   int64            `json:"remote_id,omitempty"`
	Draft      bool             `json:"draft,omitempty"`
	Cached     bool             `json:"cached,omitempty"`
	Recovered  bool             `json:"recovered,omitempty"`
	Fallback   string           `json:"fallback,omitempty"`
	Failovers  int              `json:"failovers,omitempty"`
	Submitted  time.Time        `json:"submitted"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
	Progress   *placer.Snapshot `json:"progress,omitempty"`
	Iterations int              `json:"iterations,omitempty"`
	HPWL       float64          `json:"hpwl,omitempty"`
	Overflow   float64          `json:"overflow,omitempty"`
}

// ID returns the gateway-scoped job id.
func (j *Job) ID() int64 { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns a snapshot of the job's state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Label:      j.req.Label,
		State:      j.state,
		Err:        j.errMsg,
		Node:       j.node,
		RemoteID:   j.remoteID,
		Draft:      j.draft,
		Cached:     j.cached,
		Recovered:  j.recovered,
		Fallback:   j.fallback,
		Failovers:  j.failovers,
		Submitted:  j.submitted,
		Iterations: j.iterations,
		HPWL:       j.hpwl,
		Overflow:   j.overflow,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.snapCount > 0 {
		p := j.snaps[(j.snapStart+j.snapCount-1)%len(j.snaps)]
		st.Progress = &p
	}
	return st
}

func terminalState(s string) bool {
	switch s {
	case "succeeded", "failed", "canceled", "timed-out":
		return true
	}
	return false
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state)
}

// observe appends one progress snapshot and fans it out. Snapshots at
// or below the high-water iteration are dropped: after a failover the
// replacement run replays iterations the client already saw (reruns are
// deterministic, so the dropped ones are bit-identical), and the client
// stream stays monotone and duplicate-free across node deaths.
func (j *Job) observe(sn placer.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalState(j.state) || sn.Iter <= j.maxIter {
		return
	}
	j.maxIter = sn.Iter
	if j.state == "queued" {
		j.state = "running"
		if j.started.IsZero() {
			j.started = time.Now()
		}
	}
	if len(j.snaps) > 0 {
		if j.snapCount < len(j.snaps) {
			j.snaps[(j.snapStart+j.snapCount)%len(j.snaps)] = sn
			j.snapCount++
		} else {
			j.snaps[j.snapStart] = sn
			j.snapStart = (j.snapStart + 1) % len(j.snaps)
		}
	}
	for _, ch := range j.subs {
		select {
		case ch <- sn:
		default: // slow subscriber: drop rather than stall the relay
		}
	}
}

// highWater returns the last iteration delivered to the progress ring —
// the Last-Event-ID the gateway presents when it (re)connects to a
// worker's event stream.
func (j *Job) highWater() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxIter
}

// Snapshots returns the retained progress history in iteration order.
func (j *Job) Snapshots() []placer.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]placer.Snapshot, j.snapCount)
	for i := 0; i < j.snapCount; i++ {
		out[i] = j.snaps[(j.snapStart+i)%len(j.snaps)]
	}
	return out
}

// Subscribe registers a live progress listener (SSE fanout). The channel
// closes when the job finishes or unsubscribe is called.
func (j *Job) Subscribe(buf int) (<-chan placer.Snapshot, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan placer.Snapshot, buf)
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
}

// assign points the job at a worker (initial route or failover target).
func (j *Job) assign(node string, remoteID int64, cached bool) {
	j.mu.Lock()
	j.node = node
	j.remoteID = remoteID
	if cached {
		j.cached = true
	}
	j.mu.Unlock()
}

// current returns the worker the job lives on right now.
func (j *Job) current() (node string, remoteID int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node, j.remoteID
}

// markFailedOver records that the job's current node died: the node
// joins the (single-slot) exclusion so the immediate re-route avoids it,
// and the failover count becomes visible in Status. Keeping only the
// most recent dead node excluded means a node that comes back later is
// routable again — a job can never exclude itself out of the fleet.
func (j *Job) markFailedOver() (deadNode string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.excluded = j.node
	j.failovers++
	j.node = ""
	j.remoteID = 0
	return j.excluded
}

func (j *Job) excludedNode() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.excluded
}

// finishLocked moves the job to a terminal state and closes the fanout.
// Returns false if another path already finished it. Caller holds j.mu.
func (j *Job) finishLocked(state, errMsg string) bool {
	if terminalState(j.state) {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	if j.started.IsZero() && state == "succeeded" {
		j.started = j.submitted
	}
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	return true
}
