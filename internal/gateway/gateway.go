// Package gateway is the fault-tolerance tier over a fleet of xserve
// workers: one HTTP front end (cmd/xgate) that presents the exact
// submit/status/cancel/SSE API of a single worker while sharding jobs
// across many.
//
// The design leans on one property the rest of the stack already
// guarantees: placement is deterministic. The same normalized request
// run anywhere in the fleet (same flags, same worker count) produces a
// bit-identical result, so the gateway's failure handling can be blunt —
// when a worker dies mid-job, rerun the job's canonical payload on the
// next ring node and the client cannot tell the difference.
//
// Mechanics:
//
//   - Routing is a consistent hash of the request's cache key (the same
//     content address the workers' result caches use), so identical
//     resubmissions land on the node already holding the cached result
//     and are answered without an engine launch.
//   - Per-node health is probe-driven (readiness, debounced) and a
//     per-node circuit breaker ejects workers whose submit path flaps
//     even while their probes pass.
//   - Transient submit failures retry with exponential backoff + jitter
//     on the same node before spilling to the next ring node.
//   - A dead worker's jobs (lost SSE stream + failed liveness confirm)
//     fail over: the recorded canonical request is resubmitted to the
//     next node, under the same gateway job ID.
//   - Under total overload (every queue at backpressure), jobs that
//     opted in via allow_draft run on a local lbub draft tier; the rest
//     shed with 429 + Retry-After.
//   - With a store, every accepted job is WAL'd (submit/begin/finish)
//     and a restarted gateway re-routes the non-terminal ones.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"xplace/internal/benchgen"
	"xplace/internal/jobapi"
	"xplace/internal/jobstore"
	"xplace/internal/obs"
	"xplace/internal/placer"
	"xplace/internal/serve"
)

// Submission errors.
var (
	// ErrOverloaded: every available worker is at backpressure (or down)
	// and the job did not opt into the draft tier. HTTP: 429 + Retry-After.
	ErrOverloaded = errors.New("gateway: all workers at capacity")
	// ErrClosed is returned after Close has begun.
	ErrClosed = errors.New("gateway: shutting down")
)

// RequestError is a deterministic client-side rejection (bad request,
// unknown benchmark) — retrying or rerouting cannot fix it. HTTP: 400.
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

// DraftOptions configures the local degradation tier: a small embedded
// scheduler that answers allow_draft jobs with an lbub draft placement
// when the whole fleet is at backpressure.
type DraftOptions struct {
	Enabled       bool
	Engines       int // default 1
	QueueCap      int // default 4
	EngineWorkers int // kernel workers per engine (0 = NumCPU)
	MaxIter       int // iteration cap imposed on draft runs (0 = request's own)
}

// Options configures a Gateway.
type Options struct {
	// Nodes are the worker base URLs (e.g. http://127.0.0.1:8081).
	Nodes []string
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 64).
	Replicas int
	// Client is used for submits, probes and status polls (default:
	// 10s-timeout client). Event streams use a dedicated timeout-free
	// client internally.
	Client *http.Client

	// ProbePeriod is the readiness-probe interval per node (default
	// 250ms); ProbeTimeout bounds one probe (default ProbePeriod).
	// DownAfter consecutive probe failures mark a node unhealthy,
	// UpAfter consecutive successes bring it back (defaults 2 and 2).
	ProbePeriod  time.Duration
	ProbeTimeout time.Duration
	DownAfter    int
	UpAfter      int

	// SubmitAttempts bounds tries per node for one routing step (default
	// 3); transient failures back off RetryBase·2^k with jitter, capped
	// at RetryMaxDelay (defaults 25ms and 1s).
	SubmitAttempts int
	RetryBase      time.Duration
	RetryMaxDelay  time.Duration

	// BreakerThreshold consecutive submit failures open a node's circuit
	// breaker for BreakerCooldown (defaults 3 and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetryAfter is the hint returned with 429 responses and the pause
	// between failover routing sweeps (default 1s). RouteWait bounds how
	// long a failover or recovery keeps sweeping for a willing node
	// before the job fails (default 60s).
	RetryAfter time.Duration
	RouteWait  time.Duration

	// History is the per-job progress ring capacity (default 512).
	History int
	// Metrics receives the xgate_* series (nil = private registry).
	Metrics *obs.Registry
	// Store makes the gateway durable: accepted jobs are WAL'd and a
	// restarted gateway re-routes the non-terminal ones. Must not be
	// shared with a worker's store.
	Store *jobstore.Store
	// Draft configures the local degradation tier.
	Draft DraftOptions
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.ProbePeriod <= 0 {
		o.ProbePeriod = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbePeriod
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 2
	}
	if o.UpAfter <= 0 {
		o.UpAfter = 2
	}
	if o.SubmitAttempts <= 0 {
		o.SubmitAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.RouteWait <= 0 {
		o.RouteWait = 60 * time.Second
	}
	if o.History <= 0 {
		o.History = 512
	}
	if o.Draft.Engines <= 0 {
		o.Draft.Engines = 1
	}
	if o.Draft.QueueCap <= 0 {
		o.Draft.QueueCap = 4
	}
	return o
}

// Gateway shards placement jobs across a fleet of xserve workers.
type Gateway struct {
	opts   Options
	client *http.Client // submits, probes, status polls (bounded timeout)
	stream *http.Client // SSE relays (no timeout; cancelled via ctx)
	ring   *ring
	reg    *obs.Registry
	store  *jobstore.Store
	draft  *serve.Scheduler // nil unless Draft.Enabled

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	nodes  map[string]*node
	jobs   map[int64]*Job
	nextID int64
	closed bool

	routeTotal    *obs.Counter // successful job→node assignments (initial + failover)
	retryTotal    *obs.Counter // transient submit attempts retried
	failoverTotal *obs.Counter // jobs rerun on another node after a worker death
	shedTotal     *obs.Counter // submissions shed with 429 under total overload
	draftTotal    *obs.Counter // submissions degraded to the local draft tier
	breakerTrips  *obs.Counter
	inflight      *obs.Gauge
	walAppends    *obs.Counter
	storeErrors   *obs.Counter
}

// New starts a gateway over the given worker fleet. With Options.Store
// set, the WAL is replayed first: terminal jobs reappear as history and
// non-terminal ones are re-routed to the fleet (the workers' own result
// caches make replayed completions instant).
func New(opts Options) (*Gateway, error) {
	o := opts.withDefaults()
	if len(o.Nodes) == 0 {
		return nil, errors.New("gateway: at least one worker node required")
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		opts:   o,
		client: o.Client,
		stream: &http.Client{},
		ring:   newRing(o.Replicas),
		reg:    reg,
		store:  o.Store,
		ctx:    ctx,
		cancel: cancel,
		nodes:  make(map[string]*node),
		jobs:   make(map[int64]*Job),
	}
	g.routeTotal = reg.Counter("xgate_route_total", "jobs assigned to a worker (initial routes + failovers)")
	g.retryTotal = reg.Counter("xgate_retry_total", "transient submit attempts retried with backoff")
	g.failoverTotal = reg.Counter("xgate_failover_total", "jobs rerun on another node after a worker death")
	g.shedTotal = reg.Counter("xgate_shed_total", "submissions shed with 429 under total overload")
	g.draftTotal = reg.Counter("xgate_draft_total", "submissions degraded to the local lbub draft tier")
	g.breakerTrips = reg.Counter("xgate_breaker_trips_total", "circuit breakers opened on flapping workers")
	g.inflight = reg.Gauge("xgate_jobs_inflight", "gateway jobs not yet terminal")
	g.walAppends = reg.Counter("xgate_wal_appends_total", "records appended to the gateway WAL")
	g.storeErrors = reg.Counter("xgate_store_errors_total", "gateway store operations that failed")

	if o.Draft.Enabled {
		ds, err := serve.New(serve.Options{
			Engines:       o.Draft.Engines,
			QueueCap:      o.Draft.QueueCap,
			EngineWorkers: o.Draft.EngineWorkers,
			History:       o.History,
		})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("gateway: starting draft tier: %w", err)
		}
		g.draft = ds
	}

	for _, name := range o.Nodes {
		n := g.newNode(name)
		g.nodes[name] = n
		g.ring.add(name)
		g.wg.Add(1)
		go g.probeLoop(n)
	}

	if g.store != nil {
		if err := g.recover(); err != nil {
			_ = g.Close(context.Background())
			return nil, err
		}
	}
	return g, nil
}

// recover replays the gateway WAL: terminal records become visible
// history, non-terminal ones are re-routed under their original IDs.
func (g *Gateway) recover() error {
	recs, err := g.store.Recover()
	if err != nil {
		return fmt.Errorf("gateway: recovering store: %w", err)
	}
	for _, r := range recs {
		if r.ID > g.nextID {
			g.nextID = r.ID
		}
		var req jobapi.Request
		if len(r.Payload) > 0 {
			if uerr := json.Unmarshal(r.Payload, &req); uerr != nil && !r.Terminal() {
				// Unreplayable non-terminal record: surface it as a failed
				// job rather than silently dropping it.
				j := g.newJobLocked(req, nil, r.Key, true, r.ID, r.Submitted)
				j.finishLocked("failed", fmt.Sprintf("gateway: unreplayable WAL payload: %v", uerr))
				g.jobs[r.ID] = j
				continue
			}
		}
		j := g.newJobLocked(req, append([]byte(nil), r.Payload...), r.Key, true, r.ID, r.Submitted)
		g.jobs[r.ID] = j
		if r.Terminal() {
			j.state = r.State
			j.errMsg = r.Err
			j.iterations = r.Iterations
			j.hpwl = r.HPWL
			j.overflow = r.Overflow
			j.cached = r.Cached
			j.started, j.finished = r.Started, r.Finished
			close(j.done)
			continue
		}
		g.inflight.Add(1)
		g.wg.Add(1)
		go func(j *Job) {
			defer g.wg.Done()
			if err := g.routeWithRetry(j, ""); err != nil {
				g.finishLocal(j, "failed", fmt.Errorf("gateway: re-routing recovered job: %w", err))
				return
			}
			g.monitorLoop(j)
		}(j)
	}
	// WAL rotation, same policy as the workers: recovery folded the full
	// history, so snapshot it before new appends arrive.
	if _, err := g.store.Compact(); err != nil {
		g.storeErrors.Inc()
	}
	return nil
}

func (g *Gateway) newJobLocked(req jobapi.Request, body []byte, key string, recovered bool, id int64, submitted time.Time) *Job {
	if submitted.IsZero() {
		submitted = time.Now()
	}
	return &Job{
		id:        id,
		gw:        g,
		req:       req,
		body:      body,
		key:       key,
		recovered: recovered,
		state:     "queued",
		submitted: submitted,
		snaps:     make([]placer.Snapshot, g.opts.History),
		subs:      make(map[int]chan placer.Snapshot),
		done:      make(chan struct{}),
	}
}

// Registry returns the gateway's metrics registry.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Closed reports whether Close has begun.
func (g *Gateway) Closed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// Submit validates, normalizes and routes one job. The returned Job is
// the client's single handle for the request's whole life, across any
// number of worker-side retries and failovers.
func (g *Gateway) Submit(req jobapi.Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, &RequestError{err.Error()}
	}
	if _, ok := benchgen.FindSpec(req.Bench); !ok {
		return nil, &RequestError{fmt.Sprintf("unknown benchmark %q", req.Bench)}
	}
	req.Normalize()
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, &RequestError{err.Error()}
	}
	key := req.CacheKey()

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	g.nextID++
	id := g.nextID
	g.mu.Unlock()
	j := g.newJobLocked(req, body, key, false, id, time.Time{})

	name, ws, rerr := g.route(key, body, "")
	if rerr == nil {
		j.assign(name, ws.ID, ws.Cached)
		g.register(j)
		g.walAppend(func() error { return g.store.AppendSubmit(j.id, j.req.Label, j.body, j.key) })
		g.walAppend(func() error { return g.store.AppendBegin(j.id) })
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.monitorLoop(j)
		}()
		return j, nil
	}
	var re *RequestError
	if errors.As(rerr, &re) {
		return nil, re
	}
	// Total overload: every available node is at backpressure or down.
	if req.AllowDraft && g.draft != nil {
		if derr := g.startDraft(j); derr == nil {
			g.register(j)
			g.walAppend(func() error { return g.store.AppendSubmit(j.id, j.req.Label, j.body, j.key) })
			return j, nil
		}
	}
	g.shedTotal.Inc()
	return nil, fmt.Errorf("%w: %v", ErrOverloaded, rerr)
}

func (g *Gateway) register(j *Job) {
	g.mu.Lock()
	g.jobs[j.id] = j
	g.mu.Unlock()
	g.inflight.Add(1)
}

// Job looks a gateway job up by id.
func (g *Gateway) Job(id int64) (*Job, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	return j, ok
}

// Jobs returns every known job, newest first.
func (g *Gateway) Jobs() []*Job {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Job, 0, len(g.jobs))
	for _, j := range g.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id > out[b].id })
	return out
}

// Cancel cancels a gateway job, relaying to whichever worker (or the
// draft tier) currently runs it. Returns false for unknown ids.
func (g *Gateway) Cancel(id int64) bool {
	j, ok := g.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	draft, node, rid := j.draft, j.node, j.remoteID
	j.mu.Unlock()
	if draft {
		if g.draft != nil {
			g.draft.Cancel(rid)
		}
		return true
	}
	if node != "" && rid != 0 {
		// Best effort: the monitor observes the worker's terminal state and
		// records it; an unreachable node resolves through failover, where
		// the rerun is then cancelled the same way.
		req, err := http.NewRequestWithContext(g.ctx, http.MethodPost,
			fmt.Sprintf("%s/jobs/%d/cancel", node, rid), nil)
		if err == nil {
			if resp, derr := g.client.Do(req); derr == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	return true
}

// node returns the tracked node by name (nil when removed).
func (g *Gateway) node(name string) *node {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nodes[name]
}

// AddNode inserts a worker into the ring at runtime. Only ~1/N of the
// key space re-routes; every other key keeps hitting the node whose
// result cache already holds it.
func (g *Gateway) AddNode(name string) {
	g.mu.Lock()
	if _, ok := g.nodes[name]; ok || g.closed {
		g.mu.Unlock()
		return
	}
	n := g.newNode(name)
	g.nodes[name] = n
	g.mu.Unlock()
	g.ring.add(name)
	g.wg.Add(1)
	go g.probeLoop(n)
}

// RemoveNode drains a worker out of the ring. In-flight jobs on it are
// left to the failure path: if the node stays up they finish normally;
// if it goes away they fail over.
func (g *Gateway) RemoveNode(name string) {
	g.mu.Lock()
	n := g.nodes[name]
	delete(g.nodes, name)
	g.mu.Unlock()
	g.ring.remove(name)
	if n != nil {
		close(n.stop)
	}
}

// route walks the key's ring sequence and tries each available node
// until one accepts. Backpressure (429) and draining (503) spill to the
// next node immediately; transient faults retry with backoff on the
// same node first (submitTo). A deterministic 4xx stops the walk — no
// node will answer differently.
func (g *Gateway) route(key string, body []byte, exclude string) (string, *workerStatus, error) {
	seq := g.ring.sequence(key)
	lastErr := errors.New("no worker available")
	for _, name := range seq {
		if name == exclude {
			continue
		}
		n := g.node(name)
		if n == nil || !n.available() {
			continue
		}
		ws, err := g.submitTo(n, body)
		if err == nil {
			n.routed.Inc()
			g.routeTotal.Inc()
			return name, ws, nil
		}
		var re *RequestError
		if errors.As(err, &re) {
			return "", nil, re
		}
		lastErr = err
	}
	return "", nil, lastErr
}

// routeWithRetry keeps sweeping the ring (RetryAfter apart) until a
// node accepts or RouteWait elapses — the failover and recovery path,
// where "no node right now" usually means "a node in a few seconds".
func (g *Gateway) routeWithRetry(j *Job, exclude string) error {
	deadline := time.Now().Add(g.opts.RouteWait)
	for {
		name, ws, err := g.route(j.key, j.body, exclude)
		if err == nil {
			j.assign(name, ws.ID, ws.Cached)
			g.walAppend(func() error { return g.store.AppendBegin(j.id) })
			return nil
		}
		var re *RequestError
		if errors.As(err, &re) {
			return re
		}
		if time.Now().After(deadline) {
			return err
		}
		if !g.sleep(g.opts.RetryAfter) {
			return ErrClosed
		}
	}
}

// submitTo posts one job to one node with bounded retry: transient
// faults (network error, 5xx) back off exponentially with jitter and
// feed the node's breaker; backpressure (429/503) returns immediately
// so the router can spill to the next ring node.
func (g *Gateway) submitTo(n *node, body []byte) (*workerStatus, error) {
	var lastErr error
	for attempt := 0; attempt < g.opts.SubmitAttempts; attempt++ {
		if attempt > 0 {
			g.retryTotal.Inc()
			if !g.sleep(g.backoff(attempt)) {
				return nil, ErrClosed
			}
		}
		start := time.Now()
		req, err := http.NewRequestWithContext(g.ctx, http.MethodPost, n.name+"/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.client.Do(req)
		if err != nil {
			n.submitFailure(g.opts.BreakerThreshold, g.opts.BreakerCooldown, g.breakerTrips)
			lastErr = fmt.Errorf("node %s: %w", n.name, err)
			continue
		}
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		n.latency.Observe(time.Since(start).Seconds())
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var ws workerStatus
			if uerr := json.Unmarshal(rb, &ws); uerr != nil || ws.ID == 0 {
				n.submitFailure(g.opts.BreakerThreshold, g.opts.BreakerCooldown, g.breakerTrips)
				lastErr = fmt.Errorf("node %s: bad accept body: %v", n.name, uerr)
				continue
			}
			n.submitSuccess()
			return &ws, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			// Backpressure or draining: the node is functioning and telling
			// us "not now" — not a fault, so the breaker stays untouched;
			// spill to the next ring node instead of hammering this one.
			return nil, fmt.Errorf("node %s: %s", n.name, http.StatusText(resp.StatusCode))
		case resp.StatusCode >= 500:
			n.submitFailure(g.opts.BreakerThreshold, g.opts.BreakerCooldown, g.breakerTrips)
			lastErr = fmt.Errorf("node %s: HTTP %d", n.name, resp.StatusCode)
			continue
		default:
			// Deterministic rejection (400-class): every node shares the
			// validation code, so trying another one cannot help.
			return nil, &RequestError{errorBody(rb, resp.StatusCode)}
		}
	}
	return nil, lastErr
}

func errorBody(b []byte, code int) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("worker rejected request (HTTP %d)", code)
}

// backoff returns the delay before retry `attempt` (1-based):
// RetryBase·2^(attempt-1), half of it deterministic and half jittered,
// capped at RetryMaxDelay — the standard herd-breaking shape.
func (g *Gateway) backoff(attempt int) time.Duration {
	d := g.opts.RetryBase << (attempt - 1)
	if d > g.opts.RetryMaxDelay || d <= 0 {
		d = g.opts.RetryMaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits d or until the gateway closes; false on close.
func (g *Gateway) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-g.ctx.Done():
		return false
	}
}

func (g *Gateway) walAppend(fn func() error) {
	if g.store == nil {
		return
	}
	if err := fn(); err != nil {
		g.storeErrors.Inc()
		return
	}
	g.walAppends.Inc()
}

// finishLocal records a gateway-side terminal state (failed routing,
// draft outcome relayed, shutdown).
func (g *Gateway) finishLocal(j *Job, state string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	j.mu.Lock()
	ok := j.finishLocked(state, msg)
	j.mu.Unlock()
	if !ok {
		return
	}
	st := j.Status()
	g.walAppend(func() error {
		return g.store.AppendFinish(j.id, st.State, st.Err, st.Iterations, st.HPWL, st.Overflow, st.Cached)
	})
	g.inflight.Add(-1)
	close(j.done)
}

// finishRemote records a worker-reported terminal state.
func (g *Gateway) finishRemote(j *Job, ws *workerStatus) {
	j.mu.Lock()
	if !terminalState(ws.State) || !j.finishLocked(ws.State, ws.Err) {
		j.mu.Unlock()
		return
	}
	j.iterations = ws.Iters
	j.hpwl = ws.HPWL
	j.overflow = ws.Overflow
	if ws.Cached {
		j.cached = true
	}
	j.fallback = ws.Fallback
	j.mu.Unlock()
	st := j.Status()
	g.walAppend(func() error {
		return g.store.AppendFinish(j.id, st.State, st.Err, st.Iterations, st.HPWL, st.Overflow, st.Cached)
	})
	g.inflight.Add(-1)
	close(j.done)
}

// startDraft degrades one allow_draft job to the local lbub tier: the
// same request rewritten to the draft strategy, run on the embedded
// scheduler, never cached (the key names the requested strategy).
func (g *Gateway) startDraft(j *Job) error {
	dreq := j.req
	dreq.Strategy = placer.StrategyLBUB.String()
	if g.opts.Draft.MaxIter > 0 && (dreq.MaxIter == 0 || dreq.MaxIter > g.opts.Draft.MaxIter) {
		dreq.MaxIter = g.opts.Draft.MaxIter
	}
	spec, err := dreq.ToSpec()
	if err != nil {
		return err
	}
	spec.Key = "" // a draft must never enter any result cache
	sj, err := g.draft.Submit(spec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.draft = true
	j.remoteID = sj.ID()
	j.mu.Unlock()
	g.draftTotal.Inc()
	g.wg.Add(1)
	go g.relayDraft(j, sj)
	return nil
}

// relayDraft mirrors an embedded draft job into the gateway job.
func (g *Gateway) relayDraft(j *Job, sj *serve.Job) {
	defer g.wg.Done()
	ch, unsub := sj.Subscribe(64)
	defer unsub()
	for sn := range ch {
		j.observe(sn)
	}
	<-sj.Done()
	st := sj.Status()
	g.finishRemote(j, &workerStatus{
		State:    st.State.String(),
		Err:      st.Err,
		Iters:    st.Iterations,
		HPWL:     st.HPWL,
		Overflow: st.Overflow,
		Fallback: st.Fallback,
	})
}

// Close stops intake, cancels every monitor/probe/relay goroutine and
// shuts the draft tier and store down. In-flight routed jobs keep
// running on their workers; a durable gateway re-adopts them at the
// next start via WAL replay.
func (g *Gateway) Close(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	g.cancel()
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if g.draft != nil {
		if derr := g.draft.Shutdown(ctx); derr != nil && err == nil {
			err = derr
		}
	}
	if g.store != nil {
		if serr := g.store.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
