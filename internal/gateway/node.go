package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"xplace/internal/obs"
)

// node is one xserve worker as the gateway sees it: its probe-derived
// health, its circuit breaker, and its per-node instruments.
//
// Health and the breaker answer different questions. Health ("is the
// process up and accepting?") comes from the readiness probe loop and
// flips only after DownAfter/UpAfter consecutive observations, so one
// dropped packet does not eject a node. The breaker ("are MY submits to
// it failing?") trips on consecutive submit failures and ejects the node
// from routing for a cooldown even while probes still pass — the
// flapping-worker case where the HTTP listener answers probes but the
// submit path errors.
type node struct {
	name string // base URL, e.g. http://127.0.0.1:8081

	routed  *obs.Counter   // xgate_node_routed_total{node}
	latency *obs.Histogram // xgate_node_seconds{node}
	healthG *obs.Gauge     // xgate_node_healthy{node}

	stop chan struct{} // closed by RemoveNode; ends the probe loop

	mu           sync.Mutex
	healthy      bool
	consecOK     int
	consecFail   int
	breakerFails int
	breakerUntil time.Time
}

func (g *Gateway) newNode(name string) *node {
	label := fmt.Sprintf("{node=%q}", name)
	n := &node{
		name:    name,
		routed:  g.reg.Counter("xgate_node_routed_total"+label, "jobs routed to this node"),
		latency: g.reg.Histogram("xgate_node_seconds"+label, "submit round-trip latency to this node", nil),
		healthG: g.reg.Gauge("xgate_node_healthy"+label, "1 while the node passes readiness probes"),
		stop:    make(chan struct{}),
		healthy: true, // optimistic start; DownAfter failed probes demote
	}
	n.healthG.Set(1)
	return n
}

// available reports whether the router may offer this node a job:
// probe-healthy and not inside a breaker cooldown.
func (n *node) available() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy && !time.Now().Before(n.breakerUntil)
}

func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

func (n *node) breakerOpen() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Now().Before(n.breakerUntil)
}

// submitFailure records one failed submit attempt. Reaching the
// threshold opens the breaker for the cooldown; the count is left one
// short of the threshold so the half-open state after the cooldown
// re-opens on a single failure but closes fully on one success.
func (n *node) submitFailure(threshold int, cooldown time.Duration, trips *obs.Counter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.breakerFails++
	if n.breakerFails >= threshold {
		n.breakerUntil = time.Now().Add(cooldown)
		n.breakerFails = threshold - 1
		trips.Inc()
	}
}

func (n *node) submitSuccess() {
	n.mu.Lock()
	n.breakerFails = 0
	n.breakerUntil = time.Time{}
	n.mu.Unlock()
}

// probeLoop polls the node's readiness endpoint every ProbePeriod and
// debounces transitions: DownAfter consecutive failures mark the node
// unhealthy (and fail over its in-flight jobs), UpAfter consecutive
// successes bring it back. A draining worker answers /readyz with 503,
// so it stops receiving new jobs before its queue starts rejecting.
func (g *Gateway) probeLoop(n *node) {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.ProbePeriod)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		ok := g.probeOnce(n)
		n.mu.Lock()
		if ok {
			n.consecOK++
			n.consecFail = 0
			if !n.healthy && n.consecOK >= g.opts.UpAfter {
				n.healthy = true
				n.healthG.Set(1)
			}
		} else {
			n.consecFail++
			n.consecOK = 0
			if n.healthy && n.consecFail >= g.opts.DownAfter {
				n.healthy = false
				n.healthG.Set(0)
			}
		}
		n.mu.Unlock()
	}
}

func (g *Gateway) probeOnce(n *node) bool {
	ctx, cancel := context.WithTimeout(g.ctx, g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.name+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// confirmDead distinguishes a dropped stream from a dead worker before
// the gateway reruns a job elsewhere: K liveness probes in quick
// succession must ALL fail. A slow worker mid-GC answers one of them
// and keeps its jobs; failover on a false positive would waste a rerun
// (though never corrupt the result — reruns are deterministic).
func (g *Gateway) confirmDead(name string) bool {
	for i := 0; i < 3; i++ {
		if i > 0 && !g.sleep(50*time.Millisecond) {
			return false
		}
		ctx, cancel := context.WithTimeout(g.ctx, g.opts.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/healthz", nil)
		if err == nil {
			resp, derr := g.client.Do(req)
			if derr == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					cancel()
					return false
				}
			}
		}
		cancel()
	}
	return true
}

// NodeStatus is one worker's externally visible routing state.
type NodeStatus struct {
	Name        string `json:"name"`
	Healthy     bool   `json:"healthy"`
	BreakerOpen bool   `json:"breaker_open"`
	Routed      int64  `json:"routed"`
}

// Nodes returns the fleet's routing state, ring order not guaranteed.
func (g *Gateway) Nodes() []NodeStatus {
	g.mu.Lock()
	nodes := make([]*node, 0, len(g.nodes))
	for _, n := range g.nodes {
		nodes = append(nodes, n)
	}
	g.mu.Unlock()
	out := make([]NodeStatus, len(nodes))
	for i, n := range nodes {
		out[i] = NodeStatus{
			Name:        n.name,
			Healthy:     n.isHealthy(),
			BreakerOpen: n.breakerOpen(),
			Routed:      n.routed.Value(),
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
