package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/placer"
)

// NewMux wires the gateway's HTTP surface — the same job API a single
// xserve worker presents, so clients (and tooling) cannot tell one
// worker from a fleet:
//
//	POST /jobs              submit (JSON body, jobapi.Request)
//	GET  /jobs              list gateway jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/events  progress stream (SSE, Last-Event-ID resume)
//	POST /jobs/{id}/cancel  cancel wherever the job runs
//	GET  /nodes             fleet routing state
//	GET  /metrics           xgate_* series (Prometheus text)
//	GET  /healthz           gateway liveness
//	GET  /readyz            gateway readiness (503 once closing)
func NewMux(g *Gateway) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", handleSubmit(g))
	mux.HandleFunc("GET /jobs", handleList(g))
	mux.HandleFunc("GET /jobs/{id}", handleStatus(g))
	mux.HandleFunc("GET /jobs/{id}/events", handleEvents(g))
	mux.HandleFunc("POST /jobs/{id}/cancel", handleCancel(g))
	mux.HandleFunc("GET /nodes", handleNodes(g))
	mux.HandleFunc("GET /metrics", handleMetrics(g))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if g.Closed() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func handleSubmit(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req jobapi.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, err := g.Submit(req)
		var re *RequestError
		switch {
		case errors.As(err, &re):
			writeError(w, http.StatusBadRequest, re)
			return
		case errors.Is(err, ErrOverloaded):
			// Graceful shed: the client is told exactly when to come back.
			w.Header().Set("Retry-After",
				strconv.Itoa(int(g.opts.RetryAfter/time.Second)+1))
			writeError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func handleList(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		jobs := g.Jobs()
		out := make([]Status, len(jobs))
		for i, j := range jobs {
			out[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func jobFrom(g *Gateway, w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id"))
		return nil, false
	}
	j, ok := g.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return nil, false
	}
	return j, true
}

func handleStatus(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(g, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func handleCancel(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(g, w, r)
		if !ok {
			return
		}
		g.Cancel(j.ID())
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func handleNodes(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Nodes())
	}
}

func handleMetrics(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = g.reg.WritePrometheus(w)
	}
}

// handleEvents streams a gateway job's progress as SSE — history first,
// then live — exactly like a worker's stream, including Last-Event-ID
// resume. Because the gateway's own ring is already deduplicated across
// failovers, a client streaming through a node death sees one monotone
// sequence of iterations with a single stall at the failover point.
func handleEvents(g *Gateway) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(g, w, r)
		if !ok {
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)

		live, unsub := j.Subscribe(64)
		defer unsub()
		lastIter := -1
		if lei := r.Header.Get("Last-Event-ID"); lei != "" {
			if v, err := strconv.Atoi(lei); err == nil && v > lastIter {
				lastIter = v
			}
		}
		emit := func(sn placer.Snapshot) {
			if sn.Iter <= lastIter {
				return
			}
			lastIter = sn.Iter
			b, _ := json.Marshal(sn)
			fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", sn.Iter, b)
			fl.Flush()
		}
		for _, sn := range j.Snapshots() {
			emit(sn)
		}
		for {
			select {
			case sn, open := <-live:
				if !open { // job finished
					b, _ := json.Marshal(j.Status())
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
					fl.Flush()
					return
				}
				emit(sn)
			case <-g.ctx.Done():
				fmt.Fprintf(w, "event: draining\ndata: {}\n\n")
				fl.Flush()
				return
			case <-r.Context().Done():
				return
			}
		}
	}
}
