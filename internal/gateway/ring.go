package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ring is a consistent-hash ring over worker nodes. Each node owns
// `replicas` virtual points; a key routes to the node owning the first
// point clockwise of the key's hash. Adding or removing one node moves
// only ~1/N of the key space, so the result-cache locality the routing
// key encodes (identical resubmissions land on the node that already
// holds the result) survives fleet changes.
//
// The hash is FNV-1a over plain strings — deterministic across
// processes, so a restarted gateway routes every key exactly as its
// predecessor did.
type ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &ring{replicas: replicas, members: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func (r *ring) add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

func (r *ring) remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// sequence returns every member node in ring order starting from the
// key's owner: sequence(key)[0] is where the key lives, and the rest is
// the deterministic failover walk — the order every gateway instance
// agrees to try when the owner is down or full.
func (r *ring) sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[string]struct{}, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// owner is sequence(key)[0] without building the full walk.
func (r *ring) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
