package gateway

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: the walk order for a key is stable across calls
// and across ring rebuilds — every gateway instance (and every restart)
// must agree on where a key lives and where it fails over to.
func TestRingDeterminism(t *testing.T) {
	build := func() *ring {
		r := newRing(64)
		for _, n := range []string{"http://a:1", "http://b:1", "http://c:1"} {
			r.add(n)
		}
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("bench=adaptec1|seed=%d", i)
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if len(s1) != 3 || len(s2) != 3 {
			t.Fatalf("sequence(%q) lengths %d/%d, want 3", key, len(s1), len(s2))
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("sequence(%q) differs across rebuilds: %v vs %v", key, s1, s2)
			}
		}
	}
}

// TestRingSpreadAndStability: ownership spreads over all nodes, and a
// join moves keys ONLY onto the joining node — no key shuffles between
// surviving nodes, which is what keeps the fleet's result caches warm
// through scale-out.
func TestRingSpreadAndStability(t *testing.T) {
	r := newRing(64)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, n := range nodes {
		r.add(n)
	}
	const keys = 2000
	before := make(map[string]string, keys)
	spread := map[string]int{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.owner(k)
		spread[before[k]]++
	}
	for _, n := range nodes {
		if spread[n] < keys/10 {
			t.Errorf("node %s owns %d/%d keys — ring badly unbalanced", n, spread[n], keys)
		}
	}

	r.add("http://d:1")
	moved := 0
	for k, prev := range before {
		now := r.owner(k)
		if now == prev {
			continue
		}
		moved++
		if now != "http://d:1" {
			t.Fatalf("key %q moved %s -> %s: joins must only move keys to the new node", k, prev, now)
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("join moved %d/%d keys, want roughly 1/4", moved, keys)
	}

	// Leave: only the departing node's keys move.
	r.remove("http://d:1")
	for k, prev := range before {
		if got := r.owner(k); got != prev {
			t.Fatalf("key %q owner %s after leave, want original %s", k, got, prev)
		}
	}
}
