// Package sched implements the parameter scheduling of the placer: the
// wirelength smoothing gamma as a function of overflow, the density weight
// lambda update driven by HPWL movement (the ePlace/DREAMPlace schedule),
// the stopping criterion, and the paper's placement-stage-aware scheduling
// (§3.2, Algorithm 1) built on the precondition weighted ratio omega.
package sched

import "math"

// Options configures a Scheduler. Zero values select the defaults noted on
// each field.
type Options struct {
	// GammaBase scales the WA smoothing parameter in units of bin size;
	// gamma = GammaBase * binSize * 10^(GammaK*overflow + GammaB).
	// Defaults: GammaBase 0.5, GammaK 20/9, GammaB -2/9 (gamma goes from
	// ~50 bins at overflow 1 down to ~0.5 bins at overflow 0.1).
	GammaBase, GammaK, GammaB float64
	// LambdaInit scales the initial density weight relative to the
	// gradient-norm ratio: lambda0 = LambdaInit * |gradWL|_1 / |gradD|_1.
	// Default 1e-4 (the DREAMPlace-style warm start): the early stage is
	// wirelength-dominated (r = lambda|gradD|/|gradWL| ultra-small, the
	// §3.1.4 observation) while lambda ramps by MuMax towards balance.
	// This requires a spread initial placement; from a fully collapsed
	// start use LambdaInit near 1 (exact ePlace force balance) instead.
	LambdaInit float64
	// MuMax is the lambda multiplier per update (default 1.1); MuMin is
	// its lower clamp under HPWL degradation (default 1.0: growth pauses
	// but never reverses — on small designs per-iteration HPWL noise is
	// large relative to the total and a sub-1 floor stalls the ramp).
	MuMax, MuMin float64
	// RefDeltaHPWL is the per-iteration HPWL increase treated as "one
	// unit" of degradation when shrinking mu, expressed as a fraction of
	// the FIRST observed HPWL (default 1e-2). Using a fixed absolute
	// reference (as ePlace's 3.5e5 DBU constant does) keeps tiny
	// fluctuations at a collapsed intermediate state from stalling the
	// lambda ramp.
	RefDeltaHPWL float64
	// StopOverflow is the target overflow to stop at (default 0.07).
	StopOverflow float64
	// MinIter/MaxIter bound the GP loop (defaults 50 / 3000).
	MinIter, MaxIter int
	// StageAware enables Algorithm 1: during the intermediate stage
	// (0.5 < omega < 0.95) parameters update once per StageInterval
	// iterations (default 3).
	StageAware    bool
	StageInterval int
	// SkipEnabled enables early-stage density-operator skipping (§3.1.4):
	// when r = lambda|gradD|/|gradWL| < SkipRatio and iter < SkipMaxIter,
	// the density gradient is recomputed only every SkipInterval
	// iterations. Defaults: 0.01 / 100 / 20.
	SkipEnabled  bool
	SkipRatio    float64
	SkipMaxIter  int
	SkipInterval int
}

func (o Options) withDefaults() Options {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&o.GammaBase, 0.5)
	def(&o.GammaK, 20.0/9)
	def(&o.GammaB, -2.0/9)
	def(&o.LambdaInit, 1e-4)
	def(&o.MuMax, 1.1)
	def(&o.MuMin, 1.0)
	def(&o.RefDeltaHPWL, 1e-2)
	def(&o.StopOverflow, 0.07)
	if o.MinIter == 0 {
		o.MinIter = 50
	}
	if o.MaxIter == 0 {
		o.MaxIter = 3000
	}
	if o.StageInterval == 0 {
		o.StageInterval = 3
	}
	def(&o.SkipRatio, 0.01)
	if o.SkipMaxIter == 0 {
		o.SkipMaxIter = 100
	}
	if o.SkipInterval == 0 {
		o.SkipInterval = 20
	}
	return o
}

// OmegaFunc maps the current lambda to the precondition weighted ratio
// omega (optim.Preconditioner.Omega satisfies it).
type OmegaFunc func(lambda float64) float64

// Scheduler owns the placement parameters gamma and lambda and decides
// when to update them and when to stop.
type Scheduler struct {
	opts    Options
	omegaOf OmegaFunc
	binSize float64 // characteristic bin dimension (design units)

	Gamma  float64
	Lambda float64

	iter        int
	prevHPWL    float64
	baseHPWL    float64 // first observed HPWL: fixed mu reference scale
	initialized bool
	sinceUpdate int
}

// New creates a scheduler. binSize is the characteristic bin dimension of
// the density grid in design units; omegaOf maps lambda to omega (pass nil
// to disable stage awareness regardless of Options.StageAware).
func New(opts Options, binSize float64, omegaOf OmegaFunc) *Scheduler {
	o := opts.withDefaults()
	if omegaOf == nil {
		o.StageAware = false
		omegaOf = func(float64) float64 { return 0 }
	}
	s := &Scheduler{opts: o, omegaOf: omegaOf, binSize: binSize}
	s.Gamma = s.gammaFor(1.0) // start fully smoothed
	return s
}

// Opts returns the resolved options.
func (s *Scheduler) Opts() Options { return s.opts }

// Iter returns the number of Advance calls so far.
func (s *Scheduler) Iter() int { return s.iter }

// Omega returns the current placement-stage metric (§3.2).
func (s *Scheduler) Omega() float64 { return s.omegaOf(s.Lambda) }

// Stage names the current placement stage per the §3.2 classification.
func (s *Scheduler) Stage() string { return StageName(s.Omega()) }

// StageName classifies the precondition weighted ratio omega into the
// paper's three placement stages (§3.2): early (omega <= 0.5),
// intermediate (0.5 < omega < 0.95), final (omega >= 0.95).
func StageName(omega float64) string {
	switch {
	case omega <= 0.5:
		return "early"
	case omega < 0.95:
		return "intermediate"
	default:
		return "final"
	}
}

func (s *Scheduler) gammaFor(overflow float64) float64 {
	ov := math.Max(0, math.Min(1, overflow))
	return s.opts.GammaBase * s.binSize * math.Pow(10, s.opts.GammaK*ov+s.opts.GammaB)
}

// InitLambda sets the initial density weight from the first iteration's
// gradient norms: lambda0 = LambdaInit * |gradWL| / |gradD| (the
// DREAMPlace warm start). Call once before the loop.
func (s *Scheduler) InitLambda(wlGradNorm, densGradNorm float64) {
	if densGradNorm <= 0 {
		densGradNorm = 1
	}
	s.Lambda = s.opts.LambdaInit * wlGradNorm / densGradNorm
	if s.Lambda <= 0 {
		s.Lambda = s.opts.LambdaInit
	}
}

// ShouldUpdateParams implements Algorithm 1: in the intermediate stage
// (0.5 < omega < 0.95) parameters update only once per StageInterval
// iterations; in every other stage they update each iteration. Without
// stage awareness it always returns true.
func (s *Scheduler) ShouldUpdateParams() bool {
	if !s.opts.StageAware {
		return true
	}
	w := s.Omega()
	if w > 0.5 && w < 0.95 {
		return s.sinceUpdate >= s.opts.StageInterval-1
	}
	return true
}

// ShouldSkipDensity reports whether the density-gradient operator may be
// skipped this iteration (§3.1.4): r < SkipRatio in the early stage, with
// a full recomputation every SkipInterval iterations. r is the ratio
// lambda*|gradD| / |gradWL| from the previous full evaluation.
func (s *Scheduler) ShouldSkipDensity(r float64) bool {
	if !s.opts.SkipEnabled {
		return false
	}
	if s.iter >= s.opts.SkipMaxIter || r >= s.opts.SkipRatio {
		return false
	}
	return s.iter%s.opts.SkipInterval != 0
}

// Advance records one completed GP iteration and, when Algorithm 1 allows,
// updates gamma from the overflow and lambda from the HPWL movement.
// Returns true when the parameters were updated.
func (s *Scheduler) Advance(hpwl, overflow float64) bool {
	s.iter++
	if !s.initialized {
		s.prevHPWL = hpwl
		s.baseHPWL = hpwl
		s.initialized = true
		s.sinceUpdate = 0
		s.Gamma = s.gammaFor(overflow)
		return true
	}
	if !s.ShouldUpdateParams() {
		s.sinceUpdate++
		return false
	}
	s.sinceUpdate = 0
	s.Gamma = s.gammaFor(overflow)
	// mu = MuMax^(1 - relDelta/Ref), clamped to [MuMin, MuMax]: HPWL
	// improvement (or small growth) pushes lambda up by MuMax; strong
	// degradation backs off towards MuMin.
	relDelta := 0.0
	if s.baseHPWL > 0 {
		relDelta = (hpwl - s.prevHPWL) / s.baseHPWL
	}
	expo := 1 - relDelta/s.opts.RefDeltaHPWL
	mu := math.Pow(s.opts.MuMax, expo)
	mu = math.Max(s.opts.MuMin, math.Min(s.opts.MuMax, mu))
	s.Lambda *= mu
	s.prevHPWL = hpwl
	return true
}

// State is the serializable mutable state of a Scheduler — the part of
// the parameter schedule a durable placement job must checkpoint to
// resume bit-identically (Options, binSize and the omega map are
// reconstructed from the job spec instead).
type State struct {
	Gamma       float64 `json:"gamma"`
	Lambda      float64 `json:"lambda"`
	Iter        int     `json:"iter"`
	PrevHPWL    float64 `json:"prev_hpwl"`
	BaseHPWL    float64 `json:"base_hpwl"`
	Initialized bool    `json:"initialized"`
	SinceUpdate int     `json:"since_update"`
}

// State snapshots the schedule's mutable state.
func (s *Scheduler) State() State {
	return State{
		Gamma:       s.Gamma,
		Lambda:      s.Lambda,
		Iter:        s.iter,
		PrevHPWL:    s.prevHPWL,
		BaseHPWL:    s.baseHPWL,
		Initialized: s.initialized,
		SinceUpdate: s.sinceUpdate,
	}
}

// Restore replaces the schedule's mutable state with a snapshot taken by
// State on a scheduler built from the same Options and design.
func (s *Scheduler) Restore(st State) {
	s.Gamma = st.Gamma
	s.Lambda = st.Lambda
	s.iter = st.Iter
	s.prevHPWL = st.PrevHPWL
	s.baseHPWL = st.BaseHPWL
	s.initialized = st.Initialized
	s.sinceUpdate = st.SinceUpdate
}

// Done reports whether global placement should stop: the overflow target
// is met after MinIter iterations, or MaxIter is exhausted.
func (s *Scheduler) Done(overflow float64) bool {
	if s.iter >= s.opts.MaxIter {
		return true
	}
	return s.iter >= s.opts.MinIter && overflow <= s.opts.StopOverflow
}
