package sched

import (
	"math"
	"testing"
)

func linOmega(sumDeg, sumA float64) OmegaFunc {
	return func(lambda float64) float64 {
		den := sumDeg + lambda*sumA
		if den <= 0 {
			return 0
		}
		return lambda * sumA / den
	}
}

func TestDefaults(t *testing.T) {
	s := New(Options{}, 2.0, nil)
	o := s.Opts()
	if o.GammaBase != 0.5 || o.MinIter != 50 || o.MaxIter != 3000 || o.StageInterval != 3 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.StageAware {
		t.Error("nil omega must disable stage awareness")
	}
}

func TestGammaDecreasesWithOverflow(t *testing.T) {
	s := New(Options{}, 1.0, nil)
	s.Advance(100, 1.0)
	gHigh := s.Gamma
	s.Advance(100, 0.5)
	gMid := s.Gamma
	s.Advance(100, 0.1)
	gLow := s.Gamma
	if !(gHigh > gMid && gMid > gLow) {
		t.Errorf("gamma not monotone: %v %v %v", gHigh, gMid, gLow)
	}
	// Roughly 50 bins at overflow 1, 0.5 bins at overflow 0.1.
	if gHigh < 10 || gHigh > 200 {
		t.Errorf("gamma(1) = %v out of expected range", gHigh)
	}
	if gLow < 0.1 || gLow > 2 {
		t.Errorf("gamma(0.1) = %v out of expected range", gLow)
	}
}

func TestGammaScalesWithBinSize(t *testing.T) {
	a := New(Options{}, 1.0, nil)
	b := New(Options{}, 4.0, nil)
	if math.Abs(b.Gamma/a.Gamma-4) > 1e-9 {
		t.Errorf("gamma should scale with bin size: %v vs %v", a.Gamma, b.Gamma)
	}
}

func TestInitLambda(t *testing.T) {
	s := New(Options{}, 1.0, nil)
	s.InitLambda(2000, 10)
	want := 1e-4 * 200.0 // default LambdaInit 1e-4 warm start
	if math.Abs(s.Lambda-want) > 1e-12 {
		t.Errorf("lambda0 = %v, want %v", s.Lambda, want)
	}
	// Degenerate density norm.
	s.InitLambda(5, 0)
	if s.Lambda <= 0 {
		t.Errorf("lambda0 must stay positive, got %v", s.Lambda)
	}
}

func TestLambdaGrowsOnImprovingHPWL(t *testing.T) {
	s := New(Options{}, 1.0, nil)
	s.InitLambda(1, 1)
	l0 := s.Lambda
	s.Advance(1000, 0.9) // first call initializes
	s.Advance(990, 0.9)  // HPWL improved -> mu = MuMax
	if s.Lambda <= l0 {
		t.Errorf("lambda should grow: %v -> %v", l0, s.Lambda)
	}
}

func TestLambdaBacksOffOnDegradingHPWL(t *testing.T) {
	s := New(Options{MuMin: 0.75}, 1.0, nil)
	s.InitLambda(1, 1)
	s.Advance(1000, 0.9)
	l0 := s.Lambda
	s.Advance(1500, 0.9) // 50% degradation >> RefDeltaHPWL
	if s.Lambda >= l0*1.0 {
		t.Errorf("lambda should shrink on heavy degradation: %v -> %v", l0, s.Lambda)
	}
	if got := s.Lambda / l0; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("mu should clamp at MuMin=0.75, got %v", got)
	}
	// With the default floor (1.0) lambda pauses instead of shrinking.
	sd := New(Options{}, 1.0, nil)
	sd.InitLambda(1, 1)
	sd.Advance(1000, 0.9)
	l0 = sd.Lambda
	sd.Advance(1500, 0.9)
	if sd.Lambda != l0 {
		t.Errorf("default floor should pause lambda: %v -> %v", l0, sd.Lambda)
	}
}

func TestStageAwareSlowsIntermediateStage(t *testing.T) {
	// omega fixed in (0.5, 0.95): updates every 3rd iteration.
	s := New(Options{StageAware: true}, 1.0, func(float64) float64 { return 0.7 })
	s.InitLambda(1, 1)
	s.Advance(100, 0.5) // init
	updates := 0
	for i := 0; i < 9; i++ {
		if s.Advance(100, 0.5) {
			updates++
		}
	}
	if updates != 3 {
		t.Errorf("stage-aware updates = %d in 9 iters, want 3", updates)
	}
}

func TestStageAwareFullRateOutsideIntermediate(t *testing.T) {
	for _, w := range []float64{0.01, 0.3, 0.97} {
		s := New(Options{StageAware: true}, 1.0, func(float64) float64 { return w })
		s.Advance(100, 0.5)
		updates := 0
		for i := 0; i < 6; i++ {
			if s.Advance(100, 0.5) {
				updates++
			}
		}
		if updates != 6 {
			t.Errorf("omega=%v: updates = %d, want 6", w, updates)
		}
	}
}

func TestOmegaUsesCurrentLambda(t *testing.T) {
	s := New(Options{StageAware: true}, 1.0, linOmega(100, 10))
	s.Lambda = 0
	if s.Omega() != 0 {
		t.Errorf("omega(0) = %v", s.Omega())
	}
	s.Lambda = 10 // omega = 100/(100+100) = 0.5
	if math.Abs(s.Omega()-0.5) > 1e-12 {
		t.Errorf("omega = %v, want 0.5", s.Omega())
	}
}

func TestShouldSkipDensity(t *testing.T) {
	s := New(Options{SkipEnabled: true}, 1.0, nil)
	// Early stage, tiny r: skipped except on the full-recompute beat.
	skips := 0
	for i := 0; i < 40; i++ {
		if s.ShouldSkipDensity(0.001) {
			skips++
		}
		s.Advance(100, 0.9)
	}
	if skips < 35 {
		t.Errorf("expected most of 40 early iters skipped, got %d", skips)
	}
	// r above threshold: never skip.
	if s.ShouldSkipDensity(0.5) {
		t.Error("must not skip when r >= threshold")
	}
	// Past SkipMaxIter: never skip.
	for s.Iter() < 100 {
		s.Advance(100, 0.9)
	}
	if s.ShouldSkipDensity(0.001) {
		t.Error("must not skip after SkipMaxIter")
	}
	// Disabled entirely.
	s2 := New(Options{}, 1.0, nil)
	if s2.ShouldSkipDensity(1e-9) {
		t.Error("skipping disabled by default")
	}
}

func TestSkipRecomputesOnInterval(t *testing.T) {
	s := New(Options{SkipEnabled: true}, 1.0, nil)
	// Iteration 0, 20, 40, ... must recompute (not skip).
	for i := 0; i < 60; i++ {
		skip := s.ShouldSkipDensity(0.001)
		if i%20 == 0 && skip {
			t.Errorf("iter %d must recompute", i)
		}
		if i%20 != 0 && !skip {
			t.Errorf("iter %d should skip", i)
		}
		s.Advance(100, 0.9)
	}
}

func TestDone(t *testing.T) {
	s := New(Options{MinIter: 5, MaxIter: 10}, 1.0, nil)
	if s.Done(0.01) {
		t.Error("must not stop before MinIter")
	}
	for i := 0; i < 5; i++ {
		s.Advance(100, 0.5)
	}
	if !s.Done(0.01) {
		t.Error("should stop: overflow below target after MinIter")
	}
	if s.Done(0.5) {
		t.Error("should continue: overflow above target")
	}
	for i := 0; i < 5; i++ {
		s.Advance(100, 0.5)
	}
	if !s.Done(0.99) {
		t.Error("should stop at MaxIter regardless of overflow")
	}
}
