package wirelength

import (
	"math"
	"testing"
)

func TestLSEOverestimatesAndConvergesToHPWL(t *testing.T) {
	d := randomDesign(t, 40, 60, 12)
	e := eng()
	hp := d.HPWL(nil, nil)
	prevGap := math.Inf(1)
	for _, gamma := range []float64{100, 10, 1, 0.1} {
		lse := LSEForward(e, d, d.CellX, d.CellY, gamma)
		if lse < hp-1e-6 {
			t.Errorf("gamma=%v: LSE %v below HPWL %v (LSE must overestimate)", gamma, lse, hp)
		}
		gap := lse - hp
		if gap > prevGap+1e-9 {
			t.Errorf("gamma=%v: gap %v grew from %v", gamma, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.01*hp {
		t.Errorf("gamma=0.1 gap %v still above 1%% of HPWL %v", prevGap, hp)
	}
}

func TestLSEBracketsHPWLWithWA(t *testing.T) {
	// WA <= HPWL <= LSE for any gamma.
	d := randomDesign(t, 30, 50, 13)
	e := eng()
	hp := d.HPWL(nil, nil)
	for _, gamma := range []float64{20, 2} {
		wa := WAForward(e, d, d.CellX, d.CellY, gamma)
		lse := LSEForward(e, d, d.CellX, d.CellY, gamma)
		if !(wa <= hp+1e-9 && hp <= lse+1e-9) {
			t.Errorf("gamma=%v: WA %v <= HPWL %v <= LSE %v violated", gamma, wa, hp, lse)
		}
	}
}

func TestLSEGradientFiniteDifference(t *testing.T) {
	d := randomDesign(t, 12, 20, 14)
	e := eng()
	gamma := 3.0
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	FusedLSE(e, d, d.CellX, d.CellY, gamma, gx, gy)
	cgx := make([]float64, d.NumCells())
	cgy := make([]float64, d.NumCells())
	PinToCellGrad(e, d, gx, gy, cgx, cgy)

	h := 1e-5
	x := append([]float64(nil), d.CellX...)
	for c := 0; c < d.NumCells(); c++ {
		x[c] += h
		up := LSEForward(e, d, x, d.CellY, gamma)
		x[c] -= 2 * h
		dn := LSEForward(e, d, x, d.CellY, gamma)
		x[c] += h
		fd := (up - dn) / (2 * h)
		if math.Abs(fd-cgx[c]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("cell %d: analytic %v vs FD %v", c, cgx[c], fd)
		}
	}
}

func TestFusedLSEAgreesWithUnfused(t *testing.T) {
	d := randomDesign(t, 50, 70, 15)
	e := eng()
	np := d.NumPins()
	g1x, g1y := make([]float64, np), make([]float64, np)
	g2x, g2y := make([]float64, np), make([]float64, np)
	res := FusedLSE(e, d, d.CellX, d.CellY, 4, g1x, g1y)
	wl := LSEGrad(e, d, d.CellX, d.CellY, 4, g2x, g2y)
	hp := HPWL(e, d, d.CellX, d.CellY)
	if math.Abs(res.WA-wl) > 1e-9*(1+wl) || math.Abs(res.HPWL-hp) > 1e-9*(1+hp) {
		t.Errorf("fused (%v,%v) vs unfused (%v,%v)", res.WA, res.HPWL, wl, hp)
	}
	for p := 0; p < np; p++ {
		if g1x[p] != g2x[p] || g1y[p] != g2y[p] {
			t.Fatalf("pin %d grads differ", p)
		}
	}
}

func TestLSEGradientBounded(t *testing.T) {
	// LSE pin gradients are differences of softmax weights: in [-1, 1].
	d := randomDesign(t, 40, 60, 16)
	e := eng()
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	FusedLSE(e, d, d.CellX, d.CellY, 0.5, gx, gy)
	for p := 0; p < np; p++ {
		if math.Abs(gx[p]) > 1+1e-12 || math.Abs(gy[p]) > 1+1e-12 {
			t.Fatalf("pin %d gradient out of [-1,1]: %v %v", p, gx[p], gy[p])
		}
	}
}
