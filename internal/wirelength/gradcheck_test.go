package wirelength

import (
	"math"
	"testing"
)

// TestGradientFiniteDifferenceProperty is the WA/LSE gradient-correctness
// property: over randomized small designs and a sweep of smoothing
// parameters, the analytic pin gradient (scattered to cells) must match a
// central finite difference of the forward evaluation in BOTH dimensions.
// gamma spans the schedule's working range — tight smoothing stresses the
// stable-exponential formulation (overflow), loose smoothing the
// cancellation of nearly-uniform weights.
func TestGradientFiniteDifferenceProperty(t *testing.T) {
	e := eng()
	defer e.Close()
	gammas := []float64{0.5, 3, 20, 150}
	for _, seed := range []int64{11, 12, 13} {
		d := randomDesign(t, 15, 25, seed)
		np := d.NumPins()
		nc := d.NumCells()
		gx, gy := make([]float64, np), make([]float64, np)
		cgx, cgy := make([]float64, nc), make([]float64, nc)
		x := append([]float64(nil), d.CellX...)
		y := append([]float64(nil), d.CellY...)

		for _, m := range []struct {
			name    string
			grad    func(x, y []float64, g float64) float64
			forward func(x, y []float64, g float64) float64
		}{
			{"WA",
				func(x, y []float64, g float64) float64 { return WAGrad(e, d, x, y, g, gx, gy) },
				func(x, y []float64, g float64) float64 { return WAForward(e, d, x, y, g) }},
			{"LSE",
				func(x, y []float64, g float64) float64 { return LSEGrad(e, d, x, y, g, gx, gy) },
				func(x, y []float64, g float64) float64 { return LSEForward(e, d, x, y, g) }},
		} {
			for _, gamma := range gammas {
				wa := m.grad(x, y, gamma)
				if math.IsNaN(wa) || math.IsInf(wa, 0) {
					t.Fatalf("%s seed %d gamma %g: forward = %v", m.name, seed, gamma, wa)
				}
				PinToCellGrad(e, d, gx, gy, cgx, cgy)

				// Step scaled to gamma: small enough for the O(h^2) FD
				// error, large enough to survive double rounding at
				// coordinates ~1e3.
				h := 1e-4 * math.Max(1, gamma/10)
				for c := 0; c < nc; c++ {
					x[c] += h
					upX := m.forward(x, y, gamma)
					x[c] -= 2 * h
					dnX := m.forward(x, y, gamma)
					x[c] += h
					y[c] += h
					upY := m.forward(x, y, gamma)
					y[c] -= 2 * h
					dnY := m.forward(x, y, gamma)
					y[c] += h
					fdX := (upX - dnX) / (2 * h)
					fdY := (upY - dnY) / (2 * h)
					if math.Abs(fdX-cgx[c]) > 1e-3*(1+math.Abs(fdX)) {
						t.Errorf("%s seed %d gamma %g cell %d (x): analytic %v vs FD %v",
							m.name, seed, gamma, c, cgx[c], fdX)
					}
					if math.Abs(fdY-cgy[c]) > 1e-3*(1+math.Abs(fdY)) {
						t.Errorf("%s seed %d gamma %g cell %d (y): analytic %v vs FD %v",
							m.name, seed, gamma, c, cgy[c], fdY)
					}
				}
			}
		}
	}
}

// TestFusedGradMatchesUnfusedAcrossGamma pins the fused kernels (the
// OC fast path) to the unfused reference gradients for both models.
func TestFusedGradMatchesUnfusedAcrossGamma(t *testing.T) {
	e := eng()
	defer e.Close()
	d := randomDesign(t, 40, 70, 21)
	np := d.NumPins()
	ga, gb := make([]float64, np), make([]float64, np)
	fa, fb := make([]float64, np), make([]float64, np)
	for _, gamma := range []float64{0.5, 3, 20, 150} {
		wa := WAGrad(e, d, d.CellX, d.CellY, gamma, ga, gb)
		res := Fused(e, d, d.CellX, d.CellY, gamma, fa, fb)
		if wa != res.WA {
			t.Errorf("gamma %g: fused WA %v != unfused %v", gamma, res.WA, wa)
		}
		for p := 0; p < np; p++ {
			if ga[p] != fa[p] || gb[p] != fb[p] {
				t.Fatalf("gamma %g pin %d: fused grad (%v,%v) != unfused (%v,%v)",
					gamma, p, fa[p], fb[p], ga[p], gb[p])
			}
		}
		lse := LSEGrad(e, d, d.CellX, d.CellY, gamma, ga, gb)
		lres := FusedLSE(e, d, d.CellX, d.CellY, gamma, fa, fb)
		if lse != lres.WA {
			t.Errorf("gamma %g: fused LSE %v != unfused %v", gamma, lres.WA, lse)
		}
	}
}
