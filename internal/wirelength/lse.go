package wirelength

import (
	"math"

	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// This file implements the log-sum-exp (LSE) smoothed wirelength — the
// other classic differentiable HPWL model (used by NTUPlace3 and the
// original ePlace before WA became standard):
//
//	LSE_e(x) = gamma * ( log sum_i e^{x_i/gamma} + log sum_i e^{-x_i/gamma} )
//
// computed in the numerically stable max/min-shifted form. It
// overestimates HPWL (WA underestimates) and converges to it as gamma ->
// 0. The placer exposes it as an alternative gradient function — the
// "extensible gradient engine" claim of Figure 1 made concrete.

// netLSE computes the stable LSE wirelength and per-pin gradient of one
// net in one dimension; mirrors netWA's contract.
func netLSE(d *netlist.Design, n int, pos []float64, off []float64, gamma float64, grad []float64) (float64, float64) {
	s, e := d.NetPinStart[n], d.NetPinStart[n+1]
	if e-s < 2 {
		if grad != nil {
			for p := s; p < e; p++ {
				grad[p] = 0
			}
		}
		return 0, 0
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for p := s; p < e; p++ {
		v := pos[d.PinCell[p]] + off[p]
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	hpwl := maxV - minV
	inv := 1 / gamma
	var sPlus, sMinus float64
	for p := s; p < e; p++ {
		v := pos[d.PinCell[p]] + off[p]
		sPlus += math.Exp((v - maxV) * inv)
		sMinus += math.Exp((minV - v) * inv)
	}
	// LSE = gamma*(log sum e^{(v-max)/g} + max/g + log sum e^{(min-v)/g} - min/g)
	lse := gamma*(math.Log(sPlus)+math.Log(sMinus)) + hpwl
	if grad != nil {
		invSP := 1 / sPlus
		invSM := 1 / sMinus
		for p := s; p < e; p++ {
			v := pos[d.PinCell[p]] + off[p]
			gp := math.Exp((v-maxV)*inv) * invSP
			gm := math.Exp((minV-v)*inv) * invSM
			grad[p] = gp - gm
		}
	}
	return lse, hpwl
}

// FusedLSE is the LSE counterpart of Fused: smoothed wirelength, pin
// gradient and HPWL in one kernel.
func FusedLSE(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64, pinGX, pinGY []float64) Result {
	nw := e.Workers()
	partWL := e.Alloc(nw)
	partHP := e.Alloc(nw)
	e.LaunchChunks("wl.fused_lse_grad_hpwl", d.NumNets(), func(w, lo, hi int) {
		var wl, hp float64
		for n := lo; n < hi; n++ {
			wx, hx := netLSE(d, n, x, d.PinOffX, gamma, pinGX)
			wy, hy := netLSE(d, n, y, d.PinOffY, gamma, pinGY)
			wl += wx + wy
			hp += hx + hy
		}
		partWL[w] += wl
		partHP[w] += hp
	})
	var res Result
	for w := 0; w < nw; w++ {
		res.WA += partWL[w]
		res.HPWL += partHP[w]
	}
	e.Free(partWL)
	e.Free(partHP)
	return res
}

// LSEGrad evaluates the LSE wirelength and its pin gradient without the
// HPWL fusion.
func LSEGrad(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64, pinGX, pinGY []float64) float64 {
	nw := e.Workers()
	part := e.Alloc(nw)
	e.LaunchChunks("wl.lse_grad", d.NumNets(), func(w, lo, hi int) {
		var wl float64
		for n := lo; n < hi; n++ {
			wx, _ := netLSE(d, n, x, d.PinOffX, gamma, pinGX)
			wy, _ := netLSE(d, n, y, d.PinOffY, gamma, pinGY)
			wl += wx + wy
		}
		part[w] += wl
	})
	var total float64
	for w := 0; w < nw; w++ {
		total += part[w]
	}
	e.Free(part)
	return total
}

// LSEForward evaluates only the LSE wirelength.
func LSEForward(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64) float64 {
	nw := e.Workers()
	part := e.Alloc(nw)
	e.LaunchChunks("wl.lse_fwd", d.NumNets(), func(w, lo, hi int) {
		var wl float64
		for n := lo; n < hi; n++ {
			wx, _ := netLSE(d, n, x, d.PinOffX, gamma, nil)
			wy, _ := netLSE(d, n, y, d.PinOffY, gamma, nil)
			wl += wx + wy
		}
		part[w] += wl
	})
	var total float64
	for w := 0; w < nw; w++ {
		total += part[w]
	}
	e.Free(part)
	return total
}
