package wirelength

import (
	"math"

	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// Model selects the smoothed-wirelength formulation an Ops evaluates.
type Model int

// Supported smoothed-wirelength models.
const (
	WA  Model = iota // weighted-average (Eq. 6)
	LSE              // log-sum-exp
)

// Ops is the persistent wirelength operator set used by the placer's hot
// loop. It owns the per-worker partial buffers and builds every kernel body
// once, with per-call parameters staged in struct fields, so steady-state
// evaluations are allocation-free (per-call closures would heap-allocate on
// every launch). An Ops is single-flight: drive it from one placement loop
// at a time. The free package functions (Fused, WAGrad, ...) remain for
// one-shot callers.
type Ops struct {
	e     *kernel.Engine
	d     *netlist.Design
	model Model

	partWA, partHP []float64 // one slot per worker chunk

	// Staged per-call parameters.
	x, y           []float64
	gamma          float64
	pinGX, pinGY   []float64
	cellGX, cellGY []float64

	fusedBody, gradBody func(w, lo, hi int)
	hpwlBody            func(lo, hi int) float64
	p2cBody             func(lo, hi int)

	fusedName, gradName string
}

// NewOps builds the persistent wirelength operators for (e, d) using the
// given smoothed model. The per-worker partial buffers come from e's
// arena; call Release when done with the operator set.
func NewOps(e *kernel.Engine, d *netlist.Design, model Model) *Ops {
	o := &Ops{
		e:      e,
		d:      d,
		model:  model,
		partWA: e.Alloc(e.Workers()),
		partHP: e.Alloc(e.Workers()),
	}
	netFn := netWA
	o.fusedName, o.gradName = "wl.fused_wa_grad_hpwl", "wl.wa_grad"
	if model == LSE {
		netFn = netLSE
		o.fusedName, o.gradName = "wl.fused_lse_grad_hpwl", "wl.lse_grad"
	}
	o.fusedBody = func(w, lo, hi int) {
		var wl, hp float64
		for n := lo; n < hi; n++ {
			wx, hx := netFn(d, n, o.x, d.PinOffX, o.gamma, o.pinGX)
			wy, hy := netFn(d, n, o.y, d.PinOffY, o.gamma, o.pinGY)
			wl += wx + wy
			hp += hx + hy
		}
		o.partWA[w] = wl
		o.partHP[w] = hp
	}
	o.gradBody = func(w, lo, hi int) {
		var wl float64
		for n := lo; n < hi; n++ {
			wx, _ := netFn(d, n, o.x, d.PinOffX, o.gamma, o.pinGX)
			wy, _ := netFn(d, n, o.y, d.PinOffY, o.gamma, o.pinGY)
			wl += wx + wy
		}
		o.partWA[w] = wl
	}
	o.hpwlBody = func(lo, hi int) float64 {
		return hpwlRange(d, o.x, o.y, lo, hi)
	}
	o.p2cBody = func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var gx, gy float64
			for _, p := range d.CellPins[d.CellPinStart[c]:d.CellPinStart[c+1]] {
				gx += o.pinGX[p]
				gy += o.pinGY[p]
			}
			o.cellGX[c] = gx
			o.cellGY[c] = gy
		}
	}
	return o
}

// Release returns the per-worker partial buffers to the engine arena.
// Idempotent; the Ops stays usable — the next evaluation checks the
// partials out again.
func (o *Ops) Release() {
	if o.partWA != nil {
		o.e.Free(o.partWA)
		o.e.Free(o.partHP)
		o.partWA, o.partHP = nil, nil
	}
}

// ensure re-checks the partial buffers out after a Release.
func (o *Ops) ensure() {
	if o.partWA == nil {
		o.partWA = o.e.Alloc(o.e.Workers())
		o.partHP = o.e.Alloc(o.e.Workers())
	}
}

// Fused evaluates smoothed wirelength, pin gradient and HPWL in a single
// kernel launch (the paper's operator combination, §3.1.1).
func (o *Ops) Fused(x, y []float64, gamma float64, pinGX, pinGY []float64) Result {
	o.ensure()
	o.x, o.y, o.gamma, o.pinGX, o.pinGY = x, y, gamma, pinGX, pinGY
	used := o.e.LaunchChunks(o.fusedName, o.d.NumNets(), o.fusedBody)
	var res Result
	for w := 0; w < used; w++ {
		res.WA += o.partWA[w]
		res.HPWL += o.partHP[w]
	}
	return res
}

// Grad evaluates the smoothed wirelength and its pin gradient WITHOUT the
// HPWL fusion — the "no operator combination" configuration.
func (o *Ops) Grad(x, y []float64, gamma float64, pinGX, pinGY []float64) float64 {
	o.ensure()
	o.x, o.y, o.gamma, o.pinGX, o.pinGY = x, y, gamma, pinGX, pinGY
	used := o.e.LaunchChunks(o.gradName, o.d.NumNets(), o.gradBody)
	var total float64
	for w := 0; w < used; w++ {
		total += o.partWA[w]
	}
	return total
}

// HPWL evaluates the exact half-perimeter wirelength as its own kernel,
// rescanning every net's min/max (what the unfused configuration pays).
func (o *Ops) HPWL(x, y []float64) float64 {
	o.x, o.y = x, y
	return o.e.ParallelReduce("wl.hpwl", o.d.NumNets(), 0, o.hpwlBody, sumFloat)
}

// PinToCell scatters per-pin gradients onto cell centers as one kernel
// (race-free: each cell sums its own pins via the CSR reverse map).
func (o *Ops) PinToCell(pinGX, pinGY, cellGX, cellGY []float64) {
	o.pinGX, o.pinGY, o.cellGX, o.cellGY = pinGX, pinGY, cellGX, cellGY
	o.e.Launch("wl.pin_to_cell", o.d.NumCells(), o.p2cBody)
}

func sumFloat(a, b float64) float64 { return a + b }

// hpwlRange sums both dimensions' HPWL over nets [lo, hi).
func hpwlRange(d *netlist.Design, x, y []float64, lo, hi int) float64 {
	var hp float64
	for n := lo; n < hi; n++ {
		s, e := d.NetPinStart[n], d.NetPinStart[n+1]
		if e-s < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for p := s; p < e; p++ {
			c := d.PinCell[p]
			px := x[c] + d.PinOffX[p]
			py := y[c] + d.PinOffY[p]
			if px < minX {
				minX = px
			}
			if px > maxX {
				maxX = px
			}
			if py < minY {
				minY = py
			}
			if py > maxY {
				maxY = py
			}
		}
		hp += (maxX - minX) + (maxY - minY)
	}
	return hp
}
