// Package wirelength implements the wirelength operators of the placer:
// the exact half-perimeter wirelength (HPWL, Eq. 2), the numerically stable
// weighted-average (WA) smoothed wirelength (Eq. 6), and its analytic
// gradient.
//
// The package provides both the paper's fused operator (§3.1.1 operator
// combination: WA wirelength + WA gradient + HPWL in ONE kernel, sharing
// the per-net min/max scan) and the unfused operators the ablation and the
// DREAMPlace-style baseline use (separate kernels, each rescanning min/max).
package wirelength

import (
	"math"

	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// Result carries the scalar outputs of a wirelength operator evaluation.
type Result struct {
	WA   float64 // smoothed wirelength, x + y components
	HPWL float64 // exact half-perimeter wirelength
}

// netWA computes the stable WA wirelength and per-pin gradient of one net
// in one dimension. pos is indexed by cell; grad (per pin, indexed by
// global pin id) is written if non-nil. Returns (waWL, hpwl).
func netWA(d *netlist.Design, n int, pos []float64, off []float64, gamma float64, grad []float64) (float64, float64) {
	s, e := d.NetPinStart[n], d.NetPinStart[n+1]
	if e-s < 2 {
		if grad != nil {
			for p := s; p < e; p++ {
				grad[p] = 0
			}
		}
		return 0, 0
	}
	// Pass 1: min/max (shared by WA, gradient and HPWL).
	minV, maxV := math.Inf(1), math.Inf(-1)
	for p := s; p < e; p++ {
		v := pos[d.PinCell[p]] + off[p]
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	hpwl := maxV - minV
	// Pass 2: stable exponential sums (Eq. 6).
	inv := 1 / gamma
	var sPlus, sMinus, bPlus, bMinus float64
	for p := s; p < e; p++ {
		v := pos[d.PinCell[p]] + off[p]
		ap := math.Exp((v - maxV) * inv)
		am := math.Exp((minV - v) * inv)
		sPlus += ap
		sMinus += am
		bPlus += v * ap
		bMinus += v * am
	}
	wa := bPlus/sPlus - bMinus/sMinus
	if grad != nil {
		// Pass 3: gradient. d(B+/S+)/dv_j = a_j*(S+ + (v_j*S+ - B+)/gamma)/S+^2
		// and symmetrically for the minus term.
		invSP2 := 1 / (sPlus * sPlus)
		invSM2 := 1 / (sMinus * sMinus)
		for p := s; p < e; p++ {
			v := pos[d.PinCell[p]] + off[p]
			ap := math.Exp((v - maxV) * inv)
			am := math.Exp((minV - v) * inv)
			gp := ap * (sPlus + (v*sPlus-bPlus)*inv) * invSP2
			gm := am * (sMinus - (v*sMinus-bMinus)*inv) * invSM2
			grad[p] = gp - gm
		}
	}
	return wa, hpwl
}

// Fused evaluates WA wirelength, WA pin gradient and HPWL in a single
// kernel launch (the paper's operator combination, §3.1.1). pinGX/pinGY
// must have length NumPins; they receive d(WA)/d(pin position).
func Fused(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64, pinGX, pinGY []float64) Result {
	nw := e.Workers()
	partWA := e.Alloc(nw)
	partHP := e.Alloc(nw)
	e.LaunchChunks("wl.fused_wa_grad_hpwl", d.NumNets(), func(w, lo, hi int) {
		var wa, hp float64
		for n := lo; n < hi; n++ {
			wx, hx := netWA(d, n, x, d.PinOffX, gamma, pinGX)
			wy, hy := netWA(d, n, y, d.PinOffY, gamma, pinGY)
			wa += wx + wy
			hp += hx + hy
		}
		partWA[w] += wa
		partHP[w] += hp
	})
	var res Result
	for w := 0; w < nw; w++ {
		res.WA += partWA[w]
		res.HPWL += partHP[w]
	}
	e.Free(partWA)
	e.Free(partHP)
	return res
}

// WAGrad evaluates the WA wirelength and its pin gradient as one kernel
// (DREAMPlace's objective-and-gradient merging) WITHOUT the HPWL fusion —
// the "no operator combination" configuration.
func WAGrad(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64, pinGX, pinGY []float64) float64 {
	nw := e.Workers()
	part := e.Alloc(nw)
	e.LaunchChunks("wl.wa_grad", d.NumNets(), func(w, lo, hi int) {
		var wa float64
		for n := lo; n < hi; n++ {
			wx, _ := netWA(d, n, x, d.PinOffX, gamma, pinGX)
			wy, _ := netWA(d, n, y, d.PinOffY, gamma, pinGY)
			wa += wx + wy
		}
		part[w] += wa
	})
	var total float64
	for w := 0; w < nw; w++ {
		total += part[w]
	}
	e.Free(part)
	return total
}

// WAForward evaluates only the WA wirelength (no gradient) as one kernel —
// the forward operator the autograd baseline differentiates.
func WAForward(e *kernel.Engine, d *netlist.Design, x, y []float64, gamma float64) float64 {
	nw := e.Workers()
	part := e.Alloc(nw)
	e.LaunchChunks("wl.wa_fwd", d.NumNets(), func(w, lo, hi int) {
		var wa float64
		for n := lo; n < hi; n++ {
			wx, _ := netWA(d, n, x, d.PinOffX, gamma, nil)
			wy, _ := netWA(d, n, y, d.PinOffY, gamma, nil)
			wa += wx + wy
		}
		part[w] += wa
	})
	var total float64
	for w := 0; w < nw; w++ {
		total += part[w]
	}
	e.Free(part)
	return total
}

// HPWL evaluates the exact half-perimeter wirelength as its own kernel,
// rescanning every net's min/max (what the unfused configuration pays).
func HPWL(e *kernel.Engine, d *netlist.Design, x, y []float64) float64 {
	return e.ParallelReduce("wl.hpwl", d.NumNets(), 0,
		func(lo, hi int) float64 {
			return hpwlRange(d, x, y, lo, hi)
		}, sumFloat)
}

// PinToCellGrad scatters per-pin gradients onto cell centers as one kernel
// parallel over cells (race-free: each cell sums its own pins via the CSR
// reverse map). Overwrites cellGX/cellGY; cells without pins get zero.
func PinToCellGrad(e *kernel.Engine, d *netlist.Design, pinGX, pinGY, cellGX, cellGY []float64) {
	e.Launch("wl.pin_to_cell", d.NumCells(), func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var gx, gy float64
			for _, p := range d.CellPins[d.CellPinStart[c]:d.CellPinStart[c+1]] {
				gx += pinGX[p]
				gy += pinGY[p]
			}
			cellGX[c] = gx
			cellGY[c] = gy
		}
	})
}
