package wirelength

import (
	"math"
	"math/rand"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// randomDesign builds a seeded random design with nc movable cells and nn
// nets of degree 2..6.
func randomDesign(tb testing.TB, nc, nn int, seed int64) *netlist.Design {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := netlist.NewDesign("rand", geom.Rect{Hx: 1000, Hy: 1000})
	for i := 0; i < nc; i++ {
		d.AddCell("c", 2, 2, 10+rng.Float64()*980, 10+rng.Float64()*980, netlist.Movable)
	}
	for i := 0; i < nn; i++ {
		d.AddNet("n")
		deg := 2 + rng.Intn(5)
		for j := 0; j < deg; j++ {
			d.AddPin(rng.Intn(nc), rng.NormFloat64(), rng.NormFloat64())
		}
	}
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	return d
}

func eng() *kernel.Engine { return kernel.New(kernel.Options{Workers: 4}) }

func TestHPWLMatchesNetlistReference(t *testing.T) {
	d := randomDesign(t, 50, 80, 1)
	e := eng()
	got := HPWL(e, d, d.CellX, d.CellY)
	want := d.HPWL(nil, nil)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
}

func TestWAUnderestimatesAndConvergesToHPWL(t *testing.T) {
	d := randomDesign(t, 40, 60, 2)
	e := eng()
	hp := d.HPWL(nil, nil)
	prevGap := math.Inf(1)
	for _, gamma := range []float64{100, 10, 1, 0.1} {
		wa := WAForward(e, d, d.CellX, d.CellY, gamma)
		if wa > hp+1e-6 {
			t.Errorf("gamma=%v: WA %v exceeds HPWL %v", gamma, wa, hp)
		}
		gap := hp - wa
		if gap > prevGap+1e-9 {
			t.Errorf("gamma=%v: gap %v grew from %v (should shrink)", gamma, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.01*hp {
		t.Errorf("gamma=0.1 gap %v still more than 1%% of HPWL %v", prevGap, hp)
	}
}

func TestFusedAgreesWithUnfused(t *testing.T) {
	d := randomDesign(t, 60, 90, 3)
	e := eng()
	np := d.NumPins()
	gx1, gy1 := make([]float64, np), make([]float64, np)
	gx2, gy2 := make([]float64, np), make([]float64, np)
	gamma := 5.0

	res := Fused(e, d, d.CellX, d.CellY, gamma, gx1, gy1)
	wa := WAGrad(e, d, d.CellX, d.CellY, gamma, gx2, gy2)
	hp := HPWL(e, d, d.CellX, d.CellY)
	fwd := WAForward(e, d, d.CellX, d.CellY, gamma)

	if math.Abs(res.WA-wa) > 1e-9*(1+math.Abs(wa)) {
		t.Errorf("fused WA %v != unfused %v", res.WA, wa)
	}
	if math.Abs(res.WA-fwd) > 1e-9*(1+math.Abs(fwd)) {
		t.Errorf("fused WA %v != forward-only %v", res.WA, fwd)
	}
	if math.Abs(res.HPWL-hp) > 1e-9*(1+hp) {
		t.Errorf("fused HPWL %v != unfused %v", res.HPWL, hp)
	}
	for p := 0; p < np; p++ {
		if math.Abs(gx1[p]-gx2[p]) > 1e-12 || math.Abs(gy1[p]-gy2[p]) > 1e-12 {
			t.Fatalf("pin %d grads disagree: (%v,%v) vs (%v,%v)", p, gx1[p], gy1[p], gx2[p], gy2[p])
		}
	}
}

func TestFusedUsesOneLaunchUnfusedTwo(t *testing.T) {
	d := randomDesign(t, 30, 40, 4)
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)

	eF := eng()
	Fused(eF, d, d.CellX, d.CellY, 5, gx, gy)
	if got := eF.Stats().Launches; got != 1 {
		t.Errorf("fused launches = %d, want 1", got)
	}

	eU := eng()
	WAGrad(eU, d, d.CellX, d.CellY, 5, gx, gy)
	HPWL(eU, d, d.CellX, d.CellY)
	if got := eU.Stats().Launches; got != 2 {
		t.Errorf("unfused launches = %d, want 2", got)
	}
}

// Finite-difference check of the WA gradient.
func TestWAGradientFiniteDifference(t *testing.T) {
	d := randomDesign(t, 12, 20, 5)
	e := eng()
	gamma := 3.0
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	Fused(e, d, d.CellX, d.CellY, gamma, gx, gy)
	// Cell gradient via pin scatter.
	cgx := make([]float64, d.NumCells())
	cgy := make([]float64, d.NumCells())
	PinToCellGrad(e, d, gx, gy, cgx, cgy)

	h := 1e-5
	x := append([]float64(nil), d.CellX...)
	for c := 0; c < d.NumCells(); c++ {
		x[c] += h
		up := WAForward(e, d, x, d.CellY, gamma)
		x[c] -= 2 * h
		dn := WAForward(e, d, x, d.CellY, gamma)
		x[c] += h
		fd := (up - dn) / (2 * h)
		if math.Abs(fd-cgx[c]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("cell %d: analytic %v vs FD %v", c, cgx[c], fd)
		}
	}
}

// The gradient of a translation-invariant function sums to ~zero per net.
func TestWAGradientSumsToZero(t *testing.T) {
	d := randomDesign(t, 30, 50, 6)
	e := eng()
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	Fused(e, d, d.CellX, d.CellY, 2, gx, gy)
	for n := 0; n < d.NumNets(); n++ {
		var sx, sy float64
		for p := d.NetPinStart[n]; p < d.NetPinStart[n+1]; p++ {
			sx += gx[p]
			sy += gy[p]
		}
		if math.Abs(sx) > 1e-9 || math.Abs(sy) > 1e-9 {
			t.Fatalf("net %d gradient sum = (%v, %v)", n, sx, sy)
		}
	}
}

// For a 2-pin net with small gamma, gradients approach +-1 (the exact HPWL
// subgradient).
func TestWAGradientTwoPinLimit(t *testing.T) {
	d := netlist.NewDesign("two", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell("a", 1, 1, 10, 50, netlist.Movable)
	b := d.AddCell("b", 1, 1, 90, 50, netlist.Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	e := eng()
	gx, gy := make([]float64, 2), make([]float64, 2)
	Fused(e, d, d.CellX, d.CellY, 0.01, gx, gy)
	if math.Abs(gx[0]+1) > 1e-6 || math.Abs(gx[1]-1) > 1e-6 {
		t.Errorf("x grads = %v, want [-1, 1]", gx)
	}
	if math.Abs(gy[0]) > 1e-6 || math.Abs(gy[1]) > 1e-6 {
		t.Errorf("y grads = %v, want [0, 0]", gy)
	}
}

func TestSmallNetsContributeZeroAndClearGrads(t *testing.T) {
	d := netlist.NewDesign("deg1", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell("a", 1, 1, 10, 10, netlist.Movable)
	d.AddNet("n1")
	d.AddPin(a, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	e := eng()
	gx := []float64{123}
	gy := []float64{456}
	res := Fused(e, d, d.CellX, d.CellY, 1, gx, gy)
	if res.WA != 0 || res.HPWL != 0 {
		t.Errorf("single-pin net result = %+v", res)
	}
	if gx[0] != 0 || gy[0] != 0 {
		t.Errorf("stale grads not cleared: %v %v", gx, gy)
	}
}

func TestPinToCellGrad(t *testing.T) {
	d := randomDesign(t, 20, 30, 7)
	e := eng()
	np := d.NumPins()
	pgx := make([]float64, np)
	pgy := make([]float64, np)
	for p := 0; p < np; p++ {
		pgx[p] = float64(p)
		pgy[p] = -float64(p)
	}
	cgx := make([]float64, d.NumCells())
	cgy := make([]float64, d.NumCells())
	PinToCellGrad(e, d, pgx, pgy, cgx, cgy)
	// Reference: direct accumulation.
	wantX := make([]float64, d.NumCells())
	wantY := make([]float64, d.NumCells())
	for p := 0; p < np; p++ {
		wantX[d.PinCell[p]] += pgx[p]
		wantY[d.PinCell[p]] += pgy[p]
	}
	for c := 0; c < d.NumCells(); c++ {
		if cgx[c] != wantX[c] || cgy[c] != wantY[c] {
			t.Fatalf("cell %d grad = (%v,%v), want (%v,%v)", c, cgx[c], cgy[c], wantX[c], wantY[c])
		}
	}
}

func TestStabilityWithExtremeCoordinates(t *testing.T) {
	// The stable form (Eq. 6) must not overflow even with huge coordinates
	// and tiny gamma.
	d := netlist.NewDesign("extreme", geom.Rect{Hx: 1e9, Hy: 1e9})
	a := d.AddCell("a", 1, 1, 1e8, 1e8, netlist.Movable)
	b := d.AddCell("b", 1, 1, 9e8, 9e8, netlist.Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	e := eng()
	gx, gy := make([]float64, 2), make([]float64, 2)
	res := Fused(e, d, d.CellX, d.CellY, 1e-3, gx, gy)
	if math.IsNaN(res.WA) || math.IsInf(res.WA, 0) {
		t.Errorf("WA overflowed: %v", res.WA)
	}
	for _, g := range append(gx, gy...) {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Errorf("gradient overflowed: %v %v", gx, gy)
		}
	}
}

func BenchmarkFused(b *testing.B) {
	d := randomDesign(b, 5000, 5000, 1)
	e := eng()
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fused(e, d, d.CellX, d.CellY, 5, gx, gy)
	}
}

func BenchmarkUnfused(b *testing.B) {
	d := randomDesign(b, 5000, 5000, 1)
	e := eng()
	np := d.NumPins()
	gx, gy := make([]float64, np), make([]float64, np)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WAGrad(e, d, d.CellX, d.CellY, 5, gx, gy)
		HPWL(e, d, d.CellX, d.CellY)
	}
}
