// Package benchgen generates synthetic placement benchmarks with the
// published statistics of the ISPD 2005 [19] and ISPD 2015 [20] contest
// suites (Table 1 of the paper). The real contest inputs are neither
// redistributable with this repository nor tractable at full size for a
// CPU-bound reproduction, so each design is synthesized to match its
// published cell/net counts (scaled by a configurable factor), a
// contest-like net-degree distribution, macro/IO structure by suite
// style, and a realistic utilization — the workload properties the global
// placer is actually sensitive to.
//
// Connectivity is generated with locality: cells get coordinates in a
// logical grid and nets connect logical neighbourhoods (a Rent's-rule
// flavoured structure), so a good placement exists for the placer to
// find. Initial physical positions are uniform random — the placer must
// discover the structure, as on the contest inputs.
package benchgen

import (
	"fmt"
	"math"
	"math/rand"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// Spec describes one contest design by its published statistics.
type Spec struct {
	Name  string
	Suite string // "ispd2005" or "ispd2015"
	// Cells and Nets are the published counts (Table 1).
	Cells int
	Nets  int
	// MacroFrac is the fraction of total cell area held by fixed macros.
	MacroFrac float64
	// Util is the target placement utilization (movable area over free
	// area).
	Util float64
	// Fence marks ISPD 2015 designs whose fence-region constraints the
	// paper removed (the dagger rows of Table 4). Informational only.
	Fence bool
}

// Catalog2005 returns the eight ISPD 2005 contest designs (Table 1).
func Catalog2005() []Spec {
	return []Spec{
		{Name: "adaptec1", Suite: "ispd2005", Cells: 211_000, Nets: 221_000, MacroFrac: 0.30, Util: 0.57},
		{Name: "adaptec2", Suite: "ispd2005", Cells: 255_000, Nets: 266_000, MacroFrac: 0.35, Util: 0.44},
		{Name: "adaptec3", Suite: "ispd2005", Cells: 452_000, Nets: 467_000, MacroFrac: 0.40, Util: 0.34},
		{Name: "adaptec4", Suite: "ispd2005", Cells: 496_000, Nets: 516_000, MacroFrac: 0.40, Util: 0.27},
		{Name: "bigblue1", Suite: "ispd2005", Cells: 278_000, Nets: 284_000, MacroFrac: 0.15, Util: 0.45},
		{Name: "bigblue2", Suite: "ispd2005", Cells: 558_000, Nets: 577_000, MacroFrac: 0.25, Util: 0.38},
		{Name: "bigblue3", Suite: "ispd2005", Cells: 1_097_000, Nets: 1_123_000, MacroFrac: 0.25, Util: 0.56},
		{Name: "bigblue4", Suite: "ispd2005", Cells: 2_177_000, Nets: 2_230_000, MacroFrac: 0.20, Util: 0.44},
	}
}

// Catalog2015 returns the twenty ISPD 2015 contest designs used in
// Table 4 (fence-region constraints removed, per the paper).
func Catalog2015() []Spec {
	mk := func(name string, cells, nets int, fence bool) Spec {
		return Spec{Name: name, Suite: "ispd2015", Cells: cells, Nets: nets,
			MacroFrac: 0.10, Util: 0.55, Fence: fence}
	}
	return []Spec{
		mk("des_perf_1", 113_000, 113_000, false),
		mk("fft_1", 35_000, 33_000, false),
		mk("fft_2", 35_000, 33_000, false),
		mk("fft_a", 34_000, 32_000, false),
		mk("fft_b", 34_000, 32_000, false),
		mk("matrix_mult_1", 160_000, 159_000, false),
		mk("matrix_mult_2", 160_000, 159_000, false),
		mk("matrix_mult_a", 154_000, 154_000, false),
		mk("superblue12", 1_293_000, 1_293_000, false),
		mk("superblue14", 634_000, 620_000, false),
		mk("superblue19", 522_000, 512_000, false),
		mk("des_perf_a", 108_000, 115_000, true),
		mk("des_perf_b", 113_000, 113_000, true),
		mk("edit_dist_a", 127_000, 134_000, true),
		mk("matrix_mult_b", 146_000, 152_000, true),
		mk("matrix_mult_c", 146_000, 152_000, true),
		mk("pci_bridge32_a", 30_000, 34_000, true),
		mk("pci_bridge32_b", 29_000, 33_000, true),
		mk("superblue11_a", 926_000, 936_000, true),
		mk("superblue16_a", 680_000, 697_000, true),
	}
}

// FindSpec looks a design up by name across both suites.
func FindSpec(name string) (Spec, bool) {
	for _, s := range append(Catalog2005(), Catalog2015()...) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// RowHeight is the standard-cell row height of generated designs (site
// units).
const RowHeight = 8.0

// Generate synthesizes the design described by spec at the given scale
// (cell and net counts multiplied by scale, floored at 500/500). The same
// (spec, scale, seed) triple always produces the identical design.
func Generate(spec Spec, scale float64, seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed ^ int64(len(spec.Name))<<32 ^ hashName(spec.Name)))

	nCells := int(float64(spec.Cells) * scale)
	if nCells < 500 {
		nCells = 500
	}
	nNets := int(float64(spec.Nets) * scale)
	if nNets < 500 {
		nNets = 500
	}

	// Standard-cell sizes: widths 1..8 sites biased small, height one row.
	widths := make([]float64, nCells)
	var stdArea float64
	for i := range widths {
		w := 1 + math.Floor(math.Abs(rng.NormFloat64())*2)
		if w > 8 {
			w = 8
		}
		widths[i] = w
		stdArea += w * RowHeight
	}

	// Macro area and region sizing.
	macroArea := stdArea * spec.MacroFrac / math.Max(1e-9, 1-spec.MacroFrac)
	util := spec.Util
	if util <= 0 {
		util = 0.5
	}
	regionArea := (stdArea + macroArea) / util
	side := math.Ceil(math.Sqrt(regionArea)/RowHeight) * RowHeight
	region := geom.Rect{Hx: side, Hy: side}
	d := netlist.NewDesign(spec.Name, region)

	// Rows.
	for y := 0.0; y+RowHeight <= side; y += RowHeight {
		d.Rows = append(d.Rows, netlist.Row{Y: y, X0: 0, X1: side, Height: RowHeight, SiteWidth: 1})
	}

	// Movable standard cells at uniform random initial positions.
	for i := 0; i < nCells; i++ {
		w := widths[i]
		x := w/2 + rng.Float64()*(side-w)
		y := RowHeight/2 + rng.Float64()*(side-RowHeight)
		d.AddCell(fmt.Sprintf("o%d", i), w, RowHeight, x, y, netlist.Movable)
	}

	// Fixed macros: adaptec-style designs scatter large blocks; bigblue
	// and ispd2015 styles use fewer, smaller ones. Greedy non-overlapping
	// rejection sampling keeps them apart.
	var macros []geom.Rect
	if macroArea > 0 {
		nMac := 4 + nCells/2000
		per := macroArea / float64(nMac)
		for i := 0; i < nMac; i++ {
			ar := 0.5 + rng.Float64() // aspect ratio
			w := math.Sqrt(per * ar)
			h := per / w
			if w > side/3 {
				w = side / 3
			}
			if h > side/3 {
				h = side / 3
			}
			placed := false
			for try := 0; try < 64 && !placed; try++ {
				x := w/2 + rng.Float64()*(side-w)
				y := h/2 + rng.Float64()*(side-h)
				r := geom.Rect{Lx: x - w/2, Ly: y - h/2, Hx: x + w/2, Hy: y + h/2}
				ok := true
				for _, m := range macros {
					if !m.Intersect(r).Empty() {
						ok = false
						break
					}
				}
				if ok {
					macros = append(macros, r)
					d.AddCell(fmt.Sprintf("macro%d", i), w, h, x, y, netlist.Fixed)
					placed = true
				}
			}
		}
	}

	// IO pads on the boundary.
	nPads := nCells / 100
	if nPads < 8 {
		nPads = 8
	}
	padIDs := make([]int, 0, nPads)
	for i := 0; i < nPads; i++ {
		var x, y float64
		switch i % 4 {
		case 0:
			x, y = rng.Float64()*side, 0.5
		case 1:
			x, y = rng.Float64()*side, side-0.5
		case 2:
			x, y = 0.5, rng.Float64()*side
		case 3:
			x, y = side-0.5, rng.Float64()*side
		}
		padIDs = append(padIDs, d.AddCell(fmt.Sprintf("pad%d", i), 1, 1, x, y, netlist.Fixed))
	}

	// Nets: logical-grid locality. Cell i sits at logical coordinates
	// (i%cols, i/cols); a net anchors at a random cell and connects
	// neighbours within a Gaussian window, with a small global tail and
	// occasional pad connections.
	cols := int(math.Ceil(math.Sqrt(float64(nCells))))
	logical := func(lx, ly int) int {
		if lx < 0 {
			lx = 0
		}
		if lx >= cols {
			lx = cols - 1
		}
		if ly < 0 {
			ly = 0
		}
		idx := ly*cols + lx
		if idx >= nCells {
			idx = nCells - 1
		}
		if idx < 0 {
			idx = 0
		}
		return idx
	}
	for i := 0; i < nNets; i++ {
		d.AddNet(fmt.Sprintf("n%d", i))
		anchor := rng.Intn(nCells)
		ax, ay := anchor%cols, anchor/cols
		deg := netDegree(rng)
		addPin := func(cell int) {
			offX := (rng.Float64() - 0.5) * d.CellW[cell] * 0.8
			offY := (rng.Float64() - 0.5) * d.CellH[cell] * 0.8
			d.AddPin(cell, offX, offY)
		}
		addPin(anchor)
		for j := 1; j < deg; j++ {
			switch {
			case rng.Float64() < 0.03 && len(padIDs) > 0:
				d.AddPin(padIDs[rng.Intn(len(padIDs))], 0, 0)
			case rng.Float64() < 0.05:
				addPin(rng.Intn(nCells)) // global net tail
			default:
				dx := int(math.Round(rng.NormFloat64() * 2))
				dy := int(math.Round(rng.NormFloat64() * 2))
				addPin(logical(ax+dx, ay+dy))
			}
		}
	}

	if err := d.Finish(); err != nil {
		panic(fmt.Sprintf("benchgen: %s: %v", spec.Name, err))
	}
	return d
}

// netDegree samples a contest-like net degree: mostly 2-3 pins with a
// geometric tail capped at 24.
func netDegree(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.55:
		return 2
	case u < 0.75:
		return 3
	case u < 0.85:
		return 4
	default:
		deg := 5
		for rng.Float64() < 0.55 && deg < 24 {
			deg++
		}
		return deg
	}
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
