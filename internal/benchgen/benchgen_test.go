package benchgen

import (
	"math"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

func TestCatalogsMatchTable1(t *testing.T) {
	c5 := Catalog2005()
	if len(c5) != 8 {
		t.Fatalf("ISPD 2005 catalog has %d designs, want 8", len(c5))
	}
	c15 := Catalog2015()
	if len(c15) != 20 {
		t.Fatalf("ISPD 2015 catalog has %d designs, want 20", len(c15))
	}
	// Spot-check published counts from Table 1.
	checks := map[string][2]int{
		"adaptec1":    {211_000, 221_000},
		"bigblue4":    {2_177_000, 2_230_000},
		"fft_1":       {35_000, 33_000},
		"superblue12": {1_293_000, 1_293_000},
	}
	for name, want := range checks {
		s, ok := FindSpec(name)
		if !ok {
			t.Errorf("missing spec %q", name)
			continue
		}
		if s.Cells != want[0] || s.Nets != want[1] {
			t.Errorf("%s: %d/%d, want %d/%d", name, s.Cells, s.Nets, want[0], want[1])
		}
	}
	if _, ok := FindSpec("nonexistent"); ok {
		t.Error("FindSpec should miss unknown names")
	}
	// Exactly 9 dagger (fence-removed) designs in Table 4.
	fences := 0
	for _, s := range c15 {
		if s.Fence {
			fences++
		}
	}
	if fences != 9 {
		t.Errorf("fence-removed designs = %d, want 9", fences)
	}
}

func TestGenerateScaledCounts(t *testing.T) {
	s, _ := FindSpec("adaptec1")
	d := Generate(s, 0.02, 1)
	st := d.Stats()
	wantCells := int(float64(s.Cells) * 0.02)
	if st.Movable < wantCells*95/100 || st.Movable > wantCells*105/100 {
		t.Errorf("movable = %d, want about %d", st.Movable, wantCells)
	}
	wantNets := int(float64(s.Nets) * 0.02)
	if st.Nets < wantNets*95/100 || st.Nets > wantNets*105/100 {
		t.Errorf("nets = %d, want about %d", st.Nets, wantNets)
	}
	if st.Fixed == 0 {
		t.Error("expected fixed macros and pads")
	}
}

func TestGenerateMinimumFloor(t *testing.T) {
	s := Spec{Name: "tiny", Suite: "ispd2005", Cells: 1000, Nets: 1000, Util: 0.5}
	d := Generate(s, 0.0001, 1)
	if d.Stats().Movable < 500 {
		t.Errorf("floor not applied: %d cells", d.Stats().Movable)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := FindSpec("fft_1")
	a := Generate(s, 0.05, 7)
	b := Generate(s, 0.05, 7)
	if a.NumCells() != b.NumCells() || a.NumPins() != b.NumPins() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.CellX {
		if a.CellX[i] != b.CellX[i] || a.CellW[i] != b.CellW[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
	c := Generate(s, 0.05, 8)
	same := true
	for i := range a.CellX {
		if a.CellX[i] != c.CellX[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical designs")
	}
}

func TestGenerateUtilizationNearSpec(t *testing.T) {
	for _, name := range []string{"adaptec1", "bigblue1", "fft_1"} {
		s, _ := FindSpec(name)
		d := Generate(s, 0.02, 3)
		got := d.Utilization()
		if math.Abs(got-s.Util) > 0.15 {
			t.Errorf("%s: utilization %.3f, spec %.3f", name, got, s.Util)
		}
	}
}

func TestGenerateMacrosDisjointAndInside(t *testing.T) {
	s, _ := FindSpec("adaptec3")
	d := Generate(s, 0.01, 5)
	var rects []geom.Rect
	for c, k := range d.CellKind {
		if k == netlist.Fixed && d.CellW[c] > 2 {
			r := d.CellRect(c)
			if !d.Region.ContainsRect(r) {
				t.Errorf("macro %d outside region: %v", c, r)
			}
			rects = append(rects, r)
		}
	}
	if len(rects) < 4 {
		t.Fatalf("expected several macros, got %d", len(rects))
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if ov := rects[i].Overlap(rects[j]); ov > 1e-9 {
				t.Errorf("macros %d and %d overlap by %g", i, j, ov)
			}
		}
	}
}

func TestGenerateRowsCoverRegion(t *testing.T) {
	s, _ := FindSpec("fft_a")
	d := Generate(s, 0.05, 2)
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range d.Rows {
		if r.Height != RowHeight || r.X0 != d.Region.Lx || r.X1 != d.Region.Hx {
			t.Errorf("bad row %+v", r)
		}
		if r.Y < d.Region.Ly || r.Y+r.Height > d.Region.Hy+1e-9 {
			t.Errorf("row outside region: %+v", r)
		}
	}
}

func TestNetDegreeDistribution(t *testing.T) {
	s, _ := FindSpec("adaptec1")
	d := Generate(s, 0.02, 9)
	hist := map[int]int{}
	maxDeg := 0
	for n := 0; n < d.NumNets(); n++ {
		deg := d.NetPinStart[n+1] - d.NetPinStart[n]
		hist[deg]++
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	total := d.NumNets()
	if frac2 := float64(hist[2]) / float64(total); frac2 < 0.4 || frac2 > 0.7 {
		t.Errorf("2-pin fraction = %.3f, want contest-like ~0.55", frac2)
	}
	if maxDeg > 24 {
		t.Errorf("max degree %d exceeds cap", maxDeg)
	}
	avgPins := float64(d.NumPins()) / float64(total)
	if avgPins < 2.5 || avgPins > 4.5 {
		t.Errorf("avg pins/net = %.2f, want 2.5-4.5", avgPins)
	}
}

func TestConnectivityHasLocality(t *testing.T) {
	// Nets mostly connect logically nearby cells: the mean logical index
	// distance of 2-pin nets must be far below the random expectation.
	s, _ := FindSpec("fft_2")
	d := Generate(s, 0.1, 4)
	nCells := 0
	for _, k := range d.CellKind {
		if k == netlist.Movable {
			nCells++
		}
	}
	cols := int(math.Ceil(math.Sqrt(float64(nCells))))
	var sum float64
	var cnt int
	for n := 0; n < d.NumNets(); n++ {
		st, en := d.NetPinStart[n], d.NetPinStart[n+1]
		if en-st != 2 {
			continue
		}
		a, b := d.PinCell[st], d.PinCell[st+1]
		if a >= nCells || b >= nCells {
			continue
		}
		ax, ay := a%cols, a/cols
		bx, by := b%cols, b/cols
		sum += math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))
		cnt++
	}
	if cnt == 0 {
		t.Skip("no 2-pin cell-to-cell nets")
	}
	mean := sum / float64(cnt)
	randomExpect := float64(cols) * 2 / 3
	if mean > randomExpect/3 {
		t.Errorf("mean logical distance %.2f too high vs random %.2f — no locality", mean, randomExpect)
	}
}

func BenchmarkGenerateAdaptec1(b *testing.B) {
	s, _ := FindSpec("adaptec1")
	for i := 0; i < b.N; i++ {
		Generate(s, 0.05, int64(i))
	}
}
