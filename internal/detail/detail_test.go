package detail

import (
	"math/rand"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/legal"
	"xplace/internal/netlist"
)

// legalDesign builds a legal row design with connected neighbours placed
// deliberately badly (shuffled), so detailed placement has work to do.
func legalDesign(tb testing.TB, n int, seed int64) (*netlist.Design, []float64, []float64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := 64.0
	d := netlist.NewDesign("dp", geom.Rect{Hx: side, Hy: side})
	for y := 0.0; y+4 <= side; y += 4 {
		d.Rows = append(d.Rows, netlist.Row{Y: y, X0: 0, X1: side, Height: 4, SiteWidth: 1})
	}
	// All cells 2x4: swaps always legal.
	for i := 0; i < n; i++ {
		d.AddCell("c", 2, 4, 0, 0, netlist.Movable)
	}
	// Chain + grid connectivity.
	for i := 0; i+1 < n; i++ {
		d.AddNet("n")
		d.AddPin(i, 0, 0)
		d.AddPin(i+1, 0, 0)
	}
	for i := 0; i+16 < n; i += 4 {
		d.AddNet("m")
		d.AddPin(i, 0, 0)
		d.AddPin(i+16, 0, 0)
	}
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	// Legal positions: fill rows left to right, but assign cells in
	// SHUFFLED order so connectivity does not match geometry.
	slots := make([][2]float64, 0, n)
	perRow := int(side / 2)
	for i := 0; i < n; i++ {
		row := i / perRow
		col := i % perRow
		slots = append(slots, [2]float64{float64(col*2) + 1, float64(row*4) + 2})
	}
	perm := rng.Perm(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = slots[perm[i]][0]
		y[i] = slots[perm[i]][1]
	}
	return d, x, y
}

func TestRunImprovesHPWLAndStaysLegal(t *testing.T) {
	d, x, y := legalDesign(t, 300, 1)
	if v := legal.Check(d, x, y); len(v) != 0 {
		t.Fatalf("input not legal: %+v", v[0])
	}
	before := d.HPWL(x, y)
	nx, ny := Run(d, x, y, Options{Passes: 2})
	after := d.HPWL(nx, ny)
	if after >= before {
		t.Errorf("no improvement: %.1f -> %.1f", before, after)
	}
	if v := legal.Check(d, nx, ny); len(v) != 0 {
		t.Fatalf("output not legal: %d violations, first %+v", len(v), v[0])
	}
	improvement := (before - after) / before
	t.Logf("HPWL %.1f -> %.1f (%.1f%% better)", before, after, improvement*100)
	if improvement < 0.05 {
		t.Errorf("improvement %.2f%% too small for a shuffled placement", improvement*100)
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	d, x, y := legalDesign(t, 100, 2)
	xc := append([]float64(nil), x...)
	yc := append([]float64(nil), y...)
	Run(d, x, y, Options{Passes: 1})
	for i := range x {
		if x[i] != xc[i] || y[i] != yc[i] {
			t.Fatal("input slices were mutated")
		}
	}
}

func TestRunIdempotentOnConverged(t *testing.T) {
	d, x, y := legalDesign(t, 150, 3)
	nx, ny := Run(d, x, y, Options{Passes: 3})
	h1 := d.HPWL(nx, ny)
	nx2, ny2 := Run(d, nx, ny, Options{Passes: 1})
	h2 := d.HPWL(nx2, ny2)
	if h2 > h1+1e-9 {
		t.Errorf("second run degraded HPWL: %.2f -> %.2f", h1, h2)
	}
}

func TestGlobalSwapOnlySwapsSameFootprint(t *testing.T) {
	// A design with two cell sizes: after refinement, the multiset of
	// positions per footprint must be preserved.
	d := netlist.NewDesign("fp", geom.Rect{Hx: 32, Hy: 8})
	d.Rows = append(d.Rows, netlist.Row{Y: 0, X0: 0, X1: 32, Height: 4, SiteWidth: 1},
		netlist.Row{Y: 4, X0: 0, X1: 32, Height: 4, SiteWidth: 1})
	a := d.AddCell("a", 2, 4, 1, 2, netlist.Movable)
	b := d.AddCell("b", 4, 4, 4, 2, netlist.Movable)
	c := d.AddCell("c", 2, 4, 31, 6, netlist.Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	d.AddNet("m")
	d.AddPin(c, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	nx, ny := Run(d, d.CellX, d.CellY, Options{Passes: 2})
	if v := legal.Check(d, nx, ny); len(v) != 0 {
		t.Fatalf("not legal: %+v", v[0])
	}
	// Width-4 cell must still be at a position a width-4 cell occupied.
	if nx[b] != 4 || ny[b] != 2 {
		// b may not move at all (no same-size partner).
		t.Errorf("width-4 cell moved to (%v,%v) without a same-size partner", nx[b], ny[b])
	}
}

func TestPermutations(t *testing.T) {
	perms := permutations(3)
	// lengths 2 and 3: 2 + 6 = 8 permutations.
	if len(perms) != 8 {
		t.Fatalf("permutations(3) returned %d, want 8", len(perms))
	}
	full := 0
	for _, p := range perms {
		if len(p) == 3 {
			full++
		}
	}
	if full != 6 {
		t.Errorf("full-length perms = %d, want 6", full)
	}
}

func TestNetHPWLAndUnion(t *testing.T) {
	d, x, y := legalDesign(t, 20, 4)
	st := &state{d: d, x: x, y: y}
	var total float64
	for n := 0; n < d.NumNets(); n++ {
		total += st.netHPWL(n)
	}
	if want := d.HPWL(x, y); total != want {
		t.Errorf("sum of net HPWL %v != design HPWL %v", total, want)
	}
	u := unionNets([]int{1, 2, 3}, []int{3, 4})
	if len(u) != 4 {
		t.Errorf("union = %v", u)
	}
}

func BenchmarkDetailRun(b *testing.B) {
	d, x, y := legalDesign(b, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(d, x, y, Options{Passes: 1})
	}
}
