// Package detail implements detailed placement: HPWL refinement of a
// legal placement that preserves legality, standing in for the
// NTUPlace3 / ABCDPlace detailed placers the paper's flow invokes. Three
// standard moves are applied in passes:
//
//   - Global swap: exchange same-footprint cells when the wirelength of
//     their incident nets improves (the ABCDPlace global-swap kernel).
//   - Local reordering: exhaustively permute small windows of row
//     neighbours (k! orders, k small).
//   - Independent-set matching (ISM): groups of mutually disconnected
//     same-footprint cells are optimally reassigned to their position
//     multiset by exact small-case assignment.
//
// All moves exchange positions between identical footprints or repack a
// window into its own span, so a legal input stays legal.
package detail

import (
	"math"
	"math/rand"
	"sort"

	"xplace/internal/legal"
	"xplace/internal/netlist"
)

// Options tunes the detailed placer.
type Options struct {
	// Passes over the whole design (default 2).
	Passes int
	// WindowSize is the local-reordering window (default 3, max 6).
	WindowSize int
	// SetSize is the ISM independent-set size (default 5, max 6: the
	// assignment is solved by exact enumeration).
	SetSize int
	// SwapRadius is the neighbourhood radius for global swap in multiples
	// of the average cell height (default 10).
	SwapRadius float64
	// Seed drives tie-breaking and traversal order.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Passes == 0 {
		o.Passes = 2
	}
	if o.WindowSize == 0 {
		o.WindowSize = 3
	}
	if o.WindowSize > 6 {
		o.WindowSize = 6
	}
	if o.SetSize == 0 {
		o.SetSize = 5
	}
	if o.SetSize > 6 {
		o.SetSize = 6
	}
	if o.SwapRadius == 0 {
		o.SwapRadius = 10
	}
	return o
}

// state carries the mutable placement during refinement.
type state struct {
	d    *netlist.Design
	x, y []float64
}

// netHPWL computes one net's HPWL under the current state.
func (st *state) netHPWL(n int) float64 {
	s, e := st.d.NetPinStart[n], st.d.NetPinStart[n+1]
	if e-s < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for p := s; p < e; p++ {
		c := st.d.PinCell[p]
		px := st.x[c] + st.d.PinOffX[p]
		py := st.y[c] + st.d.PinOffY[p]
		minX = math.Min(minX, px)
		maxX = math.Max(maxX, px)
		minY = math.Min(minY, py)
		maxY = math.Max(maxY, py)
	}
	return (maxX - minX) + (maxY - minY)
}

// cellNets returns the distinct nets touching cell c.
func (st *state) cellNets(c int) []int {
	d := st.d
	var nets []int
	seen := map[int]bool{}
	for _, p := range d.CellPins[d.CellPinStart[c]:d.CellPinStart[c+1]] {
		n := d.PinNet[p]
		if !seen[n] {
			seen[n] = true
			nets = append(nets, n)
		}
	}
	return nets
}

// netsHPWL sums the HPWL of a net id set.
func (st *state) netsHPWL(nets []int) float64 {
	var s float64
	for _, n := range nets {
		s += st.netHPWL(n)
	}
	return s
}

// unionNets merges two net id lists without duplicates.
func unionNets(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, n := range a {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Run refines a legal placement and returns improved positions. The input
// slices are not modified.
func Run(d *netlist.Design, x, y []float64, opts Options) ([]float64, []float64) {
	o := opts.withDefaults()
	st := &state{
		d: d,
		x: append([]float64(nil), x...),
		y: append([]float64(nil), y...),
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for pass := 0; pass < o.Passes; pass++ {
		st.globalSwap(o, rng)
		st.localReorder(o)
		st.ismPass(o)
	}
	return st.x, st.y
}

// globalSwap tries to exchange each movable cell with a same-footprint
// cell near its optimal region.
func (st *state) globalSwap(o Options, rng *rand.Rand) {
	d := st.d
	movable := d.MovableCells()
	if len(movable) < 2 {
		return
	}
	// Spatial bucketing of same-size cells for candidate lookup.
	var avgH float64
	for _, c := range movable {
		avgH += d.CellH[c]
	}
	avgH /= float64(len(movable))
	radius := o.SwapRadius * avgH
	cellSz := radius
	if cellSz <= 0 {
		cellSz = 1
	}
	type key struct{ gx, gy int }
	buckets := map[key][]int{}
	bkey := func(px, py float64) key {
		return key{int(math.Floor(px / cellSz)), int(math.Floor(py / cellSz))}
	}
	for _, c := range movable {
		k := bkey(st.x[c], st.y[c])
		buckets[k] = append(buckets[k], c)
	}

	order := append([]int(nil), movable...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	for _, c := range order {
		// Optimal region: centroid of the other pins on c's nets.
		nets := st.cellNets(c)
		if len(nets) == 0 {
			continue
		}
		var ox, oy float64
		cnt := 0
		for _, n := range nets {
			for p := d.NetPinStart[n]; p < d.NetPinStart[n+1]; p++ {
				cc := d.PinCell[p]
				if cc == c {
					continue
				}
				ox += st.x[cc]
				oy += st.y[cc]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		ox /= float64(cnt)
		oy /= float64(cnt)
		if math.Abs(ox-st.x[c])+math.Abs(oy-st.y[c]) < avgH {
			continue // already near optimal
		}
		// Candidates near the optimal region with the same footprint.
		k0 := bkey(ox, oy)
		bestDelta := -1e-9
		bestCand := -1
		for dgx := -1; dgx <= 1; dgx++ {
			for dgy := -1; dgy <= 1; dgy++ {
				for _, cand := range buckets[key{k0.gx + dgx, k0.gy + dgy}] {
					if cand == c || d.CellW[cand] != d.CellW[c] || d.CellH[cand] != d.CellH[c] {
						continue
					}
					delta := st.swapDelta(c, cand, nets)
					if delta < bestDelta {
						bestDelta = delta
						bestCand = cand
					}
				}
			}
		}
		if bestCand >= 0 {
			st.x[c], st.x[bestCand] = st.x[bestCand], st.x[c]
			st.y[c], st.y[bestCand] = st.y[bestCand], st.y[c]
		}
	}
}

// swapDelta returns the HPWL change of swapping cells a and b (negative
// is an improvement). netsA must be a's distinct nets.
func (st *state) swapDelta(a, b int, netsA []int) float64 {
	nets := unionNets(netsA, st.cellNets(b))
	before := st.netsHPWL(nets)
	st.x[a], st.x[b] = st.x[b], st.x[a]
	st.y[a], st.y[b] = st.y[b], st.y[a]
	after := st.netsHPWL(nets)
	st.x[a], st.x[b] = st.x[b], st.x[a]
	st.y[a], st.y[b] = st.y[b], st.y[a]
	return after - before
}

// localReorder permutes small windows of segment neighbours, repacking
// each window left-to-right within its original span. Windows are formed
// inside one free segment so compaction can never move a cell onto a
// fixed obstacle.
func (st *state) localReorder(o Options) {
	d := st.d
	segs := legal.BuildSegments(d)
	// Assign each movable cell to its segment.
	bySeg := make([][]int, len(segs))
	for _, c := range d.MovableCells() {
		lx := st.x[c] - d.CellW[c]/2
		hx := st.x[c] + d.CellW[c]/2
		ly := st.y[c] - d.CellH[c]/2
		for i, sg := range segs {
			if math.Abs(ly-sg.Y) < 1e-6 && lx >= sg.X0-1e-6 && hx <= sg.X1+1e-6 {
				bySeg[i] = append(bySeg[i], c)
				break
			}
		}
	}
	allPerms := permutations(o.WindowSize)
	var perms [][]int
	for _, p := range allPerms {
		if len(p) == o.WindowSize {
			perms = append(perms, p)
		}
	}
	for _, cells := range bySeg {
		if len(cells) < o.WindowSize {
			continue
		}
		sort.Slice(cells, func(i, j int) bool { return st.x[cells[i]] < st.x[cells[j]] })
		for start := 0; start+o.WindowSize <= len(cells); start++ {
			win := cells[start : start+o.WindowSize]
			left := st.x[win[0]] - d.CellW[win[0]]/2
			nets := []int{}
			for _, c := range win {
				nets = unionNets(nets, st.cellNets(c))
			}
			baseX := make([]float64, len(win))
			for i, c := range win {
				baseX[i] = st.x[c]
			}
			before := st.netsHPWL(nets)
			bestPerm := -1
			bestVal := before - 1e-9
			for pi, perm := range perms {
				xx := left
				for _, idx := range perm {
					c := win[idx]
					st.x[c] = xx + d.CellW[c]/2
					xx += d.CellW[c]
				}
				if v := st.netsHPWL(nets); v < bestVal {
					bestVal = v
					bestPerm = pi
				}
			}
			if bestPerm >= 0 {
				xx := left
				for _, idx := range perms[bestPerm] {
					c := win[idx]
					st.x[c] = xx + d.CellW[c]/2
					xx += d.CellW[c]
				}
				sort.Slice(win, func(i, j int) bool { return st.x[win[i]] < st.x[win[j]] })
			} else {
				for i, c := range win {
					st.x[c] = baseX[i]
				}
			}
		}
	}
}

// ismPass runs independent-set matching: same-footprint, mutually
// disconnected cells are optimally assigned to the multiset of their
// positions by exact enumeration.
func (st *state) ismPass(o Options) {
	d := st.d
	// Group by footprint.
	type fp struct{ w, h float64 }
	groups := map[fp][]int{}
	for _, c := range d.MovableCells() {
		groups[fp{d.CellW[c], d.CellH[c]}] = append(groups[fp{d.CellW[c], d.CellH[c]}], c)
	}
	perms := permutations(o.SetSize)
	for _, cells := range groups {
		if len(cells) < 2 {
			continue
		}
		sort.Slice(cells, func(i, j int) bool { return st.x[cells[i]] < st.x[cells[j]] })
		// Build maximal independent sets greedily in x order.
		used := make(map[int]bool)
		for i := 0; i < len(cells); i++ {
			if used[cells[i]] {
				continue
			}
			set := []int{cells[i]}
			setNets := map[int]bool{}
			for _, n := range st.cellNets(cells[i]) {
				setNets[n] = true
			}
			for j := i + 1; j < len(cells) && len(set) < o.SetSize; j++ {
				c := cells[j]
				if used[c] {
					continue
				}
				indep := true
				cn := st.cellNets(c)
				for _, n := range cn {
					if setNets[n] {
						indep = false
						break
					}
				}
				if !indep {
					continue
				}
				set = append(set, c)
				for _, n := range cn {
					setNets[n] = true
				}
			}
			if len(set) < 2 {
				continue
			}
			for _, c := range set {
				used[c] = true
			}
			st.matchSet(set, perms)
		}
	}
}

// matchSet reassigns the cells of an independent set to the multiset of
// their positions, minimizing the sum of their incident nets' HPWL.
// Because members share no nets, each cell's cost depends only on its own
// slot; the optimal assignment over k! permutations (k <= 6) is exact.
func (st *state) matchSet(set []int, perms [][]int) {
	k := len(set)
	posX := make([]float64, k)
	posY := make([]float64, k)
	for i, c := range set {
		posX[i] = st.x[c]
		posY[i] = st.y[c]
	}
	// cost[i][j]: HPWL of cell set[i]'s nets with the cell at slot j.
	cost := make([][]float64, k)
	for i, c := range set {
		cost[i] = make([]float64, k)
		nets := st.cellNets(c)
		ox, oy := st.x[c], st.y[c]
		for j := 0; j < k; j++ {
			st.x[c], st.y[c] = posX[j], posY[j]
			cost[i][j] = st.netsHPWL(nets)
		}
		st.x[c], st.y[c] = ox, oy
	}
	bestVal := math.Inf(1)
	var best []int
	for _, perm := range perms {
		if len(perm) != k {
			continue
		}
		var v float64
		for i := 0; i < k; i++ {
			v += cost[i][perm[i]]
		}
		if v < bestVal {
			bestVal = v
			best = perm
		}
	}
	// Identity cost for comparison.
	var id float64
	for i := 0; i < k; i++ {
		id += cost[i][i]
	}
	if best == nil || bestVal >= id-1e-12 {
		return
	}
	for i, c := range set {
		st.x[c], st.y[c] = posX[best[i]], posY[best[i]]
	}
}

// permutations returns all permutations of 0..k-1 for every length 2..k
// (the length-k ones are used directly; shorter sets filter by length).
func permutations(k int) [][]int {
	var out [][]int
	var gen func(prefix []int, rest []int)
	gen = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			nr := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			gen(append(prefix, rest[i]), nr)
		}
	}
	for n := 2; n <= k; n++ {
		base := make([]int, n)
		for i := range base {
			base[i] = i
		}
		gen(nil, base)
	}
	return out
}

// HPWL evaluates the design's total HPWL at the given positions (a
// convenience re-export for flows).
func HPWL(d *netlist.Design, x, y []float64) float64 { return d.HPWL(x, y) }
