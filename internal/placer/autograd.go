package placer

import (
	"xplace/internal/field"
	"xplace/internal/tensor"
	"xplace/internal/wirelength"
)

// autogradGradient computes the objective gradient the PyTorch way: leaf
// tensors are copied from the lookahead positions, the WA wirelength and
// electrostatic density become custom autograd operators, the loss
// WL + lambda*D is assembled from small tensor ops, and Backward drives
// every backward kernel. Fills p.gX/p.gY and returns the WA value.
//
// This is the operator-reduction-OFF gradient path (§3.1.3): compared
// with the fused numerical path it launches roughly twice the kernels
// (forward + backward of every small op, plus leaf copies and gradient
// exports) and allocates fresh buffers instead of updating in place.
func (p *Placer) autogradGradient(vx, vy []float64, gamma, lambda float64) (wa float64) {
	e := p.eng
	d := p.d
	ctx := tensor.NewContext(e)

	// Backward scratch hoisted into placer state (allocated once, reused
	// every autograd step).
	if p.agGX == nil {
		p.agGX = make([]float64, p.d.NumCells())
		p.agGY = make([]float64, p.d.NumCells())
	}

	tx := tensor.New(len(vx))
	ty := tensor.New(len(vy))
	e.Launch("tensor.copy_params", len(vx), func(lo, hi int) {
		copy(tx.Data[lo:hi], vx[lo:hi])
		copy(ty.Data[lo:hi], vy[lo:hi])
	})
	tx.RequiresGrad()
	ty.RequiresGrad()

	waOp := tensor.Op{
		Name: "wa",
		Forward: func(ctx *tensor.Context, in []*tensor.Tensor) *tensor.Tensor {
			wa = wirelength.WAGrad(e, d, in[0].Data, in[1].Data, gamma, p.pinGX, p.pinGY)
			out := tensor.New(1)
			out.Data[0] = wa
			return out
		},
		Backward: func(ctx *tensor.Context, in []*tensor.Tensor, _ *tensor.Tensor, g []float64) {
			wirelength.PinToCellGrad(e, d, p.pinGX, p.pinGY, p.wlGX, p.wlGY)
			gv := g[0]
			gx, gy := p.agGX, p.agGY
			e.Launch("wa.bwd_scale", len(gx), func(lo, hi int) {
				for c := lo; c < hi; c++ {
					gx[c] = gv * p.wlGX[c]
					gy[c] = gv * p.wlGY[c]
				}
			})
			in[0].AccumulateGrad(gx)
			in[1].AccumulateGrad(gy)
		},
	}
	densOp := tensor.Op{
		Name: "density",
		Forward: func(ctx *tensor.Context, in []*tensor.Tensor) *tensor.Tensor {
			p.sys.ScatterDensity(e, d, in[0].Data, in[1].Data, field.MaskAll, p.sys.Total, "density.total")
			p.lastEnergy = p.sys.SolvePoisson(e)
			out := tensor.New(1)
			out.Data[0] = p.lastEnergy
			return out
		},
		Backward: func(ctx *tensor.Context, in []*tensor.Tensor, _ *tensor.Tensor, g []float64) {
			p.sys.GatherField(e, d, in[0].Data, in[1].Data, field.MaskPlaceable, p.dGX, p.dGY)
			gv := g[0]
			gx, gy := p.agGX, p.agGY
			e.Launch("density.bwd_scale", len(gx), func(lo, hi int) {
				for c := lo; c < hi; c++ {
					gx[c] = gv * p.dGX[c]
					gy[c] = gv * p.dGY[c]
				}
			})
			in[0].AccumulateGrad(gx)
			in[1].AccumulateGrad(gy)
		},
	}

	wlLoss := tensor.Apply(ctx, waOp, tx, ty)
	densLoss := tensor.Apply(ctx, densOp, tx, ty)

	if !p.lambdaInit {
		tensor.Backward(ctx, tensor.Add(ctx, wlLoss, densLoss))
		wirelength.PinToCellGrad(e, d, p.pinGX, p.pinGY, p.wlGX, p.wlGY)
		nWL, nD := p.l1Norms(p.wlGX, p.wlGY, p.dGX, p.dGY)
		p.schd.InitLambda(nWL, nD)
		p.lambdaInit = true
		tx.ZeroGrad()
		ty.ZeroGrad()
	}
	loss := tensor.Add(ctx, wlLoss, tensor.Scale(ctx, densLoss, lambda))
	tensor.Backward(ctx, loss)

	e.Launch("tensor.export_grad", len(p.gX), func(lo, hi int) {
		copy(p.gX[lo:hi], tx.Grad[lo:hi])
		copy(p.gY[lo:hi], ty.Grad[lo:hi])
	})
	return wa
}
