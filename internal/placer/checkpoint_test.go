package placer

import (
	"encoding/json"
	"testing"

	"xplace/internal/backend"
)

// runRef runs a full placement and returns the result.
func runRef(t *testing.T, opts Options) *Result {
	t.Helper()
	d := clusteredDesign(t, 400, 11)
	e := eng()
	defer e.Close()
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkpointAt runs a placement until a checkpoint at iteration k is
// emitted, abandoning the run there (the crash), and returns the
// checkpoint after a JSON round trip — the durable-store wire form.
func checkpointAt(t *testing.T, opts Options, k int) *Checkpoint {
	t.Helper()
	d := clusteredDesign(t, 400, 11)
	e := eng()
	defer e.Close()
	var cp *Checkpoint
	opts.CheckpointEvery = k
	opts.Checkpoint = func(c *Checkpoint) {
		if cp == nil {
			cp = c
		}
	}
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Run a few iterations past the checkpoint: the state after the
	// checkpoint must not leak into it.
	if _, err := p.RunIterations(k + 3); err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Iter != k {
		t.Fatalf("checkpoint hook: got %+v, want one at iter %d", cp, k)
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var rt Checkpoint
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	return &rt
}

// resumeFrom builds a fresh placer that restores cp and runs to the end.
func resumeFrom(t *testing.T, opts Options, cp *Checkpoint) *Result {
	t.Helper()
	d := clusteredDesign(t, 400, 11)
	e := eng()
	defer e.Close()
	opts.Resume = cp
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointResumeBitIdentical is the durable-jobs acceptance gate at
// the placer level: a run resumed from a JSON-round-tripped mid-trajectory
// checkpoint finishes with final positions, HPWL, overflow and iteration
// count bit-identical to a run that was never interrupted. Covered
// configurations: the full Xplace defaults (operator skipping active in
// the checkpointed window), the adaptive-grid schedule (resume on both
// sides of the coarse-to-fine switch), and Adam.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	base := func() Options {
		o := Defaults()
		o.Backend = backend.Float64() // pin exact float64 math under backend env overrides
		o.GridSize = 32
		o.TargetDensity = 0.9
		o.Sched.MaxIter = 600
		return o
	}
	cases := []struct {
		name string
		mod  func(*Options)
		at   int
	}{
		{"defaults_early", func(o *Options) {}, 10},
		{"defaults_late", func(o *Options) {}, 80},
		{"adaptive_grid", func(o *Options) { o.AdaptiveGrid = true }, 40},
		{"spectral_truncation", func(o *Options) { o.SpectralTruncation = true }, 30},
		{"adam", func(o *Options) { o.Optimizer = OptAdam }, 25},
		{"baseline_mode", func(o *Options) { *o = BaselineDefaults(); o.GridSize = 32; o.TargetDensity = 0.9; o.Sched.MaxIter = 200 }, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base()
			tc.mod(&opts)
			if tc.name == "baseline_mode" {
				opts.Backend = backend.Float64()
			}
			ref := runRef(t, opts)
			if tc.at >= ref.Iterations {
				t.Fatalf("checkpoint iter %d not mid-trajectory (run ends at %d)", tc.at, ref.Iterations)
			}
			cp := checkpointAt(t, opts, tc.at)
			res := resumeFrom(t, opts, cp)
			if res.Iterations != ref.Iterations {
				t.Fatalf("resumed run: %d iterations, uninterrupted: %d", res.Iterations, ref.Iterations)
			}
			if res.HPWL != ref.HPWL || res.Overflow != ref.Overflow {
				t.Fatalf("resumed HPWL/overflow %v/%v != uninterrupted %v/%v",
					res.HPWL, res.Overflow, ref.HPWL, ref.Overflow)
			}
			for c := range ref.X {
				if res.X[c] != ref.X[c] || res.Y[c] != ref.Y[c] {
					t.Fatalf("cell %d: resumed (%v,%v) != uninterrupted (%v,%v)",
						c, res.X[c], res.Y[c], ref.X[c], ref.Y[c])
				}
			}
		})
	}
}

// TestResumeAtFinalIterationRunsNothing: a checkpoint taken exactly at the
// run's natural end resumes into an immediate finish — the stop test leads
// the loop, so no extra iteration corrupts the result.
func TestResumeAtFinalIterationRunsNothing(t *testing.T) {
	opts := Defaults()
	opts.Backend = backend.Float64()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MaxIter = 60 // force the MaxIter stop
	ref := runRef(t, opts)
	if ref.Iterations != 60 {
		t.Fatalf("reference ran %d iterations, want the MaxIter stop at 60", ref.Iterations)
	}
	cp := checkpointAt(t, opts, 60)
	res := resumeFrom(t, opts, cp)
	if res.Iterations != 60 || res.HPWL != ref.HPWL {
		t.Fatalf("resume at final iteration: %d iters HPWL %v, want 60 iters HPWL %v",
			res.Iterations, res.HPWL, ref.HPWL)
	}
}

// TestRestoreValidation: mismatched checkpoints are rejected, not
// silently loaded.
func TestRestoreValidation(t *testing.T) {
	opts := Defaults()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	cp := checkpointAt(t, opts, 5)

	d := clusteredDesign(t, 400, 11)
	e := eng()
	defer e.Close()

	bad := *cp
	bad.Cells = cp.Cells + 1
	o := opts
	o.Resume = &bad
	if _, err := New(d, e, o); err == nil {
		t.Error("cell-count mismatch not rejected")
	}

	badOpt := *cp
	badOpt.Opt.Kind = "adam"
	o = opts
	o.Resume = &badOpt
	if _, err := New(d, e, o); err == nil {
		t.Error("optimizer-kind mismatch not rejected")
	}
	if es := e.Stats(); es.Arena.InUse != 0 {
		t.Errorf("rejected resumes leaked %d arena bytes", es.Arena.InUse)
	}
}
