package placer

import (
	"testing"

	"xplace/internal/backend"
	"xplace/internal/benchgen"
)

// oracleHPWLBand is the checked-in cross-strategy tolerance: on scaled
// adaptec1 the LB/UB upper bound (already rough-legalized) must land
// within this relative band of the Nesterov global-placement HPWL. The
// two algorithms share nothing but the netlist and the bin grid, so a
// quality regression in either one moves the ratio out of the band. The
// band is asymmetric on purpose: LB/UB is the draft tier and lands above
// the gradient flow, but a *collapse* (ratio below the lower edge) would
// mean the oracle itself broke.
const (
	oracleHPWLBandHigh = 0.45 // lbub may be up to 45% above nesterov
	oracleHPWLBandLow  = 0.30 // and no more than 30% below
)

// TestOracleLBUBvsNesterovAdaptec1 is the headline cross-strategy check
// (make test-oracle): two structurally independent placers agree on
// scaled adaptec1 within the checked-in band, and the oracle side is
// bit-identical run to run so the band never flakes.
func TestOracleLBUBvsNesterovAdaptec1(t *testing.T) {
	spec, ok := benchgen.FindSpec("adaptec1")
	if !ok {
		t.Fatal("adaptec1 spec missing")
	}
	d := benchgen.Generate(spec, 0.004, 1)

	run := func(opts Options) *Result {
		e := eng()
		defer e.Close()
		p, err := New(d, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The band is defined against the exact float64 reference on both
	// sides; pin the backend so the XPLACE_BACKEND CI lane cannot move
	// the nesterov trajectory out from under it.
	nesOpts := Defaults()
	nesOpts.Backend = backend.Float64()
	nesOpts.Sched.MaxIter = 1000
	nes := run(nesOpts)
	if nes.Iterations >= 1000 {
		t.Fatalf("nesterov hit MaxIter (overflow %v)", nes.Overflow)
	}

	lbOpts := Defaults()
	lbOpts.Backend = backend.Float64()
	lbOpts.Strategy = StrategyLBUB
	lb1 := run(lbOpts)
	lb2 := run(lbOpts)

	// Oracle determinism: the band is only meaningful if the oracle's
	// number cannot drift between runs.
	if lb1.HPWL != lb2.HPWL || lb1.Overflow != lb2.Overflow || lb1.Iterations != lb2.Iterations {
		t.Fatalf("lbub not deterministic: (%v, %v, %d) vs (%v, %v, %d)",
			lb1.HPWL, lb1.Overflow, lb1.Iterations, lb2.HPWL, lb2.Overflow, lb2.Iterations)
	}

	ratio := lb1.HPWL / nes.HPWL
	t.Logf("adaptec1 oracle: nesterov HPWL %.1f (%d iters) vs lbub %.1f (%d rounds, overflow %.3f), ratio %.3f",
		nes.HPWL, nes.Iterations, lb1.HPWL, lb1.Iterations, lb1.Overflow, ratio)
	if ratio > 1+oracleHPWLBandHigh {
		t.Errorf("lbub HPWL %.1f is %.1f%% above nesterov %.1f (band +%.0f%%)",
			lb1.HPWL, 100*(ratio-1), nes.HPWL, 100*oracleHPWLBandHigh)
	}
	if ratio < 1-oracleHPWLBandLow {
		t.Errorf("lbub HPWL %.1f is %.1f%% below nesterov %.1f (band -%.0f%%) — oracle collapsed",
			lb1.HPWL, 100*(1-ratio), nes.HPWL, 100*oracleHPWLBandLow)
	}
}
