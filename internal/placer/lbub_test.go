package placer

import (
	"errors"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// lbubOpts is the pinned LB/UB configuration of the strategy tests.
func lbubOpts(maxSteps int) Options {
	opts := Defaults()
	opts.Strategy = StrategyLBUB
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Seed = 5
	opts.Sched.MaxIter = maxSteps
	return opts
}

// TestLBUBConverges: the alternation closes its LB/UB gap below the
// preset tolerance on the clustered fixture, the deliverable is the
// rough-legalized UB solution (bounded capacity overflow), and every cell
// lands inside the region.
func TestLBUBConverges(t *testing.T) {
	d := clusteredDesign(t, 400, 1)
	var snaps []Snapshot
	opts := lbubOpts(200)
	opts.Progress = func(s Snapshot) { snaps = append(snaps, s) }
	e := eng()
	defer e.Close()
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 200 {
		t.Errorf("hit MaxSteps without closing the gap (gap %v)", p.lbub.gap)
	}
	if p.lbub.gap > p.lbub.prm.GapTolerance {
		t.Errorf("stopped with gap %v > tolerance %v", p.lbub.gap, p.lbub.prm.GapTolerance)
	}
	if res.Overflow > 0.25 {
		t.Errorf("UB capacity overflow = %v, want <= 0.25", res.Overflow)
	}
	if res.Stats.Launches == 0 {
		t.Error("LB solves launched no kernels")
	}
	for c := range res.X {
		if !d.Region.Contains(geom.Point{X: res.X[c], Y: res.Y[c]}) {
			t.Fatalf("cell %d at (%v, %v) outside the region", c, res.X[c], res.Y[c])
		}
	}
	for i, s := range snaps {
		if s.Stage != "lbub" {
			t.Fatalf("snapshot %d stage %q, want \"lbub\"", i, s.Stage)
		}
		if s.WA > s.HPWL {
			t.Fatalf("snapshot %d: LB %v above UB %v", i, s.WA, s.HPWL)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Omega != p.lbub.gap {
		t.Errorf("last snapshot gap %v != engine gap %v", last.Omega, p.lbub.gap)
	}
}

// lbubTrajectory mirrors the Nesterov determinism helper: the per-round
// snapshot series of a fixed-seed LB/UB run on a fresh engine.
func lbubTrajectory(t *testing.T, workers, maxSteps int) []Snapshot {
	t.Helper()
	d := clusteredDesign(t, 600, 42)
	opts := lbubOpts(maxSteps)
	var snaps []Snapshot
	opts.Progress = func(s Snapshot) { snaps = append(snaps, s) }
	e := kernel.New(kernel.Options{Workers: workers})
	defer e.Close()
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestLBUBRunToRunDeterminism: same seed, same worker count — the LB/UB
// trajectory (both bounds, gap, penalty, overflow) must reproduce
// bit-for-bit, exactly like the Nesterov contract. The CG dot products
// run through the engine's fixed chunk boundaries and the UB assignment
// is a strict total order, so there is no legitimate source of drift.
func TestLBUBRunToRunDeterminism(t *testing.T) {
	a := lbubTrajectory(t, 4, 40)
	b := lbubTrajectory(t, 4, 40)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trajectories have %d and %d rounds", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.HPWL != y.HPWL || x.WA != y.WA || x.Overflow != y.Overflow ||
			x.Lambda != y.Lambda || x.Omega != y.Omega {
			t.Fatalf("round %d diverged between identical runs:\n  run A: %+v\n  run B: %+v", i, x, y)
		}
	}
}

// TestLBUBNotResumable: a checkpoint cannot be restored into the LB/UB
// strategy — New fails with the typed error instead of silently starting
// from scratch, and Checkpoint reports nil for a running LB/UB placer.
func TestLBUBNotResumable(t *testing.T) {
	d := clusteredDesign(t, 50, 3)
	e := eng()
	defer e.Close()

	opts := lbubOpts(10)
	opts.Resume = &Checkpoint{Cells: d.NumCells()}
	if _, err := New(d, e, opts); !errors.Is(err, ErrStrategyNotResumable) {
		t.Fatalf("New with Resume = %v, want ErrStrategyNotResumable", err)
	}

	opts.Resume = nil
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if cp := p.Checkpoint(); cp != nil {
		t.Fatalf("Checkpoint() = %+v, want nil for LB/UB", cp)
	}
}

// divergentDesign is the fuzz-derived pathological input (also a seed in
// the bookshelf corpus): pin offsets of ±1e40 parse fine and keep every
// kernel finite, but the first wirelength evaluation explodes past any
// physical HPWL — the gradient flow cannot recover.
func divergentDesign(tb testing.TB) *netlist.Design {
	tb.Helper()
	d := netlist.NewDesign("fuzz-diverge", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell("a", 2, 2, 10, 10, netlist.Movable)
	b := d.AddCell("b", 2, 2, 90, 90, netlist.Movable)
	d.AddNet("n0")
	d.AddPin(a, 1e40, 1e40)
	d.AddPin(b, -1e40, -1e40)
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestNesterovDivergesOnPathologicalInput: the gradient flow flags the
// exploding run with the typed ErrDiverged on its first iteration instead
// of grinding to MaxIter on garbage numbers.
func TestNesterovDivergesOnPathologicalInput(t *testing.T) {
	d := divergentDesign(t)
	e := eng()
	defer e.Close()
	opts := Defaults()
	opts.Sched.MaxIter = 50
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run = %v, want ErrDiverged", err)
	}
	if res == nil || res.Iterations == 0 {
		t.Fatal("divergence must surface a partial result")
	}
}

// TestLBUBSurvivesPathologicalInput: the same input completes under the
// LB/UB strategy with finite in-region positions — the property the
// serve-level fallback relies on.
func TestLBUBSurvivesPathologicalInput(t *testing.T) {
	d := divergentDesign(t)
	e := eng()
	defer e.Close()
	p, err := New(d, e, lbubOpts(50))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.X {
		if !d.Region.Contains(geom.Point{X: res.X[c], Y: res.Y[c]}) {
			t.Fatalf("cell %d at (%v, %v) outside the region", c, res.X[c], res.Y[c])
		}
	}
}
