package placer

import (
	"sync"
	"testing"

	"xplace/internal/kernel"
)

// trajectory runs GP for up to maxIter iterations on a fresh engine with
// the given worker count, collecting the per-iteration snapshots.
func trajectory(t *testing.T, workers, maxIter int) []Snapshot {
	t.Helper()
	d := clusteredDesign(t, 600, 42)
	opts := Defaults()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Seed = 5
	opts.Sched.MaxIter = maxIter
	var snaps []Snapshot
	opts.Progress = func(s Snapshot) { snaps = append(snaps, s) }
	e := kernel.New(kernel.Options{Workers: workers})
	defer e.Close()
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestRunToRunDeterminism: the same seed and a FIXED worker count must
// reproduce the HPWL/overflow trajectory bit-for-bit — fixed workers mean
// fixed chunk boundaries, hence a fixed floating-point summation order in
// every ParallelReduce. This is the reproducibility contract the serve
// runtime's pooled engines rely on.
func TestRunToRunDeterminism(t *testing.T) {
	const iters = 50
	a := trajectory(t, 4, iters)
	b := trajectory(t, 4, iters)
	if len(a) != iters || len(b) != iters {
		t.Fatalf("trajectories have %d and %d iterations, want %d each", len(a), len(b), iters)
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.HPWL != y.HPWL || x.Overflow != y.Overflow || x.WA != y.WA ||
			x.Gamma != y.Gamma || x.Lambda != y.Lambda || x.Omega != y.Omega {
			t.Fatalf("iteration %d diverged between identical runs:\n  run A: %+v\n  run B: %+v", i, x, y)
		}
	}
}

// TestConcurrentPlacersShareOneEngine runs 4 concurrent Place jobs against
// ONE shared kernel.Engine (run it under -race: the per-placer SyncQueue,
// the arena and the launch accounting must all be safe to share). Each
// job must produce the same result it gets when running alone, and all
// arena-backed scratch must be returned once the placers are closed.
func TestConcurrentPlacersShareOneEngine(t *testing.T) {
	d := clusteredDesign(t, 300, 9)
	opts := Defaults()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MaxIter = 120

	e := kernel.New(kernel.Options{Workers: 4})
	defer e.Close()

	// Reference: the same job running alone on an identical engine.
	ref := func() *Result {
		solo := kernel.New(kernel.Options{Workers: 4})
		defer solo.Close()
		p, err := New(d, solo, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		r, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	const jobs = 4
	results := make([]*Result, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := New(d, e, opts)
			if err != nil {
				errs[i] = err
				return
			}
			defer p.Close()
			results[i], errs[i] = p.Run()
		}(i)
	}
	wg.Wait()

	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i].HPWL != ref.HPWL || results[i].Iterations != ref.Iterations {
			t.Errorf("job %d: HPWL %v in %d iters, solo %v in %d — sharing an engine must not change results",
				i, results[i].HPWL, results[i].Iterations, ref.HPWL, ref.Iterations)
		}
	}
	if inUse := e.ArenaStats().InUse; inUse != 0 {
		t.Errorf("shared engine arena in-use = %d bytes after all placers closed, want 0", inUse)
	}
}
