package placer

import (
	"math"
	"testing"

	"xplace/internal/backend"
	"xplace/internal/benchgen"
)

// runWith places the shared 400-cell fixture under opts and returns the
// result (fails the test on error).
func runWith(t *testing.T, opts Options) *Result {
	t.Helper()
	d := clusteredDesign(t, 400, 1)
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MaxIter = 600
	e := eng()
	defer e.Close()
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 600 {
		t.Fatalf("hit MaxIter without converging (overflow %v)", res.Overflow)
	}
	return res
}

// TestFloat32BackendQuality is the placement-level tolerance golden: the
// float32 backend must converge to the same quality band as the reference
// run. Bit-identity is impossible (the trajectory diverges after enough
// iterations of rounded fields), and this 400-cell fixture is chaotic
// enough that even a 1-ulp early perturbation moves the final HPWL a
// couple of percent, so the gate is a 3%% band here; the tight 1%% gate
// lives on the structured adaptec1 fixture below.
func TestFloat32BackendQuality(t *testing.T) {
	ref := runWith(t, Defaults())
	opts := Defaults()
	opts.Backend = backend.Float32()
	got := runWith(t, opts)
	if got.Overflow > 0.10 {
		t.Errorf("float32 overflow = %v, want <= 0.10", got.Overflow)
	}
	if rel := math.Abs(got.HPWL-ref.HPWL) / ref.HPWL; rel > 0.03 {
		t.Errorf("float32 HPWL %v vs reference %v (rel %.4f), want within 3%%",
			got.HPWL, ref.HPWL, rel)
	}
	t.Logf("float32: %d iters, HPWL %.1f (ref %.1f), overflow %.3f",
		got.Iterations, got.HPWL, ref.HPWL, got.Overflow)
}

// TestAdaptiveGridQualityAdaptec1 is the acceptance gate of the adaptive
// grid schedule: on the (scaled) adaptec1 fixture the coarse-to-fine run
// must converge with final HPWL no more than 1% worse than the fixed-grid
// reference. (In practice it lands well below the reference — the coarse
// early field spreads clusters before fine-grained density overreacts,
// the classic multilevel benefit.)
func TestAdaptiveGridQualityAdaptec1(t *testing.T) {
	spec, ok := benchgen.FindSpec("adaptec1")
	if !ok {
		t.Fatal("adaptec1 spec missing")
	}
	d := benchgen.Generate(spec, 0.004, 1)
	run := func(adaptive bool) *Result {
		e := eng()
		defer e.Close()
		opts := Defaults()
		opts.AdaptiveGrid = adaptive
		opts.Sched.MaxIter = 1000
		p, err := New(d, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if adaptive && (p.sysCoarse == nil || p.sys != p.sysCoarse) {
			t.Fatal("adaptive run must start on the M/2 coarse system")
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if adaptive && p.sys != p.sysFine {
			t.Error("adaptive run never refined to the fine grid")
		}
		if res.Iterations >= 1000 {
			t.Fatalf("hit MaxIter (overflow %v)", res.Overflow)
		}
		return res
	}
	ref := run(false)
	ada := run(true)
	if ada.HPWL > ref.HPWL*1.01 {
		t.Errorf("adaptive HPWL %v vs reference %v, want within 1%%", ada.HPWL, ref.HPWL)
	}
	t.Logf("adaptec1: ref HPWL %.1f (%d iters) vs adaptive %.1f (%d iters)",
		ref.HPWL, ref.Iterations, ada.HPWL, ada.Iterations)
}

// TestSpectralTruncationQuality: the early-stage half-band truncation must
// not cost placement quality on the toy fixture (same 3% chaos band as
// the float32 gate; in this run it tracks the reference much closer).
func TestSpectralTruncationQuality(t *testing.T) {
	ref := runWith(t, Defaults())
	opts := Defaults()
	opts.SpectralTruncation = true
	got := runWith(t, opts)
	if got.Overflow > 0.10 {
		t.Errorf("truncated overflow = %v", got.Overflow)
	}
	if rel := math.Abs(got.HPWL-ref.HPWL) / ref.HPWL; rel > 0.03 {
		t.Errorf("truncated HPWL %v vs reference %v (rel %.4f)", got.HPWL, ref.HPWL, rel)
	}
}

// TestExplicitFloat64MatchesDefault: pinning the reference backend
// explicitly is bit-identical to leaving Backend nil (with no env
// override) — the refactor must not perturb the default path.
func TestExplicitFloat64MatchesDefault(t *testing.T) {
	t.Setenv(backend.EnvVar, "") // neutralize any ambient override
	a := runWith(t, Defaults())
	opts := Defaults()
	opts.Backend = backend.Float64()
	b := runWith(t, opts)
	if a.HPWL != b.HPWL || a.Iterations != b.Iterations {
		t.Fatalf("explicit float64 diverged from default: HPWL %v vs %v, iters %d vs %d",
			b.HPWL, a.HPWL, b.Iterations, a.Iterations)
	}
}

// TestCloseReleasesEverything: after a float32 adaptive run, Close returns
// every arena byte the placer checked out, twice in a row, and the placer
// still runs afterwards (the re-checkout contract).
func TestCloseReleasesEverything(t *testing.T) {
	d := clusteredDesign(t, 300, 2)
	e := eng()
	defer e.Close()
	base := e.ArenaStats().InUse
	opts := Defaults()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MaxIter = 80
	opts.Backend = backend.Float32()
	opts.AdaptiveGrid = true
	opts.SpectralTruncation = true
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIterations(10); err != nil {
		t.Fatal(err)
	}
	if e.ArenaStats().InUse <= base {
		t.Fatal("run should hold arena scratch")
	}
	p.Close()
	if got := e.ArenaStats().InUse; got != base {
		t.Fatalf("InUse after Close = %d, want %d", got, base)
	}
	p.Close() // idempotent
	if got := e.ArenaStats().InUse; got != base {
		t.Fatalf("InUse after second Close = %d, want %d", got, base)
	}
	if _, err := p.RunIterations(3); err != nil {
		t.Fatalf("run after Close: %v", err)
	}
	p.Close()
	if got := e.ArenaStats().InUse; got != base {
		t.Fatalf("InUse after close-run-close = %d, want %d", got, base)
	}
}
