package placer

import (
	"time"

	"xplace/internal/field"
	"xplace/internal/metrics"
	"xplace/internal/wirelength"
)

// iterateBaseline runs one GP iteration the DREAMPlace way: autograd
// gradients (see autogradGradient), density recomputed naively for the
// overflow ratio, immediate per-metric syncs, per-iteration parameter
// updates, and — as in DREAMPlace's ePlace-style Nesterov — one extra
// forward objective evaluation per iteration for the steplength
// line-search check.
func (p *Placer) iterateBaseline() error {
	e := p.eng
	d := p.d
	if err := p.ctx.Err(); err != nil {
		return err
	}
	wallStart := time.Now()
	simStart := e.SimulatedTime()

	vx, vy := p.opt.Positions()
	gamma := p.schd.Gamma
	gs := p.beginGroup()
	wa := p.autogradGradient(vx, vy, gamma, p.schd.Lambda)
	p.endGroup(gs, "op.autograd")
	lambda := p.schd.Lambda

	gs = p.beginGroup()
	if p.opts.ExtraGradient != nil {
		p.opts.ExtraGradient(p.iter, vx, vy, p.gX, p.gY)
	}
	p.pre.Apply(e, lambda, p.gX, p.gY)
	p.opt.Step(e, p.gX, p.gY)
	p.endGroup(gs, "op.optim")

	// ePlace Nesterov line-search bookkeeping: one extra forward objective
	// evaluation at the new lookahead point.
	gs = p.beginGroup()
	nvx, nvy := p.opt.Positions()
	_ = wirelength.WAForward(e, d, nvx, nvy, gamma)
	p.sys.ScatterDensity(e, d, nvx, nvy, field.MaskAll, p.sys.Total, "density.total_ls")
	_ = p.sys.SolvePoisson(e)
	p.endGroup(gs, "op.linesearch")

	// Exact HPWL and overflow as separate operators (no fusion, no
	// extraction: the cell map is scattered from scratch).
	gs = p.beginGroup()
	hpwl := wirelength.HPWL(e, d, vx, vy)
	p.sys.ScatterDensity(e, d, vx, vy, field.MaskMovable|field.MaskFixed, p.sys.D, "density.cells_ovfl")
	p.lastOverflow = p.sys.Overflow(e, d, p.sys.D, p.opts.TargetDensity)

	nWL, nD := p.l1Norms(p.wlGX, p.wlGY, p.dGX, p.dGY)
	if nWL > 0 {
		p.lastR = lambda * nD / nWL
	}
	p.endGroup(gs, "op.eval")

	// Immediate per-metric host syncs (the un-reordered path).
	e.Sync()
	e.Sync()
	rec := metrics.Record{
		Iter:     p.iter,
		HPWL:     hpwl,
		WA:       wa,
		Energy:   p.lastEnergy,
		Overflow: p.lastOverflow,
		Gamma:    gamma,
		Lambda:   lambda,
		Omega:    p.schd.Omega(),
		R:        p.lastR,
		WallTime: time.Since(wallStart),
	}
	rec.SimTime = e.SimulatedTime() - simStart
	p.rec.Add(rec)

	p.schd.Advance(hpwl, p.lastOverflow)
	p.iter++
	return nil
}
