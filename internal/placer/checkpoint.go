package placer

import (
	"fmt"

	"xplace/internal/optim"
	"xplace/internal/sched"
)

// Checkpoint is the serializable mid-trajectory state of a Placer, taken
// at an iteration boundary. It captures exactly the state that crosses
// iterations — the optimizer trajectory, the parameter schedule, the
// cached density gradient (which operator skipping may reuse), the last
// host-visible scalars and the adaptive-grid phase — so a fresh Placer
// built from the same design, options and engine worker count that
// restores a Checkpoint continues the run bit-identically to one that was
// never interrupted.
//
// Everything else a Placer holds is either reconstructed from the job
// spec (design, grid, bounds, preconditioner, kernel bodies) or
// recomputed from scratch every iteration (wirelength gradients, density
// maps, fields), and is deliberately not serialized.
//
// Float64 values survive encoding/json round trips exactly (Go emits the
// shortest decimal that parses back to the same bits), so a
// JSON-encoded Checkpoint is a faithful resume point.
type Checkpoint struct {
	// Cells guards against restoring into a different (augmented) design.
	Cells int `json:"cells"`
	// Iter is the number of completed GP iterations.
	Iter         int     `json:"iter"`
	LastOverflow float64 `json:"last_overflow"`
	LastEnergy   float64 `json:"last_energy"`
	LastR        float64 `json:"last_r"`
	LambdaInit   bool    `json:"lambda_init"`
	// Refined records the one-way coarse-to-fine switch of the
	// adaptive-grid schedule (meaningful only when AdaptiveGrid is set).
	Refined bool `json:"refined,omitempty"`
	// DGX/DGY are the cached density gradients: an early-stage resumed
	// iteration may reuse them via operator skipping (§3.1.4) instead of
	// recomputing the field.
	DGX []float64 `json:"dgx"`
	DGY []float64 `json:"dgy"`

	Sched sched.State `json:"sched"`
	Opt   optim.State `json:"opt"`
}

// Checkpoint snapshots the placer's cross-iteration state. It must be
// called at an iteration boundary — from the Options.Checkpoint hook, or
// between RunIterations calls — never concurrently with a running
// iteration. Strategies without resume support (see
// ErrStrategyNotResumable) return nil; the periodic Options.Checkpoint
// hook is never invoked for them.
func (p *Placer) Checkpoint() *Checkpoint {
	if p.lbub != nil {
		return nil
	}
	return &Checkpoint{
		Cells:        p.d.NumCells(),
		Iter:         p.iter,
		LastOverflow: p.lastOverflow,
		LastEnergy:   p.lastEnergy,
		LastR:        p.lastR,
		LambdaInit:   p.lambdaInit,
		Refined:      p.sysCoarse != nil && p.sys == p.sysFine,
		DGX:          append([]float64(nil), p.dGX...),
		DGY:          append([]float64(nil), p.dGY...),
		Sched:        p.schd.State(),
		Opt:          p.opt.State(),
	}
}

// restore loads a checkpoint into a freshly constructed placer (the
// Options.Resume path of New). The checkpoint must come from a placer
// over the same design and options; the optimizer kind and cell count
// are validated, the rest is the caller's contract.
func (p *Placer) restore(cp *Checkpoint) error {
	n := p.d.NumCells()
	if cp.Cells != n {
		return fmt.Errorf("placer: checkpoint has %d cells, design has %d", cp.Cells, n)
	}
	if len(cp.DGX) != n || len(cp.DGY) != n {
		return fmt.Errorf("placer: checkpoint density gradient has %d/%d entries, want %d",
			len(cp.DGX), len(cp.DGY), n)
	}
	if err := p.opt.Restore(cp.Opt); err != nil {
		return fmt.Errorf("placer: restoring optimizer: %w", err)
	}
	p.schd.Restore(cp.Sched)
	copy(p.dGX, cp.DGX)
	copy(p.dGY, cp.DGY)
	p.iter = cp.Iter
	p.lastOverflow = cp.LastOverflow
	p.lastEnergy = cp.LastEnergy
	p.lastR = cp.LastR
	p.lambdaInit = cp.LambdaInit
	if cp.Refined && p.sysCoarse != nil && p.sys == p.sysCoarse {
		// Replay the one-way coarse-to-fine switch: the resumed run must
		// not re-enter the coarse phase the original run already left.
		p.sys = p.sysFine
		p.sysCoarse.Release(p.eng)
	}
	return nil
}
