package placer

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"xplace/internal/metrics"
)

// Strategy selects the global-placement algorithm.
type Strategy int

const (
	// StrategyNesterov is the paper's electrostatic gradient flow: WA
	// wirelength + eDensity gradients under the Nesterov/Adam optimizer
	// (the default, and the only strategy the §3.1 operator toggles and
	// checkpoint/resume apply to).
	StrategyNesterov Strategy = iota
	// StrategyLBUB is the Coloquinte-style lower/upper-bound alternation:
	// a B2B net-model least-squares solve (lower bound) alternating with a
	// rough bin-capacity legalization (upper bound), blended by anchor
	// pseudo-nets and stopped on the LB/UB gap. Structurally independent
	// of the gradient flow, it serves as the CI quality oracle, the
	// divergence fallback and the service's cheap "draft" tier.
	StrategyLBUB
)

func (s Strategy) String() string {
	if s == StrategyLBUB {
		return "lbub"
	}
	return "nesterov"
}

// StrategyNames lists the accepted strategy names in ParseStrategy order.
func StrategyNames() []string { return []string{"nesterov", "lbub"} }

// ParseStrategy maps a CLI/request strategy name to a Strategy. The empty
// string is the default (Nesterov).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "nesterov":
		return StrategyNesterov, nil
	case "lbub":
		return StrategyLBUB, nil
	}
	return 0, fmt.Errorf("placer: unknown strategy %q (have %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// ErrDiverged marks a run the gradient flow cannot recover: an iteration
// produced non-finite or exploding wirelength/overflow. Callers (the job
// scheduler in particular) match it with errors.Is and may re-run the job
// under StrategyLBUB, whose failure profile is disjoint.
var ErrDiverged = errors.New("placer: global placement diverged")

// ErrStrategyNotResumable is returned by New when Options.Resume carries a
// checkpoint but the selected strategy does not support checkpoint/resume
// (only StrategyNesterov does). A typed error — rather than a silent
// from-scratch restart — lets the caller decide between failing the job
// and dropping the checkpoint explicitly.
var ErrStrategyNotResumable = errors.New("placer: strategy does not support checkpoint resume")

// Divergence thresholds. Legitimate runs stay many orders of magnitude
// below both (die spans are ~1e4 units, HPWL ~1e9 at the largest), while
// pathological inputs — the fuzz corpora produce pin offsets up to 1e40 —
// blow past them on the first iteration without necessarily reaching Inf.
const (
	divergedHPWL     = 1e30
	divergedOverflow = 1e9
)

// diverged classifies an iteration record as unrecoverable.
func diverged(rec metrics.Record) bool {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	return bad(rec.HPWL) || bad(rec.WA) || bad(rec.Overflow) ||
		math.Abs(rec.HPWL) > divergedHPWL || rec.Overflow > divergedOverflow
}

// LBUBParams are the tunables of the LB/UB alternation strategy,
// Coloquinte-style. Distances are in bin units (multiples of the density
// grid's bin dimension) so presets transfer across die sizes.
type LBUBParams struct {
	// MaxSteps bounds the LB/UB rounds (Options.Sched.MaxIter, when set,
	// caps it further).
	MaxSteps int
	// GapTolerance stops the run once (UB-LB)/UB falls below it.
	GapTolerance float64
	// NbInitialSteps is the number of anchor-free net-model rounds before
	// the UB targets start pulling.
	NbInitialSteps int
	// InitialPenalty is the first anchor pseudo-net weight; it grows by
	// PenaltyUpdateFactor after every anchored round.
	InitialPenalty      float64
	PenaltyUpdateFactor float64
	// PenaltyCutoffDistance floors the anchor distance so the 1/dist
	// weight stays bounded near the target (bin units).
	PenaltyCutoffDistance float64
	// ApproximationDistance floors the B2B edge length so coincident pins
	// do not produce unbounded weights (bin units).
	ApproximationDistance float64
	// MaxCGIters and CGTolerance bound each axis's conjugate-gradient
	// solve.
	MaxCGIters  int
	CGTolerance float64
}

// LBUBEffort maps a Coloquinte-style effort level (1 = fastest draft,
// 9 = highest quality; 0 selects the default, 3) to a parameter preset.
// Higher effort buys more alternation rounds, a tighter gap stop, deeper
// CG solves and gentler penalty growth.
func LBUBEffort(effort int) LBUBParams {
	if effort <= 0 {
		effort = 3
	}
	if effort > 9 {
		effort = 9
	}
	e := float64(effort)
	return LBUBParams{
		MaxSteps:              20 + 10*effort,
		GapTolerance:          0.02 + 0.25/e,
		NbInitialSteps:        2,
		InitialPenalty:        0.03,
		PenaltyUpdateFactor:   1.10 + 0.30/e,
		PenaltyCutoffDistance: 1.5,
		ApproximationDistance: 0.25,
		MaxCGIters:            30 + 20*effort,
		CGTolerance:           1e-6,
	}
}
