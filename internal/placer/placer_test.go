package placer

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/netlist"
)

// clusteredDesign builds a seeded design with locality: cells in a
// sqrt(n) x sqrt(n) logical grid, nets mostly connecting neighbours —
// a miniature standard-cell circuit.
func clusteredDesign(tb testing.TB, n int, seed int64) *netlist.Design {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Size the region for ~55% utilization, the regime of real designs.
	side := math.Sqrt(float64(n) * 0.9 * 0.9 / 0.55)
	d := netlist.NewDesign("test", geom.Rect{Hx: side, Hy: side})
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		d.AddCell("c", 0.9, 0.9, rng.Float64()*side, rng.Float64()*side, netlist.Movable)
	}
	// Neighbour nets in a logical grid + a few random long nets.
	for i := 0; i < n; i++ {
		if i+1 < n && (i+1)%cols != 0 {
			d.AddNet("h")
			d.AddPin(i, 0, 0)
			d.AddPin(i+1, 0, 0)
		}
		if i+cols < n {
			d.AddNet("v")
			d.AddPin(i, 0, 0)
			d.AddPin(i+cols, 0, 0)
		}
	}
	for i := 0; i < n/10; i++ {
		d.AddNet("r")
		deg := 3 + rng.Intn(3)
		for j := 0; j < deg; j++ {
			d.AddPin(rng.Intn(n), 0, 0)
		}
	}
	if err := d.Finish(); err != nil {
		tb.Fatal(err)
	}
	return d
}

func eng() *kernel.Engine { return kernel.New(kernel.Options{Workers: 4}) }

func TestXplaceConverges(t *testing.T) {
	d := clusteredDesign(t, 400, 1)
	opts := Defaults()
	opts.GridSize = 32
	opts.TargetDensity = 0.9
	opts.Sched.MaxIter = 600
	p, err := New(d, eng(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow > 0.10 {
		t.Errorf("overflow = %v after %d iters, want <= 0.10", res.Overflow, res.Iterations)
	}
	if res.Iterations >= 600 {
		t.Errorf("hit MaxIter without converging (overflow %v)", res.Overflow)
	}
	if len(res.X) != d.NumCells() {
		t.Errorf("result has %d cells, want %d (fillers stripped)", len(res.X), d.NumCells())
	}
	// Every movable cell inside the region.
	for c, k := range d.CellKind {
		if k != netlist.Movable {
			continue
		}
		if res.X[c] < d.Region.Lx || res.X[c] > d.Region.Hx ||
			res.Y[c] < d.Region.Ly || res.Y[c] > d.Region.Hy {
			t.Fatalf("cell %d at (%v,%v) outside region", c, res.X[c], res.Y[c])
		}
	}
	if res.HPWL <= 0 || math.IsNaN(res.HPWL) {
		t.Errorf("HPWL = %v", res.HPWL)
	}
	t.Logf("xplace: %d iters, HPWL %.1f, overflow %.3f", res.Iterations, res.HPWL, res.Overflow)
}

func TestBaselineConvergesAndQualityComparable(t *testing.T) {
	d := clusteredDesign(t, 400, 1)

	optsX := Defaults()
	optsX.GridSize = 32
	optsX.TargetDensity = 0.9
	optsX.Sched.MaxIter = 600
	pX, err := New(d, eng(), optsX)
	if err != nil {
		t.Fatal(err)
	}
	resX, err := pX.Run()
	if err != nil {
		t.Fatal(err)
	}

	optsB := BaselineDefaults()
	optsB.GridSize = 32
	optsB.TargetDensity = 0.9
	optsB.Sched.MaxIter = 600
	pB, err := New(d, eng(), optsB)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := pB.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resB.Overflow > 0.10 {
		t.Errorf("baseline overflow = %v", resB.Overflow)
	}
	ratio := resX.HPWL / resB.HPWL
	if ratio > 1.10 || ratio < 0.80 {
		t.Errorf("HPWL ratio xplace/baseline = %v (x=%v b=%v), want comparable", ratio, resX.HPWL, resB.HPWL)
	}
	t.Logf("xplace HPWL %.1f (%d iters) vs baseline %.1f (%d iters), ratio %.4f",
		resX.HPWL, resX.Iterations, resB.HPWL, resB.Iterations, ratio)
}

func TestXplaceFewerLaunchesPerIterThanBaseline(t *testing.T) {
	d := clusteredDesign(t, 300, 2)
	iters := 30

	optsX := Defaults()
	optsX.GridSize = 32
	pX, err := New(d, eng(), optsX)
	if err != nil {
		t.Fatal(err)
	}
	resX, err := pX.RunIterations(iters)
	if err != nil {
		t.Fatal(err)
	}

	optsB := BaselineDefaults()
	optsB.GridSize = 32
	pB, err := New(d, eng(), optsB)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := pB.RunIterations(iters)
	if err != nil {
		t.Fatal(err)
	}

	lx := float64(resX.Stats.Launches) / float64(iters)
	lb := float64(resB.Stats.Launches) / float64(iters)
	if lx >= lb {
		t.Errorf("launches/iter: xplace %.1f should be below baseline %.1f", lx, lb)
	}
	t.Logf("launches/iter: xplace %.1f vs baseline %.1f", lx, lb)
}

func TestResultDeterministicForSeed(t *testing.T) {
	d := clusteredDesign(t, 200, 3)
	run := func() *Result {
		opts := Defaults()
		opts.GridSize = 32
		opts.Seed = 42
		opts.Sched.MaxIter = 50
		opts.Sched.MinIter = 50
		p, err := New(d, eng(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.HPWL != b.HPWL {
		t.Errorf("same seed, different HPWL: %v vs %v", a.HPWL, b.HPWL)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("same seed, different position at cell %d", i)
		}
	}
}

func TestFixedCellsNeverMove(t *testing.T) {
	d := netlist.NewDesign("fix", geom.Rect{Hx: 50, Hy: 50})
	for i := 0; i < 100; i++ {
		d.AddCell("m", 0.8, 0.8, 25, 25, netlist.Movable)
	}
	mac := d.AddCell("macro", 10, 10, 15, 15, netlist.Fixed)
	d.AddNet("n")
	d.AddPin(0, 0, 0)
	d.AddPin(mac, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.GridSize = 32
	opts.Sched.MaxIter = 60
	opts.Sched.MinIter = 60
	p, err := New(d, eng(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.X[mac] != 15 || res.Y[mac] != 15 {
		t.Errorf("fixed macro moved to (%v, %v)", res.X[mac], res.Y[mac])
	}
}

func TestOperatorSkippingReducesDensityKernels(t *testing.T) {
	d := clusteredDesign(t, 300, 4)
	iters := 60

	run := func(skip bool) int64 {
		opts := Defaults()
		opts.GridSize = 32
		opts.OperatorSkipping = skip
		e := kernel.New(kernel.Options{Workers: 4})
		p, err := New(d, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunIterations(iters); err != nil {
			t.Fatal(err)
		}
		return e.Stats().PerOp["density.cells"].Launches
	}
	withSkip := run(true)
	without := run(false)
	if withSkip >= without {
		t.Errorf("density scatter launches with skipping %d should be below %d", withSkip, without)
	}
	t.Logf("density.cells launches: skip=%d, no-skip=%d over %d iters", withSkip, without, iters)
}

func TestStageAwareReducesParamUpdates(t *testing.T) {
	// Indirect check through the scheduler: run GP and count distinct
	// lambda values; with stage awareness the intermediate stage updates
	// less often, so for identical iteration counts it must not exceed
	// the non-stage-aware count.
	d := clusteredDesign(t, 300, 5)
	run := func(aware bool) int {
		opts := Defaults()
		opts.GridSize = 32
		opts.Sched.StageAware = aware
		opts.Sched.MaxIter = 150
		opts.Sched.MinIter = 150
		p, err := New(d, eng(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		distinct := 0
		prev := -1.0
		for _, rec := range res.Recorder.History() {
			if rec.Lambda != prev {
				distinct++
				prev = rec.Lambda
			}
		}
		return distinct
	}
	aware := run(true)
	plain := run(false)
	if aware > plain {
		t.Errorf("stage-aware lambda updates %d should be <= plain %d", aware, plain)
	}
	t.Logf("distinct lambda values: aware=%d plain=%d", aware, plain)
}

func TestExtraGradientHook(t *testing.T) {
	d := clusteredDesign(t, 100, 6)
	called := 0
	opts := Defaults()
	opts.GridSize = 32
	opts.ExtraGradient = func(iter int, x, y, gx, gy []float64) {
		called++
		if len(gx) != len(x) {
			t.Fatal("hook slice lengths mismatch")
		}
	}
	p, err := New(d, eng(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunIterations(5); err != nil {
		t.Fatal(err)
	}
	if called != 5 {
		t.Errorf("hook called %d times, want 5", called)
	}
}

// The Figure 1 modularity claim: the optimizer module is swappable.
func TestOptimizerModuleSwap(t *testing.T) {
	d := clusteredDesign(t, 200, 7)
	for _, kind := range []OptimizerKind{OptNesterov, OptAdam} {
		opts := Defaults()
		opts.GridSize = 32
		opts.Optimizer = kind
		opts.Sched.MaxIter = 400
		p, err := New(d, eng(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Overflow > 0.25 {
			t.Errorf("optimizer %v: overflow %v too high", kind, res.Overflow)
		}
	}
}

func TestRRatioSmallInEarlyStage(t *testing.T) {
	// The §3.1.4 observation: r = lambda|gradD|/|gradWL| is ultra-small
	// early in placement.
	d := clusteredDesign(t, 300, 8)
	opts := Defaults()
	opts.GridSize = 32
	opts.OperatorSkipping = false // record true r every iteration
	p, err := New(d, eng(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIterations(20)
	if err != nil {
		t.Fatal(err)
	}
	hist := res.Recorder.History()
	small := 0
	for _, rec := range hist[1:10] {
		if rec.R < 0.01 {
			small++
		}
	}
	if small < 5 {
		t.Errorf("early r should be < 0.01 most iterations, got %d/9 small", small)
	}
}

func TestNewValidatesInput(t *testing.T) {
	d := netlist.NewDesign("unfin", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell("c", 1, 1, 5, 5, netlist.Movable)
	if _, err := New(d, eng(), Defaults()); err == nil {
		t.Error("unfinished design must be rejected")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.GridSize = 33
	if _, err := New(d, eng(), opts); err == nil {
		t.Error("non-power-of-two grid must be rejected")
	}
}

func TestAutoGridSize(t *testing.T) {
	if g := autoGridSize(100); g != 32 {
		t.Errorf("autoGridSize(100) = %d", g)
	}
	if g := autoGridSize(20000); g < 128 || g > 256 {
		t.Errorf("autoGridSize(20000) = %d", g)
	}
	if g := autoGridSize(100_000_000); g != 1024 {
		t.Errorf("clamp failed: %d", g)
	}
}

func TestSigmaBlendShape(t *testing.T) {
	if s := sigmaBlend(0); s < 0.7 || s > 1 {
		t.Errorf("sigma(0) = %v, want near 0.9", s)
	}
	if s := sigmaBlend(0.5); s > 0.01 {
		t.Errorf("sigma(0.5) = %v, want near 0", s)
	}
	prev := sigmaBlend(0)
	for w := 0.05; w <= 1; w += 0.05 {
		cur := sigmaBlend(w)
		if cur > prev+1e-12 {
			t.Errorf("sigma not decreasing at omega=%v", w)
		}
		prev = cur
	}
}

func TestModeString(t *testing.T) {
	if ModeXplace.String() != "xplace" || ModeBaseline.String() != "baseline" {
		t.Error("mode strings wrong")
	}
}

// The Table 3 ablation ordering: OR and OC reduce kernel launches, OE
// reduces density-scatter compute (it costs one extra cheap launch), OS
// drops early density evaluations; the baseline tops everything.
func TestAblationOrdering(t *testing.T) {
	d := clusteredDesign(t, 400, 11)
	iters := 40
	type m struct {
		launches float64
		sim      float64
		densWork time.Duration
	}
	run := func(or, oc, oe, os bool, mode Mode) m {
		opts := Defaults()
		opts.Mode = mode
		opts.OperatorReduction = or
		opts.OperatorCombination = oc
		opts.OperatorExtraction = oe
		opts.OperatorSkipping = os
		opts.GridSize = 32
		e := kernel.New(kernel.Options{Workers: 2, LaunchOverhead: 100 * time.Microsecond})
		p, err := New(d, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunIterations(iters)
		if err != nil {
			t.Fatal(err)
		}
		var dens time.Duration
		for name, op := range res.Stats.PerOp {
			if strings.HasPrefix(name, "density.cells") || strings.HasPrefix(name, "density.total") || strings.HasPrefix(name, "density.fillers") {
				dens += op.Compute
			}
		}
		return m{
			launches: float64(res.Stats.Launches) / float64(iters),
			sim:      float64(res.SimTime) / float64(iters),
			densWork: dens,
		}
	}
	none := run(false, false, false, false, ModeXplace)
	or := run(true, false, false, false, ModeXplace)
	oc := run(true, true, false, false, ModeXplace)
	oe := run(true, true, true, false, ModeXplace)
	all := run(true, true, true, true, ModeXplace)
	base := run(false, false, false, false, ModeBaseline)

	if !(base.launches > none.launches && none.launches > or.launches && or.launches > oc.launches) {
		t.Errorf("launch ordering violated: base %.1f none %.1f OR %.1f OC %.1f",
			base.launches, none.launches, or.launches, oc.launches)
	}
	if all.launches >= oe.launches {
		t.Errorf("OS should drop launches: all %.1f vs OE %.1f", all.launches, oe.launches)
	}
	if oe.densWork >= oc.densWork {
		t.Errorf("OE should cut density scatter compute: %v vs %v", oe.densWork, oc.densWork)
	}
	if !(base.sim > none.sim && none.sim > or.sim && or.sim > all.sim) {
		t.Errorf("sim-time ordering violated: base %.3gms none %.3gms OR %.3gms all %.3gms",
			base.sim/1e6, none.sim/1e6, or.sim/1e6, all.sim/1e6)
	}
	t.Logf("launches/iter: baseline %.1f, none %.1f, +OR %.1f, +OC %.1f, +OE %.1f, all %.1f",
		base.launches, none.launches, or.launches, oc.launches, oe.launches, all.launches)
	t.Logf("sim ms/iter:   baseline %.2f, none %.2f, +OR %.2f, all %.2f",
		base.sim/1e6, none.sim/1e6, or.sim/1e6, all.sim/1e6)
}

// The gradient-engine module swap of Figure 1: the LSE wirelength model
// also converges.
func TestWirelengthModelSwap(t *testing.T) {
	d := clusteredDesign(t, 300, 21)
	for _, model := range []WirelengthModel{WLWeightedAverage, WLLogSumExp} {
		opts := Defaults()
		opts.GridSize = 32
		opts.Wirelength = model
		opts.Sched.MaxIter = 500
		p, err := New(d, eng(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Overflow > 0.10 {
			t.Errorf("model %d: overflow %v", model, res.Overflow)
		}
		t.Logf("model %d: HPWL %.1f in %d iters", model, res.HPWL, res.Iterations)
	}
}

func TestEngineReuseAcrossRuns(t *testing.T) {
	// Run two placers on one engine: Run resets accounting, so the second
	// result's stats must reflect only its own run.
	d := clusteredDesign(t, 200, 31)
	e := eng()
	opts := Defaults()
	opts.GridSize = 32
	opts.Sched.MaxIter = 30
	opts.Sched.MinIter = 30
	p1, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Launches > r1.Stats.Launches*2 {
		t.Errorf("second run stats not reset: %d vs %d launches",
			r2.Stats.Launches, r1.Stats.Launches)
	}
	if r1.Stats.Launches == 0 || r2.Stats.Launches == 0 {
		t.Error("missing engine stats")
	}
}

func TestResultRecorderMatchesIterations(t *testing.T) {
	d := clusteredDesign(t, 150, 32)
	opts := Defaults()
	opts.GridSize = 32
	p, err := New(d, eng(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunIterations(17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 17 || res.Recorder.Len() != 17 {
		t.Errorf("iterations %d, records %d, want 17/17", res.Iterations, res.Recorder.Len())
	}
}
