// Package placer is the paper's primary contribution: the Xplace global
// placement core engine (Figure 1). It wires the gradient engine
// (wirelength + electrostatic density operators), the optimizer, the
// evaluator/recorder and the scheduler into the GP loop, with every
// operator-level optimization of §3.1 individually toggleable:
//
//   - OperatorReduction (OR):   hand-derived gradients on the fast path vs
//     the autograd-driven baseline loop, in-place updates, deferred syncs.
//   - OperatorCombination (OC): WA wirelength + WA gradient + HPWL fused
//     into one kernel.
//   - OperatorExtraction (OE):  cell density map computed once and reused
//     for the total map and the overflow ratio.
//   - OperatorSkipping (OS):    early-stage density gradient reuse.
//
// Mode selects between the Xplace fast path and a DREAMPlace-style
// baseline that builds the loss with the mini autograd library and calls
// Backward every iteration — the comparator of Tables 2-4.
package placer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"xplace/internal/backend"
	"xplace/internal/field"
	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/metrics"
	"xplace/internal/netlist"
	"xplace/internal/obs"
	"xplace/internal/optim"
	"xplace/internal/sched"
	"xplace/internal/wirelength"
)

// Mode selects the gradient-engine implementation.
type Mode int

const (
	// ModeXplace is the paper's fast path: numerical gradients, fused
	// operators, no autograd.
	ModeXplace Mode = iota
	// ModeBaseline is the DREAMPlace-style comparator: the loss is built
	// from autograd operators and differentiated by Backward each
	// iteration.
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeBaseline {
		return "baseline"
	}
	return "xplace"
}

// FieldPredictor is the neural extension hook (§3.3): given the total
// density map it predicts the electric field. The placer blends the
// prediction with the numerical field by sigma(omega) (Eq. 14).
type FieldPredictor interface {
	PredictField(density []float64, nx, ny int, exOut, eyOut []float64)
}

// WirelengthModel selects the smoothed-wirelength gradient function —
// the swappable gradient-engine module of Figure 1.
type WirelengthModel int

const (
	// WLWeightedAverage is the WA model of Eq. 4/6 (the paper's choice).
	WLWeightedAverage WirelengthModel = iota
	// WLLogSumExp is the classic LSE model (NTUPlace3 / original ePlace).
	WLLogSumExp
)

// OptimizerKind selects the optimization module.
type OptimizerKind int

const (
	// OptNesterov is the ePlace Nesterov method (default).
	OptNesterov OptimizerKind = iota
	// OptAdam is plain Adam.
	OptAdam
)

// Options configures a Placer. The zero value (plus defaults) runs the
// full Xplace configuration.
type Options struct {
	Mode Mode
	// Strategy selects the global-placement algorithm: the default
	// Nesterov electrostatic flow, or the LB/UB alternation engine
	// (StrategyLBUB) used as quality oracle, draft tier and divergence
	// fallback. Mode and the operator toggles below only apply to the
	// gradient flow.
	Strategy Strategy
	// Effort tunes the LB/UB strategy's parameter preset (1 = fastest
	// draft, 9 = highest quality, 0 = default). See LBUBEffort. Ignored
	// by StrategyNesterov.
	Effort int
	// Operator-level optimization toggles (§3.1). All default to on for
	// ModeXplace via Defaults; ModeBaseline ignores them (it is the
	// everything-off comparator).
	OperatorCombination bool
	OperatorExtraction  bool
	OperatorReduction   bool
	OperatorSkipping    bool

	// GridSize is the density grid dimension M (power of two). 0 picks
	// automatically from the cell count.
	GridSize int
	// Backend selects the compute backend of the density system and the
	// optimizer state (element type + kernel bodies). nil resolves through
	// backend.Default(), i.e. the XPLACE_BACKEND environment variable,
	// falling back to the bit-exact float64 reference. Deterministic
	// harnesses should pin it explicitly.
	Backend backend.Backend
	// AdaptiveGrid, when set, starts the density system on an M/2 bin grid
	// while the §3.2 stage classifier reports "early" and the overflow is
	// high, switching (once) to the full grid as spreading progresses —
	// early iterations only need the coarse repulsion field, at a quarter
	// of the spectral-solve work.
	AdaptiveGrid bool
	// SpectralTruncation, when set, zeroes the upper half-band of the
	// Poisson spectrum during the "early" stage and skips the zeroed rows'
	// inverse transforms. The early-stage field is dominated by low modes
	// (the density is heavily smoothed), so truncation changes the
	// trajectory negligibly while saving about half the field-evaluation
	// row transforms.
	SpectralTruncation bool
	// TargetDensity is the bin density constraint D_t (default 1.0).
	TargetDensity float64
	// Seed drives the random initial placement spread.
	Seed int64
	// Optimizer selects the optimization module.
	Optimizer OptimizerKind
	// Wirelength selects the smoothed wirelength model (default WA).
	Wirelength WirelengthModel
	// AdamLR is the Adam learning rate when Optimizer == OptAdam
	// (default: one bin dimension).
	AdamLR float64
	// Sched configures parameter scheduling; Sched.StageAware and
	// Sched.SkipEnabled are overwritten from the toggles above.
	Sched sched.Options
	// Predictor, when non-nil, enables the Xplace-NN extension.
	Predictor FieldPredictor
	// ExtraGradient, when non-nil, is called after the numerical gradient
	// is assembled and may add a user-defined term (the Figure 2(b)
	// extension path). Arguments are the lookahead positions and the
	// gradient accumulators, indexed by cell of the augmented design.
	ExtraGradient func(iter int, x, y, gx, gy []float64)
	// Progress, when non-nil, receives a Snapshot after every completed GP
	// iteration (the job-runtime streaming hook). It is invoked from the
	// placement loop's goroutine; keep it cheap and do not call back into
	// the placer from it.
	Progress func(Snapshot)
	// Resume, when non-nil, restores a mid-trajectory checkpoint into the
	// freshly built placer: the run continues from the checkpointed
	// iteration bit-identically to an uninterrupted run, provided the
	// design, options and engine worker count match the checkpointing run
	// (worker count fixes the kernel chunk boundaries and therefore the
	// floating-point summation order).
	Resume *Checkpoint
	// CheckpointEvery, with the Checkpoint hook, makes the placer emit a
	// durable resume point every N completed iterations (0 disables).
	CheckpointEvery int
	// Checkpoint receives the periodic checkpoints (the durable-job hook).
	// Like Progress it runs on the placement loop's goroutine at an
	// iteration boundary; the passed Checkpoint owns its memory and may be
	// serialized asynchronously. Building a checkpoint copies the
	// optimizer state, so this path is NOT allocation-free — leave it
	// disabled for timing runs.
	Checkpoint func(*Checkpoint)
	// Tracer, when non-nil, records operator-group spans and per-iteration
	// counter tracks (omega, lambda, gamma, overflow, HPWL). Attach the
	// same tracer to the engine (Engine.SetTracer) to capture individual
	// kernel launches on the same timeline.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the paper-specific series: OC fused
	// launch savings, OE map reuses, OS skips, the §3.2 schedule gauges and
	// a per-iteration wall-time histogram. The instrument path is
	// all-atomics, so a metrics-enabled GP iteration stays allocation-free.
	Metrics *obs.Registry
}

// Snapshot is the per-iteration progress record handed to
// Options.Progress: the host-visible scalars of the iteration that just
// finished plus the §3.2 placement-stage classification.
type Snapshot struct {
	// Iter counts completed GP iterations, so it is 1-based: the snapshot
	// delivered after the first iteration has Iter == 1, and the last
	// snapshot of a run (completed, cancelled or timed out) has
	// Iter == Result.Iterations.
	Iter     int
	HPWL     float64
	WA       float64
	Overflow float64
	Gamma    float64
	Lambda   float64
	Omega    float64
	Stage    string // "early" | "intermediate" | "final" (§3.2)
	WallTime time.Duration
	SimTime  time.Duration
}

// Defaults returns the paper's full Xplace configuration.
func Defaults() Options {
	return Options{
		Mode:                ModeXplace,
		OperatorCombination: true,
		OperatorExtraction:  true,
		OperatorReduction:   true,
		OperatorSkipping:    true,
		TargetDensity:       1.0,
		Sched:               sched.Options{StageAware: true},
	}
}

// BaselineDefaults returns the DREAMPlace-style comparator configuration.
func BaselineDefaults() Options {
	o := Defaults()
	o.Mode = ModeBaseline
	o.OperatorCombination = false
	o.OperatorExtraction = false
	o.OperatorReduction = false
	o.OperatorSkipping = false
	o.Sched.StageAware = false
	return o
}

// Result is the outcome of a global placement run. X and Y are cell-center
// coordinates indexed by the ORIGINAL design's cell ids (fillers are
// stripped).
type Result struct {
	X, Y       []float64
	HPWL       float64
	Overflow   float64
	Iterations int
	WallTime   time.Duration
	SimTime    time.Duration // wall compute + simulated kernel-launch cost
	Stats      kernel.Stats
	Recorder   *metrics.Recorder
}

// Placer runs global placement for one design on one engine.
type Placer struct {
	opts Options
	eng  *kernel.Engine
	orig *netlist.Design
	d    *netlist.Design // augmented with fillers
	sys  *field.System   // active system (the coarse one until refinement)
	// Adaptive-grid state: sysFine is the full-resolution system; sysCoarse
	// is the M/2 system the run starts on when AdaptiveGrid is set (nil
	// otherwise). The coarse-to-fine switch is one-way.
	sysFine   *field.System
	sysCoarse *field.System
	pre  *optim.Preconditioner
	schd *sched.Scheduler
	opt  optim.Optimizer
	rec  *metrics.Recorder
	wl   *wirelength.Ops
	lbub *lbubEngine       // non-nil iff Options.Strategy == StrategyLBUB
	sq   *kernel.SyncQueue // private deferred-sync stream (engine-shareable)
	ctx  context.Context   // active run's context; Background outside a run

	// Observability instruments (nil-safe: a disabled tracer/registry makes
	// every use a nil-check no-op).
	tracer       *obs.Tracer
	instrumented bool // any tracer or metrics attached
	mIters       *obs.Counter
	mOCSaved     *obs.Counter
	mOEReuse     *obs.Counter
	mOSSkips     *obs.Counter
	mNNBlend     *obs.Counter
	gOmega       *obs.Gauge
	gLambda      *obs.Gauge
	gGamma       *obs.Gauge
	gOverflow    *obs.Gauge
	gNNSigma     *obs.Gauge
	gNNResidual  *obs.Gauge
	hIter        *obs.Histogram

	// Gradient buffers (cell-indexed over the augmented design).
	pinGX, pinGY   []float64
	wlGX, wlGY     []float64
	dGX, dGY       []float64
	gX, gY         []float64
	exBlend        []float64 // NN-blended field scratch
	eyBlend        []float64
	agGX, agGY     []float64 // autograd backward scratch (lazy)
	lastOverflow float64
	lastEnergy   float64
	lastR        float64
	lambdaInit   bool
	iter         int

	// Persistent kernel bodies with staged per-iteration parameters so the
	// steady-state GP loop is allocation-free (per-call closures would
	// heap-allocate every iteration).
	l1PA, l1PB             []float64 // per-chunk partials for l1Norms
	l1AX, l1AY, l1BX, l1BY []float64
	l1Body                 func(w, lo, hi int)
	curLambda              float64
	combineBody            func(lo, hi int)
	precondBody            func(lo, hi int)
	fusedGradBodies        []func(lo, hi int) // {combineBody, precondBody}, prebuilt so Fused's variadic slice never allocates
	curSigma               float64
	blendBody              func(lo, hi int)

	// Deferred-record state: the one record closure is built once and the
	// pending values staged per iteration (§3.1.3 sync reordering without a
	// per-iteration closure allocation).
	pendingRec  metrics.Record
	pendingWall time.Time
	pendingSim  time.Duration
	recordFn    func()
}

// New prepares a placer: augments the design with filler cells, builds the
// electrostatic system, preconditioner, scheduler and optimizer.
func New(d *netlist.Design, e *kernel.Engine, opts Options) (*Placer, error) {
	if !d.Finished() {
		return nil, errors.New("placer: design must be finished")
	}
	if opts.TargetDensity <= 0 {
		opts.TargetDensity = 1.0
	}
	if opts.Strategy == StrategyLBUB {
		return newLBUBPlacer(d, e, opts)
	}
	if opts.Mode == ModeBaseline {
		// The baseline is the everything-off configuration by definition.
		opts.OperatorCombination = false
		opts.OperatorExtraction = false
		opts.OperatorReduction = false
		opts.OperatorSkipping = false
		opts.Sched.StageAware = false
		opts.AdaptiveGrid = false
		opts.SpectralTruncation = false
	}
	opts.Sched.SkipEnabled = opts.OperatorSkipping

	aug := d.Clone()
	aug.AddFillers(opts.TargetDensity)
	if err := aug.Finish(); err != nil {
		return nil, fmt.Errorf("placer: augmenting design: %w", err)
	}

	m := opts.GridSize
	if m == 0 {
		m = autoGridSize(aug.NumCells())
	}
	if m&(m-1) != 0 || m <= 0 {
		return nil, fmt.Errorf("placer: grid size %d must be a power of two", m)
	}
	be := backend.Resolve(opts.Backend)
	opts.Backend = be
	grid := geom.NewGrid(d.Region, m, m)
	sys := field.NewSystemOn(grid, e, be)
	pre := optim.NewPreconditioner(aug)
	binSize := math.Sqrt(grid.Dx * grid.Dy)
	// The gamma schedule is calibrated in "reference bin" units: the die
	// split 512 ways, the grid regime the ePlace/DREAMPlace constants were
	// tuned for. Using the actual (possibly much coarser) bin size would
	// make gamma comparable to the die and collapse the design.
	gammaRef := math.Sqrt(d.Region.W()*d.Region.H()) / 512
	schd := sched.New(opts.Sched, gammaRef, pre.Omega)

	p := &Placer{
		opts: opts, eng: e, orig: d, d: aug,
		sys: sys, sysFine: sys, pre: pre, schd: schd,
		rec: &metrics.Recorder{},
		sq:  e.NewSyncQueue(),
		ctx: context.Background(),
	}
	if opts.AdaptiveGrid && m/2 >= 8 {
		mc := m / 2
		p.sysCoarse = field.NewSystemOn(geom.NewGrid(d.Region, mc, mc), e, be)
		p.sys = p.sysCoarse
	}
	n := aug.NumCells()
	p.pinGX = make([]float64, aug.NumPins())
	p.pinGY = make([]float64, aug.NumPins())
	p.wlGX = make([]float64, n)
	p.wlGY = make([]float64, n)
	p.dGX = make([]float64, n)
	p.dGY = make([]float64, n)
	p.gX = make([]float64, n)
	p.gY = make([]float64, n)
	if opts.Predictor != nil {
		p.exBlend = make([]float64, m*m)
		p.eyBlend = make([]float64, m*m)
	}

	x0, y0 := initialPositions(aug, opts.Seed)
	bounds := optim.NewBounds(aug)
	switch opts.Optimizer {
	case OptAdam:
		lr := opts.AdamLR
		if lr == 0 {
			lr = binSize
		}
		p.opt = optim.NewAdamOn(x0, y0, bounds, lr, be)
	default:
		p.opt = optim.NewNesterov(x0, y0, bounds, binSize)
	}

	wlModel := wirelength.WA
	if opts.Wirelength == WLLogSumExp {
		wlModel = wirelength.LSE
	}
	p.wl = wirelength.NewOps(e, aug, wlModel)
	p.buildBodies()
	p.initInstruments()
	if opts.Resume != nil {
		if err := p.restore(opts.Resume); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// initInstruments resolves the observability hooks. With a nil registry
// every constructor returns a nil instrument, and nil instruments no-op,
// so the disabled path costs one nil check per site (§3.1 metric names are
// documented in DESIGN.md).
func (p *Placer) initInstruments() {
	p.tracer = p.opts.Tracer
	m := p.opts.Metrics
	p.instrumented = p.tracer != nil || m != nil
	p.mIters = m.Counter("xplace_gp_iterations_total", "completed GP iterations")
	p.mOCSaved = m.Counter("xplace_oc_fused_launches_saved_total",
		"kernel launches avoided by operator combination (§3.1.1)")
	p.mOEReuse = m.Counter("xplace_oe_map_reuses_total",
		"density-map reuses from operator extraction (§3.1.2)")
	p.mOSSkips = m.Counter("xplace_os_density_skips_total",
		"density evaluations skipped by operator skipping (§3.1.4)")
	p.gOmega = m.Gauge("xplace_stage_omega", "§3.2 placement-stage progress omega")
	p.gLambda = m.Gauge("xplace_lambda", "current density weight lambda")
	p.gGamma = m.Gauge("xplace_gamma", "current wirelength smoothing gamma")
	p.gOverflow = m.Gauge("xplace_overflow", "current density overflow ratio")
	p.mNNBlend = m.Counter("xplace_nn_blend_iterations_total",
		"GP iterations that blended the neural field prediction (§3.3)")
	p.gNNSigma = m.Gauge("xplace_nn_sigma", "Eq. 14 neural blend weight sigma(omega)")
	p.gNNResidual = m.Gauge("xplace_nn_residual",
		"relative L2 residual of the predicted field vs the numerical solve")
	p.hIter = m.Histogram("xplace_iteration_seconds", "GP iteration wall time", nil)
}

// groupSpan is the staged start of one operator-group trace span; it is a
// plain value so beginning/ending a span never allocates.
type groupSpan struct {
	start time.Time
	sim   time.Duration
}

// beginGroup samples the wall and simulated clocks if tracing is on.
func (p *Placer) beginGroup() groupSpan {
	if p.tracer == nil {
		return groupSpan{}
	}
	return groupSpan{start: time.Now(), sim: p.eng.SimulatedTime()}
}

// endGroup records the operator-group span started by beginGroup.
func (p *Placer) endGroup(g groupSpan, name string) {
	if p.tracer == nil {
		return
	}
	p.tracer.Span(name, obs.CatGroup, g.start, time.Since(g.start),
		g.sim, p.eng.SimulatedTime()-g.sim, p.iter)
}

// observeIteration publishes the just-finished iteration's scalars to the
// metrics registry and the tracer's counter tracks. All instrument writes
// are atomics, so this path is allocation-free.
func (p *Placer) observeIteration() {
	rec, ok := p.rec.Last()
	if !ok {
		return
	}
	p.mIters.Inc()
	p.gOmega.Set(rec.Omega)
	p.gLambda.Set(rec.Lambda)
	p.gGamma.Set(rec.Gamma)
	p.gOverflow.Set(rec.Overflow)
	p.hIter.Observe(rec.WallTime.Seconds())
	if p.tracer != nil {
		now := time.Now()
		p.tracer.Counter("omega", now, rec.Iter, rec.Omega)
		p.tracer.Counter("lambda", now, rec.Iter, rec.Lambda)
		p.tracer.Counter("gamma", now, rec.Iter, rec.Gamma)
		p.tracer.Counter("overflow", now, rec.Iter, rec.Overflow)
		p.tracer.Counter("hpwl", now, rec.Iter, rec.HPWL)
	}
}

// buildBodies constructs the persistent per-iteration kernel bodies once.
func (p *Placer) buildBodies() {
	p.l1PA = make([]float64, p.eng.Workers())
	p.l1PB = make([]float64, p.eng.Workers())
	p.l1Body = func(w, lo, hi int) {
		ax, ay, bx, by := p.l1AX, p.l1AY, p.l1BX, p.l1BY
		var sa, sb float64
		for i := lo; i < hi; i++ {
			sa += math.Abs(ax[i]) + math.Abs(ay[i])
			sb += math.Abs(bx[i]) + math.Abs(by[i])
		}
		p.l1PA[w] = sa
		p.l1PB[w] = sb
	}
	p.combineBody = func(lo, hi int) {
		lambda := p.curLambda
		for c := lo; c < hi; c++ {
			p.gX[c] = p.wlGX[c] + lambda*p.dGX[c]
			p.gY[c] = p.wlGY[c] + lambda*p.dGY[c]
		}
	}
	p.precondBody = func(lo, hi int) {
		p.pre.ApplyRange(p.curLambda, p.gX, p.gY, lo, hi)
	}
	p.fusedGradBodies = []func(lo, hi int){p.combineBody, p.precondBody}
	p.blendBody = func(lo, hi int) {
		sigma := p.curSigma
		for i := lo; i < hi; i++ {
			p.sys.Ex[i] = (1-sigma)*p.sys.Ex[i] + sigma*p.exBlend[i]
			p.sys.Ey[i] = (1-sigma)*p.sys.Ey[i] + sigma*p.eyBlend[i]
		}
	}
	p.recordFn = func() {
		p.pendingRec.WallTime = time.Since(p.pendingWall)
		p.pendingRec.SimTime = p.eng.SimulatedTime() - p.pendingSim
		p.rec.Add(p.pendingRec)
	}
}

// autoGridSize picks the density grid dimension: roughly sqrt(numCells)
// rounded to a power of two, clamped to [32, 1024].
func autoGridSize(cells int) int {
	target := int(math.Sqrt(float64(cells)))
	m := 32
	for m < target && m < 1024 {
		m <<= 1
	}
	return m
}

// initialPositions prepares the starting state. If the design already
// provides a spread placement for its movable cells (ISPD inputs do), it
// is kept — the warm-start lambda schedule assumes a spread start. A
// degenerate input (all movable cells clustered within 2% of the die) is
// replaced by a seeded uniform spread over the region.
func initialPositions(d *netlist.Design, seed int64) (x, y []float64) {
	n := d.NumCells()
	x = append(make([]float64, 0, n), d.CellX...)
	y = append(make([]float64, 0, n), d.CellY...)
	var mx, my, sx, sy float64
	nm := 0
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Movable {
			mx += x[c]
			my += y[c]
			nm++
		}
	}
	if nm == 0 {
		return x, y
	}
	mx /= float64(nm)
	my /= float64(nm)
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Movable {
			sx += (x[c] - mx) * (x[c] - mx)
			sy += (y[c] - my) * (y[c] - my)
		}
	}
	sx = math.Sqrt(sx / float64(nm))
	sy = math.Sqrt(sy / float64(nm))
	if sx > 0.02*d.Region.W() || sy > 0.02*d.Region.H() {
		return x, y // already spread
	}
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < n; c++ {
		if d.CellKind[c] == netlist.Movable {
			x[c] = d.Region.Lx + rng.Float64()*d.Region.W()
			y[c] = d.Region.Ly + rng.Float64()*d.Region.H()
		}
	}
	return x, y
}

// Design returns the augmented design the placer operates on (fillers
// included) — useful for extension hooks.
func (p *Placer) Design() *netlist.Design { return p.d }

// Recorder returns the metrics recorder.
func (p *Placer) Recorder() *metrics.Recorder { return p.rec }

// Scheduler exposes the parameter scheduler (for inspection in tests and
// experiment harnesses).
func (p *Placer) Scheduler() *sched.Scheduler { return p.schd }

// Run executes the GP loop to convergence and returns the result mapped
// back to the original design's cells.
func (p *Placer) Run() (*Result, error) { return p.RunContext(context.Background()) }

// RunContext executes the GP loop to convergence under ctx. Cancellation
// is checked between kernel launches (at operator-group boundaries inside
// each iteration), so a cancelled run stops with no scratch mid-checkout;
// the returned error is then ctx.Err() (context.Canceled or
// context.DeadlineExceeded) alongside a PARTIAL result: the positions,
// metrics and stats of the iterations that did complete, with
// Result.Iterations equal to the last delivered Snapshot.Iter. A cancelled
// placer remains valid: call Close to return its arena-backed scratch to
// the engine, or RunContext again to resume iterating from the current
// state.
func (p *Placer) RunContext(ctx context.Context) (*Result, error) {
	start := time.Now()
	p.eng.Reset()
	if ctx == nil {
		ctx = context.Background()
	}
	p.ctx = ctx
	defer func() { p.ctx = context.Background() }()
	// The stop test leads the iteration so a run resumed from a checkpoint
	// taken at its natural end does not run an extra iteration. A fresh
	// placer can never start done (iter 0 is below MinIter), so this is
	// the same loop as the classic iterate-then-test form for new runs.
	for !p.done() {
		if err := p.RunIteration(); err != nil {
			return p.finalize(start), err
		}
	}
	return p.finalize(start), nil
}

// done is the strategy-dispatched convergence test.
func (p *Placer) done() bool {
	if p.lbub != nil {
		return p.lbubDone()
	}
	return p.schd.Done(p.lastOverflow)
}

// RunIterations executes exactly n GP iterations (for per-iteration timing
// experiments) and returns the result so far.
func (p *Placer) RunIterations(n int) (*Result, error) {
	start := time.Now()
	p.eng.Reset()
	for i := 0; i < n; i++ {
		if err := p.RunIteration(); err != nil {
			return nil, err
		}
	}
	return p.finalize(start), nil
}

// RunIteration executes a single GP iteration (one LB/UB round under
// StrategyLBUB).
func (p *Placer) RunIteration() error {
	var err error
	switch {
	case p.lbub != nil:
		err = p.iterateLBUB()
	case p.opts.Mode == ModeBaseline:
		err = p.iterateBaseline()
	default:
		err = p.iterateXplace()
	}
	if err != nil {
		return err
	}
	// Divergence guard for the gradient flow: a non-finite or exploding
	// iteration cannot recover (every later step compounds it), so fail
	// fast with the typed error the fallback path keys on. The LB/UB
	// strategy clamps its solves into the region and cannot diverge this
	// way.
	if p.lbub == nil {
		if rec, ok := p.rec.Last(); ok && diverged(rec) {
			return fmt.Errorf("placer: iteration %d: hpwl=%g overflow=%g: %w",
				rec.Iter, rec.HPWL, rec.Overflow, ErrDiverged)
		}
	}
	if p.instrumented {
		p.observeIteration()
	}
	if p.opts.Progress != nil {
		p.opts.Progress(p.snapshot())
	}
	if p.lbub == nil && p.opts.Checkpoint != nil && p.opts.CheckpointEvery > 0 &&
		p.iter%p.opts.CheckpointEvery == 0 {
		p.opts.Checkpoint(p.Checkpoint())
	}
	return nil
}

// snapshot assembles the progress record of the iteration that just
// finished from the recorder's last entry.
func (p *Placer) snapshot() Snapshot {
	rec, _ := p.rec.Last()
	stage := sched.StageName(rec.Omega)
	if p.lbub != nil {
		// Under LB/UB, Omega carries the gap, not the §3.2 progress.
		stage = "lbub"
	}
	return Snapshot{
		Iter:     rec.Iter + 1, // recorder iters are 0-based; see Snapshot.Iter
		HPWL:     rec.HPWL,
		WA:       rec.WA,
		Overflow: rec.Overflow,
		Gamma:    rec.Gamma,
		Lambda:   rec.Lambda,
		Omega:    rec.Omega,
		Stage:    stage,
		WallTime: rec.WallTime,
		SimTime:  rec.SimTime,
	}
}

// Close returns the placer's arena-backed scratch (the spectral plans'
// buffers, the density systems' backend buffers, the wirelength partials)
// to the engine, dropping the engine arena's in-use bytes back to their
// pre-placer baseline. Call it when the placer is done — in particular
// after a cancelled or timed-out run, so pooled engines do not accumulate
// dead checkouts. Close is idempotent (every link of the release chain —
// System.Release, Plan.Release, Ops.Release — tolerates a second call);
// a closed placer may still be run (the scratch is simply checked out
// again).
func (p *Placer) Close() {
	p.sq.Flush()
	if p.wl != nil {
		p.wl.Release()
	}
	if p.sysFine != nil {
		p.sysFine.Release(p.eng)
	}
	if p.sysCoarse != nil {
		p.sysCoarse.Release(p.eng)
	}
}

func (p *Placer) finalize(start time.Time) *Result {
	var ux, uy []float64
	if p.lbub != nil {
		// The UB solution (rough-legalized) is the deliverable; before the
		// first round completes, fall back to the initial LB positions.
		ux, uy = p.lbub.ubX, p.lbub.ubY
		if !p.lbub.haveUB {
			ux, uy = p.lbub.lbX, p.lbub.lbY
		}
	} else {
		ux, uy = p.opt.Current()
	}
	n := p.orig.NumCells()
	res := &Result{
		X:          append(make([]float64, 0, n), ux[:n]...),
		Y:          append(make([]float64, 0, n), uy[:n]...),
		Overflow:   p.lastOverflow,
		Iterations: p.iter,
		WallTime:   time.Since(start),
		Recorder:   p.rec,
		Stats:      p.eng.Stats(),
	}
	res.SimTime = res.Stats.Simulated
	res.HPWL = p.orig.HPWL(res.X, res.Y)
	return res
}

// l1Norms computes sum|ax|+|ay| over all cells for two gradient pairs in
// one kernel (used for the r ratio and lambda initialization).
func (p *Placer) l1Norms(ax, ay, bx, by []float64) (na, nb float64) {
	p.l1AX, p.l1AY, p.l1BX, p.l1BY = ax, ay, bx, by
	used := p.eng.LaunchChunks("placer.grad_norms", len(ax), p.l1Body)
	for w := 0; w < used; w++ {
		na += p.l1PA[w]
		nb += p.l1PB[w]
	}
	return na, nb
}

// metricsRecord assembles the per-iteration metrics record (the host-visible
// scalars; WallTime/SimTime are filled at sync time).
func metricsRecord(p *Placer, hpwl, wa, gamma, lambda float64) metrics.Record {
	return metrics.Record{
		Iter:     p.iter,
		HPWL:     hpwl,
		WA:       wa,
		Energy:   p.lastEnergy,
		Overflow: p.lastOverflow,
		Gamma:    gamma,
		Lambda:   lambda,
		Omega:    p.schd.Omega(),
		R:        p.lastR,
	}
}

// sigmaBlend is the sigma(omega) weighting of Eq. 14 that hands the early
// placement stage (small omega) to the neural field and fades it out as
// omega grows so the numerical gradient drives fine-grained spreading.
//
// The formula as printed in the paper, 1 - 1/(1 - 5e^(omega/0.05 - 0.5)),
// stays >= 1 for all omega and never decays, contradicting the
// surrounding text ("when sigma drops, grad D takes effect"); the evident
// intent is the decreasing logistic gate with the same constants:
//
//	sigma(omega) = 1 - 1/(1 + 5*e^(0.5 - omega/0.05))
//
// which starts near 0.9 at omega=0 and falls below 0.05 past omega~0.25.
func sigmaBlend(omega float64) float64 {
	return 1 - 1/(1+5*math.Exp(0.5-omega/0.05))
}

// fieldResidual measures the relative L2 distance between the predicted
// field (exBlend/eyBlend) and the numerical solve (sys.Ex/Ey), both
// directions combined. Only evaluated when instrumentation is attached —
// it is a host-side reduction over the full grid.
func (p *Placer) fieldResidual() float64 {
	var diff, ref float64
	ex, ey := p.sys.Ex, p.sys.Ey
	for i := range ex {
		dx := p.exBlend[i] - ex[i]
		dy := p.eyBlend[i] - ey[i]
		diff += dx*dx + dy*dy
		ref += ex[i]*ex[i] + ey[i]*ey[i]
	}
	if ref < 1e-12 {
		ref = 1e-12
	}
	return math.Sqrt(diff / ref)
}
