package placer

import (
	"time"

	"xplace/internal/field"
	"xplace/internal/sched"
	"xplace/internal/wirelength"
)

// coarseOverflowExit is the overflow below which the adaptive-grid run
// abandons the coarse system even inside the early stage: the cells are
// spread enough that the fine field is worth its cost. Kept conservative
// — the coarse field stops resolving inter-cell structure well before the
// overflow target, and refining late costs wirelength.
const coarseOverflowExit = 0.6

// maybeRefineGrid performs the one-way coarse-to-fine switch of the
// adaptive-grid schedule: stay on the M/2 system while the §3.2 classifier
// reports "early" AND the overflow is still high; refine otherwise. The
// coarse system's arena scratch is returned immediately on the switch.
func (p *Placer) maybeRefineGrid() {
	if p.sys != p.sysCoarse || p.sysCoarse == nil || p.iter == 0 {
		return
	}
	if sched.StageName(p.schd.Omega()) == "early" && p.lastOverflow > coarseOverflowExit {
		return
	}
	p.sys = p.sysFine
	p.sysCoarse.Release(p.eng)
}

// updateTruncation applies the stage-driven spectral truncation schedule:
// during the early stage the Poisson solve keeps only the lower half-band
// in each direction (and skips the zeroed rows' transforms); afterwards
// the full spectrum is restored.
func (p *Placer) updateTruncation() {
	if !p.opts.SpectralTruncation {
		return
	}
	if sched.StageName(p.schd.Omega()) == "early" {
		p.sys.SetTruncation(p.sys.Nx/2, p.sys.Ny/2)
	} else {
		p.sys.SetTruncation(0, 0)
	}
}

// iterateXplace runs one GP iteration of the Xplace framework with the
// operator-level optimizations of §3.1 applied per the option toggles:
//
//   - OperatorReduction on: hand-derived numerical gradients assembled by
//     fused kernels, in-place optimizer updates, deferred metric syncs.
//     Off: gradients via the autograd engine (twice the small-kernel
//     launches), immediate syncs — the ablation's "none" starting point.
//   - OperatorCombination fuses WA wirelength + gradient + HPWL into one
//     kernel, and gradient combination + preconditioning into another.
//   - OperatorExtraction computes the cell density map once for both the
//     total map and the overflow ratio.
//   - OperatorSkipping reuses the cached density gradient early on.
//
// The iteration is allocation-free in steady state: every kernel body is
// persistent (built once in buildBodies/NewOps/NewSystem), scratch lives in
// preallocated buffers or the engine arena, and the deferred metric record
// reuses one staged closure.
func (p *Placer) iterateXplace() error {
	e := p.eng
	d := p.d
	if err := p.ctx.Err(); err != nil {
		return err
	}
	wallStart := time.Now()
	simStart := e.SimulatedTime()

	vx, vy := p.opt.Positions()
	gamma := p.schd.Gamma

	var wa, hpwl float64
	if p.opts.OperatorReduction {
		// --- Numerical gradient path (OR on) --------------------------

		// Wirelength operators (model selected by Options.Wirelength).
		gs := p.beginGroup()
		if p.opts.OperatorCombination {
			// OC: smoothed wirelength + gradient + HPWL in one kernel.
			res := p.wl.Fused(vx, vy, gamma, p.pinGX, p.pinGY)
			wa, hpwl = res.WA, res.HPWL
			p.mOCSaved.Add(2) // three kernels' work in one launch
		} else {
			wa = p.wl.Grad(vx, vy, gamma, p.pinGX, p.pinGY)
			hpwl = p.wl.HPWL(vx, vy)
		}
		p.wl.PinToCell(p.pinGX, p.pinGY, p.wlGX, p.wlGY)
		p.endGroup(gs, "op.wirelength")

		// Cancellation point between the wirelength and density operator
		// groups: every kernel so far has completed and no arena scratch is
		// mid-checkout, so a killed job stops cleanly here.
		if err := p.ctx.Err(); err != nil {
			return err
		}

		// Density operators (possibly skipped, §3.1.4).
		skip := p.schd.ShouldSkipDensity(p.lastR) && p.iter > 0
		if !skip {
			gs = p.beginGroup()
			p.computeDensity(vx, vy)
			p.endGroup(gs, "op.density")
		} else {
			p.mOSSkips.Inc()
		}

		// Gradient assembly.
		gs = p.beginGroup()
		if !p.lambdaInit {
			nWL, nD := p.l1Norms(p.wlGX, p.wlGY, p.dGX, p.dGY)
			p.schd.InitLambda(nWL, nD)
			p.lambdaInit = true
		}
		p.curLambda = p.schd.Lambda
		if p.opts.OperatorCombination && p.opts.ExtraGradient == nil {
			// OC also fuses gradient combination with preconditioning:
			// one launch instead of two (the Fused helper — §3.1.1 applied
			// to the assembly stage).
			e.Fused("placer.fused_grad", len(p.gX), p.fusedGradBodies...)
			p.mOCSaved.Inc()
		} else {
			e.Launch("placer.combine_grad", len(p.gX), p.combineBody)
		}
		if !skip {
			nWL, nD := p.l1Norms(p.wlGX, p.wlGY, p.dGX, p.dGY)
			if nWL > 0 {
				p.lastR = p.curLambda * nD / nWL
			}
		}
		p.endGroup(gs, "op.grad_assembly")
	} else {
		// --- Autograd path (OR off) -----------------------------------
		gs := p.beginGroup()
		wa = p.autogradGradient(vx, vy, gamma, p.schd.Lambda)
		p.endGroup(gs, "op.autograd")
		gs = p.beginGroup()
		hpwl = wirelength.HPWL(e, d, vx, vy)
		// Overflow needs the cell map; without extraction it is scattered
		// from scratch.
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskMovable|field.MaskFixed, p.sys.D, "density.cells_ovfl")
		p.lastOverflow = p.sys.Overflow(e, d, p.sys.D, p.opts.TargetDensity)
		nWL, nD := p.l1Norms(p.wlGX, p.wlGY, p.dGX, p.dGY)
		if nWL > 0 {
			p.lastR = p.schd.Lambda * nD / nWL
		}
		p.endGroup(gs, "op.eval")
	}

	// Second cancellation point: gradient assembled, optimizer step not yet
	// taken — bailing out here leaves positions at the previous iterate.
	if err := p.ctx.Err(); err != nil {
		return err
	}

	lambda := p.schd.Lambda
	gs := p.beginGroup()
	fusedPre := p.opts.OperatorReduction && p.opts.OperatorCombination && p.opts.ExtraGradient == nil
	if !fusedPre {
		if p.opts.ExtraGradient != nil {
			p.opts.ExtraGradient(p.iter, vx, vy, p.gX, p.gY)
		}
		p.pre.Apply(e, lambda, p.gX, p.gY)
	}
	p.opt.Step(e, p.gX, p.gY)
	p.endGroup(gs, "op.optim")

	gs = p.beginGroup()
	rec := metricsRecord(p, hpwl, wa, gamma, lambda)
	if p.opts.OperatorReduction {
		// OR: the metric copy-back is a host sync; defer it to the end of
		// the iteration (§3.1.3 sync reordering). The record closure is
		// persistent; only its inputs are staged here.
		p.pendingRec = rec
		p.pendingWall = wallStart
		p.pendingSim = simStart
		p.sq.Defer("placer.record", p.recordFn)
		p.sq.Flush()
	} else {
		// Immediate per-metric syncs.
		e.Sync()
		e.Sync()
		rec.WallTime = time.Since(wallStart)
		rec.SimTime = e.SimulatedTime() - simStart
		p.rec.Add(rec)
	}

	p.schd.Advance(hpwl, p.lastOverflow)
	p.endGroup(gs, "op.sched_record")
	p.iter++
	return nil
}

// computeDensity evaluates the full electrostatic system at (vx, vy):
// density maps (extracted or naive per the OE toggle), overflow, Poisson
// solve, optional neural blending, and the field gather into p.dGX/p.dGY.
func (p *Placer) computeDensity(vx, vy []float64) {
	e := p.eng
	d := p.d
	p.maybeRefineGrid()
	p.updateTruncation()
	if p.sys == p.sysCoarse {
		// Coarse phase of the adaptive-grid schedule. The overflow ratio is
		// NOT computed on the coarse grid: bins several cells wide average
		// the density below the target and the scheduler would see a nearly
		// converged placement on iteration one. Instead the cell map is
		// scattered on the fine grid just for OVFL (a scatter is far cheaper
		// than the spectral solve being saved), while the total map, the
		// Poisson solve and the field gather all run at coarse resolution.
		p.sysFine.ScatterDensity(e, d, vx, vy, field.MaskMovable|field.MaskFixed, p.sysFine.D, "density.cells_ovfl")
		p.lastOverflow = p.sysFine.Overflow(e, d, p.sysFine.D, p.opts.TargetDensity)
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskAll, p.sys.Total, "density.total_coarse")
		p.lastEnergy = p.sys.SolvePoisson(e)
		p.sys.GatherField(e, d, vx, vy, field.MaskPlaceable, p.dGX, p.dGY)
		return
	}
	if p.opts.OperatorExtraction {
		// OE (§3.1.2, Figure 2a): D once, D_fl once, cheap add, OVFL
		// reuses D.
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskMovable|field.MaskFixed, p.sys.D, "density.cells")
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskFiller, p.sys.Dfl, "density.fillers")
		p.sys.AddMaps(e, p.sys.D, p.sys.Dfl, p.sys.Total)
		p.mOEReuse.Inc() // OVFL below reuses D instead of re-scattering
	} else {
		// Naive: total map in one pass, then a second full scatter of
		// the non-filler cells just for the overflow ratio.
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskAll, p.sys.Total, "density.total")
		p.sys.ScatterDensity(e, d, vx, vy, field.MaskMovable|field.MaskFixed, p.sys.D, "density.cells_ovfl")
	}
	p.lastOverflow = p.sys.Overflow(e, d, p.sys.D, p.opts.TargetDensity)
	p.lastEnergy = p.sys.SolvePoisson(e)

	// Neural extension (§3.3): blend the predicted field into the
	// numerical one with sigma(omega) before gathering. Once sigma
	// underflows the cutoff the predictor is never called again and this
	// path is bit-identical to the predictor-free placer.
	if p.opts.Predictor != nil {
		sigma := sigmaBlend(p.schd.Omega())
		p.gNNSigma.Set(sigma)
		if sigma > 1e-3 {
			gs := p.beginGroup()
			p.opts.Predictor.PredictField(p.sys.Total, p.sys.Nx, p.sys.Ny, p.exBlend, p.eyBlend)
			if p.instrumented {
				p.gNNResidual.Set(p.fieldResidual())
			}
			p.curSigma = sigma
			e.Launch("nn.blend_field", len(p.sys.Ex), p.blendBody)
			p.mNNBlend.Inc()
			p.endGroup(gs, "op.nn")
		}
	}
	p.sys.GatherField(e, d, vx, vy, field.MaskPlaceable, p.dGX, p.dGY)
}
