package placer

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"xplace/internal/geom"
	"xplace/internal/kernel"
	"xplace/internal/metrics"
	"xplace/internal/netlist"
	"xplace/internal/obs"
	"xplace/internal/optim"
)

// lbubEngine is the state of the LB/UB alternation strategy (Coloquinte's
// global-placement scheme; ROADMAP "robustness mode"). Each round runs
//
//	LB: a B2B net-model least-squares solve per axis — the wirelength
//	    lower bound — with anchor pseudo-nets pulling toward the last UB
//	    targets once the initial rounds are done;
//	UB: a rough legalization that assigns cells to density-grid bins
//	    under bin-capacity targets and packs them — the wirelength upper
//	    bound and the anchor targets of the next LB pass.
//
// The run stops when the relative gap (UB-LB)/UB falls below the preset's
// tolerance. Unlike the gradient flow there are no fillers, no spectral
// solve and no optimizer state: the strategy shares only the netlist, the
// bin grid and the CG machinery, which is exactly what makes it useful as
// an independent quality oracle and divergence fallback.
type lbubEngine struct {
	prm  LBUBParams
	grid geom.Grid

	// Cell-indexed positions over the (unaugmented) design. Fixed cells
	// keep their input coordinates in every slice.
	lbX, lbY   []float64 // lower-bound solution (net-model solve)
	ubX, ubY   []float64 // upper-bound solution (rough legalization)
	tgtX, tgtY []float64 // anchor targets = previous UB solution

	lbHPWL, ubHPWL float64
	gap            float64
	penalty        float64
	haveUB         bool

	movable  []int
	strength []float64 // per-cell anchor strength sqrt(area/avgArea)
	order    []int     // UB assignment order scratch
	cellBin  []int32   // UB bin assignment scratch

	binCap  []float64 // free capacity per bin (target density minus fixed)
	binUsed []float64
	binCurX []float64 // per-bin row-packing cursors
	binCurY []float64
	binRowH []float64

	qb optim.QuadBuilder
	cg optim.CG

	// Strategy-specific instruments (nil-safe like the placer's own).
	mSteps *obs.Counter
	gGap   *obs.Gauge
	gLB    *obs.Gauge
	gUB    *obs.Gauge
}

// newLBUBPlacer builds a Placer running the LB/UB alternation strategy.
// The gradient flow's machinery (fillers, field system, wirelength ops,
// scheduler, optimizer) is deliberately not constructed; the shared
// Placer surface (RunContext, Progress, Recorder, instruments, Close)
// behaves identically.
func newLBUBPlacer(d *netlist.Design, e *kernel.Engine, opts Options) (*Placer, error) {
	if opts.Resume != nil {
		return nil, fmt.Errorf("placer: strategy %v: %w", opts.Strategy, ErrStrategyNotResumable)
	}
	m := opts.GridSize
	if m == 0 {
		m = autoGridSize(d.NumCells())
	}
	if m&(m-1) != 0 || m <= 0 {
		return nil, fmt.Errorf("placer: grid size %d must be a power of two", m)
	}
	p := &Placer{
		opts: opts, eng: e, orig: d, d: d,
		rec: &metrics.Recorder{},
		sq:  e.NewSyncQueue(),
		ctx: context.Background(),
	}
	p.initLBUB(lbubGridSize(d, m, opts.TargetDensity))
	p.initInstruments()
	p.initLBUBInstruments()
	return p, nil
}

// lbubGridSize coarsens the requested density-grid dimension until one
// bin's capacity holds several average cells and at least the largest
// movable cell — the UB pass assigns whole cells to bins, so bins
// smaller than a cell would force every assignment onto the no-fit
// fallback path and collapse the upper bound.
func lbubGridSize(d *netlist.Design, m int, targetDensity float64) geom.Grid {
	var maxA, sumA float64
	nm := 0
	for c := 0; c < d.NumCells(); c++ {
		if d.CellKind[c] != netlist.Movable {
			continue
		}
		a := d.CellW[c] * d.CellH[c]
		sumA += a
		if a > maxA {
			maxA = a
		}
		nm++
	}
	if nm > 0 {
		avgA := sumA / float64(nm)
		for m > 1 {
			cap := d.Region.W() / float64(m) * (d.Region.H() / float64(m)) * targetDensity
			if cap >= 4*avgA && cap >= 1.5*maxA {
				break
			}
			m /= 2
		}
	}
	return geom.NewGrid(d.Region, m, m)
}

func (p *Placer) initLBUB(grid geom.Grid) {
	d := p.d
	n := d.NumCells()
	lb := &lbubEngine{prm: LBUBEffort(p.opts.Effort), grid: grid}
	if mi := p.opts.Sched.MaxIter; mi > 0 && mi < lb.prm.MaxSteps {
		lb.prm.MaxSteps = mi
	}
	lb.penalty = lb.prm.InitialPenalty

	x0, y0 := initialPositions(d, p.opts.Seed)
	lb.lbX, lb.lbY = x0, y0
	lb.ubX = append(make([]float64, 0, n), x0...)
	lb.ubY = append(make([]float64, 0, n), y0...)
	lb.tgtX = append(make([]float64, 0, n), x0...)
	lb.tgtY = append(make([]float64, 0, n), y0...)

	lb.movable = d.MovableCells()
	lb.strength = make([]float64, n)
	if len(lb.movable) > 0 {
		avg := d.MovableArea() / float64(len(lb.movable))
		for _, c := range lb.movable {
			if avg > 0 {
				lb.strength[c] = math.Sqrt(d.CellW[c] * d.CellH[c] / avg)
			} else {
				lb.strength[c] = 1
			}
		}
	}
	lb.cellBin = make([]int32, n)

	nb := grid.NumBins()
	lb.binCap = make([]float64, nb)
	lb.binUsed = make([]float64, nb)
	lb.binCurX = make([]float64, nb)
	lb.binCurY = make([]float64, nb)
	lb.binRowH = make([]float64, nb)
	target := p.opts.TargetDensity * grid.BinArea()
	for i := range lb.binCap {
		lb.binCap[i] = target
	}
	// Fixed cells consume bin capacity where they overlap the grid.
	for c := 0; c < n; c++ {
		if d.CellKind[c] != netlist.Fixed {
			continue
		}
		r := d.CellRect(c).Intersect(grid.Region)
		if r.Empty() {
			continue
		}
		x0b, x1b, y0b, y1b := grid.BinRange(r)
		for iy := y0b; iy < y1b; iy++ {
			for ix := x0b; ix < x1b; ix++ {
				ov := r.Intersect(grid.BinRect(ix, iy)).Area()
				idx := iy*grid.Nx + ix
				lb.binCap[idx] = math.Max(0, lb.binCap[idx]-ov)
			}
		}
	}
	p.lbub = lb
}

func (p *Placer) initLBUBInstruments() {
	m := p.opts.Metrics
	lb := p.lbub
	lb.mSteps = m.Counter("xplace_lbub_steps_total", "completed LB/UB alternation rounds")
	lb.gGap = m.Gauge("xplace_lbub_gap", "relative LB/UB wirelength gap (UB-LB)/UB")
	lb.gLB = m.Gauge("xplace_lbub_lb_hpwl", "lower-bound (net-model solve) HPWL")
	lb.gUB = m.Gauge("xplace_lbub_ub_hpwl", "upper-bound (rough-legalized) HPWL")
}

// lbubDone is the strategy's stop test: the gap tolerance is consulted
// only once at least one anchored round has run, so degenerate inputs
// still get a blended solution.
func (p *Placer) lbubDone() bool {
	lb := p.lbub
	if p.iter >= lb.prm.MaxSteps {
		return true
	}
	if !lb.haveUB || p.iter <= lb.prm.NbInitialSteps {
		return false
	}
	return lb.gap <= lb.prm.GapTolerance
}

// iterateLBUB runs one LB/UB round.
func (p *Placer) iterateLBUB() error {
	lb := p.lbub
	d := p.d
	if err := p.ctx.Err(); err != nil {
		return err
	}
	wallStart := time.Now()
	simStart := p.eng.SimulatedTime()

	useAnchors := lb.haveUB && p.iter >= lb.prm.NbInitialSteps
	gs := p.beginGroup()
	p.lbubSolveAxis(lb.lbX, d.PinOffX, lb.tgtX, d.CellW,
		d.Region.Lx, d.Region.Hx, lb.grid.Dx, useAnchors)
	p.lbubSolveAxis(lb.lbY, d.PinOffY, lb.tgtY, d.CellH,
		d.Region.Ly, d.Region.Hy, lb.grid.Dy, useAnchors)
	p.endGroup(gs, "lbub.lower_bound")

	// Cancellation point between the two passes: the LB state is
	// consistent and no engine scratch is mid-checkout.
	if err := p.ctx.Err(); err != nil {
		return err
	}

	gs = p.beginGroup()
	p.lbubUpperBound()
	p.endGroup(gs, "lbub.upper_bound")

	lb.lbHPWL = d.HPWL(lb.lbX, lb.lbY)
	lb.ubHPWL = d.HPWL(lb.ubX, lb.ubY)
	if lb.ubHPWL > 0 {
		lb.gap = math.Max(0, (lb.ubHPWL-lb.lbHPWL)/lb.ubHPWL)
	} else {
		lb.gap = 0
	}
	p.lastOverflow = lb.overflow(d.MovableArea())

	// Record mapping: HPWL carries the UB (deliverable) series, WA the LB
	// series, Lambda the anchor penalty, Omega the gap — so the existing
	// recorder/CSV/Progress plumbing shows both bounds converging.
	p.rec.Add(metrics.Record{
		Iter:     p.iter,
		HPWL:     lb.ubHPWL,
		WA:       lb.lbHPWL,
		Overflow: p.lastOverflow,
		Lambda:   lb.penalty,
		Omega:    lb.gap,
		WallTime: time.Since(wallStart),
		SimTime:  p.eng.SimulatedTime() - simStart,
	})
	lb.mSteps.Inc()
	lb.gGap.Set(lb.gap)
	lb.gLB.Set(lb.lbHPWL)
	lb.gUB.Set(lb.ubHPWL)

	if useAnchors {
		lb.penalty *= lb.prm.PenaltyUpdateFactor
	}
	p.iter++
	return nil
}

// lbubSolveAxis builds and solves one axis's B2B least-squares system at
// the current reference positions x, writing the solution back into x
// (the warm start keeps CG cheap after the first rounds). sizes carries
// the axis cell dimension, [lo, hi] the region extent and binDim the bin
// dimension that scales the preset's distance parameters.
func (p *Placer) lbubSolveAxis(x, off, tgt, sizes []float64, lo, hi, binDim float64, useAnchors bool) {
	lb := p.lbub
	d := p.d
	qb := &lb.qb
	qb.Reset(d.NumCells())
	eps := math.Max(1e-12, lb.prm.ApproximationDistance*binDim)

	addEdge := func(pi, pj int, invDeg float64) {
		ci, cj := d.PinCell[pi], d.PinCell[pj]
		if ci == cj {
			return // same-cell span is constant in the variables
		}
		vi := x[ci] + off[pi]
		vj := x[cj] + off[pj]
		w := invDeg / math.Max(eps, math.Abs(vi-vj))
		fi := d.CellKind[ci] != netlist.Movable
		fj := d.CellKind[cj] != netlist.Movable
		switch {
		case fi && fj:
		case fi:
			qb.AddAnchor(cj, w, vi-off[pj])
		case fj:
			qb.AddAnchor(ci, w, vj-off[pi])
		default:
			qb.AddEdge(ci, cj, w, off[pi]-off[pj])
		}
	}

	for netID := 0; netID < d.NumNets(); netID++ {
		pins := d.NetPins(netID)
		deg := len(pins)
		if deg < 2 {
			continue
		}
		// Boundary pins at the reference positions.
		minP, maxP := pins[0], pins[0]
		minV := x[d.PinCell[minP]] + off[minP]
		maxV := minV
		for _, pid := range pins[1:] {
			v := x[d.PinCell[pid]] + off[pid]
			if v < minV {
				minV, minP = v, pid
			}
			if v > maxV {
				maxV, maxP = v, pid
			}
		}
		if minP == maxP { // all pins coincide; connect first-to-rest
			maxP = pins[0]
			if minP == maxP {
				maxP = pins[1]
			}
		}
		invDeg := 1.0 / float64(deg-1)
		addEdge(minP, maxP, invDeg)
		for _, pid := range pins {
			if pid != minP && pid != maxP {
				addEdge(minP, pid, invDeg)
				addEdge(maxP, pid, invDeg)
			}
		}
	}

	if useAnchors {
		cutoff := math.Max(1e-12, lb.prm.PenaltyCutoffDistance*binDim)
		for _, c := range lb.movable {
			dist := math.Max(cutoff, math.Abs(x[c]-tgt[c]))
			qb.AddAnchor(c, lb.penalty*lb.strength[c]/dist, tgt[c])
		}
	}

	sys := qb.Build(x)
	lb.cg.Solve(p.eng, sys, x, lb.prm.MaxCGIters, lb.prm.CGTolerance)

	// Clamp movable cells into the region (pathological pin offsets can
	// pull the unconstrained optimum arbitrarily far out — the fallback
	// path must stay finite). The !(v >= l) form also catches NaN.
	for _, c := range lb.movable {
		half := sizes[c] / 2
		l, h := lo+half, hi-half
		if l > h {
			l = (lo + hi) / 2
			h = l
		}
		v := x[c]
		if !(v >= l) {
			v = l
		}
		if v > h {
			v = h
		}
		x[c] = v
	}
}

// lbubUpperBound derives the upper-bound placement: movable cells are
// assigned to bins under the free-capacity targets (nearest bin with room,
// searched in growing Chebyshev rings around the LB position) and packed
// into their bin in rows. Deterministic by construction: the assignment
// order is a strict total order and the ring scan has a fixed traversal.
func (p *Placer) lbubUpperBound() {
	lb := p.lbub
	d := p.d
	g := lb.grid
	for i := range lb.binUsed {
		lb.binUsed[i] = 0
	}

	// Larger cells first: they fragment remaining capacity the least.
	order := append(lb.order[:0], lb.movable...)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		aa := d.CellW[ca] * d.CellH[ca]
		ab := d.CellW[cb] * d.CellH[cb]
		if aa != ab {
			return aa > ab
		}
		if lb.lbX[ca] != lb.lbX[cb] {
			return lb.lbX[ca] < lb.lbX[cb]
		}
		if lb.lbY[ca] != lb.lbY[cb] {
			return lb.lbY[ca] < lb.lbY[cb]
		}
		return ca < cb
	})
	lb.order = order

	for _, c := range order {
		area := d.CellW[c] * d.CellH[c]
		bx, by := g.BinCoords(geom.Point{X: lb.lbX[c], Y: lb.lbY[c]})
		ix, iy := lb.findBin(bx, by, area, lb.lbX[c], lb.lbY[c])
		idx := int32(iy*g.Nx + ix)
		lb.binUsed[idx] += area
		lb.cellBin[c] = idx
	}

	// Row-pack each bin's cells in assignment order.
	for i := range lb.binCurX {
		r := g.BinRect(i%g.Nx, i/g.Nx)
		lb.binCurX[i] = r.Lx
		lb.binCurY[i] = r.Ly
		lb.binRowH[i] = 0
	}
	for _, c := range order {
		b := lb.cellBin[c]
		r := g.BinRect(int(b)%g.Nx, int(b)/g.Nx)
		w, h := d.CellW[c], d.CellH[c]
		if lb.binCurX[b] > r.Lx && lb.binCurX[b]+w > r.Hx {
			lb.binCurX[b] = r.Lx
			lb.binCurY[b] += lb.binRowH[b]
			lb.binRowH[b] = 0
		}
		x := lb.binCurX[b] + w/2
		y := lb.binCurY[b] + h/2
		lb.binCurX[b] += w
		if h > lb.binRowH[b] {
			lb.binRowH[b] = h
		}
		lb.ubX[c] = clampCenter(x, d.Region.Lx, d.Region.Hx, w)
		lb.ubY[c] = clampCenter(y, d.Region.Ly, d.Region.Hy, h)
	}
	copy(lb.tgtX, lb.ubX)
	copy(lb.tgtY, lb.ubY)
	lb.haveUB = true
}

// clampCenter clamps a cell-center coordinate so the cell stays inside
// [lo, hi]; oversize cells sit at the span center.
func clampCenter(v, lo, hi, size float64) float64 {
	l, h := lo+size/2, hi-size/2
	if l > h {
		return (lo + hi) / 2
	}
	return geom.Clamp(v, l, h)
}

// findBin locates the nearest bin (growing Chebyshev rings around the
// preferred bin) whose free capacity fits area; within the first ring
// that has room, the candidate closest to the LB position wins, ties
// resolved by scan order. A cell no bin can hold falls back to its
// preferred bin.
func (lb *lbubEngine) findBin(bx, by int, area, px, py float64) (int, int) {
	g := lb.grid
	maxR := g.Nx
	if g.Ny > maxR {
		maxR = g.Ny
	}
	for r := 0; r <= maxR; r++ {
		bestIx, bestIy := -1, -1
		bestD := math.Inf(1)
		for iy := by - r; iy <= by+r; iy++ {
			if iy < 0 || iy >= g.Ny {
				continue
			}
			for ix := bx - r; ix <= bx+r; ix++ {
				if ix < 0 || ix >= g.Nx {
					continue
				}
				if max2(abs2(ix-bx), abs2(iy-by)) != r {
					continue // interior of the ring: already scanned
				}
				idx := iy*g.Nx + ix
				if lb.binUsed[idx]+area > lb.binCap[idx] {
					continue
				}
				c := g.BinRect(ix, iy).Center()
				d2 := (c.X-px)*(c.X-px) + (c.Y-py)*(c.Y-py)
				if d2 < bestD {
					bestD, bestIx, bestIy = d2, ix, iy
				}
			}
		}
		if bestIx >= 0 {
			return bestIx, bestIy
		}
	}
	return bx, by
}

func abs2(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// overflow reports the UB assignment's capacity violation as a fraction
// of the movable area — the same normalization as the electrostatic
// flow's overflow ratio, so Result.Overflow stays comparable.
func (lb *lbubEngine) overflow(movArea float64) float64 {
	if movArea <= 0 {
		return 0
	}
	var over float64
	for i := range lb.binUsed {
		if o := lb.binUsed[i] - lb.binCap[i]; o > 0 {
			over += o
		}
	}
	return over / movArea
}
