package placer

import (
	"sync"
	"testing"

	"xplace/internal/backend"
	"xplace/internal/benchgen"
	"xplace/internal/nn"
	"xplace/internal/obs"
)

// tinyFieldModel trains one small deterministic FNO per test binary:
// every test that blends uses the identical weights, so trajectories are
// comparable across tests and reruns.
var (
	tinyModelOnce sync.Once
	tinyModel     *nn.Model
)

func tinyFieldModel(tb testing.TB) *nn.Model {
	tb.Helper()
	tinyModelOnce.Do(func() {
		samples := nn.GenerateSamples(24, 32, 32, 3)
		m := nn.NewModel(nn.Config{Width: 6, Modes: 4, Layers: 2, Seed: 1})
		m.Train(samples, nn.TrainOptions{Epochs: 25, LR: 4e-3, Seed: 1})
		tinyModel = m
	})
	return tinyModel
}

// spyPredictor counts PredictField calls and records the placer
// iteration each call happened on.
type spyPredictor struct {
	inner FieldPredictor
	calls int
}

func (s *spyPredictor) PredictField(density []float64, nx, ny int, exOut, eyOut []float64) {
	s.calls++
	s.inner.PredictField(density, nx, ny, exOut, eyOut)
}

func nnTestOptions() Options {
	o := Defaults()
	o.Backend = backend.Float64()
	o.GridSize = 32
	o.TargetDensity = 0.9
	o.Sched.MaxIter = 600
	return o
}

// TestNNBlendHandoffMonotone drives the Eq. 14 handoff end to end: the
// blend weight starts high, decays to (numerically) zero as omega grows,
// and once it underflows the 1e-3 cutoff the predictor is never invoked
// again — from that point the trajectory is the pure numerical path, and
// a checkpoint taken past the cutoff resumes bit-identically whether or
// not a predictor is attached.
func TestNNBlendHandoffMonotone(t *testing.T) {
	d := clusteredDesign(t, 400, 11)
	e := eng()
	defer e.Close()
	reg := obs.NewRegistry()
	opts := nnTestOptions()
	opts.Metrics = reg
	spy := &spyPredictor{inner: &nn.Predictor{M: tinyFieldModel(t)}}
	opts.Predictor = spy
	p, err := New(d, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var sigmas []float64
	cutoffIter := -1 // first iteration whose pre-iteration sigma underflowed
	callsAtCutoff := 0
	for !p.done() {
		sigma := sigmaBlend(p.schd.Omega())
		sigmas = append(sigmas, sigma)
		if cutoffIter < 0 && sigma <= 1e-3 {
			cutoffIter = p.iter
			callsAtCutoff = spy.calls
		}
		if cutoffIter >= 0 && sigma > 1e-3 {
			t.Fatalf("iter %d: sigma %v rose back above the cutoff crossed at iter %d",
				p.iter, sigma, cutoffIter)
		}
		if err := p.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if spy.calls == 0 {
		t.Fatal("predictor never called: blend inactive")
	}
	if sigmas[0] < 0.5 {
		t.Errorf("initial blend weight %v, want > 0.5 (early stage is NN-dominated)", sigmas[0])
	}
	if cutoffIter < 0 {
		t.Fatalf("sigma never underflowed the cutoff in %d iterations (final sigma %v)",
			p.iter, sigmas[len(sigmas)-1])
	}
	if spy.calls != callsAtCutoff {
		t.Errorf("%d predictor calls after sigma underflow at iter %d",
			spy.calls-callsAtCutoff, cutoffIter)
	}
	if got := reg.Counter("xplace_nn_blend_iterations_total", "").Value(); got != int64(spy.calls) {
		t.Errorf("xplace_nn_blend_iterations_total = %d, want %d", got, spy.calls)
	}
	if got := reg.Gauge("xplace_nn_sigma", "").Value(); got > 1e-3 {
		t.Errorf("final xplace_nn_sigma = %v, want <= 1e-3", got)
	}

	// Past the cutoff the code path is predictor-free: resuming a
	// post-cutoff checkpoint with and without the model must agree bit
	// for bit.
	at := cutoffIter + 5
	nnOpts := nnTestOptions()
	nnOpts.Predictor = &nn.Predictor{M: tinyFieldModel(t)}
	cp := checkpointAt(t, nnOpts, at)
	withNN := resumeFrom(t, nnOpts, cp)
	pure := nnTestOptions() // no predictor at all
	withoutNN := resumeFrom(t, pure, cp)
	if withNN.Iterations != withoutNN.Iterations || withNN.HPWL != withoutNN.HPWL ||
		withNN.Overflow != withoutNN.Overflow {
		t.Fatalf("post-cutoff resume differs: with NN %d iters HPWL %v, without %d iters HPWL %v",
			withNN.Iterations, withNN.HPWL, withoutNN.Iterations, withoutNN.HPWL)
	}
	for c := range withNN.X {
		if withNN.X[c] != withoutNN.X[c] || withNN.Y[c] != withoutNN.Y[c] {
			t.Fatalf("cell %d: post-cutoff resume positions differ", c)
		}
	}
	t.Logf("handoff: %d blend iterations, cutoff at iter %d of %d, final HPWL %.1f",
		spy.calls, cutoffIter, withNN.Iterations, withNN.HPWL)
}

// TestNNBlendDeterminism: the blended flow is as deterministic as the
// numerical one — same model + same seed give a bit-identical result,
// and a checkpoint taken inside the blend window resumes (with the same
// model) onto the identical trajectory.
func TestNNBlendDeterminism(t *testing.T) {
	opts := nnTestOptions()
	opts.Predictor = &nn.Predictor{M: tinyFieldModel(t)}
	a := runRef(t, opts)
	b := runRef(t, opts)
	if a.Iterations != b.Iterations || a.HPWL != b.HPWL || a.Overflow != b.Overflow {
		t.Fatalf("repeat NN run differs: %d/%v vs %d/%v", a.Iterations, a.HPWL, b.Iterations, b.HPWL)
	}
	for c := range a.X {
		if a.X[c] != b.X[c] || a.Y[c] != b.Y[c] {
			t.Fatalf("cell %d: repeat NN run positions differ", c)
		}
	}

	// Mid-blend checkpoint/resume (iteration 5 is deep inside the blend
	// window on this fixture).
	cp := checkpointAt(t, opts, 5)
	res := resumeFrom(t, opts, cp)
	if res.Iterations != a.Iterations || res.HPWL != a.HPWL || res.Overflow != a.Overflow {
		t.Fatalf("mid-blend resume: %d iters HPWL %v, uninterrupted %d iters HPWL %v",
			res.Iterations, res.HPWL, a.Iterations, a.HPWL)
	}
	for c := range a.X {
		if res.X[c] != a.X[c] || res.Y[c] != a.Y[c] {
			t.Fatalf("cell %d: mid-blend resume positions differ", c)
		}
	}

	// A run without the predictor must differ during the blend window —
	// the blend is actually doing something.
	pure := runRef(t, nnTestOptions())
	if pure.HPWL == a.HPWL && pure.Iterations == a.Iterations {
		t.Error("NN-blended run identical to pure numerical run: blend had no effect")
	}
}

// TestNNBlendQualityAdaptec1 is the §3.3 acceptance gate: on scaled
// adaptec1 the NN-blended early stage must not need more GP iterations
// than the pure numerical flow, and must land in the same quality band
// (HPWL within 5%, overflow converged). The measured numbers feed the
// EXPERIMENTS.md table.
func TestNNBlendQualityAdaptec1(t *testing.T) {
	spec, ok := benchgen.FindSpec("adaptec1")
	if !ok {
		t.Fatal("adaptec1 spec missing")
	}
	d := benchgen.Generate(spec, 0.004, 1)
	run := func(withNN bool) *Result {
		e := eng()
		defer e.Close()
		opts := Defaults()
		opts.Backend = backend.Float64()
		opts.Sched.MaxIter = 1000
		if withNN {
			opts.Predictor = &nn.Predictor{M: tinyFieldModel(t)}
		}
		p, err := New(d, e, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations >= 1000 {
			t.Fatalf("hit MaxIter (overflow %v)", res.Overflow)
		}
		return res
	}
	ref := run(false)
	blended := run(true)
	if blended.Iterations > ref.Iterations {
		t.Errorf("NN-blended run took %d iterations vs numerical %d, want no more",
			blended.Iterations, ref.Iterations)
	}
	// One-sided band: the blend must not cost quality. (On this fixture it
	// lands well below the numerical reference — the smooth low-frequency
	// NN field spreads early clusters the way the multilevel schedule
	// does, so "better" is the expected direction.)
	if rel := (blended.HPWL - ref.HPWL) / ref.HPWL; rel > 0.05 {
		t.Errorf("NN-blended HPWL %v vs numerical %v (rel %+.4f), want no more than 5%% worse",
			blended.HPWL, ref.HPWL, rel)
	}
	if blended.Overflow > 0.10 {
		t.Errorf("NN-blended overflow %v, want converged (<= 0.10)", blended.Overflow)
	}
	t.Logf("adaptec1 x0.004: numerical %d iters HPWL %.1f ovfl %.3f sim %v | NN-blended %d iters HPWL %.1f ovfl %.3f sim %v",
		ref.Iterations, ref.HPWL, ref.Overflow, ref.SimTime,
		blended.Iterations, blended.HPWL, blended.Overflow, blended.SimTime)
}
