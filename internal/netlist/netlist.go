// Package netlist defines the circuit data model shared by every placement
// stage: cells, pins and nets in flat CSR arrays (struct-of-arrays layout —
// the hot loops of the placer index these slices directly, mirroring the
// flat GPU tensors of the paper's implementation).
//
// Coordinate convention: CellX/CellY hold cell *centers*. File formats that
// use lower-left corners (bookshelf .pl, DEF) are converted at the parser
// boundary.
package netlist

import (
	"errors"
	"fmt"
	"math"

	"xplace/internal/geom"
)

// CellKind classifies a cell for the placer.
type CellKind uint8

const (
	// Movable cells are optimized by global placement.
	Movable CellKind = iota
	// Fixed cells (macros, pads, pre-placed blocks) never move and act as
	// obstacles in the density system.
	Fixed
	// Filler cells are whitespace fillers inserted for the electrostatic
	// system (§3.1.2); they move but carry no pins and are discarded after
	// global placement.
	Filler
)

func (k CellKind) String() string {
	switch k {
	case Movable:
		return "movable"
	case Fixed:
		return "fixed"
	case Filler:
		return "filler"
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Row is one placement row (bookshelf .scl / DEF ROW): standard cells must
// sit on a row with their lower edge at Y.
type Row struct {
	Y         float64 // lower edge
	X0, X1    float64 // horizontal extent
	Height    float64
	SiteWidth float64 // legal x positions are X0 + k*SiteWidth
}

// Design is a placement instance. Build one with NewDesign/AddCell/AddNet/
// AddPin and seal it with Finish before handing it to the placer.
type Design struct {
	Name   string
	Region geom.Rect
	Rows   []Row

	// Per-cell arrays, indexed by cell id.
	CellName []string
	CellW    []float64
	CellH    []float64
	CellKind []CellKind
	CellX    []float64 // center x
	CellY    []float64 // center y

	// Per-net / per-pin CSR arrays, indexed by net id and pin id.
	NetName     []string
	NetPinStart []int // len numNets+1; pins of net n are [NetPinStart[n], NetPinStart[n+1])
	PinCell     []int
	PinNet      []int
	PinOffX     []float64 // pin offset from the cell center
	PinOffY     []float64

	// Reverse map, built by Finish.
	CellPinStart []int // len numCells+1
	CellPins     []int // pin ids grouped by cell
	CellNetDeg   []int // |S_i|: number of distinct nets touching cell i

	// Fence regions (an extension beyond the paper's evaluation — its
	// stated future work): movable cells assigned to a fence must stay
	// inside it. CellFence is -1 for unconstrained cells.
	Fences    []geom.Rect
	CellFence []int

	finished bool
	// Builder state: pins are appended net-by-net.
	curNetOpen bool
}

// NewDesign returns an empty design over the given placement region.
func NewDesign(name string, region geom.Rect) *Design {
	if region.Empty() {
		panic("netlist: empty placement region")
	}
	return &Design{
		Name:        name,
		Region:      region,
		NetPinStart: []int{0},
	}
}

// NumCells returns the total cell count (all kinds).
func (d *Design) NumCells() int { return len(d.CellW) }

// NumNets returns the net count.
func (d *Design) NumNets() int { return len(d.NetName) }

// NumPins returns the pin count.
func (d *Design) NumPins() int { return len(d.PinCell) }

// AddCell appends a cell with center position (x, y) and returns its id.
func (d *Design) AddCell(name string, w, h, x, y float64, kind CellKind) int {
	if d.finished {
		panic("netlist: AddCell after Finish")
	}
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("netlist: cell %q has negative size %gx%g", name, w, h))
	}
	d.CellName = append(d.CellName, name)
	d.CellW = append(d.CellW, w)
	d.CellH = append(d.CellH, h)
	d.CellX = append(d.CellX, x)
	d.CellY = append(d.CellY, y)
	d.CellKind = append(d.CellKind, kind)
	d.CellFence = append(d.CellFence, -1)
	return len(d.CellW) - 1
}

// AddFence registers a fence region and returns its id. Must be inside
// the placement region.
func (d *Design) AddFence(r geom.Rect) int {
	if d.finished {
		panic("netlist: AddFence after Finish")
	}
	if r.Empty() || !d.Region.ContainsRect(r) {
		panic(fmt.Sprintf("netlist: fence %v outside region %v", r, d.Region))
	}
	d.Fences = append(d.Fences, r)
	return len(d.Fences) - 1
}

// SetFence constrains cell c to fence f (-1 clears the constraint).
func (d *Design) SetFence(c, f int) {
	if d.finished {
		panic("netlist: SetFence after Finish")
	}
	if f >= len(d.Fences) || f < -1 {
		panic(fmt.Sprintf("netlist: unknown fence %d", f))
	}
	d.CellFence[c] = f
}

// FenceOf returns the fence rect constraining cell c; ok is false for
// unconstrained cells.
func (d *Design) FenceOf(c int) (geom.Rect, bool) {
	if len(d.CellFence) <= c || d.CellFence[c] < 0 {
		return geom.Rect{}, false
	}
	return d.Fences[d.CellFence[c]], true
}

// AddNet starts a new net and returns its id. Pins added subsequently with
// AddPin belong to the most recently added net.
func (d *Design) AddNet(name string) int {
	if d.finished {
		panic("netlist: AddNet after Finish")
	}
	d.NetName = append(d.NetName, name)
	d.NetPinStart = append(d.NetPinStart, len(d.PinCell))
	d.curNetOpen = true
	return len(d.NetName) - 1
}

// AddPin appends a pin on the current net attached to cell with the given
// offset from the cell center. Returns the pin id.
func (d *Design) AddPin(cell int, offX, offY float64) int {
	if d.finished {
		panic("netlist: AddPin after Finish")
	}
	if !d.curNetOpen {
		panic("netlist: AddPin before any AddNet")
	}
	if cell < 0 || cell >= len(d.CellW) {
		panic(fmt.Sprintf("netlist: pin references unknown cell %d", cell))
	}
	d.PinCell = append(d.PinCell, cell)
	d.PinNet = append(d.PinNet, len(d.NetName)-1)
	d.PinOffX = append(d.PinOffX, offX)
	d.PinOffY = append(d.PinOffY, offY)
	d.NetPinStart[len(d.NetPinStart)-1] = len(d.PinCell)
	return len(d.PinCell) - 1
}

// Finish seals the design: builds the cell->pin reverse map and the
// distinct-net degree used by the preconditioner, and validates invariants.
func (d *Design) Finish() error {
	if d.finished {
		return errors.New("netlist: Finish called twice")
	}
	n := d.NumCells()
	// Count pins per cell.
	d.CellPinStart = make([]int, n+1)
	for _, c := range d.PinCell {
		d.CellPinStart[c+1]++
	}
	for i := 0; i < n; i++ {
		d.CellPinStart[i+1] += d.CellPinStart[i]
	}
	d.CellPins = make([]int, d.NumPins())
	fill := make([]int, n)
	for p, c := range d.PinCell {
		d.CellPins[d.CellPinStart[c]+fill[c]] = p
		fill[c]++
	}
	// Distinct nets per cell: pins of a cell on the same net are counted
	// once (|S_i| of §3.2).
	d.CellNetDeg = make([]int, n)
	seen := make(map[int]struct{}, 8)
	for c := 0; c < n; c++ {
		clear(seen)
		for _, p := range d.CellPins[d.CellPinStart[c]:d.CellPinStart[c+1]] {
			seen[d.PinNet[p]] = struct{}{}
		}
		d.CellNetDeg[c] = len(seen)
	}
	// Validate.
	for c := 0; c < n; c++ {
		if d.CellKind[c] == Filler && d.CellPinStart[c+1] > d.CellPinStart[c] {
			return fmt.Errorf("netlist: filler cell %q has pins", d.CellName[c])
		}
	}
	for net := 0; net < d.NumNets(); net++ {
		if d.NetPinStart[net+1] < d.NetPinStart[net] {
			return fmt.Errorf("netlist: net %q has negative pin range", d.NetName[net])
		}
	}
	d.finished = true
	return nil
}

// Finished reports whether Finish succeeded.
func (d *Design) Finished() bool { return d.finished }

// Clone returns a deep, UNfinished copy of the design: all cells, nets and
// pins are copied, but the reverse maps are dropped so more cells (e.g.
// fillers) can be appended before calling Finish again. The placer uses
// this to augment a user design without mutating it.
func (d *Design) Clone() *Design {
	c := &Design{
		Name:        d.Name,
		Region:      d.Region,
		Rows:        append([]Row(nil), d.Rows...),
		CellName:    append([]string(nil), d.CellName...),
		CellW:       append([]float64(nil), d.CellW...),
		CellH:       append([]float64(nil), d.CellH...),
		CellKind:    append([]CellKind(nil), d.CellKind...),
		CellX:       append([]float64(nil), d.CellX...),
		CellY:       append([]float64(nil), d.CellY...),
		NetName:     append([]string(nil), d.NetName...),
		NetPinStart: append([]int(nil), d.NetPinStart...),
		PinCell:     append([]int(nil), d.PinCell...),
		PinNet:      append([]int(nil), d.PinNet...),
		PinOffX:     append([]float64(nil), d.PinOffX...),
		PinOffY:     append([]float64(nil), d.PinOffY...),
		Fences:      append([]geom.Rect(nil), d.Fences...),
		CellFence:   append([]int(nil), d.CellFence...),
	}
	c.curNetOpen = len(c.NetName) > 0
	return c
}

// NetPins returns the pin ids of net n.
func (d *Design) NetPins(n int) []int {
	pins := make([]int, 0, d.NetPinStart[n+1]-d.NetPinStart[n])
	for p := d.NetPinStart[n]; p < d.NetPinStart[n+1]; p++ {
		pins = append(pins, p)
	}
	return pins
}

// CellRect returns the rectangle currently occupied by cell c.
func (d *Design) CellRect(c int) geom.Rect {
	hw, hh := d.CellW[c]/2, d.CellH[c]/2
	return geom.Rect{
		Lx: d.CellX[c] - hw, Ly: d.CellY[c] - hh,
		Hx: d.CellX[c] + hw, Hy: d.CellY[c] + hh,
	}
}

// PinPos returns the absolute position of pin p given cell centers (x, y).
// Pass nil to use the design's stored positions.
func (d *Design) PinPos(p int, x, y []float64) (float64, float64) {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	c := d.PinCell[p]
	return x[c] + d.PinOffX[p], y[c] + d.PinOffY[p]
}

// HPWL computes the total half-perimeter wirelength of the design for the
// given cell-center coordinate arrays (nil means stored positions).
// Single-pin and empty nets contribute zero.
func (d *Design) HPWL(x, y []float64) float64 {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	var total float64
	for n := 0; n < d.NumNets(); n++ {
		s, e := d.NetPinStart[n], d.NetPinStart[n+1]
		if e-s < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for p := s; p < e; p++ {
			c := d.PinCell[p]
			px := x[c] + d.PinOffX[p]
			py := y[c] + d.PinOffY[p]
			minX = math.Min(minX, px)
			maxX = math.Max(maxX, px)
			minY = math.Min(minY, py)
			maxY = math.Max(maxY, py)
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

// MovableCells returns the ids of all movable (non-fixed, non-filler)
// cells.
func (d *Design) MovableCells() []int {
	var out []int
	for c, k := range d.CellKind {
		if k == Movable {
			out = append(out, c)
		}
	}
	return out
}

// MovableArea returns the total area of movable cells.
func (d *Design) MovableArea() float64 {
	var a float64
	for c, k := range d.CellKind {
		if k == Movable {
			a += d.CellW[c] * d.CellH[c]
		}
	}
	return a
}

// FixedArea returns the total area of fixed cells clipped to the region.
func (d *Design) FixedArea() float64 {
	var a float64
	for c, k := range d.CellKind {
		if k == Fixed {
			a += d.CellRect(c).Intersect(d.Region).Area()
		}
	}
	return a
}

// Utilization returns movable area over free area (region minus fixed).
func (d *Design) Utilization() float64 {
	free := d.Region.Area() - d.FixedArea()
	if free <= 0 {
		return math.Inf(1)
	}
	return d.MovableArea() / free
}

// AddFillers inserts filler cells so the electrostatic system sees a total
// density near targetDensity (§3.1.2, Eq. 9-10): total filler area is
// targetDensity*(region - fixed) - movable, split into square cells sized
// like the average movable cell. Fillers are placed uniformly over the
// region by a deterministic low-discrepancy sequence. Must be called
// before Finish. Returns the number of fillers inserted.
func (d *Design) AddFillers(targetDensity float64) int {
	if d.finished {
		panic("netlist: AddFillers after Finish")
	}
	movable := 0
	var movArea float64
	for c, k := range d.CellKind {
		if k == Movable {
			movable++
			movArea += d.CellW[c] * d.CellH[c]
		}
	}
	if movable == 0 {
		return 0
	}
	free := d.Region.Area() - d.FixedArea()
	fillArea := targetDensity*free - movArea
	if fillArea <= 0 {
		return 0
	}
	avg := movArea / float64(movable)
	side := math.Sqrt(avg)
	if side <= 0 {
		return 0
	}
	count := int(fillArea / (side * side))
	// Halton-like (2,3) low-discrepancy placement keeps the initial filler
	// distribution uniform and deterministic.
	for i := 0; i < count; i++ {
		fx := d.Region.Lx + halton(i+1, 2)*d.Region.W()
		fy := d.Region.Ly + halton(i+1, 3)*d.Region.H()
		d.AddCell(fmt.Sprintf("__filler_%d", i), side, side, fx, fy, Filler)
	}
	return count
}

func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// Stats summarizes a design for reporting (Table 1).
type Stats struct {
	Name     string
	Cells    int // movable + fixed (fillers excluded)
	Movable  int
	Fixed    int
	Fillers  int
	Nets     int
	Pins     int
	Util     float64
	RowCount int
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	s := Stats{Name: d.Name, Nets: d.NumNets(), Pins: d.NumPins(), RowCount: len(d.Rows)}
	for _, k := range d.CellKind {
		switch k {
		case Movable:
			s.Movable++
		case Fixed:
			s.Fixed++
		case Filler:
			s.Fillers++
		}
	}
	s.Cells = s.Movable + s.Fixed
	s.Util = d.Utilization()
	return s
}
