package netlist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xplace/internal/geom"
)

// buildTiny returns a sealed 3-cell, 2-net design:
//
//	a --- n1 --- b --- n2 --- c(fixed)
func buildTiny(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("tiny", geom.Rect{Lx: 0, Ly: 0, Hx: 100, Hy: 100})
	a := d.AddCell("a", 2, 2, 10, 10, Movable)
	b := d.AddCell("b", 2, 2, 20, 10, Movable)
	c := d.AddCell("c", 4, 4, 50, 50, Fixed)
	n1 := d.AddNet("n1")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 1, -1)
	n2 := d.AddNet("n2")
	d.AddPin(b, 0, 0)
	d.AddPin(c, 0, 0)
	_ = n1
	_ = n2
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderCounts(t *testing.T) {
	d := buildTiny(t)
	if d.NumCells() != 3 || d.NumNets() != 2 || d.NumPins() != 4 {
		t.Fatalf("counts = %d/%d/%d", d.NumCells(), d.NumNets(), d.NumPins())
	}
	if !d.Finished() {
		t.Error("should be finished")
	}
}

func TestNetPinsAndReverseMap(t *testing.T) {
	d := buildTiny(t)
	if pins := d.NetPins(0); len(pins) != 2 || pins[0] != 0 || pins[1] != 1 {
		t.Errorf("NetPins(0) = %v", pins)
	}
	// Cell b (id 1) touches pins 1 and 2.
	pins := d.CellPins[d.CellPinStart[1]:d.CellPinStart[2]]
	if len(pins) != 2 {
		t.Fatalf("cell b pins = %v", pins)
	}
	if d.PinCell[pins[0]] != 1 || d.PinCell[pins[1]] != 1 {
		t.Error("reverse map points to wrong cell")
	}
}

func TestCellNetDegreeCountsDistinctNets(t *testing.T) {
	d := NewDesign("deg", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell("a", 1, 1, 5, 5, Movable)
	b := d.AddCell("b", 1, 1, 6, 6, Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(a, 0.5, 0) // second pin of a on the same net
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if d.CellNetDeg[a] != 1 {
		t.Errorf("deg(a) = %d, want 1 (distinct nets)", d.CellNetDeg[a])
	}
	if d.CellNetDeg[b] != 1 {
		t.Errorf("deg(b) = %d", d.CellNetDeg[b])
	}
}

func TestHPWLTinyDesign(t *testing.T) {
	d := buildTiny(t)
	// n1: pins at (10,10) and (21,9): HPWL = 11 + 1 = 12.
	// n2: pins at (20,10) and (50,50): HPWL = 30 + 40 = 70.
	if got := d.HPWL(nil, nil); math.Abs(got-82) > 1e-12 {
		t.Errorf("HPWL = %v, want 82", got)
	}
}

func TestHPWLSinglePinNetIsZero(t *testing.T) {
	d := NewDesign("single", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell("a", 1, 1, 3, 3, Movable)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := d.HPWL(nil, nil); got != 0 {
		t.Errorf("single-pin HPWL = %v", got)
	}
}

// Property: HPWL is invariant under global translation.
func TestHPWLTranslationInvariance(t *testing.T) {
	d := buildTiny(t)
	base := d.HPWL(nil, nil)
	f := func(dx, dy float64) bool {
		if math.Abs(dx) > 1e6 || math.Abs(dy) > 1e6 || math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		x := make([]float64, d.NumCells())
		y := make([]float64, d.NumCells())
		for c := range x {
			x[c] = d.CellX[c] + dx
			y[c] = d.CellY[c] + dy
		}
		got := d.HPWL(x, y)
		return math.Abs(got-base) < 1e-6*(1+math.Abs(base))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: moving one cell by delta changes HPWL by at most degree*2*|delta|.
func TestHPWLLipschitz(t *testing.T) {
	d := buildTiny(t)
	base := d.HPWL(nil, nil)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		c := rng.Intn(d.NumCells())
		dx := rng.NormFloat64()
		x := append([]float64(nil), d.CellX...)
		x[c] += dx
		got := d.HPWL(x, nil)
		bound := float64(d.CellNetDeg[c]) * math.Abs(dx)
		if math.Abs(got-base) > bound+1e-9 {
			t.Fatalf("HPWL jump %g exceeds Lipschitz bound %g", math.Abs(got-base), bound)
		}
	}
}

func TestPinPos(t *testing.T) {
	d := buildTiny(t)
	px, py := d.PinPos(1, nil, nil) // pin on b with offset (1,-1)
	if px != 21 || py != 9 {
		t.Errorf("PinPos = %v,%v", px, py)
	}
	x := append([]float64(nil), d.CellX...)
	x[1] += 5
	px, _ = d.PinPos(1, x, nil)
	if px != 26 {
		t.Errorf("PinPos with override = %v", px)
	}
}

func TestCellRect(t *testing.T) {
	d := buildTiny(t)
	r := d.CellRect(2) // fixed 4x4 at (50,50)
	want := geom.Rect{Lx: 48, Ly: 48, Hx: 52, Hy: 52}
	if r != want {
		t.Errorf("CellRect = %v", r)
	}
}

func TestAreasAndUtilization(t *testing.T) {
	d := buildTiny(t)
	if got := d.MovableArea(); got != 8 {
		t.Errorf("MovableArea = %v", got)
	}
	if got := d.FixedArea(); got != 16 {
		t.Errorf("FixedArea = %v", got)
	}
	wantUtil := 8.0 / (100*100 - 16)
	if got := d.Utilization(); math.Abs(got-wantUtil) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, wantUtil)
	}
}

func TestMovableCells(t *testing.T) {
	d := buildTiny(t)
	mv := d.MovableCells()
	if len(mv) != 2 || mv[0] != 0 || mv[1] != 1 {
		t.Errorf("MovableCells = %v", mv)
	}
}

func TestAddFillers(t *testing.T) {
	d := NewDesign("fill", geom.Rect{Hx: 100, Hy: 100})
	for i := 0; i < 10; i++ {
		d.AddCell("c", 4, 4, 50, 50, Movable)
	}
	n := d.AddFillers(0.8)
	if n == 0 {
		t.Fatal("expected fillers")
	}
	// Filler area should approximate 0.8*10000 - 160 = 7840.
	var fa float64
	for c, k := range d.CellKind {
		if k == Filler {
			fa += d.CellW[c] * d.CellH[c]
			if !d.Region.Contains(geom.Point{X: d.CellX[c], Y: d.CellY[c]}) {
				t.Fatalf("filler %d at %g,%g outside region", c, d.CellX[c], d.CellY[c])
			}
		}
	}
	want := 0.8*10000 - 160
	if math.Abs(fa-want) > want*0.02 {
		t.Errorf("filler area = %v, want about %v", fa, want)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Fillers != n || st.Movable != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAddFillersNoWhitespace(t *testing.T) {
	d := NewDesign("dense", geom.Rect{Hx: 10, Hy: 10})
	d.AddCell("big", 10, 10, 5, 5, Movable)
	if n := d.AddFillers(0.9); n != 0 {
		t.Errorf("no room for fillers, got %d", n)
	}
}

func TestFillerWithPinsRejected(t *testing.T) {
	d := NewDesign("bad", geom.Rect{Hx: 10, Hy: 10})
	f := d.AddCell("f", 1, 1, 5, 5, Filler)
	d.AddNet("n")
	d.AddPin(f, 0, 0)
	if err := d.Finish(); err == nil {
		t.Error("filler with pins should fail Finish")
	}
}

func TestBuilderPanics(t *testing.T) {
	d := NewDesign("p", geom.Rect{Hx: 10, Hy: 10})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("pin before net", func() { d.AddPin(0, 0, 0) })
	mustPanic("negative size", func() { d.AddCell("x", -1, 1, 0, 0, Movable) })
	a := d.AddCell("a", 1, 1, 0, 0, Movable)
	d.AddNet("n")
	mustPanic("bad cell id", func() { d.AddPin(99, 0, 0) })
	d.AddPin(a, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	mustPanic("add cell after finish", func() { d.AddCell("z", 1, 1, 0, 0, Movable) })
	mustPanic("add net after finish", func() { d.AddNet("z") })
	if err := d.Finish(); err == nil {
		t.Error("double Finish should error")
	}
}

func TestEmptyRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewDesign("e", geom.Rect{})
}

func TestCellKindString(t *testing.T) {
	if Movable.String() != "movable" || Fixed.String() != "fixed" || Filler.String() != "filler" {
		t.Error("kind strings wrong")
	}
	if CellKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestHaltonUniformity(t *testing.T) {
	// The low-discrepancy sequence should roughly balance quadrant counts.
	n := 1000
	var q [4]int
	for i := 1; i <= n; i++ {
		x, y := halton(i, 2), halton(i, 3)
		idx := 0
		if x >= 0.5 {
			idx |= 1
		}
		if y >= 0.5 {
			idx |= 2
		}
		q[idx]++
	}
	for i, c := range q {
		if c < n/4-50 || c > n/4+50 {
			t.Errorf("quadrant %d count %d far from %d", i, c, n/4)
		}
	}
}

func BenchmarkHPWL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDesign("bench", geom.Rect{Hx: 1000, Hy: 1000})
	const nc, nn = 5000, 5000
	for i := 0; i < nc; i++ {
		d.AddCell("c", 2, 2, rng.Float64()*1000, rng.Float64()*1000, Movable)
	}
	for i := 0; i < nn; i++ {
		d.AddNet("n")
		deg := 2 + rng.Intn(5)
		for j := 0; j < deg; j++ {
			d.AddPin(rng.Intn(nc), 0, 0)
		}
	}
	if err := d.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.HPWL(nil, nil)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := buildTiny(t)
	c := d.Clone()
	if c.Finished() {
		t.Fatal("clone must be unfinished")
	}
	// Extend the clone; the original must be untouched.
	c.AddCell("extra", 1, 1, 5, 5, Filler)
	c.CellX[0] = 999
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 3 || d.CellX[0] == 999 {
		t.Error("clone mutation leaked into original")
	}
	if c.NumCells() != 4 {
		t.Errorf("clone cells = %d", c.NumCells())
	}
	// CSR rebuilt identically for shared prefix.
	if c.CellNetDeg[1] != d.CellNetDeg[1] {
		t.Error("clone CSR differs")
	}
}

func TestCloneCopiesFences(t *testing.T) {
	d := NewDesign("f", geom.Rect{Hx: 10, Hy: 10})
	a := d.AddCell("a", 1, 1, 2, 2, Movable)
	fid := d.AddFence(geom.Rect{Lx: 0, Ly: 0, Hx: 4, Hy: 4})
	d.SetFence(a, fid)
	c := d.Clone()
	if r, ok := c.FenceOf(a); !ok || r.Hx != 4 {
		t.Error("fence not cloned")
	}
	c.Fences[0].Hx = 9
	if d.Fences[0].Hx != 4 {
		t.Error("fence slice shared between clone and original")
	}
}
