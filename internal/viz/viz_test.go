package viz

import (
	"bytes"
	"strings"
	"testing"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

func vizDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("viz", geom.Rect{Hx: 20, Hy: 10})
	d.Rows = append(d.Rows, netlist.Row{Y: 0, X0: 0, X1: 20, Height: 5, SiteWidth: 1})
	f := d.AddFence(geom.Rect{Lx: 0, Ly: 0, Hx: 8, Hy: 10})
	a := d.AddCell("a", 2, 5, 3, 2.5, netlist.Movable)
	d.SetFence(a, f)
	b := d.AddCell("b", 2, 5, 12, 2.5, netlist.Movable)
	d.AddCell("m", 4, 4, 16, 7, netlist.Fixed)
	d.AddCell("fl", 1, 1, 9, 9, netlist.Filler)
	d.AddNet("n")
	d.AddPin(a, 0, 0)
	d.AddPin(b, 0, 0)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteSVG(t *testing.T) {
	d := vizDesign(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d, nil, nil, SVGOptions{Width: 400, DrawNets: true}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{
		"<svg", "</svg>",
		`fill="#4477cc"`,   // movable
		`fill="#888888"`,   // fixed macro
		`fill="#cc8800"`,   // fenced cell
		"stroke-dasharray", // fence outline
		`stroke="#cc4444"`, // flyline
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Fillers are not drawn.
	if strings.Count(svg, "<rect") != 1+4 { // background + 3 cells + fence
		t.Errorf("unexpected rect count: %d", strings.Count(svg, "<rect"))
	}
}

func TestWriteSVGWithOverridePositions(t *testing.T) {
	d := vizDesign(t)
	x := append([]float64(nil), d.CellX...)
	y := append([]float64(nil), d.CellY...)
	x[0] = 5
	var a, b bytes.Buffer
	if err := WriteSVG(&a, d, nil, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&b, d, x, y, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("override positions had no effect")
	}
}

func TestWritePGM(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5} // 3x2
	var buf bytes.Buffer
	if err := WritePGM(&buf, data, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P2\n3 2\n255\n") {
		t.Fatalf("bad header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Top row of the image is the HIGH-y row (values 3 4 5).
	if lines[3] != "153 204 255" {
		t.Errorf("top row = %q", lines[3])
	}
	if lines[4] != "0 51 102" {
		t.Errorf("bottom row = %q", lines[4])
	}
}

func TestWritePGMSizeMismatch(t *testing.T) {
	if err := WritePGM(&bytes.Buffer{}, make([]float64, 5), 2, 3); err == nil {
		t.Error("want error")
	}
}

func TestWritePGMConstantMap(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, []float64{7, 7, 7, 7}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("constant map produced NaN")
	}
}

func TestASCIIHeatmap(t *testing.T) {
	data := []float64{0, 0, 0, 9} // 2x2, hottest at (1,1) = top-right
	s := ASCIIHeatmap(data, 2, 2)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap:\n%q", s)
	}
	if lines[0][1] != '@' {
		t.Errorf("hottest bin should render '@', got %q", lines[0])
	}
	if lines[1][0] != ' ' {
		t.Errorf("cold bin should render space, got %q", lines[1])
	}
}
