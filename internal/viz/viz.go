// Package viz renders placements and congestion/density maps for
// inspection: placements as SVG (cells colored by kind, fences and
// macros outlined) and scalar bin maps (density, gcell overflow) as PGM
// grayscale images. Both formats are plain text, dependency-free and
// diffable.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"xplace/internal/netlist"
)

// SVGOptions tunes WriteSVG.
type SVGOptions struct {
	// Width is the image width in pixels (height follows the region's
	// aspect ratio). Default 800.
	Width float64
	// DrawNets draws flylines for nets up to MaxNetDegree (0 disables).
	DrawNets     bool
	MaxNetDegree int
}

// WriteSVG renders the design at positions (x, y) (nil means stored) as
// an SVG document.
func WriteSVG(w io.Writer, d *netlist.Design, x, y []float64, opts SVGOptions) error {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	if opts.Width <= 0 {
		opts.Width = 800
	}
	if opts.MaxNetDegree == 0 {
		opts.MaxNetDegree = 8
	}
	bw := bufio.NewWriter(w)
	scale := opts.Width / d.Region.W()
	hpx := d.Region.H() * scale
	// SVG y grows downward; flip.
	fy := func(v float64) float64 { return (d.Region.Hy - v) * scale }
	fx := func(v float64) float64 { return (v - d.Region.Lx) * scale }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opts.Width, hpx, opts.Width, hpx)
	fmt.Fprintf(bw, `<rect width="%.0f" height="%.0f" fill="#ffffff" stroke="#000000"/>`+"\n", opts.Width, hpx)

	// Rows as faint lines.
	for _, r := range d.Rows {
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eeeeee" stroke-width="0.5"/>`+"\n",
			fx(r.X0), fy(r.Y), fx(r.X1), fy(r.Y))
	}
	// Fences.
	for _, f := range d.Fences {
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#cc8800" stroke-width="1.5" stroke-dasharray="4,3"/>`+"\n",
			fx(f.Lx), fy(f.Hy), f.W()*scale, f.H()*scale)
	}
	// Cells.
	for c := 0; c < d.NumCells(); c++ {
		var fill string
		switch d.CellKind[c] {
		case netlist.Fixed:
			fill = "#888888"
		case netlist.Filler:
			continue
		default:
			fill = "#4477cc"
			if d.CellFence[c] >= 0 {
				fill = "#cc8800"
			}
		}
		lx := x[c] - d.CellW[c]/2
		hy := y[c] + d.CellH[c]/2
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.7" stroke="#223355" stroke-width="0.2"/>`+"\n",
			fx(lx), fy(hy), d.CellW[c]*scale, d.CellH[c]*scale, fill)
	}
	// Net flylines (small nets only).
	if opts.DrawNets {
		for n := 0; n < d.NumNets(); n++ {
			s, e := d.NetPinStart[n], d.NetPinStart[n+1]
			if e-s < 2 || e-s > opts.MaxNetDegree {
				continue
			}
			var cx, cy float64
			for p := s; p < e; p++ {
				px, py := d.PinPos(p, x, y)
				cx += px
				cy += py
			}
			cx /= float64(e - s)
			cy /= float64(e - s)
			for p := s; p < e; p++ {
				px, py := d.PinPos(p, x, y)
				fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cc4444" stroke-width="0.3" stroke-opacity="0.4"/>`+"\n",
					fx(cx), fy(cy), fx(px), fy(py))
			}
		}
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// WritePGM renders a bin map (row-major, nx x ny, y growing upward) as a
// binary-free plain PGM (P2) grayscale image, normalized to the map's
// range. Useful for density and congestion maps.
func WritePGM(w io.Writer, data []float64, nx, ny int) error {
	if len(data) != nx*ny {
		return fmt.Errorf("viz: map has %d values, want %d", len(data), nx*ny)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", nx, ny)
	// PGM rows go top-down; our maps bottom-up.
	for yy := ny - 1; yy >= 0; yy-- {
		for xx := 0; xx < nx; xx++ {
			g := int(255 * (data[yy*nx+xx] - lo) / span)
			if xx > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprint(bw, g)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ASCIIHeatmap renders a bin map as a compact text heatmap (one rune per
// bin, " .:-=+*#%@" ramp), handy in test logs and terminals.
func ASCIIHeatmap(data []float64, nx, ny int) string {
	ramp := []rune(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	out := make([]rune, 0, (nx+1)*ny)
	for yy := ny - 1; yy >= 0; yy-- {
		for xx := 0; xx < nx; xx++ {
			idx := int(float64(len(ramp)-1) * (data[yy*nx+xx] - lo) / span)
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}
