package backend

import (
	"fmt"
	"sort"
)

// VecBody is one staged-parameter elementwise kernel body. Bind stages the
// destination, operands and scalar in the body's private parameter block;
// Run executes the half-open range [lo, hi) and has the exact signature
// kernel.Engine.Launch expects. A body is built once per consumer (each
// Make call returns fresh staged state) so steady-state Bind+Launch cycles
// are allocation-free — the same discipline as the hand-staged bodies in
// field and wirelength.
type VecBody struct {
	// Bind stages dst/a/b/s for the next Run. Operands a and b may be
	// unused by a given op (pass Buf{}).
	Bind func(dst, a, b Buf, s float64)
	// Run executes the op over [lo, hi).
	Run func(lo, hi int)
}

// BodyMaker constructs a fresh VecBody with its own staged parameters.
type BodyMaker func() VecBody

// Kernels is a backend's staged-parameter kernel-body registry. Every
// backend registers the standard elementwise set under stable names:
//
//	vec.copy   dst[i] = a[i]
//	vec.scale  dst[i] = s * a[i]
//	vec.add    dst[i] = a[i] + b[i]
//	vec.axpby  dst[i] = a[i] + s * b[i]
//	cvt.load   dst[i] = elem(a.Float64()[i])   (into the backend's type)
//	cvt.store  dst.Float64()[i] = float64(a[i]) (out of the backend's type)
//
// plus any backend-specific bodies. Make panics on unknown names — a
// missing standard op is a programming error, not a runtime condition.
type Kernels struct {
	makers map[string]BodyMaker
}

// NewKernels returns an empty registry.
func NewKernels() *Kernels { return &Kernels{makers: map[string]BodyMaker{}} }

// Register adds a body maker under name, panicking on duplicates.
// Registration happens at backend construction (single-goroutine), so the
// map needs no lock; Make-side reads are concurrent-safe because the map
// is never mutated afterwards.
func (k *Kernels) Register(name string, mk BodyMaker) {
	if _, dup := k.makers[name]; dup {
		panic(fmt.Sprintf("backend: duplicate kernel body %q", name))
	}
	k.makers[name] = mk
}

// Make builds a fresh staged body for name.
func (k *Kernels) Make(name string) VecBody {
	mk := k.makers[name]
	if mk == nil {
		panic(fmt.Sprintf("backend: unknown kernel body %q (have %v)", name, k.Names()))
	}
	return mk()
}

// Has reports whether name is registered.
func (k *Kernels) Has(name string) bool { return k.makers[name] != nil }

// Names lists the registered body names, sorted.
func (k *Kernels) Names() []string {
	out := make([]string, 0, len(k.makers))
	for n := range k.makers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
