package backend

import "xplace/internal/kernel"

// f64Backend is the reference backend: the float64 pool implementation the
// stack was built on, now behind the Backend interface. Every body keeps
// the exact arithmetic of the pre-refactor inline loops, so paths running
// on it remain bit-identical to the hard-wired float64 code they replaced.
type f64Backend struct {
	kernels *Kernels
}

var ref = newF64()

func init() {
	Register(ref)
	Register(fast)
}

func newF64() *f64Backend {
	b := &f64Backend{kernels: NewKernels()}
	k := b.kernels
	k.Register("vec.copy", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			copy(p.dst[lo:hi], p.a[lo:hi])
		}}
	})
	k.Register("vec.scale", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, s := p.dst, p.a, p.s
			for i := lo; i < hi; i++ {
				dst[i] = s * a[i]
			}
		}}
	})
	k.Register("vec.add", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, bb := p.dst, p.a, p.b
			for i := lo; i < hi; i++ {
				dst[i] = a[i] + bb[i]
			}
		}}
	})
	k.Register("vec.axpby", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, bb, s := p.dst, p.a, p.b, p.s
			for i := lo; i < hi; i++ {
				dst[i] = a[i] + s*bb[i]
			}
		}}
	})
	// On the reference backend both conversions are plain copies: the
	// element type IS the facade type.
	k.Register("cvt.load", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			copy(p.dst[lo:hi], p.a[lo:hi])
		}}
	})
	k.Register("cvt.store", func() VecBody {
		var p f64Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			copy(p.dst[lo:hi], p.a[lo:hi])
		}}
	})
	return b
}

// f64Params is the staged parameter block shared by the reference bodies.
type f64Params struct {
	dst, a, b []float64
	s         float64
}

func (p *f64Params) bind(dst, a, b Buf, s float64) {
	p.dst, p.a, p.b, p.s = dst.f64, a.f64, b.f64, s
}

func (b *f64Backend) Name() string      { return "float64" }
func (b *f64Backend) ElemBytes() int    { return 8 }
func (b *f64Backend) Kernels() *Kernels { return b.kernels }

func (b *f64Backend) Alloc(e *kernel.Engine, n int) Buf {
	return Buf{f64: e.Alloc(n)}
}

func (b *f64Backend) Free(e *kernel.Engine, buf Buf) {
	if buf.f64 != nil {
		e.Free(buf.f64)
	}
}
