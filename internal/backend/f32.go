package backend

import "xplace/internal/kernel"

// f32Backend is the reduced-precision fast path: buffers are float32 (half
// the memory traffic of the reference backend through cache-bound kernels)
// and bodies are written as contiguous FMA-shaped loops — one multiply-add
// per element over dense slices, the form the compiler turns into packed
// vector code. The density-equalization field tolerates the precision loss
// (FFTPL's observation); exactness-sensitive results are gated by the
// tolerance-banded goldens instead of the bit-identical determinism tests.
type f32Backend struct {
	kernels *Kernels
}

var fast = newF32()

func newF32() *f32Backend {
	b := &f32Backend{kernels: NewKernels()}
	k := b.kernels
	k.Register("vec.copy", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			copy(p.dst[lo:hi], p.a[lo:hi])
		}}
	})
	k.Register("vec.scale", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, s := p.dst, p.a, p.s
			for i := lo; i < hi; i++ {
				dst[i] = s * a[i]
			}
		}}
	})
	k.Register("vec.add", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, bb := p.dst, p.a, p.b
			for i := lo; i < hi; i++ {
				dst[i] = a[i] + bb[i]
			}
		}}
	})
	k.Register("vec.axpby", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, a, bb, s := p.dst, p.a, p.b, p.s
			for i := lo; i < hi; i++ {
				dst[i] = a[i] + s*bb[i]
			}
		}}
	})
	k.Register("cvt.load", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, src := p.dst, p.a64
			for i := lo; i < hi; i++ {
				dst[i] = float32(src[i])
			}
		}}
	})
	k.Register("cvt.store", func() VecBody {
		var p f32Params
		return VecBody{Bind: p.bind, Run: func(lo, hi int) {
			dst, src := p.dst64, p.a
			for i := lo; i < hi; i++ {
				dst[i] = float64(src[i])
			}
		}}
	})
	return b
}

// f32Params is the staged parameter block shared by the fast-path bodies.
// The float64 views are populated alongside the float32 ones so the cvt.*
// bodies can cross the boundary without a separate bind shape.
type f32Params struct {
	dst, a, b  []float32
	dst64, a64 []float64
	s          float32
}

func (p *f32Params) bind(dst, a, b Buf, s float64) {
	p.dst, p.a, p.b = dst.f32, a.f32, b.f32
	p.dst64, p.a64 = dst.f64, a.f64
	p.s = float32(s)
}

func (b *f32Backend) Name() string      { return "float32" }
func (b *f32Backend) ElemBytes() int    { return 4 }
func (b *f32Backend) Kernels() *Kernels { return b.kernels }

func (b *f32Backend) Alloc(e *kernel.Engine, n int) Buf {
	return Buf{f32: e.Alloc32(n)}
}

func (b *f32Backend) Free(e *kernel.Engine, buf Buf) {
	if buf.f32 != nil {
		e.Free32(buf.f32)
	}
}
