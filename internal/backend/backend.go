// Package backend defines the pluggable compute-backend boundary of the
// placement stack: which element type kernel buffers hold and which staged
// kernel bodies operate on them. The float64 pool implementation that the
// rest of the repo grew up on is the *reference* backend; the float32
// backend is the reduced-precision fast path (contiguous staged params,
// FMA-shaped loops, half the memory traffic through the spectral solver).
//
// The boundary has three parts:
//
//   - Buffer management: Alloc/Free check element buffers (Buf) in and out
//     of the engine arena, which pools per element type with exact byte
//     accounting (kernel.Arena).
//   - Kernel bodies: Kernels() is the backend's staged-parameter body
//     registry. Elementwise operators (vec.*) and the float64 boundary
//     conversions (cvt.*) are registered under stable names; consumers
//     Make a body once, Bind per call, and hand Run to Engine.Launch —
//     allocation-free in steady state, exactly like the hand-built staged
//     bodies in field/wirelength/optim.
//   - Conversion at API boundaries: public structures (field.System's
//     density and potential maps, tensor.Tensor.Data) stay []float64; the
//     cvt.load / cvt.store bodies move values across the precision
//     boundary in single launched passes.
//
// Structured kernels that cannot be expressed elementwise (density scatter,
// the Makhoul spectral transforms) dispatch on the backend identity
// instead: field and dct keep one implementation per element type and pick
// it by backend.
package backend

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"xplace/internal/kernel"
)

// EnvVar selects the process-default backend ("float64", "float32"); tests
// and the CI float32 lane use it to re-run the whole suite on the fast
// path without touching call sites.
const EnvVar = "XPLACE_BACKEND"

// Backend is one element-type implementation of the compute boundary. It
// also satisfies kernel.ComputeBackend, so an Engine can carry its default
// backend without the kernel package importing this one.
type Backend interface {
	// Name is the registry name ("float64", "float32").
	Name() string
	// ElemBytes is the width of one element (8 for float64, 4 for float32).
	ElemBytes() int
	// Alloc checks a zeroed n-element buffer of the backend's type out of
	// the engine arena; Free returns it.
	Alloc(e *kernel.Engine, n int) Buf
	Free(e *kernel.Engine, b Buf)
	// Kernels is the backend's staged-parameter kernel-body registry.
	Kernels() *Kernels
}

// Buf is an opaque element buffer: exactly one typed view is populated,
// decided by the backend that allocated it. Consumers on the reference
// backend read Float64() directly (zero-copy facade); reduced-precision
// consumers use the cvt.* bodies at the boundary.
type Buf struct {
	f64 []float64
	f32 []float32
}

// WrapF64 wraps an existing float64 slice (e.g. a public facade buffer) so
// it can be bound as a kernel-body operand.
func WrapF64(s []float64) Buf { return Buf{f64: s} }

// WrapF32 wraps an existing float32 slice.
func WrapF32(s []float32) Buf { return Buf{f32: s} }

// Len returns the element count of the populated view.
func (b Buf) Len() int {
	if b.f64 != nil {
		return len(b.f64)
	}
	return len(b.f32)
}

// Float64 returns the float64 view (nil unless this is a float64 buffer).
func (b Buf) Float64() []float64 { return b.f64 }

// Float32 returns the float32 view (nil unless this is a float32 buffer).
func (b Buf) Float32() []float32 { return b.f32 }

// IsZero reports whether the Buf holds no storage at all.
func (b Buf) IsZero() bool { return b.f64 == nil && b.f32 == nil }

var (
	regMu    sync.RWMutex
	backends = map[string]Backend{}
)

// Register adds a backend under its Name; registering a duplicate name
// panics (backends are process-global, like database/sql drivers).
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[b.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
	backends[b.Name()] = b
}

// Lookup returns the backend registered under name. The empty name means
// the process default (Default()).
func Lookup(name string) (Backend, error) {
	if name == "" {
		return Default(), nil
	}
	regMu.RLock()
	b := backends[name]
	regMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(backends))
	for n := range backends {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Float64 returns the reference (exact, bit-stable) backend.
func Float64() Backend { return ref }

// Float32 returns the reduced-precision fast-path backend.
func Float32() Backend { return fast }

// Default returns the process-default backend: the one named by the
// XPLACE_BACKEND environment variable when set and known, the reference
// backend otherwise. The env hook is what lets CI run the full test suite
// on the float32 lane without per-test plumbing.
func Default() Backend {
	if name := os.Getenv(EnvVar); name != "" {
		regMu.RLock()
		b := backends[name]
		regMu.RUnlock()
		if b != nil {
			return b
		}
	}
	return ref
}

// Resolve maps nil to the process default; non-nil backends pass through.
// Call sites use it so "no backend configured" follows the env default.
func Resolve(b Backend) Backend {
	if b == nil {
		return Default()
	}
	return b
}

// IsReference reports whether b (nil included) is the exact float64
// reference backend — the paths whose results are pinned bit-for-bit by
// the determinism tests.
func IsReference(b Backend) bool {
	return b == nil || b.Name() == ref.Name()
}
