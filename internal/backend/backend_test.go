package backend

import (
	"math"
	"testing"

	"xplace/internal/kernel"
)

// TestRegistryLookup: both backends are registered, lookup works by name,
// empty name resolves to the default, unknown names error.
func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"float64", "float32"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := Lookup("float16"); err == nil {
		t.Fatal("Lookup of unknown backend succeeded")
	}
	if b, _ := Lookup(""); b == nil {
		t.Fatal("Lookup(\"\") returned nil")
	}
	if got := Names(); len(got) < 2 {
		t.Fatalf("Names() = %v, want at least float32+float64", got)
	}
}

// TestEnvDefault: XPLACE_BACKEND selects the process default; Resolve maps
// nil through it and explicit backends pass unchanged.
func TestEnvDefault(t *testing.T) {
	t.Setenv(EnvVar, "float32")
	if got := Default().Name(); got != "float32" {
		t.Fatalf("Default() under env = %q, want float32", got)
	}
	if got := Resolve(nil).Name(); got != "float32" {
		t.Fatalf("Resolve(nil) under env = %q, want float32", got)
	}
	if got := Resolve(Float64()).Name(); got != "float64" {
		t.Fatalf("Resolve(Float64()) = %q, want float64", got)
	}
	t.Setenv(EnvVar, "bogus")
	if got := Default().Name(); got != "float64" {
		t.Fatalf("Default() under unknown env = %q, want reference", got)
	}
}

// TestIsReference: nil and the float64 backend are the reference; float32
// is not.
func TestIsReference(t *testing.T) {
	if !IsReference(nil) || !IsReference(Float64()) {
		t.Fatal("nil / Float64() should be the reference backend")
	}
	if IsReference(Float32()) {
		t.Fatal("Float32() must not count as the reference backend")
	}
}

// TestBufAllocRoundTrip: Alloc returns a zeroed buffer of the backend's
// element type against the engine arena; Free returns every byte.
func TestBufAllocRoundTrip(t *testing.T) {
	e := kernel.New(kernel.Options{Workers: 2})
	defer e.Close()
	for _, b := range []Backend{Float64(), Float32()} {
		buf := b.Alloc(e, 1024)
		if buf.Len() != 1024 {
			t.Fatalf("%s: Len = %d", b.Name(), buf.Len())
		}
		if st := e.ArenaStats(); st.InUse != int64(b.ElemBytes())*1024 {
			t.Fatalf("%s: InUse = %d, want %d", b.Name(), st.InUse, b.ElemBytes()*1024)
		}
		if (b.Name() == "float64") != (buf.Float64() != nil) {
			t.Fatalf("%s: wrong populated view", b.Name())
		}
		b.Free(e, buf)
		if st := e.ArenaStats(); st.InUse != 0 {
			t.Fatalf("%s: InUse after free = %d", b.Name(), st.InUse)
		}
	}
}

// TestVecBodiesParity: every standard elementwise body computes the same
// values on both backends (within float32 rounding), through Bind + Run.
func TestVecBodiesParity(t *testing.T) {
	const n = 257 // odd, not a power of two
	src := make([]float64, n)
	add := make([]float64, n)
	for i := range src {
		src[i] = math.Sin(float64(i)*0.37) * 3
		add[i] = math.Cos(float64(i) * 0.11)
	}
	const s = 1.75

	want := map[string][]float64{
		"vec.copy": src, "vec.scale": nil, "vec.add": nil, "vec.axpby": nil,
	}
	want["vec.scale"] = make([]float64, n)
	want["vec.add"] = make([]float64, n)
	want["vec.axpby"] = make([]float64, n)
	for i := 0; i < n; i++ {
		want["vec.scale"][i] = s * src[i]
		want["vec.add"][i] = src[i] + add[i]
		want["vec.axpby"][i] = src[i] + s*add[i]
	}

	e := kernel.New(kernel.Options{Workers: 2})
	defer e.Close()
	for _, b := range []Backend{Float64(), Float32()} {
		tol := 0.0
		if b.Name() == "float32" {
			tol = 1e-6
		}
		// Load src/add across the boundary once.
		a := b.Alloc(e, n)
		bb := b.Alloc(e, n)
		ld := b.Kernels().Make("cvt.load")
		ld.Bind(a, WrapF64(src), Buf{}, 0)
		ld.Run(0, n)
		ld.Bind(bb, WrapF64(add), Buf{}, 0)
		ld.Run(0, n)

		dst := b.Alloc(e, n)
		out := make([]float64, n)
		st := b.Kernels().Make("cvt.store")
		for name, exp := range want {
			body := b.Kernels().Make(name)
			body.Bind(dst, a, bb, s)
			body.Run(0, n)
			st.Bind(WrapF64(out), dst, Buf{}, 0)
			st.Run(0, n)
			for i := 0; i < n; i++ {
				if d := math.Abs(out[i] - exp[i]); d > tol*(1+math.Abs(exp[i])) {
					t.Fatalf("%s/%s: out[%d] = %g, want %g", b.Name(), name, i, out[i], exp[i])
				}
			}
		}
		b.Free(e, a)
		b.Free(e, bb)
		b.Free(e, dst)
	}
}

// TestKernelsUnknownBodyPanics: asking for an unregistered body is a
// programming error.
func TestKernelsUnknownBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Make of unknown body did not panic")
		}
	}()
	Float64().Kernels().Make("vec.nonsense")
}
