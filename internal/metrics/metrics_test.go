package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if _, ok := r.Last(); ok {
		t.Error("empty recorder should report no last record")
	}
	if r.Len() != 0 {
		t.Error("empty recorder Len != 0")
	}
	r.Add(Record{Iter: 0, HPWL: 100})
	r.Add(Record{Iter: 1, HPWL: 90})
	r.Add(Record{Iter: 2, HPWL: 95})
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	last, ok := r.Last()
	if !ok || last.Iter != 2 {
		t.Errorf("Last = %+v", last)
	}
	best, iter := r.BestHPWL()
	if best != 90 || iter != 1 {
		t.Errorf("BestHPWL = %v at %d", best, iter)
	}
	if len(r.History()) != 3 {
		t.Error("History length wrong")
	}
}

func TestBestHPWLEmpty(t *testing.T) {
	var r Recorder
	if _, iter := r.BestHPWL(); iter != -1 {
		t.Errorf("empty BestHPWL iter = %d", iter)
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Add(Record{Iter: 0, HPWL: 123.5, Overflow: 0.8, Gamma: 2, Lambda: 1e-3,
		Omega: 0.1, R: 0.005, SimTime: 1500 * time.Microsecond, WallTime: time.Millisecond})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "iter,hpwl") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "123.5") || !strings.Contains(lines[1], "1500") {
		t.Errorf("row = %q", lines[1])
	}
}
