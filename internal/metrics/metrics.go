// Package metrics implements the evaluator/recorder modules of the core
// engine (Figure 1): per-iteration placement metrics are appended to a
// Recorder whose history backs the paper's trace figures (the r-ratio
// observation of §3.1.4, convergence curves) and the experiment reports.
package metrics

import (
	"fmt"
	"io"
	"time"
)

// Record is one GP iteration's snapshot.
type Record struct {
	Iter     int
	HPWL     float64
	WA       float64 // smoothed wirelength
	Energy   float64 // density penalty value
	Overflow float64
	Gamma    float64
	Lambda   float64
	Omega    float64 // placement-stage metric (§3.2)
	R        float64 // lambda*|gradD|/|gradWL| (§3.1.4)
	SimTime  time.Duration
	WallTime time.Duration
}

// Recorder accumulates iteration records. The zero value is ready to use.
type Recorder struct {
	history []Record
}

// Add appends a record.
func (r *Recorder) Add(rec Record) { r.history = append(r.history, rec) }

// Len returns the number of records.
func (r *Recorder) Len() int { return len(r.history) }

// Last returns the most recent record; ok is false when empty.
func (r *Recorder) Last() (Record, bool) {
	if len(r.history) == 0 {
		return Record{}, false
	}
	return r.history[len(r.history)-1], true
}

// History returns the full record slice (not a copy; callers must not
// mutate).
func (r *Recorder) History() []Record { return r.history }

// BestHPWL returns the minimum HPWL seen and its iteration (-1 if empty).
func (r *Recorder) BestHPWL() (float64, int) {
	best, iter := 0.0, -1
	for _, rec := range r.history {
		if iter == -1 || rec.HPWL < best {
			best, iter = rec.HPWL, rec.Iter
		}
	}
	return best, iter
}

// WriteCSV dumps the history as CSV (header + one row per record).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "iter,hpwl,wa,energy,overflow,gamma,lambda,omega,r,sim_us,wall_us"); err != nil {
		return err
	}
	for _, rec := range r.history {
		if _, err := fmt.Fprintf(w, "%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%d,%d\n",
			rec.Iter, rec.HPWL, rec.WA, rec.Energy, rec.Overflow, rec.Gamma,
			rec.Lambda, rec.Omega, rec.R, rec.SimTime.Microseconds(), rec.WallTime.Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
