package tensor

import (
	"math"
	"testing"

	"xplace/internal/backend"
	"xplace/internal/kernel"
)

// TestBackedReferenceAliases: on the reference backend the float64 facade
// IS the arena storage — writes land without Flush, and autograd ops see
// them directly.
func TestBackedReferenceAliases(t *testing.T) {
	e := kernel.New(kernel.Options{Workers: 2})
	defer e.Close()
	bt := NewOn(e, backend.Float64(), 4, 8)
	if bt.Len() != 32 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if e.ArenaStats().InUse != 32*8 {
		t.Fatalf("InUse = %d, want %d", e.ArenaStats().InUse, 32*8)
	}
	bt.Data[5] = 7.5
	if got := bt.Buffer().Float64()[5]; got != 7.5 {
		t.Fatalf("facade write did not reach storage: %v", got)
	}
	bt.Flush(e) // both are no-ops on the reference backend
	bt.Sync(e)
	if bt.Data[5] != 7.5 {
		t.Fatal("no-op sync clobbered the facade")
	}
	bt.Release(e)
	bt.Release(e) // idempotent
	if e.ArenaStats().InUse != 0 {
		t.Fatalf("InUse after release = %d", e.ArenaStats().InUse)
	}
}

// TestBackedFloat32RoundTrip: the float32 storage round-trips the facade
// through Flush/Sync within float32 rounding, and the ops still read the
// float64 facade.
func TestBackedFloat32RoundTrip(t *testing.T) {
	e := kernel.New(kernel.Options{Workers: 2})
	defer e.Close()
	bt := NewOn(e, backend.Float32(), 100)
	if bt.Buffer().Float32() == nil || bt.Buffer().Float64() != nil {
		t.Fatal("float32 tensor must hold a float32 buffer")
	}
	if e.ArenaStats().InUse != 128*4 { // size-classed up to 128 elements
		t.Fatalf("InUse = %d, want %d", e.ArenaStats().InUse, 128*4)
	}
	for i := range bt.Data {
		bt.Data[i] = math.Sin(float64(i) * 0.3)
	}
	bt.Flush(e)
	// Scribble over the facade, then restore it from storage.
	for i := range bt.Data {
		bt.Data[i] = -1
	}
	bt.Sync(e)
	for i := range bt.Data {
		want := math.Sin(float64(i) * 0.3)
		if math.Abs(bt.Data[i]-want) > 1e-6 {
			t.Fatalf("Data[%d] = %v, want ~%v", i, bt.Data[i], want)
		}
	}
	// The facade feeds the autograd ops unchanged.
	ctx := NewContext(e)
	s := Sum(ctx, bt.Tensor)
	var want float64
	for i := 0; i < 100; i++ {
		want += math.Sin(float64(i) * 0.3)
	}
	if math.Abs(s.Data[0]-want) > 1e-5 {
		t.Fatalf("Sum over facade = %v, want ~%v", s.Data[0], want)
	}
	bt.Release(e)
	if e.ArenaStats().InUse != 0 {
		t.Fatalf("InUse after release = %d", e.ArenaStats().InUse)
	}
}

// TestBackedDefaultResolution: nil backend resolves through the process
// default (the XPLACE_BACKEND env var).
func TestBackedDefaultResolution(t *testing.T) {
	t.Setenv(backend.EnvVar, "float32")
	e := kernel.New(kernel.Options{Workers: 1})
	defer e.Close()
	bt := NewOn(e, nil, 16)
	defer bt.Release(e)
	if bt.Backend().Name() != "float32" {
		t.Fatalf("resolved backend = %q, want float32", bt.Backend().Name())
	}
}
