package tensor

import (
	"xplace/internal/backend"
	"xplace/internal/kernel"
)

// Backend-backed tensors: the element storage is an opaque backend.Buf
// whose element type belongs to the compute backend, while Data remains a
// float64 facade view for the autograd operators (which are elementwise
// float64 by contract). On the reference backend the facade IS the buffer
// — Data aliases the float64 storage and Sync/Flush are free. On a
// reduced-precision backend the facade is a separate float64 view and the
// registry cvt.* bodies convert across the boundary, each as one kernel.

// Backed couples a Tensor's float64 facade with its backend storage.
type Backed struct {
	*Tensor
	be  backend.Backend
	buf backend.Buf
	ld  backend.VecBody // facade -> buffer (cvt.load)
	st  backend.VecBody // buffer -> facade (cvt.store)
}

// NewOn allocates a zero tensor of the given shape whose element storage
// lives in e's arena under backend b (nil selects the reference backend).
// Call Release when done so the storage returns to the arena.
func NewOn(e *kernel.Engine, b backend.Backend, shape ...int) *Backed {
	b = backend.Resolve(b)
	t := New(shape...) // validates shape; Data is the facade
	n := t.Len()
	bt := &Backed{Tensor: t, be: b, buf: b.Alloc(e, n)}
	if f64 := bt.buf.Float64(); f64 != nil {
		// Reference backend: zero-copy — the facade aliases the storage.
		bt.Tensor.Data = f64
		return bt
	}
	bt.ld = b.Kernels().Make("cvt.load")
	bt.st = b.Kernels().Make("cvt.store")
	return bt
}

// Backend returns the tensor's compute backend.
func (t *Backed) Backend() backend.Backend { return t.be }

// Buffer exposes the opaque element storage for backend-aware kernels.
func (t *Backed) Buffer() backend.Buf { return t.buf }

// Flush writes the float64 facade into the backend buffer (one kernel).
// A no-op on the reference backend, where the two alias.
func (t *Backed) Flush(e *kernel.Engine) {
	if t.ld.Run == nil {
		return
	}
	t.ld.Bind(t.buf, backend.WrapF64(t.Data), backend.Buf{}, 0)
	e.Launch("tensor.cvt_load", t.Len(), func(lo, hi int) { t.ld.Run(lo, hi) })
}

// Sync reads the backend buffer back into the float64 facade (one
// kernel). A no-op on the reference backend.
func (t *Backed) Sync(e *kernel.Engine) {
	if t.st.Run == nil {
		return
	}
	t.st.Bind(backend.WrapF64(t.Data), t.buf, backend.Buf{}, 0)
	e.Launch("tensor.cvt_store", t.Len(), func(lo, hi int) { t.st.Run(lo, hi) })
}

// Release returns the element storage to e's arena. Idempotent. The
// facade Data stays readable on a reduced-precision backend; on the
// reference backend it aliased the storage and must not be used after
// Release.
func (t *Backed) Release(e *kernel.Engine) {
	if t.buf.IsZero() {
		return
	}
	t.be.Free(e, t.buf)
	t.buf = backend.Buf{}
}
