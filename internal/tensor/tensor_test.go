package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"xplace/internal/kernel"
)

func ctx() *Context { return NewContext(kernel.New(kernel.Options{Workers: 2})) }

func TestNewAndFull(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || len(a.Shape) != 2 {
		t.Fatalf("bad tensor %v", a.Shape)
	}
	b := Full(7, 4)
	for _, v := range b.Data {
		if v != 7 {
			t.Fatal("Full wrong")
		}
	}
	c := FromSlice([]float64{1, 2, 3})
	if c.Len() != 3 || c.Data[1] != 2 {
		t.Fatal("FromSlice wrong")
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(-1)
}

func TestElementwiseForward(t *testing.T) {
	c := ctx()
	a := FromSlice([]float64{1, 2, 3})
	b := FromSlice([]float64{10, 20, 30})
	if got := Add(c, a, b).Data; got[2] != 33 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(c, b, a).Data; got[0] != 9 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(c, a, b).Data; got[1] != 40 {
		t.Errorf("Mul = %v", got)
	}
	if got := Scale(c, a, -2).Data; got[2] != -6 {
		t.Errorf("Scale = %v", got)
	}
	if got := Sum(c, a).Data[0]; got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := Dot(c, a, b).Data[0]; got != 140 {
		t.Errorf("Dot = %v", got)
	}
	if got := Exp(c, FromSlice([]float64{0, 1})).Data; got[0] != 1 || math.Abs(got[1]-math.E) > 1e-12 {
		t.Errorf("Exp = %v", got)
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Add(ctx(), FromSlice([]float64{1}), FromSlice([]float64{1, 2}))
}

func TestBackwardSimpleChain(t *testing.T) {
	// loss = sum((a+b) * a) ; dloss/da = 2a + b, dloss/db = a
	c := ctx()
	a := FromSlice([]float64{1, 2, 3}).RequiresGrad()
	b := FromSlice([]float64{4, 5, 6}).RequiresGrad()
	loss := Sum(c, Mul(c, Add(c, a, b), a))
	Backward(c, loss)
	wantA := []float64{2*1 + 4, 2*2 + 5, 2*3 + 6}
	wantB := []float64{1, 2, 3}
	for i := range wantA {
		if math.Abs(a.Grad[i]-wantA[i]) > 1e-12 {
			t.Errorf("a.Grad[%d] = %v, want %v", i, a.Grad[i], wantA[i])
		}
		if math.Abs(b.Grad[i]-wantB[i]) > 1e-12 {
			t.Errorf("b.Grad[%d] = %v, want %v", i, b.Grad[i], wantB[i])
		}
	}
}

func TestBackwardSharedSubexpression(t *testing.T) {
	// y = a*a used twice: loss = sum(y) + sum(y) -> dloss/da = 4a.
	c := ctx()
	a := FromSlice([]float64{1, -2, 3}).RequiresGrad()
	y := Mul(c, a, a)
	loss := Add(c, Sum(c, y), Sum(c, y))
	Backward(c, loss)
	for i, v := range a.Data {
		if math.Abs(a.Grad[i]-4*v) > 1e-12 {
			t.Errorf("grad[%d] = %v, want %v", i, a.Grad[i], 4*v)
		}
	}
}

func TestBackwardScaleExpDot(t *testing.T) {
	// loss = dot(exp(2a), b); dloss/da = 2*exp(2a)*b.
	c := ctx()
	a := FromSlice([]float64{0.1, 0.2}).RequiresGrad()
	b := FromSlice([]float64{3, -1})
	loss := Dot(c, Exp(c, Scale(c, a, 2)), b)
	Backward(c, loss)
	for i := range a.Data {
		want := 2 * math.Exp(2*a.Data[i]) * b.Data[i]
		if math.Abs(a.Grad[i]-want) > 1e-12 {
			t.Errorf("grad[%d] = %v, want %v", i, a.Grad[i], want)
		}
	}
	if b.Grad != nil {
		t.Error("b does not require grad; must stay nil")
	}
}

// Property: autograd gradient of sum(a*a*s) matches the analytic 2*s*a for
// random vectors.
func TestBackwardMatchesAnalytic(t *testing.T) {
	f := func(vals []float64, s float64) bool {
		if len(vals) == 0 || len(vals) > 64 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(s) || math.Abs(s) > 1e3 {
			return true
		}
		c := ctx()
		a := FromSlice(append([]float64(nil), vals...)).RequiresGrad()
		loss := Scale(c, Sum(c, Mul(c, a, a)), s)
		Backward(c, loss)
		for i := range vals {
			want := 2 * s * vals[i]
			tol := 1e-9 * (1 + math.Abs(want))
			if math.Abs(a.Grad[i]-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	c := ctx()
	a := FromSlice([]float64{1, 2}).RequiresGrad()
	Backward(c, Add(c, a, a))
}

func TestNoGradContextBuildsNoGraph(t *testing.T) {
	c := ctx()
	c.NoGrad = true
	a := FromSlice([]float64{1, 2}).RequiresGrad()
	out := Mul(c, a, a)
	if out.node != nil {
		t.Error("NoGrad must not attach a node")
	}
}

func TestInPlaceOps(t *testing.T) {
	c := ctx()
	a := FromSlice([]float64{1, 2, 3})
	b := FromSlice([]float64{10, 10, 10})
	AddInPlace(c, a, b)
	if a.Data[0] != 11 {
		t.Errorf("AddInPlace = %v", a.Data)
	}
	ScaleInPlace(c, a, 0.5)
	if a.Data[2] != 6.5 {
		t.Errorf("ScaleInPlace = %v", a.Data)
	}
}

func TestInPlaceOnGradTensorPanics(t *testing.T) {
	c := ctx()
	a := FromSlice([]float64{1}).RequiresGrad()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	AddInPlace(c, a, FromSlice([]float64{1}))
}

func TestCustomOpApply(t *testing.T) {
	// A custom "square" op with hand-written backward, per Figure 2(b).
	square := Op{
		Name: "square",
		Forward: func(ctx *Context, in []*Tensor) *Tensor {
			a := in[0]
			out := New(a.Shape...)
			ctx.E.Launch("square.fwd", a.Len(), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Data[i] = a.Data[i] * a.Data[i]
				}
			})
			return out
		},
		Backward: func(ctx *Context, in []*Tensor, out *Tensor, g []float64) {
			a := in[0]
			if !a.NeedsGrad() {
				return
			}
			ga := make([]float64, a.Len())
			ctx.E.Launch("square.bwd", a.Len(), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ga[i] = 2 * a.Data[i] * g[i]
				}
			})
			a.AccumulateGrad(ga)
		},
	}
	c := ctx()
	a := FromSlice([]float64{3, -4}).RequiresGrad()
	loss := Sum(c, Apply(c, square, a))
	Backward(c, loss)
	if a.Grad[0] != 6 || a.Grad[1] != -8 {
		t.Errorf("custom op grads = %v", a.Grad)
	}
}

// The launch-count assertion behind operator reduction: computing the same
// gradient through autograd must launch strictly more kernels than a fused
// hand-written gradient pass.
func TestAutogradLaunchesExceedHandWritten(t *testing.T) {
	n := 4096
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%17) * 0.25
	}

	// Autograd route: loss = sum(a*a), Backward.
	eAuto := kernel.New(kernel.Options{Workers: 2})
	cAuto := NewContext(eAuto)
	a := FromSlice(append([]float64(nil), data...)).RequiresGrad()
	Backward(cAuto, Sum(cAuto, Mul(cAuto, a, a)))

	// Hand route: single fused kernel writes the gradient directly.
	eHand := kernel.New(kernel.Options{Workers: 2})
	grad := make([]float64, n)
	eHand.Launch("fused.grad", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			grad[i] = 2 * data[i]
		}
	})

	la, lh := eAuto.Stats().Launches, eHand.Stats().Launches
	if la <= lh {
		t.Errorf("autograd launches %d should exceed hand-written %d", la, lh)
	}
	for i := range grad {
		if math.Abs(grad[i]-a.Grad[i]) > 1e-12 {
			t.Fatalf("gradients disagree at %d: %v vs %v", i, grad[i], a.Grad[i])
		}
	}
}

func TestDoubleBackwardOverSharedGraph(t *testing.T) {
	// Running Backward twice over (parts of) the same graph must not let
	// stale interior gradients accumulate: grads after the second pass
	// must equal leaf-accumulated 2x the analytic value, not more.
	c := ctx()
	a := FromSlice([]float64{1, 2}).RequiresGrad()
	y := Mul(c, a, a) // interior
	loss1 := Sum(c, y)
	Backward(c, loss1)
	loss2 := Sum(c, y) // shares the interior node y
	Backward(c, loss2)
	for i, v := range a.Data {
		want := 2 * (2 * v) // two accumulated passes of d(sum a^2)/da
		if math.Abs(a.Grad[i]-want) > 1e-12 {
			t.Errorf("grad[%d] = %v, want %v", i, a.Grad[i], want)
		}
	}
}

func TestCloneAndZeroGrad(t *testing.T) {
	a := FromSlice([]float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone must deep-copy")
	}
	a.AccumulateGrad([]float64{5, 5})
	a.ZeroGrad()
	if a.Grad[0] != 0 || a.Grad[1] != 0 {
		t.Error("ZeroGrad failed")
	}
}

func TestAccumulateGradMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	FromSlice([]float64{1, 2}).AccumulateGrad([]float64{1})
}
