// Package tensor is a miniature differentiable tensor library — the
// reproduction's stand-in for PyTorch. Tensors are flat float64 buffers
// with a shape; operators execute through a kernel.Engine so that every
// forward *and backward* operator costs one kernel launch, exactly the
// accounting the paper's operator-reduction (OR) analysis depends on:
// building a loss from small autograd ops roughly doubles the launch count
// relative to hand-derived gradients.
//
// The library supports reverse-mode automatic differentiation (Backward),
// in-place operators that bypass graph construction (the paper's "in-place
// ops avoid redundant copying"), and user-defined operators with custom
// forward/backward kernels (the Figure 2(b) extension path: a user loss is
// differentiated by autograd and its gradient accumulated onto numerically
// computed gradients).
package tensor

import (
	"fmt"
	"math"

	"xplace/internal/kernel"
)

// Context carries the execution engine and the grad-mode flag. A nil
// Context is invalid; use NewContext.
type Context struct {
	E *kernel.Engine
	// NoGrad disables graph construction (PyTorch's torch.no_grad()).
	NoGrad bool
}

// NewContext returns a Context executing on e with gradients enabled.
func NewContext(e *kernel.Engine) *Context { return &Context{E: e} }

// Tensor is an n-dimensional array of float64. Data is row-major.
type Tensor struct {
	Data  []float64
	Shape []int

	requiresGrad bool
	// Grad is allocated lazily by Backward (or AccumulateGrad).
	Grad []float64
	node *node
}

// node records how a tensor was produced for reverse-mode autodiff.
type node struct {
	name     string
	parents  []*Tensor
	backward func(ctx *Context, gradOut []float64)
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim in shape %v", shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float64, n), Shape: s}
}

// FromSlice wraps data (not copied) in a 1-D tensor.
func FromSlice(data []float64) *Tensor {
	return &Tensor{Data: data, Shape: []int{len(data)}}
}

// Full returns a tensor of the given shape filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// RequiresGrad marks t as a leaf variable whose gradient should be
// accumulated by Backward. Returns t for chaining.
func (t *Tensor) RequiresGrad() *Tensor {
	t.requiresGrad = true
	return t
}

// NeedsGrad reports whether t participates in autograd (leaf or interior).
func (t *Tensor) NeedsGrad() bool { return t.requiresGrad || t.node != nil }

// Clone returns a deep copy of t's data (no graph history).
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// ZeroGrad clears t's gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// AccumulateGrad adds g into t's gradient, allocating it if needed.
func (t *Tensor) AccumulateGrad(g []float64) {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	if len(g) != len(t.Grad) {
		panic(fmt.Sprintf("tensor: grad size %d != %d", len(g), len(t.Grad)))
	}
	for i, v := range g {
		t.Grad[i] += v
	}
}

func sameSize(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: size mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
}

// attach wires an output tensor into the autograd graph unless grad mode is
// off or no parent needs gradients.
func attach(ctx *Context, out *Tensor, name string, backward func(ctx *Context, gradOut []float64), parents ...*Tensor) {
	if ctx.NoGrad {
		return
	}
	need := false
	for _, p := range parents {
		if p.NeedsGrad() {
			need = true
			break
		}
	}
	if !need {
		return
	}
	out.node = &node{name: name, parents: parents, backward: backward}
}

// Add returns a + b (elementwise), one kernel forward and — if gradients
// flow — one kernel per input backward.
func Add(ctx *Context, a, b *Tensor) *Tensor {
	sameSize(a, b)
	out := New(a.Shape...)
	ctx.E.Launch("add.fwd", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	attach(ctx, out, "add", func(ctx *Context, g []float64) {
		if a.NeedsGrad() {
			ga := ctx.E.Alloc(len(g))
			ctx.E.Launch("add.bwd", len(g), func(lo, hi int) {
				copy(ga[lo:hi], g[lo:hi])
			})
			a.AccumulateGrad(ga)
			ctx.E.Free(ga)
		}
		if b.NeedsGrad() {
			gb := ctx.E.Alloc(len(g))
			ctx.E.Launch("add.bwd", len(g), func(lo, hi int) {
				copy(gb[lo:hi], g[lo:hi])
			})
			b.AccumulateGrad(gb)
			ctx.E.Free(gb)
		}
	}, a, b)
	return out
}

// Sub returns a - b.
func Sub(ctx *Context, a, b *Tensor) *Tensor {
	sameSize(a, b)
	out := New(a.Shape...)
	ctx.E.Launch("sub.fwd", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	attach(ctx, out, "sub", func(ctx *Context, g []float64) {
		if a.NeedsGrad() {
			ga := ctx.E.Alloc(len(g))
			ctx.E.Launch("sub.bwd", len(g), func(lo, hi int) {
				copy(ga[lo:hi], g[lo:hi])
			})
			a.AccumulateGrad(ga)
			ctx.E.Free(ga)
		}
		if b.NeedsGrad() {
			gb := ctx.E.Alloc(len(g))
			ctx.E.Launch("sub.bwd", len(g), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					gb[i] = -g[i]
				}
			})
			b.AccumulateGrad(gb)
			ctx.E.Free(gb)
		}
	}, a, b)
	return out
}

// Mul returns a * b (elementwise).
func Mul(ctx *Context, a, b *Tensor) *Tensor {
	sameSize(a, b)
	out := New(a.Shape...)
	ctx.E.Launch("mul.fwd", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	attach(ctx, out, "mul", func(ctx *Context, g []float64) {
		if a.NeedsGrad() {
			ga := ctx.E.Alloc(len(g))
			ctx.E.Launch("mul.bwd", len(g), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ga[i] = g[i] * b.Data[i]
				}
			})
			a.AccumulateGrad(ga)
			ctx.E.Free(ga)
		}
		if b.NeedsGrad() {
			gb := ctx.E.Alloc(len(g))
			ctx.E.Launch("mul.bwd", len(g), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					gb[i] = g[i] * a.Data[i]
				}
			})
			b.AccumulateGrad(gb)
			ctx.E.Free(gb)
		}
	}, a, b)
	return out
}

// Scale returns s * a.
func Scale(ctx *Context, a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	ctx.E.Launch("scale.fwd", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * s
		}
	})
	attach(ctx, out, "scale", func(ctx *Context, g []float64) {
		ga := ctx.E.Alloc(len(g))
		ctx.E.Launch("scale.bwd", len(g), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ga[i] = g[i] * s
			}
		})
		a.AccumulateGrad(ga)
		ctx.E.Free(ga)
	}, a)
	return out
}

// Sum returns the scalar (shape [1]) sum of a.
func Sum(ctx *Context, a *Tensor) *Tensor {
	out := New(1)
	out.Data[0] = ctx.E.ParallelReduce("sum.fwd", a.Len(), 0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += a.Data[i]
			}
			return s
		}, func(x, y float64) float64 { return x + y })
	attach(ctx, out, "sum", func(ctx *Context, g []float64) {
		ga := ctx.E.Alloc(a.Len())
		gv := g[0]
		ctx.E.Launch("sum.bwd", a.Len(), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ga[i] = gv
			}
		})
		a.AccumulateGrad(ga)
		ctx.E.Free(ga)
	}, a)
	return out
}

// Dot returns the scalar inner product <a, b>.
func Dot(ctx *Context, a, b *Tensor) *Tensor {
	sameSize(a, b)
	out := New(1)
	out.Data[0] = ctx.E.ParallelReduce("dot.fwd", a.Len(), 0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += a.Data[i] * b.Data[i]
			}
			return s
		}, func(x, y float64) float64 { return x + y })
	attach(ctx, out, "dot", func(ctx *Context, g []float64) {
		gv := g[0]
		if a.NeedsGrad() {
			ga := ctx.E.Alloc(a.Len())
			ctx.E.Launch("dot.bwd", a.Len(), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ga[i] = gv * b.Data[i]
				}
			})
			a.AccumulateGrad(ga)
			ctx.E.Free(ga)
		}
		if b.NeedsGrad() {
			gb := ctx.E.Alloc(b.Len())
			ctx.E.Launch("dot.bwd", b.Len(), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					gb[i] = gv * a.Data[i]
				}
			})
			b.AccumulateGrad(gb)
			ctx.E.Free(gb)
		}
	}, a, b)
	return out
}

// Exp returns elementwise e^a.
func Exp(ctx *Context, a *Tensor) *Tensor {
	out := New(a.Shape...)
	ctx.E.Launch("exp.fwd", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = math.Exp(a.Data[i])
		}
	})
	attach(ctx, out, "exp", func(ctx *Context, g []float64) {
		ga := ctx.E.Alloc(len(g))
		ctx.E.Launch("exp.bwd", len(g), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ga[i] = g[i] * out.Data[i]
			}
		})
		a.AccumulateGrad(ga)
		ctx.E.Free(ga)
	}, a)
	return out
}

// AddInPlace performs a += b without building graph history — PyTorch-style
// in-place operators; it is an error to apply it to a tensor that needs
// gradients (the graph would silently become wrong).
func AddInPlace(ctx *Context, a, b *Tensor) {
	sameSize(a, b)
	if a.NeedsGrad() {
		panic("tensor: AddInPlace on a tensor that requires grad")
	}
	ctx.E.Launch("add_", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] += b.Data[i]
		}
	})
}

// ScaleInPlace performs a *= s in place (no graph history).
func ScaleInPlace(ctx *Context, a *Tensor, s float64) {
	if a.NeedsGrad() {
		panic("tensor: ScaleInPlace on a tensor that requires grad")
	}
	ctx.E.Launch("scale_", a.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Data[i] *= s
		}
	})
}

// Op is a user-defined differentiable operator: Forward fills out given the
// inputs, Backward accumulates input gradients given the output gradient.
// Both run as kernels named after the op (this is how the wirelength and
// density operators of the baseline placer plug into autograd).
type Op struct {
	Name string
	// Forward computes the op's output tensor from the inputs.
	Forward func(ctx *Context, inputs []*Tensor) *Tensor
	// Backward receives the upstream gradient and must call
	// AccumulateGrad on any input that NeedsGrad.
	Backward func(ctx *Context, inputs []*Tensor, out *Tensor, gradOut []float64)
}

// Apply runs op and wires it into the graph.
func Apply(ctx *Context, op Op, inputs ...*Tensor) *Tensor {
	out := op.Forward(ctx, inputs)
	attach(ctx, out, op.Name, func(ctx *Context, g []float64) {
		op.Backward(ctx, inputs, out, g)
	}, inputs...)
	return out
}

// Backward runs reverse-mode autodiff from t (which must be scalar, shape
// [1]) and accumulates gradients into every reachable tensor that
// NeedsGrad. This is the "heavy autograd engine" of §3.1.3: every op's
// backward launches its own kernels.
func Backward(ctx *Context, t *Tensor) {
	if t.Len() != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	// Topological order via DFS.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	var visit func(x *Tensor)
	visit = func(x *Tensor) {
		if visited[x] || x.node == nil {
			return
		}
		visited[x] = true
		for _, p := range x.node.parents {
			visit(p)
		}
		order = append(order, x)
	}
	visit(t)

	// Interior (non-leaf) gradients are per-backward state: clear them so
	// a second Backward over a shared graph does not accumulate stale
	// upstream gradients. Leaf tensors keep PyTorch's accumulate-across-
	// calls semantics.
	for _, x := range order {
		x.Grad = nil
	}

	grads := map[*Tensor][]float64{t: {1}}
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		g := grads[x]
		if g == nil {
			continue
		}
		// Leaf accumulation happens inside each op's backward via
		// AccumulateGrad; interior gradients flow through the map. To keep
		// both uniform, ops call AccumulateGrad, and we lift interior
		// tensors' Grad into the map for their own backward pass.
		x.node.backward(ctx, g)
		for _, p := range x.node.parents {
			if p.node != nil && p.Grad != nil {
				grads[p] = p.Grad
			}
		}
	}
}
