package lefdef

import (
	"strings"
	"testing"
)

const seedLEF = `MACRO INV
  SIZE 2 BY 4 ;
  PIN A
    PORT
      RECT 0.1 0.1 0.3 0.3 ;
    END
  END A
  PIN Z
    PORT
      RECT 1.7 3.7 1.9 3.9 ;
    END
  END Z
END INV
`

const seedDEF = `VERSION 5.8 ;
DESIGN top ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
ROW r0 core 0 0 N DO 50 BY 1 STEP 2 0 ;
COMPONENTS 2 ;
- u1 INV + PLACED ( 10 10 ) N ;
- u2 INV + FIXED ( 50 50 ) N ;
END COMPONENTS
PINS 1 ;
- io1 + NET n1 + PLACED ( 0 50 ) N ;
END PINS
NETS 1 ;
- n1 ( u1 Z ) ( u2 A ) ( PIN io1 ) ;
END NETS
END DESIGN
`

// FuzzParseLEF feeds hostile LEF streams to the parser: errors are fine,
// panics and runaway allocation are not.
func FuzzParseLEF(f *testing.F) {
	f.Add(seedLEF)
	f.Add("MACRO M\n SIZE -1 BY 2 ;\nEND M\n")    // negative size
	f.Add("MACRO M\n SIZE NaN BY Inf ;\nEND M\n") // non-finite size
	f.Add("MACRO M\n PIN A\n RECT 0 0\n")         // truncated mid-pin
	f.Add("MACRO")                                // truncated mid-header
	f.Add("")
	f.Fuzz(func(t *testing.T, lef string) {
		lib, err := ParseLEF(strings.NewReader(lef))
		if err != nil {
			return
		}
		for name, m := range lib.Macros {
			if m.W < 0 || m.H < 0 {
				t.Fatalf("accepted macro %q with negative size %gx%g", name, m.W, m.H)
			}
		}
	})
}

// FuzzParseDEF fuzzes the LEF+DEF pair jointly so the DEF half can
// exercise macro lookups against whatever library the LEF half produced.
func FuzzParseDEF(f *testing.F) {
	f.Add(seedLEF, seedDEF)
	f.Add(seedLEF, "DIEAREA ( 0 0 ) ( Inf Inf ) ;\n")                        // non-finite region
	f.Add(seedLEF, "DESIGN d ;\nDIEAREA ( 5 5 ) ( 1 1 ) ;\n")                // inverted region
	f.Add(seedLEF, "DIEAREA ( 0 0 ) ( 9 9 ) ;\nCOMPONENTS 1 ;\n- u1 NOPE ;") // unknown macro
	f.Add(seedLEF, "DIEAREA ( 0 0 ) ( 9 9 ) ;\nNETS 1 ;\n- n ( u9 A ) ;")    // unknown component
	f.Add("MACRO M\n SIZE 1 BY 1 ;\nEND M\n", "REGIONS 1 ;\nEND REGIONS")    // skipped section at EOF
	f.Fuzz(func(t *testing.T, lef, def string) {
		lib, err := ParseLEF(strings.NewReader(lef))
		if err != nil {
			return
		}
		d, err := ParseDEF(strings.NewReader(def), lib)
		if err != nil {
			return
		}
		if !d.Finished() {
			t.Fatal("accepted design is not finished")
		}
		if d.Region.Empty() {
			t.Fatal("accepted design with empty region")
		}
		if got := d.NetPinStart[d.NumNets()]; got != d.NumPins() {
			t.Fatalf("CSR pin count %d != NumPins %d", got, d.NumPins())
		}
	})
}
