package lefdef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xplace/internal/netlist"
)

const sampleLEF = `
# a tiny library
MACRO INV
  CLASS CORE ;
  SIZE 2 BY 8 ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER metal1 ;
      RECT 0.2 3.0 0.6 5.0 ;
    END
  END A
  PIN Z
    DIRECTION OUTPUT ;
    PORT
      LAYER metal1 ;
      RECT 1.4 3.0 1.8 5.0 ;
    END
  END Z
END INV
MACRO RAM
  CLASS BLOCK ;
  SIZE 40 BY 32 ;
  PIN D
    PORT
      LAYER metal2 ;
      RECT 0 0 2 2 ;
    END
  END D
END RAM
`

const sampleDEF = `
VERSION 5.8 ;
DESIGN toy ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 200 160 ) ;
ROW r0 core 0 0 N DO 100 BY 1 STEP 2 0 ;
ROW r1 core 0 8 N DO 100 BY 1 STEP 2 0 ;
COMPONENTS 3 ;
- u1 INV + PLACED ( 10 0 ) N ;
- u2 INV + PLACED ( 20 8 ) N ;
- m1 RAM + FIXED ( 100 100 ) N ;
END COMPONENTS
PINS 1 ;
- clk + NET clk + FIXED ( 0 80 ) N ;
END PINS
NETS 2 ;
- n1 ( u1 Z ) ( u2 A ) ;
- clk ( PIN clk ) ( u1 A ) ( m1 D ) ;
END NETS
END DESIGN
`

func TestParseLEF(t *testing.T) {
	lib, err := ParseLEF(strings.NewReader(sampleLEF))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Macros) != 2 {
		t.Fatalf("macros = %d", len(lib.Macros))
	}
	inv := lib.Macros["INV"]
	if inv.W != 2 || inv.H != 8 {
		t.Errorf("INV size = %gx%g", inv.W, inv.H)
	}
	a := inv.Pins["A"]
	if a.X != 0.4 || a.Y != 4.0 {
		t.Errorf("pin A offset = (%v,%v), want rect center (0.4,4)", a.X, a.Y)
	}
	z := inv.Pins["Z"]
	if z.X != 1.6 {
		t.Errorf("pin Z x = %v", z.X)
	}
	ram := lib.Macros["RAM"]
	if ram.W != 40 || ram.H != 32 || len(ram.Pins) != 1 {
		t.Errorf("RAM = %+v", ram)
	}
}

func TestParseLEFEmpty(t *testing.T) {
	if _, err := ParseLEF(strings.NewReader("VERSION 5.8 ;")); err == nil {
		t.Error("want error for LEF without macros")
	}
}

func TestParseDEF(t *testing.T) {
	lib, err := ParseLEF(strings.NewReader(sampleLEF))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDEF(strings.NewReader(sampleDEF), lib)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "toy" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Region.Hx != 200 || d.Region.Hy != 160 {
		t.Errorf("region = %v", d.Region)
	}
	if len(d.Rows) != 2 || d.Rows[1].Y != 8 || d.Rows[0].X1 != 200 {
		t.Errorf("rows = %+v", d.Rows)
	}
	// 3 components + 1 IO pin cell.
	if d.NumCells() != 4 {
		t.Fatalf("cells = %d", d.NumCells())
	}
	// u1 at lower-left (10,0), INV 2x8 -> center (11,4).
	if d.CellX[0] != 11 || d.CellY[0] != 4 {
		t.Errorf("u1 center = (%v,%v)", d.CellX[0], d.CellY[0])
	}
	if d.CellKind[2] != netlist.Fixed {
		t.Error("RAM must be fixed")
	}
	if d.CellKind[0] != netlist.Movable {
		t.Error("u1 must be movable")
	}
	if d.NumNets() != 2 || d.NumPins() != 5 {
		t.Fatalf("nets/pins = %d/%d", d.NumNets(), d.NumPins())
	}
	// Pin offset of u1.Z on n1: LEF (1.6, 4) from LL of 2x8 -> (0.6, 0)
	// center-relative.
	if math.Abs(d.PinOffX[0]-0.6) > 1e-12 || d.PinOffY[0] != 0 {
		t.Errorf("u1.Z offset = (%v,%v)", d.PinOffX[0], d.PinOffY[0])
	}
}

func TestParseDEFErrors(t *testing.T) {
	lib, _ := ParseLEF(strings.NewReader(sampleLEF))
	cases := map[string]string{
		"unknown macro": strings.Replace(sampleDEF, "u1 INV", "u1 NAND", 1),
		"unknown comp":  strings.Replace(sampleDEF, "( u2 A )", "( ghost A )", 1),
		"unknown pin":   strings.Replace(sampleDEF, "( u2 A )", "( u2 Q )", 1),
		"no diearea":    strings.Replace(sampleDEF, "DIEAREA ( 0 0 ) ( 200 160 ) ;", "", 1),
	}
	for name, def := range cases {
		if _, err := ParseDEF(strings.NewReader(def), lib); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestParseDEFSkipsRegions(t *testing.T) {
	lib, _ := ParseLEF(strings.NewReader(sampleLEF))
	def := strings.Replace(sampleDEF, "NETS 2 ;",
		"REGIONS 1 ;\n- fence ( 0 0 ) ( 10 10 ) + TYPE FENCE ;\nEND REGIONS\nNETS 2 ;", 1)
	d, err := ParseDEF(strings.NewReader(def), lib)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNets() != 2 {
		t.Errorf("nets after region skip = %d", d.NumNets())
	}
}

func TestWriteDEF(t *testing.T) {
	lib, _ := ParseLEF(strings.NewReader(sampleLEF))
	d, err := ParseDEF(strings.NewReader(sampleDEF), lib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEF(&buf, d, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DESIGN toy ;",
		"DIEAREA ( 0 0 ) ( 200 160 ) ;",
		"- u1 cell_2x8 + PLACED ( 10 0 ) N ;",
		"- m1 cell_40x32 + FIXED ( 100 100 ) N ;",
		"END DESIGN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
