// Package lefdef reads a pragmatic subset of LEF/DEF — the format of the
// ISPD 2015 contest benchmarks [20] — sufficient for placement: LEF MACRO
// geometry (SIZE, PIN PORT RECTs), DEF DIEAREA, ROWs, COMPONENTS
// (PLACED/FIXED), IO PINS and NETS. Fence regions and routing blockages,
// which the paper removes from the ISPD 2015 runs, are skipped on read.
//
// Coordinates follow each format's conventions (component origins are
// lower-left corners; LEF pin rectangles are macro-origin relative) and
// are converted to the netlist package's cell-center convention.
package lefdef

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"xplace/internal/geom"
	"xplace/internal/netlist"
)

// finite reports whether every value is a real number; hostile streams
// can smuggle NaN/Inf literals through ParseFloat.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// PinDef is a macro pin with its offset from the MACRO's lower-left
// corner (the center of its first PORT RECT).
type PinDef struct {
	Name string
	X, Y float64
}

// Macro is one LEF cell master.
type Macro struct {
	Name string
	W, H float64
	Pins map[string]PinDef
}

// Library is a parsed LEF technology/cell library.
type Library struct {
	Macros map[string]Macro
}

// tokens splits a LEF/DEF stream into whitespace tokens, dropping
// comments (# to end of line).
func tokens(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		out = append(out, strings.Fields(line)...)
	}
	return out, sc.Err()
}

// ParseLEF reads macro definitions from a LEF stream.
func ParseLEF(r io.Reader) (*Library, error) {
	toks, err := tokens(r)
	if err != nil {
		return nil, err
	}
	lib := &Library{Macros: map[string]Macro{}}
	i := 0
	next := func() string {
		if i >= len(toks) {
			return ""
		}
		t := toks[i]
		i++
		return t
	}
	peek := func() string {
		if i >= len(toks) {
			return ""
		}
		return toks[i]
	}
	skipStatement := func() {
		for i < len(toks) && toks[i] != ";" {
			i++
		}
		if i < len(toks) {
			i++
		}
	}
	parseFloat := func(s string) (float64, error) {
		return strconv.ParseFloat(s, 64)
	}
	for i < len(toks) {
		if toks[i] != "MACRO" {
			i++
			continue
		}
		i++
		m := Macro{Name: next(), Pins: map[string]PinDef{}}
		for i < len(toks) {
			switch peek() {
			case "SIZE":
				next()
				w, err1 := parseFloat(next())
				by := next()
				h, err2 := parseFloat(next())
				if err1 != nil || err2 != nil || by != "BY" || w < 0 || h < 0 || !finite(w, h) {
					return nil, fmt.Errorf("lefdef: MACRO %s: bad SIZE", m.Name)
				}
				m.W, m.H = w, h
				skipStatement()
			case "PIN":
				next()
				p := PinDef{Name: next()}
				gotRect := false
				for i < len(toks) {
					if peek() == "RECT" && !gotRect {
						next()
						x1, e1 := parseFloat(next())
						y1, e2 := parseFloat(next())
						x2, e3 := parseFloat(next())
						y2, e4 := parseFloat(next())
						if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
							return nil, fmt.Errorf("lefdef: MACRO %s PIN %s: bad RECT", m.Name, p.Name)
						}
						p.X, p.Y = (x1+x2)/2, (y1+y2)/2
						gotRect = true
						skipStatement()
						continue
					}
					if peek() == "END" {
						next()
						if peek() == p.Name {
							next()
							break
						}
						continue // END of PORT
					}
					next()
				}
				m.Pins[p.Name] = p
			case "END":
				next()
				if peek() == m.Name {
					next()
				}
				goto macroDone
			default:
				next()
			}
		}
	macroDone:
		lib.Macros[m.Name] = m
	}
	if len(lib.Macros) == 0 {
		return nil, errors.New("lefdef: no MACRO definitions found")
	}
	return lib, nil
}

// ParseDEF reads a DEF stream against the library and builds a design.
// IO pins become 1x1 fixed cells named after the pin.
func ParseDEF(r io.Reader, lib *Library) (*netlist.Design, error) {
	toks, err := tokens(r)
	if err != nil {
		return nil, err
	}
	i := 0
	next := func() string {
		if i >= len(toks) {
			return ""
		}
		t := toks[i]
		i++
		return t
	}
	peek := func() string {
		if i >= len(toks) {
			return ""
		}
		return toks[i]
	}
	skipStatement := func() {
		for i < len(toks) && toks[i] != ";" {
			i++
		}
		if i < len(toks) {
			i++
		}
	}
	pf := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}

	designName := "def"
	var region geom.Rect
	var rows []netlist.Row

	type comp struct {
		name, macro string
		x, y        float64 // lower-left
		fixed       bool
	}
	var comps []comp
	type ioPin struct {
		name string
		x, y float64
	}
	var ios []ioPin
	type netDef struct {
		name string
		pins [][2]string // (component | "PIN", pin name)
	}
	var nets []netDef

	for i < len(toks) {
		switch toks[i] {
		case "DESIGN":
			i++
			if nm := next(); nm != "" && nm != ";" {
				designName = nm
			}
			skipStatement()
		case "DIEAREA":
			i++
			// ( x1 y1 ) ( x2 y2 ) ;
			var vals []float64
			for peek() != ";" && peek() != "" {
				t := next()
				if t == "(" || t == ")" {
					continue
				}
				vals = append(vals, pf(t))
			}
			skipStatement()
			if len(vals) >= 4 {
				region = geom.Rect{Lx: vals[0], Ly: vals[1], Hx: vals[2], Hy: vals[3]}
			}
		case "ROW":
			i++
			_ = next() // row name
			_ = next() // site name
			x := pf(next())
			y := pf(next())
			row := netlist.Row{Y: y, X0: x, Height: 0, SiteWidth: 1}
			numSites := 1.0
			// Optional: N DO n BY 1 STEP sx sy
			for peek() != ";" && peek() != "" {
				t := next()
				switch t {
				case "DO":
					numSites = pf(next())
				case "STEP":
					row.SiteWidth = pf(next())
				}
			}
			skipStatement()
			row.X1 = row.X0 + numSites*row.SiteWidth
			rows = append(rows, row)
		case "COMPONENTS":
			i++
			skipStatement() // count ;
			for peek() == "-" {
				next()
				c := comp{name: next(), macro: next()}
				for peek() != ";" && peek() != "" {
					t := next()
					if t == "PLACED" || t == "FIXED" {
						c.fixed = t == "FIXED"
						if peek() == "(" {
							next()
						}
						c.x = pf(next())
						c.y = pf(next())
						if peek() == ")" {
							next()
						}
					}
				}
				skipStatement()
				comps = append(comps, c)
			}
			if peek() == "END" {
				next()
				next() // COMPONENTS
			}
		case "PINS":
			i++
			skipStatement()
			for peek() == "-" {
				next()
				p := ioPin{name: next()}
				for peek() != ";" && peek() != "" {
					t := next()
					if t == "PLACED" || t == "FIXED" {
						if peek() == "(" {
							next()
						}
						p.x = pf(next())
						p.y = pf(next())
						if peek() == ")" {
							next()
						}
					}
				}
				skipStatement()
				ios = append(ios, p)
			}
			if peek() == "END" {
				next()
				next() // PINS
			}
		case "NETS":
			i++
			skipStatement()
			for peek() == "-" {
				next()
				n := netDef{name: next()}
				for peek() != ";" && peek() != "" {
					if next() == "(" {
						a := next()
						b := next()
						if peek() == ")" {
							next()
						}
						n.pins = append(n.pins, [2]string{a, b})
					}
				}
				skipStatement()
				nets = append(nets, n)
			}
			if peek() == "END" {
				next()
				next() // NETS
			}
		case "REGIONS", "GROUPS", "BLOCKAGES":
			// Fence regions / blockages: skipped (the paper removes
			// them).
			kw := toks[i]
			for i < len(toks) && !(toks[i] == "END" && i+1 < len(toks) && toks[i+1] == kw) {
				i++
			}
			i += 2
		default:
			i++
		}
	}

	if region.Empty() || !finite(region.Lx, region.Ly, region.Hx, region.Hy) {
		return nil, errors.New("lefdef: DEF missing or degenerate DIEAREA")
	}
	// DEF ROW statements carry no height (it comes from the LEF site
	// definition); infer it from the row pitch, falling back to the
	// shortest core macro.
	needH := false
	for _, r := range rows {
		if r.Height <= 0 {
			needH = true
		}
	}
	if needH && len(rows) > 0 {
		pitch := 0.0
		for i := range rows {
			for j := range rows {
				dy := rows[j].Y - rows[i].Y
				if dy > 0 && (pitch == 0 || dy < pitch) {
					pitch = dy
				}
			}
		}
		if pitch == 0 {
			for _, m := range lib.Macros {
				if m.H > 0 && (pitch == 0 || m.H < pitch) {
					pitch = m.H
				}
			}
		}
		for i := range rows {
			if rows[i].Height <= 0 {
				rows[i].Height = pitch
			}
		}
	}
	d := netlist.NewDesign(designName, region)
	d.Rows = rows

	cellIdx := map[string]int{}
	macroOf := map[string]Macro{}
	for _, c := range comps {
		m, ok := lib.Macros[c.macro]
		if !ok {
			return nil, fmt.Errorf("lefdef: component %s uses unknown macro %s", c.name, c.macro)
		}
		kind := netlist.Movable
		if c.fixed {
			kind = netlist.Fixed
		}
		id := d.AddCell(c.name, m.W, m.H, c.x+m.W/2, c.y+m.H/2, kind)
		cellIdx[c.name] = id
		macroOf[c.name] = m
	}
	ioIdx := map[string]int{}
	for _, p := range ios {
		id := d.AddCell(p.name, 1, 1, p.x, p.y, netlist.Fixed)
		ioIdx[p.name] = id
	}
	for _, n := range nets {
		d.AddNet(n.name)
		for _, ref := range n.pins {
			if ref[0] == "PIN" {
				id, ok := ioIdx[ref[1]]
				if !ok {
					return nil, fmt.Errorf("lefdef: net %s references unknown IO pin %s", n.name, ref[1])
				}
				d.AddPin(id, 0, 0)
				continue
			}
			id, ok := cellIdx[ref[0]]
			if !ok {
				return nil, fmt.Errorf("lefdef: net %s references unknown component %s", n.name, ref[0])
			}
			m := macroOf[ref[0]]
			pd, ok := m.Pins[ref[1]]
			if !ok {
				return nil, fmt.Errorf("lefdef: net %s: macro %s has no pin %s", n.name, m.Name, ref[1])
			}
			// LEF pin offsets are from the macro lower-left; convert to
			// center-relative.
			d.AddPin(id, pd.X-m.W/2, pd.Y-m.H/2)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteDEF emits the design's components and nets as a DEF file with the
// given center positions (nil means stored). Pin names are synthesized
// (p0, p1, ...) since the netlist model does not retain them.
func WriteDEF(w io.Writer, d *netlist.Design, x, y []float64) error {
	if x == nil {
		x = d.CellX
	}
	if y == nil {
		y = d.CellY
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "VERSION 5.8 ;")
	fmt.Fprintf(bw, "DESIGN %s ;\n", d.Name)
	fmt.Fprintf(bw, "DIEAREA ( %g %g ) ( %g %g ) ;\n", d.Region.Lx, d.Region.Ly, d.Region.Hx, d.Region.Hy)
	for ri, r := range d.Rows {
		fmt.Fprintf(bw, "ROW row_%d core %g %g N DO %d BY 1 STEP %g 0 ;\n",
			ri, r.X0, r.Y, int((r.X1-r.X0)/r.SiteWidth), r.SiteWidth)
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", d.NumCells())
	for c := 0; c < d.NumCells(); c++ {
		status := "PLACED"
		if d.CellKind[c] == netlist.Fixed {
			status = "FIXED"
		}
		fmt.Fprintf(bw, "- %s cell_%gx%g + %s ( %g %g ) N ;\n",
			d.CellName[c], d.CellW[c], d.CellH[c], status,
			x[c]-d.CellW[c]/2, y[c]-d.CellH[c]/2)
	}
	fmt.Fprintln(bw, "END COMPONENTS")
	fmt.Fprintf(bw, "NETS %d ;\n", d.NumNets())
	for n := 0; n < d.NumNets(); n++ {
		fmt.Fprintf(bw, "- %s", d.NetName[n])
		for p := d.NetPinStart[n]; p < d.NetPinStart[n+1]; p++ {
			fmt.Fprintf(bw, " ( %s p%d )", d.CellName[d.PinCell[p]], p)
		}
		fmt.Fprintln(bw, " ;")
	}
	fmt.Fprintln(bw, "END NETS")
	fmt.Fprintln(bw, "END DESIGN")
	return bw.Flush()
}
