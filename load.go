package xplace

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xplace/internal/bookshelf"
	"xplace/internal/lefdef"
)

// LoadOption configures Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	lefPath string
	lib     *LEFLibrary
}

// WithLEF names the LEF library file to parse when Load encounters a DEF
// design.
func WithLEF(path string) LoadOption {
	return func(c *loadConfig) { c.lefPath = path }
}

// WithLEFLibrary supplies an already-parsed LEF library for DEF designs
// (wins over WithLEF).
func WithLEFLibrary(lib *LEFLibrary) LoadOption {
	return func(c *loadConfig) { c.lib = lib }
}

// Load reads a design from src, autodetecting the format. It replaces the
// format-specific ReadBookshelf/ReadDEF entry points with one call:
//
//   - "design.aux" (bookshelf) loads the whole bookshelf bundle the .aux
//     names; any other extension with bookshelf .aux contents also works.
//   - "design.def" loads a DEF design; the LEF cell library must come from
//     WithLEF (a path) or WithLEFLibrary (already parsed).
//
// Detection is by extension first (.aux, .def), then by content sniffing
// for extensionless or unconventional names: a DEF file starts with
// VERSION/DESIGN/NAMESCASESENSITIVE statements, a bookshelf .aux carries a
// "RowBasedPlacement : ..." line. A .lef path is rejected with a pointer
// to LoadLEF, since a library alone is not a design.
func Load(src string, opts ...LoadOption) (*Design, error) {
	var cfg loadConfig
	for _, o := range opts {
		o(&cfg)
	}
	switch strings.ToLower(filepath.Ext(src)) {
	case ".aux":
		return bookshelf.ReadAux(src)
	case ".def":
		return loadDEF(src, cfg)
	case ".lef":
		return nil, fmt.Errorf("xplace: %s is a LEF library, not a design; parse it with LoadLEF and pass it to Load via WithLEFLibrary", src)
	}
	head, err := readHead(src, 4096)
	if err != nil {
		return nil, fmt.Errorf("xplace: load %s: %w", src, err)
	}
	switch sniffFormat(head) {
	case "def":
		return loadDEF(src, cfg)
	case "aux":
		return bookshelf.ReadAux(src)
	}
	return nil, fmt.Errorf("xplace: cannot detect the format of %s (want a bookshelf .aux or a DEF file)", src)
}

// LoadLEF parses the LEF cell library at path (the file-path counterpart
// of ReadLEF, for use with Load's WithLEFLibrary).
func LoadLEF(path string) (*LEFLibrary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xplace: load LEF: %w", err)
	}
	defer f.Close()
	return lefdef.ParseLEF(bufio.NewReader(f))
}

func loadDEF(src string, cfg loadConfig) (*Design, error) {
	lib := cfg.lib
	if lib == nil && cfg.lefPath != "" {
		var err error
		if lib, err = LoadLEF(cfg.lefPath); err != nil {
			return nil, err
		}
	}
	if lib == nil {
		return nil, fmt.Errorf("xplace: %s is a DEF design and needs a LEF library: pass WithLEF(path) or WithLEFLibrary(lib)", src)
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, fmt.Errorf("xplace: load DEF: %w", err)
	}
	defer f.Close()
	return lefdef.ParseDEF(bufio.NewReader(f), lib)
}

func readHead(path string, n int) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := f.Read(buf)
	if m == 0 && err != nil {
		return nil, err
	}
	return buf[:m], nil
}

// sniffFormat classifies file head bytes as "def", "aux" or "".
func sniffFormat(head []byte) string {
	sc := bufio.NewScanner(strings.NewReader(string(head)))
	for lines := 0; sc.Scan() && lines < 50; lines++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "VERSION", "DESIGN", "NAMESCASESENSITIVE", "DIVIDERCHAR", "BUSBITCHARS", "UNITS":
			return "def"
		}
		if strings.EqualFold(fields[0], "RowBasedPlacement") {
			return "aux"
		}
	}
	return ""
}
