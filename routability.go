package xplace

// Routability-driven placement — the paper's second stated future-work
// item, implemented as an extension: after a full placement flow, cells
// sitting in congested gcells are inflated (their width grows, demanding
// whitespace around them) and the flow is re-run, the classic
// cell-inflation loop of routability-driven placers (e.g. Ripple [2]).

import (
	"fmt"

	"xplace/internal/geom"
	"xplace/internal/netlist"
	"xplace/internal/router"
)

// RoutabilityOptions configures RunRoutabilityFlow.
type RoutabilityOptions struct {
	// Flow configures each placement pass.
	Flow FlowOptions
	// Route configures the congestion scoring between passes.
	Route RouteOptions
	// MaxPasses bounds the inflate-and-replace loop (default 2 extra
	// passes after the initial one).
	MaxPasses int
	// MaxInflate caps a cell's cumulative width inflation (default 2.0).
	MaxInflate float64
	// TargetOverflow stops the loop once OVFL-5 is at or below it.
	TargetOverflow float64
}

// RoutabilityResult reports the loop's outcome.
type RoutabilityResult struct {
	// Passes is the number of placement passes executed (>= 1).
	Passes int
	// Initial and Final congestion scores.
	Initial, Final *RouteResult
	// Final placement (original cell sizes, legal).
	X, Y []float64
	HPWL float64
	// InflatedCells is the number of distinct cells inflated.
	InflatedCells int
}

// RunRoutabilityFlow runs the placement flow, scores congestion, inflates
// cells in overflowed gcells and re-places until the OVFL-5 target or the
// pass budget is reached. The returned placement uses the ORIGINAL cell
// sizes (shrinking an inflated legal placement preserves legality).
func RunRoutabilityFlow(d *Design, opts RoutabilityOptions) (*RoutabilityResult, error) {
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 2
	}
	if opts.MaxInflate == 0 {
		opts.MaxInflate = 2.0
	}
	res := &RoutabilityResult{}
	inflation := make([]float64, d.NumCells())
	for i := range inflation {
		inflation[i] = 1
	}

	work := d
	var finalX, finalY []float64
	for pass := 0; ; pass++ {
		fr, err := RunFlow(work, opts.Flow)
		if err != nil {
			return nil, fmt.Errorf("xplace: routability pass %d: %w", pass, err)
		}
		res.Passes++
		finalX, finalY = fr.FinalX, fr.FinalY
		rt := router.Route(d, finalX, finalY, opts.Route)
		if res.Initial == nil {
			res.Initial = rt
		}
		res.Final = rt
		if rt.Top5Overflow <= opts.TargetOverflow || pass >= opts.MaxPasses {
			break
		}
		// Inflate movable cells in overflowed gcells.
		grew := false
		for c := 0; c < d.NumCells(); c++ {
			if d.CellKind[c] != netlist.Movable {
				continue
			}
			b := rt.Grid.BinIndex(geom.Point{X: finalX[c], Y: finalY[c]})
			if rt.GCellOverflow[b] <= 0 {
				continue
			}
			f := 1 + rt.GCellOverflow[b]/(4*rt.Capacity)
			if f > 1.5 {
				f = 1.5
			}
			ni := inflation[c] * f
			if ni > opts.MaxInflate {
				ni = opts.MaxInflate
			}
			if ni > inflation[c] {
				inflation[c] = ni
				grew = true
			}
		}
		if !grew {
			break
		}
		// Rebuild the working design with inflated widths, quantized to
		// whole sites so legality and site alignment survive shrinking.
		siteW := 1.0
		if len(d.Rows) > 0 && d.Rows[0].SiteWidth > 0 {
			siteW = d.Rows[0].SiteWidth
		}
		work = d.Clone()
		for c := 0; c < d.NumCells(); c++ {
			if inflation[c] > 1 {
				w := d.CellW[c] * inflation[c]
				sites := int(w/siteW + 0.999999)
				work.CellW[c] = float64(sites) * siteW
			}
		}
		if err := work.Finish(); err != nil {
			return nil, fmt.Errorf("xplace: routability inflation: %w", err)
		}
	}
	for _, f := range inflation {
		if f > 1 {
			res.InflatedCells++
		}
	}
	// Shrink inflated cells back to their original widths keeping the
	// LOWER-LEFT edge (the site-aligned anchor); the original footprint
	// stays inside the inflated one, so the placement remains legal.
	res.X = append([]float64(nil), finalX...)
	res.Y = append([]float64(nil), finalY...)
	for c := 0; c < d.NumCells(); c++ {
		if work != d && d.CellKind[c] == netlist.Movable && inflation[c] > 1 {
			lowerLeft := finalX[c] - work.CellW[c]/2
			res.X[c] = lowerLeft + d.CellW[c]/2
		}
	}
	res.HPWL = d.HPWL(res.X, res.Y)
	return res, nil
}
