package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xplace/internal/nn"
	"xplace/internal/serve"
)

// modelRegistry builds a registry holding one tiny trained model under
// each of the given names.
func modelRegistry(t *testing.T, names ...string) *serve.ModelRegistry {
	t.Helper()
	m := nn.NewModel(nn.Config{Width: 4, Modes: 3, Layers: 1, Seed: 1})
	m.Train(nn.GenerateSamples(4, 16, 16, 1), nn.TrainOptions{Epochs: 2, LR: 1e-3, Seed: 1})
	reg := serve.NewModelRegistry()
	for _, name := range names {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := reg.Load(name, &buf); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestSubmitModelValidation: the model field of the redesigned job API is
// checked at the HTTP boundary. Malformed names fail jobapi validation;
// well-formed names a node does not hold fail with the scheduler's typed
// UnknownModelError — both are definitive 400s (non-retryable for the
// gateway), never enqueued jobs.
func TestSubmitModelValidation(t *testing.T) {
	srv, _ := newTestServer(t, serve.Options{
		Engines: 1, QueueCap: 4, EngineWorkers: 1,
		Models: modelRegistry(t, "fno32"),
	})
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown model", `{"bench":"fft_1","model":"ghost"}`, `unknown model "ghost"`},
		{"model name with cache-key separator", `{"bench":"fft_1","model":"a|b"}`, "must not contain"},
		{"model name with equals", `{"bench":"fft_1","model":"a=b"}`, "must not contain"},
		{"model name with newline", `{"bench":"fft_1","model":"a\nb"}`, "must not contain"},
		{"oversized model name", `{"bench":"fft_1","model":"` + strings.Repeat("x", 129) + `"}`, "longer than 128"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, m := postJSON(t, srv.URL+"/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%v), want 400", resp.StatusCode, m)
			}
			msg, _ := m["error"].(string)
			if !strings.Contains(msg, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", msg, tc.wantErr)
			}
		})
	}
	// The unknown-model message names what IS loaded, so the caller can
	// correct the request without a second round trip.
	_, m := postJSON(t, srv.URL+"/jobs", `{"bench":"fft_1","model":"ghost"}`)
	if msg, _ := m["error"].(string); !strings.Contains(msg, "fno32") {
		t.Errorf("unknown-model error %q does not list the loaded models", msg)
	}
	// Nothing was enqueued by any of the rejects.
	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []any
	if err := jsonDecode(resp.Body, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("rejected submissions created %d jobs", len(jobs))
	}
}

// TestModelJobOverHTTP: a job naming a loaded model runs the NN-blended
// flow end to end — the nn metrics appear on /metrics, and the model is
// part of the result-cache identity (same request without the model is a
// different placement, not a cache hit).
func TestModelJobOverHTTP(t *testing.T) {
	dir := t.TempDir()
	m := nn.NewModel(nn.Config{Width: 4, Modes: 3, Layers: 1, Seed: 1})
	m.Train(nn.GenerateSamples(4, 16, 16, 1), nn.TrainOptions{Epochs: 2, LR: 1e-3, Seed: 1})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fno32.xfnm"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewModelRegistry()
	if _, err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t, serve.Options{
		Engines: 1, QueueCap: 4, EngineWorkers: 1, Models: reg,
	})

	const body = `{"bench":"fft_1","scale":0.002,"seed":4,"max_iter":60,"model":"fno32"}`
	if resp, m := postJSON(t, srv.URL+"/jobs", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	blended := waitSucceeded(t, srv.URL, 1, time.Minute)
	if scrapeMetric(t, srv.URL, "xserve_nn_jobs_total") != 1 {
		t.Error("xserve_nn_jobs_total != 1 after a model job")
	}
	if scrapeMetric(t, srv.URL, "xserve_nn_batch_requests_total") <= 0 {
		t.Error("model job made no batched PredictField requests")
	}

	// The same placement without the model must MISS the cache (the model
	// is in the cache key) and may converge differently.
	const pure = `{"bench":"fft_1","scale":0.002,"seed":4,"max_iter":60}`
	if resp, m := postJSON(t, srv.URL+"/jobs", pure); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pure submit: %d (%v)", resp.StatusCode, m)
	}
	if numerical := waitSucceeded(t, srv.URL, 2, time.Minute); numerical["cached"] == true {
		t.Fatalf("model-less rerun hit the model job's cache entry: %v vs %v", numerical, blended)
	}
}
