package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xplace/internal/serve"
)

func newTestServer(t *testing.T, opts serve.Options) (*httptest.Server, *serve.Scheduler) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(s))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return srv, s
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, m
}

func TestHTTPSubmitStatusEventsMetrics(t *testing.T) {
	srv, _ := newTestServer(t, serve.Options{Engines: 1, QueueCap: 4, EngineWorkers: 2})

	// Submit a tiny capped job.
	resp, m := postJSON(t, srv.URL+"/jobs",
		`{"bench":"fft_1","scale":0.002,"seed":3,"max_iter":30,"label":"smoke"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	id := m["id"].(float64)
	if m["state"] != "queued" && m["state"] != "running" {
		t.Fatalf("fresh job state = %v", m["state"])
	}

	// SSE: read progress events until done.
	evResp, err := http.Get(srv.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var progress, done int
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		switch sc.Text() {
		case "event: progress":
			progress++
		case "event: done":
			done++
		}
		if done > 0 {
			break
		}
	}
	if progress == 0 || done != 1 {
		t.Fatalf("SSE stream: %d progress, %d done events", progress, done)
	}

	// Final status over the poll endpoint.
	stResp, err := http.Get(srv.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if st["id"].(float64) != id || st["state"] != "succeeded" {
		t.Fatalf("final status = %v", st)
	}
	if st["hpwl"].(float64) <= 0 {
		t.Fatalf("final HPWL = %v", st["hpwl"])
	}

	// Metrics endpoint exports the counters.
	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	msc := bufio.NewScanner(mResp.Body)
	for msc.Scan() {
		sb.WriteString(msc.Text() + "\n")
	}
	mResp.Body.Close()
	body := sb.String()
	for _, want := range []string{
		"xserve_jobs_submitted 1",
		"xserve_jobs_succeeded 1",
		"xserve_gp_iterations_total 30",
		`xserve_arena_in_use_bytes{engine="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	// pprof is mounted.
	pResp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pResp.Body.Close()
	if pResp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", pResp.StatusCode)
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	srv, _ := newTestServer(t, serve.Options{Engines: 1, QueueCap: 4, EngineWorkers: 1})

	// Long-running job, cancelled over HTTP.
	resp, m := postJSON(t, srv.URL+"/jobs",
		`{"bench":"fft_1","scale":0.01,"seed":1,"max_iter":100000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, st := postJSON(t, srv.URL+"/jobs/1/cancel", "")
		if st["state"] == "canceled" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, st := postJSON(t, srv.URL+"/jobs/1/cancel", "")
	if st["state"] != "canceled" {
		t.Fatalf("state after cancel = %v", st["state"])
	}

	// Bad requests.
	if resp, _ := postJSON(t, srv.URL+"/jobs", `{"bench":"no-such-bench"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown bench: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/jobs", `{"bench":"fft_1","mode":"warp"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode: status %d", resp.StatusCode)
	}
	r404, err := http.Get(srv.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d", r404.StatusCode)
	}
}
