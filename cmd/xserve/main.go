// Command xserve is the placement job daemon: an HTTP front end over the
// internal/serve runtime. Jobs are synthetic contest benchmarks placed by
// a pool of kernel engines; clients submit, poll, stream per-iteration
// progress, and cancel over plain HTTP.
//
// Endpoints:
//
//	POST /jobs              submit a job (JSON body, see jobRequest)
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/events  live progress stream (Server-Sent Events)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /metrics           scheduler + engine + arena counters (text)
//	GET  /debug/pprof/      Go runtime profiles
//
// Example:
//
//	xserve -addr :8080 -engines 2 -queue 8 -store /var/lib/xserve &
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"bench":"adaptec1","scale":0.02,"seed":1}'
//	curl -N localhost:8080/jobs/1/events
//
// With -store the daemon is durable: every job transition is written to a
// WAL under the store directory, running jobs checkpoint their placer
// state every -checkpoint-every iterations, and a restarted daemon
// re-enqueues unfinished jobs — resuming checkpointed ones mid-trajectory
// with bit-identical final results (same flags and worker count
// assumed). Succeeded results are cached by content: resubmitting an
// identical request returns the finished job immediately ("cached": true)
// without running an engine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"xplace/internal/benchgen"
	"xplace/internal/jobstore"
	"xplace/internal/placer"
	"xplace/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		engines   = flag.Int("engines", 2, "engine pool size (max concurrent jobs)")
		queueCap  = flag.Int("queue", 8, "submit queue capacity (full queue rejects)")
		workers   = flag.Int("workers", 0, "kernel workers per engine (0 = NumCPU)")
		overhead  = flag.Duration("launch-overhead", -1, "simulated kernel-launch cost (-1 = default, 0 = off)")
		timeout   = flag.Duration("timeout", 0, "default per-job timeout (0 = none)")
		history   = flag.Int("history", 512, "per-job progress snapshots retained")
		storeDir  = flag.String("store", "", "durable job store directory (empty = in-memory only)")
		ckptEvery = flag.Int("checkpoint-every", 25, "placer checkpoint period in GP iterations (needs -store)")
	)
	flag.Parse()

	var store *jobstore.Store
	if *storeDir != "" {
		var err error
		store, err = jobstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("xserve: opening store: %v", err)
		}
	}
	s, err := serve.New(serve.Options{
		Engines:         *engines,
		QueueCap:        *queueCap,
		EngineWorkers:   *workers,
		LaunchOverhead:  *overhead,
		DefaultTimeout:  *timeout,
		History:         *history,
		Store:           store,
		Rehydrate:       rehydrateRequest,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		log.Fatalf("xserve: recovering store: %v", err)
	}
	if store != nil {
		reg := s.Registry()
		recovered := reg.Counter("xserve_store_recovered_jobs", "non-terminal jobs re-enqueued on startup").Value()
		resumed := reg.Counter("xserve_store_resumed_jobs", "recovered jobs resumed from a checkpoint").Value()
		log.Printf("xserve: store %s: re-enqueued %d unfinished jobs (%d resumed from checkpoints), %d cached results",
			*storeDir, recovered, resumed, store.CacheLen())
		for _, j := range s.Jobs() {
			if st := j.Status(); st.Recovered && !st.State.Terminal() {
				how := "from scratch"
				if st.Resumed {
					how = "resuming mid-trajectory"
				}
				log.Printf("xserve: recovered job %d (%s) %s", st.ID, st.Label, how)
			}
		}
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(s)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("xserve: listening on %s (%d engines, queue %d)", *addr, *engines, *queueCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("xserve: %v — draining", sig)
	case err := <-errc:
		log.Printf("xserve: server error: %v", err)
	}

	// Graceful shutdown. The scheduler drain starts FIRST (concurrently):
	// open SSE streams poll Draining() and close themselves, so the HTTP
	// shutdown is not held open for its whole budget by live streams — the
	// historical 30s hang. A second signal, or the 30s budget, cancels the
	// remaining jobs.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		<-sigc
		cancel()
	}()
	drainc := make(chan error, 1)
	go func() { drainc <- s.Shutdown(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("xserve: http shutdown: %v", err)
	}
	if err := <-drainc; err != nil {
		log.Printf("xserve: drain cut short: %v", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("xserve: closing store: %v", err)
		}
	}
	log.Printf("xserve: bye")
}

// newMux wires the HTTP surface over a scheduler.
func newMux(s *serve.Scheduler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", handleSubmit(s))
	mux.HandleFunc("GET /jobs", handleList(s))
	mux.HandleFunc("GET /jobs/{id}", handleStatus(s))
	mux.HandleFunc("GET /jobs/{id}/events", handleEvents(s))
	mux.HandleFunc("GET /jobs/{id}/trace", handleTrace(s))
	mux.HandleFunc("POST /jobs/{id}/cancel", handleCancel(s))
	mux.HandleFunc("GET /metrics", handleMetrics(s))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// jobRequest is the POST /jobs body. The design is a synthetic contest
// benchmark (as in `xplace -bench`); mode selects the GP engine.
//
// Zero-value coercion (part of the API): scale 0 selects the default
// 0.02 and seed 0 selects the default 1 — a request with "seed": 0 names
// the SAME design as "seed": 1, and both land on the same result-cache
// entry. Use an explicit non-zero seed for a distinct design.
type jobRequest struct {
	Bench    string  `json:"bench"`
	Scale    float64 `json:"scale,omitempty"`    // cell-count fraction; 0 = default 0.02
	Seed     int64   `json:"seed,omitempty"`     // design seed; 0 = default 1
	Mode     string  `json:"mode,omitempty"`     // xplace | baseline
	Strategy string  `json:"strategy,omitempty"` // nesterov | lbub (draft tier)
	MaxIter  int     `json:"max_iter,omitempty"` // GP iteration cap
	Grid     int     `json:"grid,omitempty"`     // density grid size
	Timeout  string  `json:"timeout,omitempty"`  // e.g. "30s"
	Label    string  `json:"label,omitempty"`
	Trace    bool    `json:"trace,omitempty"` // record a per-job operator trace
}

// validate rejects requests the scheduler would otherwise run with
// nonsense parameters (or coerce surprisingly).
func (r *jobRequest) validate() error {
	if r.Bench == "" {
		return errors.New("bench is required")
	}
	if r.Scale < 0 || math.IsNaN(r.Scale) || math.IsInf(r.Scale, 0) {
		return fmt.Errorf("scale %v must be a finite value >= 0 (0 selects the default 0.02)", r.Scale)
	}
	if r.MaxIter < 0 {
		return fmt.Errorf("max_iter %d must be >= 0", r.MaxIter)
	}
	if r.Grid < 0 {
		return fmt.Errorf("grid %d must be >= 0 (0 selects the mode default)", r.Grid)
	}
	// Enum-ish fields are validated HERE, at the HTTP boundary, so an
	// unknown value is a 400 instead of a failure deep in the engine.
	if _, err := placer.ParseStrategy(r.Strategy); err != nil {
		return err
	}
	return nil
}

// normalize applies the documented zero-value coercions, making the
// request canonical: two requests naming the same placement marshal to
// the same payload and cache key.
func (r *jobRequest) normalize() {
	if r.Scale == 0 {
		r.Scale = 0.02
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Mode == "" {
		r.Mode = "xplace"
	}
	if r.Strategy == "" {
		r.Strategy = "nesterov"
	}
	if r.Label == "" {
		r.Label = r.Bench
	}
}

// cacheKey is the request's result-cache content address: exactly the
// fields that determine the placement's outcome. Label, trace and
// timeout are excluded — they change reporting or execution limits, not
// the converged result.
func (r *jobRequest) cacheKey() string {
	// Strategy is part of the content address: the same request under
	// nesterov and lbub converges to different placements, so the two
	// must never collide in the result cache.
	return fmt.Sprintf("bench=%s|scale=%g|seed=%d|mode=%s|strategy=%s|max_iter=%d|grid=%d",
		r.Bench, r.Scale, r.Seed, r.Mode, r.Strategy, r.MaxIter, r.Grid)
}

func (r *jobRequest) toSpec() (serve.Spec, error) {
	if err := r.validate(); err != nil {
		return serve.Spec{}, err
	}
	bspec, ok := benchgen.FindSpec(r.Bench)
	if !ok {
		return serve.Spec{}, fmt.Errorf("unknown benchmark %q", r.Bench)
	}
	r.normalize()
	var opts placer.Options
	switch r.Mode {
	case "xplace":
		opts = placer.Defaults()
	case "baseline":
		opts = placer.BaselineDefaults()
	default:
		return serve.Spec{}, fmt.Errorf("unknown mode %q", r.Mode)
	}
	opts.Seed = r.Seed
	opts.GridSize = r.Grid
	opts.Strategy, _ = placer.ParseStrategy(r.Strategy) // validated above
	if r.MaxIter > 0 {
		opts.Sched.MaxIter = r.MaxIter
	}
	var timeout time.Duration
	if r.Timeout != "" {
		var err error
		if timeout, err = time.ParseDuration(r.Timeout); err != nil {
			return serve.Spec{}, fmt.Errorf("bad timeout: %v", err)
		}
		if timeout < 0 {
			return serve.Spec{}, fmt.Errorf("timeout %q must be >= 0", r.Timeout)
		}
	}
	// The normalized request is the job's durable identity: the payload
	// replayed by a restarted daemon, and the content key for the result
	// cache. The expanded netlist is re-derived, never stored.
	payload, err := json.Marshal(r)
	if err != nil {
		return serve.Spec{}, err
	}
	return serve.Spec{
		Design:  benchgen.Generate(bspec, r.Scale, r.Seed),
		Options: opts,
		Timeout: timeout,
		Label:   r.Label,
		Trace:   r.Trace,
		Payload: payload,
		Key:     r.cacheKey(),
	}, nil
}

// rehydrateRequest rebuilds a Spec from a WAL payload — the recovery
// half of toSpec. The payload is already normalized, so the rebuilt
// design and options are identical to the original submission's.
func rehydrateRequest(b []byte) (serve.Spec, error) {
	var req jobRequest
	if err := json.Unmarshal(b, &req); err != nil {
		return serve.Spec{}, err
	}
	return req.toSpec()
}

// jobJSON is the wire form of a job status.
type jobJSON struct {
	ID        int64            `json:"id"`
	Label     string           `json:"label"`
	State     string           `json:"state"`
	Err       string           `json:"error,omitempty"`
	Submitted time.Time        `json:"submitted"`
	Started   *time.Time       `json:"started,omitempty"`
	Finished  *time.Time       `json:"finished,omitempty"`
	Progress  *placer.Snapshot `json:"progress,omitempty"`
	Iters     int              `json:"iterations,omitempty"`
	HPWL      float64          `json:"hpwl,omitempty"`
	Overflow  float64          `json:"overflow,omitempty"`
	Cached    bool             `json:"cached,omitempty"`    // served from the result cache
	Recovered bool             `json:"recovered,omitempty"` // replayed from the WAL after a restart
	Resumed   bool             `json:"resumed,omitempty"`   // continued from a placer checkpoint
	Fallback  string           `json:"fallback,omitempty"`  // strategy that rescued a diverged run
}

func toJSON(st serve.Status) jobJSON {
	j := jobJSON{
		ID:        st.ID,
		Label:     st.Label,
		State:     st.State.String(),
		Err:       st.Err,
		Submitted: st.Submitted,
		Iters:     st.Iterations,
		HPWL:      st.HPWL,
		Overflow:  st.Overflow,
		Cached:    st.Cached,
		Recovered: st.Recovered,
		Resumed:   st.Resumed,
		Fallback:  st.Fallback,
	}
	if !st.Started.IsZero() {
		t := st.Started
		j.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		j.Finished = &t
	}
	if st.Progress.Iter > 0 || st.Progress.HPWL > 0 {
		p := st.Progress
		j.Progress = &p
	}
	return j
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func jobFrom(s *serve.Scheduler, w http.ResponseWriter, r *http.Request) (*serve.Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id"))
		return nil, false
	}
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return nil, false
	}
	return j, true
}

func handleSubmit(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req jobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := req.toSpec()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, err := s.Submit(spec)
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, serve.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, toJSON(j.Status()))
	}
}

func handleList(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]jobJSON, len(jobs))
		for i, j := range jobs {
			out[i] = toJSON(j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func handleStatus(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, toJSON(j.Status()))
	}
}

func handleCancel(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		s.Cancel(j.ID())
		writeJSON(w, http.StatusOK, toJSON(j.Status()))
	}
}

// handleEvents streams per-iteration snapshots as Server-Sent Events:
// first the retained history, then live updates until the job finishes or
// the client goes away.
func handleEvents(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)

		// Subscribe before replaying history so no snapshot is missed;
		// duplicates at the seam are filtered by iteration number.
		live, unsub := j.Subscribe(64)
		defer unsub()
		lastIter := -1
		emit := func(sn placer.Snapshot) {
			if sn.Iter <= lastIter {
				return
			}
			lastIter = sn.Iter
			b, _ := json.Marshal(sn)
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", b)
			fl.Flush()
		}
		for _, sn := range j.Snapshots() {
			emit(sn)
		}
		// Drain watch: http.Server.Shutdown does NOT cancel in-flight
		// request contexts, so a stream held open by a long job would hold
		// graceful shutdown hostage for its whole budget. Poll the
		// scheduler's drain flag and close the stream promptly instead; the
		// client sees an explicit "draining" event and can reconnect after
		// the daemon restarts (recovering the job from the store).
		drain := time.NewTicker(200 * time.Millisecond)
		defer drain.Stop()
		for {
			select {
			case sn, ok := <-live:
				if !ok { // job finished
					b, _ := json.Marshal(toJSON(j.Status()))
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
					fl.Flush()
					return
				}
				emit(sn)
			case <-drain.C:
				if s.Draining() {
					fmt.Fprintf(w, "event: draining\ndata: {}\n\n")
					fl.Flush()
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleMetrics scrapes the scheduler's registry in the Prometheus text
// exposition format. The scheduler, its engines and every job's placer all
// publish into the same registry, so this one endpoint covers the
// xserve_* runtime series and the xplace_* paper-optimization series; the
// scrape touches only the registry mutex and instrument atomics, never a
// job lock.
func handleMetrics(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Registry().WritePrometheus(w)
	}
}

// handleTrace serves a job's operator trace as Chrome trace_event JSON
// (load it at chrome://tracing or ui.perfetto.dev). 404 unless the job was
// submitted with "trace": true and has started.
func handleTrace(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		t := j.Tracer()
		if t == nil {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("job %d has no trace (submit with \"trace\": true)", j.ID()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeTrace(w)
	}
}
