// Command xserve is the placement job daemon: an HTTP front end over the
// internal/serve runtime. Jobs are synthetic contest benchmarks placed by
// a pool of kernel engines; clients submit, poll, stream per-iteration
// progress, and cancel over plain HTTP.
//
// Endpoints:
//
//	POST /jobs              submit a job (JSON body, see jobapi.Request)
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/events  live progress stream (Server-Sent Events)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /metrics           scheduler + engine + arena counters (text)
//	GET  /debug/pprof/      Go runtime profiles
//
// Example:
//
//	xserve -addr :8080 -engines 2 -queue 8 -store /var/lib/xserve &
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"bench":"adaptec1","scale":0.02,"seed":1}'
//	curl -N localhost:8080/jobs/1/events
//
// With -store the daemon is durable: every job transition is written to a
// WAL under the store directory, running jobs checkpoint their placer
// state every -checkpoint-every iterations, and a restarted daemon
// re-enqueues unfinished jobs — resuming checkpointed ones mid-trajectory
// with bit-identical final results (same flags and worker count
// assumed). Succeeded results are cached by content: resubmitting an
// identical request returns the finished job immediately ("cached": true)
// without running an engine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/jobstore"
	"xplace/internal/placer"
	"xplace/internal/serve"
)

// The POST /jobs body is jobapi.Request — the single versioned wire
// schema this daemon, the gateway client, and xgate all marshal through,
// so every tier derives the identical normalized payload and
// cache/routing key.

// rehydrateRequest rebuilds a Spec from a WAL payload — the recovery
// half of jobapi.Request.ToSpec.
func rehydrateRequest(b []byte) (serve.Spec, error) { return jobapi.Rehydrate(b) }

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		engines   = flag.Int("engines", 2, "engine pool size (max concurrent jobs)")
		queueCap  = flag.Int("queue", 8, "submit queue capacity (full queue rejects)")
		workers   = flag.Int("workers", 0, "kernel workers per engine (0 = NumCPU)")
		overhead  = flag.Duration("launch-overhead", -1, "simulated kernel-launch cost (-1 = default, 0 = off)")
		timeout   = flag.Duration("timeout", 0, "default per-job timeout (0 = none)")
		history   = flag.Int("history", 512, "per-job progress snapshots retained")
		storeDir  = flag.String("store", "", "durable job store directory (empty = in-memory only)")
		ckptEvery = flag.Int("checkpoint-every", 25, "placer checkpoint period in GP iterations (needs -store)")
		modelsDir = flag.String("models", "", "field-model directory; each artifact is served under its file name (minus extension)")
	)
	flag.Parse()

	var models *serve.ModelRegistry
	if *modelsDir != "" {
		models = serve.NewModelRegistry()
		n, err := models.LoadDir(*modelsDir)
		if err != nil {
			log.Fatalf("xserve: loading models from %s: %v", *modelsDir, err)
		}
		log.Printf("xserve: loaded %d field models from %s: %v", n, *modelsDir, models.Names())
	}

	var store *jobstore.Store
	if *storeDir != "" {
		var err error
		store, err = jobstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("xserve: opening store: %v", err)
		}
	}
	s, err := serve.New(serve.Options{
		Engines:         *engines,
		QueueCap:        *queueCap,
		EngineWorkers:   *workers,
		LaunchOverhead:  *overhead,
		DefaultTimeout:  *timeout,
		History:         *history,
		Store:           store,
		Rehydrate:       rehydrateRequest,
		CheckpointEvery: *ckptEvery,
		Models:          models,
	})
	if err != nil {
		log.Fatalf("xserve: recovering store: %v", err)
	}
	if store != nil {
		reg := s.Registry()
		recovered := reg.Counter("xserve_store_recovered_jobs", "non-terminal jobs re-enqueued on startup").Value()
		resumed := reg.Counter("xserve_store_resumed_jobs", "recovered jobs resumed from a checkpoint").Value()
		log.Printf("xserve: store %s: re-enqueued %d unfinished jobs (%d resumed from checkpoints), %d cached results",
			*storeDir, recovered, resumed, store.CacheLen())
		for _, j := range s.Jobs() {
			if st := j.Status(); st.Recovered && !st.State.Terminal() {
				how := "from scratch"
				if st.Resumed {
					how = "resuming mid-trajectory"
				}
				log.Printf("xserve: recovered job %d (%s) %s", st.ID, st.Label, how)
			}
		}
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(s)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("xserve: listening on %s (%d engines, queue %d)", *addr, *engines, *queueCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("xserve: %v — draining", sig)
	case err := <-errc:
		log.Printf("xserve: server error: %v", err)
	}

	// Graceful shutdown. The scheduler drain starts FIRST (concurrently):
	// open SSE streams poll Draining() and close themselves, so the HTTP
	// shutdown is not held open for its whole budget by live streams — the
	// historical 30s hang. A second signal, or the 30s budget, cancels the
	// remaining jobs.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		<-sigc
		cancel()
	}()
	drainc := make(chan error, 1)
	go func() { drainc <- s.Shutdown(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("xserve: http shutdown: %v", err)
	}
	if err := <-drainc; err != nil {
		log.Printf("xserve: drain cut short: %v", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("xserve: closing store: %v", err)
		}
	}
	log.Printf("xserve: bye")
}

// newMux wires the HTTP surface over a scheduler.
func newMux(s *serve.Scheduler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", handleSubmit(s))
	mux.HandleFunc("GET /jobs", handleList(s))
	mux.HandleFunc("GET /jobs/{id}", handleStatus(s))
	mux.HandleFunc("GET /jobs/{id}/events", handleEvents(s))
	mux.HandleFunc("GET /jobs/{id}/trace", handleTrace(s))
	mux.HandleFunc("POST /jobs/{id}/cancel", handleCancel(s))
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", handleReadyz(s))
	mux.HandleFunc("GET /metrics", handleMetrics(s))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// jobJSON is the wire form of a job status.
type jobJSON struct {
	ID        int64            `json:"id"`
	Label     string           `json:"label"`
	State     string           `json:"state"`
	Err       string           `json:"error,omitempty"`
	Submitted time.Time        `json:"submitted"`
	Started   *time.Time       `json:"started,omitempty"`
	Finished  *time.Time       `json:"finished,omitempty"`
	Progress  *placer.Snapshot `json:"progress,omitempty"`
	Iters     int              `json:"iterations,omitempty"`
	HPWL      float64          `json:"hpwl,omitempty"`
	Overflow  float64          `json:"overflow,omitempty"`
	Cached    bool             `json:"cached,omitempty"`    // served from the result cache
	Recovered bool             `json:"recovered,omitempty"` // replayed from the WAL after a restart
	Resumed   bool             `json:"resumed,omitempty"`   // continued from a placer checkpoint
	Fallback  string           `json:"fallback,omitempty"`  // strategy that rescued a diverged run
}

func toJSON(st serve.Status) jobJSON {
	j := jobJSON{
		ID:        st.ID,
		Label:     st.Label,
		State:     st.State.String(),
		Err:       st.Err,
		Submitted: st.Submitted,
		Iters:     st.Iterations,
		HPWL:      st.HPWL,
		Overflow:  st.Overflow,
		Cached:    st.Cached,
		Recovered: st.Recovered,
		Resumed:   st.Resumed,
		Fallback:  st.Fallback,
	}
	if !st.Started.IsZero() {
		t := st.Started
		j.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		j.Finished = &t
	}
	if st.Progress.Iter > 0 || st.Progress.HPWL > 0 {
		p := st.Progress
		j.Progress = &p
	}
	return j
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func jobFrom(s *serve.Scheduler, w http.ResponseWriter, r *http.Request) (*serve.Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id"))
		return nil, false
	}
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return nil, false
	}
	return j, true
}

func handleSubmit(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req jobapi.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := req.ToSpec()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, err := s.Submit(spec)
		var unknownModel *serve.UnknownModelError
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, serve.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.As(err, &unknownModel):
			// A model this node does not hold can never succeed here: a
			// definitive 400 (the gateway treats 4xx as non-retryable).
			writeError(w, http.StatusBadRequest, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, toJSON(j.Status()))
	}
}

func handleList(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]jobJSON, len(jobs))
		for i, j := range jobs {
			out[i] = toJSON(j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func handleStatus(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, toJSON(j.Status()))
	}
}

func handleCancel(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		s.Cancel(j.ID())
		writeJSON(w, http.StatusOK, toJSON(j.Status()))
	}
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It deliberately says nothing about the scheduler — a draining
// daemon is still alive and must not be restarted by a supervisor.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the scheduler accepts
// new submissions, 503 once a drain has begun. The xgate gateway routes
// on this signal, so a draining node stops receiving jobs before its
// queue rejects them.
func handleReadyz(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleEvents streams per-iteration snapshots as Server-Sent Events:
// first the retained history, then live updates until the job finishes or
// the client goes away. Every progress event carries its iteration as the
// SSE id, and a reconnecting client that presents Last-Event-ID resumes
// from the snapshot ring after that iteration instead of replaying the
// stream from scratch.
func handleEvents(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)

		// Subscribe before replaying history so no snapshot is missed;
		// duplicates at the seam are filtered by iteration number.
		live, unsub := j.Subscribe(64)
		defer unsub()
		lastIter := -1
		// Reconnect support: an EventSource client resends the last id it
		// saw; everything at or before it is already delivered. An
		// unparseable header is ignored (full replay).
		if lei := r.Header.Get("Last-Event-ID"); lei != "" {
			if v, err := strconv.Atoi(lei); err == nil && v > lastIter {
				lastIter = v
			}
		}
		emit := func(sn placer.Snapshot) {
			if sn.Iter <= lastIter {
				return
			}
			lastIter = sn.Iter
			b, _ := json.Marshal(sn)
			fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", sn.Iter, b)
			fl.Flush()
		}
		for _, sn := range j.Snapshots() {
			emit(sn)
		}
		// Drain watch: http.Server.Shutdown does NOT cancel in-flight
		// request contexts, so a stream held open by a long job would hold
		// graceful shutdown hostage for its whole budget. Poll the
		// scheduler's drain flag and close the stream promptly instead; the
		// client sees an explicit "draining" event and can reconnect after
		// the daemon restarts (recovering the job from the store).
		drain := time.NewTicker(200 * time.Millisecond)
		defer drain.Stop()
		for {
			select {
			case sn, ok := <-live:
				if !ok { // job finished
					b, _ := json.Marshal(toJSON(j.Status()))
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
					fl.Flush()
					return
				}
				emit(sn)
			case <-drain.C:
				if s.Draining() {
					fmt.Fprintf(w, "event: draining\ndata: {}\n\n")
					fl.Flush()
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleMetrics scrapes the scheduler's registry in the Prometheus text
// exposition format. The scheduler, its engines and every job's placer all
// publish into the same registry, so this one endpoint covers the
// xserve_* runtime series and the xplace_* paper-optimization series; the
// scrape touches only the registry mutex and instrument atomics, never a
// job lock.
func handleMetrics(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Registry().WritePrometheus(w)
	}
}

// handleTrace serves a job's operator trace as Chrome trace_event JSON
// (load it at chrome://tracing or ui.perfetto.dev). 404 unless the job was
// submitted with "trace": true and has started.
func handleTrace(s *serve.Scheduler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := jobFrom(s, w, r)
		if !ok {
			return
		}
		t := j.Tracer()
		if t == nil {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("job %d has no trace (submit with \"trace\": true)", j.ID()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeTrace(w)
	}
}
