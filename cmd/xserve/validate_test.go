package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/jobstore"
	"xplace/internal/serve"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestSubmitValidation: malformed placement parameters are rejected with
// 400 instead of being run (or coerced surprisingly). The pre-fix
// handler accepted all of these.
func TestSubmitValidation(t *testing.T) {
	srv, _ := newTestServer(t, serve.Options{Engines: 1, QueueCap: 4, EngineWorkers: 1})
	cases := []struct {
		name, body string
	}{
		{"missing bench", `{}`},
		{"negative scale", `{"bench":"fft_1","scale":-0.5}`},
		{"negative grid", `{"bench":"fft_1","grid":-4}`},
		{"negative max_iter", `{"bench":"fft_1","max_iter":-1}`},
		{"negative timeout", `{"bench":"fft_1","timeout":"-5s"}`},
		{"unparseable timeout", `{"bench":"fft_1","timeout":"potato"}`},
		{"non-numeric body", `{"bench":"fft_1","scale":"big"}`},
		{"unknown strategy", `{"bench":"fft_1","strategy":"annealing"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, m := postJSON(t, srv.URL+"/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%v), want 400", resp.StatusCode, m)
			}
			if m["error"] == "" {
				t.Fatal("400 without an error message")
			}
		})
	}
	// Nothing was enqueued.
	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []any
	if err := jsonDecode(resp.Body, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("invalid submissions created %d jobs", len(jobs))
	}
}

// TestScaleMustBeFinite: non-finite scales cannot arrive via JSON, but
// validate guards the invariant for any future transport.
func TestScaleMustBeFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		r := jobapi.Request{Bench: "fft_1", Scale: bad}
		if err := r.Validate(); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
	if err := (&jobapi.Request{Bench: "fft_1"}).Validate(); err != nil {
		t.Errorf("zero scale rejected: %v", err)
	}
}

// TestSeedZeroCoercionIsCanonical: "seed": 0 and "seed": 1 are the same
// design by the documented coercion, so they must share one cache key —
// a resubmission with the other spelling is a cache hit, not a rerun.
func TestSeedZeroCoercionIsCanonical(t *testing.T) {
	a := jobapi.Request{Bench: "fft_1"}
	b := jobapi.Request{Bench: "fft_1", Scale: 0.02, Seed: 1, Mode: "xplace"}
	a.Normalize()
	b.Normalize()
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("coerced request key %q != explicit default key %q", a.CacheKey(), b.CacheKey())
	}
	c := jobapi.Request{Bench: "fft_1", Seed: 2}
	c.Normalize()
	if c.CacheKey() == a.CacheKey() {
		t.Fatal("distinct seeds share a cache key")
	}
}

// TestStrategyInCacheKey: the strategy is part of the result-cache
// identity — an lbub run of the same request must never be served a
// cached nesterov result (or vice versa), while the explicit default
// spelling stays canonical with the omitted one.
func TestStrategyInCacheKey(t *testing.T) {
	def := jobapi.Request{Bench: "fft_1"}
	def.Normalize()
	explicit := jobapi.Request{Bench: "fft_1", Strategy: "nesterov"}
	explicit.Normalize()
	if def.CacheKey() != explicit.CacheKey() {
		t.Fatalf("explicit default strategy key %q != omitted key %q", explicit.CacheKey(), def.CacheKey())
	}
	lbub := jobapi.Request{Bench: "fft_1", Strategy: "lbub"}
	lbub.Normalize()
	if lbub.CacheKey() == def.CacheKey() {
		t.Fatal("lbub and nesterov share a cache key")
	}
}

// TestEventsCloseOnDrain: an SSE stream over a still-running job closes
// itself shortly after Shutdown begins, instead of holding the HTTP
// server's graceful shutdown hostage until the drain budget expires.
func TestEventsCloseOnDrain(t *testing.T) {
	srv, s := newTestServer(t, serve.Options{Engines: 1, QueueCap: 2, EngineWorkers: 1})

	// An effectively unbounded job (MinIter pinned: the convergence stop
	// cannot end it).
	req := jobapi.Request{Bench: "fft_1", Scale: 0.01, MaxIter: 500000}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.Sched.MinIter = 500000
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State != serve.Running {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Begin the drain concurrently (as main does); the stream must end
	// with a "draining" event well before the drain budget.
	go s.Shutdown(testCtx(t, 60*time.Second))

	streamDone := make(chan string, 1)
	go func() {
		var last string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: ") {
				last = strings.TrimPrefix(sc.Text(), "event: ")
			}
		}
		streamDone <- last
	}()
	select {
	case last := <-streamDone:
		if last != "draining" {
			t.Fatalf("stream ended with event %q, want \"draining\"", last)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("SSE stream still open 15s into the drain")
	}
}

// TestCachedSubmissionOverHTTP: the durable result cache is visible at
// the HTTP surface — an identical second submission reports
// "cached": true with the same numbers and no new kernel launches.
func TestCachedSubmissionOverHTTP(t *testing.T) {
	st, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, _ := newTestServer(t, serve.Options{
		Engines: 1, QueueCap: 4, EngineWorkers: 1,
		Store: st, Rehydrate: rehydrateRequest,
	})

	const body = `{"bench":"fft_1","scale":0.002,"seed":4,"max_iter":25}`
	if resp, m := postJSON(t, srv.URL+"/jobs", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	first := waitSucceeded(t, srv.URL, 1, time.Minute)
	if first["cached"] == true {
		t.Fatal("first submission reported cached")
	}
	launches := scrapeMetric(t, srv.URL, "xserve_kernel_launches_total")

	if resp, m := postJSON(t, srv.URL+"/jobs", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d (%v)", resp.StatusCode, m)
	}
	second := waitSucceeded(t, srv.URL, 2, 30*time.Second)
	if second["cached"] != true {
		t.Fatalf("identical resubmission not cached: %v", second)
	}
	if second["hpwl"] != first["hpwl"] || second["iterations"] != first["iterations"] {
		t.Fatalf("cached result differs: %v vs %v", second, first)
	}
	if after := scrapeMetric(t, srv.URL, "xserve_kernel_launches_total"); after != launches {
		t.Errorf("cache hit launched kernels: %v -> %v", launches, after)
	}
	if hits := scrapeMetric(t, srv.URL, "xserve_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
}
