package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it for the daemon to
// bind (a small window exists; acceptable for tests).
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// daemon is one spawned xserve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
	log  *os.File
}

func startDaemon(t *testing.T, bin, addr, storeDir string) *daemon {
	t.Helper()
	logf, err := os.CreateTemp(t.TempDir(), "xserve-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", addr, "-engines", "1", "-workers", "2",
		"-store", storeDir, "-checkpoint-every", "5")
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr, log: logf}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/jobs")
		if err == nil {
			resp.Body.Close()
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.dump(t)
	t.Fatal("daemon never became ready")
	return nil
}

func (d *daemon) dump(t *testing.T) {
	t.Helper()
	if b, err := os.ReadFile(d.log.Name()); err == nil && len(b) > 0 {
		t.Logf("daemon log:\n%s", b)
	}
}

// kill sends SIGKILL — the crash the store must survive.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

// stop shuts the daemon down gracefully.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _ = d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Error("daemon ignored SIGTERM")
		d.kill(t)
	}
}

func getStatus(t *testing.T, base string, id int) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// progressIter digs the live iteration count out of a status document.
func progressIter(m map[string]any) int {
	p, ok := m["progress"].(map[string]any)
	if !ok {
		return 0
	}
	iter, _ := p["Iter"].(float64)
	return int(iter)
}

func waitSucceeded(t *testing.T, base string, id int, within time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		m := getStatus(t, base, id)
		switch m["state"] {
		case "succeeded":
			return m
		case "failed", "canceled", "timed-out":
			t.Fatalf("job %d ended %v: %v", id, m["state"], m["error"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %d never succeeded within %v", id, within)
	return nil
}

// scrapeMetric reads one un-labelled series from /metrics.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestKillRestartRecovery is the PR's end-to-end acceptance gate: a
// daemon is SIGKILLed mid-placement, restarted over the same store, and
// must resume the job from its last checkpoint to a final HPWL/overflow
// bit-identical to a never-interrupted daemon's run of the same request.
// An identical resubmission afterwards is served from the durable result
// cache with zero new kernel launches.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level integration test")
	}
	bin := filepath.Join(t.TempDir(), "xserve-under-test")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	const body = `{"bench":"adaptec1","scale":0.02,"seed":5,"max_iter":3000,"label":"crashable"}`
	submit := func(base string) map[string]any {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
		}
		return m
	}

	// Run 1: submit, let it pass a few checkpoints (written every 5
	// iterations), then SIGKILL mid-trajectory.
	storeDir := t.TempDir()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	d1 := startDaemon(t, bin, addr, storeDir)
	submit(d1.base)
	killed := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		m := getStatus(t, d1.base, 1)
		if m["state"] == "succeeded" {
			break // too fast to kill mid-run; the test cannot proceed
		}
		if progressIter(m) >= 15 {
			d1.kill(t)
			killed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		t.Fatal("job finished before reaching iteration 15 — could not simulate a crash")
	}

	// Run 2: a fresh daemon over the same store recovers and resumes.
	d2 := startDaemon(t, bin, addr, storeDir)
	defer d2.stop(t)
	st := getStatus(t, d2.base, 1)
	if st["recovered"] != true {
		d2.dump(t)
		t.Fatalf("restarted daemon did not recover job 1: %v", st)
	}
	final := waitSucceeded(t, d2.base, 1, 3*time.Minute)
	if final["resumed"] != true {
		d2.dump(t)
		t.Fatalf("recovered job did not resume from its checkpoint: %v", final)
	}

	// Reference: an uninterrupted daemon (fresh store) runs the same
	// request to completion.
	refAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	dr := startDaemon(t, bin, refAddr, t.TempDir())
	defer dr.stop(t)
	submit(dr.base)
	ref := waitSucceeded(t, dr.base, 1, 3*time.Minute)

	for _, k := range []string{"hpwl", "overflow", "iterations"} {
		if final[k] != ref[k] {
			t.Errorf("resumed %s = %v, uninterrupted = %v (must be bit-identical)", k, final[k], ref[k])
		}
	}

	// Cached resubmission: same body, zero new engine work.
	launches := scrapeMetric(t, d2.base, "xserve_kernel_launches_total")
	re := submit(d2.base)
	id := int(re["id"].(float64))
	cached := waitSucceeded(t, d2.base, id, 30*time.Second)
	if cached["cached"] != true {
		t.Fatalf("identical resubmission not served from cache: %v", cached)
	}
	if cached["hpwl"] != final["hpwl"] || cached["iterations"] != final["iterations"] {
		t.Errorf("cached result differs: %v vs %v", cached, final)
	}
	if after := scrapeMetric(t, d2.base, "xserve_kernel_launches_total"); after != launches {
		t.Errorf("cache hit launched kernels: %v -> %v", launches, after)
	}
	if hits := scrapeMetric(t, d2.base, "xserve_cache_hits_total"); hits < 1 {
		t.Errorf("cache hits = %v, want >= 1", hits)
	}
}
