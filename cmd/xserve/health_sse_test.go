package main

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"xplace/internal/jobapi"
	"xplace/internal/serve"
)

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestHealthAndReadiness: /healthz is pure liveness (200 for the whole
// process lifetime, drain included), /readyz tracks the scheduler's
// intake — 200 while accepting, 503 from the moment a drain begins.
// The gateway routes on exactly this transition, so it is pinned here.
func TestHealthAndReadiness(t *testing.T) {
	srv, s := newTestServer(t, serve.Options{Engines: 1, QueueCap: 2, EngineWorkers: 1})

	if got := getCode(t, srv.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := getCode(t, srv.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}

	// Keep a job running so the drain stays in progress while we probe.
	req := jobapi.Request{Bench: "fft_1", Scale: 0.01, MaxIter: 500000}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.Sched.MinIter = 500000
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State != serve.Running {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	go s.Shutdown(testCtx(t, 60*time.Second))
	for time.Now().Before(deadline) {
		if getCode(t, srv.URL+"/readyz") == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := getCode(t, srv.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", got)
	}
	if got := getCode(t, srv.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (draining is not dead)", got)
	}
	s.Cancel(j.ID())
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    int // -1 when the event carried no id line
	event string
	data  string
}

// readSSE parses events off the stream until n events or EOF.
func readSSE(t *testing.T, r io.Reader, n int) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur = sseEvent{id: -1}
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if len(out) == n {
					return out
				}
			}
			cur = sseEvent{id: -1}
		case strings.HasPrefix(line, "id: "):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			cur.id = v
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

// TestSSEResumeWithLastEventID: a progress stream that drops mid-job
// resumes from the snapshot ring when the client reconnects with
// Last-Event-ID — the first replayed event is the iteration right after
// the last one delivered, not a replay from iteration 1.
func TestSSEResumeWithLastEventID(t *testing.T) {
	srv, s := newTestServer(t, serve.Options{Engines: 1, QueueCap: 2, EngineWorkers: 1})

	req := jobapi.Request{Bench: "fft_1", Scale: 0.01, MaxIter: 500000}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Options.Sched.MinIter = 500000 // convergence cannot end it mid-test
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// First connection: take a handful of progress events, then drop the
	// stream mid-job (client disconnect, not job completion).
	resp1, err := http.Get(srv.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp1.Body, 5)
	resp1.Body.Close()
	if len(events) < 5 {
		t.Fatalf("first stream delivered %d events, want 5", len(events))
	}
	last := events[len(events)-1]
	if last.event != "progress" || last.id < 1 {
		t.Fatalf("unexpected event before disconnect: %+v", last)
	}

	// Let the job advance past the disconnect point so a from-scratch
	// replay would be distinguishable from a resume.
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Progress.Iter <= last.id+3 {
		if time.Now().After(deadline) {
			t.Fatal("job stopped progressing")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Reconnect as an EventSource client would: Last-Event-ID names the
	// last delivered iteration.
	req2, err := http.NewRequest("GET", srv.URL+"/jobs/1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", strconv.Itoa(last.id))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readSSE(t, resp2.Body, 3)
	if len(resumed) < 3 {
		t.Fatalf("resumed stream delivered %d events, want 3", len(resumed))
	}
	if resumed[0].event != "progress" {
		t.Fatalf("first resumed event = %+v, want progress", resumed[0])
	}
	// The ring still holds every iteration (History default 512), so the
	// resume must continue exactly where the stream left off: no replay
	// from iteration 1, no gap.
	if resumed[0].id != last.id+1 {
		t.Fatalf("resumed stream started at iteration %d, want %d (last delivered %d)",
			resumed[0].id, last.id+1, last.id)
	}
	for i := 1; i < len(resumed); i++ {
		if resumed[i].id != resumed[i-1].id+1 {
			t.Fatalf("resumed stream not contiguous: %+v", resumed)
		}
	}
	s.Cancel(j.ID())
}
