package main

import (
	"math"
	"testing"
	"time"

	"xplace/internal/geom"
	"xplace/internal/jobapi"
	"xplace/internal/netlist"
	"xplace/internal/serve"
)

// divergentDesign is the fuzz-derived pathological input (mirrored in the
// placer tests and the bookshelf seed corpus): pin offsets of ±1e40 parse
// and evaluate to finite numbers, but the first wirelength evaluation
// explodes past any physical HPWL and the gradient flow diverges.
func divergentDesign(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("fuzz-diverge", geom.Rect{Hx: 100, Hy: 100})
	a := d.AddCell("a", 2, 2, 10, 10, netlist.Movable)
	b := d.AddCell("b", 2, 2, 90, 90, netlist.Movable)
	d.AddNet("n0")
	d.AddPin(a, 1e40, 1e40)
	d.AddPin(b, -1e40, -1e40)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDivergenceFallbackOverHTTP: a job whose Nesterov run diverges is
// transparently re-run under the LB/UB strategy and still answers
// "succeeded", labeled with the fallback and counted on
// xserve_fallback_total — the serve-level contract the lbub strategy
// exists to back.
func TestDivergenceFallbackOverHTTP(t *testing.T) {
	srv, s := newTestServer(t, serve.Options{Engines: 1, QueueCap: 4, EngineWorkers: 1})

	// Build a normal request, then swap in the pathological design (no
	// HTTP surface generates one, which is the point: it arrived from the
	// fuzzer). The cache key is cleared — the spec no longer matches the
	// request it was derived from.
	req := jobapi.Request{Bench: "fft_1", MaxIter: 50}
	spec, err := req.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Design = divergentDesign(t)
	spec.Key = ""
	spec.Payload = nil
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}

	st := waitSucceeded(t, srv.URL, 1, time.Minute)
	if st["fallback"] != "lbub" {
		t.Fatalf("status fallback = %v, want \"lbub\" (full status: %v)", st["fallback"], st)
	}
	// The ±1e40 pin offsets legitimately dominate this design's HPWL; the
	// contract is a finite answer, not a physical one.
	hpwl, _ := st["hpwl"].(float64)
	if !(hpwl > 0) || math.IsInf(hpwl, 0) || math.IsNaN(hpwl) {
		t.Fatalf("fallback result HPWL = %v, want finite", st["hpwl"])
	}
	if n := scrapeMetric(t, srv.URL, "xserve_fallback_total"); n != 1 {
		t.Errorf("xserve_fallback_total = %v, want 1", n)
	}
	if n := scrapeMetric(t, srv.URL, "xserve_jobs_succeeded"); n != 1 {
		t.Errorf("xserve_jobs_succeeded = %v, want 1", n)
	}

	// A healthy job must not carry the label.
	if resp, m := postJSON(t, srv.URL+"/jobs",
		`{"bench":"fft_1","scale":0.002,"seed":3,"max_iter":20}`); resp.StatusCode != 202 {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	healthy := waitSucceeded(t, srv.URL, 2, time.Minute)
	if _, ok := healthy["fallback"]; ok {
		t.Errorf("healthy job reports fallback = %v", healthy["fallback"])
	}
	if n := scrapeMetric(t, srv.URL, "xserve_fallback_total"); n != 1 {
		t.Errorf("xserve_fallback_total after healthy job = %v, want still 1", n)
	}
}

// TestLBUBJobOverHTTP: -strategy reaches the HTTP surface — a job
// submitted with "strategy": "lbub" runs the alternation directly (no
// fallback label: nothing diverged).
func TestLBUBJobOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, serve.Options{Engines: 1, QueueCap: 4, EngineWorkers: 1})
	if resp, m := postJSON(t, srv.URL+"/jobs",
		`{"bench":"fft_1","scale":0.002,"seed":3,"strategy":"lbub","max_iter":40}`); resp.StatusCode != 202 {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, m)
	}
	st := waitSucceeded(t, srv.URL, 1, time.Minute)
	if _, ok := st["fallback"]; ok {
		t.Errorf("explicit lbub job reports fallback = %v", st["fallback"])
	}
	if hpwl, _ := st["hpwl"].(float64); !(hpwl > 0) {
		t.Fatalf("lbub job HPWL = %v", st["hpwl"])
	}
}
